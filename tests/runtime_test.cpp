// Tests for the data-flow tasking runtime (the OmpSs-2 substitute).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "tasking/parallel_for.hpp"
#include "tasking/runtime.hpp"

namespace dfamr::tasking {
namespace {

class RuntimeTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(WorkerCounts, RuntimeTest, ::testing::Values(0, 1, 2, 4),
                         [](const auto& pinfo) {
                             return "workers" + std::to_string(pinfo.param);
                         });

TEST_P(RuntimeTest, TasksRunAndTaskwaitDrains) {
    Runtime rt(GetParam());
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) {
        rt.submit([&count] { ++count; }, {});
    }
    rt.taskwait();
    EXPECT_EQ(count.load(), 100);
}

TEST_P(RuntimeTest, DependencyOrderIsRespected) {
    Runtime rt(GetParam());
    double data = 0;
    std::vector<int> order;
    std::mutex order_mutex;
    auto record = [&](int id) {
        std::lock_guard lock(order_mutex);
        order.push_back(id);
    };
    rt.submit([&] { record(1); }, {out(&data, sizeof data)});
    rt.submit([&] { record(2); }, {inout(&data, sizeof data)});
    rt.submit([&] { record(3); }, {in(&data, sizeof data)});
    rt.taskwait();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(RuntimeTest, IndependentChainsInterleaveCorrectly) {
    Runtime rt(GetParam());
    constexpr int kChains = 8;
    constexpr int kLinks = 20;
    double slots[kChains] = {};
    std::vector<std::vector<int>> seen(kChains);
    std::mutex m;
    for (int link = 0; link < kLinks; ++link) {
        for (int c = 0; c < kChains; ++c) {
            rt.submit(
                [&, c, link] {
                    std::lock_guard lock(m);
                    seen[static_cast<std::size_t>(c)].push_back(link);
                },
                {inout(&slots[c], sizeof(double))});
        }
    }
    rt.taskwait();
    for (int c = 0; c < kChains; ++c) {
        std::vector<int> expect(kLinks);
        std::iota(expect.begin(), expect.end(), 0);
        EXPECT_EQ(seen[static_cast<std::size_t>(c)], expect) << "chain " << c;
    }
}

TEST_P(RuntimeTest, ReadersAfterWriterSeeValue) {
    Runtime rt(GetParam());
    double x = 0;
    std::atomic<int> sum{0};
    rt.submit([&x] { x = 21; }, {out(&x, sizeof x)});
    for (int i = 0; i < 10; ++i) {
        rt.submit([&] { sum += static_cast<int>(x); }, {in(&x, sizeof x)});
    }
    rt.taskwait();
    EXPECT_EQ(sum.load(), 210);
}

TEST_P(RuntimeTest, NestedTasksAndTaskwaitInsideTask) {
    Runtime rt(GetParam());
    std::atomic<int> inner{0};
    std::atomic<bool> inner_done_at_parent_exit{false};
    rt.submit(
        [&] {
            for (int i = 0; i < 10; ++i) {
                Runtime::current()->submit([&inner] { ++inner; }, {});
            }
            Runtime::current()->taskwait();
            inner_done_at_parent_exit = (inner.load() == 10);
        },
        {});
    rt.taskwait();
    EXPECT_EQ(inner.load(), 10);
    EXPECT_TRUE(inner_done_at_parent_exit.load());
}

TEST_P(RuntimeTest, TaskwaitWaitsForGrandchildren) {
    Runtime rt(GetParam());
    std::atomic<int> grandchildren{0};
    rt.submit(
        [&] {
            for (int i = 0; i < 5; ++i) {
                Runtime::current()->submit(
                    [&] {
                        for (int j = 0; j < 5; ++j) {
                            Runtime::current()->submit([&grandchildren] { ++grandchildren; }, {});
                        }
                    },
                    {});
            }
        },
        {});
    rt.taskwait();
    EXPECT_EQ(grandchildren.load(), 25);
}

TEST_P(RuntimeTest, TaskwaitOnWaitsOnlyForProducers) {
    Runtime rt(GetParam());
    double produced = 0;
    std::atomic<bool> producer_done{false};
    std::atomic<bool> unrelated_started{false};
    std::atomic<bool> release_unrelated{false};

    rt.submit(
        [&] {
            produced = 42;
            producer_done = true;
        },
        {out(&produced, sizeof produced)});
    rt.submit(
        [&] {
            unrelated_started = true;
            while (!release_unrelated.load()) std::this_thread::yield();
        },
        {});

    // Cooperative waiting means ANY ready task may execute on the waiting
    // thread — including the unrelated spin task above, which would then
    // deadlock taskwait_on (its release flag is only set afterwards). That
    // is expected task-scheduling-point behaviour, so the scenario needs a
    // real worker to have picked the spin task up first.
    if (GetParam() == 0) {
        release_unrelated = true;
        rt.taskwait();
        return;
    }
    while (!unrelated_started.load()) std::this_thread::yield();
    rt.taskwait_on({in(&produced, sizeof produced)});
    EXPECT_TRUE(producer_done.load());
    EXPECT_EQ(produced, 42);
    release_unrelated = true;
    rt.taskwait();
}

TEST_P(RuntimeTest, ExternalEventsDelayDependencyRelease) {
    Runtime rt(GetParam());
    double data = 0;
    std::atomic<Task*> handle{nullptr};
    std::atomic<bool> successor_ran{false};

    rt.submit(
        [&] {
            data = 7;
            handle = Runtime::current()->increase_current_task_events(1);
        },
        {out(&data, sizeof data)});
    rt.submit([&] { successor_ran = true; }, {in(&data, sizeof data)});

    // Give the runtime a chance to (incorrectly) run the successor.
    if (GetParam() > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        EXPECT_FALSE(successor_ran.load());
        ASSERT_NE(handle.load(), nullptr);
        rt.decrease_task_events(handle.load(), 1);
        rt.taskwait();
        EXPECT_TRUE(successor_ran.load());
    } else {
        // Zero-worker mode: drive execution from a helper thread decrease.
        std::thread releaser([&] {
            while (handle.load() == nullptr) std::this_thread::yield();
            rt.decrease_task_events(handle.load(), 1);
        });
        rt.taskwait();
        releaser.join();
        EXPECT_TRUE(successor_ran.load());
    }
}

TEST_P(RuntimeTest, MultidependencySendAfterManyPackers) {
    Runtime rt(GetParam());
    constexpr int kSections = 16;
    double buffer[kSections] = {};
    std::atomic<int> packed{0};
    std::atomic<int> seen_at_send{-1};
    for (int s = 0; s < kSections; ++s) {
        rt.submit(
            [&, s] {
                buffer[s] = s;
                ++packed;
            },
            {out(&buffer[s], sizeof(double))});
    }
    std::vector<Dep> multi;
    for (int s = 0; s < kSections; ++s) multi.push_back(in(&buffer[s], sizeof(double)));
    rt.submit([&] { seen_at_send = packed.load(); }, std::move(multi));
    rt.taskwait();
    EXPECT_EQ(seen_at_send.load(), kSections);
}

TEST_P(RuntimeTest, ExceptionPropagatesAtTaskwait) {
    Runtime rt(GetParam());
    rt.submit([] { throw Error("task exploded"); }, {});
    EXPECT_THROW(rt.taskwait(), Error);
    // The runtime stays usable afterwards.
    std::atomic<int> ok{0};
    rt.submit([&ok] { ++ok; }, {});
    rt.taskwait();
    EXPECT_EQ(ok.load(), 1);
}

TEST_P(RuntimeTest, PollingServiceRunsWhileWaiting) {
    Runtime rt(GetParam());
    std::atomic<int> polls{0};
    rt.register_polling_service("counter", [&polls] {
        ++polls;
        return true;
    });
    double x = 0;
    std::atomic<Task*> handle{nullptr};
    rt.submit([&] { handle = Runtime::current()->increase_current_task_events(1); },
              {out(&x, sizeof x)});
    std::thread releaser([&] {
        while (polls.load() < 3) std::this_thread::yield();
        while (handle.load() == nullptr) std::this_thread::yield();
        rt.decrease_task_events(handle.load(), 1);
    });
    rt.taskwait();
    releaser.join();
    EXPECT_GE(polls.load(), 3);
    rt.unregister_polling_service("counter");
}

TEST_P(RuntimeTest, StatsAreConsistent) {
    Runtime rt(GetParam());
    double x = 0;
    // Hold the writer in its body until the reader is submitted, so the
    // conflict deterministically becomes a real edge (a free-running writer
    // may release before the reader arrives, in which case the registry
    // legitimately elides the edge). Safe with workers==0: inline execution
    // happens at taskwait, after the gate is already open.
    std::atomic<bool> gate{false};
    rt.submit([&] { while (!gate.load()) std::this_thread::yield(); },
              {out(&x, sizeof x)});
    rt.submit([] {}, {in(&x, sizeof x)});
    gate.store(true);
    rt.taskwait();
    const RuntimeStats s = rt.stats();
    EXPECT_EQ(s.tasks_submitted, 2u);
    EXPECT_EQ(s.tasks_executed, 2u);
    EXPECT_EQ(s.edges_added, 1u);
    EXPECT_EQ(s.edges_elided, 0u);
}

TEST_P(RuntimeTest, ConflictCountIsTimingIndependent) {
    // Without any gating the writer may or may not complete before the
    // reader is submitted, so edges_added alone is racy — but every
    // conflict lands in exactly one of {added, elided}, so the sum is
    // deterministic.
    Runtime rt(GetParam());
    double x = 0;
    rt.submit([] {}, {out(&x, sizeof x)});
    rt.submit([] {}, {in(&x, sizeof x)});
    rt.taskwait();
    const RuntimeStats s = rt.stats();
    EXPECT_EQ(s.edges_added + s.edges_elided, 1u);
}

TEST(RuntimeStress, ManyTasksRandomDependencies) {
    Runtime rt(4);
    constexpr int kSlots = 32;
    constexpr int kTasks = 5000;
    std::vector<std::int64_t> slots(kSlots, 0);
    std::vector<std::int64_t> expected(kSlots, 0);
    // simple deterministic LCG to pick slots
    std::uint64_t seed = 12345;
    auto next = [&seed] {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        return seed >> 33;
    };
    for (int t = 0; t < kTasks; ++t) {
        const int slot = static_cast<int>(next() % kSlots);
        ++expected[static_cast<std::size_t>(slot)];
        rt.submit([&slots, slot] { ++slots[static_cast<std::size_t>(slot)]; },
                  {inout(&slots[static_cast<std::size_t>(slot)], sizeof(std::int64_t))});
    }
    rt.taskwait();
    EXPECT_EQ(slots, expected);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
    Runtime rt(3);
    std::vector<std::atomic<int>> hits(100);
    parallel_for(rt, 0, 100, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndTinyRanges) {
    Runtime rt(4);
    std::atomic<int> n{0};
    parallel_for(rt, 5, 5, [&](std::int64_t) { ++n; });
    EXPECT_EQ(n.load(), 0);
    parallel_for(rt, 0, 1, [&](std::int64_t) { ++n; });
    EXPECT_EQ(n.load(), 1);
}

TEST(RuntimeScheduling, ImmediateSuccessorHitsOccur) {
    Runtime rt(1);
    double x = 0;
    // Gate the head of the chain so the remaining 49 submits happen while
    // it is still running; otherwise the worker can drain each task before
    // the next submit and the chain (and its immediate-successor hand-offs)
    // never materializes.
    std::atomic<bool> gate{false};
    rt.submit([&] { while (!gate.load()) std::this_thread::yield(); },
              {inout(&x, sizeof x)});
    for (int i = 0; i < 49; ++i) {
        rt.submit([] {}, {inout(&x, sizeof x)});
    }
    gate.store(true);
    rt.taskwait();
    EXPECT_GT(rt.stats().immediate_successor_hits, 0u);
}

}  // namespace
}  // namespace dfamr::tasking
