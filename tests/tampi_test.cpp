// Tests for the Task-Aware MPI layer: request-to-task binding, transparent
// progress, blocking mode, and the hybrid pattern the paper builds on.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "mpisim/mpi.hpp"
#include "tampi/tampi.hpp"
#include "tasking/runtime.hpp"

namespace dfamr::tampi {
namespace {

using tasking::Dep;
using tasking::in;
using tasking::out;
using tasking::Runtime;

TEST(Tampi, IrecvReleasesDepsOnlyAfterArrival) {
    mpi::World world(2);
    world.run([](mpi::Communicator& comm) {
        Runtime rt(2);
        Tampi tampi(rt);
        if (comm.rank() == 0) {
            // Delay the send so the receiver's task graph is built first.
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            const double v = 3.25;
            comm.send(&v, sizeof v, 1, 0);
        } else {
            double buf = 0;
            std::atomic<bool> recv_task_done{false};
            std::atomic<bool> consumer_saw_value{false};
            rt.submit(
                [&] {
                    tampi.irecv(comm, &buf, sizeof buf, 0, 0);
                    recv_task_done = true;  // body returns before the data arrives
                },
                {out(&buf, sizeof buf)}, "recv");
            rt.submit([&] { consumer_saw_value = (buf == 3.25); }, {in(&buf, sizeof buf)},
                      "consume");
            rt.taskwait();
            EXPECT_TRUE(recv_task_done.load());
            EXPECT_TRUE(consumer_saw_value.load());
        }
    });
}

TEST(Tampi, IsendCompletesEagerly) {
    mpi::World world(2);
    world.run([](mpi::Communicator& comm) {
        Runtime rt(1);
        Tampi tampi(rt);
        if (comm.rank() == 0) {
            double v = 7.5;
            rt.submit([&] { tampi.isend(comm, &v, sizeof v, 1, 1); }, {in(&v, sizeof v)});
            rt.taskwait();
        } else {
            double r = 0;
            comm.recv(&r, sizeof r, 0, 1);
            EXPECT_DOUBLE_EQ(r, 7.5);
        }
    });
}

TEST(Tampi, ManyBindingsOnOneTask) {
    mpi::World world(2);
    constexpr int kMsgs = 16;
    world.run([](mpi::Communicator& comm) {
        Runtime rt(2);
        Tampi tampi(rt);
        if (comm.rank() == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            for (int i = 0; i < kMsgs; ++i) {
                const double v = i;
                comm.send(&v, sizeof v, 1, i);
            }
        } else {
            std::vector<double> buf(kMsgs, -1.0);
            double sum = -1;
            rt.submit(
                [&] {
                    // A task may bind multiple requests over its lifetime.
                    for (int i = 0; i < kMsgs; ++i) {
                        tampi.irecv(comm, &buf[static_cast<std::size_t>(i)], sizeof(double), 0, i);
                    }
                },
                {out(buf.data(), buf.size() * sizeof(double))});
            rt.submit([&] { sum = std::accumulate(buf.begin(), buf.end(), 0.0); },
                      {in(buf.data(), buf.size() * sizeof(double))});
            rt.taskwait();
            EXPECT_DOUBLE_EQ(sum, kMsgs * (kMsgs - 1) / 2.0);
        }
    });
}

TEST(Tampi, IwaitallBindsEveryRequest) {
    mpi::World world(2);
    world.run([](mpi::Communicator& comm) {
        Runtime rt(2);
        Tampi tampi(rt);
        if (comm.rank() == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            for (int i = 0; i < 4; ++i) {
                const int v = i * 10;
                comm.send(&v, sizeof v, 1, i);
            }
        } else {
            std::vector<int> buf(4, -1);
            int check = 0;
            rt.submit(
                [&] {
                    std::vector<mpi::Request> reqs;
                    for (int i = 0; i < 4; ++i) {
                        reqs.push_back(
                            comm.irecv(&buf[static_cast<std::size_t>(i)], sizeof(int), 0, i));
                    }
                    tampi.iwaitall(std::span<mpi::Request>(reqs));
                },
                {out(buf.data(), buf.size() * sizeof(int))});
            rt.submit([&] { check = buf[0] + buf[1] + buf[2] + buf[3]; },
                      {in(buf.data(), buf.size() * sizeof(int))});
            rt.taskwait();
            EXPECT_EQ(check, 0 + 10 + 20 + 30);
        }
    });
}

TEST(Tampi, BlockingModePausesTaskNotWorker) {
    // One worker only: if blocking recv held the worker hostage, the sender
    // task (queued after it) could never run and this would deadlock.
    mpi::World world(1);
    world.run([](mpi::Communicator& comm) {
        Runtime rt(1);
        Tampi tampi(rt);
        int payload = -1;
        std::atomic<bool> got{false};
        rt.submit(
            [&] {
                tampi.recv(comm, &payload, sizeof payload, 0, 0);
                got = payload == 123;
            },
            {}, "blocking-recv");
        rt.submit(
            [&] {
                const int v = 123;
                tampi.send(comm, &v, sizeof v, 0, 0);
            },
            {}, "send");
        rt.taskwait();
        EXPECT_TRUE(got.load());
    });
}

TEST(Tampi, PipelineOverlapAcrossPhases) {
    // The core paper pattern: per-"block" recv -> unpack -> compute chains
    // connected by dependencies, running while other blocks compute.
    mpi::World world(2);
    constexpr int kBlocks = 8;
    world.run([](mpi::Communicator& comm) {
        Runtime rt(3);
        Tampi tampi(rt);
        const int peer = 1 - comm.rank();
        std::vector<double> ghost(kBlocks, 0.0);    // "recv buffer"
        std::vector<double> mesh(kBlocks, 0.0);     // "mesh blocks"
        std::vector<double> sendbuf(kBlocks, 0.0);  // "send buffer"

        for (int b = 0; b < kBlocks; ++b) {
            const auto bi = static_cast<std::size_t>(b);
            // pack
            rt.submit([&, b, bi] { sendbuf[bi] = comm.rank() * 1000 + b; },
                      {out(&sendbuf[bi], sizeof(double))}, "pack");
            // send
            rt.submit([&, b, bi] { tampi.isend(comm, &sendbuf[bi], sizeof(double), peer, b); },
                      {in(&sendbuf[bi], sizeof(double))}, "send");
            // recv
            rt.submit([&, b, bi] { tampi.irecv(comm, &ghost[bi], sizeof(double), peer, b); },
                      {out(&ghost[bi], sizeof(double))}, "recv");
            // unpack/compute
            rt.submit([&, bi] { mesh[bi] = ghost[bi] + 0.5; },
                      {in(&ghost[bi], sizeof(double)), out(&mesh[bi], sizeof(double))}, "stencil");
        }
        rt.taskwait();
        for (int b = 0; b < kBlocks; ++b) {
            EXPECT_DOUBLE_EQ(mesh[static_cast<std::size_t>(b)], peer * 1000 + b + 0.5);
        }
        EXPECT_EQ(tampi.pending(), 0u);
    });
}

TEST(Tampi, AlreadyCompleteRequestFastPath) {
    mpi::World world(1);
    world.run([](mpi::Communicator& comm) {
        Runtime rt(1);
        Tampi tampi(rt);
        double v = 4.5, r = 0;
        comm.send(&v, sizeof v, 0, 0);  // self-message already delivered
        rt.submit(
            [&] {
                mpi::Request req = comm.irecv(&r, sizeof r, 0, 0);
                EXPECT_TRUE(req.test());
                tampi.iwait(std::move(req));  // must not register an event
            },
            {out(&r, sizeof r)});
        rt.taskwait();
        EXPECT_DOUBLE_EQ(r, 4.5);
        EXPECT_EQ(tampi.pending(), 0u);
    });
}

}  // namespace
}  // namespace dfamr::tampi
