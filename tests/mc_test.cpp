// Tests for the schedule-space model checker (src/verify/mc/): the
// controlled runtime's replay semantics, DPOR exploration of the graph
// catalog, seeded-mutation counterexamples with minimization, the
// wire-protocol model checker, and the live WireChecker observer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "verify/mc/controlled_runtime.hpp"
#include "verify/mc/explorer.hpp"
#include "verify/mc/graphs.hpp"
#include "verify/mc/protocol.hpp"
#include "verify/mc/transport_models.hpp"

namespace dfamr::verify::mc {
namespace {

int edge_index(const ControlledRuntime& rt, int pred, int succ) {
    const auto& edges = rt.edges();
    const auto it = std::find(edges.begin(), edges.end(), std::make_pair(pred, succ));
    return it == edges.end() ? -1 : static_cast<int>(it - edges.begin());
}

// ----- controlled runtime ---------------------------------------------------

TEST(ControlledRuntime, RegistryWiresTheDiamond) {
    // diamond: A(0) -> B(1), A -> C(2), B -> D(3), C -> D. The edges come
    // out of the real DependencyRegistry, not a hand-written list.
    ControlledRuntime rt(diamond());
    EXPECT_GE(edge_index(rt, 0, 1), 0);
    EXPECT_GE(edge_index(rt, 0, 2), 0);
    EXPECT_GE(edge_index(rt, 1, 3), 0);
    EXPECT_GE(edge_index(rt, 2, 3), 0);
}

TEST(ControlledRuntime, ReplayIsBitwiseDeterministic) {
    ControlledRuntime rt(amr_timestep());
    const std::vector<std::size_t> digits{1, 0, 2, 1, 0, 3};
    const ControlledRuntime::RunResult a = rt.run(digits);
    const ControlledRuntime::RunResult b = rt.run(digits);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.order, b.order);
    EXPECT_EQ(a.choices, b.choices);
    EXPECT_TRUE(a.deplint_clean) << a.deplint_report;
}

TEST(ControlledRuntime, EveryScheduleRunsEveryTaskOnce) {
    const TaskGraph g = amr_timestep();
    ControlledRuntime rt(g);
    for (std::size_t seed : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
        const std::vector<std::size_t> digits(16, seed);  // clamped per step
        const ControlledRuntime::RunResult r = rt.run(digits);
        ASSERT_EQ(r.order.size(), g.tasks.size());
        std::vector<int> sorted = r.order;
        std::sort(sorted.begin(), sorted.end());
        for (std::size_t i = 0; i < sorted.size(); ++i) {
            EXPECT_EQ(sorted[i], static_cast<int>(i));
        }
    }
}

TEST(ControlledRuntime, RenderedScheduleNamesEveryStep) {
    ControlledRuntime rt(diamond());
    const std::string rendered = rt.render_schedule(std::vector<std::size_t>{});
    EXPECT_NE(rendered.find("step 0"), std::string::npos) << rendered;
    EXPECT_NE(rendered.find("A#0"), std::string::npos) << rendered;
    EXPECT_NE(rendered.find("D#3"), std::string::npos) << rendered;
}

// ----- DPOR exploration -----------------------------------------------------

TEST(Explorer, CatalogIsDeterministicAndDepLintClean) {
    for (const TaskGraph& g : all_graphs()) {
        ControlledRuntime rt(g);
        ExploreOptions opts;
        opts.max_schedules = 5000;
        const ExploreResult r = explore(rt, opts);
        EXPECT_TRUE(r.clean()) << g.name;
        EXPECT_TRUE(r.deterministic) << g.name;
        EXPECT_TRUE(r.deplint_clean) << g.name;
        EXPECT_EQ(r.stats.distinct_checksums, 1u) << g.name;
        EXPECT_GE(r.stats.schedules, 2u) << g.name;  // real interleaving choice
    }
}

TEST(Explorer, SleepSetsPruneWithoutLosingTerminalStates) {
    // The AMR timestep has two independent block pipelines: plenty of
    // commuting action pairs for the sleep sets to prune. (The small
    // catalog graphs funnel everything through shared queues, where the
    // conservative dependence relation rightly prunes nothing.)
    ControlledRuntime rt(amr_timestep());
    ExploreOptions opts;
    opts.max_schedules = 5000;
    const ExploreResult r = explore(rt, opts);
    EXPECT_TRUE(r.clean());
    EXPECT_GT(r.stats.sleep_pruned, 0u);
    EXPECT_EQ(r.stats.distinct_checksums, 1u);
}

TEST(Explorer, ScheduleCapIsHonored) {
    ControlledRuntime rt(amr_timestep());
    ExploreOptions opts;
    opts.max_schedules = 50;
    const ExploreResult r = explore(rt, opts);
    EXPECT_TRUE(r.stats.hit_cap);
    EXPECT_EQ(r.stats.schedules, 50u);
}

// ----- seeded mutation ------------------------------------------------------

TEST(Mutation, EveryDroppedDiamondEdgeIsCaught) {
    const TaskGraph g = diamond();
    const std::size_t edges = ControlledRuntime(g).edges().size();
    ASSERT_GE(edges, 4u);
    for (std::size_t e = 0; e < edges; ++e) {
        ControlledRuntime rt(g, static_cast<int>(e));
        const ExploreResult r = explore(rt, {});
        EXPECT_FALSE(r.clean()) << "dropped edge " << e << " went unnoticed";
        ASSERT_TRUE(r.counterexample.has_value()) << "edge " << e;
    }
}

TEST(Mutation, CounterexampleIsMinimalAndReplays) {
    // Drop B -> D: D can run before B, and the explorer must find a
    // schedule that proves it dynamically (diverging checksum).
    const TaskGraph g = diamond();
    ControlledRuntime probe(g);
    const int e = edge_index(probe, 1, 3);
    ASSERT_GE(e, 0);
    ControlledRuntime rt(g, e);
    const ExploreResult r = explore(rt, {});
    ASSERT_FALSE(r.deterministic);
    ASSERT_TRUE(r.counterexample.has_value());
    const Counterexample& ce = *r.counterexample;
    // Replaying the minimized digits reproduces the divergence exactly.
    const ControlledRuntime::RunResult replay = rt.run(ce.choices);
    EXPECT_EQ(replay.checksum, ce.checksum);
    EXPECT_NE(ce.checksum, ce.expected);
    // Minimality (greedy): no strict prefix still diverges, and no single
    // digit can be lowered without losing the violation.
    for (std::size_t len = 0; len < ce.choices.size(); ++len) {
        std::vector<std::size_t> prefix(ce.choices.begin(),
                                        ce.choices.begin() + static_cast<std::ptrdiff_t>(len));
        EXPECT_NE(rt.run(prefix).checksum, replay.checksum)
            << "prefix of length " << len << " already diverges";
    }
    for (std::size_t i = 0; i < ce.choices.size(); ++i) {
        if (ce.choices[i] == 0) continue;
        std::vector<std::size_t> lowered = ce.choices;
        --lowered[i];
        EXPECT_EQ(rt.run(lowered).checksum, ce.expected)
            << "digit " << i << " could have been lower";
    }
}

TEST(Mutation, DropsAreCaughtAcrossTheWholeCatalog) {
    for (const TaskGraph& g : all_graphs()) {
        const std::size_t edges = ControlledRuntime(g).edges().size();
        for (std::size_t e = 0; e < edges; ++e) {
            ControlledRuntime rt(g, static_cast<int>(e));
            ExploreOptions opts;
            opts.max_schedules = 5000;
            const ExploreResult r = explore(rt, opts);
            EXPECT_FALSE(r.clean()) << g.name << " edge " << e;
        }
    }
}

// ----- protocol model checker -----------------------------------------------

TEST(Protocol, CleanUnderEveryFaultKind) {
    for (FaultKind kind : all_fault_kinds()) {
        ModelOptions opts;
        opts.fault = kind;
        const ModelResult r = check_protocol(opts);
        EXPECT_TRUE(r.clean()) << to_string(kind) << ": " << r.to_string();
        EXPECT_GT(r.states_explored, 100u) << to_string(kind);
        EXPECT_GT(r.final_states, 0u) << to_string(kind);
    }
}

TEST(Protocol, FaultsEnlargeTheStateSpace) {
    ModelOptions none;
    ModelOptions drop;
    drop.fault = FaultKind::Drop;
    EXPECT_GT(check_protocol(drop).states_explored, check_protocol(none).states_explored);
}

TEST(Protocol, TablesRejectOutOfOrderEvents) {
    // The tables themselves are the spec: Cts before Rts, Data before Cts,
    // and anything after Done are all invalid.
    using S = SenderState;
    using R = ReceiverState;
    EXPECT_EQ(kSenderTable[static_cast<int>(S::Idle)][1], kInvalidState);      // RecvCts
    EXPECT_EQ(kSenderTable[static_cast<int>(S::RtsSent)][2], kInvalidState);   // SendData
    EXPECT_EQ(kSenderTable[static_cast<int>(S::Done)][0], kInvalidState);      // SendRts
    EXPECT_EQ(kReceiverTable[static_cast<int>(R::Idle)][2], kInvalidState);    // RecvData
    EXPECT_EQ(kReceiverTable[static_cast<int>(R::CtsOwed)][2], kInvalidState); // RecvData
    EXPECT_EQ(kReceiverTable[static_cast<int>(R::Done)][0], kInvalidState);    // RecvRts
}

// ----- transport fast-path models -------------------------------------------

TEST(CoalescedModel, CleanUnderEveryFaultKind) {
    for (FaultKind kind : all_fault_kinds()) {
        CoalescedModelOptions opts;
        opts.fault = kind;
        const ModelResult r = check_coalesced_protocol(opts);
        EXPECT_TRUE(r.clean()) << to_string(kind) << ": " << r.to_string();
        EXPECT_GT(r.states_explored, 100u) << to_string(kind);
        EXPECT_GT(r.final_states, 0u) << to_string(kind);
    }
}

TEST(CoalescedModel, MergesActuallyHappen) {
    // The coalesce action must enlarge the state space over the same
    // workload with merging disabled-in-effect (batch cap of 2 vs a cap
    // that admits the whole eager workload in one frame).
    CoalescedModelOptions small;
    small.batch_cap = 2;
    CoalescedModelOptions big;
    big.batch_cap = 6;
    EXPECT_GT(check_coalesced_protocol(big).states_explored,
              check_coalesced_protocol(small).states_explored);
}

TEST(CoalescedModel, ReorderEnlargesTheStateSpace) {
    CoalescedModelOptions none;
    CoalescedModelOptions reorder;
    reorder.fault = FaultKind::Reorder;
    EXPECT_GT(check_coalesced_protocol(reorder).states_explored,
              check_coalesced_protocol(none).states_explored);
}

TEST(ShmRingModel, CleanUnderEveryFaultKind) {
    for (FaultKind kind : all_fault_kinds()) {
        ShmRingOptions opts;
        opts.fault = kind;
        const ModelResult r = check_shm_ring(opts);
        EXPECT_TRUE(r.clean()) << to_string(kind) << ": " << r.to_string();
        EXPECT_GT(r.final_states, 0u) << to_string(kind);
    }
}

TEST(ShmRingModel, FrameLargerThanRingStreamsThrough) {
    // A single frame three times the ring size: only partial writes and
    // reads can move it, and the model must still reach completion
    // everywhere (no wedged producer/consumer pair).
    ShmRingOptions opts;
    opts.capacity = 2;
    opts.frame_sizes = {6};
    const ModelResult r = check_shm_ring(opts);
    EXPECT_TRUE(r.clean()) << r.to_string();
    EXPECT_GT(r.final_states, 0u);
}

TEST(ShmRingModel, StallGateKeepsTheRingBoundedNotDeadlocked) {
    ShmRingOptions opts;
    opts.fault = FaultKind::Stall;
    opts.capacity = 1;  // tightest ring: every byte needs a drain
    opts.frame_sizes = {3, 2};
    const ModelResult r = check_shm_ring(opts);
    EXPECT_TRUE(r.clean()) << r.to_string();
}

// ----- live WireChecker -----------------------------------------------------

net::FrameHeader frame(net::FrameKind kind, int src, std::uint32_t seq = 0) {
    net::FrameHeader h;
    h.kind = kind;
    h.src = src;
    h.seq = seq;
    return h;
}

TEST(WireChecker, CleanRendezvousAndEagerTrafficPasses) {
    WireChecker chk(0);
    chk.on_frame_sent(1, frame(net::FrameKind::Hello, 0));
    chk.on_frame_sent(1, frame(net::FrameKind::Eager, 0));
    chk.on_frame_sent(1, frame(net::FrameKind::Rts, 0, 7));
    chk.on_frame_received(1, frame(net::FrameKind::Cts, 1, 7));
    chk.on_frame_sent(1, frame(net::FrameKind::Data, 0, 7));
    chk.on_frame_sent(1, frame(net::FrameKind::Bye, 0));
    chk.on_frame_received(1, frame(net::FrameKind::Bye, 1));
    EXPECT_TRUE(chk.violations().empty()) << chk.violations().front();
    EXPECT_TRUE(chk.pending().empty());
    EXPECT_EQ(chk.frames_checked(), 7u);
}

TEST(WireChecker, CtsWithoutRtsIsAViolation) {
    WireChecker chk(0);
    chk.on_frame_received(1, frame(net::FrameKind::Cts, 1, 3));
    ASSERT_FALSE(chk.violations().empty());
}

TEST(WireChecker, DataBeforeCtsIsAViolation) {
    WireChecker chk(0);
    chk.on_frame_sent(1, frame(net::FrameKind::Rts, 0, 3));
    chk.on_frame_sent(1, frame(net::FrameKind::Data, 0, 3));  // no Cts yet
    ASSERT_FALSE(chk.violations().empty());
}

TEST(WireChecker, DuplicateCtsIsAViolation) {
    WireChecker chk(0);
    chk.on_frame_sent(1, frame(net::FrameKind::Rts, 0, 3));
    chk.on_frame_received(1, frame(net::FrameKind::Cts, 1, 3));
    chk.on_frame_received(1, frame(net::FrameKind::Cts, 1, 3));
    ASSERT_FALSE(chk.violations().empty());
}

TEST(WireChecker, TrafficAfterByeIsAViolation) {
    WireChecker chk(0);
    chk.on_frame_sent(1, frame(net::FrameKind::Bye, 0));
    chk.on_frame_sent(1, frame(net::FrameKind::Eager, 0));
    ASSERT_FALSE(chk.violations().empty());
}

TEST(WireChecker, StrandedRendezvousShowsAsPendingNotViolation) {
    WireChecker chk(0);
    chk.on_frame_sent(1, frame(net::FrameKind::Rts, 0, 9));
    // Peer dies here: no Cts ever arrives.
    EXPECT_TRUE(chk.violations().empty());
    ASSERT_FALSE(chk.pending().empty());
    EXPECT_NE(chk.pending().front().find("9"), std::string::npos);
}

}  // namespace
}  // namespace dfamr::verify::mc
