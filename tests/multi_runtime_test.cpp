// Singleton-audit regression tests: the serve plane runs many tasking
// Runtimes and in-process MPI worlds in one process at once, so nothing in
// those layers may rely on process-global mutable state. These tests run
// under the sanitizer matrix (TSan included) like every other gtest binary.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "amr/config.hpp"
#include "core/variants.hpp"
#include "tasking/runtime.hpp"

namespace dfamr {
namespace {

// ---- concurrent tasking runtimes ------------------------------------------

TEST(MultiRuntime, IndependentRuntimesRunConcurrently) {
    // N runtimes constructed, driven, and destroyed by N host threads at
    // once. Any hidden global (a static queue, a shared TLS slot misused
    // across instances) shows up as a lost task, a wrong counter, or a
    // sanitizer report.
    constexpr int kRuntimes = 4;
    constexpr int kTasksPer = 200;
    std::vector<std::thread> hosts;
    std::atomic<int> total{0};
    for (int r = 0; r < kRuntimes; ++r) {
        hosts.emplace_back([&total, r, kTasksPer] {
            tasking::Runtime rt(1 + (r % 3));
            std::atomic<int> local{0};
            for (int i = 0; i < kTasksPer; ++i) {
                rt.submit([&local] { local.fetch_add(1, std::memory_order_relaxed); }, {},
                          "count");
            }
            rt.taskwait();
            EXPECT_EQ(local.load(), kTasksPer);
            total.fetch_add(local.load(), std::memory_order_relaxed);
        });
    }
    for (auto& t : hosts) t.join();
    EXPECT_EQ(total.load(), kRuntimes * kTasksPer);
}

TEST(MultiRuntime, NestedRuntimeInsideForeignTask) {
    // A task of one runtime constructs and drives a second runtime — the
    // serve pool does exactly this (each segment task builds per-rank
    // runtimes for the hybrid variants). The inner runtime's inline work
    // must not be attributed to the outer pool's current-task context.
    tasking::Runtime outer(2);
    std::atomic<int> inner_done{0};
    for (int i = 0; i < 4; ++i) {
        outer.submit(
            [&inner_done] {
                tasking::Runtime inner(0);  // workers==0: inline at taskwait
                std::atomic<int> n{0};
                for (int j = 0; j < 50; ++j) {
                    inner.submit([&n] { n.fetch_add(1, std::memory_order_relaxed); }, {},
                                 "inner");
                }
                inner.taskwait();
                if (n.load() == 50) inner_done.fetch_add(1, std::memory_order_relaxed);
            },
            {}, "outer");
    }
    outer.taskwait();
    EXPECT_EQ(inner_done.load(), 4);
}

// ---- concurrent in-process worlds ------------------------------------------

core::RunResult run_once(const amr::Config& cfg, amr::Variant variant) {
    core::RunOptions ropts;
    ropts.ignore_launch_env = true;
    return core::run_variant(cfg, variant, nullptr, nullptr, ropts);
}

/// Scales a canonical input down to a seconds-sized problem (the same knobs
/// the serve plane's job_config applies).
void shrink(amr::Config& cfg) {
    cfg.npx = 2;
    cfg.npy = cfg.npz = 1;
    cfg.nx = cfg.ny = cfg.nz = 8;
    cfg.num_vars = 8;
    cfg.comm_vars = 4;
    cfg.num_tsteps = 4;
    cfg.stages_per_ts = 6;
    cfg.checksum_freq = 2;
    cfg.num_refine = 2;
    cfg.refine_freq = 2;
    cfg.workers = 2;
    cfg.validate();
}

TEST(MultiRuntime, ConcurrentWorldsProduceSoloChecksums) {
    // Two full simulations (each an in-process MPI world with its own rank
    // threads, runtimes and TAMPI engines) run concurrently in one process.
    // Cross-talk between the worlds would corrupt the deterministic
    // checksum history of at least one of them.
    amr::Config small = amr::single_sphere_input();
    shrink(small);
    amr::Config other = amr::four_spheres_input();
    shrink(other);
    other.seed = 11;  // distinct stream: cross-talk cannot hide behind symmetry

    const core::RunResult solo_small = run_once(small, amr::Variant::TampiOss);
    const core::RunResult solo_other = run_once(other, amr::Variant::ForkJoin);

    for (int round = 0; round < 2; ++round) {
        core::RunResult a;
        core::RunResult b;
        std::thread ta([&] { a = run_once(small, amr::Variant::TampiOss); });
        std::thread tb([&] { b = run_once(other, amr::Variant::ForkJoin); });
        ta.join();
        tb.join();
        EXPECT_EQ(a.checksums, solo_small.checksums) << "round " << round;
        EXPECT_EQ(b.checksums, solo_other.checksums) << "round " << round;
    }
}

TEST(MultiRuntime, ManySmallWorldsChurn) {
    // Construction/destruction churn: worlds continuously created and torn
    // down from several threads hunts lifecycle races (static init, id
    // reuse, leaked registrations) rather than steady-state ones.
    amr::Config cfg = amr::single_sphere_input();
    cfg.npx = 1;
    cfg.npy = cfg.npz = 1;
    cfg.nx = cfg.ny = cfg.nz = 8;
    cfg.num_tsteps = 2;
    cfg.workers = 1;
    cfg.validate();

    const core::RunResult solo = run_once(cfg, amr::Variant::MpiOnly);
    std::vector<std::thread> threads;
    std::atomic<int> mismatches{0};
    for (int t = 0; t < 3; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 3; ++i) {
                const core::RunResult r = run_once(cfg, amr::Variant::MpiOnly);
                if (r.checksums != solo.checksums) {
                    mismatches.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace dfamr
