// Property tests for the ghost-exchange machinery: a constant field must be
// an exact fixpoint of (exchange + stencil) across refinement levels — this
// exercises same-level copies, restriction, prolongation, reflection, and
// both stencils end to end on a single rank.
#include <gtest/gtest.h>

#include "amr/comm_plan.hpp"
#include "amr/mesh.hpp"

namespace dfamr::amr {
namespace {

Config refined_config() {
    Config cfg;
    cfg.npx = cfg.npy = cfg.npz = 1;
    cfg.init_x = cfg.init_y = cfg.init_z = 2;
    cfg.nx = cfg.ny = cfg.nz = 4;
    cfg.num_vars = 2;
    cfg.num_refine = 2;
    return cfg;
}

/// Builds a single-rank mesh with a refined corner, filled with `value`.
Mesh make_refined_mesh(double value) {
    const Config cfg = refined_config();
    Mesh mesh(cfg, 0);
    ObjectSpec sphere;
    sphere.type = ObjectType::SpheroidSurface;
    sphere.center = {0, 0, 0};
    sphere.size = {0.3, 0.3, 0.3};
    for (int i = 0; i < 2; ++i) {
        const RefineRound round = mesh.structure().plan_refine_round({sphere}, false);
        if (round.empty()) break;
        mesh.structure().apply_refine_round(round);
    }
    mesh.init_blocks();
    for (const BlockKey& key : mesh.owned_keys()) {
        Block& b = mesh.block(key);
        for (std::size_t i = 0; i < b.data_size(); ++i) b.data()[i] = value;
    }
    return mesh;
}

void exchange_all(Mesh& mesh, const CommPlan& plan, int gb, int ge) {
    for (int dir = 0; dir < 3; ++dir) {
        const DirectionPlan& dp = plan.direction(dir);
        EXPECT_TRUE(dp.neighbors.empty()) << "single rank: no remote traffic";
        for (const IntraCopy& copy : dp.copies) {
            mesh.block(copy.dst).copy_face_from(mesh.block(copy.src), copy.geom, gb, ge);
        }
        for (const auto& [key, sense] : dp.boundary) {
            mesh.block(key).reflect_face(dir, sense, gb, ge);
        }
    }
}

TEST(GhostExchange, MeshHasMixedLevels) {
    Mesh mesh = make_refined_mesh(1.0);
    int levels[3] = {0, 0, 0};
    for (const BlockKey& key : mesh.owned_keys()) ++levels[key.level];
    EXPECT_GT(levels[1] + levels[2], 0) << "refinement must have happened";
    EXPECT_GT(levels[0], 0) << "coarse blocks must remain";
}

class StencilFixpoint : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Stencils, StencilFixpoint, ::testing::Values(7, 27),
                         [](const auto& pinfo) {
                             return "points" + std::to_string(pinfo.param);
                         });

TEST_P(StencilFixpoint, ConstantFieldIsExactFixpoint) {
    const double kValue = 3.25;
    Mesh mesh = make_refined_mesh(kValue);
    const Config& cfg = mesh.config();
    CommPlan plan(mesh.structure(), mesh.shape(), 0, CommPlanOptions{});

    for (int sweep = 0; sweep < 3; ++sweep) {
        exchange_all(mesh, plan, 0, cfg.num_vars);
        for (const BlockKey& key : mesh.owned_keys()) {
            mesh.block(key).apply_stencil(GetParam(), 0, cfg.num_vars);
        }
    }
    for (const BlockKey& key : mesh.owned_keys()) {
        const Block& b = mesh.block(key);
        for (int v = 0; v < cfg.num_vars; ++v) {
            for (int x = 1; x <= cfg.nx; ++x) {
                for (int y = 1; y <= cfg.ny; ++y) {
                    for (int z = 1; z <= cfg.nz; ++z) {
                        ASSERT_DOUBLE_EQ(b.at(v, x, y, z), kValue)
                            << "level " << key.level << " cell (" << x << ',' << y << ',' << z
                            << ')';
                    }
                }
            }
        }
    }
}

TEST(GhostExchange, SevenPointConservesTotalOnUniformLevels) {
    // On a mesh without level mismatches, reflection makes the 7-point
    // average exactly conservative (DESIGN.md §4): the global sum of a
    // RANDOM field is preserved to round-off.
    Config cfg = refined_config();
    cfg.num_refine = 0;
    Mesh mesh(cfg, 0);
    mesh.init_blocks();
    CommPlan plan(mesh.structure(), mesh.shape(), 0, CommPlanOptions{});

    const double before = mesh.local_checksum(0, cfg.num_vars);
    for (int sweep = 0; sweep < 5; ++sweep) {
        exchange_all(mesh, plan, 0, cfg.num_vars);
        for (const BlockKey& key : mesh.owned_keys()) {
            mesh.block(key).stencil7(0, cfg.num_vars);
        }
    }
    EXPECT_NEAR(mesh.local_checksum(0, cfg.num_vars), before, 1e-9 * std::abs(before));
}

TEST(GhostExchange, MixedLevelDriftStaysWithinTolerance) {
    // With coarse-fine faces the scheme is only approximately conservative;
    // the drift per sweep must stay well inside the validation tolerance.
    Mesh mesh = make_refined_mesh(0.0);
    const Config& cfg = mesh.config();
    for (const BlockKey& key : mesh.owned_keys()) {
        mesh.block(key).init_cells(mesh.structure().box(key), cfg.seed);
    }
    CommPlan plan(mesh.structure(), mesh.shape(), 0, CommPlanOptions{});

    double prev = mesh.local_checksum(0, cfg.num_vars);
    for (int sweep = 0; sweep < 5; ++sweep) {
        exchange_all(mesh, plan, 0, cfg.num_vars);
        for (const BlockKey& key : mesh.owned_keys()) {
            mesh.block(key).stencil7(0, cfg.num_vars);
        }
        const double now = mesh.local_checksum(0, cfg.num_vars);
        EXPECT_LT(std::abs(now - prev), 0.01 * std::abs(prev)) << "sweep " << sweep;
        prev = now;
    }
}

}  // namespace
}  // namespace dfamr::amr
