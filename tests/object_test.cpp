// Tests for miniAMR input objects: intersection predicates per type,
// movement/growth/bounce, and the touch semantics that drive refinement.
#include <gtest/gtest.h>

#include "amr/object.hpp"
#include "common/rng.hpp"

namespace dfamr::amr {
namespace {

ObjectSpec sphere_at(Vec3d center, double r) {
    ObjectSpec o;
    o.type = ObjectType::SpheroidSolid;
    o.center = center;
    o.size = {r, r, r};
    return o;
}

TEST(Objects, SolidSphereIntersection) {
    const ObjectSpec s = sphere_at({0.5, 0.5, 0.5}, 0.2);
    EXPECT_TRUE(s.volume_intersects(Box{{0.4, 0.4, 0.4}, {0.6, 0.6, 0.6}}));
    EXPECT_FALSE(s.volume_intersects(Box{{0.8, 0.8, 0.8}, {0.9, 0.9, 0.9}}));
    // Box diagonally near the sphere but outside it (corner farther than r).
    EXPECT_FALSE(s.volume_intersects(Box{{0.65, 0.65, 0.65}, {0.9, 0.9, 0.9}}));
    // Same distances along a single axis do intersect.
    EXPECT_TRUE(s.volume_intersects(Box{{0.65, 0.45, 0.45}, {0.9, 0.55, 0.55}}));
}

TEST(Objects, SolidSphereContainment) {
    const ObjectSpec s = sphere_at({0.5, 0.5, 0.5}, 0.3);
    EXPECT_TRUE(s.volume_contains(Box{{0.45, 0.45, 0.45}, {0.55, 0.55, 0.55}}));
    // Box touching the boundary region is not fully contained.
    EXPECT_FALSE(s.volume_contains(Box{{0.45, 0.45, 0.45}, {0.85, 0.55, 0.55}}));
}

TEST(Objects, SurfaceVsSolidTouch) {
    ObjectSpec surface = sphere_at({0.5, 0.5, 0.5}, 0.3);
    surface.type = ObjectType::SpheroidSurface;
    ObjectSpec solid = sphere_at({0.5, 0.5, 0.5}, 0.3);

    const Box deep_inside{{0.47, 0.47, 0.47}, {0.53, 0.53, 0.53}};
    const Box crossing{{0.7, 0.45, 0.45}, {0.9, 0.55, 0.55}};  // spans the boundary
    EXPECT_FALSE(surface.touches(deep_inside)) << "surface objects ignore interior blocks";
    EXPECT_TRUE(solid.touches(deep_inside));
    EXPECT_TRUE(surface.touches(crossing));
    EXPECT_TRUE(solid.touches(crossing));
}

TEST(Objects, EllipsoidAnisotropy) {
    ObjectSpec e = sphere_at({0.5, 0.5, 0.5}, 0.1);
    e.size = {0.4, 0.1, 0.1};
    EXPECT_TRUE(e.volume_intersects(Box{{0.82, 0.48, 0.48}, {0.88, 0.52, 0.52}}));
    EXPECT_FALSE(e.volume_intersects(Box{{0.48, 0.82, 0.48}, {0.52, 0.88, 0.52}}));
}

TEST(Objects, RectangleTypes) {
    ObjectSpec r;
    r.type = ObjectType::RectangleSolid;
    r.center = {0.5, 0.5, 0.5};
    r.size = {0.2, 0.1, 0.1};
    EXPECT_TRUE(r.volume_intersects(Box{{0.65, 0.55, 0.55}, {0.75, 0.65, 0.65}}));
    EXPECT_FALSE(r.volume_intersects(Box{{0.75, 0.45, 0.45}, {0.85, 0.55, 0.55}}));
    EXPECT_TRUE(r.volume_contains(Box{{0.45, 0.45, 0.45}, {0.55, 0.55, 0.55}}));

    ObjectSpec rs = r;
    rs.type = ObjectType::RectangleSurface;
    EXPECT_FALSE(rs.touches(Box{{0.45, 0.45, 0.45}, {0.55, 0.55, 0.55}}));
    EXPECT_TRUE(rs.touches(Box{{0.25, 0.45, 0.45}, {0.35, 0.55, 0.55}}));  // crosses x face
}

TEST(Objects, HemispheroidHalfspace) {
    ObjectSpec h;
    h.type = ObjectType::HemispheroidPlusXSolid;
    h.center = {0.5, 0.5, 0.5};
    h.size = {0.3, 0.3, 0.3};
    // Entirely on the -x side of the cut plane: outside the hemispheroid.
    EXPECT_FALSE(h.volume_intersects(Box{{0.3, 0.45, 0.45}, {0.45, 0.55, 0.55}}));
    // Same box mirrored to +x: inside.
    EXPECT_TRUE(h.volume_intersects(Box{{0.55, 0.45, 0.45}, {0.7, 0.55, 0.55}}));

    ObjectSpec hm = h;
    hm.type = ObjectType::HemispheroidMinusXSolid;
    EXPECT_TRUE(hm.volume_intersects(Box{{0.3, 0.45, 0.45}, {0.45, 0.55, 0.55}}));
    EXPECT_FALSE(hm.volume_intersects(Box{{0.55, 0.45, 0.45}, {0.7, 0.55, 0.55}}));
}

TEST(Objects, HemispheroidAxes) {
    for (int code = 4; code <= 15; ++code) {
        ObjectSpec h;
        h.type = static_cast<ObjectType>(code);
        h.center = {0.5, 0.5, 0.5};
        h.size = {0.2, 0.2, 0.2};
        const int axis = (code - 4) / 4;       // 0,0,1,1,2,2 per pair... see below
        (void)axis;
        // The center point cube always straddles the cut plane.
        EXPECT_TRUE(h.volume_intersects(Box{{0.45, 0.45, 0.45}, {0.55, 0.55, 0.55}}))
            << "type " << code;
        // A far-away box never intersects.
        EXPECT_FALSE(h.volume_intersects(Box{{0.9, 0.9, 0.9}, {0.95, 0.95, 0.95}}))
            << "type " << code;
    }
}

TEST(Objects, CylinderTypes) {
    ObjectSpec c;
    c.type = ObjectType::CylinderZSolid;
    c.center = {0.5, 0.5, 0.5};
    c.size = {0.1, 0.1, 0.4};  // thin tall cylinder along z
    EXPECT_TRUE(c.volume_intersects(Box{{0.45, 0.45, 0.15}, {0.55, 0.55, 0.25}}));
    EXPECT_FALSE(c.volume_intersects(Box{{0.45, 0.45, 0.02}, {0.55, 0.55, 0.08}}));  // below
    EXPECT_FALSE(c.volume_intersects(Box{{0.7, 0.7, 0.45}, {0.8, 0.8, 0.55}}));      // outside radius
    EXPECT_TRUE(c.volume_contains(Box{{0.47, 0.47, 0.3}, {0.53, 0.53, 0.6}}));
}

TEST(Objects, StepMovesAndGrows) {
    ObjectSpec o = sphere_at({0.2, 0.5, 0.5}, 0.1);
    o.move = {0.1, 0, 0};
    o.inc = {0.01, 0.01, 0.01};
    o.step();
    EXPECT_DOUBLE_EQ(o.center.x, 0.3);
    EXPECT_DOUBLE_EQ(o.size.x, 0.11);
    EXPECT_DOUBLE_EQ(o.size.y, 0.11);
}

TEST(Objects, BounceReversesAtBoundary) {
    ObjectSpec o = sphere_at({0.85, 0.5, 0.5}, 0.1);
    o.bounce = true;
    o.move = {0.1, 0, 0};
    o.step();  // now at 0.95, overlapping the boundary -> reverse
    EXPECT_DOUBLE_EQ(o.center.x, 0.95);
    EXPECT_LT(o.move.x, 0);
    o.step();
    EXPECT_DOUBLE_EQ(o.center.x, 0.85);
}

TEST(Objects, NoBounceKeepsDirection) {
    ObjectSpec o = sphere_at({0.85, 0.5, 0.5}, 0.1);
    o.move = {0.1, 0, 0};
    o.step();
    o.step();
    EXPECT_GT(o.center.x, 1.0);  // left the domain, as the single-sphere input does in reverse
    EXPECT_GT(o.move.x, 0);
}

TEST(Objects, BoundingBoxCoversShape) {
    ObjectSpec h;
    h.type = ObjectType::HemispheroidPlusXSolid;
    h.center = {0.5, 0.5, 0.5};
    h.size = {0.2, 0.3, 0.1};
    const Box bb = h.bounding_box();
    EXPECT_DOUBLE_EQ(bb.lo.x, 0.5);  // cut plane
    EXPECT_DOUBLE_EQ(bb.hi.x, 0.7);
    EXPECT_DOUBLE_EQ(bb.lo.y, 0.2);
    EXPECT_DOUBLE_EQ(bb.hi.z, 0.6);
}

// Property: a surface object's touch set is exactly the intersecting but
// not contained blocks, across random boxes and all shape types.
TEST(ObjectsProperty, SurfaceTouchConsistency) {
    Rng rng(77);
    const int types[] = {0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20};
    for (int type : types) {
        ObjectSpec o;
        o.type = static_cast<ObjectType>(type);
        o.center = {0.5, 0.5, 0.5};
        o.size = {0.25, 0.3, 0.2};
        for (int i = 0; i < 200; ++i) {
            Vec3d lo{rng.uniform(0, 0.9), rng.uniform(0, 0.9), rng.uniform(0, 0.9)};
            Vec3d ext{rng.uniform(0.02, 0.3), rng.uniform(0.02, 0.3), rng.uniform(0.02, 0.3)};
            const Box b{lo, lo + ext};
            const bool expect = o.volume_intersects(b) && !o.volume_contains(b);
            EXPECT_EQ(o.touches(b), expect) << "type " << type << " trial " << i;
        }
    }
}

// Property: containment implies intersection for every type.
TEST(ObjectsProperty, ContainmentImpliesIntersection) {
    Rng rng(99);
    for (int type = 0; type <= 21; ++type) {
        ObjectSpec o;
        o.type = static_cast<ObjectType>(type);
        o.center = {0.5, 0.5, 0.5};
        o.size = {0.3, 0.25, 0.35};
        for (int i = 0; i < 100; ++i) {
            Vec3d lo{rng.uniform(0.3, 0.6), rng.uniform(0.3, 0.6), rng.uniform(0.3, 0.6)};
            Vec3d ext{rng.uniform(0.01, 0.15), rng.uniform(0.01, 0.15), rng.uniform(0.01, 0.15)};
            const Box b{lo, lo + ext};
            if (o.volume_contains(b)) {
                EXPECT_TRUE(o.volume_intersects(b)) << "type " << type;
            }
        }
    }
}

}  // namespace
}  // namespace dfamr::amr
