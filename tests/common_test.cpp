// Unit tests for src/common: geometry, RNG, CLI parser, table printer, stats.
#include <gtest/gtest.h>

#include <sstream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/threading.hpp"

#include <thread>

namespace dfamr {
namespace {

TEST(Geometry, BoxIntersection) {
    Box a{{0, 0, 0}, {1, 1, 1}};
    Box b{{0.5, 0.5, 0.5}, {2, 2, 2}};
    Box c{{1.5, 1.5, 1.5}, {2, 2, 2}};
    EXPECT_TRUE(a.intersects(b));
    EXPECT_TRUE(b.intersects(a));
    EXPECT_FALSE(a.intersects(c));
    // Touching faces count as intersecting (closed boxes).
    Box d{{1, 0, 0}, {2, 1, 1}};
    EXPECT_TRUE(a.intersects(d));
}

TEST(Geometry, BoxContains) {
    Box outer{{0, 0, 0}, {4, 4, 4}};
    Box inner{{1, 1, 1}, {2, 2, 2}};
    EXPECT_TRUE(outer.contains(inner));
    EXPECT_FALSE(inner.contains(outer));
    EXPECT_TRUE(outer.contains(outer));
    EXPECT_TRUE(outer.contains(Vec3d{2, 2, 2}));
    EXPECT_FALSE(outer.contains(Vec3d{5, 2, 2}));
}

TEST(Geometry, CenterExtentCorners) {
    Box b{{0, 2, 4}, {2, 6, 10}};
    EXPECT_EQ(b.center(), (Vec3d{1, 4, 7}));
    EXPECT_EQ(b.extent(), (Vec3d{2, 4, 6}));
    auto cs = corners(b);
    EXPECT_EQ(cs[0], (Vec3d{0, 2, 4}));
    EXPECT_EQ(cs[7], (Vec3d{2, 6, 10}));
}

TEST(Geometry, VecIndexing) {
    Vec3i v{3, 5, 7};
    EXPECT_EQ(v[0], 3);
    EXPECT_EQ(v[1], 5);
    EXPECT_EQ(v[2], 7);
    v[1] = 9;
    EXPECT_EQ(v.y, 9);
    EXPECT_EQ(v.product(), 3 * 9 * 7);
}

TEST(Rng, DeterministicAndSeedSensitive) {
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next_u64(), b.next_u64());
    EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformRange) {
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniform(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Stats, WelfordMatchesClosedForm) {
    RunningStats s;
    for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
    EXPECT_EQ(s.count(), 4);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Cli, ParsesOptionsFlagsAndMulti) {
    CliParser cli("test");
    cli.add_option("--nx", "block size x", "10");
    cli.add_flag("--send_faces", "one message per face");
    cli.add_multi_option("--object", 3, "an object spec");
    const char* argv[] = {"prog", "--nx", "12", "--send_faces", "--object", "2", "0.5", "0.5",
                          "--object", "3", "0.1", "0.2"};
    ASSERT_TRUE(cli.parse(12, argv));
    EXPECT_EQ(cli.get_int("--nx"), 12);
    EXPECT_TRUE(cli.get_flag("--send_faces"));
    ASSERT_EQ(cli.get_multi("--object").size(), 2u);
    EXPECT_EQ(cli.get_multi("--object")[1][0], "3");
}

TEST(Cli, DefaultsAndErrors) {
    CliParser cli("test");
    cli.add_option("--nx", "block size x", "10");
    const char* argv[] = {"prog"};
    ASSERT_TRUE(cli.parse(1, argv));
    EXPECT_EQ(cli.get_int("--nx"), 10);

    const char* bad[] = {"prog", "--unknown"};
    EXPECT_THROW(cli.parse(2, bad), ConfigError);

    const char* missing[] = {"prog", "--nx"};
    EXPECT_THROW(cli.parse(2, missing), ConfigError);
}

TEST(Cli, NonNumericValueThrows) {
    CliParser cli("test");
    cli.add_option("--nx", "block size x");
    const char* argv[] = {"prog", "--nx", "abc"};
    ASSERT_TRUE(cli.parse(3, argv));
    EXPECT_THROW(cli.get_int("--nx"), ConfigError);
}

TEST(Table, PrintsAlignedAndCsv) {
    TextTable t({"name", "value"});
    t.add_row({"alpha", TextTable::num(1.5)});
    t.add_row({"b", "2"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("1.50"), std::string::npos);
    EXPECT_EQ(t.to_csv(), "name,value\nalpha,1.50\nb,2\n");
}

TEST(Table, RowWidthMismatchThrows) {
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Error, RequireThrowsWithContext) {
    try {
        DFAMR_REQUIRE(1 == 2, "math is broken");
        FAIL() << "should have thrown";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("math is broken"), std::string::npos);
    }
}

TEST(Threading, BarrierSynchronizesGenerations) {
    ThreadBarrier barrier(4);
    std::atomic<int> phase0{0}, phase1{0};
    std::vector<std::thread> ts;
    for (int i = 0; i < 4; ++i) {
        ts.emplace_back([&] {
            ++phase0;
            barrier.wait();
            EXPECT_EQ(phase0.load(), 4);
            ++phase1;
            barrier.wait();
            EXPECT_EQ(phase1.load(), 4);
        });
    }
    for (auto& t : ts) t.join();
}

TEST(Threading, CountdownLatch) {
    CountdownLatch latch(3);
    std::atomic<int> done{0};
    std::thread waiter([&] {
        latch.wait();
        done = 1;
    });
    latch.count_down(2);
    EXPECT_EQ(done.load(), 0);
    latch.count_down();
    waiter.join();
    EXPECT_EQ(done.load(), 1);
}

}  // namespace
}  // namespace dfamr
