// Tests for the ghost-exchange communication plan: symmetry between the two
// endpoints of every exchange, chunking under the paper's options, stream
// layout, and tag-space partitioning.
#include <gtest/gtest.h>

#include <map>

#include "amr/comm_plan.hpp"
#include "amr/mesh.hpp"

namespace dfamr::amr {
namespace {

Config plan_config(int npx = 2, int npy = 2, int npz = 1) {
    Config cfg;
    cfg.npx = npx;
    cfg.npy = npy;
    cfg.npz = npz;
    cfg.init_x = cfg.init_y = cfg.init_z = 2;
    cfg.nx = cfg.ny = cfg.nz = 4;
    cfg.num_vars = 4;
    cfg.num_refine = 2;
    return cfg;
}

/// Builds plans for every rank of the structure.
std::vector<CommPlan> all_plans(const GlobalStructure& gs, const BlockShape& shape,
                                const CommPlanOptions& opts) {
    std::vector<CommPlan> plans;
    for (int r = 0; r < gs.num_ranks(); ++r) {
        plans.emplace_back(gs, shape, r, opts);
    }
    return plans;
}

void expect_symmetric(const std::vector<CommPlan>& plans) {
    for (const CommPlan& plan : plans) {
        for (int d = 0; d < 3; ++d) {
            for (const NeighborExchange& ex : plan.direction(d).neighbors) {
                // Find the peer's mirror exchange.
                const CommPlan& peer = plans[static_cast<std::size_t>(ex.peer)];
                const NeighborExchange* mirror = nullptr;
                for (const NeighborExchange& pex : peer.direction(d).neighbors) {
                    if (pex.peer == plan.rank()) mirror = &pex;
                }
                ASSERT_NE(mirror, nullptr);
                // My sends match the peer's recvs one-to-one in order, size
                // and chunking.
                ASSERT_EQ(ex.sends.size(), mirror->recvs.size());
                for (std::size_t i = 0; i < ex.sends.size(); ++i) {
                    EXPECT_EQ(ex.sends[i].mine, mirror->recvs[i].theirs);
                    EXPECT_EQ(ex.sends[i].theirs, mirror->recvs[i].mine);
                    EXPECT_EQ(ex.sends[i].value_count, mirror->recvs[i].value_count);
                    EXPECT_EQ(ex.sends[i].value_offset, mirror->recvs[i].value_offset);
                }
                ASSERT_EQ(ex.send_chunks.size(), mirror->recv_chunks.size());
                for (std::size_t i = 0; i < ex.send_chunks.size(); ++i) {
                    EXPECT_EQ(ex.send_chunks[i].tag, mirror->recv_chunks[i].tag);
                    EXPECT_EQ(ex.send_chunks[i].value_count, mirror->recv_chunks[i].value_count);
                    EXPECT_EQ(ex.send_chunks[i].face_count, mirror->recv_chunks[i].face_count);
                }
                EXPECT_EQ(ex.send_values, mirror->recv_values);
            }
        }
    }
}

TEST(CommPlan, SymmetricOnUniformMesh) {
    const Config cfg = plan_config();
    GlobalStructure gs(cfg);
    expect_symmetric(all_plans(gs, BlockShape{4, 4, 4, 4}, CommPlanOptions{}));
}

TEST(CommPlan, SymmetricWithRefinementAndAllOptions) {
    const Config cfg = plan_config();
    GlobalStructure gs(cfg);
    // Refine a corner region so Coarser/Finer transfers appear.
    ObjectSpec sphere;
    sphere.type = ObjectType::SpheroidSurface;
    sphere.center = {0, 0, 0};
    sphere.size = {0.4, 0.4, 0.4};
    for (int i = 0; i < 2; ++i) {
        const RefineRound round = gs.plan_refine_round({sphere}, false);
        if (round.empty()) break;
        gs.apply_refine_round(round);
    }
    ASSERT_GT(gs.num_blocks(), 32u);

    for (bool send_faces : {false, true}) {
        for (int max_tasks : {0, 2, 8}) {
            CommPlanOptions opts;
            opts.send_faces = send_faces;
            opts.max_comm_tasks = max_tasks;
            expect_symmetric(all_plans(gs, BlockShape{4, 4, 4, 4}, opts));
        }
    }
}

TEST(CommPlan, DefaultAggregatesIntoOneChunk) {
    const Config cfg = plan_config();
    GlobalStructure gs(cfg);
    CommPlan plan(gs, BlockShape{4, 4, 4, 4}, 0, CommPlanOptions{});
    for (int d = 0; d < 3; ++d) {
        for (const NeighborExchange& ex : plan.direction(d).neighbors) {
            EXPECT_EQ(ex.send_chunks.size(), 1u) << "one aggregated message per neighbor";
            EXPECT_EQ(ex.send_chunks[0].face_count, static_cast<int>(ex.sends.size()));
        }
    }
}

TEST(CommPlan, SendFacesMakesOneChunkPerFace) {
    const Config cfg = plan_config();
    GlobalStructure gs(cfg);
    CommPlanOptions opts;
    opts.send_faces = true;
    CommPlan plan(gs, BlockShape{4, 4, 4, 4}, 0, opts);
    for (int d = 0; d < 3; ++d) {
        for (const NeighborExchange& ex : plan.direction(d).neighbors) {
            EXPECT_EQ(ex.send_chunks.size(), ex.sends.size());
            for (const MessageChunk& chunk : ex.send_chunks) EXPECT_EQ(chunk.face_count, 1);
        }
    }
}

TEST(CommPlan, MaxCommTasksBoundsChunks) {
    const Config cfg = plan_config();
    GlobalStructure gs(cfg);
    CommPlanOptions opts;
    opts.send_faces = true;
    opts.max_comm_tasks = 2;
    CommPlan plan(gs, BlockShape{4, 4, 4, 4}, 0, opts);
    for (int d = 0; d < 3; ++d) {
        for (const NeighborExchange& ex : plan.direction(d).neighbors) {
            EXPECT_LE(ex.send_chunks.size(), 2u);
            int covered = 0;
            for (const MessageChunk& chunk : ex.send_chunks) covered += chunk.face_count;
            EXPECT_EQ(covered, static_cast<int>(ex.sends.size())) << "chunks cover all faces";
        }
    }
}

TEST(CommPlan, StreamOffsetsAreContiguous) {
    const Config cfg = plan_config();
    GlobalStructure gs(cfg);
    CommPlan plan(gs, BlockShape{4, 4, 4, 4}, 0, CommPlanOptions{});
    for (int d = 0; d < 3; ++d) {
        for (const NeighborExchange& ex : plan.direction(d).neighbors) {
            std::int64_t expect_offset = 0;
            for (const FaceTransfer& f : ex.sends) {
                EXPECT_EQ(f.value_offset, expect_offset);
                expect_offset += f.value_count;
            }
            EXPECT_EQ(expect_offset, ex.send_values);
        }
    }
}

TEST(CommPlan, TagSpacesAreDisjointPerDirection) {
    EXPECT_LT(direction_tag(0, kTagSpacePerDirection - 1), direction_tag(1, 0));
    EXPECT_LT(direction_tag(2, kTagSpacePerDirection - 1), kExchangeTagBase);
}

TEST(CommPlan, IntraCopiesStayLocal) {
    const Config cfg = plan_config(1, 1, 1);  // one rank: everything intra
    GlobalStructure gs(cfg);
    CommPlan plan(gs, BlockShape{4, 4, 4, 4}, 0, CommPlanOptions{});
    for (int d = 0; d < 3; ++d) {
        EXPECT_TRUE(plan.direction(d).neighbors.empty());
        EXPECT_FALSE(plan.direction(d).copies.empty());
        EXPECT_FALSE(plan.direction(d).boundary.empty());
    }
    EXPECT_EQ(plan.total_send_messages(), 0);
}

TEST(CommPlan, BoundaryFacesAreDomainBoundaries) {
    const Config cfg = plan_config();
    GlobalStructure gs(cfg);
    CommPlan plan(gs, BlockShape{4, 4, 4, 4}, 0, CommPlanOptions{});
    for (int d = 0; d < 3; ++d) {
        for (const auto& [key, sense] : plan.direction(d).boundary) {
            EXPECT_TRUE(gs.at_domain_boundary(key, d, sense));
        }
    }
}

TEST(CommPlan, MessageCountsScaleWithSendFaces) {
    const Config cfg = plan_config();
    GlobalStructure gs(cfg);
    CommPlan aggregated(gs, BlockShape{4, 4, 4, 4}, 0, CommPlanOptions{});
    CommPlanOptions opts;
    opts.send_faces = true;
    CommPlan per_face(gs, BlockShape{4, 4, 4, 4}, 0, opts);
    EXPECT_GT(per_face.total_send_messages(), aggregated.total_send_messages());
    EXPECT_EQ(per_face.total_send_values(), aggregated.total_send_values());
}

}  // namespace
}  // namespace dfamr::amr
