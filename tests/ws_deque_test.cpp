// Stress tests for the Chase–Lev work-stealing deque, written to be run
// under ThreadSanitizer with NO suppressions: every access pattern here is
// one the memory-order annotations in ws_deque.hpp claim to be race-free.
// The grow-during-steal test in particular keeps thieves inside steal()
// while the owner repeatedly doubles the buffer, exercising the retired-
// buffer chain and the release/acquire pair on buffer_.

#include "tasking/ws_deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace {

using dfamr::tasking::WsDeque;

TEST(WsDequeTest, LifoForOwnerFifoForThief) {
    WsDeque<int> dq;
    int items[4] = {10, 11, 12, 13};
    for (int& it : items) dq.push(&it);
    EXPECT_EQ(dq.steal(), &items[0]);  // thief takes the oldest
    EXPECT_EQ(dq.pop(), &items[3]);    // owner takes the newest
    EXPECT_EQ(dq.pop(), &items[2]);
    EXPECT_EQ(dq.pop(), &items[1]);
    EXPECT_EQ(dq.pop(), nullptr);
    EXPECT_EQ(dq.steal(), nullptr);
}

TEST(WsDequeTest, GrowPreservesLiveRange) {
    WsDeque<int> dq(2);  // force several doublings
    std::vector<int> items(64);
    for (int i = 0; i < 64; ++i) {
        items[static_cast<std::size_t>(i)] = i;
        dq.push(&items[static_cast<std::size_t>(i)]);
    }
    for (int i = 63; i >= 0; --i) EXPECT_EQ(dq.pop(), &items[static_cast<std::size_t>(i)]);
    EXPECT_EQ(dq.pop(), nullptr);
}

// Each element leaves the deque exactly once, split between one popping
// owner and several concurrent thieves.
TEST(WsDequeTest, EveryElementTakenExactlyOnce) {
    constexpr int kItems = 20000;
    constexpr int kThieves = 3;
    WsDeque<std::int64_t> dq(4);
    std::vector<std::int64_t> items(kItems);
    std::vector<std::atomic<int>> taken(kItems);
    for (auto& t : taken) t.store(0, std::memory_order_relaxed);

    std::atomic<bool> done{false};
    std::vector<std::thread> thieves;
    thieves.reserve(kThieves);
    for (int w = 0; w < kThieves; ++w) {
        thieves.emplace_back([&] {
            while (!done.load(std::memory_order_acquire)) {
                if (std::int64_t* p = dq.steal(); p != nullptr) {
                    taken[static_cast<std::size_t>(p - items.data())].fetch_add(1);
                }
            }
        });
    }

    // Owner: interleave pushes and pops so the deque keeps flipping between
    // nearly-empty (last-element races) and deep (steals from a full deque).
    for (int i = 0; i < kItems; ++i) {
        items[static_cast<std::size_t>(i)] = i;
        dq.push(&items[static_cast<std::size_t>(i)]);
        if (i % 3 == 0) {
            if (std::int64_t* p = dq.pop(); p != nullptr) {
                taken[static_cast<std::size_t>(p - items.data())].fetch_add(1);
            }
        }
    }
    while (true) {
        std::int64_t* p = dq.pop();
        if (p == nullptr && dq.size_estimate() == 0) break;
        if (p != nullptr) taken[static_cast<std::size_t>(p - items.data())].fetch_add(1);
    }
    // Let thieves drain any element a pop lost the race for.
    for (int spin = 0; spin < 1000; ++spin) std::this_thread::yield();
    done.store(true, std::memory_order_release);
    for (auto& t : thieves) t.join();

    for (int i = 0; i < kItems; ++i) {
        EXPECT_EQ(taken[static_cast<std::size_t>(i)].load(), 1) << "element " << i;
    }
}

// The TSan centerpiece: thieves hammer steal() while the owner's pushes
// force repeated buffer doublings. A thief can hold a stale buffer pointer
// across a grow; the retired-buffer chain plus the CAS revalidation must
// make that safe — and visibly so to TSan, with no suppressions.
TEST(WsDequeTest, GrowDuringStealStress) {
    constexpr int kRounds = 200;
    constexpr int kBurst = 256;  // >> initial capacity, guarantees grows
    constexpr int kThieves = 4;
    WsDeque<std::int64_t> dq(2);
    std::vector<std::int64_t> items(kRounds * kBurst);

    std::atomic<bool> done{false};
    std::atomic<std::int64_t> stolen_sum{0};
    std::atomic<std::int64_t> stolen_count{0};
    std::vector<std::thread> thieves;
    thieves.reserve(kThieves);
    for (int w = 0; w < kThieves; ++w) {
        thieves.emplace_back([&] {
            while (!done.load(std::memory_order_acquire)) {
                if (std::int64_t* p = dq.steal(); p != nullptr) {
                    // Read through the stolen pointer: if a grow published a
                    // buffer without its copied slots, or a retired buffer
                    // were freed early, this dereference is where TSan (or a
                    // crash) would catch it.
                    stolen_sum.fetch_add(*p, std::memory_order_relaxed);
                    stolen_count.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }

    std::int64_t popped_sum = 0;
    std::int64_t popped_count = 0;
    std::int64_t next = 0;
    for (int r = 0; r < kRounds; ++r) {
        // Burst of pushes: each burst overflows the current capacity, so
        // grow() runs while the thieves are mid-steal.
        for (int i = 0; i < kBurst; ++i) {
            items[static_cast<std::size_t>(next)] = next;
            dq.push(&items[static_cast<std::size_t>(next)]);
            ++next;
        }
        // Drain most of it back so the next burst grows from a small live
        // range again (grow copies [t, b) — keep that window moving).
        for (int i = 0; i < kBurst - 8; ++i) {
            if (std::int64_t* p = dq.pop(); p != nullptr) {
                popped_sum += *p;
                ++popped_count;
            }
        }
    }
    while (true) {
        std::int64_t* p = dq.pop();
        if (p == nullptr && dq.size_estimate() == 0) break;
        if (p != nullptr) {
            popped_sum += *p;
            ++popped_count;
        }
    }
    for (int spin = 0; spin < 1000; ++spin) std::this_thread::yield();
    done.store(true, std::memory_order_release);
    for (auto& t : thieves) t.join();

    // Conservation: every pushed value left exactly once, through pop or
    // steal. Sum + count together make double-delivery and loss both fail.
    const auto total = static_cast<std::int64_t>(kRounds) * kBurst;
    EXPECT_EQ(popped_count + stolen_count.load(), total);
    EXPECT_EQ(popped_sum + stolen_sum.load(), total * (total - 1) / 2);
}

}  // namespace
