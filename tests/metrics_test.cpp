// Tests for the unified metrics snapshot (trace + scheduler + wire
// counters as one JSON blob) and the minimal JSON parser the tools use to
// read it back.
#include <gtest/gtest.h>

#include <cmath>

#include "common/json.hpp"
#include "core/metrics.hpp"
#include "core/variants.hpp"

namespace dfamr::core {
namespace {

using amr::Config;
using amr::ObjectSpec;
using amr::ObjectType;
using amr::Variant;

Config tiny_config() {
    Config cfg;
    cfg.npx = 2;
    cfg.npy = cfg.npz = 1;
    cfg.init_x = cfg.init_y = cfg.init_z = 1;
    cfg.nx = cfg.ny = cfg.nz = 4;
    cfg.num_vars = 4;
    cfg.num_tsteps = 2;
    cfg.stages_per_ts = 4;
    cfg.checksum_freq = 2;
    cfg.num_refine = 2;
    cfg.refine_freq = 1;
    cfg.workers = 2;

    ObjectSpec sphere;
    sphere.type = ObjectType::SpheroidSurface;
    sphere.center = {0.1, 0.1, 0.1};
    sphere.size = {0.25, 0.25, 0.25};
    sphere.move = {0.15, 0.1, 0.05};
    sphere.bounce = true;
    cfg.objects.push_back(sphere);
    return cfg;
}

TEST(Json, ParsesScalarsAndNesting) {
    const json::Value v = json::parse(
        R"({"a": -1.5e2, "b": [true, false, null], "s": "x\n\"y\"", "o": {"k": 42}})");
    EXPECT_DOUBLE_EQ(v.at("a").as_double(), -150.0);
    EXPECT_TRUE(v.at("b").at(0).as_bool());
    EXPECT_FALSE(v.at("b").at(1).as_bool());
    EXPECT_TRUE(v.at("b").at(2).is_null());
    EXPECT_EQ(v.at("s").as_string(), "x\n\"y\"");
    EXPECT_EQ(v.at("o").at("k").as_int(), 42);
    EXPECT_EQ(v.size(), 4u);
    EXPECT_TRUE(v.contains("a"));
    EXPECT_FALSE(v.contains("z"));
}

TEST(Json, ParsesUnicodeEscapesAndEmptyContainers) {
    const json::Value v = json::parse(R"({"e": {}, "l": [], "u": "Aé"})");
    EXPECT_EQ(v.at("e").size(), 0u);
    EXPECT_EQ(v.at("l").size(), 0u);
    EXPECT_EQ(v.at("u").as_string(), "A\xc3\xa9");
}

TEST(Json, RejectsMalformedInput) {
    EXPECT_THROW(json::parse("{"), json::ParseError);
    EXPECT_THROW(json::parse("[1, 2"), json::ParseError);
    EXPECT_THROW(json::parse("{\"a\" 1}"), json::ParseError);
    EXPECT_THROW(json::parse("tru"), json::ParseError);
    EXPECT_THROW(json::parse("{} extra"), json::ParseError);
    EXPECT_THROW(json::parse("\"open"), json::ParseError);
    EXPECT_THROW(json::parse(""), json::ParseError);
    EXPECT_THROW(json::parse("1ee5"), json::ParseError);
}

TEST(Json, TypeMismatchThrows) {
    const json::Value v = json::parse("{\"n\": 1}");
    EXPECT_THROW(v.at("n").as_string(), json::ParseError);
    EXPECT_THROW(v.at("missing"), json::ParseError);
    EXPECT_THROW(v.items(), json::ParseError);
}

TEST(Metrics, EmptySnapshotEmitsParsableJson) {
    // No trace events at all: busy_ns_by_kind must emit as {} and every
    // section must still be present for trace_diff to walk.
    const MetricsSnapshot empty;
    const json::Value v = json::parse(metrics_to_json(empty));
    EXPECT_EQ(v.at("schema").as_string(), "dfamr_metrics_v1");
    EXPECT_EQ(v.at("trace").at("busy_ns_by_kind").size(), 0u);
    EXPECT_EQ(v.at("trace").at("cores").as_int(), 0);
    EXPECT_EQ(v.at("scheduler").at("refine").at("steals").as_int(), 0);
    EXPECT_EQ(v.at("net").at("frames_sent").as_int(), 0);
    EXPECT_TRUE(v.at("run").at("validation_ok").as_bool());
}

TEST(Metrics, SnapshotOfRealRunRoundTrips) {
    amr::Tracer tracer;
    tracer.enable(true);
    RunOptions opts;
    opts.ignore_launch_env = true;
    const RunResult r = run_variant(tiny_config(), Variant::TampiOss, &tracer, nullptr, opts);
    ASSERT_TRUE(r.validation_ok);

    const MetricsSnapshot snap = make_metrics_snapshot(tracer, r);
    const json::Value v = json::parse(metrics_to_json(snap));

    const json::Value& trace = v.at("trace");
    EXPECT_EQ(trace.at("cores").as_int(), snap.trace.cores);
    EXPECT_GT(trace.at("cores").as_int(), 0);
    EXPECT_EQ(trace.at("events").as_int(), static_cast<std::int64_t>(snap.trace.events));
    EXPECT_GT(trace.at("events").as_int(), 0);
    EXPECT_EQ(trace.at("span_ns").as_int(), snap.trace.span_ns);
    EXPECT_NEAR(trace.at("utilization").as_double(), snap.trace.utilization, 1e-6);
    EXPECT_GT(trace.at("busy_ns_by_kind").size(), 0u);
    // Derived fractions are consistent with their numerators.
    EXPECT_NEAR(trace.at("overlap_frac").as_double(),
                static_cast<double>(snap.trace.overlap_ns) / snap.trace.span_ns, 1e-6);

    const json::Value& sched = v.at("scheduler");
    EXPECT_EQ(sched.at("tasks_executed").as_int(),
              static_cast<std::int64_t>(r.sched.tasks_executed));
    EXPECT_GT(sched.at("tasks_executed").as_int(), 0);
    EXPECT_EQ(sched.at("refine").at("tasks_executed").as_int(),
              static_cast<std::int64_t>(r.sched_refine.tasks_executed));

    const json::Value& run = v.at("run");
    EXPECT_TRUE(run.at("validation_ok").as_bool());
    EXPECT_EQ(run.at("final_blocks").as_int(), r.final_blocks);
    EXPECT_EQ(run.at("messages").as_int(), static_cast<std::int64_t>(r.messages));
}

TEST(Metrics, SchedulerCounterSamplesAppearInTrace) {
    // The driver samples scheduler counters at phase boundaries; the traced
    // run must carry them both as sorted samples and as Chrome "C" events.
    amr::Tracer tracer;
    tracer.enable(true);
    RunOptions opts;
    opts.ignore_launch_env = true;
    const RunResult r = run_variant(tiny_config(), Variant::TampiOss, &tracer, nullptr, opts);
    ASSERT_TRUE(r.validation_ok);

    const auto counters = tracer.sorted_counters();
    ASSERT_GT(counters.size(), 0u);
    for (std::size_t i = 1; i < counters.size(); ++i) {
        EXPECT_LE(counters[i - 1].t_ns, counters[i].t_ns);
    }

    const json::Value doc = json::parse(tracer.to_chrome_json());
    std::size_t counter_events = 0;
    for (const json::Value& e : doc.at("traceEvents").items()) {
        if (e.at("ph").as_string() == "C") ++counter_events;
    }
    EXPECT_EQ(counter_events, counters.size());
}

}  // namespace
}  // namespace dfamr::core
