// Tests for the discrete-event cluster simulator.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/simulator.hpp"
#include "tasking/dependency.hpp"

namespace dfamr::sim {
namespace {

ClusterSpec tiny_cluster(int nodes = 1, int cores = 4, int rpn = 1) {
    ClusterSpec c;
    c.nodes = nodes;
    c.cores_per_node = cores;
    c.ranks_per_node = rpn;
    c.cores_per_socket = cores;  // single socket unless a test says otherwise
    return c;
}

CostModel unit_costs() {
    CostModel m;
    m.alpha_ns = 100;
    m.bytes_per_ns = 1.0;
    m.nic_gap_ns = 0;
    m.intra_node_alpha_ns = 100;
    m.intra_node_bytes_per_ns = 1.0;
    m.mpi_call_ns = 10;
    m.task_overhead_ns = 0;
    return m;
}

TEST(Simulator, SingleTaskRunsForItsCost) {
    Simulator sim(tiny_cluster(), unit_costs());
    auto t = sim.new_task(0, PhaseKind::Stencil, 1000);
    sim.submit(t);
    sim.run_until_drained();
    EXPECT_EQ(t->start_ns, 0);
    EXPECT_EQ(t->finish_ns, 1000);
    EXPECT_EQ(sim.global_time(), 1000);
    EXPECT_EQ(sim.stats().tasks, 1u);
    EXPECT_EQ(sim.stats().busy_ns, 1000);
}

TEST(Simulator, IndependentTasksUseAllCores) {
    Simulator sim(tiny_cluster(1, 4, 1), unit_costs());
    for (int i = 0; i < 8; ++i) {
        sim.submit(sim.new_task(0, PhaseKind::Stencil, 100));
    }
    sim.run_until_drained();
    EXPECT_EQ(sim.global_time(), 200);  // 8 tasks / 4 cores
}

TEST(Simulator, DependencyEdgesSerialize) {
    Simulator sim(tiny_cluster(1, 4, 1), unit_costs());
    tasking::DependencyRegistry reg;
    auto a = sim.new_task(0, PhaseKind::Stencil, 100);
    auto b = sim.new_task(0, PhaseKind::Stencil, 100);
    tasking::Dep d = tasking::inout_id(42);
    reg.register_accesses(a, std::span<const tasking::Dep>(&d, 1));
    sim.submit(a);
    reg.register_accesses(b, std::span<const tasking::Dep>(&d, 1));
    sim.submit(b);
    sim.run_until_drained();
    EXPECT_EQ(b->start_ns, 100);
    EXPECT_EQ(sim.global_time(), 200);
}

TEST(Simulator, PinnedTasksShareOneCore) {
    Simulator sim(tiny_cluster(1, 4, 1), unit_costs());
    for (int i = 0; i < 3; ++i) {
        sim.submit(sim.new_task(0, PhaseKind::Control, 100, /*pinned_core=*/0));
    }
    sim.run_until_drained();
    EXPECT_EQ(sim.global_time(), 300);
}

TEST(Simulator, MessageGatesDependencyRelease) {
    // recv's successor can only run after the wire delay, even though the
    // recv body is instantaneous (TAMPI external-event semantics).
    Simulator sim(tiny_cluster(2, 1, 1), unit_costs());
    auto send = sim.new_task(0, PhaseKind::Send, 10);
    auto recv = sim.new_task(1, PhaseKind::Recv, 10);
    auto consumer = sim.new_task(1, PhaseKind::Stencil, 5);
    recv->successors.push_back(consumer.get());
    ++consumer->pred_count;
    sim.add_message(send, recv, 1000);
    sim.submit(send);
    sim.submit(recv);
    sim.submit(consumer);
    sim.run_until_drained();
    // send body ends at 10; wire = alpha(100) + 1000B/1Bpns = 1100 -> arrival 1110.
    EXPECT_EQ(recv->finish_ns, 10 + 100 + 1000);
    EXPECT_EQ(consumer->start_ns, recv->finish_ns);
}

TEST(Simulator, NicSerializesEgress) {
    // Two inter-node messages from the same node share the NIC.
    Simulator sim(tiny_cluster(2, 2, 2), unit_costs());
    // ranks 0,1 on node 0; ranks 2,3 on node 1.
    auto s0 = sim.new_task(0, PhaseKind::Send, 0);
    auto s1 = sim.new_task(1, PhaseKind::Send, 0);
    auto r0 = sim.new_task(2, PhaseKind::Recv, 0);
    auto r1 = sim.new_task(3, PhaseKind::Recv, 0);
    sim.add_message(s0, r0, 1000);
    sim.add_message(s1, r1, 1000);
    for (auto& t : {s0, s1, r0, r1}) sim.submit(t);
    sim.run_until_drained();
    const std::int64_t first = std::min(r0->finish_ns, r1->finish_ns);
    const std::int64_t second = std::max(r0->finish_ns, r1->finish_ns);
    EXPECT_EQ(first, 1000 + 100);
    EXPECT_EQ(second, 2000 + 100);  // serialized behind the first
}

TEST(Simulator, IntraNodeMessagesBypassNic) {
    Simulator sim(tiny_cluster(1, 2, 2), unit_costs());
    auto s = sim.new_task(0, PhaseKind::Send, 0);
    auto r = sim.new_task(1, PhaseKind::Recv, 0);
    sim.add_message(s, r, 1000);
    sim.submit(s);
    sim.submit(r);
    sim.run_until_drained();
    EXPECT_EQ(r->finish_ns, 100 + 1000);
}

TEST(Simulator, CollectiveWaitsForSlowestMember) {
    Simulator sim(tiny_cluster(4, 1, 1), unit_costs());
    // Rank 2 is delayed by earlier work.
    sim.submit(sim.new_task(2, PhaseKind::Stencil, 5000));
    const int coll = sim.new_collective(8);
    std::vector<SimTaskPtr> members;
    for (int r = 0; r < 4; ++r) {
        auto m = sim.new_task(r, PhaseKind::ChecksumReduce, 10);
        sim.set_collective(m, coll);
        sim.submit(m);
        members.push_back(std::move(m));
    }
    sim.close_collective(coll);
    sim.run_until_drained();
    const CostModel m = unit_costs();
    const std::int64_t expected = 5000 + 10 + m.collective_ns(4, 8);
    for (const auto& member : members) {
        EXPECT_EQ(member->finish_ns, expected);
    }
    EXPECT_EQ(sim.stats().collectives, 1u);
}

TEST(Simulator, CollectiveHoldsCores) {
    // While rank 0 waits in the collective, its only core cannot run other
    // work; a later-submitted independent task must wait.
    Simulator sim(tiny_cluster(2, 1, 1), unit_costs());
    sim.submit(sim.new_task(1, PhaseKind::Stencil, 1000));
    const int coll = sim.new_collective(0);
    auto m0 = sim.new_task(0, PhaseKind::ChecksumReduce, 0);
    auto m1 = sim.new_task(1, PhaseKind::ChecksumReduce, 0);
    sim.set_collective(m0, coll);
    sim.set_collective(m1, coll);
    sim.submit(m0);
    auto blocked = sim.new_task(0, PhaseKind::Stencil, 10);
    sim.submit(blocked);
    sim.submit(m1);
    sim.close_collective(coll);
    sim.run_until_drained();
    EXPECT_GE(blocked->start_ns, m0->finish_ns);
}

TEST(Simulator, DrainDetectsStuckTasks) {
    Simulator sim(tiny_cluster(), unit_costs());
    auto a = sim.new_task(0, PhaseKind::Stencil, 10);
    a->pred_count = 1;  // predecessor that never exists
    sim.submit(a);
    EXPECT_THROW(sim.run_until_drained(), Error);
}

TEST(Simulator, AdvanceRanksActsAsBarrier) {
    Simulator sim(tiny_cluster(2, 1, 1), unit_costs());
    sim.submit(sim.new_task(0, PhaseKind::Stencil, 100));
    sim.run_until_drained();
    sim.advance_all_ranks_to(5000);
    sim.submit(sim.new_task(1, PhaseKind::Stencil, 10));
    sim.run_until_drained();
    EXPECT_EQ(sim.global_time(), 5010);
}

TEST(Simulator, DeterministicAcrossRuns) {
    auto run_once = [] {
        Simulator sim(tiny_cluster(2, 2, 2), unit_costs());
        tasking::DependencyRegistry reg;
        std::vector<SimTaskPtr> tasks;
        for (int i = 0; i < 50; ++i) {
            auto t = sim.new_task(i % 4, PhaseKind::Stencil, 100 + i);
            tasking::Dep d = tasking::inout_id(static_cast<std::uint64_t>(i % 7));
            reg.register_accesses(t, std::span<const tasking::Dep>(&d, 1));
            sim.submit(t);
            tasks.push_back(std::move(t));
        }
        sim.run_until_drained();
        std::vector<std::int64_t> times;
        for (const auto& t : tasks) times.push_back(t->finish_ns);
        return times;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(CostModel, CollectiveScalesLogarithmically) {
    CostModel m = unit_costs();
    EXPECT_EQ(m.collective_ns(1, 8), 0);
    EXPECT_GT(m.collective_ns(16, 8), m.collective_ns(4, 8));
    EXPECT_EQ(m.collective_ns(16, 8), 4 * (m.collective_ns(2, 8)));
}

TEST(CostModel, CalibrationProducesPositiveConstants) {
    const CostModel m = calibrate(8, 4);
    EXPECT_GT(m.stencil_ns_per_cell_var, 0);
    EXPECT_GT(m.copy_ns_per_byte, 0);
    EXPECT_GT(m.checksum_ns_per_cell_var, 0);
    EXPECT_LT(m.stencil_ns_per_cell_var, 1000) << "implausibly slow stencil";
}

}  // namespace
}  // namespace dfamr::sim
