// Tests for the global mesh structure: initialization, neighbor queries,
// refinement planning with the 2:1 invariant, coarsening, and RCB.
#include <gtest/gtest.h>

#include <set>

#include "amr/structure.hpp"
#include "common/rng.hpp"

namespace dfamr::amr {
namespace {

Config base_config(int npx = 2, int npy = 1, int npz = 1) {
    Config cfg;
    cfg.npx = npx;
    cfg.npy = npy;
    cfg.npz = npz;
    cfg.init_x = cfg.init_y = cfg.init_z = 2;
    cfg.num_refine = 3;
    return cfg;
}

ObjectSpec corner_sphere(double r = 0.2) {
    ObjectSpec o;
    o.type = ObjectType::SpheroidSurface;
    o.center = {0, 0, 0};
    o.size = {r, r, r};
    return o;
}

TEST(Structure, InitialLayoutAndOwnership) {
    const Config cfg = base_config(2, 1, 1);
    GlobalStructure gs(cfg);
    EXPECT_EQ(gs.num_blocks(), 4u * 2 * 2);
    const auto counts = gs.blocks_per_rank();
    ASSERT_EQ(counts.size(), 2u);
    EXPECT_EQ(counts[0], 8);
    EXPECT_EQ(counts[1], 8);
    EXPECT_TRUE(gs.two_to_one_ok());
    // Physical boxes tile the unit cube.
    double volume = 0;
    for (const auto& [key, owner] : gs.leaves()) {
        const Box b = gs.box(key);
        volume += b.extent().product();
    }
    EXPECT_NEAR(volume, 1.0, 1e-12);
}

TEST(Structure, SameLevelNeighbors) {
    const Config cfg = base_config(1, 1, 1);
    GlobalStructure gs(cfg);  // 2x2x2 level-0 blocks
    const BlockKey origin{0, {0, 0, 0}};
    auto nb = gs.face_neighbors(origin, 0, +1);
    ASSERT_EQ(nb.size(), 1u);
    EXPECT_EQ(nb[0].rel, FaceRel::Same);
    EXPECT_EQ(nb[0].key.anchor.x, origin.side(gs.max_level()));
    EXPECT_TRUE(gs.face_neighbors(origin, 0, -1).empty()) << "domain boundary";
    EXPECT_TRUE(gs.at_domain_boundary(origin, 1, -1));
    EXPECT_FALSE(gs.at_domain_boundary(origin, 1, +1));
}

TEST(Structure, RefinementCreatesFinerNeighbors) {
    const Config cfg = base_config(1, 1, 1);
    GlobalStructure gs(cfg);
    // Refine the origin block manually.
    RefineRound round;
    round.refine.push_back(BlockKey{0, {0, 0, 0}});
    gs.apply_refine_round(round);
    EXPECT_EQ(gs.num_blocks(), 8u - 1 + 8);
    EXPECT_TRUE(gs.two_to_one_ok());

    // The +x same-level neighbor now sees four finer neighbors on its -x face.
    const std::int64_t side = BlockKey{0, {0, 0, 0}}.side(gs.max_level());
    const BlockKey right{0, {side, 0, 0}};
    auto nb = gs.face_neighbors(right, 0, -1);
    ASSERT_EQ(nb.size(), 4u);
    std::set<int> quads;
    for (const auto& n : nb) {
        EXPECT_EQ(n.rel, FaceRel::Finer);
        EXPECT_EQ(n.key.level, 1);
        quads.insert(n.quad);
    }
    EXPECT_EQ(quads.size(), 4u);

    // And each fine block on that face sees `right` as a Coarser neighbor.
    for (const auto& n : nb) {
        auto back = gs.face_neighbors(n.key, 0, +1);
        ASSERT_EQ(back.size(), 1u);
        EXPECT_EQ(back[0].rel, FaceRel::Coarser);
        EXPECT_EQ(back[0].key, right);
        EXPECT_EQ(back[0].quad, n.quad) << "both sides agree on the coarse-face quarter";
    }
}

TEST(Structure, PlanMarksTouchedBlocks) {
    const Config cfg = base_config(1, 1, 1);
    GlobalStructure gs(cfg);
    const std::vector<ObjectSpec> objs{corner_sphere()};
    const RefineRound round = gs.plan_refine_round(objs, false);
    // Only the origin block touches the corner sphere boundary.
    ASSERT_EQ(round.refine.size(), 1u);
    EXPECT_EQ(round.refine[0], (BlockKey{0, {0, 0, 0}}));
    EXPECT_TRUE(round.coarsen_parents.empty()) << "nothing refined yet, nothing to coarsen";
}

TEST(Structure, TwoToOneHoldsThroughRefinementRounds) {
    const Config cfg = base_config(1, 1, 1);
    GlobalStructure gs(cfg);
    const std::vector<ObjectSpec> objs{corner_sphere(0.3)};
    for (int round_idx = 0; round_idx < cfg.num_refine; ++round_idx) {
        const RefineRound round = gs.plan_refine_round(objs, false);
        if (round.empty()) break;
        gs.apply_refine_round(round);
        EXPECT_TRUE(gs.two_to_one_ok()) << "after round " << round_idx;
    }
    EXPECT_GT(gs.num_blocks(), 8u);
    // Max level reached near the object, never beyond.
    int max_seen = 0;
    for (const auto& [key, owner] : gs.leaves()) max_seen = std::max(max_seen, key.level);
    EXPECT_LE(max_seen, cfg.num_refine);
    EXPECT_GE(max_seen, 2);
}

TEST(Structure, CoarseningAfterObjectMovesAway) {
    Config cfg = base_config(1, 1, 1);
    cfg.num_refine = 2;
    GlobalStructure gs(cfg);
    std::vector<ObjectSpec> objs{corner_sphere(0.25)};
    for (int i = 0; i < 4; ++i) {
        const RefineRound r = gs.plan_refine_round(objs, false);
        if (r.empty()) break;
        gs.apply_refine_round(r);
    }
    const std::size_t refined_count = gs.num_blocks();
    ASSERT_GT(refined_count, 8u);

    // Move the object to the opposite corner; the old region must coarsen
    // back (over several rounds) and the new region refine.
    objs[0].center = {1, 1, 1};
    for (int i = 0; i < 6; ++i) {
        const RefineRound r = gs.plan_refine_round(objs, false);
        if (r.empty()) break;
        gs.apply_refine_round(r);
        EXPECT_TRUE(gs.two_to_one_ok());
    }
    // Origin block is a level-0 leaf again.
    EXPECT_TRUE(gs.is_leaf(BlockKey{0, {0, 0, 0}}));
}

TEST(Structure, UniformRefineRefinesEverything) {
    const Config cfg = base_config(1, 1, 1);
    GlobalStructure gs(cfg);
    const RefineRound round = gs.plan_refine_round({}, true);
    EXPECT_EQ(round.refine.size(), 8u);
    gs.apply_refine_round(round);
    EXPECT_EQ(gs.num_blocks(), 64u);
}

TEST(Structure, RefinePropagatesToCoarserNeighbors) {
    Config cfg = base_config(1, 1, 1);
    cfg.num_refine = 3;
    GlobalStructure gs(cfg);
    // Refine origin twice so a level-2 block borders a level-1 block; then a
    // further refinement of the level-2 block must drag the level-1 along.
    std::vector<ObjectSpec> objs{corner_sphere(0.10)};
    for (int i = 0; i < 3; ++i) {
        const RefineRound r = gs.plan_refine_round(objs, false);
        if (r.empty()) break;
        gs.apply_refine_round(r);
        EXPECT_TRUE(gs.two_to_one_ok()) << "round " << i;
    }
    // Regardless of the exact cascade, the invariant held throughout (checked
    // above); also ensure we did reach level 3 blocks only near the corner.
    for (const auto& [key, owner] : gs.leaves()) {
        if (key.level == 3) {
            const Box b = gs.box(key);
            EXPECT_LT(b.lo.x, 0.3);
        }
    }
}

TEST(Structure, ImbalanceMetric) {
    const Config cfg = base_config(2, 1, 1);
    GlobalStructure gs(cfg);
    EXPECT_DOUBLE_EQ(gs.imbalance(), 0.0);
    // Refine one rank-0 block: rank 0 now has 8+7 blocks, rank 1 has 8.
    RefineRound round;
    round.refine.push_back(BlockKey{0, {0, 0, 0}});
    gs.apply_refine_round(round);
    const double avg = (15.0 + 8.0) / 2.0;
    EXPECT_NEAR(gs.imbalance(), (15.0 - avg) / avg, 1e-12);
}

TEST(Structure, RcbBalancesCounts) {
    Config cfg = base_config(2, 2, 1);  // 4 ranks
    cfg.num_refine = 2;
    GlobalStructure gs(cfg);
    std::vector<ObjectSpec> objs{corner_sphere(0.3)};
    for (int i = 0; i < 3; ++i) {
        const RefineRound r = gs.plan_refine_round(objs, false);
        if (r.empty()) break;
        gs.apply_refine_round(r);
    }
    ASSERT_GT(gs.imbalance(), 0.2) << "corner refinement should imbalance the corner rank";

    const auto new_owners = gs.rcb_partition();
    gs.set_owners(new_owners);
    const auto counts = gs.blocks_per_rank();
    std::int64_t mn = counts[0], mx = counts[0];
    for (auto c : counts) {
        mn = std::min(mn, c);
        mx = std::max(mx, c);
    }
    EXPECT_LE(mx - mn, 2) << "RCB should nearly equalize counts";
}

TEST(Structure, RcbIsDeterministic) {
    Config cfg = base_config(2, 2, 2);
    GlobalStructure gs(cfg);
    gs.apply_refine_round([&] {
        RefineRound r;
        r.refine.push_back(BlockKey{0, {0, 0, 0}});
        return r;
    }());
    const auto a = gs.rcb_partition();
    const auto b = gs.rcb_partition();
    EXPECT_EQ(a, b);
}

TEST(Structure, BlocksOfMatchesOwners) {
    const Config cfg = base_config(2, 1, 1);
    GlobalStructure gs(cfg);
    std::size_t total = 0;
    for (int r = 0; r < cfg.num_ranks(); ++r) {
        for (const BlockKey& key : gs.blocks_of(r)) {
            EXPECT_EQ(gs.owner(key), r);
            ++total;
        }
    }
    EXPECT_EQ(total, gs.num_blocks());
}

// Property: random object walks never break the 2:1 invariant and never
// exceed the level limits.
TEST(StructureProperty, RandomWalkKeepsInvariants) {
    Rng rng(11);
    for (int trial = 0; trial < 5; ++trial) {
        Config cfg = base_config(1, 1, 1);
        cfg.num_refine = 3;
        GlobalStructure gs(cfg);
        ObjectSpec obj;
        obj.type = ObjectType::SpheroidSurface;
        obj.center = {rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)};
        obj.size = {rng.uniform(0.05, 0.3), rng.uniform(0.05, 0.3), rng.uniform(0.05, 0.3)};
        obj.move = {rng.uniform(-0.1, 0.1), rng.uniform(-0.1, 0.1), rng.uniform(-0.1, 0.1)};
        obj.bounce = true;
        std::vector<ObjectSpec> objs{obj};
        for (int step = 0; step < 12; ++step) {
            for (int round_idx = 0; round_idx < 2; ++round_idx) {
                const RefineRound r = gs.plan_refine_round(objs, false);
                if (r.empty()) break;
                gs.apply_refine_round(r);
            }
            ASSERT_TRUE(gs.two_to_one_ok()) << "trial " << trial << " step " << step;
            for (const auto& [key, owner] : gs.leaves()) {
                ASSERT_GE(key.level, 0);
                ASSERT_LE(key.level, cfg.num_refine);
            }
            objs[0].step();
        }
    }
}

}  // namespace
}  // namespace dfamr::amr
