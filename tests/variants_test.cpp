// Integration tests: the three variants run the full mini-app and must
// agree on the physics (identical refinement decisions, matching checksums)
// while exercising their distinct parallelization strategies.
#include <gtest/gtest.h>

#include <cmath>

#include "core/variants.hpp"

namespace dfamr::core {
namespace {

using amr::Config;
using amr::ObjectSpec;
using amr::ObjectType;
using amr::Variant;

Config tiny_config(int npx = 2, int npy = 1, int npz = 1) {
    Config cfg;
    cfg.npx = npx;
    cfg.npy = npy;
    cfg.npz = npz;
    cfg.init_x = cfg.init_y = cfg.init_z = 1;
    cfg.nx = cfg.ny = cfg.nz = 4;
    cfg.num_vars = 4;
    cfg.num_tsteps = 2;
    cfg.stages_per_ts = 4;
    cfg.checksum_freq = 2;
    cfg.num_refine = 2;
    cfg.refine_freq = 1;
    cfg.workers = 2;

    ObjectSpec sphere;
    sphere.type = ObjectType::SpheroidSurface;
    sphere.center = {0.1, 0.1, 0.1};
    sphere.size = {0.25, 0.25, 0.25};
    sphere.move = {0.15, 0.1, 0.05};
    sphere.bounce = true;
    cfg.objects.push_back(sphere);
    return cfg;
}

void expect_checksums_match(const RunResult& a, const RunResult& b, double rel_tol) {
    ASSERT_EQ(a.checksums.size(), b.checksums.size());
    for (std::size_t i = 0; i < a.checksums.size(); ++i) {
        const double scale = std::max(1.0, std::abs(a.checksums[i]));
        EXPECT_NEAR(a.checksums[i], b.checksums[i], rel_tol * scale) << "checksum stage " << i;
    }
}

TEST(Variants, MpiOnlyRunsAndValidates) {
    const RunResult r = run_variant(tiny_config(), Variant::MpiOnly);
    EXPECT_TRUE(r.validation_ok);
    EXPECT_GT(r.total_flops, 0);
    EXPECT_FALSE(r.checksums.empty());
    EXPECT_GT(r.final_blocks, 0);
    EXPECT_GT(r.messages, 0u);
}

TEST(Variants, ForkJoinMatchesMpiOnly) {
    const Config cfg = tiny_config();
    const RunResult a = run_variant(cfg, Variant::MpiOnly);
    const RunResult b = run_variant(cfg, Variant::ForkJoin);
    EXPECT_TRUE(b.validation_ok);
    expect_checksums_match(a, b, 1e-12);
    EXPECT_EQ(a.final_blocks, b.final_blocks) << "identical refinement decisions expected";
    EXPECT_EQ(a.total_flops, b.total_flops);
}

TEST(Variants, TampiOssMatchesMpiOnly) {
    const Config cfg = tiny_config();
    const RunResult a = run_variant(cfg, Variant::MpiOnly);
    const RunResult b = run_variant(cfg, Variant::TampiOss);
    EXPECT_TRUE(b.validation_ok);
    expect_checksums_match(a, b, 1e-12);
    EXPECT_EQ(a.final_blocks, b.final_blocks);
    EXPECT_EQ(a.total_flops, b.total_flops);
}

TEST(Variants, TampiOssSendFacesSeparateBuffersMatches) {
    Config cfg = tiny_config();
    const RunResult a = run_variant(cfg, Variant::MpiOnly);
    cfg.send_faces = true;
    cfg.separate_buffers = true;
    const RunResult b = run_variant(cfg, Variant::TampiOss);
    EXPECT_TRUE(b.validation_ok);
    expect_checksums_match(a, b, 1e-12);
}

TEST(Variants, TampiOssMaxCommTasksMatches) {
    Config cfg = tiny_config();
    const RunResult a = run_variant(cfg, Variant::MpiOnly);
    cfg.send_faces = true;
    cfg.separate_buffers = true;
    cfg.max_comm_tasks = 2;
    const RunResult b = run_variant(cfg, Variant::TampiOss);
    EXPECT_TRUE(b.validation_ok);
    expect_checksums_match(a, b, 1e-12);
}

TEST(Variants, TampiOssDelayedChecksumMatches) {
    Config cfg = tiny_config();
    const RunResult a = run_variant(cfg, Variant::MpiOnly);
    cfg.delayed_checksum = true;
    const RunResult b = run_variant(cfg, Variant::TampiOss);
    EXPECT_TRUE(b.validation_ok);
    // Delayed validation changes *when* sums are validated, not their values.
    expect_checksums_match(a, b, 1e-12);
}

TEST(Variants, RankCountInvariance) {
    // The same physical problem decomposed over 1 vs 4 ranks must produce
    // the same checksums (up to FP reduction order).
    Config one = tiny_config(1, 1, 1);
    one.init_x = 2;
    one.init_y = 2;
    one.init_z = 1;
    Config four = tiny_config(2, 2, 1);
    four.init_x = 1;
    four.init_y = 1;
    four.init_z = 1;
    const RunResult a = run_variant(one, Variant::MpiOnly);
    const RunResult b = run_variant(four, Variant::MpiOnly);
    expect_checksums_match(a, b, 1e-9);
    EXPECT_EQ(a.final_blocks, b.final_blocks);
}

TEST(Variants, UniformRefineGrowsBlocksEverywhere) {
    Config cfg = tiny_config(1, 1, 1);
    cfg.objects.clear();
    cfg.uniform_refine = true;
    cfg.num_refine = 1;
    cfg.num_tsteps = 1;
    cfg.stages_per_ts = 2;
    const RunResult r = run_variant(cfg, Variant::MpiOnly);
    EXPECT_EQ(r.final_blocks, 8);
}

TEST(Variants, NoRefinementPathWorks) {
    Config cfg = tiny_config();
    cfg.refine_freq = 0;  // refinement disabled
    const RunResult a = run_variant(cfg, Variant::MpiOnly);
    const RunResult b = run_variant(cfg, Variant::TampiOss);
    EXPECT_EQ(a.final_blocks, 2);
    expect_checksums_match(a, b, 1e-12);
    EXPECT_EQ(a.times.refine, 0.0);
}

TEST(Variants, CommVarsGroupsMatch) {
    Config cfg = tiny_config();
    cfg.comm_vars = 2;  // two groups of two variables
    const RunResult a = run_variant(cfg, Variant::MpiOnly);
    const RunResult b = run_variant(cfg, Variant::TampiOss);
    expect_checksums_match(a, b, 1e-12);
    Config ungrouped = tiny_config();
    const RunResult c = run_variant(ungrouped, Variant::MpiOnly);
    expect_checksums_match(a, c, 1e-12);  // grouping must not change the physics
}

TEST(Variants, LoadBalancingKeepsResults) {
    Config cfg = tiny_config();
    cfg.inbalance = 0.01;  // aggressive rebalancing
    const RunResult a = run_variant(cfg, Variant::MpiOnly);
    Config no_lb = tiny_config();
    no_lb.lb_opt = false;
    const RunResult b = run_variant(no_lb, Variant::MpiOnly);
    expect_checksums_match(a, b, 1e-9);
    EXPECT_EQ(a.final_blocks, b.final_blocks);

    const RunResult c = run_variant(cfg, Variant::TampiOss);
    expect_checksums_match(a, c, 1e-12);
}

TEST(Variants, SingleRankWorks) {
    Config cfg = tiny_config(1, 1, 1);
    for (Variant v : {Variant::MpiOnly, Variant::ForkJoin, Variant::TampiOss}) {
        const RunResult r = run_variant(cfg, v);
        EXPECT_TRUE(r.validation_ok) << to_string(v);
        EXPECT_GT(r.total_flops, 0) << to_string(v);
    }
}

TEST(Variants, Stencil27Matches) {
    Config cfg = tiny_config();
    cfg.stencil = 27;
    const RunResult a = run_variant(cfg, Variant::MpiOnly);
    const RunResult b = run_variant(cfg, Variant::TampiOss);
    EXPECT_TRUE(a.validation_ok);
    expect_checksums_match(a, b, 1e-12);
    // 27-point stencils do ~27/7 the FLOPs of 7-point ones.
    Config seven = tiny_config();
    const RunResult c = run_variant(seven, Variant::MpiOnly);
    EXPECT_EQ(a.total_flops % 27, 0);
    EXPECT_EQ(a.total_flops / 27, c.total_flops / 7);
}

TEST(Variants, SerialRefinementAblationMatches) {
    Config cfg = tiny_config();
    const RunResult a = run_variant(cfg, Variant::TampiOss);
    cfg.taskify_refinement = false;
    const RunResult b = run_variant(cfg, Variant::TampiOss);
    EXPECT_TRUE(b.validation_ok);
    expect_checksums_match(a, b, 1e-12);
    EXPECT_EQ(a.final_blocks, b.final_blocks);
}

TEST(Variants, CountersAreConsistentAcrossVariants) {
    const Config cfg = tiny_config();
    const RunResult a = run_variant(cfg, Variant::MpiOnly);
    const RunResult b = run_variant(cfg, Variant::TampiOss);
    // Identical mesh evolution implies identical refinement activity.
    EXPECT_EQ(a.counters.blocks_split, b.counters.blocks_split);
    EXPECT_EQ(a.counters.blocks_merged, b.counters.blocks_merged);
    EXPECT_EQ(a.counters.refinement_phases, b.counters.refinement_phases);
    EXPECT_EQ(a.counters.checksum_stages, b.counters.checksum_stages);
    EXPECT_GT(a.counters.blocks_split, 0);
    EXPECT_EQ(static_cast<std::size_t>(a.counters.checksum_stages), a.checksums.size());
}

TEST(Variants, TracerCapturesPhases) {
    Config cfg = tiny_config();
    amr::Tracer tracer;
    tracer.enable(true);
    const RunResult r = run_variant(cfg, Variant::TampiOss, &tracer);
    EXPECT_TRUE(r.validation_ok);
    const amr::TraceAnalysis a = tracer.analyze();
    EXPECT_GT(a.busy_ns, 0);
    EXPECT_GT(a.busy_ns_by_kind.count(amr::PhaseKind::Stencil), 0u);
    EXPECT_GT(a.busy_ns_by_kind.count(amr::PhaseKind::IntraCopy), 0u);
    EXPECT_GT(a.cores, 0);
}

}  // namespace
}  // namespace dfamr::core
