// Unit + property tests for the region-dependency registry, which underpins
// both the real tasking runtime and the DES DAG builders.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "tasking/dependency.hpp"

namespace dfamr::tasking {
namespace {

DepNodePtr make_node(std::uint64_t id) {
    auto n = std::make_shared<DepNode>();
    n->node_id = id;
    return n;
}

int register_one(DependencyRegistry& reg, const DepNodePtr& n, std::vector<Dep> deps) {
    return reg.register_accesses(n, deps);
}

bool has_edge(const DepNodePtr& from, const DepNodePtr& to) {
    return std::find(from->successors.begin(), from->successors.end(), to.get()) !=
           from->successors.end();
}

TEST(DependencyRegistry, ReadAfterWrite) {
    DependencyRegistry reg;
    double x = 0;
    auto writer = make_node(1), reader = make_node(2);
    EXPECT_EQ(register_one(reg, writer, {out(&x, sizeof x)}), 0);
    EXPECT_EQ(register_one(reg, reader, {in(&x, sizeof x)}), 1);
    EXPECT_TRUE(has_edge(writer, reader));
    EXPECT_EQ(reader->pred_count, 1);
}

TEST(DependencyRegistry, TwoReadersRunConcurrently) {
    DependencyRegistry reg;
    double x = 0;
    auto w = make_node(1), r1 = make_node(2), r2 = make_node(3);
    register_one(reg, w, {out(&x, sizeof x)});
    EXPECT_EQ(register_one(reg, r1, {in(&x, sizeof x)}), 1);
    EXPECT_EQ(register_one(reg, r2, {in(&x, sizeof x)}), 1);
    EXPECT_FALSE(has_edge(r1, r2));
    EXPECT_FALSE(has_edge(r2, r1));
}

TEST(DependencyRegistry, WriteAfterReadWaitsForAllReaders) {
    DependencyRegistry reg;
    double x = 0;
    auto w1 = make_node(1), r1 = make_node(2), r2 = make_node(3), w2 = make_node(4);
    register_one(reg, w1, {out(&x, sizeof x)});
    register_one(reg, r1, {in(&x, sizeof x)});
    register_one(reg, r2, {in(&x, sizeof x)});
    EXPECT_EQ(register_one(reg, w2, {out(&x, sizeof x)}), 2);  // both readers, writer superseded
    EXPECT_TRUE(has_edge(r1, w2));
    EXPECT_TRUE(has_edge(r2, w2));
}

TEST(DependencyRegistry, WriteAfterWrite) {
    DependencyRegistry reg;
    double x = 0;
    auto w1 = make_node(1), w2 = make_node(2);
    register_one(reg, w1, {out(&x, sizeof x)});
    EXPECT_EQ(register_one(reg, w2, {out(&x, sizeof x)}), 1);
    EXPECT_TRUE(has_edge(w1, w2));
}

TEST(DependencyRegistry, DisjointRegionsAreIndependent) {
    DependencyRegistry reg;
    double a[4] = {};
    auto w1 = make_node(1), w2 = make_node(2);
    register_one(reg, w1, {out(&a[0], 2 * sizeof(double))});
    EXPECT_EQ(register_one(reg, w2, {out(&a[2], 2 * sizeof(double))}), 0);
}

TEST(DependencyRegistry, PartialOverlapCreatesEdge) {
    DependencyRegistry reg;
    double a[4] = {};
    auto w1 = make_node(1), w2 = make_node(2);
    register_one(reg, w1, {out(&a[0], 3 * sizeof(double))});
    EXPECT_EQ(register_one(reg, w2, {out(&a[1], 3 * sizeof(double))}), 1);
    EXPECT_TRUE(has_edge(w1, w2));
}

TEST(DependencyRegistry, MultidependencyDedupesEdges) {
    DependencyRegistry reg;
    double a[8] = {};
    auto packer = make_node(1), sender = make_node(2);
    // One writer covering two sections; the consumer declares a
    // multidependency on both sections — only one edge must result.
    register_one(reg, packer, {out(&a[0], 8 * sizeof(double))});
    const int edges = register_one(
        reg, sender, {in(&a[0], 2 * sizeof(double)), in(&a[4], 2 * sizeof(double))});
    EXPECT_EQ(edges, 1);
    EXPECT_EQ(sender->pred_count, 1);
}

TEST(DependencyRegistry, ReleasedPredecessorAddsNoEdge) {
    DependencyRegistry reg;
    double x = 0;
    auto w = make_node(1), r = make_node(2);
    register_one(reg, w, {out(&x, sizeof x)});
    w->dep_released = true;
    EXPECT_EQ(register_one(reg, r, {in(&x, sizeof x)}), 0);
}

TEST(DependencyRegistry, InOutBehavesAsReadAndWrite) {
    DependencyRegistry reg;
    double x = 0;
    auto w = make_node(1), io = make_node(2), r = make_node(3);
    register_one(reg, w, {out(&x, sizeof x)});
    EXPECT_EQ(register_one(reg, io, {inout(&x, sizeof x)}), 1);
    EXPECT_EQ(register_one(reg, r, {in(&x, sizeof x)}), 1);
    EXPECT_TRUE(has_edge(io, r));
}

TEST(DependencyRegistry, SyntheticRegions) {
    DependencyRegistry reg;
    auto w = make_node(1), r = make_node(2);
    register_one(reg, w, {out_id(1001)});
    EXPECT_EQ(register_one(reg, r, {in_id(1001)}), 1);
    auto r2 = make_node(3);
    EXPECT_EQ(register_one(reg, r2, {in_id(1002)}), 0);
}

TEST(DependencyRegistry, GarbageCollectPrunesReleased) {
    DependencyRegistry reg;
    double a[16] = {};
    for (std::uint64_t i = 0; i < 16; ++i) {
        auto n = make_node(i + 1);
        register_one(reg, n, {out(&a[i], sizeof(double))});
        n->dep_released = true;
    }
    EXPECT_GE(reg.interval_count(), 16u);
    reg.garbage_collect();
    EXPECT_EQ(reg.interval_count(), 0u);
}

// Property test: for random access sequences, the registry must produce a
// graph whose transitive order respects every conflict (pairs where at least
// one access writes an overlapping region).
TEST(DependencyRegistryProperty, RandomConflictsAreOrdered) {
    Rng rng(2020);
    for (int trial = 0; trial < 30; ++trial) {
        DependencyRegistry reg;
        constexpr int kNodes = 40;
        constexpr std::size_t kArena = 64;
        std::vector<DepNodePtr> nodes;
        std::vector<Dep> chosen;
        static char arena[kArena];

        for (int i = 0; i < kNodes; ++i) {
            const std::size_t base = rng.below(kArena - 8);
            const std::size_t size = 1 + rng.below(8);
            const DepKind kind = rng.next_double() < 0.5 ? DepKind::In : DepKind::Out;
            Dep dep{kind, Region(arena + base, size)};
            auto node = make_node(static_cast<std::uint64_t>(i + 1));
            reg.register_accesses(node, std::span<const Dep>(&dep, 1));
            nodes.push_back(node);
            chosen.push_back(dep);
        }

        // Reachability via BFS over successor edges.
        auto reaches = [&](int from, int to) {
            std::vector<int> stack{from};
            std::vector<bool> seen(kNodes + 2, false);
            while (!stack.empty()) {
                int cur = stack.back();
                stack.pop_back();
                if (cur == to) return true;
                for (DepNode* s : nodes[static_cast<std::size_t>(cur)]->successors) {
                    const int idx = static_cast<int>(s->node_id) - 1;
                    if (!seen[static_cast<std::size_t>(idx)]) {
                        seen[static_cast<std::size_t>(idx)] = true;
                        stack.push_back(idx);
                    }
                }
            }
            return false;
        };

        for (int i = 0; i < kNodes; ++i) {
            for (int j = i + 1; j < kNodes; ++j) {
                const bool conflict =
                    chosen[static_cast<std::size_t>(i)].region.overlaps(
                        chosen[static_cast<std::size_t>(j)].region) &&
                    (chosen[static_cast<std::size_t>(i)].kind != DepKind::In ||
                     chosen[static_cast<std::size_t>(j)].kind != DepKind::In);
                if (conflict) {
                    EXPECT_TRUE(reaches(i, j))
                        << "trial " << trial << ": conflicting accesses " << i << " -> " << j
                        << " not ordered";
                }
            }
        }
    }
}

// --- zero-size regions and empty dependency lists --------------------------

TEST(DependencyRegistry, EmptyRegionOverlapsNothing) {
    double x = 0;
    const Region empty_r(&x, 0);
    const Region full_r(&x, sizeof x);
    EXPECT_TRUE(empty_r.empty());
    EXPECT_FALSE(empty_r.overlaps(full_r));
    EXPECT_FALSE(full_r.overlaps(empty_r));
    // Not even an empty region at the same base overlaps another.
    EXPECT_FALSE(empty_r.overlaps(Region(&x, 0)));
}

TEST(DependencyRegistry, EmptyDepsListImposesNoOrdering) {
    DependencyRegistry reg;
    auto a = make_node(1), b = make_node(2);
    EXPECT_EQ(register_one(reg, a, {}), 0);
    EXPECT_EQ(register_one(reg, b, {}), 0);
    EXPECT_EQ(a->pred_count, 0);
    EXPECT_EQ(b->pred_count, 0);
    EXPECT_EQ(reg.interval_count(), 0u);
}

TEST(DependencyRegistry, ZeroSizeRegionsCreateNoIntervalsOrEdges) {
    DependencyRegistry reg;
    double x = 0;
    auto w1 = make_node(1), w2 = make_node(2), real = make_node(3);
    EXPECT_EQ(register_one(reg, w1, {out(&x, 0)}), 0);
    EXPECT_EQ(register_one(reg, w2, {out(&x, 0)}), 0);
    EXPECT_EQ(reg.interval_count(), 0u);
    // A real access on the same address is unaffected by the empty ones.
    EXPECT_EQ(register_one(reg, real, {out(&x, sizeof x)}), 0);
    EXPECT_EQ(real->pred_count, 0);
    EXPECT_EQ(reg.interval_count(), 1u);
}

TEST(DependencyRegistry, MixedEmptyAndRealRegionsUseOnlyRealOnes) {
    DependencyRegistry reg;
    double x = 0, y = 0;
    auto w = make_node(1), r = make_node(2);
    register_one(reg, w, {out(&x, sizeof x), out(&y, 0)});
    EXPECT_EQ(register_one(reg, r, {in(&x, sizeof x), in(&y, 0)}), 1);
    EXPECT_TRUE(has_edge(w, r));
}

// --- elided-edge accounting -------------------------------------------------

TEST(DependencyRegistry, ReleasedPredecessorElidesEdgeAndCountsIt) {
    DependencyRegistry reg;
    double x = 0;
    auto w = make_node(1), r = make_node(2);
    register_one(reg, w, {out(&x, sizeof x)});
    w->dep_released = true;  // completed before the reader was submitted
    EXPECT_EQ(register_one(reg, r, {in(&x, sizeof x)}), 0);
    EXPECT_FALSE(has_edge(w, r));
    EXPECT_EQ(r->pred_count, 0);
    EXPECT_EQ(reg.edges_elided(), 1u);
    // The same conflicting pair is not double-counted on a second region.
    auto r2 = make_node(3);
    EXPECT_EQ(register_one(reg, r2, {in(&x, sizeof x)}), 0);
    EXPECT_EQ(reg.edges_elided(), 2u);
}

// --- garbage collection -----------------------------------------------------

TEST(DependencyRegistry, GarbageCollectPrunesOnlyFullyReleasedIntervals) {
    DependencyRegistry reg;
    double x = 0, y = 0;
    auto wx = make_node(1), wy = make_node(2);
    register_one(reg, wx, {out(&x, sizeof x)});
    register_one(reg, wy, {out(&y, sizeof y)});
    EXPECT_EQ(reg.interval_count(), 2u);
    wx->dep_released = true;
    reg.garbage_collect();
    EXPECT_EQ(reg.interval_count(), 1u);  // y's writer is still live
    // A new writer on x after the prune starts a fresh interval with no
    // predecessors (the ordering held by completion time; nothing to elide
    // either — the old interval is gone).
    auto wx2 = make_node(3);
    EXPECT_EQ(register_one(reg, wx2, {out(&x, sizeof x)}), 0);
    EXPECT_EQ(wx2->pred_count, 0);
}

}  // namespace
}  // namespace dfamr::tasking
