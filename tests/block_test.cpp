// Tests for Block: keys, storage, face pack/unpack (incl. restriction and
// prolongation), refinement data operations, stencils, checksums.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <span>
#include <vector>

#include "amr/block.hpp"
#include "amr/flux_register.hpp"

namespace dfamr::amr {
namespace {

constexpr int kMaxLevel = 4;

BlockShape small_shape() { return BlockShape{4, 4, 4, 2}; }

Block make_filled(const BlockShape& shape, double base = 0.0) {
    Block b(BlockKey{}, shape);
    for (int v = 0; v < shape.num_vars; ++v) {
        for (int x = 0; x <= shape.nx + 1; ++x) {
            for (int y = 0; y <= shape.ny + 1; ++y) {
                for (int z = 0; z <= shape.nz + 1; ++z) {
                    b.at(v, x, y, z) = base + v * 10000 + x * 100 + y * 10 + z;
                }
            }
        }
    }
    return b;
}

TEST(BlockKey, ChildParentRoundTrip) {
    BlockKey root{1, {8, 16, 24}};
    for (int octant = 0; octant < 8; ++octant) {
        const BlockKey c = root.child(octant, kMaxLevel);
        EXPECT_EQ(c.level, 2);
        EXPECT_EQ(c.parent(kMaxLevel), root) << "octant " << octant;
        EXPECT_EQ(c.octant_in_parent(kMaxLevel), octant);
    }
}

TEST(BlockKey, ChildAnchors) {
    BlockKey root{0, {0, 0, 0}};
    EXPECT_EQ(root.side(kMaxLevel), 16);
    const BlockKey c7 = root.child(7, kMaxLevel);
    EXPECT_EQ(c7.anchor, (Vec3l{8, 8, 8}));
    const BlockKey c1 = root.child(1, kMaxLevel);
    EXPECT_EQ(c1.anchor, (Vec3l{8, 0, 0}));
    const BlockKey c2 = root.child(2, kMaxLevel);
    EXPECT_EQ(c2.anchor, (Vec3l{0, 8, 0}));
    const BlockKey c4 = root.child(4, kMaxLevel);
    EXPECT_EQ(c4.anchor, (Vec3l{0, 0, 8}));
}

TEST(Block, GroupSpanCoversVariables) {
    const BlockShape shape = small_shape();
    Block b(BlockKey{}, shape);
    auto s01 = b.group_span(0, 2);
    EXPECT_EQ(static_cast<std::int64_t>(s01.size()), shape.total_cells());
    auto s1 = b.group_span(1, 2);
    EXPECT_EQ(s1.data(), b.data() + shape.stride_var());
}

TEST(Block, InitCellsDeterministicAndDecompositionInvariant) {
    const BlockShape shape = small_shape();
    const Box box{{0, 0, 0}, {0.5, 0.5, 0.5}};
    Block a(BlockKey{}, shape), b(BlockKey{}, shape);
    a.init_cells(box, 42);
    b.init_cells(box, 42);
    EXPECT_EQ(a.at(0, 1, 1, 1), b.at(0, 1, 1, 1));
    EXPECT_EQ(a.at(1, 4, 4, 4), b.at(1, 4, 4, 4));
    Block c(BlockKey{}, shape);
    c.init_cells(box, 43);
    EXPECT_NE(a.at(0, 1, 1, 1), c.at(0, 1, 1, 1));
    // Values live in [1, 2).
    for (int x = 1; x <= 4; ++x) {
        EXPECT_GE(a.at(0, x, 1, 1), 1.0);
        EXPECT_LT(a.at(0, x, 1, 1), 2.0);
    }
}

TEST(Block, PackUnpackSameLevelRoundTrip) {
    const BlockShape shape = small_shape();
    Block src = make_filled(shape);
    Block dst(BlockKey{}, shape);

    // src's +x boundary becomes dst's -x ghost (dst sits at src's +x side).
    FaceGeom pack_geom{0, +1, FaceRel::Same, 0};
    std::vector<double> buf(static_cast<std::size_t>(shape.face_values_same(0, 2)));
    src.pack_face(pack_geom, 0, 2, buf);

    FaceGeom unpack_geom{0, -1, FaceRel::Same, 0};
    dst.unpack_face(unpack_geom, 0, 2, buf);
    for (int v = 0; v < 2; ++v) {
        for (int y = 1; y <= 4; ++y) {
            for (int z = 1; z <= 4; ++z) {
                EXPECT_EQ(dst.at(v, 0, y, z), src.at(v, 4, y, z));
            }
        }
    }
}

TEST(Block, PackIntoByteViewMatchesDoublePack) {
    // The zero-copy overloads pack straight into a transport frame's byte
    // span; the bytes must be exactly the double-buffer pack.
    const BlockShape shape = small_shape();
    Block src = make_filled(shape, 2.0);
    const FaceGeom geom{0, +1, FaceRel::Same, 0};
    const std::size_t values = static_cast<std::size_t>(shape.face_values_same(0, 2));

    std::vector<double> ref(values);
    src.pack_face(geom, 0, 2, ref);

    alignas(double) std::vector<double> backing(values);  // aligned byte view
    const std::span<std::byte> bytes(reinterpret_cast<std::byte*>(backing.data()),
                                     values * sizeof(double));
    src.pack_face(geom, 0, 2, bytes);
    EXPECT_EQ(0, std::memcmp(bytes.data(), ref.data(), bytes.size()));

    Block a(BlockKey{}, shape), b(BlockKey{}, shape);
    const FaceGeom ugeom{0, -1, FaceRel::Same, 0};
    a.unpack_face(ugeom, 0, 2, ref);
    b.unpack_face(ugeom, 0, 2, std::span<const std::byte>(bytes));
    for (int v = 0; v < 2; ++v) {
        for (int y = 1; y <= 4; ++y) {
            for (int z = 1; z <= 4; ++z) {
                EXPECT_EQ(a.at(v, 0, y, z), b.at(v, 0, y, z));
            }
        }
    }
}

TEST(Block, CopyFaceMatchesPackUnpack) {
    const BlockShape shape = small_shape();
    Block src = make_filled(shape, 5.0);
    Block a(BlockKey{}, shape), b(BlockKey{}, shape);

    FaceGeom geom{1, +1, FaceRel::Same, 0};  // my +y neighbor is src
    a.copy_face_from(src, geom, 0, 2);

    std::vector<double> buf(static_cast<std::size_t>(shape.face_values_same(1, 2)));
    src.pack_face(FaceGeom{1, -1, FaceRel::Same, 0}, 0, 2, buf);
    b.unpack_face(geom, 0, 2, buf);
    for (int v = 0; v < 2; ++v) {
        for (int x = 1; x <= 4; ++x) {
            for (int z = 1; z <= 4; ++z) {
                EXPECT_EQ(a.at(v, x, 5, z), b.at(v, x, 5, z));
                EXPECT_EQ(a.at(v, x, 5, z), src.at(v, x, 1, z));
            }
        }
    }
}

TEST(Block, RestrictionAveragesFourCells) {
    const BlockShape shape = small_shape();
    Block fine = make_filled(shape);
    // Fine sends its +x face to a coarser receiver: restricted to 2x2 values.
    FaceGeom geom{0, +1, FaceRel::Coarser, 0};
    std::vector<double> buf(static_cast<std::size_t>(shape.face_values_mixed(0, 1)));
    fine.pack_face(geom, 0, 1, buf);
    ASSERT_EQ(buf.size(), 4u);
    const double expect00 = 0.25 * (fine.at(0, 4, 1, 1) + fine.at(0, 4, 1, 2) +
                                    fine.at(0, 4, 2, 1) + fine.at(0, 4, 2, 2));
    EXPECT_DOUBLE_EQ(buf[0], expect00);
}

TEST(Block, ProlongationReplicatesCoarseCells) {
    const BlockShape shape = small_shape();
    Block fine(BlockKey{}, shape);
    // Fine receives its whole -x ghost plane from a coarser sender: the
    // message holds 2x2 coarse values, each replicated to 2x2 fine ghosts.
    std::vector<double> buf = {10, 20, 30, 40};  // (u,v) = (0,0),(0,1),(1,0),(1,1)
    FaceGeom geom{0, -1, FaceRel::Coarser, 0};
    fine.unpack_face(geom, 0, 1, buf);
    // u indexes y, v indexes z; layout is u-major (v contiguous).
    EXPECT_EQ(fine.at(0, 0, 1, 1), 10);
    EXPECT_EQ(fine.at(0, 0, 1, 2), 10);
    EXPECT_EQ(fine.at(0, 0, 2, 2), 10);
    EXPECT_EQ(fine.at(0, 0, 1, 3), 20);
    EXPECT_EQ(fine.at(0, 0, 3, 1), 30);
    EXPECT_EQ(fine.at(0, 0, 4, 4), 40);
}

TEST(Block, QuarterFacePlacementForFinerNeighbors) {
    const BlockShape shape = small_shape();
    Block coarse(BlockKey{}, shape);
    // A finer neighbor in quad 3 (u-half 1, v-half 1) sends its restricted
    // face; it lands in the (y in 3..4, z in 3..4) quarter of the ghost.
    std::vector<double> buf = {1, 2, 3, 4};
    FaceGeom geom{0, +1, FaceRel::Finer, 3};
    coarse.unpack_face(geom, 0, 1, buf);
    EXPECT_EQ(coarse.at(0, 5, 3, 3), 1);
    EXPECT_EQ(coarse.at(0, 5, 3, 4), 2);
    EXPECT_EQ(coarse.at(0, 5, 4, 3), 3);
    EXPECT_EQ(coarse.at(0, 5, 4, 4), 4);
    EXPECT_EQ(coarse.at(0, 5, 1, 1), 0) << "other quarters untouched";
}

TEST(Block, MixedLevelCopyRoundTripConservesFaceMean) {
    // fine -> coarse restriction followed by coarse -> fine prolongation
    // preserves each 2x2 group's mean.
    const BlockShape shape = small_shape();
    Block fine = make_filled(shape);
    Block coarse(BlockKey{}, shape);
    // Coarse's -x neighbor region quad 0 is the fine block.
    coarse.copy_face_from(fine, FaceGeom{0, -1, FaceRel::Finer, 0}, 0, 1);
    const double mean = 0.25 * (fine.at(0, 4, 1, 1) + fine.at(0, 4, 1, 2) +
                                fine.at(0, 4, 2, 1) + fine.at(0, 4, 2, 2));
    EXPECT_DOUBLE_EQ(coarse.at(0, 0, 1, 1), mean);
}

TEST(Block, ReflectFaceCopiesBoundaryPlane) {
    const BlockShape shape = small_shape();
    Block b = make_filled(shape);
    b.reflect_face(2, -1, 0, 2);
    for (int v = 0; v < 2; ++v) {
        for (int x = 1; x <= 4; ++x) {
            for (int y = 1; y <= 4; ++y) {
                EXPECT_EQ(b.at(v, x, y, 0), b.at(v, x, y, 1));
            }
        }
    }
}

TEST(Block, SplitMergeRoundTripConservesSum) {
    const BlockShape shape = small_shape();
    Block parent = make_filled(shape, 3.0);
    const double before = parent.checksum(0, shape.num_vars);

    std::vector<Block> children;
    for (int octant = 0; octant < 8; ++octant) {
        Block child(BlockKey{}, shape);
        child.fill_from_parent(parent, octant);
        children.push_back(std::move(child));
    }
    // Each child cell equals its covering parent cell.
    EXPECT_EQ(children[0].at(0, 1, 1, 1), parent.at(0, 1, 1, 1));
    EXPECT_EQ(children[0].at(0, 2, 2, 2), parent.at(0, 1, 1, 1));
    EXPECT_EQ(children[7].at(0, 4, 4, 4), parent.at(0, 4, 4, 4));

    Block merged(BlockKey{}, shape);
    for (int octant = 0; octant < 8; ++octant) {
        merged.absorb_child(children[static_cast<std::size_t>(octant)], octant);
    }
    EXPECT_NEAR(merged.checksum(0, shape.num_vars), before, 1e-9);
    EXPECT_DOUBLE_EQ(merged.at(0, 3, 3, 3), parent.at(0, 3, 3, 3));
}

TEST(Block, Stencil7UniformFieldIsFixpoint) {
    const BlockShape shape = small_shape();
    Block b(BlockKey{}, shape);
    for (int v = 0; v < 2; ++v) {
        for (int x = 0; x <= 5; ++x) {
            for (int y = 0; y <= 5; ++y) {
                for (int z = 0; z <= 5; ++z) {
                    b.at(v, x, y, z) = 3.5;
                }
            }
        }
    }
    const std::int64_t flops = b.stencil7(0, 2);
    EXPECT_EQ(flops, 7 * 4 * 4 * 4 * 2);
    EXPECT_DOUBLE_EQ(b.at(0, 2, 2, 2), 3.5);
    EXPECT_DOUBLE_EQ(b.at(1, 4, 4, 4), 3.5);
}

TEST(Block, Stencil7AveragesNeighbors) {
    const BlockShape shape{2, 2, 2, 1};
    Block b(BlockKey{}, shape);
    b.at(0, 1, 1, 1) = 7.0;  // all other cells zero
    b.stencil7(0, 1);
    EXPECT_DOUBLE_EQ(b.at(0, 1, 1, 1), 1.0);   // 7/7
    EXPECT_DOUBLE_EQ(b.at(0, 2, 1, 1), 1.0);   // neighbor sees the 7
    EXPECT_DOUBLE_EQ(b.at(0, 2, 2, 2), 0.0);   // diagonal: untouched by 7-pt
}

TEST(Block, Stencil27IncludesDiagonals) {
    const BlockShape shape{2, 2, 2, 1};
    Block b(BlockKey{}, shape);
    b.at(0, 1, 1, 1) = 27.0;
    const std::int64_t flops = b.stencil27(0, 1);
    EXPECT_EQ(flops, 27 * 8);
    EXPECT_DOUBLE_EQ(b.at(0, 2, 2, 2), 1.0);  // diagonal neighbor included
}

TEST(Block, ChecksumSumsInteriorOnly) {
    const BlockShape shape = small_shape();
    Block b(BlockKey{}, shape);
    for (int x = 0; x <= 5; ++x) {
        for (int y = 0; y <= 5; ++y) {
            for (int z = 0; z <= 5; ++z) {
                b.at(0, x, y, z) = 1.0;  // ghosts too
            }
        }
    }
    EXPECT_DOUBLE_EQ(b.checksum(0, 1), 64.0);  // 4^3 interior cells
    EXPECT_DOUBLE_EQ(b.checksum(1, 2), 0.0);
}

TEST(Block, FaceValueCounts) {
    const BlockShape shape{6, 4, 8, 3};
    Block b(BlockKey{}, shape);
    EXPECT_EQ(b.face_value_count(FaceGeom{0, +1, FaceRel::Same, 0}, 3), 4 * 8 * 3);
    EXPECT_EQ(b.face_value_count(FaceGeom{0, +1, FaceRel::Coarser, 0}, 3), 2 * 4 * 3);
    EXPECT_EQ(b.face_value_count(FaceGeom{1, +1, FaceRel::Finer, 2}, 1), 3 * 4);
    EXPECT_EQ(b.face_value_count(FaceGeom{2, -1, FaceRel::Same, 0}, 2), 6 * 4 * 2);
}

TEST(FluxRegister, SlotsAreDisjointAcrossFacesVariablesAndCells) {
    const BlockShape shape{6, 4, 8, 2};  // anisotropic: catches axis mixups
    FluxRegister reg(shape);
    // Stamp every slot with a unique value through at(); if any two slots
    // aliased, the read-back pass would see a later stamp.
    double stamp = 1.0;
    for (int var = 0; var < shape.num_vars; ++var) {
        for (int axis = 0; axis < 3; ++axis) {
            const auto [ua, va] = shape.plane_axes(axis);
            for (int sense : {-1, +1}) {
                for (int u = 1; u <= shape.dim(ua); ++u) {
                    for (int v = 1; v <= shape.dim(va); ++v) {
                        reg.at(axis, sense, var, u, v) = stamp++;
                    }
                }
            }
        }
    }
    double expect = 1.0;
    for (int var = 0; var < shape.num_vars; ++var) {
        for (int axis = 0; axis < 3; ++axis) {
            const auto [ua, va] = shape.plane_axes(axis);
            for (int sense : {-1, +1}) {
                for (int u = 1; u <= shape.dim(ua); ++u) {
                    for (int v = 1; v <= shape.dim(va); ++v) {
                        EXPECT_EQ(reg.at(axis, sense, var, u, v), expect)
                            << "axis " << axis << " sense " << sense << " var " << var << " ("
                            << u << "," << v << ")";
                        ++expect;
                    }
                }
            }
        }
    }
    // Var-major slices: each variable's registers are one contiguous run of
    // per_var values, so group task dependencies can be declared per slice.
    const std::size_t per_var = reg.slice(0, 1).size();
    EXPECT_EQ(per_var, 2u * (4 * 8 + 6 * 8 + 6 * 4));
    EXPECT_EQ(reg.slice(0, 2).size(), 2 * per_var);
    EXPECT_EQ(reg.slice(1, 2).data(), reg.slice(0, 2).data() + per_var);
}

TEST(FluxRegister, PackRestrictedQuarterAveragesInCoarserPackOrder) {
    const BlockShape shape{4, 4, 4, 2};
    FluxRegister reg(shape);
    const int axis = 0, sense = +1;  // +x face: u indexes y, v indexes z
    for (int var = 0; var < 2; ++var) {
        for (int u = 1; u <= 4; ++u) {
            for (int v = 1; v <= 4; ++v) {
                reg.at(axis, sense, var, u, v) = 1000 * var + 10 * u + v;
            }
        }
    }
    std::vector<double> out(static_cast<std::size_t>(shape.face_values_mixed(axis, 2)));
    reg.pack_restricted(axis, sense, 0, 2, out);
    ASSERT_EQ(out.size(), 8u);
    const auto avg = [&](int var, int u0, int v0) {
        return 0.25 * (reg.at(axis, sense, var, u0, v0) + reg.at(axis, sense, var, u0, v0 + 1) +
                       reg.at(axis, sense, var, u0 + 1, v0) +
                       reg.at(axis, sense, var, u0 + 1, v0 + 1));
    };
    // u-major, v contiguous, variables outermost — exactly the order
    // Block::pack_face uses for FaceRel::Coarser, so the flux stream pairs
    // element-wise with the ghost plan's transfer lists.
    EXPECT_DOUBLE_EQ(out[0], avg(0, 1, 1));
    EXPECT_DOUBLE_EQ(out[1], avg(0, 1, 3));
    EXPECT_DOUBLE_EQ(out[2], avg(0, 3, 1));
    EXPECT_DOUBLE_EQ(out[3], avg(0, 3, 3));
    EXPECT_DOUBLE_EQ(out[4], avg(1, 1, 1));
    EXPECT_DOUBLE_EQ(out[7], avg(1, 3, 3));
}

}  // namespace
}  // namespace dfamr::amr
