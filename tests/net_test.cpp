// Wire transport tests: framing, loopback worlds (every rank a thread, each
// with a real TCP endpoint on localhost or a shared-memory ring mesh),
// rendezvous threshold behavior, MPI non-overtaking order over the wire,
// collectives parity, fault injection + retry, the wait_any_for
// timeout-vs-abort contract, the shm ring, and the coalescing / zero-copy
// fast-path goldens.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "core/variants.hpp"
#include "mpisim/mpi.hpp"
#include "net/shm_ring.hpp"
#include "net/wire.hpp"
#include "resilience/fault_plan.hpp"
#include "resilience/hardened_comm.hpp"

namespace dfamr {
namespace {

using mpi::Communicator;
using mpi::Status;
using mpi::TransportKind;
using mpi::World;
using mpi::WorldOptions;

WorldOptions tcp_options(std::size_t rendezvous_threshold = 64 * 1024) {
    WorldOptions opts;
    opts.transport = TransportKind::Tcp;
    opts.rendezvous_threshold = rendezvous_threshold;
    // Tests must behave the same under dfamr_mpirun and standalone.
    opts.ignore_launch_env = true;
    return opts;
}

std::vector<std::byte> pattern(std::size_t n, unsigned seed) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = static_cast<std::byte>((seed * 131 + i * 7) & 0xff);
    }
    return v;
}

// ---- wire format ---------------------------------------------------------

TEST(NetWire, HeaderRoundTrip) {
    net::FrameHeader h;
    h.kind = net::FrameKind::Rts;
    h.src = 3;
    h.tag = 0x1234;
    h.seq = 77;
    h.payload_bytes = 0;
    h.aux = 1 << 20;
    std::byte buf[net::kHeaderBytes];
    net::encode_header(h, buf);
    const net::FrameHeader d = net::decode_header(buf);
    EXPECT_EQ(d.magic, net::kWireMagic);
    EXPECT_EQ(d.kind, net::FrameKind::Rts);
    EXPECT_EQ(d.src, 3);
    EXPECT_EQ(d.tag, 0x1234);
    EXPECT_EQ(d.seq, 77u);
    EXPECT_EQ(d.payload_bytes, 0u);
    EXPECT_EQ(d.aux, static_cast<std::uint64_t>(1) << 20);
}

// ---- loopback basics -----------------------------------------------------

TEST(NetLoopback, EagerPingPong) {
    World world(2, tcp_options());
    world.run([](Communicator& comm) {
        const int peer = 1 - comm.rank();
        const auto out = pattern(256, static_cast<unsigned>(comm.rank()));
        std::vector<std::byte> in(256);
        if (comm.rank() == 0) {
            comm.send(out.data(), out.size(), peer, 5);
            Status st;
            comm.recv(in.data(), in.size(), peer, 6, &st);
            EXPECT_EQ(st.source, 1);
            EXPECT_EQ(st.tag, 6);
            EXPECT_EQ(st.bytes, 256u);
            EXPECT_EQ(in, pattern(256, 1));
        } else {
            Status st;
            comm.recv(in.data(), in.size(), peer, 5, &st);
            EXPECT_EQ(st.source, 0);
            EXPECT_EQ(in, pattern(256, 0));
            comm.send(out.data(), out.size(), peer, 6);
        }
    });
    const net::NetCounters c = world.net_counters();
    EXPECT_GT(c.frames_sent, 0u);
    EXPECT_GT(c.bytes_received, 0u);
}

class NetBothTransports : public ::testing::TestWithParam<TransportKind> {
protected:
    WorldOptions options() const {
        WorldOptions opts = tcp_options();
        opts.transport = GetParam();
        return opts;
    }
};

TEST_P(NetBothTransports, ZeroLengthMessageStatusBytes) {
    World world(2, options());
    world.run([](Communicator& comm) {
        if (comm.rank() == 0) {
            comm.send(nullptr, 0, 1, 9);
        } else {
            std::byte sentinel{0x5a};
            Status st;
            comm.recv(&sentinel, 1, 0, 9, &st);
            EXPECT_EQ(st.bytes, 0u);
            EXPECT_EQ(st.source, 0);
            EXPECT_EQ(st.tag, 9);
            EXPECT_TRUE(st.ok);
            EXPECT_EQ(sentinel, std::byte{0x5a});  // untouched buffer
        }
    });
}

TEST_P(NetBothTransports, WildcardSourceAndTag) {
    World world(3, options());
    world.run([](Communicator& comm) {
        if (comm.rank() == 0) {
            int got = 0;
            for (int i = 0; i < 2; ++i) {
                int v = 0;
                Status st;
                comm.recv(&v, sizeof v, mpi::kAnySource, mpi::kAnyTag, &st);
                EXPECT_EQ(v, st.source * 100 + st.tag);
                ++got;
            }
            EXPECT_EQ(got, 2);
        } else {
            const int v = comm.rank() * 100 + comm.rank() + 40;
            comm.send(&v, sizeof v, 0, comm.rank() + 40);
        }
    });
}

INSTANTIATE_TEST_SUITE_P(Transports, NetBothTransports,
                         ::testing::Values(TransportKind::Inproc, TransportKind::Tcp,
                                           TransportKind::Shm));

// ---- shm ring ------------------------------------------------------------

TEST(ShmRing, ByteStreamSurvivesWrapAroundAndPartialIo) {
    constexpr std::uint32_t kCapacity = 16;
    alignas(64) std::byte segment[net::shm_segment_bytes(kCapacity)];
    net::ShmRing::init(segment, kCapacity, /*producer_pid=*/1234);
    net::ShmRing ring(segment, kCapacity);
    EXPECT_EQ(ring.producer_pid(), 1234);

    // Stream 5x the capacity through in awkward chunk sizes, reading
    // concurrently-in-spirit (interleaved), and require the byte stream to
    // come out exact: wraparound and partial writes must be invisible.
    const auto src = pattern(5 * kCapacity, 42);
    std::vector<std::byte> dst;
    std::size_t written = 0;
    while (dst.size() < src.size()) {
        if (written < src.size()) {
            const std::size_t chunk = std::min<std::size_t>(7, src.size() - written);
            written += ring.try_write(std::span(src).subspan(written, chunk));
        }
        std::byte buf[5];
        const std::size_t got = ring.try_read(buf);
        dst.insert(dst.end(), buf, buf + got);
    }
    EXPECT_TRUE(std::equal(dst.begin(), dst.end(), src.begin()));
    EXPECT_EQ(ring.readable(), 0u);
}

TEST(ShmRing, FullRingAcceptsNothingUntilDrained) {
    constexpr std::uint32_t kCapacity = 8;
    alignas(64) std::byte segment[net::shm_segment_bytes(kCapacity)];
    net::ShmRing::init(segment, kCapacity, 1);
    net::ShmRing ring(segment, kCapacity);
    const auto src = pattern(kCapacity + 4, 3);
    EXPECT_EQ(ring.try_write(src), kCapacity);  // clamped to free space
    EXPECT_EQ(ring.try_write(std::span(src).subspan(kCapacity)), 0u);
    std::byte buf[3];
    ASSERT_EQ(ring.try_read(buf), 3u);
    EXPECT_EQ(ring.try_write(std::span(src).subspan(kCapacity)), 3u);  // freed
}

// ---- rendezvous ----------------------------------------------------------

TEST(NetLoopback, RendezvousThresholdCrossing) {
    constexpr std::size_t kThreshold = 1024;
    World world(2, tcp_options(kThreshold));
    world.run([](Communicator& comm) {
        const std::size_t small = 512, large = 8192;
        if (comm.rank() == 0) {
            const auto a = pattern(small, 1);
            const auto b = pattern(large, 2);
            comm.send(a.data(), a.size(), 1, 7);   // eager
            comm.send(b.data(), b.size(), 1, 7);   // rendezvous
        } else {
            std::vector<std::byte> a(small), b(large);
            Status st;
            comm.recv(a.data(), a.size(), 0, 7, &st);
            EXPECT_EQ(st.bytes, small);
            comm.recv(b.data(), b.size(), 0, 7, &st);
            EXPECT_EQ(st.bytes, large);
            EXPECT_EQ(a, pattern(small, 1));
            EXPECT_EQ(b, pattern(large, 2));
        }
    });
    const net::NetCounters c = world.net_counters();
    EXPECT_EQ(c.rendezvous, 1u);  // exactly the 8 KiB message
}

TEST(NetLoopback, RendezvousAtExactThreshold) {
    constexpr std::size_t kThreshold = 2048;
    World world(2, tcp_options(kThreshold));
    world.run([](Communicator& comm) {
        if (comm.rank() == 0) {
            const auto a = pattern(kThreshold, 3);  // == threshold: rendezvous
            comm.send(a.data(), a.size(), 1, 1);
        } else {
            std::vector<std::byte> a(kThreshold);
            comm.recv(a.data(), a.size(), 0, 1);
            EXPECT_EQ(a, pattern(kThreshold, 3));
        }
    });
    EXPECT_EQ(world.net_counters().rendezvous, 1u);
}

// ---- ordering ------------------------------------------------------------

// Mixed eager/rendezvous messages on one (source, tag) stream must arrive
// in post order even though rendezvous Data frames trail their Rts on the
// wire (receiver-side hold-back).
TEST(NetLoopback, NonOvertakingMixedSizesOneStream) {
    constexpr std::size_t kThreshold = 1024;
    constexpr int kMessages = 24;
    World world(2, tcp_options(kThreshold));
    world.run([](Communicator& comm) {
        if (comm.rank() == 0) {
            for (int i = 0; i < kMessages; ++i) {
                // Alternate large (rendezvous) and small (eager) so eager
                // frames constantly try to overtake pending Data.
                const std::size_t n = (i % 2 == 0) ? 4096 : 64;
                std::vector<std::byte> msg = pattern(n, static_cast<unsigned>(i));
                msg[0] = static_cast<std::byte>(i);  // sequence stamp
                comm.send(msg.data(), msg.size(), 1, 3);
            }
        } else {
            for (int i = 0; i < kMessages; ++i) {
                std::vector<std::byte> buf(8192);
                Status st;
                comm.recv(buf.data(), buf.size(), 0, 3, &st);
                ASSERT_EQ(static_cast<int>(buf[0]), i) << "message overtook its predecessor";
                const std::size_t expect = (i % 2 == 0) ? 4096 : 64;
                EXPECT_EQ(st.bytes, expect);
            }
        }
    });
    EXPECT_EQ(world.net_counters().rendezvous, kMessages / 2);
}

// Two concurrent senders into one receiver: per-source FIFO must hold, and
// every message must arrive exactly once (wildcard receive).
TEST(NetLoopback, NonOvertakingConcurrentSenders) {
    constexpr int kPerSender = 32;
    World world(3, tcp_options(512));
    world.run([&](Communicator& comm) {
        if (comm.rank() == 0) {
            std::vector<int> next(3, 0);
            for (int i = 0; i < 2 * kPerSender; ++i) {
                std::vector<std::byte> buf(4096);
                Status st;
                comm.recv(buf.data(), buf.size(), mpi::kAnySource, 11, &st);
                ASSERT_GE(st.bytes, sizeof(int));
                int seq = 0;
                std::memcpy(&seq, buf.data(), sizeof seq);
                ASSERT_EQ(seq, next[static_cast<std::size_t>(st.source)])
                    << "per-source FIFO violated for source " << st.source;
                ++next[static_cast<std::size_t>(st.source)];
            }
            EXPECT_EQ(next[1], kPerSender);
            EXPECT_EQ(next[2], kPerSender);
        } else {
            for (int seq = 0; seq < kPerSender; ++seq) {
                const std::size_t n = (seq % 3 == 0) ? 2048 : sizeof(int);
                std::vector<std::byte> msg(n);
                std::memcpy(msg.data(), &seq, sizeof seq);
                comm.send(msg.data(), msg.size(), 0, 11);
            }
        }
    });
}

// ---- collectives over the wire -------------------------------------------

TEST(NetLoopback, CollectivesMatchInprocBitwise) {
    constexpr int kRanks = 4;
    constexpr std::size_t kCount = 17;
    using Doubles = std::vector<double>;
    // Per-rank inputs with awkward values so a different fold order would
    // show up in the bits.
    const auto input = [](int rank) {
        Doubles v(kCount);
        for (std::size_t i = 0; i < kCount; ++i) {
            v[i] = (rank + 1) * 0.1 + static_cast<double>(i) * 1e-7 + 1e-15 * rank;
        }
        return v;
    };
    const auto run_world = [&](TransportKind transport) {
        WorldOptions opts = tcp_options(64);  // tiny threshold: exercise rendezvous
        opts.transport = transport;
        World world(kRanks, opts);
        std::vector<Doubles> allreduce_out(kRanks, Doubles(kCount));
        std::vector<Doubles> reduce_out(kRanks, Doubles(kCount, -1.0));
        std::vector<Doubles> bcast_out(kRanks, Doubles(kCount));
        std::vector<Doubles> gather_out(kRanks, Doubles(kCount * kRanks));
        std::vector<Doubles> alltoall_out(kRanks, Doubles(kCount * kRanks));
        world.run([&](Communicator& comm) {
            const int r = comm.rank();
            const Doubles in = input(r);
            comm.barrier();
            comm.allreduce(in.data(), allreduce_out[r].data(), kCount, mpi::Op::Sum);
            comm.reduce(in.data(), reduce_out[r].data(), kCount, mpi::Op::Max, /*root=*/2);
            bcast_out[r] = r == 1 ? input(1) : Doubles(kCount);
            comm.bcast(bcast_out[r].data(), kCount * sizeof(double), /*root=*/1);
            comm.allgather(in.data(), kCount * sizeof(double), gather_out[r].data());
            Doubles scatter(kCount * kRanks);
            std::iota(scatter.begin(), scatter.end(), r * 1000.0);
            comm.alltoall(scatter.data(), kCount * sizeof(double), alltoall_out[r].data());
            comm.barrier();
        });
        return std::make_tuple(allreduce_out, reduce_out, bcast_out, gather_out, alltoall_out);
    };
    const auto inproc = run_world(TransportKind::Inproc);
    for (TransportKind wire : {TransportKind::Tcp, TransportKind::Shm}) {
        const auto t = run_world(wire);
        EXPECT_EQ(std::get<0>(inproc), std::get<0>(t));  // allreduce: bit-identical
        EXPECT_EQ(std::get<2>(inproc), std::get<2>(t));  // bcast
        EXPECT_EQ(std::get<3>(inproc), std::get<3>(t));  // allgather
        EXPECT_EQ(std::get<4>(inproc), std::get<4>(t));  // alltoall
        // reduce: only the root's output is defined.
        EXPECT_EQ(std::get<1>(inproc)[2], std::get<1>(t)[2]);
    }
}

// ---- fault injection over the wire ---------------------------------------

/// Drops the first `drops` sends on the given tag, then delivers.
class DropFirstN final : public mpi::FaultInjector {
public:
    DropFirstN(int tag, int drops) : tag_(tag), drops_(drops) {}
    mpi::FaultAction on_send(int, int, int tag) override {
        mpi::FaultAction act;
        if (tag == tag_ && count_.fetch_add(1) < drops_) act.drop = true;
        return act;
    }

private:
    int tag_;
    int drops_;
    std::atomic<int> count_{0};
};

TEST(NetLoopback, FaultDropThenRetryDelivers) {
    DropFirstN faults(/*tag=*/21, /*drops=*/2);
    World world(2, tcp_options(512), &faults);
    world.run([](Communicator& comm) {
        resilience::RetryPolicy policy;
        policy.backoff_ns = 1000;
        resilience::HardenedComm hc(comm, policy);
        if (comm.rank() == 0) {
            const auto msg = pattern(2048, 9);  // above threshold: rendezvous path
            hc.send(msg.data(), msg.size(), 1, 21);
        } else {
            std::vector<std::byte> buf(2048);
            mpi::Status st;
            hc.recv(buf.data(), buf.size(), 0, 21, &st);
            EXPECT_EQ(st.bytes, 2048u);
            EXPECT_EQ(buf, pattern(2048, 9));
        }
    });
}

TEST(NetLoopback, FaultDropThenRetryDeliversZeroCopy) {
    // A dropped isend_tx never reaches the wire and leaves the TxBuffer
    // untouched, so HardenedComm can re-post the same storage.
    DropFirstN faults(/*tag=*/22, /*drops=*/2);
    World world(2, tcp_options(512), &faults);
    world.run([](Communicator& comm) {
        resilience::RetryPolicy policy;
        policy.backoff_ns = 1000;
        resilience::HardenedComm hc(comm, policy);
        const auto msg = pattern(2048, 13);  // above threshold: rendezvous path
        if (comm.rank() == 0) {
            mpi::TxBuffer tx = mpi::make_tx_buffer(msg.size());
            std::copy(msg.begin(), msg.end(), tx.payload.begin());
            hc.isend_tx(tx, 1, 22).wait();
        } else {
            mpi::RxView view;
            mpi::Status st;
            hc.irecv_view(&view, 4096, 0, 22).wait(&st);
            EXPECT_EQ(st.bytes, 2048u);
            ASSERT_EQ(view.payload.size(), msg.size());
            EXPECT_TRUE(std::equal(view.payload.begin(), view.payload.end(), msg.begin()));
        }
    });
}

TEST(NetLoopback, FaultDelayPreservesStreamOrder) {
    resilience::FaultConfig fc;
    fc.seed = 11;
    fc.delay_prob = 0.5;
    fc.max_delay_ns = 2'000'000;
    resilience::FaultPlan plan(fc);
    constexpr int kMessages = 40;
    World world(2, tcp_options(256), &plan);
    world.run([](Communicator& comm) {
        if (comm.rank() == 0) {
            for (int i = 0; i < kMessages; ++i) {
                const std::size_t n = (i % 4 == 0) ? 1024 : 16;
                std::vector<std::byte> msg(n);
                msg[0] = static_cast<std::byte>(i);
                comm.send(msg.data(), msg.size(), 1, 2);
            }
        } else {
            for (int i = 0; i < kMessages; ++i) {
                std::vector<std::byte> buf(4096);
                mpi::Status st;
                comm.recv(buf.data(), buf.size(), 0, 2, &st);
                ASSERT_EQ(static_cast<int>(buf[0]), i)
                    << "delayed delivery reordered a stream over TCP";
            }
        }
    });
}

// ---- wait_any_for: kTimeout vs RankError ---------------------------------

class WaitAnyForSemantics : public ::testing::TestWithParam<TransportKind> {};

TEST_P(WaitAnyForSemantics, TimeoutLeavesRequestsValid) {
    WorldOptions opts = tcp_options();
    opts.transport = GetParam();
    World world(2, opts);
    world.run([](Communicator& comm) {
        if (comm.rank() != 0) {
            int v = 42;
            comm.send(&v, sizeof v, 0, 1);  // only tag 1; tag 2 never comes
            return;
        }
        int a = 0, b = 0;
        std::vector<mpi::Request> reqs = {comm.irecv(&a, sizeof a, 1, 1),
                                          comm.irecv(&b, sizeof b, 1, 2)};
        // First completion: the tag-1 message.
        mpi::Status st;
        const int idx = mpi::wait_any_for(reqs, 2'000'000'000, &st);
        ASSERT_EQ(idx, 0);
        EXPECT_EQ(a, 42);
        // The tag-2 receive can never complete: must time out, and the
        // request must remain valid (and cancelable) afterwards.
        const int idx2 = mpi::wait_any_for(reqs, 20'000'000, &st);
        EXPECT_EQ(idx2, mpi::kTimeout);
        ASSERT_TRUE(reqs[1].valid());
        EXPECT_TRUE(reqs[1].cancel());
    });
}

TEST_P(WaitAnyForSemantics, AbortBeatsTimeout) {
    WorldOptions opts = tcp_options();
    opts.transport = GetParam();
    World world(2, opts);
    std::atomic<bool> saw_timeout{false};
    EXPECT_THROW(
        world.run([&](Communicator& comm) {
            if (comm.rank() == 1) {
                throw Error("rank 1 dies");
            }
            int v = 0;
            std::vector<mpi::Request> reqs = {comm.irecv(&v, sizeof v, 1, 1)};
            // Give the abort time to propagate, then call with an already
            // expired deadline: a dead world must surface as RankError, not
            // as a benign kTimeout the caller would retry on.
            std::this_thread::sleep_for(std::chrono::milliseconds(300));
            const int idx = mpi::wait_any_for(reqs, 0, nullptr);
            saw_timeout.store(idx == mpi::kTimeout);
        }),
        mpi::RankError);
    EXPECT_FALSE(saw_timeout.load());
}

INSTANTIATE_TEST_SUITE_P(Transports, WaitAnyForSemantics,
                         ::testing::Values(TransportKind::Inproc, TransportKind::Tcp,
                                           TransportKind::Shm));

// ---- golden checksums: full mini-app over the wire -----------------------

amr::Config golden_config() {
    amr::Config cfg;
    cfg.npx = 2;
    cfg.npy = 1;
    cfg.npz = 1;
    cfg.init_x = cfg.init_y = cfg.init_z = 1;
    cfg.nx = cfg.ny = cfg.nz = 4;
    cfg.num_vars = 4;
    cfg.num_tsteps = 2;
    cfg.stages_per_ts = 4;
    cfg.checksum_freq = 2;
    cfg.num_refine = 2;
    cfg.refine_freq = 1;
    cfg.workers = 2;
    amr::ObjectSpec sphere;
    sphere.type = amr::ObjectType::SpheroidSurface;
    sphere.center = {0.1, 0.1, 0.1};
    sphere.size = {0.25, 0.25, 0.25};
    sphere.move = {0.15, 0.1, 0.05};
    sphere.bounce = true;
    cfg.objects.push_back(sphere);
    return cfg;
}

class GoldenOverTcp : public ::testing::TestWithParam<amr::Variant> {};

TEST_P(GoldenOverTcp, ChecksumsBitIdenticalToInproc) {
    const amr::Config cfg = golden_config();
    core::RunOptions inproc;
    inproc.ignore_launch_env = true;
    core::RunOptions tcp;
    tcp.transport = mpi::TransportKind::Tcp;
    tcp.rendezvous_threshold = 1024;  // low: force rendezvous traffic
    tcp.ignore_launch_env = true;
    const core::RunResult a = core::run_variant(cfg, GetParam(), nullptr, nullptr, inproc);
    const core::RunResult b = core::run_variant(cfg, GetParam(), nullptr, nullptr, tcp);
    ASSERT_TRUE(a.validation_ok);
    ASSERT_TRUE(b.validation_ok);
    ASSERT_EQ(a.checksums.size(), b.checksums.size());
    for (std::size_t i = 0; i < a.checksums.size(); ++i) {
        EXPECT_EQ(a.checksums[i], b.checksums[i]) << "checksum stage " << i;
    }
    EXPECT_EQ(a.net.frames_sent, 0u);  // inproc: nothing on the wire
    EXPECT_GT(b.net.frames_sent, 0u);
    EXPECT_GT(b.net.bytes_sent, 0u);
    EXPECT_GT(b.net.rendezvous, 0u);
}

TEST_P(GoldenOverTcp, ChaosChecksumsMatchFaultFree) {
    const amr::Config cfg = golden_config();
    core::RunOptions tcp;
    tcp.transport = mpi::TransportKind::Tcp;
    tcp.rendezvous_threshold = 1024;
    tcp.ignore_launch_env = true;
    core::RunOptions inproc;
    inproc.ignore_launch_env = true;
    resilience::FaultConfig fc;
    fc.seed = 5;
    fc.drop_prob = 0.02;
    fc.delay_prob = 0.05;
    fc.max_delay_ns = 500'000;
    resilience::FaultPlan plan(fc);
    const core::RunResult ref = core::run_variant(cfg, GetParam(), nullptr, nullptr, inproc);
    const core::RunResult chaos = core::run_variant(cfg, GetParam(), nullptr, &plan, tcp);
    ASSERT_TRUE(chaos.validation_ok);
    ASSERT_EQ(ref.checksums.size(), chaos.checksums.size());
    for (std::size_t i = 0; i < ref.checksums.size(); ++i) {
        EXPECT_EQ(ref.checksums[i], chaos.checksums[i]) << "checksum stage " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Variants, GoldenOverTcp,
                         ::testing::Values(amr::Variant::MpiOnly, amr::Variant::ForkJoin,
                                           amr::Variant::TampiOss));

// ---- transport fast-path goldens: shm x coalesce x zero-copy -------------

// Every (variant, transport, coalesce, zero_copy) combination must produce
// checksums bit-identical to the plain in-process run: the fast paths are
// pure transport/copy optimizations with no numerical surface.
using FastPathParam = std::tuple<amr::Variant, TransportKind, bool, bool>;

class GoldenFastPaths : public ::testing::TestWithParam<FastPathParam> {};

TEST_P(GoldenFastPaths, ChecksumsBitIdenticalToInproc) {
    const auto [variant, transport, coalesce, zero_copy] = GetParam();
    amr::Config cfg = golden_config();
    core::RunOptions ref_opts;
    ref_opts.ignore_launch_env = true;
    const core::RunResult ref = core::run_variant(cfg, variant, nullptr, nullptr, ref_opts);

    cfg.zero_copy = zero_copy;
    core::RunOptions opts;
    opts.transport = transport;
    opts.rendezvous_threshold = 1024;  // low: fast paths cross into rendezvous
    opts.coalesce = coalesce;
    opts.ignore_launch_env = true;
    const core::RunResult got = core::run_variant(cfg, variant, nullptr, nullptr, opts);

    ASSERT_TRUE(got.validation_ok);
    ASSERT_EQ(ref.checksums.size(), got.checksums.size());
    for (std::size_t i = 0; i < ref.checksums.size(); ++i) {
        EXPECT_EQ(ref.checksums[i], got.checksums[i]) << "checksum stage " << i;
    }
    EXPECT_GT(got.net.frames_sent, 0u);
    if (!coalesce) {
        // The knob is really off: nothing may merge.
        EXPECT_EQ(got.net.coalesced_frames_sent, 0u);
        EXPECT_EQ(got.net.coalesced_messages, 0u);
    }
    if (zero_copy && variant != amr::Variant::TampiOss) {
        // Every wire send of a packed frame skips the staging copy, so the
        // counter is deterministic-positive (TAMPI ignores the knob: its
        // task dependencies are declared on persistent staging buffers).
        EXPECT_GT(got.net.copies_elided, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, GoldenFastPaths,
    ::testing::Combine(::testing::Values(amr::Variant::MpiOnly, amr::Variant::ForkJoin,
                                         amr::Variant::TampiOss),
                       ::testing::Values(TransportKind::Tcp, TransportKind::Shm),
                       ::testing::Bool(),    // coalesce
                       ::testing::Bool()));  // zero_copy

// Chaos over shm with both fast paths on: retry + hold-back must still
// reproduce the fault-free checksums bit for bit.
class ShmChaos : public ::testing::TestWithParam<amr::Variant> {};

TEST_P(ShmChaos, ChaosChecksumsMatchFaultFree) {
    amr::Config cfg = golden_config();
    core::RunOptions ref_opts;
    ref_opts.ignore_launch_env = true;
    const core::RunResult ref = core::run_variant(cfg, GetParam(), nullptr, nullptr, ref_opts);

    cfg.zero_copy = true;
    core::RunOptions shm;
    shm.transport = TransportKind::Shm;
    shm.rendezvous_threshold = 1024;
    shm.coalesce = true;
    shm.ignore_launch_env = true;
    resilience::FaultConfig fc;
    fc.seed = 5;
    fc.drop_prob = 0.02;
    fc.delay_prob = 0.05;
    fc.max_delay_ns = 500'000;
    resilience::FaultPlan plan(fc);
    const core::RunResult chaos = core::run_variant(cfg, GetParam(), nullptr, &plan, shm);
    ASSERT_TRUE(chaos.validation_ok);
    ASSERT_EQ(ref.checksums.size(), chaos.checksums.size());
    for (std::size_t i = 0; i < ref.checksums.size(); ++i) {
        EXPECT_EQ(ref.checksums[i], chaos.checksums[i]) << "checksum stage " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Variants, ShmChaos,
                         ::testing::Values(amr::Variant::MpiOnly, amr::Variant::ForkJoin,
                                           amr::Variant::TampiOss));

}  // namespace
}  // namespace dfamr
