// Tests for the serve plane: DFS1 codecs, admission control, fair-share
// ordering, suspend/resume checksum identity, deadline preemption, crash
// retry, and client-disconnect cleanup.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/variants.hpp"
#include "serve/client.hpp"
#include "serve/job_manager.hpp"
#include "serve/loadgen.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace dfamr::serve {
namespace {

JobSpec tiny_spec() {
    JobSpec spec;
    spec.tenant = "t0";
    spec.scenario = "single_sphere";
    spec.variant = amr::Variant::ForkJoin;
    spec.seed = 3;
    spec.ranks = 1;
    spec.workers = 1;
    spec.nx = 8;
    spec.num_vars = 8;
    spec.num_tsteps = 2;
    return spec;
}

std::vector<double> solo_checksums(const JobSpec& spec) {
    core::RunOptions ropts;
    ropts.ignore_launch_env = true;
    return core::run_variant(job_config(spec), spec.variant, nullptr, nullptr, ropts)
        .checksums;
}

// ---- protocol codecs -------------------------------------------------------

TEST(ServeProtocol, JobSpecRoundTrip) {
    JobSpec spec;
    spec.tenant = "acme";
    spec.scenario = "four_spheres";
    spec.variant = amr::Variant::TampiOss;
    spec.seed = 987654321;
    spec.ranks = 3;
    spec.workers = 2;
    spec.nx = 16;
    spec.num_vars = 12;
    spec.num_tsteps = 9;
    spec.num_refine = 3;
    spec.weight = 4;
    spec.deadline_s = 12.5;

    std::vector<std::byte> buf;
    encode_job_spec(spec, buf);
    const JobSpec back = decode_job_spec(buf.data(), buf.size());
    EXPECT_EQ(back.tenant, spec.tenant);
    EXPECT_EQ(back.scenario, spec.scenario);
    EXPECT_EQ(back.variant, spec.variant);
    EXPECT_EQ(back.seed, spec.seed);
    EXPECT_EQ(back.ranks, spec.ranks);
    EXPECT_EQ(back.workers, spec.workers);
    EXPECT_EQ(back.nx, spec.nx);
    EXPECT_EQ(back.num_vars, spec.num_vars);
    EXPECT_EQ(back.num_tsteps, spec.num_tsteps);
    EXPECT_EQ(back.num_refine, spec.num_refine);
    EXPECT_EQ(back.weight, spec.weight);
    EXPECT_DOUBLE_EQ(back.deadline_s, spec.deadline_s);
    EXPECT_EQ(back.cost(), 6);
}

TEST(ServeProtocol, DoneProgressStatsRoundTrip) {
    JobDone d;
    d.checksums = {1.5, -2.25, 1e300};
    d.elapsed_s = 0.75;
    d.suspends = 3;
    d.retries = 1;
    std::vector<std::byte> buf;
    encode_job_done(d, buf);
    const JobDone d2 = decode_job_done(buf.data(), buf.size());
    EXPECT_EQ(d2.checksums, d.checksums);
    EXPECT_DOUBLE_EQ(d2.elapsed_s, d.elapsed_s);
    EXPECT_EQ(d2.suspends, d.suspends);
    EXPECT_EQ(d2.retries, d.retries);

    JobProgress p{5, 9};
    buf.clear();
    encode_job_progress(p, buf);
    const JobProgress p2 = decode_job_progress(buf.data(), buf.size());
    EXPECT_EQ(p2.ts, 5);
    EXPECT_EQ(p2.total_ts, 9);

    ServerStats s;
    s.submitted = 100;
    s.done = 90;
    s.preemptions = 4;
    s.peak_queue = 33;
    buf.clear();
    encode_server_stats(s, buf);
    const ServerStats s2 = decode_server_stats(buf.data(), buf.size());
    EXPECT_EQ(s2.submitted, 100u);
    EXPECT_EQ(s2.done, 90u);
    EXPECT_EQ(s2.preemptions, 4u);
    EXPECT_EQ(s2.peak_queue, 33);
}

// ---- admission control -----------------------------------------------------

TEST(ServeAdmission, RejectsWhenQueueFull) {
    JobManagerOptions opts;
    opts.pool_workers = 1;
    opts.max_queue = 3;
    opts.max_inflight_cost = 1;
    opts.start_paused = true;  // nothing dispatches: queue fills exactly
    JobManager mgr(opts);

    const JobSpec spec = tiny_spec();
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(mgr.submit(spec, nullptr).accepted);
    }
    const SubmitResult r = mgr.submit(spec, nullptr);
    EXPECT_FALSE(r.accepted);
    EXPECT_NE(r.reason.find("queue"), std::string::npos) << r.reason;
    EXPECT_EQ(mgr.stats().rejected, 1u);
}

TEST(ServeAdmission, RejectsCostThatCanNeverRun) {
    JobManagerOptions opts;
    opts.pool_workers = 1;
    opts.max_inflight_cost = 4;
    opts.start_paused = true;
    JobManager mgr(opts);

    JobSpec spec = tiny_spec();
    spec.ranks = 3;
    spec.workers = 2;  // cost 6 > budget 4: would starve forever
    const SubmitResult r = mgr.submit(spec, nullptr);
    EXPECT_FALSE(r.accepted);
    EXPECT_NE(r.reason.find("cost"), std::string::npos) << r.reason;
}

// ---- fair scheduling -------------------------------------------------------

TEST(ServeFairness, DeficitRoundRobinInterleavesTenants) {
    JobManagerOptions opts;
    opts.pool_workers = 1;
    opts.max_inflight_cost = 1;  // strictly one job at a time
    opts.start_paused = true;
    JobManager mgr(opts);

    lockdep::Mutex order_mutex{"test.order"};
    std::vector<std::string> dispatch_order;
    // Record each job's tenant at its FIRST Running event (= its dispatch).
    const auto record = [&](const std::string& tenant) {
        auto seen = std::make_shared<std::atomic<bool>>(false);
        return [&, tenant, seen](const JobEvent& ev) {
            if (ev.state == JobState::Running && !seen->exchange(true)) {
                std::lock_guard lock(order_mutex);
                dispatch_order.push_back(tenant);
            }
        };
    };

    // Tenant "a" floods 6 jobs; tenant "b" submits 3. Fair share means "b"
    // is not starved behind the flood: in any prefix of the dispatch order
    // the imbalance stays bounded by one visit.
    JobSpec a = tiny_spec();
    a.tenant = "a";
    JobSpec b = tiny_spec();
    b.tenant = "b";
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 6; ++i) ids.push_back(mgr.submit(a, record("a")).id);
    for (int i = 0; i < 3; ++i) ids.push_back(mgr.submit(b, record("b")).id);
    mgr.unpause();
    mgr.drain();
    for (const std::uint64_t id : ids) {
        EXPECT_EQ(mgr.wait(id).state, JobState::Done);
    }

    ASSERT_EQ(dispatch_order.size(), 9u);
    // While both tenants have queued jobs (the first 6 dispatches), the
    // round-robin alternates: per-tenant counts differ by at most 1.
    int na = 0;
    int nb = 0;
    for (int i = 0; i < 6; ++i) {
        (dispatch_order[static_cast<std::size_t>(i)] == "a" ? na : nb)++;
        EXPECT_LE(std::abs(na - nb), 1)
            << "prefix " << i << ": a=" << na << " b=" << nb;
    }
    EXPECT_EQ(nb, 3);  // "b" fully drained within the contested prefix
}

TEST(ServeFairness, WeightedTenantGetsProportionalShare) {
    JobManagerOptions opts;
    opts.pool_workers = 1;
    opts.max_inflight_cost = 1;
    opts.start_paused = true;
    JobManager mgr(opts);

    lockdep::Mutex order_mutex{"test.order"};
    std::vector<std::string> dispatch_order;
    const auto record = [&](const std::string& tenant) {
        auto seen = std::make_shared<std::atomic<bool>>(false);
        return [&, tenant, seen](const JobEvent& ev) {
            if (ev.state == JobState::Running && !seen->exchange(true)) {
                std::lock_guard lock(order_mutex);
                dispatch_order.push_back(tenant);
            }
        };
    };

    JobSpec heavy = tiny_spec();
    heavy.tenant = "heavy";
    heavy.weight = 2;
    JobSpec light = tiny_spec();
    light.tenant = "light";  // weight 1
    for (int i = 0; i < 6; ++i) mgr.submit(heavy, record("heavy"));
    for (int i = 0; i < 6; ++i) mgr.submit(light, record("light"));
    mgr.unpause();
    mgr.drain();

    ASSERT_EQ(dispatch_order.size(), 12u);
    // In the contested window (both tenants backlogged: heavy drains its 6
    // by dispatch 9 at the latest) the 2:1 weighting shows up as heavy
    // having ~2x light's dispatches, never fewer.
    int heavy_n = 0;
    int light_n = 0;
    for (int i = 0; i < 9; ++i) {
        (dispatch_order[static_cast<std::size_t>(i)] == "heavy" ? heavy_n
                                                                : light_n)++;
    }
    EXPECT_GE(heavy_n, light_n) << "heavy=" << heavy_n << " light=" << light_n;
    EXPECT_GE(heavy_n, 5) << "weight-2 tenant starved: " << heavy_n << "/9";
}

// ---- suspend / resume ------------------------------------------------------

TEST(ServeSuspend, TimeSlicedJobChecksumsMatchSoloRun) {
    const JobSpec spec = [] {
        JobSpec s = tiny_spec();
        s.num_tsteps = 6;
        s.variant = amr::Variant::TampiOss;
        return s;
    }();
    const std::vector<double> solo = solo_checksums(spec);

    JobManagerOptions opts;
    opts.pool_workers = 2;
    opts.slice_tsteps = 1;  // forced suspend at every timestep boundary
    JobManager mgr(opts);
    const SubmitResult r = mgr.submit(spec, nullptr);
    ASSERT_TRUE(r.accepted);
    const JobEvent final = mgr.wait(r.id);
    EXPECT_EQ(final.state, JobState::Done);
    EXPECT_GE(final.suspends, 4) << "slice=1 over 6 tsteps must suspend repeatedly";
    EXPECT_EQ(final.checksums, solo) << "resume broke bit-identical checksums";
}

TEST(ServeSuspend, ManualSuspendParksUntilResume) {
    JobSpec spec = tiny_spec();
    spec.num_tsteps = 40;  // long enough to catch mid-flight
    const std::vector<double> solo = solo_checksums(spec);

    JobManagerOptions opts;
    opts.pool_workers = 1;
    JobManager mgr(opts);
    const SubmitResult r = mgr.submit(spec, nullptr);
    ASSERT_TRUE(r.accepted);

    // Wait for it to start, then park it.
    while (mgr.state(r.id) == JobState::Queued) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(mgr.suspend(r.id));
    for (int i = 0; i < 2000 && mgr.state(r.id) != JobState::Suspended; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(mgr.state(r.id), JobState::Suspended);
    // Parked: it must stay suspended, not sneak back into the queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(mgr.state(r.id), JobState::Suspended);

    ASSERT_TRUE(mgr.resume(r.id));
    const JobEvent final = mgr.wait(r.id);
    EXPECT_EQ(final.state, JobState::Done);
    EXPECT_GE(final.suspends, 1);
    EXPECT_EQ(final.checksums, solo);
}

// ---- deadline preemption ---------------------------------------------------

TEST(ServeDeadline, UrgentJobPreemptsBestEffort) {
    JobManagerOptions opts;
    opts.pool_workers = 1;
    opts.max_inflight_cost = 1;  // the deadline job can only run by preempting
    JobManager mgr(opts);

    JobSpec hog = tiny_spec();
    hog.tenant = "hog";
    hog.num_tsteps = 100;
    const SubmitResult hog_r = mgr.submit(hog, nullptr);
    ASSERT_TRUE(hog_r.accepted);
    while (mgr.state(hog_r.id) == JobState::Queued) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    JobSpec urgent = tiny_spec();
    urgent.tenant = "urgent";
    urgent.deadline_s = 5;
    const SubmitResult urgent_r = mgr.submit(urgent, nullptr);
    ASSERT_TRUE(urgent_r.accepted);

    const JobEvent urgent_final = mgr.wait(urgent_r.id);
    EXPECT_EQ(urgent_final.state, JobState::Done);
    // The hog was still mid-flight when the urgent job finished.
    EXPECT_FALSE(is_terminal(mgr.state(hog_r.id)))
        << "deadline job should have finished first";
    EXPECT_GE(mgr.stats().preemptions, 1u);

    const JobEvent hog_final = mgr.wait(hog_r.id);
    EXPECT_EQ(hog_final.state, JobState::Done);
    EXPECT_GE(hog_final.suspends, 1) << "the hog must have been suspended";
}

// ---- crash recovery --------------------------------------------------------

TEST(ServeCrashRetry, InjectedCrashRetriesToIdenticalChecksums) {
    JobSpec spec = tiny_spec();
    spec.variant = amr::Variant::TampiOss;
    spec.ranks = 2;
    spec.num_tsteps = 6;
    const std::vector<double> solo = solo_checksums(spec);

    JobManagerOptions opts;
    opts.pool_workers = 2;
    opts.max_inflight_cost = 4;
    opts.slice_tsteps = 3;  // an image exists when the crash lands
    opts.faults.crash_rank = 0;
    opts.faults.crash_after_sends = 60;
    opts.faults.seed = 7;
    JobManager mgr(opts);

    const SubmitResult r = mgr.submit(spec, nullptr);
    ASSERT_TRUE(r.accepted);
    const JobEvent final = mgr.wait(r.id);
    EXPECT_EQ(final.state, JobState::Done) << final.error;
    EXPECT_GE(final.retries, 1) << "the injected crash never fired";
    EXPECT_EQ(final.checksums, solo) << "crash recovery broke checksum identity";
    EXPECT_GE(mgr.stats().crash_retries, 1u);
}

// ---- cancellation and disconnect cleanup -----------------------------------

TEST(ServeCancel, QueuedAndRunningJobsCancel) {
    JobManagerOptions opts;
    opts.pool_workers = 1;
    opts.max_inflight_cost = 1;
    JobManager mgr(opts);

    JobSpec slow = tiny_spec();
    slow.num_tsteps = 200;
    const SubmitResult running = mgr.submit(slow, nullptr);
    const SubmitResult queued = mgr.submit(slow, nullptr);
    ASSERT_TRUE(running.accepted);
    ASSERT_TRUE(queued.accepted);
    while (mgr.state(running.id) == JobState::Queued) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    EXPECT_TRUE(mgr.cancel(queued.id));
    EXPECT_TRUE(mgr.cancel(running.id));
    EXPECT_EQ(mgr.wait(queued.id).state, JobState::Cancelled);
    EXPECT_EQ(mgr.wait(running.id).state, JobState::Cancelled);
    EXPECT_FALSE(mgr.cancel(running.id)) << "cancel of a terminal job is a no-op";
    EXPECT_EQ(mgr.stats().cancelled, 2u);
}

TEST(ServeServer, DisconnectCancelsJobsAndServerKeepsServing) {
    ServerOptions opts;
    opts.manager.pool_workers = 1;
    opts.manager.max_inflight_cost = 1;
    Server server(opts);
    const net::HostPort addr{"127.0.0.1", server.port()};

    {
        // First client submits slow jobs and vanishes without waiting.
        Client doomed(addr);
        JobSpec slow = tiny_spec();
        slow.num_tsteps = 500;
        doomed.submit(slow);
        doomed.submit(slow);
        // Let the Submits reach the manager before dropping the connection.
        for (int i = 0; i < 2000 && server.stats().accepted < 2; ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        EXPECT_EQ(server.stats().accepted, 2u);
    }  // ~Client closes the socket: the server must cancel both jobs

    for (int i = 0; i < 5000; ++i) {
        const ServerStats s = server.stats();
        if (s.cancelled == 2 && s.running == 0 && s.queued == 0) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const ServerStats after = server.stats();
    EXPECT_EQ(after.cancelled, 2u) << "disconnect did not cancel orphaned jobs";
    EXPECT_EQ(after.running, 0);
    EXPECT_EQ(after.queued, 0);

    // The server is still healthy for new clients.
    Client fresh(addr);
    const std::uint64_t ref = fresh.submit(tiny_spec());
    const ClientJobResult r = fresh.wait(ref);
    EXPECT_TRUE(r.accepted);
    EXPECT_TRUE(r.done) << r.error;
    fresh.close();
    server.stop();
    EXPECT_EQ(server.stats().done, 1u);
}

TEST(ServeServer, ScenarioJobOverTheWireMatchesSoloRun) {
    // A problem-generator scenario submitted by name over DFS1: the server
    // maps "gaussian" to the estimator-driven config and the checksums must
    // match the solo run of that same derived config.
    ServerOptions opts;
    opts.manager.pool_workers = 2;
    Server server(opts);
    const net::HostPort addr{"127.0.0.1", server.port()};

    JobSpec spec = tiny_spec();
    spec.scenario = "gaussian";
    spec.num_tsteps = 3;
    const std::vector<double> solo = solo_checksums(spec);
    ASSERT_FALSE(solo.empty());

    Client client(addr);
    const ClientJobResult r = client.wait(client.submit(spec));
    ASSERT_TRUE(r.accepted);
    ASSERT_TRUE(r.done) << r.error;
    EXPECT_EQ(r.checksums, solo);

    // Unknown scenario names are rejected at submit, not crashed on.
    JobSpec bad = spec;
    bad.scenario = "warp_drive";
    const ClientJobResult rejected = client.wait(client.submit(bad));
    EXPECT_FALSE(rejected.accepted);
    client.close();
    server.stop();
}

TEST(ServeServer, EndToEndChecksumsOverTheWire) {
    ServerOptions opts;
    opts.manager.pool_workers = 2;
    opts.manager.slice_tsteps = 2;  // exercise suspend/resume over the wire
    Server server(opts);
    const net::HostPort addr{"127.0.0.1", server.port()};

    JobSpec spec = tiny_spec();
    spec.num_tsteps = 6;
    const std::vector<double> solo = solo_checksums(spec);

    Client client(addr);
    std::vector<std::uint64_t> refs;
    for (int i = 0; i < 4; ++i) refs.push_back(client.submit(spec));
    for (const std::uint64_t ref : refs) {
        const ClientJobResult r = client.wait(ref);
        ASSERT_TRUE(r.accepted);
        ASSERT_TRUE(r.done) << r.error;
        EXPECT_EQ(r.checksums, solo);
        EXPECT_GE(r.suspends, 1);
        EXPECT_GT(r.progress_frames, 0);
    }
    const ServerStats s = client.stats();
    EXPECT_EQ(s.done, 4u);
    client.close();
    server.stop();
}

}  // namespace
}  // namespace dfamr::serve
