// Stress and determinism coverage for the work-stealing scheduler
// (per-worker Chase-Lev deques, sharded dependency registry, targeted
// wakeups). The stress tests are sized to run under the TSan CI config,
// where they double as a race detector for the lock-free deque and the
// park/wake protocol; the dependency-ordered tests use plain (non-atomic)
// variables on purpose so TSan proves the happens-before edges the
// registry wires.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/variants.hpp"
#include "tasking/runtime.hpp"

namespace {

using namespace dfamr;
using tasking::Runtime;

TEST(SchedulerStress, ManySmallTasksAllExecuteOnce) {
    Runtime rt(4);
    std::atomic<long long> sum{0};
    const long long n = 20000;
    for (long long i = 0; i < n; ++i) {
        rt.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); }, {});
    }
    rt.taskwait();
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
    const auto s = rt.stats();
    EXPECT_EQ(s.tasks_submitted, static_cast<std::uint64_t>(n));
    EXPECT_EQ(s.tasks_executed, static_cast<std::uint64_t>(n));
}

TEST(SchedulerStress, NestedTaskwaitWithDependencyChains) {
    Runtime rt(4);
    constexpr int kGens = 8;
    constexpr int kLinks = 400;
    // Plain ints: only the inout chains below order the accesses. A missed
    // edge (or a broken steal) shows up as a TSan race or a wrong count.
    std::vector<long long> counters(kGens, 0);
    for (int g = 0; g < kGens; ++g) {
        rt.submit(
            [&rt, &counters, g] {
                long long* c = &counters[g];
                for (int l = 0; l < kLinks; ++l) {
                    rt.submit([c] { ++*c; }, {tasking::inout(c, sizeof(*c))});
                }
                // Nested taskwait: only this generator's chain must drain.
                rt.taskwait();
                ++*c;  // chain fully released; no further task touches *c
            },
            {});
    }
    rt.taskwait();
    for (int g = 0; g < kGens; ++g) {
        EXPECT_EQ(counters[g], kLinks + 1) << "generator " << g;
    }
}

TEST(SchedulerStress, ExternalEventsConcurrentWithSteals) {
    Runtime rt(4);
    constexpr int kEventTasks = 64;
    constexpr int kFiller = 4096;  // divisible by kEventTasks
    std::mutex pending_mutex;
    std::vector<tasking::Task*> pending;
    std::atomic<int> event_bodies{0};
    std::atomic<long long> filler_sum{0};
    std::atomic<bool> done_feeding{false};

    // Fulfiller thread: completes event-bound tasks while the worker pool
    // is busy stealing filler tasks — exercises complete_if_ready racing
    // with deque traffic.
    std::thread fulfiller([&] {
        for (;;) {
            tasking::Task* t = nullptr;
            {
                std::lock_guard lock(pending_mutex);
                if (!pending.empty()) {
                    t = pending.back();
                    pending.pop_back();
                }
            }
            if (t != nullptr) {
                rt.decrease_task_events(t, 1);
            } else if (done_feeding.load(std::memory_order_acquire)) {
                return;
            } else {
                std::this_thread::yield();
            }
        }
    });

    for (int i = 0; i < kEventTasks; ++i) {
        rt.submit(
            [&rt, &pending_mutex, &pending, &event_bodies] {
                tasking::Task* self = rt.increase_current_task_events(1);
                event_bodies.fetch_add(1, std::memory_order_relaxed);
                std::lock_guard lock(pending_mutex);
                pending.push_back(self);
            },
            {});
        for (int f = 0; f < kFiller / kEventTasks; ++f) {
            rt.submit([&filler_sum] { filler_sum.fetch_add(1, std::memory_order_relaxed); },
                      {});
        }
    }
    rt.taskwait();  // helps execute; returns only when events are fulfilled
    done_feeding.store(true, std::memory_order_release);
    fulfiller.join();

    EXPECT_EQ(event_bodies.load(), kEventTasks);
    EXPECT_EQ(filler_sum.load(), kFiller);
}

TEST(SchedulerDeterminism, InlineExecutionIsSubmissionOrderFifo) {
    // workers == 0: the injection queue IS the scheduler and taskwait runs
    // it inline, so independent tasks must execute in exact submit order.
    Runtime rt(0);
    std::vector<int> order;
    for (int i = 0; i < 64; ++i) {
        rt.submit([&order, i] { order.push_back(i); }, {});
    }
    rt.taskwait();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(rt.stats().steals, 0u);
}

core::RunResult run_tiny(amr::Variant v) {
    amr::Config cfg;
    cfg.npx = 2;
    cfg.npy = 1;
    cfg.npz = 1;
    cfg.init_x = cfg.init_y = cfg.init_z = 1;
    cfg.nx = cfg.ny = cfg.nz = 4;
    cfg.num_vars = 4;
    cfg.num_tsteps = 2;
    cfg.stages_per_ts = 4;
    cfg.checksum_freq = 2;
    cfg.num_refine = 2;
    cfg.refine_freq = 1;
    cfg.workers = 2;
    amr::ObjectSpec sphere;
    sphere.type = amr::ObjectType::SpheroidSurface;
    sphere.center = {0.1, 0.1, 0.1};
    sphere.size = {0.25, 0.25, 0.25};
    sphere.move = {0.15, 0.1, 0.05};
    sphere.bounce = true;
    cfg.objects.push_back(sphere);
    return core::run_variant(cfg, v);
}

TEST(SchedulerDeterminism, ChecksumsBitIdenticalToSeed) {
    // Golden values recorded from the pre-work-stealing seed runtime on the
    // same configuration. The scheduler rewrite must not perturb a single
    // bit of the physics for any variant.
    const double golden[] = {0x1.6681b882cb678p+13, 0x1.66a28988c6d84p+13,
                             0x1.bbd18d3155f9ep+13, 0x1.bbee0e8b9018ep+13};
    for (amr::Variant v :
         {amr::Variant::MpiOnly, amr::Variant::ForkJoin, amr::Variant::TampiOss}) {
        const core::RunResult r = run_tiny(v);
        ASSERT_EQ(r.checksums.size(), std::size(golden)) << "variant " << static_cast<int>(v);
        for (std::size_t i = 0; i < std::size(golden); ++i) {
            EXPECT_EQ(r.checksums[i], golden[i])
                << "variant " << static_cast<int>(v) << " checksum " << i;
        }
    }
}

}  // namespace
