// Cross-process golden tests: launch real rank processes with dfamr_mpirun
// over the TCP transport and require bit-identical checksums to the
// in-process run, for every variant, plus launcher exit-code propagation.
//
// The binary paths come in as compile definitions (DFAMR_MPIRUN_BIN,
// DFAMR_SINGLE_SPHERE_BIN) so the test works from any CWD.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace dfamr {
namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/// Runs a shell command, returns its exit status (-1 on system() failure).
int run(const std::string& cmd) {
    const int rc = std::system(cmd.c_str());
    if (rc == -1) return -1;
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : 128 + WTERMSIG(rc);
}

// Small but real problem: 2 timesteps of the single-sphere input.
const char* kProblem = "--num_tsteps 2 --checksum_freq 2 > /dev/null 2>&1";

class MpirunGolden : public ::testing::TestWithParam<const char*> {};

TEST_P(MpirunGolden, TcpChecksumsBitIdenticalToInproc) {
    const std::string variant = GetParam();
    const std::string dir = ::testing::TempDir();
    const std::string ref = dir + "/ref_" + variant + ".txt";
    const std::string tcp = dir + "/tcp_" + variant + ".txt";
    ASSERT_EQ(run(std::string(DFAMR_SINGLE_SPHERE_BIN) + " --variant " + variant +
                  " --checksum_out " + ref + " " + kProblem),
              0);
    ASSERT_EQ(run(std::string(DFAMR_MPIRUN_BIN) + " -n 2 " + DFAMR_SINGLE_SPHERE_BIN +
                  " --transport tcp --variant " + variant + " --checksum_out " + tcp + " " +
                  kProblem),
              0);
    const std::string a = read_file(ref), b = read_file(tcp);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "checksums diverged between in-process and multi-process TCP";
}

INSTANTIATE_TEST_SUITE_P(Variants, MpirunGolden,
                         ::testing::Values("mpi", "forkjoin", "tampi"));

TEST(Mpirun, ChaosOverTcpMatchesFaultFreeTwin) {
    // single_sphere runs its own in-process fault-free twin and exits
    // non-zero if the chaos checksums diverge; rendezvous forced low so the
    // faults hit both eager and rendezvous traffic.
    EXPECT_EQ(run(std::string(DFAMR_MPIRUN_BIN) + " -n 2 " + DFAMR_SINGLE_SPHERE_BIN +
                  " --transport tcp --rendezvous_threshold 4096 --fault_seed 7"
                  " --fault_drop_prob 0.02 --fault_delay_prob 0.05 " +
                  kProblem),
              0);
}

// DepLint as a cross-process race prover: DFAMR_DEPLINT=1 attaches the
// verifier inside every rank process, so each rank's full task history —
// including the TAMPI communication tasks driven by real TCP traffic — must
// pass the happens-before proof at shutdown. A dirty proof aborts the rank
// and dfamr_mpirun propagates the non-zero exit.
class MpirunDepLint : public ::testing::TestWithParam<const char*> {};

TEST_P(MpirunDepLint, TwoRankTaskGraphProvedRaceFree) {
    const std::string variant = GetParam();
    EXPECT_EQ(run(std::string("DFAMR_DEPLINT=1 ") + DFAMR_MPIRUN_BIN + " -n 2 " +
                  DFAMR_SINGLE_SPHERE_BIN + " --transport tcp --variant " + variant + " " +
                  kProblem),
              0)
        << "DepLint reported an unordered conflict in a rank's task graph";
}

INSTANTIATE_TEST_SUITE_P(TaskVariants, MpirunDepLint, ::testing::Values("forkjoin", "tampi"));

TEST(Mpirun, PropagatesRankExitCode) {
    EXPECT_EQ(run(std::string(DFAMR_MPIRUN_BIN) + " -n 2 sh -c 'exit 3' > /dev/null 2>&1"), 3);
}

TEST(Mpirun, FailsCleanlyOnUnlaunchableCommand) {
    EXPECT_NE(run(std::string(DFAMR_MPIRUN_BIN) +
                  " -n 2 ./definitely-not-a-binary > /dev/null 2>&1"),
              0);
}

}  // namespace
}  // namespace dfamr
