// Cross-process golden tests: launch real rank processes with dfamr_mpirun
// over the TCP and shared-memory transports and require bit-identical
// checksums to the in-process run, for every variant and every fast-path
// combination (--coalesce, --zero_copy), plus launcher exit-code
// propagation and chaos runs over both transports.
//
// The binary paths come in as compile definitions (DFAMR_MPIRUN_BIN,
// DFAMR_SINGLE_SPHERE_BIN) so the test works from any CWD.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>

namespace dfamr {
namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/// Runs a shell command, returns its exit status (-1 on system() failure).
int run(const std::string& cmd) {
    const int rc = std::system(cmd.c_str());
    if (rc == -1) return -1;
    return WIFEXITED(rc) ? WEXITSTATUS(rc) : 128 + WTERMSIG(rc);
}

// Small but real problem: 2 timesteps of the single-sphere input.
const char* kProblem = "--num_tsteps 2 --checksum_freq 2 > /dev/null 2>&1";

// (transport, variant, extra rank flags). Every combination must be
// bit-identical to the plain in-process run of the same variant.
using GoldenParam = std::tuple<const char*, const char*, const char*>;

class MpirunGolden : public ::testing::TestWithParam<GoldenParam> {};

TEST_P(MpirunGolden, ChecksumsBitIdenticalToInproc) {
    const auto [transport, variant, extra] = GetParam();
    const std::string tag = std::string(transport) + "_" + variant + "_" +
                            std::to_string(std::string(extra).size());
    const std::string dir = ::testing::TempDir();
    const std::string ref = dir + "/ref_" + tag + ".txt";
    const std::string wire = dir + "/wire_" + tag + ".txt";
    ASSERT_EQ(run(std::string(DFAMR_SINGLE_SPHERE_BIN) + " --variant " + variant +
                  " --checksum_out " + ref + " " + kProblem),
              0);
    ASSERT_EQ(run(std::string(DFAMR_MPIRUN_BIN) + " -n 2 --transport " + transport + " " +
                  DFAMR_SINGLE_SPHERE_BIN + " --variant " + variant + " " + extra +
                  " --checksum_out " + wire + " " + kProblem),
              0);
    const std::string a = read_file(ref), b = read_file(wire);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "checksums diverged between in-process and multi-process " << transport
                    << " (" << (std::string(extra).empty() ? "plain" : extra) << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Transports, MpirunGolden,
    ::testing::Combine(::testing::Values("tcp", "shm", "auto"),
                       ::testing::Values("mpi", "forkjoin", "tampi"),
                       ::testing::Values("")));

// The fast-path flags ride the same goldens: coalescing batches the wire
// frames, zero-copy packs straight into them, and the checksums must not
// move. One launcher flag set per run; tampi exercises --zero_copy as the
// documented no-op carve-out.
INSTANTIATE_TEST_SUITE_P(
    FastPaths, MpirunGolden,
    ::testing::Combine(::testing::Values("tcp", "shm"),
                       ::testing::Values("mpi", "forkjoin", "tampi"),
                       ::testing::Values("--zero_copy")));

class MpirunCoalesce : public ::testing::TestWithParam<const char*> {};

TEST_P(MpirunCoalesce, OnOffGoldensMatch) {
    // --coalesce is a launcher flag (it reaches ranks via DFAMR_COALESCE),
    // so compare a coalesced world directly against a plain one.
    const std::string transport = GetParam();
    const std::string dir = ::testing::TempDir();
    const std::string off = dir + "/coalesce_off_" + transport + ".txt";
    const std::string on = dir + "/coalesce_on_" + transport + ".txt";
    ASSERT_EQ(run(std::string(DFAMR_MPIRUN_BIN) + " -n 2 --transport " + transport + " " +
                  DFAMR_SINGLE_SPHERE_BIN + " --checksum_out " + off + " " + kProblem),
              0);
    ASSERT_EQ(run(std::string(DFAMR_MPIRUN_BIN) + " -n 2 --transport " + transport +
                  " --coalesce " + DFAMR_SINGLE_SPHERE_BIN + " --zero_copy --checksum_out " +
                  on + " " + kProblem),
              0);
    const std::string a = read_file(off), b = read_file(on);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b) << "coalescing changed the checksums over " << transport;
}

INSTANTIATE_TEST_SUITE_P(Transports, MpirunCoalesce, ::testing::Values("tcp", "shm"));

class MpirunChaos : public ::testing::TestWithParam<const char*> {};

TEST_P(MpirunChaos, ChaosMatchesFaultFreeTwin) {
    // single_sphere runs its own in-process fault-free twin and exits
    // non-zero if the chaos checksums diverge; rendezvous forced low so the
    // faults hit both eager and rendezvous traffic. The launcher args also
    // turn both fast paths on: faults must not break them either.
    const std::string transport = GetParam();
    EXPECT_EQ(run(std::string(DFAMR_MPIRUN_BIN) + " -n 2 --transport " + transport +
                  " --coalesce " + DFAMR_SINGLE_SPHERE_BIN +
                  " --zero_copy --rendezvous_threshold 4096 --fault_seed 7"
                  " --fault_drop_prob 0.02 --fault_delay_prob 0.05 " +
                  kProblem),
              0);
}

INSTANTIATE_TEST_SUITE_P(Transports, MpirunChaos, ::testing::Values("tcp", "shm"));

// DepLint as a cross-process race prover: DFAMR_DEPLINT=1 attaches the
// verifier inside every rank process, so each rank's full task history —
// including the TAMPI communication tasks driven by real TCP traffic — must
// pass the happens-before proof at shutdown. A dirty proof aborts the rank
// and dfamr_mpirun propagates the non-zero exit.
class MpirunDepLint : public ::testing::TestWithParam<const char*> {};

TEST_P(MpirunDepLint, TwoRankTaskGraphProvedRaceFree) {
    const std::string variant = GetParam();
    EXPECT_EQ(run(std::string("DFAMR_DEPLINT=1 ") + DFAMR_MPIRUN_BIN + " -n 2 " +
                  DFAMR_SINGLE_SPHERE_BIN + " --transport tcp --variant " + variant + " " +
                  kProblem),
              0)
        << "DepLint reported an unordered conflict in a rank's task graph";
}

INSTANTIATE_TEST_SUITE_P(TaskVariants, MpirunDepLint, ::testing::Values("forkjoin", "tampi"));

TEST(Mpirun, PropagatesRankExitCode) {
    EXPECT_EQ(run(std::string(DFAMR_MPIRUN_BIN) + " -n 2 sh -c 'exit 3' > /dev/null 2>&1"), 3);
}

TEST(Mpirun, FailsCleanlyOnUnlaunchableCommand) {
    EXPECT_NE(run(std::string(DFAMR_MPIRUN_BIN) +
                  " -n 2 ./definitely-not-a-binary > /dev/null 2>&1"),
              0);
}

}  // namespace
}  // namespace dfamr
