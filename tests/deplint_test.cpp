// Tests for the verification layer (src/verify/): DepLint's happens-before
// prover fed with scripted dependency histories — including seeded races
// and mis-declared dependencies no functional test could catch — the
// access-level checker, and end-to-end runs of the three variants with a
// Verifier attached.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/variants.hpp"
#include "tasking/runtime.hpp"
#include "verify/access_check.hpp"
#include "verify/deplint.hpp"
#include "verify/verifier.hpp"

namespace dfamr::verify {
namespace {

using tasking::Dep;
using tasking::in;
using tasking::inout;
using tasking::out;

// ---------------------------------------------------------------------------
// Graph-level checks: feed DepLint a scripted history, exactly as a (possibly
// buggy) runtime would through the VerifyHook interface.
// ---------------------------------------------------------------------------

class Script {
public:
    explicit Script(DepLint& lint) : lint_(lint) {}

    /// Registers a task with the given declared accesses.
    void reg(std::uint64_t id, const char* label, std::vector<Dep> deps) {
        auto& node = node_for(id);
        lint_.on_node_registered(node, label, deps);
    }
    /// Records an explicit registry edge pred -> succ.
    void edge(std::uint64_t pred, std::uint64_t succ) {
        lint_.on_edge_added(node_for(pred), node_for(succ));
    }
    /// Marks a task's dependencies released.
    void rel(std::uint64_t id) { lint_.on_node_released(node_for(id)); }

private:
    tasking::DepNode& node_for(std::uint64_t id) {
        auto& slot = nodes_[id];
        if (!slot) {
            slot = std::make_unique<tasking::DepNode>();
            slot->node_id = id;
        }
        return *slot;
    }

    DepLint& lint_;
    std::unordered_map<std::uint64_t, std::unique_ptr<tasking::DepNode>> nodes_;
};

TEST(DepLint, SeededRaceIsDetectedWithLabelsAndRegion) {
    // Two writers on the same region, no edge, neither completed before the
    // other was submitted: the classic lost-dependency bug.
    DepLint lint;
    lint.set_check_on_shutdown(false);
    Script s(lint);
    double x = 0;
    s.reg(1, "stencil_a", {out(&x, sizeof x)});
    s.reg(2, "stencil_b", {out(&x, sizeof x)});
    s.rel(1);
    s.rel(2);

    const Report r = lint.check();
    ASSERT_EQ(r.violations.size(), 1u);
    const Violation& v = r.violations.front();
    EXPECT_EQ(v.kind, Violation::Kind::UnorderedConflict);
    EXPECT_EQ(v.task_a, 1u);
    EXPECT_EQ(v.task_b, 2u);
    // The diagnostic must name both task labels and the region.
    EXPECT_NE(v.message.find("stencil_a"), std::string::npos) << v.message;
    EXPECT_NE(v.message.find("stencil_b"), std::string::npos) << v.message;
    EXPECT_NE(v.message.find("0x"), std::string::npos) << v.message;
    EXPECT_NE(r.to_string().find("race"), std::string::npos);
}

TEST(DepLint, ExplicitEdgeOrdersConflict) {
    DepLint lint;
    lint.set_check_on_shutdown(false);
    Script s(lint);
    double x = 0;
    s.reg(1, "writer", {out(&x, sizeof x)});
    s.reg(2, "reader", {in(&x, sizeof x)});
    s.edge(1, 2);
    s.rel(1);
    s.rel(2);
    const Report r = lint.check();
    EXPECT_TRUE(r.clean()) << r.to_string();
    EXPECT_EQ(r.conflicts_checked, 1u);
}

TEST(DepLint, CompletionOrderCoversElidedEdge) {
    // The registry elides the edge when the predecessor already released its
    // deps; DepLint must accept the completion order as happens-before.
    DepLint lint;
    lint.set_check_on_shutdown(false);
    Script s(lint);
    double x = 0;
    s.reg(1, "writer", {out(&x, sizeof x)});
    s.rel(1);  // released before the reader was submitted
    s.reg(2, "reader", {in(&x, sizeof x)});
    s.rel(2);
    const Report r = lint.check();
    EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(DepLint, ConcurrentUnorderedConflictIsNotExcusedByLaterRelease) {
    // Release order alone is not happens-before: task 1 released only AFTER
    // task 2 was already submitted, so they overlapped in flight.
    DepLint lint;
    lint.set_check_on_shutdown(false);
    Script s(lint);
    double x = 0;
    s.reg(1, "a", {inout(&x, sizeof x)});
    s.reg(2, "b", {inout(&x, sizeof x)});
    s.rel(1);  // too late — 2 was submitted first
    s.rel(2);
    EXPECT_FALSE(lint.check().clean());
}

TEST(DepLint, TransitiveEdgePathOrdersConflict) {
    DepLint lint;
    lint.set_check_on_shutdown(false);
    Script s(lint);
    double x = 0, y = 0;
    s.reg(1, "produce", {out(&x, sizeof x)});
    s.reg(2, "transform", {in(&x, sizeof x), out(&y, sizeof y)});
    s.reg(3, "consume", {in(&y, sizeof y), out(&x, sizeof x)});  // conflicts with 1 via x
    s.edge(1, 2);
    s.edge(2, 3);
    s.rel(1);
    s.rel(2);
    s.rel(3);
    const Report r = lint.check();
    EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(DepLint, MixedEdgeThenCompletionPathOrdersConflict) {
    // a -E-> b, b released, then c submitted: a happens-before c through the
    // collapsed E*·T form even though no edge touches c.
    DepLint lint;
    lint.set_check_on_shutdown(false);
    Script s(lint);
    double x = 0, y = 0;
    s.reg(1, "a", {out(&x, sizeof x), out(&y, sizeof y)});
    s.reg(2, "b", {in(&y, sizeof y)});
    s.edge(1, 2);
    s.rel(1);
    s.rel(2);
    s.reg(3, "c", {out(&x, sizeof x)});  // conflicts with a; ordered by b's completion
    s.rel(3);
    const Report r = lint.check();
    EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(DepLint, CycleIsDetected) {
    DepLint lint;
    lint.set_check_on_shutdown(false);
    Script s(lint);
    double x = 0;
    s.reg(1, "ouroboros_head", {inout(&x, sizeof x)});
    s.reg(2, "ouroboros_tail", {inout(&x, sizeof x)});
    s.edge(1, 2);
    s.edge(2, 1);
    const Report r = lint.check();
    ASSERT_FALSE(r.clean());
    bool found_cycle = false;
    for (const Violation& v : r.violations) {
        if (v.kind == Violation::Kind::Cycle) {
            found_cycle = true;
            EXPECT_NE(v.message.find("cycle"), std::string::npos) << v.message;
        }
    }
    EXPECT_TRUE(found_cycle);
}

TEST(DepLint, ReadersNeverConflict) {
    DepLint lint;
    lint.set_check_on_shutdown(false);
    Script s(lint);
    double x = 0;
    s.reg(1, "r1", {in(&x, sizeof x)});
    s.reg(2, "r2", {in(&x, sizeof x)});
    s.rel(1);
    s.rel(2);
    const Report r = lint.check();
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.conflicts_checked, 0u);
}

TEST(DepLint, EmptyRegionsAreInert) {
    // Zero-size regions at the same base overlap nothing (see
    // tasking::Region): two "writers" of an empty region are not a conflict.
    DepLint lint;
    lint.set_check_on_shutdown(false);
    Script s(lint);
    double x = 0;
    s.reg(1, "w1", {out(&x, 0)});
    s.reg(2, "w2", {out(&x, 0)});
    const Report r = lint.check();
    EXPECT_TRUE(r.clean());
    EXPECT_EQ(r.conflicts_checked, 0u);
}

TEST(DepLint, PartialOverlapStillConflicts) {
    DepLint lint;
    lint.set_check_on_shutdown(false);
    Script s(lint);
    double buf[4] = {};
    s.reg(1, "left", {out(&buf[0], 3 * sizeof(double))});
    s.reg(2, "right", {out(&buf[2], 2 * sizeof(double))});  // overlaps buf[2]
    EXPECT_FALSE(lint.check().clean());
}

TEST(DepLint, ResetDropsHistory) {
    DepLint lint;
    lint.set_check_on_shutdown(false);
    Script s(lint);
    double x = 0;
    s.reg(1, "a", {out(&x, sizeof x)});
    s.reg(2, "b", {out(&x, sizeof x)});
    EXPECT_EQ(lint.recorded_tasks(), 2u);
    EXPECT_FALSE(lint.check().clean());
    lint.reset();
    EXPECT_EQ(lint.recorded_tasks(), 0u);
    EXPECT_TRUE(lint.check().clean());
}

TEST(DepLint, ShutdownCheckCanBeDisabled) {
    // With a dirty history and shutdown checking off, on_shutdown must not
    // abort the process.
    DepLint lint;
    lint.set_check_on_shutdown(false);
    Script s(lint);
    double x = 0;
    s.reg(1, "a", {out(&x, sizeof x)});
    s.reg(2, "b", {out(&x, sizeof x)});
    lint.on_shutdown();  // would abort if checking were enabled
    SUCCEED();
}

// ---------------------------------------------------------------------------
// DepLint attached to the real runtime.
// ---------------------------------------------------------------------------

TEST(DepLintRuntime, CleanHistoryFromRealRuntime) {
    DepLint lint;
    double x = 0, y = 0;
    {
        tasking::Runtime rt(2);
        rt.set_verify_hook(&lint);
        for (int i = 0; i < 8; ++i) {
            rt.submit([&] { x += 1; }, {inout(&x, sizeof x)}, "accumulate");
        }
        rt.submit([&] { y = x; }, {in(&x, sizeof x), out(&y, sizeof y)}, "copy");
        rt.taskwait();
        const Report r = lint.check();
        EXPECT_TRUE(r.clean()) << r.to_string();
        EXPECT_EQ(lint.recorded_tasks(), 9u);
        EXPECT_GT(r.conflicts_checked, 0u);
    }  // ~Runtime fires on_shutdown; in debug builds this re-checks and must
       // not abort.
    EXPECT_EQ(x, 8.0);
    EXPECT_EQ(y, 8.0);
}

TEST(DepLintRuntime, ElidedEdgeHistoryStillProvesOrder) {
    // With workers==0 every task runs inline at a taskwait, so a conflicting
    // task submitted after the wait finds its predecessor released: the
    // registry elides the edge and DepLint must prove the order from the
    // release/submit stamps alone.
    DepLint lint;
    double x = 0;
    tasking::Runtime rt(0);
    rt.set_verify_hook(&lint);
    rt.submit([&] { x = 1; }, {out(&x, sizeof x)}, "writer");
    rt.taskwait();
    rt.submit([&] { x += 1; }, {inout(&x, sizeof x)}, "rewriter");
    rt.taskwait();
    EXPECT_EQ(lint.recorded_edges(), 0u);  // both conflicts resolved by time
    const Report r = lint.check();
    EXPECT_TRUE(r.clean()) << r.to_string();
    EXPECT_GT(r.conflicts_checked, 0u);
    EXPECT_EQ(x, 2.0);
}

TEST(DepLintRuntime, TaskwaitOnIsRecordedAndOrdered) {
    DepLint lint;
    double x = 0;
    tasking::Runtime rt(1);
    rt.set_verify_hook(&lint);
    rt.submit([&] { x = 42; }, {out(&x, sizeof x)}, "producer");
    rt.taskwait_on({in(&x, sizeof x)});
    EXPECT_EQ(x, 42.0);
    rt.taskwait();
    // The sentinel is a recorded task and its conflict with the producer
    // must be ordered like any other.
    EXPECT_EQ(lint.recorded_tasks(), 2u);
    const Report r = lint.check();
    EXPECT_TRUE(r.clean()) << r.to_string();
}

// ---------------------------------------------------------------------------
// Access-level checker.
// ---------------------------------------------------------------------------

TEST(AccessCheck, UndeclaredWriteThrowsWithPreciseReport) {
    double declared = 0, undeclared = 0;
    const std::vector<Dep> deps{in(&declared, sizeof declared)};
    ScopedDeclaredRegions scope("bad_writer", 7, deps);
    ASSERT_TRUE(access_checking_active());
    try {
        check_write(&undeclared, sizeof undeclared);
        FAIL() << "undeclared write was not flagged";
    } catch (const AccessViolation& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("bad_writer"), std::string::npos) << msg;
        EXPECT_NE(msg.find("write"), std::string::npos) << msg;
        EXPECT_NE(msg.find("0x"), std::string::npos) << msg;
    }
}

TEST(AccessCheck, DeclaredAccessesPass) {
    double a = 0, b = 0, c = 0;
    const std::vector<Dep> deps{in(&a, sizeof a), out(&b, sizeof b), inout(&c, sizeof c)};
    ScopedDeclaredRegions scope("good_task", 1, deps);
    EXPECT_NO_THROW(check_read(&a, sizeof a));
    EXPECT_NO_THROW(check_write(&b, sizeof b));
    EXPECT_NO_THROW(check_read(&c, sizeof c));
    EXPECT_NO_THROW(check_write(&c, sizeof c));
    // in does not grant writes; out does not grant reads.
    EXPECT_THROW(check_write(&a, sizeof a), AccessViolation);
    EXPECT_THROW(check_read(&b, sizeof b), AccessViolation);
}

TEST(AccessCheck, UnconstrainedContextsPass) {
    double x = 0;
    // Outside any task body: anything goes.
    EXPECT_FALSE(access_checking_active());
    EXPECT_NO_THROW(check_write(&x, sizeof x));
    {
        // A task declaring no regions opted out of the region model.
        ScopedDeclaredRegions scope("pure_compute", 2, std::span<const Dep>{});
        EXPECT_FALSE(access_checking_active());
        EXPECT_NO_THROW(check_write(&x, sizeof x));
    }
    {
        // All-empty regions count as no declaration too.
        const std::vector<Dep> deps{in(&x, 0)};
        ScopedDeclaredRegions scope("empty_regions", 3, deps);
        EXPECT_FALSE(access_checking_active());
        EXPECT_NO_THROW(check_write(&x, sizeof x));
    }
}

TEST(AccessCheck, CoverageMergesAdjacentRegions) {
    double buf[4] = {};
    // Two adjacent declared regions must jointly cover a spanning access.
    const std::vector<Dep> deps{in(&buf[0], 2 * sizeof(double)),
                                in(&buf[2], 2 * sizeof(double))};
    ScopedDeclaredRegions scope("spanner", 4, deps);
    EXPECT_NO_THROW(check_read(buf, sizeof buf));
    // One byte past the declared union fails.
    EXPECT_THROW(check_read(buf, sizeof buf + 1), AccessViolation);
}

TEST(AccessCheck, ZeroSizeAccessAlwaysPasses) {
    double a = 0, elsewhere = 0;
    const std::vector<Dep> deps{in(&a, sizeof a)};
    ScopedDeclaredRegions scope("t", 5, deps);
    EXPECT_NO_THROW(check_read(&elsewhere, 0));
    EXPECT_NO_THROW(check_write(&elsewhere, 0));
}

TEST(AccessCheck, CheckedSpanEnforcesElementAccess) {
    std::vector<double> data(8, 1.0);
    // Only the first half is declared.
    const std::vector<Dep> deps{inout(data.data(), 4 * sizeof(double))};
    ScopedDeclaredRegions scope("half", 6, deps);
    auto cs = checked(std::span<double>(data));
    EXPECT_NO_THROW(cs.store(0, 2.0));
    EXPECT_EQ(cs.load(3), 1.0);
    EXPECT_THROW(cs.load(4), AccessViolation);
    EXPECT_THROW(cs.store(7, 0.0), AccessViolation);
    EXPECT_EQ(cs.raw()[7], 1.0);  // raw() is the unchecked escape hatch
}

TEST(AccessCheck, NestedScopesConstrainInnermost) {
    double a = 0, b = 0;
    const std::vector<Dep> outer_deps{inout(&a, sizeof a)};
    ScopedDeclaredRegions outer("outer", 10, outer_deps);
    EXPECT_NO_THROW(check_write(&a, sizeof a));
    {
        const std::vector<Dep> inner_deps{inout(&b, sizeof b)};
        ScopedDeclaredRegions inner("inner", 11, inner_deps);
        EXPECT_NO_THROW(check_write(&b, sizeof b));
        EXPECT_THROW(check_write(&a, sizeof a), AccessViolation);
    }
    EXPECT_NO_THROW(check_write(&a, sizeof a));  // outer applies again
}

TEST(AccessCheck, ViolationInTaskBodySurfacesAtTaskwait) {
    // End-to-end: a Verifier installs the declared-region table around every
    // body; a body touching undeclared bytes throws and the error reaches
    // the next taskwait like any task exception.
    Verifier verifier;
    verifier.deplint().set_check_on_shutdown(false);
    double declared = 0, undeclared = 0;
    tasking::Runtime rt(0);
    verifier.attach(rt);
    rt.submit(
        [&] {
            check_write(&declared, sizeof declared);  // fine
            declared = 1;
            check_write(&undeclared, sizeof undeclared);  // kaboom
            undeclared = 1;
        },
        {out(&declared, sizeof declared)}, "bad_writer");
    EXPECT_THROW(rt.taskwait(), AccessViolation);
    EXPECT_EQ(declared, 1.0);
    EXPECT_EQ(undeclared, 0.0);  // the write never executed
}

// ---------------------------------------------------------------------------
// Wire-region registry: the delivery-path counterpart of the per-thread
// table. These drive the always-compiled functions directly; the mpisim
// integration (register at irecv post, check before the delivery memcpy,
// unregister on match/cancel) is macro-gated and exercised live by the
// DFAMR_VERIFY CI configuration.
// ---------------------------------------------------------------------------

TEST(WireRegions, DeliveryWriteMustHitRegisteredBuffer) {
    ASSERT_EQ(wire_regions_registered(), 0u);
    std::vector<std::byte> ghost(64);
    register_wire_region(ghost.data(), ghost.size(), "ghost.recv");
    EXPECT_EQ(wire_regions_registered(), 1u);

    // In-bounds delivery writes pass: full buffer, prefix, interior slice.
    EXPECT_NO_THROW(check_wire_write(ghost.data(), ghost.size()));
    EXPECT_NO_THROW(check_wire_write(ghost.data(), 16));
    EXPECT_NO_THROW(check_wire_write(ghost.data() + 8, 32));
    // Empty payloads write nothing.
    EXPECT_NO_THROW(check_wire_write(ghost.data(), 0));

    // Overrun past the registered end: flagged with the buffer's tag.
    try {
        check_wire_write(ghost.data() + 32, 64);
        FAIL() << "overrun was not flagged";
    } catch (const AccessViolation& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("overruns"), std::string::npos) << msg;
        EXPECT_NE(msg.find("ghost.recv"), std::string::npos) << msg;
    }

    // A write into memory nobody posted a receive for: the original blind
    // spot — an endpoint thread scribbling outside every landing zone.
    std::vector<std::byte> unrelated(64);
    EXPECT_THROW(check_wire_write(unrelated.data(), unrelated.size()), AccessViolation);

    unregister_wire_region(ghost.data());
    EXPECT_EQ(wire_regions_registered(), 0u);
    // Once the receive matched, its buffer is no longer a legal target.
    EXPECT_THROW(check_wire_write(ghost.data(), 1), AccessViolation);
}

TEST(WireRegions, OverlappingPostsAreRejected) {
    std::vector<std::byte> buf(128);
    register_wire_region(buf.data(), 64, "first");
    // Same base, straddling the start, and nested inside: all overlap.
    EXPECT_THROW(register_wire_region(buf.data(), 32, "dup"), Error);
    EXPECT_THROW(register_wire_region(buf.data() + 32, 64, "straddle"), Error);
    EXPECT_THROW(register_wire_region(buf.data() + 8, 8, "nested"), Error);
    // Adjacent (end == next base) is fine: distinct receives, distinct bytes.
    EXPECT_NO_THROW(register_wire_region(buf.data() + 64, 64, "second"));
    unregister_wire_region(buf.data());
    unregister_wire_region(buf.data() + 64);
    EXPECT_EQ(wire_regions_registered(), 0u);
}

TEST(WireRegions, UnbalancedUnregisterIsAnError) {
    std::vector<std::byte> buf(16);
    // Cancel/match bookkeeping bugs show up as unknown-base unregisters.
    EXPECT_THROW(unregister_wire_region(buf.data()), Error);
    register_wire_region(buf.data(), buf.size(), "once");
    unregister_wire_region(buf.data());
    EXPECT_THROW(unregister_wire_region(buf.data()), Error);
    // Zero-size posts have no landing zone: no registration, no unregister.
    register_wire_region(buf.data(), 0, "empty");
    EXPECT_EQ(wire_regions_registered(), 0u);
}

// ---------------------------------------------------------------------------
// Negative tests: the real variants run clean under verification. In
// DFAMR_VERIFY builds the drivers attach Verifiers and every instrumented
// hot path (pack/unpack/stencil/checksum, TAMPI buffers) is checked; in
// default builds this still pins down the baseline behavior.
// ---------------------------------------------------------------------------

core::RunResult run_tiny(amr::Variant variant) {
    amr::Config cfg;
    cfg.npx = 2;
    cfg.npy = cfg.npz = 1;
    cfg.init_x = cfg.init_y = cfg.init_z = 1;
    cfg.nx = cfg.ny = cfg.nz = 4;
    cfg.num_vars = 4;
    cfg.num_tsteps = 2;
    cfg.stages_per_ts = 4;
    cfg.checksum_freq = 2;
    cfg.num_refine = 2;
    cfg.refine_freq = 1;
    cfg.workers = 2;

    amr::ObjectSpec sphere;
    sphere.type = amr::ObjectType::SpheroidSurface;
    sphere.center = {0.1, 0.1, 0.1};
    sphere.size = {0.25, 0.25, 0.25};
    sphere.move = {0.15, 0.1, 0.05};
    sphere.bounce = true;
    cfg.objects.push_back(sphere);
    return core::run_variant(cfg, variant);
}

TEST(VerifiedVariants, MpiOnlyRunsClean) {
    EXPECT_TRUE(run_tiny(amr::Variant::MpiOnly).validation_ok);
}

TEST(VerifiedVariants, ForkJoinRunsClean) {
    EXPECT_TRUE(run_tiny(amr::Variant::ForkJoin).validation_ok);
}

TEST(VerifiedVariants, TampiOssRunsClean) {
    EXPECT_TRUE(run_tiny(amr::Variant::TampiOss).validation_ok);
}

}  // namespace
}  // namespace dfamr::verify
