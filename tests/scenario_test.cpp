// Scenario subsystem tests: refinement-condition scoring (estimator edge
// cases), problem-generator workloads, cross-variant bit-identity of
// estimator-driven runs, deref hysteresis across checkpoint/restore, and
// the checkpoint version gate protecting the hysteresis state.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "amr/flux_register.hpp"
#include "common/bytecodec.hpp"
#include "common/error.hpp"
#include "core/variants.hpp"
#include "resilience/checkpoint.hpp"
#include "scenario/problem_generator.hpp"
#include "scenario/refinement_condition.hpp"

namespace dfamr {
namespace {

using amr::Block;
using amr::BlockKey;
using amr::BlockShape;
using amr::Config;
using amr::Variant;
using core::RunResult;
using core::run_variant;
using scenario::find_condition;
using scenario::find_generator;
using scenario::RefinementCondition;
using scenario::ScoreContext;

/// Two ranks, deep enough refinement and a tight enough threshold that the
/// gaussian pulse actually drives splits and later coarsening.
Config scenario_config(const std::string& scenario, const std::string& estimator) {
    Config cfg;
    cfg.npx = 2;
    cfg.npy = 1;
    cfg.npz = 1;
    cfg.init_x = cfg.init_y = cfg.init_z = 1;
    cfg.nx = cfg.ny = cfg.nz = 8;
    cfg.num_vars = 4;
    cfg.num_tsteps = 2;
    cfg.stages_per_ts = 4;
    cfg.checksum_freq = 2;
    cfg.num_refine = 2;
    cfg.refine_freq = 1;
    cfg.workers = 2;
    cfg.scenario = scenario;
    cfg.estimator = estimator;
    cfg.refine_threshold = 0.1;
    cfg.deref_count = 3;
    return cfg;
}

void expect_checksums_identical(const RunResult& a, const RunResult& b) {
    ASSERT_EQ(a.checksums.size(), b.checksums.size());
    for (std::size_t i = 0; i < a.checksums.size(); ++i) {
        EXPECT_EQ(a.checksums[i], b.checksums[i]) << "checksum stage " << i;
    }
}

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

// ---------------------------------------------------------------------------
// Registries
// ---------------------------------------------------------------------------

TEST(ScenarioRegistry, ConditionsAndGeneratorsResolveByName) {
    for (const std::string& name : scenario::condition_names()) {
        const RefinementCondition* c = find_condition(name);
        ASSERT_NE(c, nullptr) << name;
        EXPECT_EQ(c->name(), name);
    }
    for (const std::string& name : scenario::generator_names()) {
        ASSERT_NE(find_generator(name), nullptr) << name;
    }
    EXPECT_EQ(find_condition("no_such_condition"), nullptr);
    EXPECT_EQ(find_generator("no_such_generator"), nullptr);
    // "synthetic" selects the legacy stencil path, not a generator.
    EXPECT_EQ(find_generator("synthetic"), nullptr);
}

TEST(ScenarioRegistry, UnknownEstimatorOrScenarioIsRejectedByTheDriver) {
    Config cfg = scenario_config("gaussian", "gradient");
    cfg.estimator = "bogus";
    EXPECT_THROW(run_variant(cfg, Variant::MpiOnly), Error);
    cfg = scenario_config("bogus", "gradient");
    EXPECT_THROW(run_variant(cfg, Variant::MpiOnly), Error);
}

// ---------------------------------------------------------------------------
// Estimator edge cases
// ---------------------------------------------------------------------------

Block uniform_block(double value, const BlockShape& shape) {
    Block blk(BlockKey{}, shape);
    for (int v = 0; v < shape.num_vars; ++v) {
        for (int x = 0; x <= shape.nx + 1; ++x) {
            for (int y = 0; y <= shape.ny + 1; ++y) {
                for (int z = 0; z <= shape.nz + 1; ++z) blk.at(v, x, y, z) = value;
            }
        }
    }
    return blk;
}

TEST(Estimators, UniformFieldScoresExactlyZero) {
    const BlockShape shape{4, 4, 4, 1};
    const Block blk = uniform_block(3.25, shape);
    const Box box{{0, 0, 0}, {1, 1, 1}};
    const ScoreContext ctx;
    // Score 0 < any positive threshold: a uniform field never refines, no
    // matter how tight the threshold is.
    EXPECT_EQ(find_condition("gradient")->score(&blk, box, ctx), 0.0);
    EXPECT_EQ(find_condition("curvature")->score(&blk, box, ctx), 0.0);
}

TEST(Estimators, LinearRampHasGradientButZeroCurvature) {
    const BlockShape shape{4, 4, 4, 1};
    Block blk = uniform_block(0.0, shape);
    for (int x = 0; x <= shape.nx + 1; ++x) {
        for (int y = 0; y <= shape.ny + 1; ++y) {
            for (int z = 0; z <= shape.nz + 1; ++z) blk.at(0, x, y, z) = 0.5 * x;
        }
    }
    const Box box{{0, 0, 0}, {1, 1, 1}};
    const ScoreContext ctx;
    EXPECT_DOUBLE_EQ(find_condition("gradient")->score(&blk, box, ctx), 0.5);
    EXPECT_EQ(find_condition("curvature")->score(&blk, box, ctx), 0.0);
}

TEST(Estimators, GradientScoreIsTheMaxUndividedDifference) {
    const BlockShape shape{4, 4, 4, 2};
    Block blk = uniform_block(1.0, shape);
    blk.at(0, 2, 3, 2) = 1.75;  // one bump: max |diff| = 0.75 around it
    blk.at(1, 2, 2, 2) = 9.0;   // other variables must not contribute
    const Box box{{0, 0, 0}, {1, 1, 1}};
    const ScoreContext ctx;
    EXPECT_DOUBLE_EQ(find_condition("gradient")->score(&blk, box, ctx), 0.75);
}

TEST(Estimators, ScoreExactlyAtThresholdDoesNotRefine) {
    // The threshold comparison is strict (score > threshold). The objects
    // condition scores exactly 1.0 on touched blocks, so refine_threshold
    // 1.0 puts every score exactly at the boundary: nothing may split.
    Config cfg = scenario_config("synthetic", "objects");
    cfg.uniform_refine = true;  // every block scores exactly 1.0
    cfg.refine_threshold = 1.0;
    const RunResult at = run_variant(cfg, Variant::MpiOnly);
    EXPECT_EQ(at.counters.blocks_split, 0);

    // Nudge the threshold below the score: now everything splits.
    cfg.refine_threshold = 0.999;
    const RunResult below = run_variant(cfg, Variant::MpiOnly);
    EXPECT_GT(below.counters.blocks_split, 0);
}

TEST(Estimators, ObjectsConditionReproducesLegacyRunBitForBit) {
    // The defaults (objects / 0.5 / 1) route the legacy criterion through
    // the unified scoring path; an explicit spelling must change nothing.
    Config legacy = scenario_config("synthetic", "objects");
    legacy.refine_threshold = 0.5;
    legacy.deref_count = 1;
    amr::ObjectSpec sphere;
    sphere.type = amr::ObjectType::SpheroidSurface;
    sphere.center = {0.1, 0.1, 0.1};
    sphere.size = {0.25, 0.25, 0.25};
    sphere.move = {0.15, 0.1, 0.05};
    legacy.objects.push_back(sphere);

    const RunResult a = run_variant(legacy, Variant::MpiOnly);
    const RunResult b = run_variant(legacy, Variant::TampiOss);
    expect_checksums_identical(a, b);
    EXPECT_EQ(a.counters.blocks_refined_by_estimator, 0)
        << "object-driven splits must not count as estimator-driven";
}

// ---------------------------------------------------------------------------
// Problem generators
// ---------------------------------------------------------------------------

TEST(Generators, AnalyticScenariosReportAnErrorNorm) {
    const RunResult r = run_variant(scenario_config("gaussian", "gradient"), Variant::MpiOnly);
    EXPECT_TRUE(r.validation_ok);
    EXPECT_TRUE(r.has_error_norm);
    EXPECT_GT(r.error_norm, 0.0);
    EXPECT_LT(r.error_norm, 0.1) << "advected pulse should track the analytic solution";
    EXPECT_GT(r.counters.blocks_refined_by_estimator, 0);
}

TEST(Generators, FrontScenarioHasNoReference) {
    const RunResult r = run_variant(scenario_config("front", "gradient"), Variant::MpiOnly);
    EXPECT_TRUE(r.validation_ok);
    EXPECT_FALSE(r.has_error_norm);
}

TEST(Generators, SyntheticRunsReportNoErrorNorm) {
    const RunResult r = run_variant(scenario_config("synthetic", "objects"), Variant::MpiOnly);
    EXPECT_FALSE(r.has_error_norm);
    EXPECT_EQ(r.error_norm, 0.0);
}

TEST(Generators, TighterThresholdReducesTheErrorNorm) {
    Config loose = scenario_config("gaussian", "gradient");
    loose.refine_threshold = 0.5;  // nothing ever refines at this scale
    Config tight = scenario_config("gaussian", "gradient");
    tight.refine_threshold = 0.02;
    const RunResult a = run_variant(loose, Variant::MpiOnly);
    const RunResult b = run_variant(tight, Variant::MpiOnly);
    ASSERT_TRUE(a.has_error_norm);
    ASSERT_TRUE(b.has_error_norm);
    EXPECT_LT(b.error_norm, a.error_norm)
        << "resolving the pulse better must track the analytic solution better";
    EXPECT_GT(b.final_blocks, a.final_blocks);
}

TEST(Generators, GoldenRunsDoNotThrash) {
    for (const char* scenario : {"gaussian", "slotted_cylinder", "front"}) {
        for (const char* estimator : {"gradient", "curvature"}) {
            const RunResult r =
                run_variant(scenario_config(scenario, estimator), Variant::MpiOnly);
            EXPECT_TRUE(r.validation_ok) << scenario << "/" << estimator;
            EXPECT_EQ(r.counters.refine_coarsen_thrash, 0)
                << scenario << "/" << estimator
                << ": hysteresis must keep refine->coarsen flapping at zero";
        }
    }
}

// ---------------------------------------------------------------------------
// Conservation: flux-form transport + Berger-Colella refluxing
// ---------------------------------------------------------------------------

TEST(Conservation, SameLevelSharedFaceFluxesAreBitwiseIdentical) {
    // Two abutting same-level blocks evaluate their shared face from
    // bitwise-identical inputs (exchanged ghosts + canonical face
    // coordinates), so the interface telescopes to exactly zero with no
    // correction: left's +x register must equal right's -x register bit
    // for bit.
    const scenario::ProblemGenerator* gen = find_generator("gaussian");
    ASSERT_NE(gen, nullptr);
    const amr::BlockShape shape{4, 4, 4, 1};
    amr::Block left(BlockKey{}, shape), right(BlockKey{}, shape);
    const Box box_l{{0.0, 0.0, 0.0}, {0.5, 0.5, 0.5}};
    const Box box_r{{0.5, 0.0, 0.0}, {1.0, 0.5, 0.5}};
    gen->init_block(left, box_l);
    gen->init_block(right, box_r);
    left.copy_face_from(right, amr::FaceGeom{0, +1, amr::FaceRel::Same, 0}, 0, 1);
    right.copy_face_from(left, amr::FaceGeom{0, -1, amr::FaceRel::Same, 0}, 0, 1);

    amr::FluxRegister reg_l(shape), reg_r(shape);
    const double dt = 0.01;
    gen->advance(left, box_l, 0, 1, dt, &reg_l);
    gen->advance(right, box_r, 0, 1, dt, &reg_r);

    bool any_nonzero = false;
    for (int u = 1; u <= 4; ++u) {
        for (int v = 1; v <= 4; ++v) {
            EXPECT_EQ(reg_l.at(0, +1, 0, u, v), reg_r.at(0, -1, 0, u, v))
                << "(" << u << "," << v << ")";
            any_nonzero = any_nonzero || reg_l.at(0, +1, 0, u, v) != 0.0;
        }
    }
    EXPECT_TRUE(any_nonzero) << "the gaussian pulse must actually flux through the face";
}

TEST(Conservation, CoarseFineFaceTelescopesAfterRestriction) {
    // One coarse block with a half-size fine neighbor on its -x side (quad
    // 0 of the face), so the gaussian's +x velocity upwinds on the FINE
    // side: the coarse kernel fluxes v * (restricted ghost average) while
    // each fine kernel fluxes v * (its own boundary cell) — different
    // rounding, a genuine pre-correction disagreement. The Berger-Colella
    // replacement installs the restricted fine flux on the coarse side,
    // after which the area-weighted interface budget cancels bitwise:
    // quarter-face averaging and the 4x area ratio are exact power-of-two
    // operations.
    const scenario::ProblemGenerator* gen = find_generator("gaussian");
    ASSERT_NE(gen, nullptr);
    const amr::BlockShape shape{4, 4, 4, 1};
    amr::Block coarse(BlockKey{}, shape), fine(BlockKey{}, shape);
    const Box box_c{{0.5, 0.0, 0.0}, {1.0, 0.5, 0.5}};     // h = 0.125
    const Box box_f{{0.25, 0.0, 0.0}, {0.5, 0.25, 0.25}};  // h = 0.0625
    gen->init_block(coarse, box_c);
    gen->init_block(fine, box_f);
    coarse.copy_face_from(fine, amr::FaceGeom{0, -1, amr::FaceRel::Finer, 0}, 0, 1);
    fine.copy_face_from(coarse, amr::FaceGeom{0, +1, amr::FaceRel::Coarser, 0}, 0, 1);

    amr::FluxRegister reg_c(shape), reg_f(shape);
    const double dt = 0.01;
    gen->advance(coarse, box_c, 0, 1, dt, &reg_c);
    gen->advance(fine, box_f, 0, 1, dt, &reg_f);

    // Restrict the fine side's +x registers exactly as the flux plan ships
    // them to the coarse neighbor.
    std::vector<double> restricted(static_cast<std::size_t>(shape.face_values_mixed(0, 1)));
    reg_f.pack_restricted(0, +1, 0, 1, restricted);
    ASSERT_EQ(restricted.size(), 4u);

    const double area_f = 0.0625 * 0.0625;
    const double area_c = 4.0 * area_f;
    bool any_mismatch = false;
    std::size_t o = 0;
    for (int u = 1; u <= 2; ++u) {  // quad 0: lower half in u and v
        for (int v = 1; v <= 2; ++v, ++o) {
            const double coarse_flux = reg_c.at(0, -1, 0, u, v);
            const double fine_hat = restricted[o];
            any_mismatch = any_mismatch || coarse_flux != fine_hat;
            // After the reflux replacement the coarse side's area-weighted
            // flux equals the fine side's sum exactly.
            double fine_sum = 0;
            for (int du = 1; du <= 2; ++du) {
                for (int dv = 1; dv <= 2; ++dv) {
                    fine_sum += reg_f.at(0, +1, 0, 2 * (u - 1) + du, 2 * (v - 1) + dv);
                }
            }
            EXPECT_EQ(fine_hat * area_c, fine_sum * area_f) << "(" << u << "," << v << ")";
        }
    }
    EXPECT_TRUE(any_mismatch)
        << "pre-correction coarse and restricted fine fluxes should disagree somewhere — "
           "otherwise this face exercises nothing";
}

TEST(Conservation, MassBudgetClosesForEveryGenerator) {
    for (const char* scenario : {"gaussian", "slotted_cylinder", "front"}) {
        Config cfg = scenario_config(scenario, "gradient");
        cfg.num_tsteps = 3;  // enough for refine AND coarsen activity
        const RunResult r = run_variant(cfg, Variant::MpiOnly);
        EXPECT_TRUE(r.validation_ok) << scenario;
        // The reflux residual telescopes to exactly zero: the coarse flux
        // is replaced by the restricted fine flux, so the |difference|
        // tally only ever sums bitwise zeros. Any other value means a
        // coarse-fine face escaped the correction pass.
        EXPECT_EQ(r.mass_drift, 0.0) << scenario;
        // And the budget closes: the change in total mass is exactly the
        // signed mass that left through the domain boundary, to rounding.
        const double residual = r.final_mass - r.initial_mass + r.boundary_outflux;
        EXPECT_LE(std::abs(residual), 1e-12 * std::max(1.0, std::abs(r.initial_mass)))
            << scenario << ": initial " << r.initial_mass << " final " << r.final_mass
            << " outflux " << r.boundary_outflux;
    }
}

TEST(Conservation, RefluxCorrectionsFireAcrossRefineCoarsenCycles) {
    Config cfg = scenario_config("gaussian", "gradient");
    cfg.num_tsteps = 3;
    const RunResult r = run_variant(cfg, Variant::MpiOnly);
    EXPECT_GT(r.counters.blocks_refined_by_estimator, 0);
    EXPECT_GT(r.counters.reflux_corrections, 0)
        << "estimator-driven splits create coarse-fine faces that must reflux";
    EXPECT_EQ(r.mass_drift, 0.0);
}

TEST(Conservation, SlottedCylinderFullTurnL1Regression) {
    // One full solid-body rotation (omega = 1, period 2*pi) on a
    // single-rank mesh deep enough to sustain coarse-fine interfaces all
    // the way around: 84 timesteps x 6 stages at the CFL-limited
    // dt = 0.0125 advance sim_time to 6.3 ~ 2*pi, so the cylinder sweeps
    // every coarse-fine configuration (~129k reflux corrections). The L1
    // bound is loose in absolute terms (first-order upwind smears the
    // slot) but pins down regressions in the transport kernel; the mass
    // budget must still close to rounding (measured residual ~8e-17).
    Config cfg = scenario_config("slotted_cylinder", "gradient");
    cfg.npx = 1;
    cfg.num_vars = 1;
    cfg.num_refine = 2;
    cfg.num_tsteps = 84;
    cfg.stages_per_ts = 6;
    cfg.checksum_freq = 20;
    cfg.workers = 1;
    const RunResult r = run_variant(cfg, Variant::MpiOnly);
    EXPECT_TRUE(r.validation_ok);
    ASSERT_TRUE(r.has_error_norm);
    EXPECT_LT(r.error_norm, 0.15) << "full-turn L1 error regressed (expected ~0.095)";
    EXPECT_GT(r.counters.reflux_corrections, 0);
    EXPECT_EQ(r.mass_drift, 0.0);
    const double residual = r.final_mass - r.initial_mass + r.boundary_outflux;
    EXPECT_LE(std::abs(residual), 1e-12 * std::max(1.0, std::abs(r.initial_mass)));
}

// ---------------------------------------------------------------------------
// Cross-variant / transport-independent bit-identity
// ---------------------------------------------------------------------------

class ScenarioVariants : public ::testing::TestWithParam<const char*> {};

TEST_P(ScenarioVariants, AllVariantsBitIdentical) {
    for (const char* estimator : {"gradient", "curvature"}) {
        const Config cfg = scenario_config(GetParam(), estimator);
        const RunResult mpi = run_variant(cfg, Variant::MpiOnly);
        const RunResult fj = run_variant(cfg, Variant::ForkJoin);
        const RunResult tampi = run_variant(cfg, Variant::TampiOss);
        EXPECT_TRUE(mpi.validation_ok) << estimator;
        expect_checksums_identical(mpi, fj);
        expect_checksums_identical(mpi, tampi);
        EXPECT_EQ(mpi.final_blocks, fj.final_blocks) << estimator;
        EXPECT_EQ(mpi.final_blocks, tampi.final_blocks) << estimator;
        EXPECT_EQ(mpi.error_norm, fj.error_norm) << estimator;
        EXPECT_EQ(mpi.error_norm, tampi.error_norm) << estimator;
        // The conservation ledger is part of the bit-identity contract: the
        // outflux tally is accumulated in one deterministic order in every
        // variant, and the reflux residual is zero everywhere.
        EXPECT_EQ(mpi.mass_drift, 0.0) << estimator;
        EXPECT_EQ(fj.mass_drift, 0.0) << estimator;
        EXPECT_EQ(tampi.mass_drift, 0.0) << estimator;
        EXPECT_EQ(mpi.boundary_outflux, fj.boundary_outflux) << estimator;
        EXPECT_EQ(mpi.boundary_outflux, tampi.boundary_outflux) << estimator;
        EXPECT_EQ(mpi.counters.reflux_corrections, fj.counters.reflux_corrections) << estimator;
        EXPECT_EQ(mpi.counters.reflux_corrections, tampi.counters.reflux_corrections)
            << estimator;
    }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioVariants,
                         ::testing::Values("gaussian", "slotted_cylinder", "front"));

// ---------------------------------------------------------------------------
// Hysteresis state across checkpoint/restore
// ---------------------------------------------------------------------------

TEST(ScenarioCheckpoint, RestoredRunReproducesHysteresisDecisionsBitForBit) {
    const std::string path = temp_path("dfamr_scenario_ckpt.bin");

    // A run whose coarsening decisions straddle the checkpoint boundary:
    // with deref_count 3 and a refinement check every timestep, counters
    // accumulated before the checkpoint decide merges after it.
    Config cfg = scenario_config("gaussian", "gradient");
    cfg.num_tsteps = 4;
    const RunResult full = run_variant(cfg, Variant::MpiOnly);

    Config partial = cfg;
    partial.num_tsteps = 2;
    partial.checkpoint_every = 2;
    partial.checkpoint_path = path;
    run_variant(partial, Variant::MpiOnly);

    // The checkpoint must carry the streak counters (version 2 section).
    const resilience::CheckpointState st = resilience::read_checkpoint_state(path);
    EXPECT_EQ(st.ts_completed, 2);

    Config restored_cfg = cfg;
    restored_cfg.restore_path = path;
    const RunResult restored = run_variant(restored_cfg, Variant::MpiOnly);
    EXPECT_TRUE(restored.validation_ok);
    expect_checksums_identical(full, restored);
    EXPECT_EQ(full.final_blocks, restored.final_blocks);
    // The v3 state (sim_time + conservation ledger) must round-trip: the
    // restored run reports the same error norm (reference sampled at the
    // same simulated time) and the same mass budget as the full run.
    EXPECT_EQ(full.error_norm, restored.error_norm);
    EXPECT_EQ(full.initial_mass, restored.initial_mass);
    EXPECT_EQ(full.final_mass, restored.final_mass);
    // The outflux tally regroups across the restore (pre-checkpoint
    // contributions collapse into one stored sum), so it agrees to
    // rounding, not bitwise.
    EXPECT_NEAR(full.boundary_outflux, restored.boundary_outflux, 1e-12);
    EXPECT_EQ(full.counters.reflux_corrections, restored.counters.reflux_corrections);
    EXPECT_EQ(restored.mass_drift, 0.0);
    std::remove(path.c_str());
}

TEST(ScenarioCheckpoint, DerefCountsRoundTripThroughTheImage) {
    const std::string path = temp_path("dfamr_scenario_ckpt_counts.bin");
    Config cfg = scenario_config("gaussian", "gradient");
    cfg.num_tsteps = 2;
    cfg.checkpoint_every = 2;
    cfg.checkpoint_path = path;
    run_variant(cfg, Variant::MpiOnly);

    const resilience::CheckpointState st = resilience::read_checkpoint_state(path);
    // A streak at or past deref_count can survive when the sibling group or
    // the 2:1 constraint vetoed the merge, so only the lower bound and the
    // leaves-only pruning are invariants.
    for (const auto& [key, count] : st.deref_counts) {
        EXPECT_TRUE(st.owners.count(key)) << "streaks must only cover current leaves";
        EXPECT_GE(count, 1);
    }
    EXPECT_FALSE(st.deref_counts.empty())
        << "the gaussian run is expected to accumulate coarsen-willing streaks";
    std::remove(path.c_str());
}

TEST(ScenarioCheckpoint, VersionOneImagesAreRejectedWithAClearError) {
    // Craft a minimal version-1 header: magic + version. The reader must
    // reject it before touching anything else.
    bytes::Writer w;
    const char magic[8] = {'D', 'F', 'A', 'M', 'R', 'C', 'K', 'P'};
    w.raw(magic, sizeof magic);
    w.u32(1);
    const std::string path = temp_path("dfamr_v1.ckpt");
    {
        std::ofstream out(path, std::ios::binary);
        out.write(reinterpret_cast<const char*>(w.bytes.data()),
                  static_cast<std::streamsize>(w.bytes.size()));
    }
    try {
        resilience::read_checkpoint_state(path);
        FAIL() << "version-1 image must be rejected";
    } catch (const Error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unsupported version 1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("hysteresis"), std::string::npos)
            << "the error should say what version 1 is missing: " << msg;
    }
    std::remove(path.c_str());
}

TEST(ScenarioCheckpoint, VersionTwoImagesAreRejectedWithAClearError) {
    // Version 2 predates the conservative-transport state (sim_time + the
    // mass ledger); restoring one would silently reset the simulated clock
    // and the conservation accounting. The reader must name what's missing.
    bytes::Writer w;
    const char magic[8] = {'D', 'F', 'A', 'M', 'R', 'C', 'K', 'P'};
    w.raw(magic, sizeof magic);
    w.u32(2);
    const std::string path = temp_path("dfamr_v2.ckpt");
    {
        std::ofstream out(path, std::ios::binary);
        out.write(reinterpret_cast<const char*>(w.bytes.data()),
                  static_cast<std::streamsize>(w.bytes.size()));
    }
    try {
        resilience::read_checkpoint_state(path);
        FAIL() << "version-2 image must be rejected";
    } catch (const Error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unsupported version 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("conservative-transport"), std::string::npos)
            << "the error should say what version 2 is missing: " << msg;
    }
    std::remove(path.c_str());
}

TEST(ScenarioCheckpoint, FingerprintCoversScenarioSelection) {
    // Restoring a gaussian/gradient checkpoint into a different scenario,
    // estimator, threshold or deref_count must be rejected: field data and
    // refinement decisions would silently disagree.
    const std::string path = temp_path("dfamr_scenario_fp.ckpt");
    Config cfg = scenario_config("gaussian", "gradient");
    cfg.num_tsteps = 1;
    cfg.checkpoint_every = 1;
    cfg.checkpoint_path = path;
    run_variant(cfg, Variant::MpiOnly);

    Config other = cfg;
    other.checkpoint_every = 0;
    other.restore_path = path;
    other.scenario = "front";
    EXPECT_THROW(run_variant(other, Variant::MpiOnly), Error);
    other.scenario = cfg.scenario;
    other.estimator = "curvature";
    EXPECT_THROW(run_variant(other, Variant::MpiOnly), Error);
    other.estimator = cfg.estimator;
    other.refine_threshold = 0.2;
    EXPECT_THROW(run_variant(other, Variant::MpiOnly), Error);
    other.refine_threshold = cfg.refine_threshold;
    other.deref_count = 1;
    EXPECT_THROW(run_variant(other, Variant::MpiOnly), Error);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace dfamr
