// Tests for the in-process MPI substitute: matching semantics, ordering,
// wildcards, collectives, and multi-threaded use.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "mpisim/mpi.hpp"

namespace dfamr::mpi {
namespace {

TEST(MpiSim, PingPong) {
    World world(2);
    world.run([](Communicator& comm) {
        int value = 0;
        if (comm.rank() == 0) {
            value = 99;
            comm.send(&value, sizeof value, 1, 7);
            comm.recv(&value, sizeof value, 1, 8);
            EXPECT_EQ(value, 100);
        } else {
            comm.recv(&value, sizeof value, 0, 7);
            EXPECT_EQ(value, 99);
            ++value;
            comm.send(&value, sizeof value, 0, 8);
        }
    });
    EXPECT_EQ(world.messages_delivered(), 2u);
}

TEST(MpiSim, NonBlockingRoundTrip) {
    World world(2);
    world.run([](Communicator& comm) {
        std::vector<double> buf(64);
        if (comm.rank() == 0) {
            std::iota(buf.begin(), buf.end(), 0.0);
            Request req = comm.isend(buf.data(), buf.size() * sizeof(double), 1, 3);
            req.wait();
        } else {
            Request req = comm.irecv(buf.data(), buf.size() * sizeof(double), 0, 3);
            Status st;
            req.wait(&st);
            EXPECT_EQ(st.source, 0);
            EXPECT_EQ(st.tag, 3);
            EXPECT_EQ(st.bytes, 64 * sizeof(double));
            EXPECT_DOUBLE_EQ(buf[63], 63.0);
        }
    });
}

TEST(MpiSim, RecvPostedBeforeSend) {
    World world(2);
    world.run([](Communicator& comm) {
        int v = 0;
        if (comm.rank() == 1) {
            Request req = comm.irecv(&v, sizeof v, 0, 5);
            comm.barrier();  // ensure recv is posted before the send happens
            req.wait();
            EXPECT_EQ(v, 17);
        } else {
            comm.barrier();
            v = 17;
            comm.send(&v, sizeof v, 1, 5);
        }
    });
}

TEST(MpiSim, NonOvertakingSameSourceSameTag) {
    World world(2);
    world.run([](Communicator& comm) {
        if (comm.rank() == 0) {
            for (int i = 0; i < 50; ++i) comm.send(&i, sizeof i, 1, 1);
        } else {
            for (int i = 0; i < 50; ++i) {
                int v = -1;
                comm.recv(&v, sizeof v, 0, 1);
                EXPECT_EQ(v, i);
            }
        }
    });
}

TEST(MpiSim, TagsSelectMessages) {
    World world(2);
    world.run([](Communicator& comm) {
        if (comm.rank() == 0) {
            int a = 1, b = 2;
            comm.send(&a, sizeof a, 1, 10);
            comm.send(&b, sizeof b, 1, 20);
        } else {
            int v = 0;
            comm.recv(&v, sizeof v, 0, 20);  // out of arrival order, by tag
            EXPECT_EQ(v, 2);
            comm.recv(&v, sizeof v, 0, 10);
            EXPECT_EQ(v, 1);
        }
    });
}

TEST(MpiSim, WildcardSourceAndTag) {
    World world(3);
    world.run([](Communicator& comm) {
        if (comm.rank() != 0) {
            const int v = comm.rank() * 100;
            comm.send(&v, sizeof v, 0, comm.rank());
        } else {
            int total = 0;
            for (int i = 0; i < 2; ++i) {
                int v = 0;
                Status st;
                comm.recv(&v, sizeof v, kAnySource, kAnyTag, &st);
                EXPECT_EQ(v, st.source * 100);
                EXPECT_EQ(st.tag, st.source);
                total += v;
            }
            EXPECT_EQ(total, 300);
        }
    });
}

TEST(MpiSim, WaitAnyReturnsCompletedIndex) {
    World world(3);
    world.run([](Communicator& comm) {
        if (comm.rank() == 0) {
            std::vector<int> bufs(2, -1);
            std::vector<Request> reqs;
            reqs.push_back(comm.irecv(&bufs[0], sizeof(int), 1, 0));
            reqs.push_back(comm.irecv(&bufs[1], sizeof(int), 2, 0));
            int seen = 0;
            while (true) {
                Status st;
                const int idx = wait_any(std::span<Request>(reqs), &st);
                if (idx == kUndefined) break;
                EXPECT_EQ(bufs[static_cast<std::size_t>(idx)], st.source);
                ++seen;
            }
            EXPECT_EQ(seen, 2);
        } else {
            const int v = comm.rank();
            comm.send(&v, sizeof v, 0, 0);
        }
    });
}

TEST(MpiSim, WaitAllDrains) {
    World world(2);
    world.run([](Communicator& comm) {
        constexpr int kN = 20;
        if (comm.rank() == 0) {
            std::vector<Request> reqs;
            std::vector<int> vals(kN);
            for (int i = 0; i < kN; ++i) {
                vals[static_cast<std::size_t>(i)] = i;
                reqs.push_back(comm.isend(&vals[static_cast<std::size_t>(i)], sizeof(int), 1, i));
            }
            wait_all(std::span<Request>(reqs));
        } else {
            std::vector<Request> reqs;
            std::vector<int> vals(kN, -1);
            for (int i = 0; i < kN; ++i) {
                reqs.push_back(comm.irecv(&vals[static_cast<std::size_t>(i)], sizeof(int), 0, i));
            }
            wait_all(std::span<Request>(reqs));
            for (int i = 0; i < kN; ++i) EXPECT_EQ(vals[static_cast<std::size_t>(i)], i);
        }
    });
}

TEST(MpiSim, IprobeSeesPendingMessage) {
    World world(2);
    world.run([](Communicator& comm) {
        if (comm.rank() == 0) {
            int v = 5;
            comm.send(&v, sizeof v, 1, 9);
            comm.barrier();
        } else {
            comm.barrier();
            Status st;
            EXPECT_TRUE(comm.iprobe(0, 9, &st));
            EXPECT_EQ(st.bytes, sizeof(int));
            EXPECT_FALSE(comm.iprobe(0, 10));
            int v = 0;
            comm.recv(&v, sizeof v, 0, 9);
            EXPECT_FALSE(comm.iprobe(kAnySource, kAnyTag));
        }
    });
}

TEST(MpiSim, TruncationThrows) {
    World world(2);
    EXPECT_THROW(world.run([](Communicator& comm) {
        std::int64_t big = 1;
        if (comm.rank() == 0) {
            comm.send(&big, sizeof big, 1, 0);
        } else {
            char small = 0;
            comm.recv(&small, sizeof small, 0, 0);
        }
    }),
                 Error);
}

class CollectiveTest : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveTest, ::testing::Values(1, 2, 3, 4, 8),
                         [](const auto& pinfo) { return "ranks" + std::to_string(pinfo.param); });

TEST_P(CollectiveTest, AllreduceSum) {
    World world(GetParam());
    world.run([](Communicator& comm) {
        const double in[2] = {static_cast<double>(comm.rank() + 1), 1.0};
        double out[2] = {};
        comm.allreduce(in, out, 2, Op::Sum);
        const int n = comm.size();
        EXPECT_DOUBLE_EQ(out[0], n * (n + 1) / 2.0);
        EXPECT_DOUBLE_EQ(out[1], static_cast<double>(n));
    });
}

TEST_P(CollectiveTest, AllreduceMaxMin) {
    World world(GetParam());
    world.run([](Communicator& comm) {
        const std::int64_t v = comm.rank();
        std::int64_t mx = 0, mn = 0;
        comm.allreduce(&v, &mx, 1, Op::Max);
        comm.allreduce(&v, &mn, 1, Op::Min);
        EXPECT_EQ(mx, comm.size() - 1);
        EXPECT_EQ(mn, 0);
    });
}

TEST_P(CollectiveTest, Bcast) {
    World world(GetParam());
    world.run([](Communicator& comm) {
        const int root = comm.size() - 1;
        int payload[3] = {0, 0, 0};
        if (comm.rank() == root) {
            payload[0] = 11;
            payload[1] = 22;
            payload[2] = 33;
        }
        comm.bcast(payload, sizeof payload, root);
        EXPECT_EQ(payload[0], 11);
        EXPECT_EQ(payload[2], 33);
    });
}

TEST_P(CollectiveTest, Allgather) {
    World world(GetParam());
    world.run([](Communicator& comm) {
        const int mine = comm.rank() * 7;
        std::vector<int> all(static_cast<std::size_t>(comm.size()), -1);
        comm.allgather(&mine, sizeof mine, all.data());
        for (int r = 0; r < comm.size(); ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 7);
    });
}

TEST_P(CollectiveTest, Alltoall) {
    World world(GetParam());
    world.run([](Communicator& comm) {
        const int n = comm.size();
        std::vector<int> in(static_cast<std::size_t>(n)), out(static_cast<std::size_t>(n), -1);
        for (int r = 0; r < n; ++r) in[static_cast<std::size_t>(r)] = comm.rank() * 100 + r;
        comm.alltoall(in.data(), sizeof(int), out.data());
        for (int r = 0; r < n; ++r) EXPECT_EQ(out[static_cast<std::size_t>(r)], r * 100 + comm.rank());
    });
}

TEST_P(CollectiveTest, ReduceToRoot) {
    World world(GetParam());
    world.run([](Communicator& comm) {
        const double v = 1.5;
        double out = -1;
        comm.reduce(&v, &out, 1, Op::Sum, 0);
        if (comm.rank() == 0) { EXPECT_DOUBLE_EQ(out, 1.5 * comm.size()); }
    });
}

TEST_P(CollectiveTest, BarrierSeparatesPhases) {
    World world(GetParam());
    std::atomic<int> before{0};
    world.run([&](Communicator& comm) {
        ++before;
        comm.barrier();
        EXPECT_EQ(before.load(), comm.size());
        comm.barrier();
    });
}

TEST(MpiSimThreaded, ConcurrentSendsFromManyThreadsPerRank) {
    // MPI_THREAD_MULTIPLE-style usage: several threads of a rank post
    // operations concurrently (this is what TAMPI communication tasks do).
    World world(2);
    constexpr int kThreads = 4;
    constexpr int kMsgs = 50;
    world.run([](Communicator& comm) {
        if (comm.rank() == 0) {
            std::vector<std::thread> senders;
            for (int t = 0; t < kThreads; ++t) {
                senders.emplace_back([&comm, t] {
                    for (int i = 0; i < kMsgs; ++i) {
                        const int v = t * kMsgs + i;
                        comm.send(&v, sizeof v, 1, t);  // tag = thread id
                    }
                });
            }
            for (auto& s : senders) s.join();
        } else {
            std::vector<std::thread> receivers;
            for (int t = 0; t < kThreads; ++t) {
                receivers.emplace_back([&comm, t] {
                    for (int i = 0; i < kMsgs; ++i) {
                        int v = -1;
                        comm.recv(&v, sizeof v, 0, t);
                        EXPECT_EQ(v, t * kMsgs + i);  // per-tag order preserved
                    }
                });
            }
            for (auto& r : receivers) r.join();
        }
    });
    EXPECT_EQ(world.messages_delivered(), kThreads * kMsgs);
}

TEST(MpiSim, RankFailurePropagatesWithoutHanging) {
    World world(2);
    EXPECT_THROW(world.run([](Communicator& comm) {
        if (comm.rank() == 0) throw Error("rank 0 died");
        int v;
        comm.recv(&v, sizeof v, 0, 0);  // would hang forever without abort
    }),
                 Error);
}

TEST(MpiSim, ZeroByteMessages) {
    World world(2);
    world.run([](Communicator& comm) {
        if (comm.rank() == 0) {
            comm.send(nullptr, 0, 1, 4);
        } else {
            Status st;
            comm.recv(nullptr, 0, 0, 4, &st);
            EXPECT_EQ(st.bytes, 0u);
        }
    });
}

// ----- zero-copy send/receive (TxBuffer / RxView) ---------------------------

std::vector<std::byte> tx_pattern(std::size_t n) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>((i * 13 + 5) & 0xff);
    return v;
}

TEST(TxView, MakeTxBufferPayloadIsAlignedForDoubles) {
    const TxBuffer tx = make_tx_buffer(96);
    ASSERT_EQ(tx.payload.size(), 96u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(tx.payload.data()) % alignof(double), 0u);
    // The payload lives inside the frame storage, right after the header.
    EXPECT_GE(tx.storage->size(), tx.payload.size());
}

TEST(TxView, TxToPostedViewDeliversInPlace) {
    World world(2);
    world.run([](Communicator& comm) {
        const auto bytes = tx_pattern(256);
        if (comm.rank() == 1) {
            RxView view;
            Request req = comm.irecv_view(&view, 1024, 0, 6);
            comm.send(nullptr, 0, 0, 7);  // recv is posted: go
            Status st;
            req.wait(&st);
            EXPECT_EQ(st.source, 0);
            EXPECT_EQ(st.tag, 6);
            ASSERT_EQ(view.payload.size(), 256u);
            EXPECT_TRUE(std::equal(view.payload.begin(), view.payload.end(), bytes.begin()));
            // The view aliases the delivered frame, not a user buffer.
            ASSERT_NE(view.storage, nullptr);
        } else {
            comm.recv(nullptr, 0, 1, 7);
            TxBuffer tx = make_tx_buffer(256);
            std::copy(bytes.begin(), bytes.end(), tx.payload.begin());
            comm.isend_tx(tx, 1, 6).wait();
        }
    });
    // In-process the plain path does exactly one memcpy (sender buffer into
    // the posted receive buffer at match time); handing the frame over
    // elides it. The tiny tag-7 go-message is plain send/recv: no elision.
    EXPECT_EQ(world.net_counters().copies_elided, 1u);
}

TEST(TxView, TxToUnexpectedViewDelivers) {
    World world(2);
    world.run([](Communicator& comm) {
        const auto bytes = tx_pattern(64);
        if (comm.rank() == 0) {
            TxBuffer tx = make_tx_buffer(64);
            std::copy(bytes.begin(), bytes.end(), tx.payload.begin());
            comm.isend_tx(tx, 1, 9).wait();
        }
        comm.barrier();  // the message is parked unexpected before the view posts
        if (comm.rank() == 1) {
            RxView view;
            Status st;
            comm.irecv_view(&view, 64, 0, 9).wait(&st);
            EXPECT_EQ(st.bytes, 64u);
            EXPECT_TRUE(std::equal(view.payload.begin(), view.payload.end(), bytes.begin()));
        }
    });
}

TEST(TxView, PlainSendIntoViewRecv) {
    World world(2);
    world.run([](Communicator& comm) {
        const auto bytes = tx_pattern(128);
        if (comm.rank() == 0) {
            comm.send(bytes.data(), bytes.size(), 1, 2);
        } else {
            RxView view;
            comm.irecv_view(&view, 128, 0, 2).wait();
            EXPECT_TRUE(std::equal(view.payload.begin(), view.payload.end(), bytes.begin()));
        }
    });
}

TEST(TxView, TxIntoPlainRecv) {
    World world(2);
    world.run([](Communicator& comm) {
        const auto bytes = tx_pattern(80);
        if (comm.rank() == 0) {
            TxBuffer tx = make_tx_buffer(80);
            std::copy(bytes.begin(), bytes.end(), tx.payload.begin());
            comm.isend_tx(tx, 1, 3).wait();
        } else {
            std::vector<std::byte> buf(80);
            Status st;
            comm.recv(buf.data(), buf.size(), 0, 3, &st);
            EXPECT_EQ(st.bytes, 80u);
            EXPECT_EQ(buf, bytes);
        }
    });
}

TEST(TxView, ViewTruncationThrows) {
    World world(2);
    world.run([](Communicator& comm) {
        if (comm.rank() == 0) {
            TxBuffer tx = make_tx_buffer(512);
            comm.isend_tx(tx, 1, 8).wait();
        }
        comm.barrier();
        if (comm.rank() == 1) {
            RxView view;
            EXPECT_THROW(comm.irecv_view(&view, 16, 0, 8).wait(), Error);
        }
    });
}

}  // namespace
}  // namespace dfamr::mpi
