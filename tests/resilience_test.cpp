// Resilience layer tests: deterministic fault injection, hardened
// communication (retry + timeout), and checkpoint/restart.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>

#include "core/variants.hpp"
#include "mpisim/mpi.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/fault_plan.hpp"
#include "resilience/hardened_comm.hpp"

namespace dfamr {
namespace {

using amr::Config;
using amr::ObjectSpec;
using amr::ObjectType;
using amr::Variant;
using core::RunResult;
using core::run_variant;
using resilience::CommTimeout;
using resilience::FaultConfig;
using resilience::FaultEvent;
using resilience::FaultPlan;
using resilience::RetryPolicy;

Config tiny_config() {
    Config cfg;
    cfg.npx = 2;
    cfg.npy = 1;
    cfg.npz = 1;
    cfg.init_x = cfg.init_y = cfg.init_z = 1;
    cfg.nx = cfg.ny = cfg.nz = 4;
    cfg.num_vars = 4;
    cfg.num_tsteps = 2;
    cfg.stages_per_ts = 4;
    cfg.checksum_freq = 2;
    cfg.num_refine = 2;
    cfg.refine_freq = 1;
    cfg.workers = 2;

    ObjectSpec sphere;
    sphere.type = ObjectType::SpheroidSurface;
    sphere.center = {0.1, 0.1, 0.1};
    sphere.size = {0.25, 0.25, 0.25};
    sphere.move = {0.15, 0.1, 0.05};
    sphere.bounce = true;
    cfg.objects.push_back(sphere);
    return cfg;
}

/// Chaos knobs used throughout: delays reorder aggressively, drops force
/// retries, and one rank is periodically slow.
FaultConfig chaos_config(std::uint64_t seed = 7) {
    FaultConfig fc;
    fc.seed = seed;
    fc.drop_prob = 0.05;
    fc.max_extra_drops = 1;
    fc.delay_prob = 0.3;
    fc.max_delay_ns = 100'000;
    fc.stall_rank = 1;
    fc.stall_every = 64;
    fc.stall_ns = 200'000;
    return fc;
}

void expect_checksums_identical(const RunResult& a, const RunResult& b) {
    ASSERT_EQ(a.checksums.size(), b.checksums.size());
    for (std::size_t i = 0; i < a.checksums.size(); ++i) {
        EXPECT_EQ(a.checksums[i], b.checksums[i]) << "checksum stage " << i;
    }
}

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

// ---------------------------------------------------------------------------
// FaultPlan determinism
// ---------------------------------------------------------------------------

TEST(FaultPlan, SameSeedSameDecisions) {
    // Replay the same (src, dst, tag) call sequence through two plans built
    // from the same config: the event logs must be identical.
    const FaultConfig fc = chaos_config(123);
    FaultPlan a(fc), b(fc);
    for (int i = 0; i < 500; ++i) {
        const int src = i % 3, dst = (i + 1) % 3, tag = i % 5;
        a.on_send(src, dst, tag);
        b.on_send(src, dst, tag);
    }
    EXPECT_GT(a.drops(), 0u);
    EXPECT_GT(a.delays(), 0u);
    EXPECT_EQ(a.events(), b.events());
}

TEST(FaultPlan, PerStreamDecisionsIndependentOfInterleaving) {
    // The per-stream decision subsequence must not depend on how calls from
    // different streams interleave (rank threads race in real runs).
    const FaultConfig fc = chaos_config(99);
    FaultPlan interleaved(fc), sequential(fc);
    for (int i = 0; i < 200; ++i) {
        interleaved.on_send(0, 1, 3);
        interleaved.on_send(1, 0, 4);
    }
    for (int i = 0; i < 200; ++i) sequential.on_send(1, 0, 4);
    for (int i = 0; i < 200; ++i) sequential.on_send(0, 1, 3);
    EXPECT_EQ(interleaved.stream_events(0, 1, 3), sequential.stream_events(0, 1, 3));
    EXPECT_EQ(interleaved.stream_events(1, 0, 4), sequential.stream_events(1, 0, 4));
}

TEST(FaultPlan, DifferentSeedsDiffer) {
    FaultPlan a(chaos_config(1)), b(chaos_config(2));
    for (int i = 0; i < 300; ++i) {
        a.on_send(0, 1, 0);
        b.on_send(0, 1, 0);
    }
    EXPECT_NE(a.events(), b.events());
}

TEST(FaultPlan, ConsecutiveDropsAreBounded) {
    FaultConfig fc;
    fc.seed = 5;
    fc.drop_prob = 0.5;
    fc.max_extra_drops = 2;
    FaultPlan plan(fc);
    for (int i = 0; i < 2000; ++i) plan.on_send(0, 1, 0);
    int consecutive = 0;
    for (const FaultEvent& e : plan.stream_events(0, 1, 0)) {
        consecutive = e.dropped ? consecutive + 1 : 0;
        // The delivery ending a burst is exempt from the drop roll, so a
        // stream never loses more than 1 + max_extra_drops sends in a row
        // and a retrying sender is guaranteed to get through.
        EXPECT_LE(consecutive, 1 + fc.max_extra_drops);
    }
    EXPECT_GT(plan.drops(), 0u);
}

// ---------------------------------------------------------------------------
// Hardened communication: retry, timeout, no deadlock
// ---------------------------------------------------------------------------

/// Drops the first `drops` sends, then delivers everything.
class DropFirstN final : public mpi::FaultInjector {
public:
    explicit DropFirstN(int drops) : remaining_(drops) {}
    mpi::FaultAction on_send(int, int, int) override {
        mpi::FaultAction act;
        if (remaining_.fetch_sub(1) > 0) act.drop = true;
        return act;
    }

private:
    std::atomic<int> remaining_;
};

/// Drops every send unconditionally (a dead link).
class DropAll final : public mpi::FaultInjector {
public:
    mpi::FaultAction on_send(int, int, int) override {
        mpi::FaultAction act;
        act.drop = true;
        return act;
    }
};

TEST(HardenedComm, TransientDropIsRetriedAndRecovered) {
    DropFirstN faults(2);
    mpi::World world(2, &faults);
    world.run([](mpi::Communicator& comm) {
        RetryPolicy policy;
        policy.backoff_ns = 1'000;  // keep the test fast
        resilience::HardenedComm hc(comm, policy);
        if (comm.rank() == 0) {
            const int value = 42;
            hc.send(&value, sizeof value, 1, 7);
        } else {
            int got = 0;
            hc.recv(&got, sizeof got, 0, 7);
            EXPECT_EQ(got, 42);
        }
    });
}

TEST(HardenedComm, PermanentSendFailureReportsCommTimeout) {
    DropAll faults;
    mpi::World world(1, &faults);
    try {
        world.run([](mpi::Communicator& comm) {
            RetryPolicy policy;
            policy.max_attempts = 3;
            policy.backoff_ns = 1'000;
            resilience::HardenedComm hc(comm, policy);
            const int value = 1;
            hc.send(&value, sizeof value, 0, 9);  // self-send, always dropped
        });
        FAIL() << "expected a CommTimeout to escape";
    } catch (const mpi::RankError& e) {
        EXPECT_EQ(e.rank(), 0);
        EXPECT_NE(std::string(e.what()).find("CommTimeout"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("tag 9"), std::string::npos);
    }
}

TEST(HardenedComm, RecvTimeoutThrowsInsteadOfDeadlocking) {
    mpi::World world(1);
    try {
        world.run([](mpi::Communicator& comm) {
            RetryPolicy policy;
            policy.timeout_ns = 20'000'000;  // 20 ms, nobody ever sends
            resilience::HardenedComm hc(comm, policy);
            int got = 0;
            hc.recv(&got, sizeof got, mpi::kAnySource, 11);
        });
        FAIL() << "expected a CommTimeout to escape";
    } catch (const mpi::RankError& e) {
        EXPECT_NE(std::string(e.what()).find("CommTimeout: recv"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("[rank 0]"), std::string::npos);
    }
}

TEST(Request, CancelAndDestructionOfUnmatchedRecvDoesNotHang) {
    mpi::World world(1);
    world.run([](mpi::Communicator& comm) {
        int buf = 0;
        mpi::Request canceled = comm.irecv(&buf, sizeof buf, mpi::kAnySource, 3);
        EXPECT_FALSE(canceled.test());
        EXPECT_TRUE(canceled.cancel());
        mpi::Status status;
        EXPECT_TRUE(canceled.test(&status));
        EXPECT_FALSE(status.ok);
        // A never-completed request simply goes out of scope here: its
        // destructor must not block the rank (satellite requirement).
        mpi::Request leaked = comm.irecv(&buf, sizeof buf, mpi::kAnySource, 4);
        (void)leaked;
    });
}

TEST(World, AttachesRankIdToEscapingExceptions) {
    mpi::World world(3);
    try {
        world.run([](mpi::Communicator& comm) {
            if (comm.rank() == 2) throw Error("boom");
        });
        FAIL() << "expected the rank error to escape";
    } catch (const mpi::RankError& e) {
        EXPECT_EQ(e.rank(), 2);
        EXPECT_NE(std::string(e.what()).find("[rank 2] boom"), std::string::npos);
    }
}

// ---------------------------------------------------------------------------
// Chaos runs: faults on, checksums identical to the fault-free run
// ---------------------------------------------------------------------------

class ChaosVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(ChaosVariants, ChecksumsMatchFaultFreeRun) {
    const Config cfg = tiny_config();
    const RunResult clean = run_variant(cfg, GetParam());

    FaultPlan plan(chaos_config());
    const RunResult chaos = run_variant(cfg, GetParam(), nullptr, &plan);

    EXPECT_TRUE(chaos.validation_ok);
    expect_checksums_identical(clean, chaos);
    EXPECT_EQ(clean.final_blocks, chaos.final_blocks);
    // The run must actually have been disturbed for this to mean anything.
    EXPECT_GT(plan.drops(), 0u) << "no transient failure was injected";
    EXPECT_GT(plan.delays(), 0u) << "no reordering delay was injected";
}

INSTANTIATE_TEST_SUITE_P(AllVariants, ChaosVariants,
                         ::testing::Values(Variant::MpiOnly, Variant::ForkJoin,
                                           Variant::TampiOss));

// ---------------------------------------------------------------------------
// Checkpoint/restart
// ---------------------------------------------------------------------------

class CheckpointVariants : public ::testing::TestWithParam<Variant> {};

TEST_P(CheckpointVariants, RestoredRunReproducesChecksumsBitForBit) {
    const std::string path =
        temp_path("dfamr_ckpt_" + std::to_string(static_cast<int>(GetParam())) + ".bin");

    // Reference: the uninterrupted two-timestep run.
    const Config cfg = tiny_config();
    const RunResult full = run_variant(cfg, GetParam());

    // "Killed after timestep 1": run only the first timestep, checkpointing.
    Config partial_cfg = cfg;
    partial_cfg.num_tsteps = 1;
    partial_cfg.checkpoint_every = 1;
    partial_cfg.checkpoint_path = path;
    const RunResult partial = run_variant(partial_cfg, GetParam());
    ASSERT_FALSE(partial.checksums.empty());

    // Restore and run the remaining timestep.
    Config restored_cfg = cfg;
    restored_cfg.restore_path = path;
    const RunResult restored = run_variant(restored_cfg, GetParam());

    EXPECT_TRUE(restored.validation_ok);
    expect_checksums_identical(full, restored);
    EXPECT_EQ(full.final_blocks, restored.final_blocks);
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllVariants, CheckpointVariants,
                         ::testing::Values(Variant::MpiOnly, Variant::ForkJoin,
                                           Variant::TampiOss));

TEST(Checkpoint, CheckpointingItselfDoesNotPerturbTheRun) {
    const Config cfg = tiny_config();
    const RunResult plain = run_variant(cfg, Variant::MpiOnly);

    const std::string path = temp_path("dfamr_ckpt_noperturb.bin");
    Config ckpt_cfg = cfg;
    ckpt_cfg.checkpoint_every = 1;
    ckpt_cfg.checkpoint_path = path;
    const RunResult with_ckpt = run_variant(ckpt_cfg, Variant::MpiOnly);

    expect_checksums_identical(plain, with_ckpt);
    std::remove(path.c_str());
}

TEST(Checkpoint, RestoreRejectsIncompatibleConfig) {
    const std::string path = temp_path("dfamr_ckpt_incompat.bin");
    Config cfg = tiny_config();
    cfg.num_tsteps = 1;
    cfg.checkpoint_every = 1;
    cfg.checkpoint_path = path;
    run_variant(cfg, Variant::MpiOnly);

    Config other = tiny_config();
    other.nx = other.ny = other.nz = 6;  // different block geometry
    other.restore_path = path;
    EXPECT_THROW(run_variant(other, Variant::MpiOnly), Error);
    std::remove(path.c_str());
}

/// Fault-free probe that just counts one rank's send attempts.
class CountSends final : public mpi::FaultInjector {
public:
    explicit CountSends(int rank) : rank_(rank) {}
    mpi::FaultAction on_send(int src, int, int) override {
        if (src == rank_) ++count_;
        return {};
    }
    std::uint64_t count() const { return count_; }

private:
    int rank_;
    std::atomic<std::uint64_t> count_{0};
};

TEST(Checkpoint, CrashedRunRestoresFromLastCheckpointBitForBit) {
    const Config cfg = tiny_config();
    const RunResult full = run_variant(cfg, Variant::MpiOnly);

    // Crash rank 1 partway through; at least the timestep-1 checkpoint must
    // have been written by then. Other ranks unblock via their comm
    // deadline or the world abort, not by hanging.
    const std::string path = temp_path("dfamr_ckpt_crash.bin");
    Config crash_cfg = cfg;
    crash_cfg.checkpoint_every = 1;
    crash_cfg.checkpoint_path = path;
    crash_cfg.comm_timeout_s = 2.0;

    // The run is deterministic, so probe rank 1's send counts: s1 covers
    // everything through the timestep-1 checkpoint (a one-timestep run),
    // s2 the whole two-timestep run. A crash strictly between the two lands
    // after the first checkpoint is durably on disk and before the run ends.
    Config probe_cfg = crash_cfg;
    probe_cfg.num_tsteps = 1;
    CountSends partial_probe(1), full_probe(1);
    run_variant(probe_cfg, Variant::MpiOnly, nullptr, &partial_probe);
    run_variant(crash_cfg, Variant::MpiOnly, nullptr, &full_probe);
    const std::uint64_t s1 = partial_probe.count();
    const std::uint64_t s2 = full_probe.count();
    ASSERT_GT(s2, s1) << "timestep 2 must add rank-1 sends; tune the test";

    FaultConfig fc;
    fc.crash_rank = 1;
    fc.crash_after_sends = static_cast<int>(s1 + std::max<std::uint64_t>(1, (s2 - s1) / 2));
    FaultPlan plan(fc);
    try {
        run_variant(crash_cfg, Variant::MpiOnly, nullptr, &plan);
        FAIL() << "expected the injected crash to escape";
    } catch (const mpi::RankError& e) {
        EXPECT_NE(std::string(e.what()).find("[rank"), std::string::npos);
    }
    bool crashed = false;
    for (const FaultEvent& e : plan.events()) crashed = crashed || e.crashed;
    ASSERT_TRUE(crashed) << "crash_after_sends never reached; tune the test";

    Config restored_cfg = cfg;
    restored_cfg.restore_path = path;
    const RunResult restored = run_variant(restored_cfg, Variant::MpiOnly);
    EXPECT_TRUE(restored.validation_ok);
    expect_checksums_identical(full, restored);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace dfamr
