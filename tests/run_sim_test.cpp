// Tests for the simulated (DES) mini-app runs: layout helpers, basic sanity
// of the per-variant DAG builders, determinism, and the qualitative
// relationships the paper's evaluation rests on.
#include <gtest/gtest.h>

#include "sim/run_sim.hpp"

namespace dfamr::sim {
namespace {

using amr::Config;
using amr::Variant;

CostModel test_costs() {
    CostModel m;  // defaults, no calibration: deterministic across machines
    return m;
}

Config small_app(int total_ranks, Vec3i block_grid) {
    Config cfg;
    cfg.nx = cfg.ny = cfg.nz = 8;
    cfg.num_vars = 8;
    cfg.num_tsteps = 2;
    cfg.stages_per_ts = 4;
    cfg.checksum_freq = 4;
    cfg.num_refine = 2;
    cfg.refine_freq = 1;
    cfg.block_change = 1;
    arrange(cfg, block_grid, total_ranks);

    amr::ObjectSpec sphere;
    sphere.type = amr::ObjectType::SpheroidSurface;
    sphere.center = {0.2, 0.2, 0.2};
    sphere.size = {0.2, 0.2, 0.2};
    sphere.move = {0.1, 0.05, 0.05};
    sphere.bounce = true;
    cfg.objects.push_back(sphere);
    return cfg;
}

TEST(Layout, Factor3Balanced) {
    EXPECT_EQ(factor3(48), (Vec3i{4, 4, 3}));
    EXPECT_EQ(factor3(64), (Vec3i{4, 4, 4}));
    EXPECT_EQ(factor3(1), (Vec3i{1, 1, 1}));
    const Vec3i f = factor3(96);
    EXPECT_EQ(f.product(), 96);
}

TEST(Layout, RankGridDividesBlocks) {
    const Vec3i blocks{8, 6, 4};
    for (int ranks : {1, 2, 4, 8, 16, 32, 64, 96, 192}) {
        const Vec3i g = rank_grid_dividing(blocks, ranks);
        EXPECT_EQ(g.product(), ranks) << ranks;
        EXPECT_EQ(blocks.x % g.x, 0);
        EXPECT_EQ(blocks.y % g.y, 0);
        EXPECT_EQ(blocks.z % g.z, 0);
    }
}

TEST(Layout, ArrangePreservesGlobalGrid) {
    Config cfg;
    arrange(cfg, {8, 6, 4}, 16);
    EXPECT_EQ(cfg.npx * cfg.init_x, 8);
    EXPECT_EQ(cfg.npy * cfg.init_y, 6);
    EXPECT_EQ(cfg.npz * cfg.init_z, 4);
    EXPECT_EQ(cfg.num_ranks(), 16);
}

class SimVariants : public ::testing::TestWithParam<Variant> {};
INSTANTIATE_TEST_SUITE_P(AllVariants, SimVariants,
                         ::testing::Values(Variant::MpiOnly, Variant::ForkJoin,
                                           Variant::TampiOss),
                         [](const auto& pinfo) {
                             switch (pinfo.param) {
                                 case Variant::MpiOnly: return std::string("MpiOnly");
                                 case Variant::ForkJoin: return std::string("ForkJoin");
                                 default: return std::string("TampiOss");
                             }
                         });

ClusterSpec cluster_for(Variant v, int nodes = 2) {
    ClusterSpec c;
    c.nodes = nodes;
    c.cores_per_node = 4;
    c.cores_per_socket = 2;
    c.ranks_per_node = v == Variant::MpiOnly ? 4 : 2;  // hybrid: 2 cores/rank
    return c;
}

TEST_P(SimVariants, RunsAndReportsSaneNumbers) {
    const Variant v = GetParam();
    const ClusterSpec cluster = cluster_for(v);
    const Config cfg = small_app(cluster.total_ranks(), {4, 2, 2});
    const SimResult r = run_simulated(cfg, v, cluster, test_costs());
    EXPECT_GT(r.total_s, 0);
    EXPECT_GT(r.refine_s, 0);
    EXPECT_LT(r.refine_s, r.total_s);
    EXPECT_GT(r.total_flops, 0);
    EXPECT_GT(r.final_blocks, 0);
    EXPECT_GT(r.stats.tasks, 0u);
    EXPECT_GT(r.stats.messages, 0u);
}

TEST_P(SimVariants, Deterministic) {
    const Variant v = GetParam();
    const ClusterSpec cluster = cluster_for(v);
    const Config cfg = small_app(cluster.total_ranks(), {4, 2, 2});
    const SimResult a = run_simulated(cfg, v, cluster, test_costs());
    const SimResult b = run_simulated(cfg, v, cluster, test_costs());
    EXPECT_EQ(a.total_s, b.total_s);
    EXPECT_EQ(a.refine_s, b.refine_s);
    EXPECT_EQ(a.stats.tasks, b.stats.tasks);
    EXPECT_EQ(a.stats.messages, b.stats.messages);
}

TEST(SimRelations, VariantsAgreeOnPhysics) {
    // Same mesh evolution -> same FLOPs and final block counts everywhere.
    const Config base = small_app(8, {4, 2, 2});
    ClusterSpec mpi = cluster_for(Variant::MpiOnly);
    ClusterSpec hyb = cluster_for(Variant::ForkJoin);
    Config hcfg = small_app(hyb.total_ranks(), {4, 2, 2});
    const SimResult a = run_simulated(base, Variant::MpiOnly, mpi, test_costs());
    const SimResult b = run_simulated(hcfg, Variant::ForkJoin, hyb, test_costs());
    const SimResult c = run_simulated(hcfg, Variant::TampiOss, hyb, test_costs());
    EXPECT_EQ(a.total_flops, b.total_flops);
    EXPECT_EQ(a.total_flops, c.total_flops);
    EXPECT_EQ(a.final_blocks, b.final_blocks);
    EXPECT_EQ(a.final_blocks, c.final_blocks);
}

TEST(SimRelations, DataFlowBeatsForkJoinOnHybridNodes) {
    // The paper's core claim: with equal resources on full-size nodes, the
    // task-based variant's non-refinement time beats fork-join's.
    ClusterSpec hyb;
    hyb.nodes = 4;
    hyb.cores_per_node = 48;
    hyb.ranks_per_node = 4;
    Config cfg;
    cfg.nx = cfg.ny = cfg.nz = 12;
    cfg.num_vars = 40;
    cfg.num_tsteps = 2;
    cfg.stages_per_ts = 4;
    cfg.checksum_freq = 4;
    cfg.num_refine = 3;
    cfg.refine_freq = 2;
    cfg.block_change = 1;
    arrange(cfg, factor3(48 * hyb.nodes), hyb.total_ranks());
    amr::ObjectSpec sphere;
    sphere.type = amr::ObjectType::SpheroidSurface;
    sphere.center = {0.2, 0.2, 0.2};
    sphere.size = {0.2, 0.2, 0.2};
    sphere.move = {0.08, 0.05, 0.05};
    sphere.bounce = true;
    cfg.objects.push_back(sphere);

    const SimResult fj = run_simulated(cfg, Variant::ForkJoin, hyb, test_costs());
    Config tcfg = cfg;
    tcfg.send_faces = true;
    tcfg.separate_buffers = true;
    tcfg.max_comm_tasks = 8;
    const SimResult df = run_simulated(tcfg, Variant::TampiOss, hyb, test_costs());
    EXPECT_LT(df.non_refine_s(), fj.non_refine_s());
}

TEST(SimRelations, MoreNodesMoreThroughput) {
    // Weak scaling: doubling nodes with double the blocks must increase
    // total FLOPS throughput for every variant.
    for (Variant v : {Variant::MpiOnly, Variant::TampiOss}) {
        ClusterSpec c2 = cluster_for(v, 2), c4 = cluster_for(v, 4);
        const Config cfg2 = small_app(c2.total_ranks(), {4, 2, 2});
        const Config cfg4 = small_app(c4.total_ranks(), {4, 4, 2});
        const SimResult r2 = run_simulated(cfg2, v, c2, test_costs());
        const SimResult r4 = run_simulated(cfg4, v, c4, test_costs());
        EXPECT_GT(r4.gflops(), r2.gflops() * 1.2) << to_string(v);
    }
}

TEST(SimRelations, SeparateBuffersHelpTaskVariant) {
    ClusterSpec hyb = cluster_for(Variant::TampiOss, 4);
    Config shared = small_app(hyb.total_ranks(), {4, 4, 2});
    shared.refine_freq = 0;  // isolate the communication effect
    Config separate = shared;
    separate.separate_buffers = true;
    const SimResult a = run_simulated(shared, Variant::TampiOss, hyb, test_costs());
    const SimResult b = run_simulated(separate, Variant::TampiOss, hyb, test_costs());
    EXPECT_LE(b.total_s, a.total_s * 1.001) << "separate buffers must not hurt";
}

TEST(SimTrace, TracerReceivesSimulatedTimeline) {
    ClusterSpec hyb = cluster_for(Variant::TampiOss, 2);
    Config cfg = small_app(hyb.total_ranks(), {4, 2, 2});
    cfg.num_tsteps = 1;
    amr::Tracer tracer;
    tracer.enable(true);
    (void)run_simulated(cfg, Variant::TampiOss, hyb, test_costs(), &tracer);
    const amr::TraceAnalysis a = tracer.analyze();
    EXPECT_GT(a.busy_ns, 0);
    EXPECT_GT(a.overlap_ns, 0) << "phases must overlap in the data-flow variant";
    EXPECT_TRUE(a.busy_ns_by_kind.count(amr::PhaseKind::Stencil));
}

}  // namespace
}  // namespace dfamr::sim
