// Tests for the per-rank Mesh (block storage + refinement data operations)
// and the CommBuffers layout (including the reference aliasing that
// motivates --separate_buffers).
#include <gtest/gtest.h>

#include "amr/mesh.hpp"
#include "common/error.hpp"

namespace dfamr::amr {
namespace {

Config mesh_config() {
    Config cfg;
    cfg.npx = 2;
    cfg.npy = cfg.npz = 1;
    cfg.init_x = cfg.init_y = cfg.init_z = 2;
    cfg.nx = cfg.ny = cfg.nz = 4;
    cfg.num_vars = 4;
    cfg.num_refine = 2;
    return cfg;
}

TEST(Mesh, InitBlocksMatchesOwnership) {
    const Config cfg = mesh_config();
    Mesh m0(cfg, 0), m1(cfg, 1);
    m0.init_blocks();
    m1.init_blocks();
    EXPECT_EQ(m0.num_owned(), 8u);
    EXPECT_EQ(m1.num_owned(), 8u);
    for (const BlockKey& key : m0.owned_keys()) {
        EXPECT_TRUE(m0.owns(key));
        EXPECT_FALSE(m1.owns(key));
        EXPECT_EQ(m0.structure().owner(key), 0);
    }
}

TEST(Mesh, InitCellsAreDeterministicAcrossRanks) {
    const Config cfg = mesh_config();
    Mesh a(cfg, 0), b(cfg, 0);
    a.init_blocks();
    b.init_blocks();
    const BlockKey key = a.owned_keys().front();
    EXPECT_EQ(a.block(key).at(0, 1, 1, 1), b.block(key).at(0, 1, 1, 1));
    EXPECT_EQ(a.block(key).checksum(0, cfg.num_vars), b.block(key).checksum(0, cfg.num_vars));
}

TEST(Mesh, SplitThenMergeRestoresChecksum) {
    const Config cfg = mesh_config();
    Mesh mesh(cfg, 0);
    mesh.init_blocks();
    const BlockKey key = mesh.owned_keys().front();
    const double before = mesh.block(key).checksum(0, cfg.num_vars);
    const std::size_t owned_before = mesh.num_owned();

    mesh.split_block(key);
    EXPECT_EQ(mesh.num_owned(), owned_before + 7);
    EXPECT_FALSE(mesh.owns(key));
    // Split conserves the checksum at 8x the cell count: each parent cell is
    // replicated into 8 children cells, so the children sum is 8x.
    double children_sum = 0;
    for (int octant = 0; octant < 8; ++octant) {
        children_sum +=
            mesh.block(key.child(octant, mesh.structure().max_level())).checksum(0, cfg.num_vars);
    }
    EXPECT_NEAR(children_sum, 8 * before, 1e-9);

    mesh.merge_children(key);
    EXPECT_EQ(mesh.num_owned(), owned_before);
    EXPECT_NEAR(mesh.block(key).checksum(0, cfg.num_vars), before, 1e-9);
}

TEST(Mesh, ReleaseAdoptMoveBlocks) {
    const Config cfg = mesh_config();
    Mesh m0(cfg, 0), m1(cfg, 1);
    m0.init_blocks();
    m1.init_blocks();
    const BlockKey key = m0.owned_keys().front();
    const double sum = m0.block(key).checksum(0, cfg.num_vars);
    auto moved = m0.release(key);
    EXPECT_FALSE(m0.owns(key));
    m1.adopt(std::move(moved));
    EXPECT_TRUE(m1.owns(key));
    EXPECT_EQ(m1.block(key).checksum(0, cfg.num_vars), sum);
    EXPECT_THROW(m1.adopt(m1.make_block(key)), dfamr::Error);
}

TEST(Mesh, LocalChecksumSumsOwnedBlocks) {
    const Config cfg = mesh_config();
    Mesh mesh(cfg, 0);
    mesh.init_blocks();
    double manual = 0;
    for (const BlockKey& key : mesh.owned_keys()) {
        manual += mesh.block(key).checksum(1, 3);
    }
    EXPECT_DOUBLE_EQ(mesh.local_checksum(1, 3), manual);
}

TEST(Mesh, FlopsPerVarSweep) {
    const Config cfg = mesh_config();
    Mesh mesh(cfg, 0);
    mesh.init_blocks();
    EXPECT_EQ(mesh.flops_per_var_sweep(), 8 * 7 * 4 * 4 * 4);
}

TEST(CommBuffersLayout, SeparateBuffersAreDisjoint) {
    const Config cfg = mesh_config();
    Mesh mesh(cfg, 0);
    mesh.init_blocks();
    CommPlan plan(mesh.structure(), mesh.shape(), 0, CommPlanOptions{});
    CommBuffers bufs(plan, cfg.num_vars, /*separate=*/true);
    // Direction 0 has a remote neighbor (rank 1); its streams must not alias
    // other directions' storage.
    auto s0 = bufs.send_stream(0, 0);
    ASSERT_GT(s0.size(), 0u);
    s0[0] = 42.0;
    for (int d = 1; d < 3; ++d) {
        const auto& dp = plan.direction(d);
        for (std::size_t ni = 0; ni < dp.neighbors.size(); ++ni) {
            auto span = bufs.send_stream(d, static_cast<int>(ni));
            if (!span.empty()) {
                EXPECT_NE(span.data(), s0.data());
            }
        }
    }
}

TEST(CommBuffersLayout, SharedBuffersAliasAcrossDirections) {
    // The reference layout: all directions share one buffer pair — writing
    // through direction 1's stream is visible through direction 0's stream
    // (this aliasing is what creates the false dependencies of §IV-A).
    Config cfg = mesh_config();
    cfg.npx = 1;
    cfg.npy = 2;  // neighbors in y too
    Mesh mesh(cfg, 0);
    mesh.init_blocks();
    CommPlan plan(mesh.structure(), mesh.shape(), 0, CommPlanOptions{});
    const bool has_y_neighbor = !plan.direction(1).neighbors.empty();
    ASSERT_TRUE(has_y_neighbor);
    CommBuffers bufs(plan, cfg.num_vars, /*separate=*/false);
    auto y_stream = bufs.recv_stream(1, 0);
    ASSERT_GT(y_stream.size(), 0u);
    // Direction 0 has no remote neighbor here (npx == 1), so compare base
    // pointers via another y-direction alias instead: the same (dir,
    // neighbor) must return the same storage each call.
    auto y_again = bufs.recv_stream(1, 0);
    EXPECT_EQ(y_stream.data(), y_again.data());
}

}  // namespace
}  // namespace dfamr::amr
