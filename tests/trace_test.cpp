// Tests for the tracer and its analysis pass (the Paraver substitute used
// by the Figure 1-3 bench).
#include <gtest/gtest.h>

#include <thread>

#include "amr/trace.hpp"

namespace dfamr::amr {
namespace {

TEST(Trace, DisabledTracerRecordsNothing) {
    Tracer t;
    t.record(0, 0, 0, 100, PhaseKind::Stencil);
    EXPECT_TRUE(t.sorted_events().empty());
    EXPECT_EQ(t.analyze().busy_ns, 0);
}

TEST(Trace, EventsSortedByStart) {
    Tracer t;
    t.enable(true);
    t.record(0, 0, 500, 600, PhaseKind::Pack);
    t.record(1, 0, 100, 400, PhaseKind::Stencil);
    const auto events = t.sorted_events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].t0_ns, 100);
    EXPECT_EQ(events[1].t0_ns, 500);
}

TEST(Trace, AnalysisBusyAndSpan) {
    Tracer t;
    t.enable(true);
    t.record(0, 0, 0, 100, PhaseKind::Stencil);
    t.record(0, 1, 50, 150, PhaseKind::Unpack);
    const TraceAnalysis a = t.analyze();
    EXPECT_EQ(a.span_ns, 150);
    EXPECT_EQ(a.busy_ns, 200);
    EXPECT_EQ(a.cores, 2);
    EXPECT_DOUBLE_EQ(a.utilization, 200.0 / 300.0);
    EXPECT_EQ(a.busy_ns_by_kind.at(PhaseKind::Stencil), 100);
}

TEST(Trace, OverlapCountsDistinctKindsOnly) {
    Tracer t;
    t.enable(true);
    // Two stencils overlapping: same kind — no "phase overlap".
    t.record(0, 0, 0, 100, PhaseKind::Stencil);
    t.record(0, 1, 0, 100, PhaseKind::Stencil);
    EXPECT_EQ(t.analyze().overlap_ns, 0);
    // Add a communication task overlapping [40, 60): 20ns of phase overlap.
    t.record(0, 2, 40, 60, PhaseKind::Unpack);
    EXPECT_EQ(t.analyze().overlap_ns, 20);
}

TEST(Trace, LargestIdleGap) {
    Tracer t;
    t.enable(true);
    t.record(0, 0, 0, 100, PhaseKind::Stencil);
    t.record(0, 0, 400, 500, PhaseKind::Stencil);
    t.record(0, 0, 550, 600, PhaseKind::Stencil);
    EXPECT_EQ(t.analyze().largest_idle_gap_ns, 300);
}

TEST(Trace, RefineSpanCoversRefineKinds) {
    Tracer t;
    t.enable(true);
    t.record(0, 0, 0, 100, PhaseKind::Stencil);
    t.record(0, 0, 200, 300, PhaseKind::RefineSplit);
    t.record(0, 0, 350, 420, PhaseKind::LoadBalance);
    EXPECT_EQ(t.analyze().refine_span_ns, 220);
}

TEST(Trace, CsvFormat) {
    Tracer t;
    t.enable(true);
    t.record(3, 1, 10, 20, PhaseKind::Send);
    const std::string csv = t.to_csv();
    EXPECT_NE(csv.find("rank,worker,start_ns,end_ns,kind"), std::string::npos);
    EXPECT_NE(csv.find("3,1,10,20,send"), std::string::npos);
}

TEST(Trace, ThreadSafeRecording) {
    Tracer t;
    t.enable(true);
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
        threads.emplace_back([&t, i] {
            for (int j = 0; j < 1000; ++j) {
                t.record(i, 0, j, j + 1, PhaseKind::Stencil);
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(t.sorted_events().size(), 4000u);
    t.clear();
    EXPECT_TRUE(t.sorted_events().empty());
}

TEST(Trace, PhaseKindNamesAreUnique) {
    std::set<std::string> names;
    for (int k = 0; k <= static_cast<int>(PhaseKind::Control); ++k) {
        names.insert(to_string(static_cast<PhaseKind>(k)));
    }
    EXPECT_EQ(names.size(), static_cast<std::size_t>(PhaseKind::Control) + 1);
}

}  // namespace
}  // namespace dfamr::amr
