// Tests for the tracer and its analysis pass (the Paraver substitute used
// by the Figure 1-3 bench).
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "amr/trace.hpp"
#include "common/json.hpp"

namespace dfamr::amr {
namespace {

TEST(Trace, DisabledTracerRecordsNothing) {
    Tracer t;
    t.record(0, 0, 0, 100, PhaseKind::Stencil);
    EXPECT_TRUE(t.sorted_events().empty());
    EXPECT_EQ(t.analyze().busy_ns, 0);
}

TEST(Trace, EventsSortedByStart) {
    Tracer t;
    t.enable(true);
    t.record(0, 0, 500, 600, PhaseKind::Pack);
    t.record(1, 0, 100, 400, PhaseKind::Stencil);
    const auto events = t.sorted_events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].t0_ns, 100);
    EXPECT_EQ(events[1].t0_ns, 500);
}

TEST(Trace, AnalysisBusyAndSpan) {
    Tracer t;
    t.enable(true);
    t.record(0, 0, 0, 100, PhaseKind::Stencil);
    t.record(0, 1, 50, 150, PhaseKind::Unpack);
    const TraceAnalysis a = t.analyze();
    EXPECT_EQ(a.span_ns, 150);
    EXPECT_EQ(a.busy_ns, 200);
    EXPECT_EQ(a.cores, 2);
    EXPECT_DOUBLE_EQ(a.utilization, 200.0 / 300.0);
    EXPECT_EQ(a.busy_ns_by_kind.at(PhaseKind::Stencil), 100);
}

TEST(Trace, OverlapCountsDistinctKindsOnly) {
    Tracer t;
    t.enable(true);
    // Two stencils overlapping: same kind — no "phase overlap".
    t.record(0, 0, 0, 100, PhaseKind::Stencil);
    t.record(0, 1, 0, 100, PhaseKind::Stencil);
    EXPECT_EQ(t.analyze().overlap_ns, 0);
    // Add a communication task overlapping [40, 60): 20ns of phase overlap.
    t.record(0, 2, 40, 60, PhaseKind::Unpack);
    EXPECT_EQ(t.analyze().overlap_ns, 20);
}

TEST(Trace, LargestIdleGap) {
    Tracer t;
    t.enable(true);
    t.record(0, 0, 0, 100, PhaseKind::Stencil);
    t.record(0, 0, 400, 500, PhaseKind::Stencil);
    t.record(0, 0, 550, 600, PhaseKind::Stencil);
    EXPECT_EQ(t.analyze().largest_idle_gap_ns, 300);
}

TEST(Trace, RefineSpanCoversRefineKinds) {
    Tracer t;
    t.enable(true);
    t.record(0, 0, 0, 100, PhaseKind::Stencil);
    t.record(0, 0, 200, 300, PhaseKind::RefineSplit);
    t.record(0, 0, 350, 420, PhaseKind::LoadBalance);
    EXPECT_EQ(t.analyze().refine_span_ns, 220);
}

TEST(Trace, CsvFormat) {
    Tracer t;
    t.enable(true);
    t.record(3, 1, 10, 20, PhaseKind::Send);
    const std::string csv = t.to_csv();
    EXPECT_NE(csv.find("rank,worker,start_ns,end_ns,kind"), std::string::npos);
    EXPECT_NE(csv.find("3,1,10,20,send"), std::string::npos);
}

TEST(Trace, ThreadSafeRecording) {
    Tracer t;
    t.enable(true);
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
        threads.emplace_back([&t, i] {
            for (int j = 0; j < 1000; ++j) {
                t.record(i, 0, j, j + 1, PhaseKind::Stencil);
            }
        });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(t.sorted_events().size(), 4000u);
    t.clear();
    EXPECT_TRUE(t.sorted_events().empty());
}

TEST(Trace, PhaseKindNamesAreUnique) {
    std::set<std::string> names;
    for (int k = 0; k <= static_cast<int>(PhaseKind::NetProgress); ++k) {
        names.insert(to_string(static_cast<PhaseKind>(k)));
    }
    EXPECT_EQ(names.size(), static_cast<std::size_t>(PhaseKind::NetProgress) + 1);
}

TEST(Trace, EmptyTraceAnalyzesToZeros) {
    Tracer t;
    t.enable(true);
    const TraceAnalysis a = t.analyze();
    EXPECT_EQ(a.span_ns, 0);
    EXPECT_EQ(a.busy_ns, 0);
    EXPECT_EQ(a.cores, 0);
    EXPECT_EQ(a.progress_lanes, 0);
    EXPECT_EQ(a.events, 0u);
    EXPECT_DOUBLE_EQ(a.utilization, 0.0);
    EXPECT_EQ(a.overlap_ns, 0);
    EXPECT_EQ(a.largest_idle_gap_ns, 0);
}

TEST(Trace, SingleEvent) {
    Tracer t;
    t.enable(true);
    t.record(0, 0, 100, 250, PhaseKind::Stencil);
    const TraceAnalysis a = t.analyze();
    EXPECT_EQ(a.span_ns, 150);
    EXPECT_EQ(a.busy_ns, 150);
    EXPECT_EQ(a.cores, 1);
    EXPECT_EQ(a.events, 1u);
    EXPECT_DOUBLE_EQ(a.utilization, 1.0);
    EXPECT_EQ(a.overlap_ns, 0);
    EXPECT_EQ(a.largest_idle_gap_ns, 0);
}

TEST(Trace, ExactlyAbuttingEventsLeaveNoGap) {
    Tracer t;
    t.enable(true);
    // [0,100) closes at the same instant [100,200) opens: the close edge
    // must not be processed before the open edge (that would fabricate a
    // zero-width idle transition), and no gap or overlap may appear.
    t.record(0, 0, 0, 100, PhaseKind::Stencil);
    t.record(0, 1, 100, 200, PhaseKind::Unpack);
    const TraceAnalysis a = t.analyze();
    EXPECT_EQ(a.largest_idle_gap_ns, 0);
    EXPECT_EQ(a.overlap_ns, 0);
    EXPECT_EQ(a.busy_ns, 200);
}

// Regression test for the sweep corruption: a zero-duration event landing
// inside an idle window used to split the largest idle gap (its open/close
// edges toggled the active count mid-gap), under-reporting the gap — here
// 6ns instead of the true 9ns. Zero-length markers must not perturb the
// sweep state at all.
TEST(Trace, ZeroDurationEventDoesNotSplitIdleGap) {
    Tracer t;
    t.enable(true);
    t.record(0, 0, 17, 20, PhaseKind::Stencil);
    t.record(0, 1, 11, 11, PhaseKind::Pack);  // instantaneous marker, idle window
    t.record(0, 2, 6, 8, PhaseKind::Pack);
    const TraceAnalysis a = t.analyze();
    EXPECT_EQ(a.largest_idle_gap_ns, 9);  // [8, 17), not split at t=11
    EXPECT_EQ(a.busy_ns, 5);              // zero-length adds no busy time
    EXPECT_EQ(a.events, 3u);              // but is still a recorded event
}

TEST(Trace, ZeroDurationEventDoesNotAffectOverlap) {
    Tracer t;
    t.enable(true);
    t.record(0, 0, 0, 100, PhaseKind::Stencil);
    // Zero-length event of a DIFFERENT kind inside the stencil interval:
    // must not contribute overlap (there is no duration to overlap).
    t.record(0, 1, 50, 50, PhaseKind::Unpack);
    EXPECT_EQ(t.analyze().overlap_ns, 0);
    // A real overlapping interval still counts.
    t.record(0, 2, 40, 60, PhaseKind::Pack);
    EXPECT_EQ(t.analyze().overlap_ns, 20);
}

TEST(Trace, ProgressLaneExcludedFromUtilization) {
    Tracer t;
    t.enable(true);
    t.record(0, 0, 0, 100, PhaseKind::Stencil);
    t.record(0, kProgressWorker, 0, 80, PhaseKind::NetProgress);
    const TraceAnalysis a = t.analyze();
    EXPECT_EQ(a.cores, 1);
    EXPECT_EQ(a.progress_lanes, 1);
    EXPECT_EQ(a.busy_ns, 100);      // compute only
    EXPECT_EQ(a.progress_ns, 80);   // tracked separately
    EXPECT_DOUBLE_EQ(a.utilization, 1.0);  // denominator excludes the lane
    // The by-kind totals still see the progress work.
    EXPECT_EQ(a.busy_ns_by_kind.at(PhaseKind::NetProgress), 80);
    // Progress activity is not compute: it neither creates overlap nor
    // closes compute-idle gaps.
    EXPECT_EQ(a.overlap_ns, 0);
}

TEST(Trace, SortedEventsDeterministicForEqualStarts) {
    // Two lanes record at identical times with different kinds: the
    // comparator must yield one total order regardless of merge order.
    std::vector<TraceEvent> first;
    for (int trial = 0; trial < 2; ++trial) {
        Tracer t;
        t.enable(true);
        if (trial == 0) {
            t.record(0, 1, 10, 20, PhaseKind::Pack);
            t.record(0, 0, 10, 20, PhaseKind::Stencil);
            t.record(0, 0, 10, 15, PhaseKind::Send);
        } else {  // same events, reversed arrival
            t.record(0, 0, 10, 15, PhaseKind::Send);
            t.record(0, 0, 10, 20, PhaseKind::Stencil);
            t.record(0, 1, 10, 20, PhaseKind::Pack);
        }
        const auto events = t.sorted_events();
        ASSERT_EQ(events.size(), 3u);
        if (trial == 0) {
            first = events;
        } else {
            for (std::size_t i = 0; i < events.size(); ++i) {
                EXPECT_EQ(events[i].worker, first[i].worker);
                EXPECT_EQ(events[i].t1_ns, first[i].t1_ns);
                EXPECT_EQ(events[i].kind, first[i].kind);
            }
        }
    }
}

TEST(Trace, CounterSamplesSortedAndExported) {
    Tracer t;
    t.enable(true);
    t.record_counter(0, 200, "steals", 4);
    t.record_counter(0, 100, "steals", 1);
    t.record_counter(0, 100, "parks", 2);
    const auto counters = t.sorted_counters();
    ASSERT_EQ(counters.size(), 3u);
    EXPECT_EQ(counters[0].t_ns, 100);
    EXPECT_STREQ(counters[0].name, "parks");  // (t, rank, name) order
    EXPECT_EQ(counters[2].value, 4.0);
    t.clear();
    EXPECT_TRUE(t.sorted_counters().empty());
}

TEST(Trace, ChromeJsonSchemaGolden) {
    Tracer t;
    t.enable(true);
    t.record(0, 0, 1000, 2000, PhaseKind::Stencil);
    t.record(0, 1, 1500, 2500, PhaseKind::Pack);
    t.record(1, kProgressWorker, 1200, 1300, PhaseKind::NetProgress);
    t.record_counter(0, 2000, "steals", 3);

    const json::Value doc = json::parse(t.to_chrome_json());
    EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ns");
    const auto& events = doc.at("traceEvents").items();

    int meta = 0, complete = 0, counter = 0;
    std::set<std::string> thread_names;
    for (const json::Value& e : events) {
        const std::string ph = e.at("ph").as_string();
        if (ph == "M") {
            ++meta;
            if (e.at("name").as_string() == "thread_name") {
                thread_names.insert(e.at("args").at("name").as_string());
            }
        } else if (ph == "X") {
            ++complete;
            // Complete events carry ts + dur and name == category == kind.
            EXPECT_TRUE(e.contains("ts"));
            EXPECT_TRUE(e.contains("dur"));
            EXPECT_EQ(e.at("name").as_string(), e.at("cat").as_string());
        } else if (ph == "C") {
            ++counter;
            EXPECT_EQ(e.at("name").as_string(), "steals");
            EXPECT_DOUBLE_EQ(e.at("args").at("value").as_double(), 3.0);
        } else {
            ADD_FAILURE() << "unexpected ph " << ph;
        }
    }
    EXPECT_EQ(complete, 3);
    EXPECT_EQ(counter, 1);
    EXPECT_GE(meta, 6);  // process + thread metadata for 2 pids, 3 lanes
    EXPECT_TRUE(thread_names.count("main") == 1);
    EXPECT_TRUE(thread_names.count("net progress") == 1);
}

TEST(Trace, RecordAcrossClearEpochs) {
    // clear() must invalidate the thread-local fast-path cache: events
    // recorded after a clear land in the fresh log, not a stale chunk.
    Tracer t;
    t.enable(true);
    t.record(0, 0, 0, 10, PhaseKind::Stencil);
    t.clear();
    t.record(0, 0, 20, 30, PhaseKind::Pack);
    const auto events = t.sorted_events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, PhaseKind::Pack);
}

TEST(Trace, ManyEventsCrossChunkBoundaries) {
    // More events than one 4096-entry chunk holds, from several threads:
    // chunk growth must lose nothing and totals must be exact.
    Tracer t;
    t.enable(true);
    constexpr int kThreads = 3;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&t, i] {
            for (int j = 0; j < kPerThread; ++j) {
                t.record(0, i, 2 * j, 2 * j + 1, PhaseKind::Stencil);
            }
        });
    }
    for (auto& th : threads) th.join();
    const TraceAnalysis a = t.analyze();
    EXPECT_EQ(a.events, static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(a.busy_ns, static_cast<std::int64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace dfamr::amr
