// Tests for the lock-order analyzer (common/lockdep.hpp). Every test that
// provokes a witness on purpose calls lockdep::reset() before returning so
// the atexit gate (active in DFAMR_VERIFY builds / under DFAMR_LOCKDEP=1)
// sees a clean graph — these witnesses are the test passing, not a bug.
#include "common/lockdep.hpp"

#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#if defined(__SANITIZE_THREAD__)
#define DFAMR_LOCKDEP_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DFAMR_LOCKDEP_TEST_TSAN 1
#endif
#endif
#ifdef DFAMR_LOCKDEP_TEST_TSAN
// These tests construct real lock-order inversions on purpose — that is
// what lockdep exists to catch — so TSan's own potential-deadlock detector
// would flag every one of them. Keep it out of the way in this binary only;
// the data-race detector stays fully on.
extern "C" const char* __tsan_default_options() { return "detect_deadlocks=0"; }
#endif

namespace dfamr::lockdep {
namespace {

/// Enables lockdep for the test body, then resets and restores.
class ScopedLockdep {
public:
    ScopedLockdep() : was_enabled_(enabled()) {
        reset();
        enable();
    }
    ~ScopedLockdep() {
        reset();
        if (!was_enabled_) disable();
    }

private:
    bool was_enabled_;
};

bool has_witness_mentioning(const Report& r, const std::string& needle) {
    for (const Witness& w : r.witnesses) {
        if (w.message.find(needle) != std::string::npos) return true;
    }
    return false;
}

TEST(Lockdep, ConsistentOrderIsClean) {
    ScopedLockdep guard;
    Mutex a("test.a"), b("test.b");
    for (int i = 0; i < 3; ++i) {
        std::lock_guard la(a);
        std::lock_guard lb(b);
    }
    const Report r = report();
    EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(Lockdep, InvertedOrderIsReportedWithoutADeadlock) {
    ScopedLockdep guard;
    Mutex a("test.inv_a"), b("test.inv_b");
    {
        std::lock_guard la(a);
        std::lock_guard lb(b);  // records a -> b
    }
    {
        std::lock_guard lb(b);
        std::lock_guard la(a);  // inversion: b -> a closes the cycle
    }
    const Report r = report();
    ASSERT_FALSE(r.clean());
    EXPECT_TRUE(has_witness_mentioning(r, "test.inv_a")) << r.to_string();
    EXPECT_TRUE(has_witness_mentioning(r, "test.inv_b")) << r.to_string();
}

TEST(Lockdep, ThreeLockCycleIsReported) {
    ScopedLockdep guard;
    Mutex a("test.tri_a"), b("test.tri_b"), c("test.tri_c");
    {
        std::lock_guard la(a);
        std::lock_guard lb(b);  // a -> b
    }
    {
        std::lock_guard lb(b);
        std::lock_guard lc(c);  // b -> c
    }
    EXPECT_TRUE(report().clean());  // no cycle yet
    {
        std::lock_guard lc(c);
        std::lock_guard la(a);  // c -> a completes a->b->c->a
    }
    const Report r = report();
    ASSERT_FALSE(r.clean());
    EXPECT_TRUE(has_witness_mentioning(r, "test.tri_a")) << r.to_string();
}

TEST(Lockdep, CycleAcrossThreadsNeedsNoActualDeadlock) {
    // The classic AB/BA bug, but fully serialized: thread 1 finishes before
    // thread 2 starts, so the program cannot deadlock — lockdep still
    // reports the potential, which is the whole point.
    ScopedLockdep guard;
    Mutex a("test.thr_a"), b("test.thr_b");
    std::thread t1([&] {
        std::lock_guard la(a);
        std::lock_guard lb(b);
    });
    t1.join();
    std::thread t2([&] {
        std::lock_guard lb(b);
        std::lock_guard la(a);
    });
    t2.join();
    EXPECT_FALSE(report().clean());
}

TEST(Lockdep, NeverNestingFlagsSameClassPair) {
    ScopedLockdep guard;
    Mutex m1("test.never"), m2("test.never");  // same class, two instances
    {
        std::lock_guard l1(m1);
        std::lock_guard l2(m2);
    }
    const Report r = report();
    ASSERT_FALSE(r.clean());
    EXPECT_TRUE(has_witness_mentioning(r, "test.never")) << r.to_string();
}

TEST(Lockdep, OrderedNestingAcceptsAscendingSubranks) {
    ScopedLockdep guard;
    Mutex s0("test.shard", Nesting::Ordered, 0);
    Mutex s1("test.shard", Nesting::Ordered, 1);
    Mutex s2("test.shard", Nesting::Ordered, 2);
    {
        std::lock_guard l0(s0);
        std::lock_guard l1(s1);
        std::lock_guard l2(s2);
    }
    EXPECT_TRUE(report().clean()) << report().to_string();
}

TEST(Lockdep, OrderedNestingRejectsDescendingSubranks) {
    ScopedLockdep guard;
    Mutex s0("test.shard_d", Nesting::Ordered, 0);
    Mutex s5("test.shard_d", Nesting::Ordered, 5);
    {
        std::lock_guard l5(s5);
        std::lock_guard l0(s0);  // descending: the registry's deadlock recipe
    }
    const Report r = report();
    ASSERT_FALSE(r.clean());
    EXPECT_TRUE(has_witness_mentioning(r, "test.shard_d")) << r.to_string();
}

TEST(Lockdep, SpinLockParticipatesInTheSameGraph) {
    ScopedLockdep guard;
    Mutex m("test.mix_m");
    SpinLock s("test.mix_s");
    {
        std::lock_guard lm(m);
        std::lock_guard ls(s);  // m -> s
    }
    {
        std::lock_guard ls(s);
        std::lock_guard lm(m);  // s -> m: cross-type inversion
    }
    EXPECT_FALSE(report().clean());
}

TEST(Lockdep, DuplicateWitnessesAreDeduplicated) {
    ScopedLockdep guard;
    Mutex a("test.dup_a"), b("test.dup_b");
    for (int i = 0; i < 5; ++i) {
        std::lock_guard la(a);
        std::lock_guard lb(b);
    }
    for (int i = 0; i < 5; ++i) {
        std::lock_guard lb(b);
        std::lock_guard la(a);
    }
    EXPECT_EQ(report().witnesses.size(), 1u) << report().to_string();
}

TEST(Lockdep, DisabledRecordingCostsNothingAndSeesNothing) {
    // Explicitly off: inversions pass unrecorded (the zero-cost default).
    reset();
    const bool was = enabled();
    disable();
    Mutex a("test.off_a"), b("test.off_b");
    {
        std::lock_guard la(a);
        std::lock_guard lb(b);
    }
    {
        std::lock_guard lb(b);
        std::lock_guard la(a);
    }
    EXPECT_TRUE(report().clean());
    if (was) enable();
}

TEST(Lockdep, WorksWithConditionVariableAny) {
    ScopedLockdep guard;
    Mutex m("test.cv_m");
    std::condition_variable_any cv;
    bool ready = false;
    std::thread t([&] {
        std::unique_lock lk(m);
        ready = true;
        cv.notify_one();
    });
    {
        std::unique_lock lk(m);
        cv.wait(lk, [&] { return ready; });
    }
    t.join();
    EXPECT_TRUE(report().clean()) << report().to_string();
}

TEST(Lockdep, ResetClearsWitnessesButKeepsClasses) {
    ScopedLockdep guard;
    Mutex a("test.rst_a"), b("test.rst_b");
    {
        std::lock_guard la(a);
        std::lock_guard lb(b);
    }
    {
        std::lock_guard lb(b);
        std::lock_guard la(a);
    }
    ASSERT_FALSE(report().clean());
    reset();
    EXPECT_TRUE(report().clean());
    // The clean order re-recorded after reset stays clean.
    {
        std::lock_guard la(a);
        std::lock_guard lb(b);
    }
    EXPECT_TRUE(report().clean());
}

}  // namespace
}  // namespace dfamr::lockdep
