# Empty compiler generated dependencies file for table1_ranks_per_node.
# This may be replaced when dependencies are built.
