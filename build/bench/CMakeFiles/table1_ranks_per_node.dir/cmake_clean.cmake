file(REMOVE_RECURSE
  "CMakeFiles/table1_ranks_per_node.dir/table1_ranks_per_node.cpp.o"
  "CMakeFiles/table1_ranks_per_node.dir/table1_ranks_per_node.cpp.o.d"
  "table1_ranks_per_node"
  "table1_ranks_per_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ranks_per_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
