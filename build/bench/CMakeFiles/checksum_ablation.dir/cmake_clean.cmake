file(REMOVE_RECURSE
  "CMakeFiles/checksum_ablation.dir/checksum_ablation.cpp.o"
  "CMakeFiles/checksum_ablation.dir/checksum_ablation.cpp.o.d"
  "checksum_ablation"
  "checksum_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checksum_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
