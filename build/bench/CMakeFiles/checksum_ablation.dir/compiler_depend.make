# Empty compiler generated dependencies file for checksum_ablation.
# This may be replaced when dependencies are built.
