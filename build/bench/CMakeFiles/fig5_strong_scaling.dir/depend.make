# Empty dependencies file for fig5_strong_scaling.
# This may be replaced when dependencies are built.
