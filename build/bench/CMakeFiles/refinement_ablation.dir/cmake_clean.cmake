file(REMOVE_RECURSE
  "CMakeFiles/refinement_ablation.dir/refinement_ablation.cpp.o"
  "CMakeFiles/refinement_ablation.dir/refinement_ablation.cpp.o.d"
  "refinement_ablation"
  "refinement_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refinement_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
