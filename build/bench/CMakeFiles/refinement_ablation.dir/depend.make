# Empty dependencies file for refinement_ablation.
# This may be replaced when dependencies are built.
