file(REMOVE_RECURSE
  "CMakeFiles/fig123_traces.dir/fig123_traces.cpp.o"
  "CMakeFiles/fig123_traces.dir/fig123_traces.cpp.o.d"
  "fig123_traces"
  "fig123_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig123_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
