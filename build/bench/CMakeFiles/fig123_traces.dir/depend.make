# Empty dependencies file for fig123_traces.
# This may be replaced when dependencies are built.
