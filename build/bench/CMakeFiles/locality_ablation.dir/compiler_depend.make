# Empty compiler generated dependencies file for locality_ablation.
# This may be replaced when dependencies are built.
