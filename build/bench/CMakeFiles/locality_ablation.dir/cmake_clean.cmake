file(REMOVE_RECURSE
  "CMakeFiles/locality_ablation.dir/locality_ablation.cpp.o"
  "CMakeFiles/locality_ablation.dir/locality_ablation.cpp.o.d"
  "locality_ablation"
  "locality_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
