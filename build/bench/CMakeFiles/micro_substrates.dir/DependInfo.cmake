
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_substrates.cpp" "bench/CMakeFiles/micro_substrates.dir/micro_substrates.cpp.o" "gcc" "bench/CMakeFiles/micro_substrates.dir/micro_substrates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dfamr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dfamr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/amr/CMakeFiles/dfamr_amr.dir/DependInfo.cmake"
  "/root/repo/build/src/tampi/CMakeFiles/dfamr_tampi.dir/DependInfo.cmake"
  "/root/repo/build/src/tasking/CMakeFiles/dfamr_tasking.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/dfamr_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dfamr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
