file(REMOVE_RECURSE
  "CMakeFiles/table2_comm_tasks.dir/table2_comm_tasks.cpp.o"
  "CMakeFiles/table2_comm_tasks.dir/table2_comm_tasks.cpp.o.d"
  "table2_comm_tasks"
  "table2_comm_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_comm_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
