# Empty compiler generated dependencies file for table2_comm_tasks.
# This may be replaced when dependencies are built.
