file(REMOVE_RECURSE
  "CMakeFiles/virtual_cluster.dir/virtual_cluster.cpp.o"
  "CMakeFiles/virtual_cluster.dir/virtual_cluster.cpp.o.d"
  "virtual_cluster"
  "virtual_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtual_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
