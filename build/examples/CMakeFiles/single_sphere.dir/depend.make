# Empty dependencies file for single_sphere.
# This may be replaced when dependencies are built.
