file(REMOVE_RECURSE
  "CMakeFiles/single_sphere.dir/single_sphere.cpp.o"
  "CMakeFiles/single_sphere.dir/single_sphere.cpp.o.d"
  "single_sphere"
  "single_sphere.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_sphere.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
