file(REMOVE_RECURSE
  "CMakeFiles/four_spheres.dir/four_spheres.cpp.o"
  "CMakeFiles/four_spheres.dir/four_spheres.cpp.o.d"
  "four_spheres"
  "four_spheres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/four_spheres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
