# Empty compiler generated dependencies file for four_spheres.
# This may be replaced when dependencies are built.
