# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/dependency_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/mpisim_test[1]_include.cmake")
include("/root/repo/build/tests/tampi_test[1]_include.cmake")
include("/root/repo/build/tests/object_test[1]_include.cmake")
include("/root/repo/build/tests/block_test[1]_include.cmake")
include("/root/repo/build/tests/structure_test[1]_include.cmake")
include("/root/repo/build/tests/variants_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/run_sim_test[1]_include.cmake")
include("/root/repo/build/tests/mesh_test[1]_include.cmake")
include("/root/repo/build/tests/comm_plan_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/ghost_test[1]_include.cmake")
