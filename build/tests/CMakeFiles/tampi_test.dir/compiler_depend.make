# Empty compiler generated dependencies file for tampi_test.
# This may be replaced when dependencies are built.
