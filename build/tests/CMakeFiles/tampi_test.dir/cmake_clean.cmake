file(REMOVE_RECURSE
  "CMakeFiles/tampi_test.dir/tampi_test.cpp.o"
  "CMakeFiles/tampi_test.dir/tampi_test.cpp.o.d"
  "tampi_test"
  "tampi_test.pdb"
  "tampi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tampi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
