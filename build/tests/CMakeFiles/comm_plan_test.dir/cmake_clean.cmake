file(REMOVE_RECURSE
  "CMakeFiles/comm_plan_test.dir/comm_plan_test.cpp.o"
  "CMakeFiles/comm_plan_test.dir/comm_plan_test.cpp.o.d"
  "comm_plan_test"
  "comm_plan_test.pdb"
  "comm_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
