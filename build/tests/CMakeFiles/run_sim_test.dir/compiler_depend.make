# Empty compiler generated dependencies file for run_sim_test.
# This may be replaced when dependencies are built.
