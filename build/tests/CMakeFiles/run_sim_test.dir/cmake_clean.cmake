file(REMOVE_RECURSE
  "CMakeFiles/run_sim_test.dir/run_sim_test.cpp.o"
  "CMakeFiles/run_sim_test.dir/run_sim_test.cpp.o.d"
  "run_sim_test"
  "run_sim_test.pdb"
  "run_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
