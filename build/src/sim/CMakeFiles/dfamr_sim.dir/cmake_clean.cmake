file(REMOVE_RECURSE
  "CMakeFiles/dfamr_sim.dir/cost_model.cpp.o"
  "CMakeFiles/dfamr_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/dfamr_sim.dir/run_sim.cpp.o"
  "CMakeFiles/dfamr_sim.dir/run_sim.cpp.o.d"
  "CMakeFiles/dfamr_sim.dir/simulator.cpp.o"
  "CMakeFiles/dfamr_sim.dir/simulator.cpp.o.d"
  "libdfamr_sim.a"
  "libdfamr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfamr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
