# Empty dependencies file for dfamr_sim.
# This may be replaced when dependencies are built.
