file(REMOVE_RECURSE
  "libdfamr_sim.a"
)
