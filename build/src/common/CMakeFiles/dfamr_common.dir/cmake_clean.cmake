file(REMOVE_RECURSE
  "CMakeFiles/dfamr_common.dir/cli.cpp.o"
  "CMakeFiles/dfamr_common.dir/cli.cpp.o.d"
  "CMakeFiles/dfamr_common.dir/table.cpp.o"
  "CMakeFiles/dfamr_common.dir/table.cpp.o.d"
  "libdfamr_common.a"
  "libdfamr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfamr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
