# Empty dependencies file for dfamr_common.
# This may be replaced when dependencies are built.
