file(REMOVE_RECURSE
  "libdfamr_common.a"
)
