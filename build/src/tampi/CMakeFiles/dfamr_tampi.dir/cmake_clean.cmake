file(REMOVE_RECURSE
  "CMakeFiles/dfamr_tampi.dir/tampi.cpp.o"
  "CMakeFiles/dfamr_tampi.dir/tampi.cpp.o.d"
  "libdfamr_tampi.a"
  "libdfamr_tampi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfamr_tampi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
