file(REMOVE_RECURSE
  "libdfamr_tampi.a"
)
