# Empty dependencies file for dfamr_tampi.
# This may be replaced when dependencies are built.
