
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tampi/tampi.cpp" "src/tampi/CMakeFiles/dfamr_tampi.dir/tampi.cpp.o" "gcc" "src/tampi/CMakeFiles/dfamr_tampi.dir/tampi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tasking/CMakeFiles/dfamr_tasking.dir/DependInfo.cmake"
  "/root/repo/build/src/mpisim/CMakeFiles/dfamr_mpisim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dfamr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
