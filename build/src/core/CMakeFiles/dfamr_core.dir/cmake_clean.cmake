file(REMOVE_RECURSE
  "CMakeFiles/dfamr_core.dir/driver_base.cpp.o"
  "CMakeFiles/dfamr_core.dir/driver_base.cpp.o.d"
  "CMakeFiles/dfamr_core.dir/fork_join.cpp.o"
  "CMakeFiles/dfamr_core.dir/fork_join.cpp.o.d"
  "CMakeFiles/dfamr_core.dir/mpi_only.cpp.o"
  "CMakeFiles/dfamr_core.dir/mpi_only.cpp.o.d"
  "CMakeFiles/dfamr_core.dir/run.cpp.o"
  "CMakeFiles/dfamr_core.dir/run.cpp.o.d"
  "CMakeFiles/dfamr_core.dir/tampi_oss.cpp.o"
  "CMakeFiles/dfamr_core.dir/tampi_oss.cpp.o.d"
  "libdfamr_core.a"
  "libdfamr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfamr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
