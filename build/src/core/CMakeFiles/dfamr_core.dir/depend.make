# Empty dependencies file for dfamr_core.
# This may be replaced when dependencies are built.
