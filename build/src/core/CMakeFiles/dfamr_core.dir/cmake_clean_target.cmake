file(REMOVE_RECURSE
  "libdfamr_core.a"
)
