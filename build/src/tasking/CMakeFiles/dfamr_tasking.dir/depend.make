# Empty dependencies file for dfamr_tasking.
# This may be replaced when dependencies are built.
