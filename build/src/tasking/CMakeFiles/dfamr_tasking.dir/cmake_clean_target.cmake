file(REMOVE_RECURSE
  "libdfamr_tasking.a"
)
