file(REMOVE_RECURSE
  "CMakeFiles/dfamr_tasking.dir/dependency.cpp.o"
  "CMakeFiles/dfamr_tasking.dir/dependency.cpp.o.d"
  "CMakeFiles/dfamr_tasking.dir/runtime.cpp.o"
  "CMakeFiles/dfamr_tasking.dir/runtime.cpp.o.d"
  "libdfamr_tasking.a"
  "libdfamr_tasking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfamr_tasking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
