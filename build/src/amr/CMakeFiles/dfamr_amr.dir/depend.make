# Empty dependencies file for dfamr_amr.
# This may be replaced when dependencies are built.
