file(REMOVE_RECURSE
  "libdfamr_amr.a"
)
