file(REMOVE_RECURSE
  "CMakeFiles/dfamr_amr.dir/block.cpp.o"
  "CMakeFiles/dfamr_amr.dir/block.cpp.o.d"
  "CMakeFiles/dfamr_amr.dir/comm_plan.cpp.o"
  "CMakeFiles/dfamr_amr.dir/comm_plan.cpp.o.d"
  "CMakeFiles/dfamr_amr.dir/config.cpp.o"
  "CMakeFiles/dfamr_amr.dir/config.cpp.o.d"
  "CMakeFiles/dfamr_amr.dir/mesh.cpp.o"
  "CMakeFiles/dfamr_amr.dir/mesh.cpp.o.d"
  "CMakeFiles/dfamr_amr.dir/object.cpp.o"
  "CMakeFiles/dfamr_amr.dir/object.cpp.o.d"
  "CMakeFiles/dfamr_amr.dir/structure.cpp.o"
  "CMakeFiles/dfamr_amr.dir/structure.cpp.o.d"
  "CMakeFiles/dfamr_amr.dir/trace.cpp.o"
  "CMakeFiles/dfamr_amr.dir/trace.cpp.o.d"
  "libdfamr_amr.a"
  "libdfamr_amr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfamr_amr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
