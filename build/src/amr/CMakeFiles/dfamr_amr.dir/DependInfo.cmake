
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/amr/block.cpp" "src/amr/CMakeFiles/dfamr_amr.dir/block.cpp.o" "gcc" "src/amr/CMakeFiles/dfamr_amr.dir/block.cpp.o.d"
  "/root/repo/src/amr/comm_plan.cpp" "src/amr/CMakeFiles/dfamr_amr.dir/comm_plan.cpp.o" "gcc" "src/amr/CMakeFiles/dfamr_amr.dir/comm_plan.cpp.o.d"
  "/root/repo/src/amr/config.cpp" "src/amr/CMakeFiles/dfamr_amr.dir/config.cpp.o" "gcc" "src/amr/CMakeFiles/dfamr_amr.dir/config.cpp.o.d"
  "/root/repo/src/amr/mesh.cpp" "src/amr/CMakeFiles/dfamr_amr.dir/mesh.cpp.o" "gcc" "src/amr/CMakeFiles/dfamr_amr.dir/mesh.cpp.o.d"
  "/root/repo/src/amr/object.cpp" "src/amr/CMakeFiles/dfamr_amr.dir/object.cpp.o" "gcc" "src/amr/CMakeFiles/dfamr_amr.dir/object.cpp.o.d"
  "/root/repo/src/amr/structure.cpp" "src/amr/CMakeFiles/dfamr_amr.dir/structure.cpp.o" "gcc" "src/amr/CMakeFiles/dfamr_amr.dir/structure.cpp.o.d"
  "/root/repo/src/amr/trace.cpp" "src/amr/CMakeFiles/dfamr_amr.dir/trace.cpp.o" "gcc" "src/amr/CMakeFiles/dfamr_amr.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dfamr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
