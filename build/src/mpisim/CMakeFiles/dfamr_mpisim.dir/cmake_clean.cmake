file(REMOVE_RECURSE
  "CMakeFiles/dfamr_mpisim.dir/mpi.cpp.o"
  "CMakeFiles/dfamr_mpisim.dir/mpi.cpp.o.d"
  "libdfamr_mpisim.a"
  "libdfamr_mpisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfamr_mpisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
