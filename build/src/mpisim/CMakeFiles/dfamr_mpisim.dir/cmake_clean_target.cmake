file(REMOVE_RECURSE
  "libdfamr_mpisim.a"
)
