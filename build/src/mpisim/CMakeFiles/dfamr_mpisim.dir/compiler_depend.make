# Empty compiler generated dependencies file for dfamr_mpisim.
# This may be replaced when dependencies are built.
