// The paper's first input problem (§V, from Rico et al.): a big sphere
// entering the mesh from a lower corner, refining the intersecting regions
// as it advances — the input that produces early load imbalance.
//
// Runs the problem in real execution mode (in-process MPI ranks + tasking
// runtime) with a configurable variant, and prints a per-phase summary.
// Defaults are scaled down from the paper's 4-node configuration so the run
// finishes quickly on a development machine; every miniAMR option can be
// overridden on the command line (see --help).
//
//   ./examples/single_sphere
//   ./examples/single_sphere --variant mpi   --npx 4
//   ./examples/single_sphere --variant tampi --send_faces --separate_buffers
//
// With the TCP transport the ranks become real processes:
//
//   ./dfamr_mpirun -n 4 ./examples/single_sphere --transport tcp --npx 4
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "core/metrics.hpp"
#include "core/variants.hpp"
#include "resilience/fault_plan.hpp"

using namespace dfamr;

namespace {

amr::Variant parse_variant(const std::string& name) {
    if (name == "mpi") return amr::Variant::MpiOnly;
    if (name == "forkjoin") return amr::Variant::ForkJoin;
    if (name == "tampi") return amr::Variant::TampiOss;
    throw ConfigError("unknown variant '" + name + "' (mpi | forkjoin | tampi)");
}

}  // namespace

int main(int argc, char** argv) {
    CliParser cli(
        "single_sphere — the Rico et al. input problem: one large sphere entering the mesh "
        "from a lower corner (paper §V)");
    amr::Config::register_cli(cli);
    resilience::FaultConfig::register_cli(cli);
    core::RunOptions::register_cli(cli);
    cli.add_option("--variant", "variant to run: mpi | forkjoin | tampi", "tampi");
    cli.add_option("--trace_csv", "write a per-core trace CSV to this path", "");
    cli.add_option("--trace_out",
                   "write <base>.perfetto.json (Chrome-trace timeline, loadable in "
                   "ui.perfetto.dev) and <base>.metrics.json (unified metrics snapshot "
                   "for trace_diff) using this base path",
                   "");
    cli.add_option("--checksum_out",
                   "write the stage checksums (hex doubles, one per line) to this path", "");

    try {
        if (!cli.parse(argc, argv)) return 0;

        // Paper-shaped defaults, scaled down for a workstation: the paper's
        // own run is 20 timesteps x 60 stages on 18^3 x 60-var blocks.
        amr::Config cfg = amr::single_sphere_input();
        cfg.npx = 2;
        cfg.npy = cfg.npz = 1;
        cfg.init_x = 1;
        cfg.init_y = cfg.init_z = 2;
        cfg.nx = cfg.ny = cfg.nz = 8;
        cfg.num_vars = 8;
        cfg.num_tsteps = 5;
        cfg.stages_per_ts = 6;
        cfg.num_refine = 2;
        cfg.workers = 2;
        // The sphere still needs to reach the mesh over the shortened run.
        cfg.objects[0].move = {0.8 / cfg.num_tsteps, 0.8 / cfg.num_tsteps, 0.8 / cfg.num_tsteps};

        // Explicit command-line options override the scaled defaults.
        cfg = amr::Config::from_cli(cli, cfg);

        const amr::Variant variant = parse_variant(cli.get_string("--variant"));
        const core::RunOptions opts = core::RunOptions::from_cli(cli);
        amr::Tracer tracer;
        const std::string trace_path = cli.get_string("--trace_csv");
        const std::string trace_out = cli.get_string("--trace_out");
        tracer.enable(!trace_path.empty() || !trace_out.empty());

        // Under dfamr_mpirun every rank process runs this main; only rank 0
        // talks to the terminal (every process computes the same reduced
        // result, so nothing is lost).
        const char* rank_env = std::getenv("DFAMR_RANK");
        const bool primary = rank_env == nullptr || std::string(rank_env) == "0";

        if (primary) {
            std::printf("single sphere input — %s, %d ranks x %d workers\n",
                        to_string(variant).c_str(), cfg.num_ranks(), cfg.workers);
        }

        // Chaos mode: with any --fault_* knob on, run a fault-free twin
        // first and require the chaos run to reproduce its checksums bit for
        // bit (the resilience layer's correctness contract). The twin always
        // runs in-process (threads-as-ranks inside this very process), even
        // under dfamr_mpirun — it is the transport-independent reference.
        const resilience::FaultConfig fault_cfg = resilience::FaultConfig::from_cli(cli);
        std::unique_ptr<resilience::FaultPlan> plan;
        std::vector<double> reference_checksums;
        if (fault_cfg.enabled()) {
            core::RunOptions twin;
            twin.ignore_launch_env = true;
            reference_checksums = core::run_variant(cfg, variant, nullptr, nullptr, twin).checksums;
            plan = std::make_unique<resilience::FaultPlan>(fault_cfg);
        }
        const core::RunResult r = core::run_variant(
            cfg, variant, tracer.enabled() ? &tracer : nullptr, plan.get(), opts);

        bool chaos_ok = true;
        if (plan) {
            chaos_ok = r.checksums == reference_checksums;
            if (primary) {
                std::printf("chaos: seed %llu, %llu drops, %llu delays — checksums %s\n",
                            static_cast<unsigned long long>(fault_cfg.seed),
                            static_cast<unsigned long long>(plan->drops()),
                            static_cast<unsigned long long>(plan->delays()),
                            chaos_ok ? "bit-identical to the fault-free run" : "DIVERGED");
            }
        }

        const std::string checksum_path = cli.get_string("--checksum_out");
        if (primary && !checksum_path.empty()) {
            // %a is exact (hex float): byte-identical checksums produce
            // byte-identical files, which is what the cross-process golden
            // test diffs.
            std::FILE* f = std::fopen(checksum_path.c_str(), "w");
            DFAMR_REQUIRE(f != nullptr, "cannot open --checksum_out path " + checksum_path);
            for (const double c : r.checksums) std::fprintf(f, "%a\n", c);
            std::fclose(f);
        }

        if (!primary) return r.validation_ok && chaos_ok ? 0 : 1;

        TextTable table({"metric", "value"});
        table.add_row({"total time (s)", TextTable::num(r.times.total, 3)});
        table.add_row({"refinement time (s)", TextTable::num(r.times.refine, 3)});
        table.add_row({"non-refinement time (s)", TextTable::num(r.times.non_refine(), 3)});
        if (variant != amr::Variant::TampiOss) {
            table.add_row({"communication time (s)", TextTable::num(r.times.comm, 3)});
            table.add_row({"stencil time (s)", TextTable::num(r.times.stencil, 3)});
        }
        table.add_row({"GFLOPS", TextTable::num(r.gflops(), 2)});
        table.add_row({"final blocks", std::to_string(r.final_blocks)});
        table.add_row({"MPI messages", std::to_string(r.messages)});
        if (r.net.frames_sent > 0) {
            table.add_row({"wire frames sent", std::to_string(r.net.frames_sent)});
            table.add_row({"wire bytes sent", std::to_string(r.net.bytes_sent)});
            table.add_row({"wire rendezvous", std::to_string(r.net.rendezvous)});
        }
        table.add_row({"checksums validated", std::to_string(r.checksums.size())});
        table.add_row({"validation", r.validation_ok ? "OK" : "FAILED"});
        if (cfg.scenario != "synthetic" || cfg.estimator != "objects") {
            table.add_row({"scenario / estimator", cfg.scenario + " / " + cfg.estimator});
            table.add_row({"estimator-driven splits",
                           std::to_string(r.counters.blocks_refined_by_estimator)});
            table.add_row(
                {"refine/coarsen thrash", std::to_string(r.counters.refine_coarsen_thrash)});
            if (r.has_error_norm) {
                table.add_row({"L1 error vs reference", TextTable::num(r.error_norm, 6)});
            }
            if (cfg.scenario != "synthetic") {
                // Conservation ledger: the drift is the post-reflux residual
                // (exactly zero when every coarse-fine face was corrected);
                // the budget closes as final = initial - outflux to rounding.
                table.add_row({"mass drift (reflux residual)", TextTable::num(r.mass_drift, 17)});
                table.add_row(
                    {"reflux corrections", std::to_string(r.counters.reflux_corrections)});
                table.add_row({"boundary outflux", TextTable::num(r.boundary_outflux, 6)});
                table.add_row({"mass budget residual",
                               TextTable::num(r.final_mass - r.initial_mass + r.boundary_outflux,
                                              6)});
            }
        }
        if (r.sched.tasks_executed > 0) {
            // Scheduler telemetry (all ranks summed); the refine slice shows
            // how much of the stealing happens inside refinement phases.
            table.add_row({"tasks executed", std::to_string(r.sched.tasks_executed)});
            table.add_row({"steals (refine)", std::to_string(r.sched.steals) + " (" +
                                                  std::to_string(r.sched_refine.steals) + ")"});
            table.add_row({"parks / wakeups", std::to_string(r.sched.parks) + " / " +
                                                  std::to_string(r.sched.wakeups)});
            table.add_row({"immediate-successor hits",
                           std::to_string(r.sched.immediate_successor_hits)});
        }
        table.print(std::cout);

        if (tracer.enabled()) {
            if (!trace_path.empty()) {
                std::ofstream out(trace_path);
                out << tracer.to_csv();
            }
            if (!trace_out.empty()) {
                std::ofstream perfetto(trace_out + ".perfetto.json");
                perfetto << tracer.to_chrome_json();
                const core::MetricsSnapshot snap = core::make_metrics_snapshot(tracer, r);
                std::ofstream metrics(trace_out + ".metrics.json");
                metrics << core::metrics_to_json(snap);
            }
            const amr::TraceAnalysis a = tracer.analyze();
            std::printf(
                "trace: %d cores (+%d progress), utilization %.1f%%, phase overlap %.3f ms, "
                "largest idle gap %.3f ms -> %s\n",
                a.cores, a.progress_lanes, a.utilization * 100, a.overlap_ns * 1e-6,
                a.largest_idle_gap_ns * 1e-6,
                (!trace_out.empty() ? trace_out + ".{perfetto,metrics}.json" : trace_path).c_str());
        }
        return r.validation_ok && chaos_ok ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
