// The paper's second input problem (§V, from Vaughan et al.): four spheres
// crossing the mesh along the X axis without colliding — the input used by
// every scaling experiment.
//
// This example runs the SAME problem with all three variants in real
// execution mode and prints the head-to-head comparison, including the
// checksum agreement that proves the parallelizations compute the same
// physics.
//
//   ./examples/four_spheres
//   ./examples/four_spheres --num_tsteps 8 --workers 2
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/variants.hpp"

using namespace dfamr;

int main(int argc, char** argv) {
    CliParser cli(
        "four_spheres — the Vaughan et al. input problem: two sphere pairs crossing the mesh "
        "in opposite directions (paper §V); compares the three variants");
    amr::Config::register_cli(cli);

    try {
        if (!cli.parse(argc, argv)) return 0;

        // Scaled-down defaults (the paper runs 99 timesteps x 40 stages on
        // 12^3 x 40-var blocks across up to 12288 cores).
        amr::Config cfg = amr::four_spheres_input();
        cfg.npx = 2;
        cfg.npy = 2;
        cfg.npz = 1;
        cfg.init_x = cfg.init_y = 1;
        cfg.init_z = 2;
        cfg.nx = cfg.ny = cfg.nz = 8;
        cfg.num_vars = 8;
        cfg.num_tsteps = 5;
        cfg.stages_per_ts = 4;
        cfg.checksum_freq = 4;
        cfg.num_refine = 2;
        cfg.workers = 2;
        // Re-time the sphere motion for the shortened run.
        const double rate = (1.0 - 2 * (0.09 + 0.06)) / cfg.num_tsteps;
        for (auto& obj : cfg.objects) obj.move.x = std::copysign(rate, obj.move.x);
        cfg = amr::Config::from_cli(cli, cfg);

        std::printf("four spheres input — %d ranks, %d workers/rank (hybrids)\n",
                    cfg.num_ranks(), cfg.workers);

        struct Row {
            amr::Variant variant;
            amr::Config run_cfg;
        };
        amr::Config tampi_cfg = cfg;
        tampi_cfg.send_faces = true;
        tampi_cfg.separate_buffers = true;
        tampi_cfg.max_comm_tasks = 8;
        tampi_cfg.delayed_checksum = true;
        const Row rows[] = {
            {amr::Variant::MpiOnly, cfg},
            {amr::Variant::ForkJoin, cfg},
            {amr::Variant::TampiOss, tampi_cfg},
        };

        TextTable table({"variant", "total (s)", "refine (s)", "no refine (s)", "GFLOPS",
                         "final blocks", "checksum", "valid"});
        double reference_checksum = 0;
        bool all_ok = true;
        for (const Row& row : rows) {
            const core::RunResult r = core::run_variant(row.run_cfg, row.variant);
            const double checksum = r.checksums.empty() ? 0.0 : r.checksums.back();
            if (row.variant == amr::Variant::MpiOnly) reference_checksum = checksum;
            const bool agrees =
                std::abs(checksum - reference_checksum) <= 1e-9 * std::abs(reference_checksum);
            all_ok = all_ok && r.validation_ok && agrees;
            table.add_row({to_string(row.variant), TextTable::num(r.times.total, 3),
                           TextTable::num(r.times.refine, 3),
                           TextTable::num(r.times.non_refine(), 3), TextTable::num(r.gflops(), 2),
                           std::to_string(r.final_blocks), TextTable::num(checksum, 6),
                           r.validation_ok && agrees ? "OK" : "FAIL"});
        }
        table.print(std::cout);
        std::printf("%s\n", all_ok ? "all variants agree on the checksums"
                                   : "VARIANTS DISAGREE — this is a bug");

        // miniAMR-style end-of-run report (from the last run's counters).
        const core::RunResult last = core::run_variant(tampi_cfg, amr::Variant::TampiOss);
        std::printf(
            "run report: %lld refinement phases, %lld blocks split, %lld merged, "
            "%lld moved between ranks, %lld load balances, %lld checksum stages\n",
            static_cast<long long>(last.counters.refinement_phases),
            static_cast<long long>(last.counters.blocks_split),
            static_cast<long long>(last.counters.blocks_merged),
            static_cast<long long>(last.counters.blocks_moved),
            static_cast<long long>(last.counters.load_balances),
            static_cast<long long>(last.counters.checksum_stages));
        return all_ok ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
