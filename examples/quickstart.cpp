// Quickstart: the smallest complete use of the dfamr public API.
//
// Builds a tiny AMR problem (one sphere crossing a 2-rank mesh), runs the
// paper's data-flow variant (tasks + TAMPI on the in-process MPI), and
// prints what happened. Start here, then look at single_sphere.cpp and
// four_spheres.cpp for the paper's actual input problems.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/variants.hpp"

int main() {
    using namespace dfamr;

    // 1) Describe the problem: a 2x1x1 rank grid, each rank starting with
    //    one 8^3-cell block of 8 variables, refined up to 2 levels around a
    //    moving sphere.
    amr::Config cfg;
    cfg.npx = 2;
    cfg.npy = 1;
    cfg.npz = 1;
    cfg.init_x = cfg.init_y = cfg.init_z = 1;
    cfg.nx = cfg.ny = cfg.nz = 8;
    cfg.num_vars = 8;
    cfg.num_tsteps = 4;
    cfg.stages_per_ts = 4;
    cfg.checksum_freq = 4;   // validate every 4 stages
    cfg.num_refine = 2;      // up to 2 refinement levels
    cfg.refine_freq = 2;     // refine every 2 timesteps
    cfg.workers = 2;         // cores per rank for the tasking runtime

    amr::ObjectSpec sphere;
    sphere.type = amr::ObjectType::SpheroidSurface;
    sphere.center = {0.15, 0.5, 0.5};
    sphere.size = {0.2, 0.2, 0.2};
    sphere.move = {0.15, 0.0, 0.0};
    sphere.bounce = true;
    cfg.objects.push_back(sphere);

    // 2) Run the data-flow variant (OmpSs-2-style tasks + TAMPI): every
    //    phase — ghost exchange, stencil, checksum, refinement, load
    //    balancing — executes as tasks connected by data dependencies.
    const core::RunResult result = core::run_variant(cfg, amr::Variant::TampiOss);

    // 3) Inspect the outcome.
    std::printf("dfamr quickstart (TAMPI+OSS data-flow variant)\n");
    std::printf("  total time           : %.3f s\n", result.times.total);
    std::printf("  refinement time      : %.3f s\n", result.times.refine);
    std::printf("  stencil FLOPs        : %lld\n", static_cast<long long>(result.total_flops));
    std::printf("  final mesh blocks    : %lld\n", static_cast<long long>(result.final_blocks));
    std::printf("  MPI messages         : %llu\n", static_cast<unsigned long long>(result.messages));
    std::printf("  checksum validations : %zu (%s)\n", result.checksums.size(),
                result.validation_ok ? "all within tolerance" : "FAILED");
    if (!result.checksums.empty()) {
        std::printf("  last global checksum : %.6f\n", result.checksums.back());
    }
    return result.validation_ok ? 0 : 1;
}
