// Bonus example: the discrete-event cluster simulator as a user-facing tool.
//
// Plans a weak-scaling study on a virtual MareNostrum4-like machine —
// useful to predict how a configuration behaves at node counts you do not
// have. This is the same engine the bench/ binaries use to regenerate the
// paper's figures.
//
//   ./examples/virtual_cluster
//   ./examples/virtual_cluster --nodes 32 --ranks_per_node 2
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/run_sim.hpp"

using namespace dfamr;

int main(int argc, char** argv) {
    CliParser cli("virtual_cluster — simulate the mini-app on N virtual nodes (DES)");
    cli.add_option("--nodes", "virtual nodes to simulate", "8");
    cli.add_option("--cores_per_node", "cores per node", "48");
    cli.add_option("--ranks_per_node", "hybrid ranks per node", "4");
    cli.add_option("--num_tsteps", "timesteps", "4");
    cli.add_option("--stages_per_ts", "stages per timestep", "4");

    try {
        if (!cli.parse(argc, argv)) return 0;
        const int nodes = static_cast<int>(cli.get_int("--nodes"));

        // Calibrate compute costs from this machine's real kernels.
        const sim::CostModel costs = sim::calibrate();
        std::printf("calibrated: stencil %.2f ns/cell/var, copy %.3f ns/B\n",
                    costs.stencil_ns_per_cell_var, costs.copy_ns_per_byte);

        amr::Config cfg = amr::four_spheres_input();
        cfg.num_tsteps = static_cast<int>(cli.get_int("--num_tsteps"));
        cfg.stages_per_ts = static_cast<int>(cli.get_int("--stages_per_ts"));
        cfg.checksum_freq = 4;
        cfg.refine_freq = 2;
        cfg.block_change = 1;

        TextTable table({"variant", "ranks", "cores/rank", "total (s)", "refine (s)",
                         "GFLOPS", "messages"});
        const Vec3i grid = sim::factor3(static_cast<int>(cli.get_int("--cores_per_node")) * nodes);

        sim::ClusterSpec mpi;
        mpi.nodes = nodes;
        mpi.cores_per_node = static_cast<int>(cli.get_int("--cores_per_node"));
        mpi.ranks_per_node = mpi.cores_per_node;  // MPI-only: 1 rank per core
        sim::ClusterSpec hyb = mpi;
        hyb.ranks_per_node = static_cast<int>(cli.get_int("--ranks_per_node"));

        struct Setup {
            amr::Variant variant;
            sim::ClusterSpec cluster;
            bool paper_options;
        };
        const Setup setups[] = {
            {amr::Variant::MpiOnly, mpi, false},
            {amr::Variant::ForkJoin, hyb, false},
            {amr::Variant::TampiOss, hyb, true},
        };
        for (const Setup& s : setups) {
            amr::Config run_cfg = cfg;
            sim::arrange(run_cfg, grid, s.cluster.total_ranks());
            if (s.paper_options) {
                run_cfg.send_faces = true;
                run_cfg.separate_buffers = true;
                run_cfg.max_comm_tasks = 8;
                run_cfg.delayed_checksum = true;
            }
            const sim::SimResult r = sim::run_simulated(run_cfg, s.variant, s.cluster, costs);
            table.add_row({to_string(s.variant), std::to_string(s.cluster.total_ranks()),
                           std::to_string(s.cluster.cores_per_rank()),
                           TextTable::num(r.total_s, 4), TextTable::num(r.refine_s, 4),
                           TextTable::num(r.gflops(), 1), std::to_string(r.stats.messages)});
        }
        std::printf("simulated %d nodes (%s-core), four-spheres input:\n", nodes,
                    cli.get_string("--cores_per_node").c_str());
        table.print(std::cout);
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
}
