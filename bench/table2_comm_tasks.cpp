// Table II — "The non-refinement time (s) varying the number of
// communication tasks per neighbor and direction on 64 nodes."
//
// Paper: TAMPI+OSS with --send_faces on 64 nodes; --max_comm_tasks in
// {1, 2, 4, 8, 16, all}. Expected shape: a shallow U — 1 task per
// direction+neighbor under-exposes parallelism, "all" (one task+message per
// face) pays per-message latency and per-task overhead; the best range is
// 4..16 (the paper settles on 8).
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace dfamr;
using namespace dfamr::bench;

int main() {
    print_header("Table II: non-refinement time (s) vs communication tasks on 64 nodes",
                 "Sala, Rico, Beltran (CLUSTER 2020), Table II");

    const CostModel costs;
    const int nodes = 64;
    const Vec3i grid = sim::factor3(48 * nodes);
    const ClusterSpec cluster = marenostrum(nodes, 4);

    TextTable table({"Tasks", "Time(s)"});
    for (int tasks : {1, 2, 4, 8, 16, 0}) {  // 0 = one per face ("all")
        Config cfg = weak_scaling_config();
        // The paper's 99-timestep run refines a large share of the domain;
        // our shortened run compensates with a deeper refinement cadence so
        // the per-neighbor face counts (the quantity this table sweeps) are
        // comparable.
        cfg.refine_freq = 2;
        cfg.block_change = 2;
        cfg.num_refine = 4;
        sim::arrange(cfg, grid, cluster.total_ranks());
        cfg.send_faces = true;
        cfg.separate_buffers = true;
        cfg.delayed_checksum = true;
        cfg.max_comm_tasks = tasks;
        const SimResult r = sim::run_simulated(cfg, Variant::TampiOss, cluster, costs);
        table.add_row({tasks == 0 ? "all" : std::to_string(tasks),
                       TextTable::num(r.non_refine_s(), 4)});
    }
    table.print(std::cout);

    std::printf("\npaper's Table II (seconds, on the real machine):\n");
    std::printf("  tasks:   1      2      4      8      16     all\n");
    std::printf("  time :  612.5  600.0  594.9  595.5  597.8  627.5\n");
    return 0;
}
