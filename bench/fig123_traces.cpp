// Figures 1-3 — execution-trace comparison of MPI-only and TAMPI+OSS on
// 2 nodes (the Extrae/Paraver analysis of §V-B, regenerated quantitatively).
//
// Paper observations this bench verifies:
//  * the TAMPI+OSS non-refinement region is ~1.3x shorter (Fig. 1),
//  * the data-flow execution is dense: tasks of different phases overlap
//    (Fig. 3 upper), with only occasional sub-3ms gaps while TAMPI
//    communications wait for remote data (Fig. 3 lower),
//  * the MPI-only timeline alternates computation with MPI_Waitany windows
//    (Fig. 2).
//
// Writes the simulated per-core timelines to CSV (a Paraver-like format:
// rank, worker, start_ns, end_ns, kind) next to the binary.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace dfamr;
using namespace dfamr::bench;

namespace {

Config fig1_config() {
    // Paper: four spheres on 2 nodes, 9 timesteps x 20 stages, 12^3-cell
    // blocks with 20 variables, refinement every 5 timesteps, checksum every
    // 10 stages, reduced maximum refinement level. Scaled: 9 x 8 stages,
    // checksum every 4.
    Config cfg = amr::four_spheres_input();
    cfg.num_vars = 20;
    cfg.num_tsteps = 9;
    cfg.stages_per_ts = 8;
    cfg.checksum_freq = 4;
    cfg.refine_freq = 5;
    cfg.num_refine = 2;  // "we decrease the maximum refinement level"
    cfg.block_change = 1;
    const double rate = (1.0 - 2 * (0.09 + 0.06)) / cfg.num_tsteps;
    for (auto& obj : cfg.objects) obj.move.x = obj.move.x > 0 ? rate : -rate;
    return cfg;
}

void report(const char* name, const SimResult& r, const amr::TraceAnalysis& a,
            const std::string& csv_path) {
    std::printf("\n--- %s ---\n", name);
    std::printf("  total %.4f s | refine %.4f s (%.1f%%) | non-refine %.4f s\n", r.total_s,
                r.refine_s, 100.0 * r.refine_s / r.total_s, r.non_refine_s());
    std::printf("  cores traced: %d, utilization %.1f%%\n", a.cores, a.utilization * 100);
    std::printf("  distinct-phase overlap: %.3f ms (%.1f%% of span)\n", a.overlap_ns * 1e-6,
                100.0 * static_cast<double>(a.overlap_ns) / static_cast<double>(a.span_ns));
    std::printf("  largest all-idle gap: %.3f ms\n", a.largest_idle_gap_ns * 1e-6);
    std::printf("  busy time by phase:\n");
    for (const auto& [kind, ns] : a.busy_ns_by_kind) {
        std::printf("    %-16s %10.3f ms\n", to_string(kind).c_str(), ns * 1e-6);
    }
    std::printf("  timeline CSV: %s\n", csv_path.c_str());
}

}  // namespace

int main() {
    print_header("Figures 1-3: trace analysis, MPI-only vs TAMPI+OSS on 2 nodes",
                 "Sala, Rico, Beltran (CLUSTER 2020), Figs. 1-3");
    const CostModel costs;
    const int nodes = 2;
    const Vec3i grid = sim::factor3(48 * nodes);
    const Config cfg = fig1_config();

    amr::Tracer mpi_trace;
    mpi_trace.enable(true);
    const SimResult mpi =
        run_point(cfg, Variant::MpiOnly, nodes, 48, grid, costs, &mpi_trace);
    const amr::TraceAnalysis mpi_a = mpi_trace.analyze();
    {
        std::ofstream out("fig1_trace_mpi_only.csv");
        out << mpi_trace.to_csv();
    }
    report("MPI-only (96 ranks)", mpi, mpi_a, "fig1_trace_mpi_only.csv");

    amr::Tracer df_trace;
    df_trace.enable(true);
    const SimResult df =
        run_point(cfg, Variant::TampiOss, nodes, 8, grid, costs, &df_trace);
    const amr::TraceAnalysis df_a = df_trace.analyze();
    {
        std::ofstream out("fig1_trace_tampi_oss.csv");
        out << df_trace.to_csv();
    }
    report("TAMPI+OSS (8 ranks x 12 cores)", df, df_a, "fig1_trace_tampi_oss.csv");

    const double nr_speedup = mpi.non_refine_s() / df.non_refine_s();
    std::printf("\nnon-refinement speedup TAMPI+OSS vs MPI-only: %.2fx (paper: ~1.3x)\n",
                nr_speedup);
    std::printf("largest TAMPI+OSS idle gap: %.3f ms (paper: < 3 ms)\n",
                df_a.largest_idle_gap_ns * 1e-6);
    return 0;
}
