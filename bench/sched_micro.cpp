// Scheduler microbenchmark: the vendored pre-work-stealing runtime
// (bench/seed_sched, global mutex) vs the current work-stealing runtime,
// swept over worker counts. Prints per-task spawn/complete cost for the
// fan-out and dependency-chain workloads, successful-steal latency, the
// new runtime's scheduler counters, and a machine-readable JSON line per
// row.
//
// This is the measurement behind CostModel::tasking_overhead_ns — rerun it
// (Release build) when the scheduler changes and update the constant if the
// per-task cost moves materially.
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "sched_bench.hpp"

int main(int argc, char** argv) {
    long long tasks = 200000;
    if (argc > 1) tasks = std::atoll(argv[1]);

    const unsigned hw = std::max(2u, std::thread::hardware_concurrency());
    std::vector<int> sweep;
    for (int w = 1; static_cast<unsigned>(w) <= hw; w *= 2) sweep.push_back(w);
    if (static_cast<unsigned>(sweep.back()) != hw) sweep.push_back(static_cast<int>(hw));

    std::printf("scheduler microbenchmark: %lld tasks per workload per runtime\n", tasks);
    std::printf("%-7s | %11s %11s %8s | %11s %11s %8s | %9s %9s %8s %8s\n", "workers",
                "old fanout", "new fanout", "speedup", "old chain", "new chain", "speedup",
                "steal ns", "imm_succ", "steals", "parks");
    for (int w : sweep) {
        const auto m = dfamr::bench::measure_scheduler(w, tasks);
        const double fan_speedup =
            m.new_fanout_ns > 0 ? m.old_fanout_ns / m.new_fanout_ns : 0.0;
        const double chain_speedup = m.new_chain_ns > 0 ? m.old_chain_ns / m.new_chain_ns : 0.0;
        std::printf("%-7d | %11.1f %11.1f %7.2fx | %11.1f %11.1f %7.2fx | %9.1f %9llu %8llu %8llu\n",
                    w, m.old_fanout_ns, m.new_fanout_ns, fan_speedup, m.old_chain_ns,
                    m.new_chain_ns, chain_speedup, m.steal_ns,
                    static_cast<unsigned long long>(m.chain_stats.immediate_successor_hits),
                    static_cast<unsigned long long>(m.fanout_stats.steals),
                    static_cast<unsigned long long>(m.fanout_stats.parks));
        std::printf("JSON {\"workers\":%d,\"tasks\":%lld,\"old_fanout_ns\":%.1f,"
                    "\"new_fanout_ns\":%.1f,\"old_chain_ns\":%.1f,\"new_chain_ns\":%.1f,"
                    "\"steal_ns\":%.1f,\"steals\":%llu,\"steal_fails\":%llu,\"parks\":%llu,"
                    "\"wakeups\":%llu,\"immediate_successor_hits\":%llu}\n",
                    w, tasks, m.old_fanout_ns, m.new_fanout_ns, m.old_chain_ns, m.new_chain_ns,
                    m.steal_ns, static_cast<unsigned long long>(m.fanout_stats.steals),
                    static_cast<unsigned long long>(m.fanout_stats.steal_fails),
                    static_cast<unsigned long long>(m.fanout_stats.parks),
                    static_cast<unsigned long long>(m.fanout_stats.wakeups),
                    static_cast<unsigned long long>(m.chain_stats.immediate_successor_hits));
    }
    return 0;
}
