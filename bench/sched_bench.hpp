// Scheduler micro-measurement shared by bench/sched_micro (the detailed
// old-vs-new sweep) and bench/bench_json (the "scheduler" section of
// BENCH_scaling.json). Races the vendored pre-work-stealing runtime
// (bench/seed_sched — the global-mutex scheduler this PR replaced, with
// identical Task/registry machinery) against the current work-stealing
// dfamr::tasking::Runtime on two workloads:
//
//  * fan-out — one generator task per worker spawning many independent
//    children: stresses submission, queueing and (new runtime) stealing;
//  * chains — C independent inout-dependency chains: stresses dependency
//    release and the immediate-successor path, the shape AMR stencil
//    pipelines take;
//
// plus the raw latency of a successful WsDeque::steal under contention.
// The measured old/new gap is what calibrates CostModel::tasking_overhead_ns
// for the DES (see src/sim/cost_model.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "seed_sched/runtime.hpp"
#include "tasking/runtime.hpp"
#include "tasking/ws_deque.hpp"

namespace dfamr::bench {

namespace detail {

inline double elapsed_ns(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0)
        .count();
}

/// One generator task per worker, each spawning `per_gen` empty children.
/// Returns ns per child task.
template <class RT>
double fanout_ns_per_task(RT& rt, int gens, long long per_gen) {
    std::atomic<long long> sink{0};
    const auto t0 = std::chrono::steady_clock::now();
    for (int g = 0; g < gens; ++g) {
        rt.submit(
            [&rt, &sink, per_gen] {
                for (long long i = 0; i < per_gen; ++i) {
                    rt.submit([&sink] { sink.fetch_add(1, std::memory_order_relaxed); }, {});
                }
            },
            {});
    }
    rt.taskwait();
    return elapsed_ns(t0) / static_cast<double>(gens * per_gen);
}

/// `chains` independent inout chains of `links` tasks each, submitted up
/// front — every link depends on its predecessor through a synthetic
/// region. Returns ns per link.
template <class RT, class MakeDeps>
double chain_ns_per_task(RT& rt, int chains, long long links, MakeDeps deps_for) {
    std::atomic<long long> sink{0};
    const auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < chains; ++c) {
        // Synthetic ids spread chains across registry shards (new runtime).
        const std::uint64_t id = (static_cast<std::uint64_t>(c) + 1) << 20;
        for (long long l = 0; l < links; ++l) {
            rt.submit([&sink] { sink.fetch_add(1, std::memory_order_relaxed); },
                      deps_for(id));
        }
    }
    rt.taskwait();
    return elapsed_ns(t0) / static_cast<double>(chains * links);
}

}  // namespace detail

struct SchedMeasurement {
    int workers = 0;
    long long tasks = 0;
    double old_fanout_ns = 0;  // vendored seed runtime (global mutex)
    double new_fanout_ns = 0;  // work-stealing runtime
    double old_chain_ns = 0;
    double new_chain_ns = 0;
    double steal_ns = 0;  // mean successful WsDeque::steal latency
    tasking::RuntimeStats fanout_stats;  // new-runtime counters
    tasking::RuntimeStats chain_stats;
};

/// Spawn/complete throughput + steal latency at `workers` worker threads.
/// `tasks` is the total task count per workload per executor.
inline SchedMeasurement measure_scheduler(int workers, long long tasks) {
    namespace seed = seed_baseline::dfamr::tasking;
    SchedMeasurement m;
    m.workers = workers;
    m.tasks = tasks;
    if (workers < 1) return m;
    const long long per_gen = tasks / workers;
    const int chains = 4 * workers;
    const long long links = tasks / chains;

    {
        seed::Runtime rt(workers);
        m.old_fanout_ns = detail::fanout_ns_per_task(rt, workers, per_gen);
    }
    {
        tasking::Runtime rt(workers);
        m.new_fanout_ns = detail::fanout_ns_per_task(rt, workers, per_gen);
        m.fanout_stats = rt.stats();
    }
    {
        seed::Runtime rt(workers);
        m.old_chain_ns = detail::chain_ns_per_task(rt, chains, links, [](std::uint64_t id) {
            return std::vector<seed::Dep>{seed::inout_id(id)};
        });
    }
    {
        tasking::Runtime rt(workers);
        m.new_chain_ns = detail::chain_ns_per_task(rt, chains, links, [](std::uint64_t id) {
            return std::vector<tasking::Dep>{tasking::inout_id(id)};
        });
        m.chain_stats = rt.stats();
    }

    {
        // Steal latency: one pre-filled deque, `workers` thieves draining it
        // concurrently through the top end.
        const long long items = 100000;
        std::vector<long long> values(static_cast<std::size_t>(items));
        tasking::WsDeque<long long> dq(1024);
        for (long long i = 0; i < items; ++i) dq.push(&values[static_cast<std::size_t>(i)]);
        std::atomic<long long> stolen{0};
        std::vector<std::thread> thieves;
        const auto t0 = std::chrono::steady_clock::now();
        for (int t = 0; t < workers; ++t) {
            thieves.emplace_back([&dq, &stolen, items] {
                while (stolen.load(std::memory_order_relaxed) < items) {
                    if (dq.steal() != nullptr) {
                        stolen.fetch_add(1, std::memory_order_relaxed);
                    }
                }
            });
        }
        for (auto& t : thieves) t.join();
        m.steal_ns = detail::elapsed_ns(t0) / static_cast<double>(items);
    }

    return m;
}

}  // namespace dfamr::bench
