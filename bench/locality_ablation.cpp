// Modeling-honesty ablation (DESIGN.md §7) — the paper attributes part of
// the TAMPI+OSS win to a higher IPC from OmpSs-2's immediate-successor
// scheduling (warm caches). The DES models that as a calibrated
// `locality_speedup` factor on stencil tasks. This bench re-runs the weak
// scaling comparison with the factor DISABLED, so the reader can see which
// part of the reported speedup is structural (overlap, reordering, load
// imbalance tolerance) and which part is the modeled IPC effect.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace dfamr;
using namespace dfamr::bench;

int main(int argc, char** argv) {
    print_header("Locality ablation: TAMPI+OSS speedup with the IPC factor disabled",
                 "DESIGN.md §7 (modeled effect of the paper's §V-B cause 4)");
    int max_nodes = 64;
    if (argc > 1) max_nodes = std::atoi(argv[1]);

    CostModel with_ipc;  // defaults: locality_speedup = 1.12
    CostModel no_ipc = with_ipc;
    no_ipc.locality_speedup = 1.0;

    const Config base = weak_scaling_config();
    TextTable table({"Nodes", "speedup (modeled IPC)", "speedup (structural only)"});
    for (int nodes = 4; nodes <= max_nodes; nodes *= 4) {
        const Vec3i grid = sim::factor3(48 * nodes);
        const SimResult mpi_a = run_point(base, Variant::MpiOnly, nodes, 48, grid, with_ipc);
        const SimResult df_a = run_point(base, Variant::TampiOss, nodes, 4, grid, with_ipc);
        const SimResult mpi_b = run_point(base, Variant::MpiOnly, nodes, 48, grid, no_ipc);
        const SimResult df_b = run_point(base, Variant::TampiOss, nodes, 4, grid, no_ipc);
        table.add_row({std::to_string(nodes),
                       TextTable::num(df_a.gflops() / mpi_a.gflops(), 3) + "x",
                       TextTable::num(df_b.gflops() / mpi_b.gflops(), 3) + "x"});
    }
    table.print(std::cout);
    std::printf("\nthe gap between the two columns is exactly the modeled IPC effect;\n"
                "the structural-only column must still show TAMPI+OSS ahead.\n");
    return 0;
}
