#!/usr/bin/env bash
# Builds the scaling bench and writes BENCH_scaling.json at the repo root.
#
# Usage: bench/run_benches.sh [build_dir] [max_nodes]
#   build_dir  existing or to-be-created CMake build tree (default: build)
#   max_nodes  largest simulated node count, power-of-two sweep (default: 16)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
max_nodes="${2:-16}"

if [[ ! -f "$build_dir/CMakeCache.txt" ]]; then
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$build_dir" --target bench_json -j "$(nproc)"

"$build_dir/bench/bench_json" "$repo_root/BENCH_scaling.json" "$max_nodes"
echo "BENCH_scaling.json written to $repo_root/BENCH_scaling.json"
