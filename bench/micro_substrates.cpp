// Microbenchmarks (google-benchmark) for every substrate: the tasking
// runtime, the dependency registry, the in-process MPI, TAMPI, the AMR
// kernels (these double as the DES calibration kernels), and the DES engine
// itself.
#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "amr/block.hpp"
#include "mpisim/mpi.hpp"
#include "sim/simulator.hpp"
#include "tampi/tampi.hpp"
#include "tasking/runtime.hpp"

namespace {

using namespace dfamr;

// ---- tasking runtime -------------------------------------------------------

void BM_TaskSubmitExecute(benchmark::State& state) {
    tasking::Runtime rt(static_cast<int>(state.range(0)));
    std::atomic<std::int64_t> sink{0};
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i) {
            rt.submit([&sink] { sink.fetch_add(1, std::memory_order_relaxed); }, {});
        }
        rt.taskwait();
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_TaskSubmitExecute)->Arg(1)->Arg(2);

void BM_TaskDependencyChain(benchmark::State& state) {
    tasking::Runtime rt(2);
    double slot = 0;
    for (auto _ : state) {
        for (int i = 0; i < 256; ++i) {
            rt.submit([] {}, {tasking::inout(&slot, sizeof slot)});
        }
        rt.taskwait();
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_TaskDependencyChain);

void BM_DependencyRegistryAccess(benchmark::State& state) {
    std::vector<double> arena(1024);
    for (auto _ : state) {
        tasking::DependencyRegistry reg;
        for (int i = 0; i < 512; ++i) {
            auto node = std::make_shared<tasking::DepNode>();
            node->node_id = static_cast<std::uint64_t>(i + 1);
            tasking::Dep d =
                tasking::inout(&arena[static_cast<std::size_t>(i % 64) * 16], 16 * sizeof(double));
            reg.register_accesses(node, std::span<const tasking::Dep>(&d, 1));
            node->dep_released = true;
        }
    }
    state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_DependencyRegistryAccess);

// ---- in-process MPI ---------------------------------------------------------

void BM_MpiPingPong(benchmark::State& state) {
    const std::size_t bytes = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        mpi::World world(2);
        world.run([bytes](mpi::Communicator& comm) {
            std::vector<char> buf(bytes);
            for (int i = 0; i < 50; ++i) {
                if (comm.rank() == 0) {
                    comm.send(buf.data(), bytes, 1, 0);
                    comm.recv(buf.data(), bytes, 1, 1);
                } else {
                    comm.recv(buf.data(), bytes, 0, 0);
                    comm.send(buf.data(), bytes, 0, 1);
                }
            }
        });
    }
    state.SetBytesProcessed(state.iterations() * 100 * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MpiPingPong)->Arg(64)->Arg(65536);

void BM_MpiAllreduce(benchmark::State& state) {
    const int ranks = static_cast<int>(state.range(0));
    for (auto _ : state) {
        mpi::World world(ranks);
        world.run([](mpi::Communicator& comm) {
            double in = comm.rank(), out = 0;
            for (int i = 0; i < 20; ++i) comm.allreduce(&in, &out, 1, mpi::Op::Sum);
        });
    }
    state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_MpiAllreduce)->Arg(2)->Arg(4);

// ---- TAMPI -------------------------------------------------------------------

void BM_TampiTaskPipeline(benchmark::State& state) {
    for (auto _ : state) {
        mpi::World world(2);
        world.run([](mpi::Communicator& comm) {
            tasking::Runtime rt(2);
            tampi::Tampi tampi(rt);
            const int peer = 1 - comm.rank();
            std::vector<double> send_buf(32), recv_buf(32);
            for (int i = 0; i < 32; ++i) {
                const auto idx = static_cast<std::size_t>(i);
                rt.submit([&, i, idx] { tampi.isend(comm, &send_buf[idx], 8, peer, i); },
                          {tasking::in(&send_buf[idx], 8)});
                rt.submit([&, i, idx] { tampi.irecv(comm, &recv_buf[idx], 8, peer, i); },
                          {tasking::out(&recv_buf[idx], 8)});
            }
            rt.taskwait();
        });
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_TampiTaskPipeline);

// ---- AMR kernels (the calibration kernels) -----------------------------------

void BM_Stencil7(benchmark::State& state) {
    const int n = static_cast<int>(state.range(0));
    amr::BlockShape shape{n, n, n, 4};
    amr::Block block(amr::BlockKey{}, shape);
    block.init_cells(Box{{0, 0, 0}, {1, 1, 1}}, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(block.stencil7(0, 4));
    }
    state.SetItemsProcessed(state.iterations() * n * n * n * 4);
}
BENCHMARK(BM_Stencil7)->Arg(10)->Arg(12)->Arg(18);

void BM_PackFaceSameLevel(benchmark::State& state) {
    amr::BlockShape shape{12, 12, 12, 40};
    amr::Block block(amr::BlockKey{}, shape);
    block.init_cells(Box{{0, 0, 0}, {1, 1, 1}}, 1);
    const amr::FaceGeom geom{0, +1, amr::FaceRel::Same, 0};
    std::vector<double> buf(static_cast<std::size_t>(block.face_value_count(geom, 40)));
    for (auto _ : state) {
        block.pack_face(geom, 0, 40, buf);
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(buf.size()) * 8);
}
BENCHMARK(BM_PackFaceSameLevel);

void BM_BlockSplit(benchmark::State& state) {
    amr::BlockShape shape{12, 12, 12, 40};
    amr::Block parent(amr::BlockKey{}, shape);
    parent.init_cells(Box{{0, 0, 0}, {1, 1, 1}}, 1);
    amr::Block child(amr::BlockKey{}, shape);
    for (auto _ : state) {
        for (int octant = 0; octant < 8; ++octant) child.fill_from_parent(parent, octant);
        benchmark::DoNotOptimize(child.data());
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_BlockSplit);

// ---- DES engine ---------------------------------------------------------------

void BM_SimulatorEventThroughput(benchmark::State& state) {
    for (auto _ : state) {
        sim::ClusterSpec cluster;
        cluster.nodes = 4;
        cluster.cores_per_node = 4;
        cluster.ranks_per_node = 4;
        cluster.cores_per_socket = 4;
        sim::Simulator simulator(cluster, sim::CostModel{});
        for (int i = 0; i < 4096; ++i) {
            simulator.submit(simulator.new_task(i % 16, amr::PhaseKind::Stencil, 100));
        }
        simulator.run_until_drained();
        benchmark::DoNotOptimize(simulator.global_time());
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SimulatorEventThroughput);

}  // namespace

BENCHMARK_MAIN();
