// Vendored pre-work-stealing scheduler (repo history: the global-mutex
// runtime this PR replaced), renamespaced to seed_baseline so the
// microbenchmark can race it against the current dfamr::tasking runtime
// with identical task machinery. Benchmark-only: not part of the library.

#include "runtime.hpp"

#include <chrono>
#include <exception>

#include "common/error.hpp"
#include "verify_hook.hpp"

namespace seed_baseline::dfamr::tasking {

namespace {
thread_local Runtime* tls_runtime = nullptr;
thread_local Task* tls_task = nullptr;

constexpr auto kIdleWait = std::chrono::microseconds(200);
}  // namespace

Runtime* Runtime::current() { return tls_runtime; }
Task* Runtime::current_task() { return tls_task; }

Runtime::Runtime(int workers) {
    DFAMR_REQUIRE(workers >= 0, "worker count must be non-negative");
    root_.label = "<root>";
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

Runtime::~Runtime() {
    try {
        taskwait();
    } catch (...) {
        // A task error surfacing during teardown cannot be rethrown further.
    }
    {
        std::unique_lock lock(graph_mutex_);
        if (verify_ != nullptr) verify_->on_shutdown();
        shutting_down_ = true;
    }
    ready_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void Runtime::set_verify_hook(VerifyHook* hook) {
    std::unique_lock lock(graph_mutex_);
    verify_ = hook;
    registry_.set_verify_hook(hook);
}

void Runtime::submit(std::function<void()> body, std::vector<Dep> deps, const char* label) {
    auto task = std::make_shared<Task>();
    task->body = std::move(body);
    task->deps = std::move(deps);
    task->label = label;

    const bool nested = (tls_runtime == this && tls_task != nullptr);
    task->parent = nested ? tls_task : &root_;
    if (nested) task->parent_ref = tls_task->shared_from_this();

    std::unique_lock lock(graph_mutex_);
    task->node_id = next_task_id_++;
    live_hold_.emplace(task->node_id, task);
    ++live_tasks_;
    ++stats_.tasks_submitted;
    for (Task* p = task->parent; p != nullptr; p = p->parent) ++p->descendants_live;
    if (verify_ != nullptr) {
        verify_->on_node_registered(*task, task->label, std::span<const Dep>(task->deps));
    }
    stats_.edges_added += static_cast<std::uint64_t>(
        registry_.register_accesses(task, std::span<const Dep>(task->deps)));
    if (task->pred_count == 0) enqueue_ready(task, lock);
}

void Runtime::enqueue_ready(TaskPtr task, std::unique_lock<std::mutex>& lock) {
    (void)lock;  // must hold graph_mutex_
    ready_queue_.push_back(std::move(task));
    ready_cv_.notify_one();
}

void Runtime::run_body(const TaskPtr& task) {
    Runtime* prev_rt = tls_runtime;
    Task* prev_task = tls_task;
    tls_runtime = this;
    tls_task = task.get();
    // verify_ is only mutated while no tasks are in flight (attach-before-
    // submit contract), so the unlocked reads here are safe.
    if (verify_ != nullptr) {
        verify_->on_body_start(*task, task->label, std::span<const Dep>(task->deps));
    }
    try {
        if (task->body) task->body();
    } catch (...) {
        std::unique_lock lock(graph_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
    }
    if (verify_ != nullptr) verify_->on_body_end(*task);
    tls_runtime = prev_rt;
    tls_task = prev_task;
}

void Runtime::execute(const TaskPtr& task) {
    run_body(task);
    TaskPtr next = finish_body(task);
    // Immediate-successor chain: run just-readied successors on this thread
    // so they reuse the producer's warm cache (OmpSs-2 locality heuristic).
    while (next) {
        TaskPtr chained = next;
        run_body(chained);
        next = finish_body(chained);
    }
}

Runtime::TaskPtr Runtime::finish_body(const TaskPtr& task) {
    std::unique_lock lock(graph_mutex_);
    task->body_done = true;
    ++stats_.tasks_executed;
    return complete_if_ready(task, lock, /*allow_immediate=*/true);
}

Runtime::TaskPtr Runtime::complete_if_ready(const TaskPtr& task, std::unique_lock<std::mutex>& lock,
                                            bool allow_immediate) {
    if (task->completed || !task->body_done || task->external_events > 0) return nullptr;
    task->completed = true;
    task->dep_released = true;
    if (verify_ != nullptr) verify_->on_node_released(*task);

    for (Task* p = task->parent; p != nullptr; p = p->parent) --p->descendants_live;

    TaskPtr immediate;
    for (DepNode* succ_node : task->successors) {
        auto* succ = static_cast<Task*>(succ_node);
        if (--succ->pred_count == 0) {
            TaskPtr sp = succ->shared_from_this();
            if (allow_immediate && !immediate) {
                immediate = std::move(sp);
                ++stats_.immediate_successor_hits;
            } else {
                enqueue_ready(std::move(sp), lock);
            }
        }
    }
    task->successors.clear();

    --live_tasks_;
    live_hold_.erase(task->node_id);
    if (--gc_countdown_ == 0) {
        gc_countdown_ = kGcPeriod;
        registry_.garbage_collect();
    }
    idle_cv_.notify_all();
    return immediate;
}

bool Runtime::try_execute_one() {
    TaskPtr task;
    {
        std::unique_lock lock(graph_mutex_);
        if (ready_queue_.empty()) return false;
        task = std::move(ready_queue_.front());
        ready_queue_.pop_front();
    }
    execute(task);
    return true;
}

void Runtime::worker_loop(int /*worker_index*/) {
    tls_runtime = this;
    for (;;) {
        TaskPtr task;
        {
            std::unique_lock lock(graph_mutex_);
            while (ready_queue_.empty() && !shutting_down_) {
                if (has_polling_.load(std::memory_order_relaxed)) {
                    lock.unlock();
                    run_polling_services();
                    lock.lock();
                    if (!ready_queue_.empty() || shutting_down_) break;
                    ready_cv_.wait_for(lock, kIdleWait);
                } else {
                    ready_cv_.wait(lock);
                }
            }
            if (ready_queue_.empty()) {
                if (shutting_down_) return;
                continue;
            }
            task = std::move(ready_queue_.front());
            ready_queue_.pop_front();
        }
        execute(task);
    }
    // not reached
}

bool Runtime::run_polling_services() {
    std::unique_lock lock(polling_mutex_);
    bool progressed = false;
    for (auto it = polling_services_.begin(); it != polling_services_.end();) {
        if (it->poll()) {
            progressed = true;
            ++it;
        } else {
            it = polling_services_.erase(it);
        }
    }
    has_polling_.store(!polling_services_.empty(), std::memory_order_relaxed);
    return progressed;
}

void Runtime::wait_until(const std::function<bool()>& done) {
    for (;;) {
        {
            std::unique_lock lock(graph_mutex_);
            if (done()) return;
        }
        if (try_execute_one()) continue;
        if (has_polling_.load(std::memory_order_relaxed)) run_polling_services();
        std::unique_lock lock(graph_mutex_);
        if (done()) return;
        if (!ready_queue_.empty()) continue;
        idle_cv_.wait_for(lock, kIdleWait);
    }
}

void Runtime::report_external_error(std::exception_ptr err) {
    if (!err) return;
    std::unique_lock lock(graph_mutex_);
    if (!first_error_) first_error_ = std::move(err);
}

void Runtime::taskwait() {
    Task* ctx = (tls_runtime == this && tls_task != nullptr) ? tls_task : &root_;
    wait_until([ctx] { return ctx->descendants_live == 0; });
    std::exception_ptr err;
    {
        std::unique_lock lock(graph_mutex_);
        err = first_error_;
        first_error_ = nullptr;
    }
    if (err) std::rethrow_exception(err);
}

void Runtime::taskwait_on(std::vector<Dep> deps) {
    auto sentinel = std::make_shared<Task>();
    sentinel->label = "<taskwait-on>";
    sentinel->deps = std::move(deps);
    sentinel->parent = &root_;  // not a descendant of the caller: a plain taskwait
                                // afterwards must still be able to run it inline.
    {
        std::unique_lock lock(graph_mutex_);
        sentinel->node_id = next_task_id_++;
        live_hold_.emplace(sentinel->node_id, sentinel);
        ++live_tasks_;
        ++stats_.tasks_submitted;
        for (Task* p = sentinel->parent; p != nullptr; p = p->parent) ++p->descendants_live;
        if (verify_ != nullptr) {
            verify_->on_node_registered(*sentinel, sentinel->label,
                                        std::span<const Dep>(sentinel->deps));
        }
        stats_.edges_added += static_cast<std::uint64_t>(
            registry_.register_accesses(sentinel, std::span<const Dep>(sentinel->deps)));
        if (sentinel->pred_count == 0) enqueue_ready(sentinel, lock);
    }
    Task* raw = sentinel.get();
    wait_until([raw] { return raw->completed; });
}

Task* Runtime::increase_current_task_events(int n) {
    DFAMR_REQUIRE(tls_runtime == this && tls_task != nullptr,
                  "external events can only be registered from inside a task");
    DFAMR_REQUIRE(n > 0, "event increase must be positive");
    std::unique_lock lock(graph_mutex_);
    tls_task->external_events += n;
    return tls_task;
}

void Runtime::decrease_task_events(Task* task, int n) {
    DFAMR_REQUIRE(task != nullptr && n > 0, "invalid event decrease");
    TaskPtr next;
    {
        std::unique_lock lock(graph_mutex_);
        DFAMR_REQUIRE(task->external_events >= n, "event counter underflow");
        task->external_events -= n;
        TaskPtr sp = task->shared_from_this();
        next = complete_if_ready(sp, lock, /*allow_immediate=*/false);
        DFAMR_ASSERT(next == nullptr);
    }
    ready_cv_.notify_one();
}

void Runtime::register_polling_service(std::string name, std::function<bool()> poll) {
    std::unique_lock lock(polling_mutex_);
    polling_services_.push_back(PollingService{std::move(name), std::move(poll)});
    has_polling_.store(true, std::memory_order_relaxed);
}

void Runtime::unregister_polling_service(const std::string& name) {
    std::unique_lock lock(polling_mutex_);
    std::erase_if(polling_services_, [&](const PollingService& s) { return s.name == name; });
    has_polling_.store(!polling_services_.empty(), std::memory_order_relaxed);
}

RuntimeStats Runtime::stats() const {
    std::unique_lock lock(graph_mutex_);
    RuntimeStats snapshot = stats_;
    snapshot.edges_elided = registry_.edges_elided();
    return snapshot;
}

}  // namespace seed_baseline::dfamr::tasking
