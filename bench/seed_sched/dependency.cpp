// Vendored pre-work-stealing scheduler (repo history: the global-mutex
// runtime this PR replaced), renamespaced to seed_baseline so the
// microbenchmark can race it against the current dfamr::tasking runtime
// with identical task machinery. Benchmark-only: not part of the library.

#include "dependency.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "verify_hook.hpp"

namespace seed_baseline::dfamr::tasking {

DependencyRegistry::IntervalMap::iterator DependencyRegistry::split_at(std::uintptr_t point) {
    // Find the interval containing `point` (if any) and split it so `point`
    // becomes an interval boundary.
    auto it = intervals_.upper_bound(point);
    if (it != intervals_.begin()) {
        auto prev = std::prev(it);
        if (prev->first < point && point < prev->second.end) {
            Interval right = prev->second;  // copy writer/readers
            const std::uintptr_t right_end = prev->second.end;
            prev->second.end = point;
            right.end = right_end;
            it = intervals_.emplace_hint(it, point, std::move(right));
        }
    }
    return intervals_.lower_bound(point);
}

void DependencyRegistry::add_edge(const DepNodePtr& pred, const DepNodePtr& succ, int& added) {
    if (!pred || pred.get() == succ.get()) return;
    if (pred->dep_released) {
        // The conflicting predecessor already completed: ordering holds by
        // completion time, no edge needed. Count it so (added + elided)
        // stays deterministic for a given access sequence.
        if (pred->last_edge_marker != succ->node_id) {
            pred->last_edge_marker = succ->node_id;
            ++edges_elided_;
        }
        return;
    }
    // Dedup consecutive identical edges: a multi-interval region would
    // otherwise add one edge per covered interval.
    if (pred->last_edge_marker == succ->node_id) return;
    pred->last_edge_marker = succ->node_id;
    pred->successors.push_back(succ.get());
    ++succ->pred_count;
    ++added;
    if (verify_ != nullptr) verify_->on_edge_added(*pred, *succ);
}

int DependencyRegistry::register_accesses(const DepNodePtr& node, std::span<const Dep> deps) {
    DFAMR_REQUIRE(node != nullptr, "null dependency node");
    int added = 0;
    for (const Dep& dep : deps) {
        if (dep.region.size == 0) continue;
        const std::uintptr_t lo = dep.region.base;
        const std::uintptr_t hi = dep.region.end();

        split_at(lo);
        split_at(hi);

        auto it = intervals_.lower_bound(lo);
        std::uintptr_t cursor = lo;
        while (cursor < hi) {
            if (it == intervals_.end() || it->first > cursor) {
                // Gap [cursor, min(hi, next_start)): fresh interval, no edges.
                const std::uintptr_t gap_end =
                    (it == intervals_.end()) ? hi : std::min<std::uintptr_t>(hi, it->first);
                Interval fresh;
                fresh.end = gap_end;
                if (dep.kind == DepKind::In) {
                    fresh.readers.push_back(node);
                } else {
                    fresh.writer = node;
                }
                it = intervals_.emplace_hint(it, cursor, std::move(fresh));
                ++it;
                cursor = gap_end;
                continue;
            }
            // Existing interval starting exactly at cursor (split_at ensured
            // boundaries at lo/hi, and we iterate boundary to boundary).
            DFAMR_ASSERT(it->first == cursor && it->second.end <= hi);
            Interval& iv = it->second;
            if (dep.kind == DepKind::In) {
                add_edge(iv.writer, node, added);
                // Record as reader (avoid duplicate entry for this node).
                if (iv.readers.empty() || iv.readers.back().get() != node.get()) {
                    iv.readers.push_back(node);
                }
            } else {  // Out / InOut: order after the last writer and all readers.
                // With readers present the writer edge is subsumed: every
                // reader is already ordered after that writer.
                if (iv.readers.empty()) add_edge(iv.writer, node, added);
                for (const DepNodePtr& reader : iv.readers) add_edge(reader, node, added);
                iv.writer = node;
                iv.readers.clear();
            }
            cursor = iv.end;
            ++it;
        }
    }
    return added;
}

void DependencyRegistry::garbage_collect() {
    for (auto it = intervals_.begin(); it != intervals_.end();) {
        Interval& iv = it->second;
        std::erase_if(iv.readers, [](const DepNodePtr& r) { return r->dep_released; });
        if (iv.writer && iv.writer->dep_released && iv.readers.empty()) {
            it = intervals_.erase(it);
        } else {
            ++it;
        }
    }
}

}  // namespace seed_baseline::dfamr::tasking
