// Vendored pre-work-stealing scheduler (repo history: the global-mutex
// runtime this PR replaced), renamespaced to seed_baseline so the
// microbenchmark can race it against the current dfamr::tasking runtime
// with identical task machinery. Benchmark-only: not part of the library.

// Data-flow dependency model (OmpSs-2-style region dependencies).
//
// A dependency is an access kind (in / out / inout) on a byte region.
// Multidependencies are expressed by passing several Dep entries for one
// task — exactly how the paper expresses a send task that reads every
// packed section of its aggregated message buffer.
//
// The DependencyRegistry computes predecessor/successor edges between
// generic DepNodes, so the same semantics drive both the real tasking
// runtime (tasking::Runtime) and the discrete-event simulator's DAG builder
// (sim::DagBuilder). This guarantees the simulated task graphs have the
// dependency structure the real runtime would enforce.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace seed_baseline::dfamr::tasking {

/// A byte range [base, base+size) used as a dependency region.
///
/// Empty regions (size == 0) are well-defined and inert: they overlap
/// nothing — not even an empty region at the same base — and registering
/// one imposes no ordering and creates no interval bookkeeping. A task
/// whose deps list is empty (or contains only empty regions) is therefore
/// immediately ready and unordered with respect to every other task.
/// DepLint checks against the same model: empty regions never conflict.
struct Region {
    std::uintptr_t base = 0;
    std::size_t size = 0;

    Region() = default;
    Region(const void* p, std::size_t n) : base(reinterpret_cast<std::uintptr_t>(p)), size(n) {}
    /// Synthetic region from an abstract id space (DES mode has no real buffers).
    static Region synthetic(std::uint64_t id, std::size_t size = 1) {
        Region r;
        r.base = id;
        r.size = size;
        return r;
    }

    std::uintptr_t end() const { return base + size; }
    bool empty() const { return size == 0; }
    bool overlaps(const Region& o) const { return base < o.end() && o.base < end(); }
};

enum class DepKind : std::uint8_t { In, Out, InOut };

struct Dep {
    DepKind kind = DepKind::In;
    Region region;
};

inline Dep in(const void* p, std::size_t n) { return {DepKind::In, Region(p, n)}; }
inline Dep out(const void* p, std::size_t n) { return {DepKind::Out, Region(p, n)}; }
inline Dep inout(const void* p, std::size_t n) { return {DepKind::InOut, Region(p, n)}; }

template <typename T>
Dep in(std::span<const T> s) {
    return in(s.data(), s.size_bytes());
}
template <typename T>
Dep out(std::span<T> s) {
    return out(s.data(), s.size_bytes());
}
template <typename T>
Dep inout(std::span<T> s) {
    return inout(s.data(), s.size_bytes());
}

inline Dep in_id(std::uint64_t id) { return {DepKind::In, Region::synthetic(id)}; }
inline Dep out_id(std::uint64_t id) { return {DepKind::Out, Region::synthetic(id)}; }
inline Dep inout_id(std::uint64_t id) { return {DepKind::InOut, Region::synthetic(id)}; }

/// Node in a dependency graph. tasking::Task and sim::DagTask derive from it.
///
/// Thread-safety: all fields are protected by the owning component's lock
/// (tasking::Runtime's graph mutex, or nothing in the single-threaded DES).
struct DepNode {
    std::uint64_t node_id = 0;
    /// Number of unsatisfied predecessor edges.
    int pred_count = 0;
    /// Nodes whose pred_count must drop when this node releases its deps.
    std::vector<DepNode*> successors;
    /// True once the node has released its dependencies.
    bool dep_released = false;
    /// Edge-dedup marker: the last successor node_id an edge was added for.
    std::uint64_t last_edge_marker = UINT64_MAX;

    virtual ~DepNode() = default;
};

using DepNodePtr = std::shared_ptr<DepNode>;

class VerifyHook;

/// Tracks last-writer / readers-since-write per byte interval and wires
/// reader-after-write, write-after-read and write-after-write edges.
///
/// Not thread-safe; the caller serializes access.
class DependencyRegistry {
public:
    /// Registers the accesses of `node`, adding predecessor edges from every
    /// conflicting earlier node that has not yet released its dependencies.
    /// Empty regions are skipped (see Region). Returns the number of
    /// predecessor edges added.
    int register_accesses(const DepNodePtr& node, std::span<const Dep> deps);

    /// Number of distinct byte intervals currently tracked (for tests/stats).
    std::size_t interval_count() const { return intervals_.size(); }

    /// Cumulative count of edges elided because the conflicting predecessor
    /// had already released its dependencies (the ordering then holds by
    /// completion time instead of by an explicit edge). Together with the
    /// added-edge count this makes conflict accounting deterministic:
    /// added + elided is a property of the access sequence, not of worker
    /// timing. Best-effort: conflicts whose predecessor interval was already
    /// garbage-collected leave no trace and are not counted.
    std::uint64_t edges_elided() const { return edges_elided_; }

    /// Attaches a verification observer notified of every edge the registry
    /// wires (nullptr detaches; zero-cost when detached).
    void set_verify_hook(VerifyHook* hook) { verify_ = hook; }

    /// Drops bookkeeping for regions nobody references anymore. The registry
    /// prunes intervals whose writer and readers have all released.
    void garbage_collect();

private:
    struct Interval {
        std::uintptr_t end = 0;
        DepNodePtr writer;              // last writer (may be released)
        std::vector<DepNodePtr> readers;  // readers since last write
    };

    // Keyed by interval start; intervals are disjoint and sorted.
    using IntervalMap = std::map<std::uintptr_t, Interval>;

    /// Splits intervals so that `r`'s boundaries coincide with interval
    /// boundaries, and returns the first interval at-or-after r.base.
    IntervalMap::iterator split_at(std::uintptr_t point);

    void add_edge(const DepNodePtr& pred, const DepNodePtr& succ, int& added);

    IntervalMap intervals_;
    std::uint64_t edges_elided_ = 0;
    VerifyHook* verify_ = nullptr;
};

}  // namespace seed_baseline::dfamr::tasking
