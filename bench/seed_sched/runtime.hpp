// Vendored pre-work-stealing scheduler (repo history: the global-mutex
// runtime this PR replaced), renamespaced to seed_baseline so the
// microbenchmark can race it against the current dfamr::tasking runtime
// with identical task machinery. Benchmark-only: not part of the library.

// Data-flow tasking runtime — the OmpSs-2 substitute.
//
// Features used by the paper's parallelization and provided here:
//  * tasks with in/out/inout region dependencies and multidependencies
//  * nested tasks and taskwait (waits for all descendants of the caller)
//  * taskwait with dependencies (OmpSs-2 `taskwait in(...)`), used by the
//    delayed-checksum optimization of §IV-C
//  * external events (the mechanism TAMPI uses to bind MPI request
//    completion to task dependency release): a task's dependencies are
//    released only when its body has finished AND its event counter is zero
//  * polling services (nanos6-style): callbacks invoked by idle workers,
//    used by the TAMPI progress engine
//  * immediate-successor scheduling: a worker that completes a task runs a
//    just-readied successor next, reusing warm cache state (the paper's
//    stated cause of the IPC improvement)
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dependency.hpp"

namespace seed_baseline::dfamr::tasking {

class Runtime;

/// A task instance. Public only as an opaque handle for the external-events
/// API (TaskEventCounter) — users interact through Runtime.
struct Task final : DepNode, std::enable_shared_from_this<Task> {
    std::function<void()> body;
    std::vector<Dep> deps;
    const char* label = "";

    Task* parent = nullptr;
    /// Keeps the parent alive while children may still walk the ancestor
    /// chain (the root task is owned by the Runtime and has no ref).
    std::shared_ptr<Task> parent_ref;
    /// Live descendants (children + their descendants); guarded by graph mutex.
    std::int64_t descendants_live = 0;
    /// Body finished executing.
    bool body_done = false;
    /// Outstanding external events (TAMPI-bound MPI requests).
    int external_events = 0;
    /// Fully complete: body done, events zero, deps released.
    bool completed = false;
};

/// Aggregate runtime counters (observable by tests and benches).
///
/// Consistency: every field is mutated and snapshotted under the graph
/// mutex, so stats() returns one coherent point-in-time view. Note that
/// `edges_added` alone is timing-dependent with workers > 0: a conflicting
/// predecessor that completes before the successor is submitted needs no
/// edge. `edges_added + edges_elided` is the timing-independent conflict
/// count (up to garbage collection, see DependencyRegistry::edges_elided).
struct RuntimeStats {
    std::uint64_t tasks_submitted = 0;
    std::uint64_t tasks_executed = 0;
    std::uint64_t immediate_successor_hits = 0;
    std::uint64_t edges_added = 0;
    std::uint64_t edges_elided = 0;
};

class Runtime {
public:
    /// Spawns `workers` worker threads. `workers == 0` is valid: tasks then
    /// execute inline on the submitting thread at taskwait points — useful
    /// for deterministic unit tests.
    explicit Runtime(int workers);
    ~Runtime();

    Runtime(const Runtime&) = delete;
    Runtime& operator=(const Runtime&) = delete;

    /// Submits a task with data-flow dependencies. May be called from the
    /// owning thread or from inside a task (nesting).
    void submit(std::function<void()> body, std::vector<Dep> deps, const char* label = "");

    /// Waits until every descendant task of the calling context completed.
    void taskwait();

    /// OmpSs-2 "taskwait with dependencies": waits only until the listed
    /// regions' current producers complete, without draining the whole graph.
    void taskwait_on(std::vector<Dep> deps);

    /// --- External events (TAMPI integration) ---------------------------
    /// Must be called from inside a task body: registers `n` pending events
    /// on the current task and returns its handle for later decrease.
    Task* increase_current_task_events(int n);
    /// May be called from any thread (e.g. the progress engine).
    void decrease_task_events(Task* task, int n);

    /// Cooperative wait: executes ready tasks and runs polling services on
    /// the calling thread until `done()` returns true. This is the
    /// task-scheduling-point mechanism behind blocking-mode TAMPI: the
    /// worker is never blocked, it helps with other tasks instead.
    void help_until(const std::function<bool()>& done) { wait_until(done); }

    /// Registers a polling service run periodically by idle workers and by
    /// waiting threads. Return value `true` keeps the service registered.
    void register_polling_service(std::string name, std::function<bool()> poll);
    void unregister_polling_service(const std::string& name);

    /// Records an error raised outside any task body — e.g. by a progress
    /// engine detecting a communication timeout. Surfaces at the next
    /// taskwait exactly like a task-body exception, instead of hanging the
    /// worker pool on a task that will never complete.
    void report_external_error(std::exception_ptr err);

    /// The runtime the calling thread is currently executing a task of
    /// (nullptr outside of tasks).
    static Runtime* current();
    /// The task the calling thread is executing (nullptr outside of tasks).
    static Task* current_task();

    int worker_count() const { return static_cast<int>(workers_.size()); }
    RuntimeStats stats() const;

    /// Attaches a verification observer (see tasking/verify_hook.hpp) that
    /// sees every node registration, edge, release, body execution window,
    /// and the shutdown. Attach before submitting tasks; detach with
    /// nullptr. Zero-cost when detached (a null-pointer check per event).
    void set_verify_hook(VerifyHook* hook);

private:
    using TaskPtr = std::shared_ptr<Task>;

    void worker_loop(int worker_index);
    /// Runs the task body with the thread-local context + verify hooks set.
    void run_body(const TaskPtr& task);
    /// Executes one ready task if available; returns true if one ran.
    bool try_execute_one();
    void execute(const TaskPtr& task);
    /// Marks body done / event-complete and releases deps if fully complete.
    /// Returns an immediate successor made ready by the release (if any).
    TaskPtr finish_body(const TaskPtr& task);
    TaskPtr complete_if_ready(const TaskPtr& task, std::unique_lock<std::mutex>& lock,
                              bool allow_immediate);
    void enqueue_ready(TaskPtr task, std::unique_lock<std::mutex>& lock);
    /// Runs all polling services once. Returns true if any made progress.
    bool run_polling_services();
    /// Help-execute tasks / poll until `done()` is true.
    void wait_until(const std::function<bool()>& done);

    mutable std::mutex graph_mutex_;
    std::condition_variable ready_cv_;   // ready queue non-empty or shutdown
    std::condition_variable idle_cv_;    // completion events (taskwait wake-ups)

    DependencyRegistry registry_;
    std::deque<TaskPtr> ready_queue_;
    // Owns every submitted-but-incomplete task. The registry alone is not a
    // reliable owner: a later writer on the same region supersedes a pending
    // task's interval entry and would drop its last reference while
    // predecessor edges still point at it.
    std::unordered_map<std::uint64_t, TaskPtr> live_hold_;
    std::uint64_t next_task_id_ = 1;
    std::uint64_t live_tasks_ = 0;
    std::uint64_t gc_countdown_ = kGcPeriod;
    static constexpr std::uint64_t kGcPeriod = 256;

    Task root_;  // implicit task for the owning (non-worker) thread

    std::vector<std::thread> workers_;
    bool shutting_down_ = false;
    std::exception_ptr first_error_;

    struct PollingService {
        std::string name;
        std::function<bool()> poll;
    };
    std::mutex polling_mutex_;
    std::vector<PollingService> polling_services_;
    std::atomic<bool> has_polling_{false};

    RuntimeStats stats_;
    VerifyHook* verify_ = nullptr;
};

}  // namespace seed_baseline::dfamr::tasking
