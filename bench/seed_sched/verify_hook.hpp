// Vendored pre-work-stealing scheduler (repo history: the global-mutex
// runtime this PR replaced), renamespaced to seed_baseline so the
// microbenchmark can race it against the current dfamr::tasking runtime
// with identical task machinery. Benchmark-only: not part of the library.

// Verification hook: the observation interface DepLint (src/verify) uses to
// watch the tasking layer without the tasking layer depending on it.
//
// The runtime and the dependency registry each hold a single raw VerifyHook
// pointer that is null in normal operation — every call site is guarded by a
// branch on that pointer, so the hook is zero-cost when no verifier is
// attached. When attached, the hook sees the complete dependency history:
// every registered node with its declared accesses, every happens-before
// edge the registry wires (including the ones it later drops on completion
// or garbage collection), every dependency release, and the body execution
// window of every task.
//
// Locking contract:
//  * on_node_registered / on_edge_added / on_node_released / on_shutdown are
//    invoked with the owning component's lock held (the Runtime's graph
//    mutex, or nothing for a standalone DependencyRegistry). Calls are
//    serialized in a single total order consistent with the runtime's own
//    ordering of submissions and releases. Implementations must not call
//    back into the runtime.
//  * on_body_start / on_body_end are invoked on the executing thread,
//    outside any runtime lock, bracketing the task body (including bodies
//    run through the immediate-successor chain and inline execution).
#pragma once

#include <span>

#include "dependency.hpp"

namespace seed_baseline::dfamr::tasking {

class VerifyHook {
public:
    virtual ~VerifyHook() = default;

    /// A node entered the dependency graph. `deps` is the declared access
    /// list (empty for pure computation tasks, which impose no ordering).
    virtual void on_node_registered(const DepNode& node, const char* label,
                                    std::span<const Dep> deps) {
        (void)node;
        (void)label;
        (void)deps;
    }

    /// The registry wired a happens-before edge pred -> succ.
    virtual void on_edge_added(const DepNode& pred, const DepNode& succ) {
        (void)pred;
        (void)succ;
    }

    /// The node released its dependencies (body finished and external events
    /// drained). After this, the registry may elide edges from this node.
    virtual void on_node_released(const DepNode& node) { (void)node; }

    /// The executing thread is about to run / has finished the task body.
    virtual void on_body_start(const DepNode& node, const char* label,
                               std::span<const Dep> deps) {
        (void)node;
        (void)label;
        (void)deps;
    }
    virtual void on_body_end(const DepNode& node) { (void)node; }

    /// The runtime drained its final taskwait and is about to shut down.
    virtual void on_shutdown() {}
};

}  // namespace seed_baseline::dfamr::tasking
