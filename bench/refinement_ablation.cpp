// §IV-B ablation — "Our taskification strategy removes nearly 80% of the
// total refinement time compared to our previous sequential refinement."
//
// Runs the TAMPI+OSS variant on 4 nodes with the refinement data operations
// (split/coarsen copies, block exchange) taskified vs sequential, and
// reports the reduction. Also reports the split/merge and exchange shares
// of the refinement busy time (paper: ~25% and ~70% respectively).
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace dfamr;
using namespace dfamr::bench;

int main() {
    print_header("Refinement ablation: taskified vs sequential refinement (TAMPI+OSS, 4 nodes)",
                 "Sala, Rico, Beltran (CLUSTER 2020), §IV-B claims");
    const CostModel costs;
    const int nodes = 4;
    const Vec3i grid = sim::factor3(48 * nodes);
    const ClusterSpec cluster = marenostrum(nodes, 4);

    auto run_one = [&](bool taskify) {
        Config cfg = with_paper_tampi_options(table1_config());
        sim::arrange(cfg, grid, cluster.total_ranks());
        cfg.taskify_refinement = taskify;
        return sim::run_simulated(cfg, Variant::TampiOss, cluster, costs);
    };
    const SimResult serial = run_one(false);
    const SimResult tasked = run_one(true);

    TextTable table({"refinement mode", "Total(s)", "Refine(s)", "NoRefine(s)"});
    table.add_row({"sequential (pre-paper)", TextTable::num(serial.total_s, 4),
                   TextTable::num(serial.refine_s, 4), TextTable::num(serial.non_refine_s(), 4)});
    table.add_row({"taskified (§IV-B)", TextTable::num(tasked.total_s, 4),
                   TextTable::num(tasked.refine_s, 4), TextTable::num(tasked.non_refine_s(), 4)});
    table.print(std::cout);

    const double reduction = 100.0 * (serial.refine_s - tasked.refine_s) / serial.refine_s;
    std::printf("\nrefinement time reduction from taskification: %.1f%% (paper: ~80%%)\n",
                reduction);

    // Phase composition of the sequential refinement (paper: split/coarsen
    // copies ~25%, exchange ~70% of refinement time).
    auto busy = [&](const SimResult& r, amr::PhaseKind k) {
        auto it = r.stats.busy_ns_by_kind.find(k);
        return it == r.stats.busy_ns_by_kind.end() ? 0.0 : it->second * 1e-9;
    };
    const double split_merge = busy(serial, amr::PhaseKind::RefineSplit) +
                               busy(serial, amr::PhaseKind::RefineMerge);
    const double exchange = busy(serial, amr::PhaseKind::RefineExchange) +
                            busy(serial, amr::PhaseKind::LoadBalance);
    const double control = busy(serial, amr::PhaseKind::Control);
    const double total_busy = split_merge + exchange + control;
    if (total_busy > 0) {
        std::printf("sequential refinement busy-time composition:\n");
        std::printf("  split/coarsen copies : %.1f%% (paper: ~25%%)\n",
                    100.0 * split_merge / total_busy);
        std::printf("  exchange + balance   : %.1f%% (paper: ~70%%)\n",
                    100.0 * exchange / total_busy);
        std::printf("  control              : %.1f%%\n", 100.0 * control / total_busy);
    }
    return 0;
}
