// §IV-C ablation — the delayed checksum: validating the PREVIOUS stage's
// checksum under an OmpSs-2 taskwait-with-dependencies instead of draining
// the whole task graph at every checksum stage.
//
// Reports TAMPI+OSS non-refinement time with the optimization on/off at
// several node counts. The gain grows with the node count (the drained
// barrier includes an allreduce across every rank).
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace dfamr;
using namespace dfamr::bench;

int main(int argc, char** argv) {
    print_header("Checksum ablation: §IV-C delayed validation on/off (TAMPI+OSS)",
                 "Sala, Rico, Beltran (CLUSTER 2020), §IV-C");
    int max_nodes = 64;
    if (argc > 1) max_nodes = std::atoi(argv[1]);
    const CostModel costs;

    TextTable table({"Nodes", "NoRefine eager (s)", "NoRefine delayed (s)", "gain"});
    for (int nodes = 4; nodes <= max_nodes; nodes *= 4) {
        const Vec3i grid = sim::factor3(48 * nodes);
        const ClusterSpec cluster = marenostrum(nodes, 4);
        auto run_one = [&](bool delayed) {
            Config cfg = weak_scaling_config();
            sim::arrange(cfg, grid, cluster.total_ranks());
            cfg.send_faces = true;
            cfg.separate_buffers = true;
            cfg.max_comm_tasks = 8;
            cfg.delayed_checksum = delayed;
            cfg.checksum_freq = 2;  // checksum-heavy to expose the barrier cost
            return sim::run_simulated(cfg, Variant::TampiOss, cluster, costs);
        };
        const SimResult eager = run_one(false);
        const SimResult delayed = run_one(true);
        table.add_row({std::to_string(nodes), TextTable::num(eager.non_refine_s(), 4),
                       TextTable::num(delayed.non_refine_s(), 4),
                       TextTable::num(eager.non_refine_s() / delayed.non_refine_s(), 3) + "x"});
    }
    table.print(std::cout);
    std::printf("\nexpected: the delayed variant is never slower and its advantage grows\n"
                "with the node count (larger allreduce latency hidden by the pipeline).\n");
    return 0;
}
