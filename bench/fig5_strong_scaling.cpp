// Figure 5 — strong scaling: throughput speedup (vs MPI-only on 1 node) and
// efficiency from 1 to 256 nodes with a constant problem size.
//
// Paper setup: four-spheres, 10^3-cell 40-variable blocks; the block grid is
// the 256-node weak-scaling mesh, divided by 16 for the 1-8 node runs
// (memory limits). Speedups are computed from throughput so the two input
// sizes combine cleanly.
//
// Expected shape: TAMPI+OSS 1.60x over MPI-only at 256 nodes with ~0.88
// efficiency; fork-join slightly above MPI-only in the 8..128-node range and
// below it at 256 nodes; MPI-only's efficiency plateaus between 8 and 32
// nodes and drops from 64 nodes on.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace dfamr;
using namespace dfamr::bench;

int main(int argc, char** argv) {
    print_header("Figure 5: strong scaling 1..256 nodes (speedup + efficiency)",
                 "Sala, Rico, Beltran (CLUSTER 2020), Fig. 5");
    int max_nodes = 256;
    if (argc > 1) max_nodes = std::atoi(argv[1]);

    const CostModel costs;
    const Config base = strong_scaling_config();

    // The fixed problem: the 256-node weak-scaling mesh (48*256 = 12288
    // blocks); divided by 16 on 1-8 nodes, exactly like the paper.
    const Vec3i big_grid = sim::factor3(48 * 256);
    const Vec3i small_grid = sim::factor3(48 * 256 / 16);

    struct Setup {
        Variant variant;
        int ranks_per_node;
        const char* name;
    };
    const Setup setups[] = {
        {Variant::MpiOnly, 48, "MPI-only"},
        {Variant::ForkJoin, 4, "MPI+OMP"},
        {Variant::TampiOss, 4, "TAMPI+OSS"},
    };

    std::map<std::string, std::map<int, double>> gflops;
    TextTable table({"Nodes", "Variant", "Blocks", "Total(s)", "GFLOPS", "Speedup", "Eff."});
    std::vector<int> node_counts;
    for (int n = 1; n <= max_nodes; n *= 2) node_counts.push_back(n);

    for (const Setup& s : setups) {
        for (int nodes : node_counts) {
            const Vec3i grid = nodes <= 8 ? small_grid : big_grid;
            const SimResult r = run_point(base, s.variant, nodes, s.ranks_per_node, grid, costs);
            gflops[s.name][nodes] = r.gflops();
            const double speedup = gflops[s.name][nodes] / gflops["MPI-only"][1];
            const double eff = gflops[s.name][nodes] / (gflops[s.name][1] * nodes);
            table.add_row({std::to_string(nodes), s.name,
                           std::to_string(static_cast<long long>(grid.product())),
                           TextTable::num(r.total_s, 4), TextTable::num(r.gflops(), 1),
                           TextTable::num(speedup, 2), TextTable::num(eff, 3)});
        }
    }
    table.print(std::cout);

    if (max_nodes >= 256) {
        std::printf("\nTAMPI+OSS vs MPI-only @256 nodes: %.2fx (paper: 1.60x)\n",
                    gflops["TAMPI+OSS"][256] / gflops["MPI-only"][256]);
    }
    std::printf("paper: TAMPI+OSS 0.88 efficiency @256 nodes; fork-join crosses below\n"
                "MPI-only at 256 nodes after being slightly ahead from 8 to 128.\n");
    return 0;
}
