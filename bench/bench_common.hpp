// Shared setup for the table/figure benches: the paper's experiment
// configurations (run lengths scaled for the DES budget — every deviation
// from the paper's parameters is listed in EXPERIMENTS.md), cluster
// builders, and result helpers.
#pragma once

#include <cstdio>
#include <string>

#include "amr/config.hpp"
#include "sim/run_sim.hpp"

namespace dfamr::bench {

using amr::Config;
using amr::Variant;
using sim::ClusterSpec;
using sim::CostModel;
using sim::SimResult;

/// MareNostrum4-like node (paper §V): 2 x 24-core Xeon 8160.
inline ClusterSpec marenostrum(int nodes, int ranks_per_node) {
    ClusterSpec c;
    c.nodes = nodes;
    c.cores_per_node = 48;
    c.cores_per_socket = 24;
    c.ranks_per_node = ranks_per_node;
    return c;
}

/// Applies the paper's TAMPI+OSS communication options (§V-B/§V-C: eight
/// communication tasks per direction and neighbor, separate buffers, and
/// the delayed checksum enabled by OmpSs-2).
inline Config with_paper_tampi_options(Config cfg) {
    cfg.send_faces = true;
    cfg.separate_buffers = true;
    cfg.max_comm_tasks = 8;
    cfg.delayed_checksum = true;
    return cfg;
}

/// Table I problem: the single-sphere input on 4 nodes. Paper run length:
/// 20 timesteps x 60 stages (18^3-cell blocks, 60 variables, refinement
/// every 5 timesteps, checksum every 10 stages). Scaled here to
/// 10 timesteps x 6 stages with checksum every 3 stages (same block/variable
/// sizes, same refinement cadence).
inline Config table1_config() {
    Config cfg = amr::single_sphere_input();
    cfg.num_tsteps = 10;
    cfg.stages_per_ts = 6;
    cfg.checksum_freq = 3;
    cfg.refine_freq = 5;
    cfg.num_refine = 3;
    cfg.block_change = 1;
    cfg.objects[0].move = {0.8 / cfg.num_tsteps, 0.8 / cfg.num_tsteps, 0.8 / cfg.num_tsteps};
    return cfg;
}

/// Weak-scaling problem (Fig. 4 / Table II): the four-spheres input with
/// 12^3-cell, 40-variable blocks. Paper run length: 99 timesteps x 40
/// stages, refinement every 5 timesteps (= 200 stages per refinement
/// phase), checksum every 10 stages. Scaled here to 5 timesteps x 10 stages
/// with refinement every 5 timesteps (50 stages per phase) and checksum
/// every 5 stages — the refinement share of the total is therefore larger
/// than the paper's ~8% (see EXPERIMENTS.md).
inline Config weak_scaling_config() {
    Config cfg = amr::four_spheres_input();
    cfg.num_tsteps = 5;
    cfg.stages_per_ts = 10;
    cfg.checksum_freq = 5;
    cfg.refine_freq = 5;
    cfg.num_refine = 3;
    cfg.block_change = 1;  // paper: one level change per refinement stage
    const double travel = 1.0 - 2 * (0.09 + 0.06);
    const double rate = travel / cfg.num_tsteps;
    for (auto& obj : cfg.objects) {
        obj.move.x = obj.move.x > 0 ? rate : -rate;
    }
    return cfg;
}

/// Strong-scaling problem (Fig. 5): 10^3-cell blocks. The paper divides the
/// input by 16 for 1-8 nodes (memory limits); we mirror that.
inline Config strong_scaling_config() {
    Config cfg = weak_scaling_config();
    cfg.nx = cfg.ny = cfg.nz = 10;
    return cfg;
}

/// Runs one variant on `nodes` MareNostrum-like nodes, arranging the rank
/// grid over `block_grid`.
inline SimResult run_point(const Config& base, Variant variant, int nodes, int ranks_per_node,
                           Vec3i block_grid, const CostModel& costs,
                           amr::Tracer* tracer = nullptr) {
    const ClusterSpec cluster = marenostrum(nodes, ranks_per_node);
    Config cfg = base;
    sim::arrange(cfg, block_grid, cluster.total_ranks());
    if (variant == Variant::TampiOss) cfg = with_paper_tampi_options(cfg);
    return sim::run_simulated(cfg, variant, cluster, costs, tracer);
}

inline void print_header(const char* title, const char* paper_ref) {
    std::printf("==============================================================\n");
    std::printf("%s\n", title);
    std::printf("reproduces: %s\n", paper_ref);
    std::printf("(simulated MareNostrum4-like cluster; shapes comparable to the\n");
    std::printf(" paper, absolute seconds are not — see EXPERIMENTS.md)\n");
    std::printf("==============================================================\n");
}

}  // namespace dfamr::bench
