// Machine-readable scaling bench: runs the Fig. 4 weak-scaling and Fig. 5
// strong-scaling sweeps for the three variants and writes the results as
// JSON (BENCH_scaling.json at the repo root via bench/run_benches.sh or the
// `bench-json` CMake target). The human-readable tables stay in
// fig4_weak_scaling / fig5_strong_scaling; this binary is for CI trend
// tracking and plotting scripts.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "amr/trace.hpp"
#include "bench_common.hpp"
#include "core/metrics.hpp"
#include "core/variants.hpp"
#include "sched_bench.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

using namespace dfamr;
using namespace dfamr::bench;

namespace {

struct Row {
    std::string series;    // "weak" or "strong"
    std::string variant;   // paper name of the variant
    int nodes = 0;
    int ranks = 0;
    long long blocks = 0;  // level-0 block grid size
    double total_s = 0;
    double refine_s = 0;
    double gflops = 0;
    double speedup = 0;     // vs MPI-only @1 node of the same series
    double efficiency = 0;  // vs the variant's own 1-node point
};

/// Wire-level counters from a small real run over the TCP loopback
/// transport (every rank a thread with its own localhost socket pair).
/// Tracks transport overhead trends: frames/bytes per delivered message and
/// how much traffic takes the rendezvous path at the default threshold.
struct NetMeasurement {
    int ranks = 0;
    std::uint64_t messages = 0;
    net::NetCounters counters;
    double total_s = 0;
    bool checksums_match_inproc = false;
};

NetMeasurement measure_net() {
    amr::Config cfg = amr::single_sphere_input();
    cfg.npx = 2;
    cfg.npy = cfg.npz = 1;
    cfg.init_x = 1;
    cfg.init_y = cfg.init_z = 2;
    cfg.nx = cfg.ny = cfg.nz = 8;
    cfg.num_vars = 8;
    cfg.num_tsteps = 2;
    cfg.stages_per_ts = 6;
    cfg.num_refine = 2;
    cfg.workers = 2;
    cfg.objects[0].move = {0.4, 0.4, 0.4};

    core::RunOptions inproc;
    inproc.ignore_launch_env = true;
    core::RunOptions tcp = inproc;
    tcp.transport = mpi::TransportKind::Tcp;
    tcp.rendezvous_threshold = 4096;  // low enough that ghost traffic crosses it

    const core::RunResult ref = core::run_variant(cfg, Variant::TampiOss, nullptr, nullptr, inproc);
    const core::RunResult r = core::run_variant(cfg, Variant::TampiOss, nullptr, nullptr, tcp);
    NetMeasurement m;
    m.ranks = cfg.num_ranks();
    m.messages = r.messages;
    m.counters = r.net;
    m.total_s = r.times.total;
    m.checksums_match_inproc = r.validation_ok && r.checksums == ref.checksums;
    return m;
}

/// One transport fast-path measurement: a real loopback world (rank
/// threads over real TCP sockets or shm rings) standing in for the
/// 16-node strong-scaling point's per-rank communication pattern, with
/// zero-copy pack on. Run for tcp / shm / auto, coalescing off and on:
/// the section records the frames/bytes drop from coalescing and the
/// tcp-vs-shm wall-time gap.
struct TransportPoint {
    std::string transport;  // "tcp", "shm", "auto(shm)"
    bool coalesce = false;
    std::uint64_t messages = 0;
    net::NetCounters counters;
    double total_s = 0;
    bool checksums_match_inproc = false;
};

struct TransportMeasurement {
    int ranks = 0;
    int strong_scaling_nodes = 16;  // the scaling-table point this mirrors
    std::uint64_t rndv_threshold = 0;
    std::vector<TransportPoint> points;
};

TransportMeasurement measure_transport() {
    // The 16-node strong-scaling point shrinks the per-rank block count
    // 16x, making ghost exchange the dominant cost; this miniature keeps
    // that communication-bound shape at loopback scale.
    amr::Config cfg = amr::single_sphere_input();
    cfg.npx = 2;
    cfg.npy = 2;
    cfg.npz = 1;
    cfg.init_x = cfg.init_y = 1;
    cfg.init_z = 2;
    cfg.nx = cfg.ny = cfg.nz = 8;
    cfg.num_vars = 8;
    cfg.num_tsteps = 5;
    cfg.stages_per_ts = 6;
    cfg.num_refine = 2;
    cfg.workers = 2;
    cfg.zero_copy = true;
    // Per-face messages (the paper's finest granularity): ghost traffic
    // becomes many small eager frames per neighbor, the shape coalescing
    // exists for — and the per-frame syscall cost that separates TCP
    // loopback from shm rings.
    cfg.send_faces = true;
    cfg.objects[0].move = {0.4, 0.4, 0.4};

    core::RunOptions inproc;
    inproc.ignore_launch_env = true;
    amr::Config ref_cfg = cfg;
    ref_cfg.zero_copy = false;
    const core::RunResult ref =
        core::run_variant(ref_cfg, Variant::MpiOnly, nullptr, nullptr, inproc);

    TransportMeasurement m;
    m.ranks = cfg.num_ranks();
    struct Wire {
        const char* label;
        mpi::TransportKind kind;
    };
    // A loopback world is always co-located, so auto resolves to shm, just
    // like under dfamr_mpirun on one host; keep it as its own point so the
    // selection path shows up in the trend data.
    const Wire wires[] = {{"tcp", mpi::TransportKind::Tcp},
                          {"shm", mpi::TransportKind::Shm},
                          {"auto(shm)", mpi::TransportKind::Shm}};
    std::vector<core::RunOptions> opts_for;
    for (const Wire& w : wires) {
        for (const bool coalesce : {false, true}) {
            core::RunOptions opts;
            opts.ignore_launch_env = true;
            opts.transport = w.kind;
            // Per-face messages stay far below the default threshold, so
            // everything rides the eager path coalescing applies to.
            opts.rendezvous_threshold = 64 * 1024;
            opts.coalesce = coalesce;
            m.rndv_threshold = opts.rendezvous_threshold;
            opts_for.push_back(opts);
            TransportPoint p;
            p.transport = w.label;
            p.coalesce = coalesce;
            m.points.push_back(std::move(p));
            // Warm-up: connect mesh, thread pools, page in the rings.
            core::run_variant(cfg, Variant::MpiOnly, nullptr, nullptr, opts);
        }
    }
    // Best-of-7 with the reps interleaved across points (rep 0 of every
    // point, then rep 1, ...) so a burst of ambient load lands on all
    // points alike instead of biasing the tcp-vs-shm wall-time comparison;
    // each round starts at a different point so periodic load can't stay
    // aligned with any one point's slot in the round.
    for (int rep = 0; rep < 7; ++rep) {
        for (std::size_t k = 0; k < m.points.size(); ++k) {
            const std::size_t i = (k + static_cast<std::size_t>(rep)) % m.points.size();
            TransportPoint& p = m.points[i];
            const core::RunResult r =
                core::run_variant(cfg, Variant::MpiOnly, nullptr, nullptr, opts_for[i]);
            if (rep == 0 || r.times.total < p.total_s) {
                p.messages = r.messages;
                p.counters = r.net;
                p.total_s = r.times.total;
                p.checksums_match_inproc = r.validation_ok && r.checksums == ref.checksums;
            }
        }
    }
    return m;
}

/// Traced vs untraced wall time of the same small real run, plus the
/// unified metrics snapshot of the traced one. Tracks both the tracing
/// overhead contract (record() must stay cheap enough to leave on) and the
/// observability numbers the CI trace-smoke job diffs.
struct TraceMeasurement {
    double untraced_s = 0;
    double traced_s = 0;
    double overhead_frac = 0;
    core::MetricsSnapshot snapshot;
};

TraceMeasurement measure_trace() {
    amr::Config cfg = amr::single_sphere_input();
    cfg.npx = 2;
    cfg.npy = cfg.npz = 1;
    cfg.init_x = 1;
    cfg.init_y = cfg.init_z = 2;
    cfg.nx = cfg.ny = cfg.nz = 8;
    cfg.num_vars = 8;
    cfg.num_tsteps = 5;
    cfg.stages_per_ts = 6;
    cfg.num_refine = 2;
    cfg.workers = 2;
    cfg.objects[0].move = {0.8 / cfg.num_tsteps, 0.8 / cfg.num_tsteps, 0.8 / cfg.num_tsteps};

    core::RunOptions opts;
    opts.ignore_launch_env = true;

    // Warm-up run (thread pools, allocator), then the timed pair.
    core::run_variant(cfg, Variant::TampiOss, nullptr, nullptr, opts);
    const core::RunResult plain = core::run_variant(cfg, Variant::TampiOss, nullptr, nullptr, opts);
    amr::Tracer tracer;
    tracer.enable(true);
    const core::RunResult traced = core::run_variant(cfg, Variant::TampiOss, &tracer, nullptr, opts);

    TraceMeasurement t;
    t.untraced_s = plain.times.total;
    t.traced_s = traced.times.total;
    t.overhead_frac =
        plain.times.total > 0 ? (traced.times.total - plain.times.total) / plain.times.total : 0;
    t.snapshot = core::make_metrics_snapshot(tracer, traced);
    return t;
}

/// Scenario subsystem trend data: each problem-generator workload run with
/// an estimator-driven refinement condition under all three variants.
/// Tracks refinement activity (estimator splits, final blocks), the
/// hysteresis health signal (thrash must stay zero), the analytic error
/// norm where the scenario has a reference solution, and the cross-variant
/// checksum identity the subsystem promises.
struct ScenarioPoint {
    std::string scenario;
    std::string estimator;
    std::int64_t final_blocks = 0;
    std::int64_t estimator_splits = 0;
    std::int64_t thrash = 0;
    double error_norm = 0;
    bool has_error_norm = false;
    /// Conservation ledger of the flux-form kernel: the post-reflux
    /// coarse-fine residual (exactly 0.0 when every interface was
    /// corrected) and the number of corrections applied.
    double mass_drift = 0;
    std::int64_t reflux_corrections = 0;
    double total_s = 0;  // TAMPI+OSS wall time
    bool checksums_match_across_variants = false;
};

amr::Config scenario_config(const std::string& scenario, const std::string& estimator) {
    amr::Config cfg = amr::single_sphere_input();
    cfg.npx = 2;
    cfg.npy = cfg.npz = 1;
    cfg.init_x = 1;
    cfg.init_y = cfg.init_z = 2;
    cfg.nx = cfg.ny = cfg.nz = 8;
    cfg.num_vars = 8;
    cfg.num_tsteps = 4;
    cfg.stages_per_ts = 6;
    cfg.num_refine = 2;
    cfg.workers = 2;
    cfg.objects.clear();
    cfg.scenario = scenario;
    cfg.estimator = estimator;
    cfg.refine_threshold = 0.1;
    cfg.deref_count = 3;
    return cfg;
}

std::vector<ScenarioPoint> measure_scenarios() {
    std::vector<ScenarioPoint> points;
    for (const char* scenario : {"gaussian", "slotted_cylinder", "front"}) {
        for (const char* estimator : {"gradient", "curvature"}) {
            const amr::Config cfg = scenario_config(scenario, estimator);
            core::RunOptions opts;
            opts.ignore_launch_env = true;
            const core::RunResult mpi =
                core::run_variant(cfg, Variant::MpiOnly, nullptr, nullptr, opts);
            const core::RunResult fj =
                core::run_variant(cfg, Variant::ForkJoin, nullptr, nullptr, opts);
            const core::RunResult tampi =
                core::run_variant(cfg, Variant::TampiOss, nullptr, nullptr, opts);
            ScenarioPoint p;
            p.scenario = scenario;
            p.estimator = estimator;
            p.final_blocks = tampi.final_blocks;
            p.estimator_splits = tampi.counters.blocks_refined_by_estimator;
            p.thrash = tampi.counters.refine_coarsen_thrash;
            p.error_norm = tampi.error_norm;
            p.has_error_norm = tampi.has_error_norm;
            p.mass_drift = tampi.mass_drift;
            p.reflux_corrections = tampi.counters.reflux_corrections;
            p.total_s = tampi.times.total;
            p.checksums_match_across_variants = mpi.validation_ok && fj.validation_ok &&
                                                tampi.validation_ok &&
                                                mpi.checksums == fj.checksums &&
                                                mpi.checksums == tampi.checksums;
            points.push_back(std::move(p));
        }
    }
    return points;
}

/// Serving throughput: an in-process dfamr_serve server driven by the
/// loadgen at two tenant counts on the same pool. The 1-tenant point is the
/// uncontended baseline; the 8-tenant point exercises DRR fair-share
/// arbitration plus slice-based suspend/resume, so the latency tail tracks
/// the cost of multi-tenancy (every job still checksum-verified solo).
struct ServePoint {
    int tenants = 0;
    serve::LoadGenReport report;
};

struct ServeMeasurement {
    int pool_workers = 0;
    int jobs = 0;
    std::vector<ServePoint> points;
};

ServeMeasurement measure_serving() {
    ServeMeasurement m;
    m.pool_workers = 4;
    m.jobs = 40;
    for (const int tenants : {1, 8}) {
        serve::ServerOptions sopts;
        sopts.manager.pool_workers = m.pool_workers;
        sopts.manager.max_queue = 512;
        sopts.manager.max_inflight_cost = m.pool_workers;
        sopts.manager.slice_tsteps = 2;  // contended jobs round-robin via suspend
        serve::Server server(sopts);

        serve::LoadGenOptions lopts;
        lopts.jobs = m.jobs;
        lopts.tenants = tenants;
        lopts.interarrival_ms = 0.5;  // arrivals outpace service: queue forms
        lopts.distinct_specs = 4;
        lopts.base.num_tsteps = 4;

        ServePoint p;
        p.tenants = tenants;
        p.report = serve::run_loadgen({sopts.host, server.port()}, lopts);
        m.points.push_back(std::move(p));
        server.stop();
    }
    return m;
}

void write_json(const char* path, const std::vector<Row>& rows, int max_nodes,
                const SchedMeasurement& sched, const NetMeasurement& netm,
                const TransportMeasurement& transm, const TraceMeasurement& tracem,
                const ServeMeasurement& servem, const std::vector<ScenarioPoint>& scen) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench_json: cannot open %s for writing\n", path);
        std::exit(1);
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"dfamr_scaling\",\n");
    std::fprintf(f, "  \"paper\": \"Sala, Rico, Beltran (CLUSTER 2020), Fig. 4-5\",\n");
    std::fprintf(f, "  \"max_nodes\": %d,\n", max_nodes);
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(f,
                     "    {\"series\": \"%s\", \"variant\": \"%s\", \"nodes\": %d, "
                     "\"ranks\": %d, \"blocks\": %lld, \"total_s\": %.6f, "
                     "\"refine_s\": %.6f, \"gflops\": %.3f, \"speedup\": %.4f, "
                     "\"efficiency\": %.4f}%s\n",
                     r.series.c_str(), r.variant.c_str(), r.nodes, r.ranks, r.blocks, r.total_s,
                     r.refine_s, r.gflops, r.speedup, r.efficiency, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    // Scheduler microbenchmark on the build host: the vendored pre-rewrite
    // global-mutex runtime vs the current work-stealing runtime (see
    // bench/sched_bench.hpp), plus the new runtime's scheduler counters.
    std::fprintf(f, "  \"scheduler\": {\n");
    std::fprintf(f, "    \"workers\": %d,\n", sched.workers);
    std::fprintf(f, "    \"tasks\": %lld,\n", sched.tasks);
    std::fprintf(f, "    \"old_fanout_ns_per_task\": %.1f,\n", sched.old_fanout_ns);
    std::fprintf(f, "    \"new_fanout_ns_per_task\": %.1f,\n", sched.new_fanout_ns);
    std::fprintf(f, "    \"old_chain_ns_per_task\": %.1f,\n", sched.old_chain_ns);
    std::fprintf(f, "    \"new_chain_ns_per_task\": %.1f,\n", sched.new_chain_ns);
    std::fprintf(f, "    \"steal_ns\": %.1f,\n", sched.steal_ns);
    std::fprintf(f, "    \"steals\": %llu,\n",
                 static_cast<unsigned long long>(sched.fanout_stats.steals));
    std::fprintf(f, "    \"steal_fails\": %llu,\n",
                 static_cast<unsigned long long>(sched.fanout_stats.steal_fails));
    std::fprintf(f, "    \"parks\": %llu,\n",
                 static_cast<unsigned long long>(sched.fanout_stats.parks));
    std::fprintf(f, "    \"wakeups\": %llu,\n",
                 static_cast<unsigned long long>(sched.fanout_stats.wakeups));
    std::fprintf(f, "    \"immediate_successor_hits\": %llu\n",
                 static_cast<unsigned long long>(sched.chain_stats.immediate_successor_hits));
    std::fprintf(f, "  },\n");
    // Wire counters from a small real TCP-loopback run (see measure_net).
    const auto u64 = [](std::uint64_t v) { return static_cast<unsigned long long>(v); };
    std::fprintf(f, "  \"net\": {\n");
    std::fprintf(f, "    \"transport\": \"tcp-loopback\",\n");
    std::fprintf(f, "    \"ranks\": %d,\n", netm.ranks);
    std::fprintf(f, "    \"messages\": %llu,\n", u64(netm.messages));
    std::fprintf(f, "    \"bytes_sent\": %llu,\n", u64(netm.counters.bytes_sent));
    std::fprintf(f, "    \"bytes_received\": %llu,\n", u64(netm.counters.bytes_received));
    std::fprintf(f, "    \"frames_sent\": %llu,\n", u64(netm.counters.frames_sent));
    std::fprintf(f, "    \"frames_received\": %llu,\n", u64(netm.counters.frames_received));
    std::fprintf(f, "    \"rendezvous\": %llu,\n", u64(netm.counters.rendezvous));
    std::fprintf(f, "    \"reconnects\": %llu,\n", u64(netm.counters.reconnects));
    std::fprintf(f, "    \"total_s\": %.6f,\n", netm.total_s);
    std::fprintf(f, "    \"checksums_match_inproc\": %s\n",
                 netm.checksums_match_inproc ? "true" : "false");
    std::fprintf(f, "  },\n");
    // Transport fast paths at the 16-node strong-scaling analog (see
    // measure_transport): tcp vs shm vs auto, coalescing off and on, all
    // with zero-copy pack. The coalesce rows show the frames/bytes drop;
    // the shm rows show the wall-time win over TCP loopback.
    std::fprintf(f, "  \"transport\": {\n");
    std::fprintf(f, "    \"ranks\": %d,\n", transm.ranks);
    std::fprintf(f, "    \"strong_scaling_nodes\": %d,\n", transm.strong_scaling_nodes);
    std::fprintf(f, "    \"rndv_threshold\": %llu,\n", u64(transm.rndv_threshold));
    std::fprintf(f, "    \"points\": [\n");
    for (std::size_t i = 0; i < transm.points.size(); ++i) {
        const TransportPoint& p = transm.points[i];
        std::fprintf(f,
                     "      {\"transport\": \"%s\", \"coalesce\": %s, \"total_s\": %.6f, "
                     "\"messages\": %llu, \"frames_sent\": %llu, \"bytes_sent\": %llu, "
                     "\"rendezvous\": %llu, \"coalesced_frames_sent\": %llu, "
                     "\"coalesced_messages\": %llu, \"copies_elided\": %llu, "
                     "\"checksums_match_inproc\": %s}%s\n",
                     p.transport.c_str(), p.coalesce ? "true" : "false", p.total_s,
                     u64(p.messages), u64(p.counters.frames_sent), u64(p.counters.bytes_sent),
                     u64(p.counters.rendezvous), u64(p.counters.coalesced_frames_sent),
                     u64(p.counters.coalesced_messages), u64(p.counters.copies_elided),
                     p.checksums_match_inproc ? "true" : "false",
                     i + 1 < transm.points.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  },\n");
    // Tracing overhead + the unified metrics snapshot of the traced run
    // (same dfamr_metrics_v1 structure single_sphere --trace_out writes).
    std::fprintf(f, "  \"trace\": {\n");
    std::fprintf(f, "    \"untraced_s\": %.6f,\n", tracem.untraced_s);
    std::fprintf(f, "    \"traced_s\": %.6f,\n", tracem.traced_s);
    std::fprintf(f, "    \"overhead_frac\": %.4f,\n", tracem.overhead_frac);
    std::fprintf(f, "    \"metrics\": %s", core::metrics_to_json(tracem.snapshot).c_str());
    std::fprintf(f, "  },\n");
    // Multi-tenant serving throughput over the DFS1 wire (see
    // measure_serving): same pool, 1 tenant vs 8 tenants, each point a full
    // loadgen report (throughput, p50/p99 latency, suspend + verify counts).
    std::fprintf(f, "  \"serving\": {\n");
    std::fprintf(f, "    \"pool_workers\": %d,\n", servem.pool_workers);
    std::fprintf(f, "    \"jobs_per_point\": %d,\n", servem.jobs);
    std::fprintf(f, "    \"points\": [\n");
    for (std::size_t i = 0; i < servem.points.size(); ++i) {
        const ServePoint& p = servem.points[i];
        std::fprintf(f, "      {\"tenants\": %d, \"report\": %s}%s\n", p.tenants,
                     p.report.to_json().c_str(), i + 1 < servem.points.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  },\n");
    // Scenario subsystem: problem-generator workloads under estimator-driven
    // refinement (see measure_scenarios). error_norm is the volume-weighted
    // L1 distance to the analytic reference (-1 when the scenario has none);
    // thrash must stay 0, mass_drift must be exactly 0 (Berger-Colella
    // refluxing) and checksums must agree across all variants.
    std::fprintf(f, "  \"scenarios\": {\n");
    std::fprintf(f, "    \"refine_threshold\": 0.1,\n");
    std::fprintf(f, "    \"deref_count\": 3,\n");
    std::fprintf(f, "    \"points\": [\n");
    for (std::size_t i = 0; i < scen.size(); ++i) {
        const ScenarioPoint& p = scen[i];
        std::fprintf(f,
                     "      {\"scenario\": \"%s\", \"estimator\": \"%s\", "
                     "\"final_blocks\": %lld, \"estimator_splits\": %lld, "
                     "\"thrash\": %lld, \"error_norm\": %.9g, "
                     "\"mass_drift\": %.17g, \"reflux_corrections\": %lld, "
                     "\"total_s\": %.6f, "
                     "\"checksums_match_across_variants\": %s}%s\n",
                     p.scenario.c_str(), p.estimator.c_str(),
                     static_cast<long long>(p.final_blocks),
                     static_cast<long long>(p.estimator_splits),
                     static_cast<long long>(p.thrash),
                     p.has_error_norm ? p.error_norm : -1.0, p.mass_drift,
                     static_cast<long long>(p.reflux_corrections), p.total_s,
                     p.checksums_match_across_variants ? "true" : "false",
                     i + 1 < scen.size() ? "," : "");
    }
    std::fprintf(f, "    ]\n");
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
    const char* out = argc > 1 ? argv[1] : "BENCH_scaling.json";
    int max_nodes = argc > 2 ? std::atoi(argv[2]) : 16;
    if (max_nodes < 1) max_nodes = 1;

    const CostModel costs;
    std::vector<int> node_counts;
    for (int n = 1; n <= max_nodes; n *= 2) node_counts.push_back(n);

    struct Setup {
        Variant variant;
        int ranks_per_node;
        const char* name;
    };
    const Setup setups[] = {
        {Variant::MpiOnly, 48, "MPI-only"},
        {Variant::ForkJoin, 4, "MPI+OMP"},
        {Variant::TampiOss, 4, "TAMPI+OSS"},
    };

    std::vector<Row> rows;
    // One-node baselines per (series, variant) for efficiency, and the
    // MPI-only baseline per series for cross-variant speedup.
    std::map<std::pair<std::string, std::string>, double> base_gflops;

    const Config weak = weak_scaling_config();
    const Config strong = strong_scaling_config();
    const Vec3i strong_big = sim::factor3(48 * 256);
    const Vec3i strong_small = sim::factor3(48 * 256 / 16);

    for (const char* series : {"weak", "strong"}) {
        const bool is_weak = std::string(series) == "weak";
        for (const Setup& s : setups) {
            for (int nodes : node_counts) {
                const Vec3i grid = is_weak ? sim::factor3(48 * nodes)
                                           : (nodes <= 8 ? strong_small : strong_big);
                const SimResult r = run_point(is_weak ? weak : strong, s.variant, nodes,
                                              s.ranks_per_node, grid, costs);
                Row row;
                row.series = series;
                row.variant = s.name;
                row.nodes = nodes;
                row.ranks = nodes * s.ranks_per_node;
                row.blocks = static_cast<long long>(grid.product());
                row.total_s = r.total_s;
                row.refine_s = r.refine_s;
                row.gflops = r.gflops();
                if (nodes == node_counts.front()) {
                    base_gflops[{series, s.name}] = row.gflops;
                }
                row.speedup = row.gflops / base_gflops.at({series, "MPI-only"});
                row.efficiency = row.gflops / (base_gflops.at({series, s.name}) * nodes);
                rows.push_back(row);
                std::printf("%-6s %-10s %3d nodes: %8.2f GFLOPS  eff %.3f\n", series, s.name,
                            nodes, row.gflops, row.efficiency);
            }
        }
    }

    std::printf("running scheduler microbenchmark...\n");
    const SchedMeasurement sched = measure_scheduler(/*workers=*/2, /*tasks=*/100000);

    std::printf("running TCP loopback wire measurement...\n");
    const NetMeasurement netm = measure_net();
    std::printf("net: %d ranks, %llu frames, %llu rendezvous, checksums %s\n", netm.ranks,
                static_cast<unsigned long long>(netm.counters.frames_sent),
                static_cast<unsigned long long>(netm.counters.rendezvous),
                netm.checksums_match_inproc ? "match inproc" : "DIVERGED");

    std::printf("running transport fast-path measurement...\n");
    const TransportMeasurement transm = measure_transport();
    for (const TransportPoint& p : transm.points) {
        std::printf("transport: %-9s coalesce=%-3s %8.3f ms, %6llu frames, %9llu bytes, "
                    "%5llu elided copies, checksums %s\n",
                    p.transport.c_str(), p.coalesce ? "on" : "off", p.total_s * 1e3,
                    static_cast<unsigned long long>(p.counters.frames_sent),
                    static_cast<unsigned long long>(p.counters.bytes_sent),
                    static_cast<unsigned long long>(p.counters.copies_elided),
                    p.checksums_match_inproc ? "match inproc" : "DIVERGED");
    }

    std::printf("running tracing overhead measurement...\n");
    const TraceMeasurement tracem = measure_trace();
    std::printf("trace: %.3f ms untraced vs %.3f ms traced (overhead %.1f%%), "
                "%llu events on %d cores\n",
                tracem.untraced_s * 1e3, tracem.traced_s * 1e3, tracem.overhead_frac * 100,
                static_cast<unsigned long long>(tracem.snapshot.trace.events),
                tracem.snapshot.trace.cores);

    std::printf("running serving throughput measurement...\n");
    const ServeMeasurement servem = measure_serving();
    for (const ServePoint& p : servem.points) {
        std::printf("serving: %d tenant%s: %.1f jobs/s, p50 %.0f ms, p99 %.0f ms, "
                    "%d suspended, %d mismatches\n",
                    p.tenants, p.tenants == 1 ? "" : "s", p.report.jobs_per_s, p.report.p50_ms,
                    p.report.p99_ms, p.report.suspended_jobs, p.report.checksum_mismatches);
    }

    std::printf("running scenario measurement...\n");
    const std::vector<ScenarioPoint> scen = measure_scenarios();
    for (const ScenarioPoint& p : scen) {
        std::printf("scenario: %-16s %-9s %4lld blocks, %4lld splits, thrash %lld, "
                    "error %.3g, drift %.3g (%lld refluxes), checksums %s\n",
                    p.scenario.c_str(), p.estimator.c_str(),
                    static_cast<long long>(p.final_blocks),
                    static_cast<long long>(p.estimator_splits),
                    static_cast<long long>(p.thrash), p.has_error_norm ? p.error_norm : -1.0,
                    p.mass_drift, static_cast<long long>(p.reflux_corrections),
                    p.checksums_match_across_variants ? "match across variants" : "DIVERGED");
    }

    write_json(out, rows, max_nodes, sched, netm, transm, tracem, servem, scen);
    std::printf("wrote %s (%zu points)\n", out, rows.size());
    return 0;
}
