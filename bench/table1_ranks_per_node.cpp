// Table I — "The time (s) varying the number of ranks per node on 4 nodes."
//
// Paper: single-sphere input on 4 nodes; MPI+OMP fork-join and TAMPI+OSS at
// 1/2/4/8/16 ranks per node, reporting Total / Refine / No-Refine time.
// Expected shape: 1 rank/node is worst for both variants (the rank spans
// both NUMA domains); fork-join stabilizes around 4 ranks/node; TAMPI+OSS
// performs best around 2-4 ranks/node, with a refinement time roughly 30-40%
// below fork-join's.
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace dfamr;
using namespace dfamr::bench;

int main() {
    print_header("Table I: time (s) varying ranks per node on 4 nodes",
                 "Sala, Rico, Beltran (CLUSTER 2020), Table I");

    const CostModel costs;  // MareNostrum-like defaults (see cost_model.hpp)
    const int nodes = 4;
    const Vec3i grid = sim::factor3(48 * nodes);
    const Config cfg = table1_config();

    TextTable table({"Ranks x Node", "MPI+OMP Total", "MPI+OMP Refine", "MPI+OMP NoRefine",
                     "TAMPI+OSS Total", "TAMPI+OSS Refine", "TAMPI+OSS NoRefine"});
    for (int rpn : {1, 2, 4, 8, 16}) {
        const SimResult fj = run_point(cfg, Variant::ForkJoin, nodes, rpn, grid, costs);
        const SimResult df = run_point(cfg, Variant::TampiOss, nodes, rpn, grid, costs);
        table.add_row({std::to_string(rpn), TextTable::num(fj.total_s, 3),
                       TextTable::num(fj.refine_s, 3), TextTable::num(fj.non_refine_s(), 3),
                       TextTable::num(df.total_s, 3), TextTable::num(df.refine_s, 3),
                       TextTable::num(df.non_refine_s(), 3)});
    }
    table.print(std::cout);

    std::printf("\npaper's Table I (seconds, 20 ts x 60 stages on the real machine):\n");
    std::printf("  ranks/node:        1      2      4      8      16\n");
    std::printf("  MPI+OMP   total:  485.2  375.4  352.0  348.6  344.0\n");
    std::printf("  TAMPI+OSS total:  469.8  303.9  306.2  314.5  322.3\n");
    return 0;
}
