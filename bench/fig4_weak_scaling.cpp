// Figure 4 — weak scaling: throughput (GFLOPS, upper plot) from 4 to 256
// nodes and parallel efficiency (lower plot) from 1 to 256 nodes, for
// MPI-only (48 ranks/node), MPI+OMP fork-join (4 ranks/node) and TAMPI+OSS
// (4 ranks/node).
//
// Paper numbers to compare against (shape, not absolute seconds):
//  * TAMPI+OSS throughput speedup vs MPI-only: 1.50x @128 nodes,
//    1.49x @256 nodes (1.54x on the non-refinement part @256);
//  * fork-join never exceeds 1.06x, and is below MPI-only on 1-4 nodes;
//  * efficiency @256 nodes: TAMPI+OSS 0.86 (0.94 non-refine),
//    MPI-only 0.72, fork-join 0.75.
//
// The problem doubles with the node count: same initial mesh for every
// variant (one initial block per MPI-only rank), doubling the total blocks
// in one direction per node-count doubling (§V-C).
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "common/table.hpp"

using namespace dfamr;
using namespace dfamr::bench;

int main(int argc, char** argv) {
    print_header("Figure 4: weak scaling 1..256 nodes (GFLOPS + efficiency)",
                 "Sala, Rico, Beltran (CLUSTER 2020), Fig. 4");
    int max_nodes = 256;
    if (argc > 1) max_nodes = std::atoi(argv[1]);

    const CostModel costs;
    const Config base = weak_scaling_config();

    struct Point {
        double gflops = 0, nr_gflops = 0;
    };
    std::map<std::string, std::map<int, Point>> series;

    TextTable table({"Nodes", "Variant", "Total(s)", "Refine(s)", "GFLOPS", "Eff.", "Eff. (NR)"});
    std::vector<int> node_counts;
    for (int n = 1; n <= max_nodes; n *= 2) node_counts.push_back(n);

    struct Setup {
        Variant variant;
        int ranks_per_node;
        const char* name;
    };
    const Setup setups[] = {
        {Variant::MpiOnly, 48, "MPI-only"},
        {Variant::ForkJoin, 4, "MPI+OMP"},
        {Variant::TampiOss, 4, "TAMPI+OSS"},
    };

    for (const Setup& s : setups) {
        for (int nodes : node_counts) {
            // Weak scaling: the global block grid grows with the node count.
            const Vec3i grid = sim::factor3(48 * nodes);
            const SimResult r = run_point(base, s.variant, nodes, s.ranks_per_node, grid, costs);
            Point p;
            p.gflops = r.gflops();
            p.nr_gflops = r.non_refine_s() > 0
                              ? static_cast<double>(r.total_flops) / r.non_refine_s() * 1e-9
                              : 0;
            series[s.name][nodes] = p;
            const Point& one = series[s.name][node_counts.front()];
            const double eff = p.gflops / (one.gflops * nodes);
            const double eff_nr = p.nr_gflops / (one.nr_gflops * nodes);
            table.add_row({std::to_string(nodes), s.name, TextTable::num(r.total_s, 4),
                           TextTable::num(r.refine_s, 4), TextTable::num(p.gflops, 1),
                           TextTable::num(eff, 3), TextTable::num(eff_nr, 3)});
        }
    }
    table.print(std::cout);

    std::printf("\nTAMPI+OSS throughput speedup over MPI-only per node count:\n");
    for (int nodes : node_counts) {
        const double total = series["TAMPI+OSS"][nodes].gflops / series["MPI-only"][nodes].gflops;
        const double nr =
            series["TAMPI+OSS"][nodes].nr_gflops / series["MPI-only"][nodes].nr_gflops;
        std::printf("  %3d nodes: %.2fx total, %.2fx non-refine\n", nodes, total, nr);
    }
    std::printf("MPI+OMP fork-join speedup over MPI-only per node count:\n");
    for (int nodes : node_counts) {
        std::printf("  %3d nodes: %.2fx\n", nodes,
                    series["MPI+OMP"][nodes].gflops / series["MPI-only"][nodes].gflops);
    }
    std::printf(
        "\npaper: TAMPI+OSS 1.50x/1.49x @128/256 nodes (1.54x NR @256); fork-join <= 1.06x;\n"
        "efficiencies @256: TAMPI+OSS 0.86 (0.94 NR), MPI-only 0.72, fork-join 0.75\n");
    return 0;
}
