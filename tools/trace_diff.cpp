// trace_diff — compares two metrics JSON files (dfamr_metrics_v1, as
// written by `single_sphere --trace_out` or embedded by bench_json) and
// flags regressions beyond tolerance. Used by the CI trace-smoke job to
// diff each variant's traced run against a checked-in baseline.
//
//   trace_diff baseline.json current.json [--tol_rel R] [--tol_abs A]
//
// Comparison rules, applied to every leaf present in the BASELINE (keys
// only in the current file are ignored, so baselines can pin just the
// stable fields):
//   * numbers whose key is structural (cores, progress_lanes) — exact
//   * other numbers — |cur - base| <= tol_abs + tol_rel * |base|
//   * bools / strings — exact
//   * a key missing from the current file — always a failure
//
// Exit status: 0 = within tolerance, 1 = regressions found, 2 = bad usage
// or unreadable/unparsable input.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace {

using dfamr::json::Value;

struct Options {
    double tol_rel = 0.5;
    double tol_abs = 0.05;
};

/// Keys compared exactly regardless of tolerance: lane counts are
/// structural (a changed worker topology is a wiring bug, not noise).
bool is_exact_key(const std::string& key) {
    return key == "cores" || key == "progress_lanes" || key == "schema";
}

std::string read_file(const char* path) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "trace_diff: cannot read %s\n", path);
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void diff(const Value& base, const Value& cur, const std::string& path, const std::string& key,
          const Options& opts, std::vector<std::string>& failures) {
    char buf[512];
    switch (base.kind()) {
        case Value::Kind::Object:
            for (const auto& [k, v] : base.members()) {
                const std::string child = path.empty() ? k : path + "." + k;
                if (!cur.is_object() || !cur.contains(k)) {
                    failures.push_back(child + ": missing from current");
                    continue;
                }
                diff(v, cur.at(k), child, k, opts, failures);
            }
            break;
        case Value::Kind::Array: {
            if (!cur.is_array() || cur.size() != base.size()) {
                failures.push_back(path + ": array shape changed");
                break;
            }
            for (std::size_t i = 0; i < base.size(); ++i) {
                diff(base.at(i), cur.at(i), path + "[" + std::to_string(i) + "]", key, opts,
                     failures);
            }
            break;
        }
        case Value::Kind::Number: {
            if (!cur.is_number()) {
                failures.push_back(path + ": type changed (expected number)");
                break;
            }
            const double b = base.as_double();
            const double c = cur.as_double();
            const double tol = is_exact_key(key) ? 0.0 : opts.tol_abs + opts.tol_rel * std::abs(b);
            if (std::abs(c - b) > tol) {
                std::snprintf(buf, sizeof buf, "%s: %g -> %g (tolerance %g)", path.c_str(), b, c,
                              tol);
                failures.emplace_back(buf);
            }
            break;
        }
        case Value::Kind::Bool:
            if (!cur.is_bool() || cur.as_bool() != base.as_bool()) {
                failures.push_back(path + ": bool changed");
            }
            break;
        case Value::Kind::String:
            if (!cur.is_string() || cur.as_string() != base.as_string()) {
                failures.push_back(path + ": string changed");
            }
            break;
        case Value::Kind::Null:
            if (!cur.is_null()) failures.push_back(path + ": type changed (expected null)");
            break;
    }
}

}  // namespace

int main(int argc, char** argv) {
    const char* base_path = nullptr;
    const char* cur_path = nullptr;
    Options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--tol_rel" && i + 1 < argc) {
            opts.tol_rel = std::atof(argv[++i]);
        } else if (arg == "--tol_abs" && i + 1 < argc) {
            opts.tol_abs = std::atof(argv[++i]);
        } else if (base_path == nullptr) {
            base_path = argv[i];
        } else if (cur_path == nullptr) {
            cur_path = argv[i];
        } else {
            std::fprintf(stderr, "trace_diff: unexpected argument %s\n", argv[i]);
            return 2;
        }
    }
    if (base_path == nullptr || cur_path == nullptr) {
        std::fprintf(stderr,
                     "usage: trace_diff baseline.json current.json [--tol_rel R] [--tol_abs A]\n");
        return 2;
    }

    try {
        const Value base = dfamr::json::parse(read_file(base_path));
        const Value cur = dfamr::json::parse(read_file(cur_path));
        std::vector<std::string> failures;
        diff(base, cur, "", "", opts, failures);
        if (failures.empty()) {
            std::printf("trace_diff: %s vs %s — within tolerance (rel %g, abs %g)\n", cur_path,
                        base_path, opts.tol_rel, opts.tol_abs);
            return 0;
        }
        std::printf("trace_diff: %zu regression(s) vs %s:\n", failures.size(), base_path);
        for (const std::string& f : failures) std::printf("  %s\n", f.c_str());
        return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "trace_diff: %s\n", e.what());
        return 2;
    }
}
