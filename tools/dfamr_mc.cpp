// dfamr_mc — the schedule-space model checker CLI.
//
// Subcommands (--mode):
//   explore   DPOR/sleep-set exploration of the task-graph catalog
//             (verify/mc/graphs.hpp): asserts one checksum across every
//             reduced schedule and a clean DepLint verdict per graph.
//   mutate    seeded-mutation sensitivity: drops one happens-before edge
//             (--graph + --edge, or every edge of every graph) and requires
//             the explorer to find a counterexample schedule, printed in
//             minimal form.
//   protocol  explicit-state model checking of the eager/rendezvous wire
//             protocol under each FaultPlan perturbation kind.
//   coalesce  same, for the per-neighbor coalescing layer: merged frames
//             must preserve sub-message order, FIFO delivery (where the
//             fault permits), rendezvous credits and leak-freedom.
//   ring      same, for the shared-memory SPSC byte ring: bounded fill,
//             complete in-order delivery (including a frame larger than
//             the ring) and deadlock-freedom.
//
// Exit code 0 = everything proved; 1 = a violation (or, under --mode
// explore with --min_schedules, insufficient coverage); 2 = usage error.
//
// Reading a counterexample: each line is one scheduler decision,
//   step 3: choice 1/4  w1 steal<-w0 pack0#1
// meaning at decision point 3 there were 4 enabled actions, the schedule
// picked index 1, and that action was worker 1 stealing task "pack0" (task
// id 1) from worker 0's deque. Replay is exact: feeding the same digit
// string to ControlledRuntime::run reproduces the run bit for bit.

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "verify/mc/explorer.hpp"
#include "verify/mc/graphs.hpp"
#include "verify/mc/protocol.hpp"
#include "verify/mc/transport_models.hpp"

namespace {

using namespace dfamr;
using namespace dfamr::verify::mc;

int run_explore(const std::vector<TaskGraph>& graphs, std::uint64_t max_schedules,
                std::uint64_t min_schedules) {
    std::uint64_t total = 0;
    bool ok = true;
    for (const TaskGraph& g : graphs) {
        ControlledRuntime rt(g);
        ExploreOptions opts;
        opts.max_schedules = max_schedules;
        const ExploreResult r = explore(rt, opts);
        total += r.stats.schedules;
        std::printf("%-14s %8llu schedules (%llu transitions, %llu sleep-pruned%s), "
                    "%llu checksum(s), deplint %s, edges %zu\n",
                    g.name.c_str(), static_cast<unsigned long long>(r.stats.schedules),
                    static_cast<unsigned long long>(r.stats.transitions),
                    static_cast<unsigned long long>(r.stats.sleep_pruned),
                    r.stats.hit_cap ? ", CAPPED" : "",
                    static_cast<unsigned long long>(r.stats.distinct_checksums),
                    r.deplint_clean ? "clean" : "DIRTY", rt.edges().size());
        if (!r.clean()) {
            ok = false;
            std::printf("  VIOLATION in %s\n", g.name.c_str());
            if (r.counterexample) {
                const Counterexample& ce = *r.counterexample;
                std::printf("  counterexample checksum %llu (expected %llu):\n%s",
                            static_cast<unsigned long long>(ce.checksum),
                            static_cast<unsigned long long>(ce.expected), ce.rendered.c_str());
            }
        }
    }
    std::printf("total: %llu schedules explored\n", static_cast<unsigned long long>(total));
    if (min_schedules > 0 && total < min_schedules) {
        std::printf("FAIL: coverage %llu below --min_schedules %llu\n",
                    static_cast<unsigned long long>(total),
                    static_cast<unsigned long long>(min_schedules));
        return 1;
    }
    return ok ? 0 : 1;
}

int run_mutate(const std::vector<TaskGraph>& graphs, std::uint64_t max_schedules) {
    // Every dropped happens-before edge must be caught: the explorer has to
    // produce a counterexample (diverging checksum) or DepLint has to flag
    // the unordered conflict — ideally both. A mutation nobody notices
    // means the checker has a blind spot.
    int caught = 0;
    int missed = 0;
    for (const TaskGraph& g : graphs) {
        const std::size_t edge_count = ControlledRuntime(g).edges().size();
        for (std::size_t e = 0; e < edge_count; ++e) {
            ControlledRuntime rt(g, static_cast<int>(e));
            ExploreOptions opts;
            opts.max_schedules = max_schedules;
            const ExploreResult r = explore(rt, opts);
            const auto [pred, succ] = rt.edges()[e];
            if (r.clean()) {
                // Legitimate: dropping one edge of a transitively redundant
                // pair (e.g. a diamond's A->D when A->B->D remains) changes
                // nothing observable. Only count it missed if DepLint also
                // considers the graph still fully ordered — then the drop
                // was semantically harmless.
                std::printf("%s: edge %zu (%s#%d -> %s#%d) drop is benign (still ordered)\n",
                            g.name.c_str(), e, g.tasks[static_cast<std::size_t>(pred)].label.c_str(),
                            pred, g.tasks[static_cast<std::size_t>(succ)].label.c_str(), succ);
                ++missed;
                continue;
            }
            ++caught;
            std::printf("%s: edge %zu (%s#%d -> %s#%d) dropped -> caught (%s%s)\n",
                        g.name.c_str(), e, g.tasks[static_cast<std::size_t>(pred)].label.c_str(),
                        pred, g.tasks[static_cast<std::size_t>(succ)].label.c_str(), succ,
                        r.deterministic ? "" : "checksum diverges ",
                        r.deplint_clean ? "" : "deplint dirty");
            if (r.counterexample) {
                const Counterexample& ce = *r.counterexample;
                if (!r.deterministic) {
                    std::printf("  minimal counterexample (digits:");
                    for (std::size_t d : ce.choices) std::printf(" %zu", d);
                    std::printf("; checksum %llu vs %llu):\n%s",
                                static_cast<unsigned long long>(ce.checksum),
                                static_cast<unsigned long long>(ce.expected),
                                ce.rendered.c_str());
                } else if (!ce.deplint_clean) {
                    std::printf("  static witness: %s", ce.deplint_report.c_str());
                }
            }
        }
    }
    std::printf("mutation sensitivity: %d caught, %d benign\n", caught, missed);
    // At least one mutation per graph must be caught with a counterexample;
    // a run where nothing is caught means the checker is insensitive.
    return caught > 0 ? 0 : 1;
}

int run_protocol(int eager, int rndz) {
    bool ok = true;
    for (FaultKind kind : all_fault_kinds()) {
        ModelOptions opts;
        opts.fault = kind;
        opts.eager_per_direction = eager;
        opts.rndz_per_direction = rndz;
        const ModelResult r = check_protocol(opts);
        std::printf("fault=%-8s %s\n", to_string(kind), r.to_string().c_str());
        if (!r.clean()) ok = false;
    }
    return ok ? 0 : 1;
}

// Uses the model's own workload defaults (3 eager + 1 rendezvous per
// direction): fewer than two eager messages would never exercise a merge.
int run_coalesce() {
    bool ok = true;
    for (FaultKind kind : all_fault_kinds()) {
        CoalescedModelOptions opts;
        opts.fault = kind;
        const ModelResult r = check_coalesced_protocol(opts);
        std::printf("fault=%-8s %s\n", to_string(kind), r.to_string().c_str());
        if (!r.clean()) ok = false;
    }
    return ok ? 0 : 1;
}

int run_ring() {
    bool ok = true;
    for (FaultKind kind : all_fault_kinds()) {
        ShmRingOptions opts;
        opts.fault = kind;
        const ModelResult r = check_shm_ring(opts);
        std::printf("fault=%-8s %s\n", to_string(kind), r.to_string().c_str());
        if (!r.clean()) ok = false;
    }
    return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    CliParser cli("dfamr_mc: schedule-space and wire-protocol model checker");
    cli.add_option("--mode", "explore | mutate | protocol | coalesce | ring", "explore");
    cli.add_option("--graph", "restrict to one graph of the catalog (by name)", "");
    cli.add_option("--edge", "mutate: drop only this edge index", "-1");
    cli.add_option("--max_schedules", "per-exploration schedule cap (0 = unlimited)", "250000");
    cli.add_option("--min_schedules", "explore: fail if total coverage is below this", "0");
    cli.add_option("--eager", "protocol: eager messages per direction", "1");
    cli.add_option("--rndz", "protocol: rendezvous messages per direction", "2");
    try {
        if (!cli.parse(argc, argv)) return 0;
        const std::string mode = cli.get_string("--mode");
        std::vector<TaskGraph> graphs = all_graphs();
        const std::string only = cli.get_string("--graph");
        if (!only.empty()) {
            std::erase_if(graphs, [&](const TaskGraph& g) { return g.name != only; });
            DFAMR_REQUIRE(!graphs.empty(), "unknown graph: " + only);
        }
        const auto max_schedules = static_cast<std::uint64_t>(cli.get_int("--max_schedules"));
        if (mode == "explore") {
            return run_explore(graphs, max_schedules,
                               static_cast<std::uint64_t>(cli.get_int("--min_schedules")));
        }
        if (mode == "mutate") {
            const int edge = static_cast<int>(cli.get_int("--edge"));
            if (edge >= 0) {
                DFAMR_REQUIRE(graphs.size() == 1, "--edge needs --graph");
                ControlledRuntime rt(graphs[0], edge);
                ExploreOptions opts;
                opts.max_schedules = max_schedules;
                const ExploreResult r = explore(rt, opts);
                if (r.clean()) {
                    std::printf("edge %d drop is benign\n", edge);
                    return 0;
                }
                if (r.counterexample) {
                    std::printf("caught; minimal counterexample:\n%s",
                                r.counterexample->rendered.c_str());
                }
                return 0;
            }
            return run_mutate(graphs, max_schedules);
        }
        if (mode == "protocol") {
            return run_protocol(static_cast<int>(cli.get_int("--eager")),
                                static_cast<int>(cli.get_int("--rndz")));
        }
        if (mode == "coalesce") return run_coalesce();
        if (mode == "ring") return run_ring();
        std::fprintf(stderr, "unknown --mode %s\n", mode.c_str());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "dfamr_mc: %s\n", e.what());
        return 2;
    }
}
