// Pluggable refinement conditions (Athena-style enrollable criteria): a
// condition scores every leaf block, and the driver turns scores into
// refine/coarsen marks with a strict threshold and deref-count hysteresis.
//
// Two families exist:
//   * geometric conditions score from the block's physical box alone
//     (object intersection — the reference miniAMR behaviour); every rank
//     can evaluate them locally on the replicated structure.
//   * field-based conditions score from cell data, which only the owning
//     rank holds. The driver gathers those scores with one fixed-size
//     Sum-allreduce over the leaves in key order (ownership is disjoint, so
//     the sum is a gather) and derives identical marks on every rank.
//
// Scoring conventions (shared by the driver's mark logic, see DESIGN.md §17):
//   * a block refines iff score > refine_threshold (strictly — a score
//     exactly at the threshold does not refine) and its level < max;
//   * a block becomes coarsen-willing iff score < refine_threshold *
//     kDerefBand, and actually coarsens only after deref_count consecutive
//     willing checks (hysteresis, kills refine/coarsen thrash).
#pragma once

#include <string>
#include <vector>

#include "amr/block.hpp"
#include "amr/object.hpp"
#include "common/geometry.hpp"

namespace dfamr::scenario {

/// Fraction of refine_threshold below which a block is coarsen-willing.
/// The dead band [kDerefBand * threshold, threshold] keeps blocks whose
/// score hovers near the threshold from flapping between levels. The band
/// must clear the estimators' refinement shrink factor: the undivided
/// differences roughly halve when a block splits, so a freshly refined
/// child scores ~score/2 — a band of 0.5 would park it exactly on the
/// coarsen boundary. 0.25 leaves [threshold/4, threshold] as the hold
/// region, absorbing the 2x shrink with margin.
inline constexpr double kDerefBand = 0.25;

/// Inputs a geometric condition may consult (field-based ones ignore them).
struct ScoreContext {
    const std::vector<amr::ObjectSpec>* objects = nullptr;
    bool uniform_refine = false;
};

class RefinementCondition {
public:
    virtual ~RefinementCondition() = default;
    virtual const char* name() const = 0;
    /// True when scores come from cell data: the driver passes the block on
    /// the owning rank (null elsewhere) and gathers scores globally.
    /// Geometric conditions must ignore `blk` and score from `box` alone.
    virtual bool needs_field_data() const = 0;
    virtual double score(const amr::Block* blk, const Box& box,
                         const ScoreContext& ctx) const = 0;
};

/// Registry lookup by CLI name: "objects", "gradient" or "curvature".
/// Returns null for unknown names (callers produce the error message).
const RefinementCondition* find_condition(const std::string& name);

/// Registered condition names, for error messages and help text.
std::vector<std::string> condition_names();

}  // namespace dfamr::scenario
