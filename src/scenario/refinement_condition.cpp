#include "scenario/refinement_condition.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dfamr::scenario {

namespace {

/// The reference miniAMR criterion as a condition instance: score 1 when an
/// object touches the block (or uniform refinement is forced), 0 otherwise.
/// With the default refine_threshold 0.5 and deref_count 1 the driver's
/// mark logic reproduces the legacy plan_refine_round marks exactly.
class ObjectCondition final : public RefinementCondition {
public:
    const char* name() const override { return "objects"; }
    bool needs_field_data() const override { return false; }
    double score(const amr::Block*, const Box& box, const ScoreContext& ctx) const override {
        if (ctx.uniform_refine) return 1.0;
        if (ctx.objects != nullptr) {
            for (const amr::ObjectSpec& obj : *ctx.objects) {
                if (obj.touches(box)) return 1.0;
            }
        }
        return 0.0;
    }
};

/// Maximum undivided first difference of variable 0 over the block interior
/// (all three axes). Undivided — not divided by the cell width — so the
/// score of a smooth feature *shrinks* as the mesh refines around it and
/// refinement converges instead of running away to the level cap.
class GradientCondition final : public RefinementCondition {
public:
    const char* name() const override { return "gradient"; }
    bool needs_field_data() const override { return true; }
    double score(const amr::Block* blk, const Box&, const ScoreContext&) const override {
        DFAMR_REQUIRE(blk != nullptr, "gradient condition needs block data");
        const amr::BlockShape& s = blk->shape();
        double m = 0.0;
        for (int x = 1; x <= s.nx; ++x) {
            for (int y = 1; y <= s.ny; ++y) {
                for (int z = 1; z <= s.nz; ++z) {
                    const double u = blk->at(0, x, y, z);
                    if (x < s.nx) m = std::max(m, std::abs(blk->at(0, x + 1, y, z) - u));
                    if (y < s.ny) m = std::max(m, std::abs(blk->at(0, x, y + 1, z) - u));
                    if (z < s.nz) m = std::max(m, std::abs(blk->at(0, x, y, z + 1) - u));
                }
            }
        }
        return m;
    }
};

/// Maximum undivided second difference of variable 0 over the block
/// interior: |u[i-1] - 2 u[i] + u[i+1]| per axis. Flags curvature (fronts,
/// extrema) while staying zero on linear ramps the gradient condition would
/// refine.
class CurvatureCondition final : public RefinementCondition {
public:
    const char* name() const override { return "curvature"; }
    bool needs_field_data() const override { return true; }
    double score(const amr::Block* blk, const Box&, const ScoreContext&) const override {
        DFAMR_REQUIRE(blk != nullptr, "curvature condition needs block data");
        const amr::BlockShape& s = blk->shape();
        double m = 0.0;
        for (int x = 1; x <= s.nx; ++x) {
            for (int y = 1; y <= s.ny; ++y) {
                for (int z = 1; z <= s.nz; ++z) {
                    const double u2 = 2.0 * blk->at(0, x, y, z);
                    if (x > 1 && x < s.nx) {
                        m = std::max(m,
                                     std::abs(blk->at(0, x - 1, y, z) - u2 + blk->at(0, x + 1, y, z)));
                    }
                    if (y > 1 && y < s.ny) {
                        m = std::max(m,
                                     std::abs(blk->at(0, x, y - 1, z) - u2 + blk->at(0, x, y + 1, z)));
                    }
                    if (z > 1 && z < s.nz) {
                        m = std::max(m,
                                     std::abs(blk->at(0, x, y, z - 1) - u2 + blk->at(0, x, y, z + 1)));
                    }
                }
            }
        }
        return m;
    }
};

const ObjectCondition g_objects;
const GradientCondition g_gradient;
const CurvatureCondition g_curvature;
const RefinementCondition* const g_conditions[] = {&g_objects, &g_gradient, &g_curvature};

}  // namespace

const RefinementCondition* find_condition(const std::string& name) {
    for (const RefinementCondition* c : g_conditions) {
        if (name == c->name()) return c;
    }
    return nullptr;
}

std::vector<std::string> condition_names() {
    std::vector<std::string> names;
    for (const RefinementCondition* c : g_conditions) names.emplace_back(c->name());
    return names;
}

}  // namespace dfamr::scenario
