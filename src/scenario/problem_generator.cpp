#include "scenario/problem_generator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "amr/flux_register.hpp"
#include "amr/scratch.hpp"
#include "common/error.hpp"

namespace dfamr::scenario {

namespace {

/// CFL number for the 3D upwind update: dt * sum_axis |v_axis| / h must
/// stay below 1; with per-axis speeds bounded by max_speed() this keeps the
/// three-term sum at or under 3 * kCfl.
constexpr double kCfl = 0.2;

/// Advected Gaussian pulse: the classic smooth-transport benchmark. The
/// pulse starts near a lower corner and drifts diagonally; velocities and
/// run lengths keep it away from the reflective domain boundary.
class GaussianPulse final : public ProblemGenerator {
public:
    const char* name() const override { return "gaussian"; }
    double max_speed() const override { return 0.4; }  // largest component
    double initial(const Vec3d& p) const override { return reference(p, 0.0); }
    Vec3d velocity(const Vec3d&, double) const override { return {0.4, 0.3, 0.2}; }
    bool has_reference() const override { return true; }
    double reference(const Vec3d& p, double t) const override {
        constexpr double kSigma = 0.1;
        const Vec3d c{0.3 + 0.4 * t, 0.3 + 0.3 * t, 0.3 + 0.2 * t};
        const double dx = p.x - c.x, dy = p.y - c.y, dz = p.z - c.z;
        const double r2 = dx * dx + dy * dy + dz * dz;
        return std::exp(-r2 / (2.0 * kSigma * kSigma));
    }
};

/// Zalesak-style slotted cylinder in solid-body rotation about the domain
/// center (z-invariant): a discontinuous profile that stresses the
/// estimators and the coarse-fine transfer operators. Exactly returns to
/// its initial position every full turn.
class SlottedCylinder final : public ProblemGenerator {
public:
    const char* name() const override { return "slotted_cylinder"; }
    double max_speed() const override { return 0.5; }  // omega * max |p - center|
    double initial(const Vec3d& p) const override { return profile(p.x, p.y); }
    Vec3d velocity(const Vec3d& p, double) const override {
        return {-(p.y - 0.5), p.x - 0.5, 0.0};  // omega = 1
    }
    bool has_reference() const override { return true; }
    double reference(const Vec3d& p, double t) const override {
        // Rotate the sample point backwards by omega * t around the center.
        const double c = std::cos(t), s = std::sin(t);
        const double x = p.x - 0.5, y = p.y - 0.5;
        return profile(0.5 + c * x + s * y, 0.5 - s * x + c * y);
    }

private:
    static double profile(double x, double y) {
        const double dx = x - 0.5, dy = y - 0.75;
        if (dx * dx + dy * dy > 0.15 * 0.15) return 0.0;
        if (std::abs(dx) < 0.025 && y < 0.85) return 0.0;  // the slot
        return 1.0;
    }
};

/// Steepening shock-like front: the inviscid Burgers equation u_t + u u_x =
/// 0 with a positive tanh ramp. Faster fluid behind catches slower fluid
/// ahead and the ramp steepens into a moving shock — no closed-form
/// reference after shock formation, so has_reference() is false.
class SteepeningFront final : public ProblemGenerator {
public:
    const char* name() const override { return "front"; }
    double max_speed() const override { return 1.2; }  // initial max u (a priori bound)
    /// The wave speed IS the field: reflux corrections and refinement can
    /// nudge the local max, so dt is recomputed from the live field each
    /// timestep rather than frozen at the initial bound.
    bool cfl_from_field() const override { return true; }
    double initial(const Vec3d& p) const override {
        return 0.8 + 0.4 * std::tanh((0.35 - p.x) / 0.08);
    }
    Vec3d velocity(const Vec3d&, double u) const override { return {u, 0.0, 0.0}; }
    /// Godunov flux for f(u) = u^2/2 along x; the transverse axes carry
    /// nothing. Exact for the convex Burgers flux, including transonic
    /// rarefactions (the ul <= 0 <= ur case).
    double face_flux(int axis, const Vec3d&, double ul, double ur) const override {
        if (axis != 0) return 0.0;
        const double fl = 0.5 * ul * ul;
        const double fr = 0.5 * ur * ur;
        if (ul <= ur) {
            if (ul <= 0.0 && 0.0 <= ur) return 0.0;
            return std::min(fl, fr);
        }
        return std::max(fl, fr);
    }
};

const GaussianPulse g_gaussian;
const SlottedCylinder g_slotted;
const SteepeningFront g_front;
const ProblemGenerator* const g_generators[] = {&g_gaussian, &g_slotted, &g_front};

}  // namespace

double ProblemGenerator::reference(const Vec3d&, double) const {
    throw Error(std::string("scenario '") + name() + "' has no analytic reference");
}

double ProblemGenerator::face_flux(int axis, const Vec3d& p, double ul, double ur) const {
    const double v = velocity(p, 0.5 * (ul + ur))[axis];
    return v >= 0.0 ? v * ul : v * ur;
}

void ProblemGenerator::init_block(amr::Block& blk, const Box& box) const {
    const amr::BlockShape& s = blk.shape();
    const Vec3d ext = box.extent();
    const Vec3d h{ext.x / s.nx, ext.y / s.ny, ext.z / s.nz};
    for (int v = 0; v < s.num_vars; ++v) {
        for (int x = 1; x <= s.nx; ++x) {
            for (int y = 1; y <= s.ny; ++y) {
                for (int z = 1; z <= s.nz; ++z) {
                    const Vec3d pos{box.lo.x + (x - 0.5) * h.x, box.lo.y + (y - 0.5) * h.y,
                                    box.lo.z + (z - 0.5) * h.z};
                    blk.at(v, x, y, z) = initial(pos);
                }
            }
        }
    }
}

std::int64_t ProblemGenerator::advance(amr::Block& blk, const Box& box, int var_begin,
                                       int var_end, double dt, amr::FluxRegister* reg) const {
    // Same rolling two-plane update as Block::stencil7: plane x reads
    // original planes x-1..x+1, so plane x-1 writes back once plane x is
    // done. Each cell computes all six of its face fluxes; interior faces
    // are therefore evaluated twice from identical inputs, which is exactly
    // what makes the telescoping sum cancel bitwise. The per-cell expression
    // has one fixed evaluation order — bit-identical results on every
    // variant and transport.
    const amr::BlockShape& s = blk.shape();
    const Vec3d ext = box.extent();
    const double hx = ext.x / s.nx, hy = ext.y / s.ny, hz = ext.z / s.nz;
    // Face coordinate i in 0..n along an axis. The two boundary faces take
    // the box bounds verbatim: abutting blocks derive those from the same
    // integer anchor arithmetic (GlobalStructure::box), so both sides of a
    // same-level interface evaluate velocity at bitwise-identical positions.
    const auto face_coord = [](double lo, double hi, double h, int i, int n) {
        if (i == 0) return lo;
        if (i == n) return hi;
        return lo + i * h;
    };
    const std::size_t plane = static_cast<std::size_t>(s.ny) * s.nz;
    std::vector<double>& scratch = amr::tls_scratch(2 * plane);
    const auto cell = [&](std::size_t buf, int y, int z) -> double& {
        return scratch[buf * plane + static_cast<std::size_t>(y - 1) * s.nz + (z - 1)];
    };
    const auto write_back = [&](int v, int x) {
        const std::size_t buf = static_cast<std::size_t>(x & 1);
        for (int y = 1; y <= s.ny; ++y) {
            for (int z = 1; z <= s.nz; ++z) {
                blk.at(v, x, y, z) = cell(buf, y, z);
            }
        }
    };
    for (int v = var_begin; v < var_end; ++v) {
        for (int x = 1; x <= s.nx; ++x) {
            const std::size_t buf = static_cast<std::size_t>(x & 1);
            const double pxc = box.lo.x + (x - 0.5) * hx;
            const double xl = face_coord(box.lo.x, box.hi.x, hx, x - 1, s.nx);
            const double xh = face_coord(box.lo.x, box.hi.x, hx, x, s.nx);
            for (int y = 1; y <= s.ny; ++y) {
                const double pyc = box.lo.y + (y - 0.5) * hy;
                const double yl = face_coord(box.lo.y, box.hi.y, hy, y - 1, s.ny);
                const double yh = face_coord(box.lo.y, box.hi.y, hy, y, s.ny);
                for (int z = 1; z <= s.nz; ++z) {
                    const double pzc = box.lo.z + (z - 0.5) * hz;
                    const double zl = face_coord(box.lo.z, box.hi.z, hz, z - 1, s.nz);
                    const double zh = face_coord(box.lo.z, box.hi.z, hz, z, s.nz);
                    const double u = blk.at(v, x, y, z);
                    const double fxl = face_flux(0, {xl, pyc, pzc}, blk.at(v, x - 1, y, z), u);
                    const double fxh = face_flux(0, {xh, pyc, pzc}, u, blk.at(v, x + 1, y, z));
                    const double fyl = face_flux(1, {pxc, yl, pzc}, blk.at(v, x, y - 1, z), u);
                    const double fyh = face_flux(1, {pxc, yh, pzc}, u, blk.at(v, x, y + 1, z));
                    const double fzl = face_flux(2, {pxc, pyc, zl}, blk.at(v, x, y, z - 1), u);
                    const double fzh = face_flux(2, {pxc, pyc, zh}, u, blk.at(v, x, y, z + 1));
                    cell(buf, y, z) =
                        u - dt * ((fxh - fxl) / hx + (fyh - fyl) / hy + (fzh - fzl) / hz);
                    if (reg != nullptr) {
                        if (x == 1) reg->at(0, -1, v, y, z) = fxl;
                        if (x == s.nx) reg->at(0, +1, v, y, z) = fxh;
                        if (y == 1) reg->at(1, -1, v, x, z) = fyl;
                        if (y == s.ny) reg->at(1, +1, v, x, z) = fyh;
                        if (z == 1) reg->at(2, -1, v, x, y) = fzl;
                        if (z == s.nz) reg->at(2, +1, v, x, y) = fzh;
                    }
                }
            }
            if (x > 1) write_back(v, x - 1);
        }
        write_back(v, s.nx);
    }
    // Bookkeeping like apply_stencil: ~33 floating-point operations per cell
    // (six upwind fluxes plus the three-term divergence).
    return 33 * static_cast<std::int64_t>(s.nx) * s.ny * s.nz * (var_end - var_begin);
}

double ProblemGenerator::stable_dt(const amr::Config& cfg) const {
    return dt_for_speed(cfg, max_speed());
}

double ProblemGenerator::dt_for_speed(const amr::Config& cfg, double speed) const {
    // Finest cell any run of this config can create: level-0 blocks per
    // dimension, each splittable num_refine times, nx/ny/nz cells per block.
    const double side = static_cast<double>(std::int64_t{1} << cfg.num_refine);
    const double fx = cfg.npx * cfg.init_x * side * cfg.nx;
    const double fy = cfg.npy * cfg.init_y * side * cfg.ny;
    const double fz = cfg.npz * cfg.init_z * side * cfg.nz;
    const double h_min = std::min({1.0 / fx, 1.0 / fy, 1.0 / fz});
    return kCfl * h_min / speed;
}

const ProblemGenerator* find_generator(const std::string& name) {
    for (const ProblemGenerator* g : g_generators) {
        if (name == g->name()) return g;
    }
    return nullptr;
}

std::vector<std::string> generator_names() {
    std::vector<std::string> names;
    for (const ProblemGenerator* g : g_generators) names.emplace_back(g->name());
    return names;
}

}  // namespace dfamr::scenario
