// Problem-generator registry: genuine workloads that replace the synthetic
// stencil sweep with a real per-timestep update kernel over the existing
// ghost machinery.
//
// A generator defines an initial profile, a (time-independent) velocity
// field, and — for analytic scenarios — the exact reference solution. The
// per-stage update is first-order upwind advection using the one-deep ghost
// shell the face exchange already fills:
//
//   u += -dt * [ max(vx,0)(u - u[x-1]) + min(vx,0)(u[x+1] - u) ] / hx
//        -dt * [ ... y ... ] / hy  -dt * [ ... z ... ] / hz
//
// The kernel is a pure function of (block data, block box, dt): identical
// across variants, decompositions and transports by construction, so the
// cross-variant bit-identity guarantees of the synthetic stencil carry
// over. dt is CFL-stable against the finest cell the run could ever create
// (a deterministic function of the Config alone).
//
// Every variable carries the same advected field: the update is uniform
// over the variable-group loop exactly like the synthetic stencil, so the
// drivers' staging/tasking structure is unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "amr/block.hpp"
#include "amr/config.hpp"
#include "common/geometry.hpp"

namespace dfamr::scenario {

class ProblemGenerator {
public:
    virtual ~ProblemGenerator() = default;
    virtual const char* name() const = 0;
    /// Upper bound on the velocity magnitude anywhere in the unit cube —
    /// the CFL bound stable_dt() divides by.
    virtual double max_speed() const = 0;
    /// Initial profile at physical position p.
    virtual double initial(const Vec3d& p) const = 0;
    /// Velocity at position p given the local value u (time-independent;
    /// only the shock-front scenario uses u).
    virtual Vec3d velocity(const Vec3d& p, double u) const = 0;
    /// Analytic solution at (p, t); only meaningful when has_reference().
    virtual bool has_reference() const { return false; }
    virtual double reference(const Vec3d& p, double t) const;

    /// Fills every variable's interior cells from the initial profile.
    void init_block(amr::Block& blk, const Box& box) const;
    /// One upwind advection step of dt over [var_begin, var_end). Returns
    /// the FLOPs done (throughput bookkeeping, like apply_stencil).
    /// Thread-safe: hybrid variants call it from worker threads.
    std::int64_t advance(amr::Block& blk, const Box& box, int var_begin, int var_end,
                         double dt) const;
    /// CFL-stable step against the finest possible cell of `cfg`.
    double stable_dt(const amr::Config& cfg) const;
};

/// Registry lookup by CLI name: "gaussian", "slotted_cylinder" or "front".
/// Returns null for unknown names ("synthetic" is not in the registry —
/// it selects the legacy stencil sweep and is handled by the caller).
const ProblemGenerator* find_generator(const std::string& name);

/// Registered generator names, for error messages and help text.
std::vector<std::string> generator_names();

}  // namespace dfamr::scenario
