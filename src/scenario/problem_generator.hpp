// Problem-generator registry: genuine workloads that replace the synthetic
// stencil sweep with a real per-timestep update kernel over the existing
// ghost machinery.
//
// A generator defines an initial profile, a (time-independent) velocity
// field, and — for analytic scenarios — the exact reference solution. The
// per-stage update is first-order finite-volume upwind advection in FLUX
// FORM: every cell face gets one upwind numerical flux and the update is
// the divergence of those fluxes,
//
//   u -= dt * [ (Fx_hi - Fx_lo)/hx + (Fy_hi - Fy_lo)/hy + (Fz_hi - Fz_lo)/hz ]
//
// Both cells adjacent to an interior face recompute the identical flux from
// identical inputs, and abutting same-level blocks evaluate their shared
// face at bitwise-identical coordinates (integer anchor arithmetic in
// GlobalStructure::box), so every same-level interface telescopes to zero
// exactly. At coarse-fine interfaces the two sides disagree; the kernel
// records its boundary-plane fluxes into a per-block FluxRegister and the
// drivers run a Berger–Colella reflux pass after each stage (DESIGN.md §18)
// so total mass is conserved to rounding there too.
//
// The kernel is a pure function of (block data, block box, dt): identical
// across variants, decompositions and transports by construction, so the
// cross-variant bit-identity guarantees of the synthetic stencil carry
// over. dt is CFL-stable against the finest cell the run could ever create
// (a deterministic function of the Config alone); generators whose speed is
// the advected field itself (cfl_from_field) have dt recomputed from the
// allreduced live field max each timestep instead.
//
// Every variable carries the same advected field: the update is uniform
// over the variable-group loop exactly like the synthetic stencil, so the
// drivers' staging/tasking structure is unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "amr/block.hpp"
#include "amr/config.hpp"
#include "common/geometry.hpp"

namespace dfamr::amr {
class FluxRegister;
}

namespace dfamr::scenario {

class ProblemGenerator {
public:
    virtual ~ProblemGenerator() = default;
    virtual const char* name() const = 0;
    /// Upper bound on the velocity magnitude anywhere in the unit cube —
    /// the CFL bound stable_dt() divides by.
    virtual double max_speed() const = 0;
    /// Initial profile at physical position p.
    virtual double initial(const Vec3d& p) const = 0;
    /// Velocity at position p given the local value u (time-independent;
    /// only the shock-front scenario uses u).
    virtual Vec3d velocity(const Vec3d& p, double u) const = 0;
    /// Upwind numerical flux through a face orthogonal to `axis` at position
    /// p, with left (lower-coordinate) and right cell states ul / ur. The
    /// default upwinds on the face velocity evaluated at the state average;
    /// nonlinear scenarios (Burgers front) override with a Godunov flux.
    virtual double face_flux(int axis, const Vec3d& p, double ul, double ur) const;
    /// True when the CFL speed is the advected field itself, so dt must be
    /// recomputed from the live field max each timestep (the drivers
    /// allreduce the max, keeping dt identical on every rank).
    virtual bool cfl_from_field() const { return false; }
    /// Analytic solution at (p, t); only meaningful when has_reference().
    virtual bool has_reference() const { return false; }
    virtual double reference(const Vec3d& p, double t) const;

    /// Fills every variable's interior cells from the initial profile.
    void init_block(amr::Block& blk, const Box& box) const;
    /// One flux-form upwind advection step of dt over [var_begin, var_end).
    /// Records the block's six boundary-plane fluxes into `reg` when given
    /// (the drivers' reflux pass consumes them; tests may pass null).
    /// Returns the FLOPs done (throughput bookkeeping, like apply_stencil).
    /// Thread-safe: hybrid variants call it from worker threads.
    std::int64_t advance(amr::Block& blk, const Box& box, int var_begin, int var_end, double dt,
                         amr::FluxRegister* reg = nullptr) const;
    /// CFL-stable step against the finest possible cell of `cfg`.
    double stable_dt(const amr::Config& cfg) const;
    /// Same CFL bound for an externally supplied speed (the live field max
    /// when cfl_from_field()).
    double dt_for_speed(const amr::Config& cfg, double speed) const;
};

/// Registry lookup by CLI name: "gaussian", "slotted_cylinder" or "front".
/// Returns null for unknown names ("synthetic" is not in the registry —
/// it selects the legacy stencil sweep and is handled by the caller).
const ProblemGenerator* find_generator(const std::string& name);

/// Registered generator names, for error messages and help text.
std::vector<std::string> generator_names();

}  // namespace dfamr::scenario
