#include "core/driver_base.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <span>

#include "amr/scratch.hpp"
#include "common/error.hpp"
#include "common/timing.hpp"

namespace dfamr::core {

namespace {
resilience::RetryPolicy retry_policy(const Config& cfg) {
    resilience::RetryPolicy policy;
    policy.max_attempts = cfg.comm_max_attempts;
    policy.timeout_ns = static_cast<std::int64_t>(cfg.comm_timeout_s * 1e9);
    return policy;
}

/// Cell coordinates of the in-plane point (u, v) on plane `a` of `axis`
/// (same convention as block.cpp's PlaneIndexer).
Vec3i plane_coords(int axis, int a, int u, int v) {
    if (axis == 0) return {a, u, v};
    if (axis == 1) return {u, a, v};
    return {u, v, a};
}
}  // namespace

DriverBase::DriverBase(const Config& cfg, mpi::Communicator& comm, Tracer* tracer)
    : cfg_(cfg),
      comm_(comm),
      rank_(comm.rank()),
      tracer_(tracer),
      hcomm_(comm, retry_policy(cfg), tracer),
      mesh_(cfg, comm.rank()) {
    cfg_.validate();
    DFAMR_REQUIRE(cfg_.num_ranks() == comm.size(),
                  "communicator size must match npx*npy*npz");
    condition_ = scenario::find_condition(cfg_.estimator);
    DFAMR_REQUIRE(condition_ != nullptr,
                  "unknown estimator '" + cfg_.estimator +
                      "' (expected objects, gradient or curvature)");
    if (cfg_.scenario != "synthetic") {
        generator_ = scenario::find_generator(cfg_.scenario);
        DFAMR_REQUIRE(generator_ != nullptr,
                      "unknown scenario '" + cfg_.scenario +
                          "' (expected synthetic, gaussian, slotted_cylinder or front)");
        dt_ = generator_->stable_dt(cfg_);
    }
    mesh_.init_blocks();
    if (generator_ != nullptr) {
        // Replace the hashed synthetic field with the scenario's initial
        // profile (a checkpoint restore overwrites this wholesale later).
        for (const BlockKey& key : mesh_.owned_keys()) {
            generator_->init_block(mesh_.block(key), mesh_.structure().box(key));
        }
    }
    rebuild_comm_plan();
}

void DriverBase::sample_sched_counters() {
    if (tracer_ == nullptr || !tracer_->enabled()) return;
    const SchedulerCounters c = scheduler_counters();
    const std::int64_t t = now_ns();
    tracer_->record_counter(rank_, t, "tasks_executed", static_cast<double>(c.tasks_executed));
    tracer_->record_counter(rank_, t, "steals", static_cast<double>(c.steals));
    tracer_->record_counter(rank_, t, "parks", static_cast<double>(c.parks));
    tracer_->record_counter(rank_, t, "wakeups", static_cast<double>(c.wakeups));
}

void DriverBase::rebuild_comm_plan() {
    amr::CommPlanOptions options;
    options.send_faces = cfg_.send_faces;
    options.max_comm_tasks = cfg_.max_comm_tasks;
    plan_ = CommPlan(mesh_.structure(), mesh_.shape(), rank_, options);
    buffers_ = std::make_unique<CommBuffers>(plan_, cfg_.vars_per_group(), cfg_.separate_buffers);
    if (generator_ != nullptr) {
        // Flux registers and their exchange plan follow the ghost plan's
        // lifetime: registers are per-stage transient, so nothing needs to
        // survive a rebuild.
        flux_plan_ = amr::build_flux_plan(plan_, mesh_.shape());
        flux_regs_.clear();
        for (const BlockKey& key : mesh_.owned_keys()) {
            flux_regs_.emplace(key, FluxRegister(mesh_.shape()));
        }
        const int gvars = cfg_.vars_per_group();
        for (int d = 0; d < 3; ++d) {
            const auto& fd = flux_plan_.direction(d);
            auto& sends = flux_send_[static_cast<std::size_t>(d)];
            auto& recvs = flux_recv_[static_cast<std::size_t>(d)];
            sends.assign(fd.neighbors.size(), {});
            recvs.assign(fd.neighbors.size(), {});
            for (std::size_t i = 0; i < fd.neighbors.size(); ++i) {
                const amr::NeighborExchange& ex = fd.neighbors[i];
                sends[i].assign(static_cast<std::size_t>(ex.send_values * gvars), 0.0);
                recvs[i].assign(static_cast<std::size_t>(ex.recv_values * gvars), 0.0);
            }
        }
    }
}

RankResult DriverBase::run() {
    comm_.barrier();
    Stopwatch total;
    total.start();
    if (control_ != nullptr && control_->restore_image != nullptr) {
        restore_state();
    } else if (!cfg_.restore_path.empty()) {
        // The checkpoint already contains the fully refined, balanced mesh;
        // skip the initial refinement and resume the timestep loop.
        restore_state();
    } else if (cfg_.refine_freq > 0 && cfg_.num_refine > 0) {
        // Initial refinement phase: adapt the initial mesh to the objects
        // before the first timestep (the dense region at the start of the
        // Fig. 1 traces).
        refinement_phase(0);
    }
    if (generator_ != nullptr && !restored_initial_mass_) {
        const double local = local_mass();
        comm_.allreduce(&local, &result_.initial_mass, 1, mpi::Op::Sum);
    }
    main_loop();
    final_sync();
    compute_error_norm();
    if (generator_ != nullptr) {
        // Conservation accounting, allreduced once so every rank reports
        // the global values (like error_norm). The budget identity
        // |final - initial + outflux| ~ rounding is what "conserved" means;
        // mass_drift is the per-interface reflux residual, exactly zero.
        const double local = local_mass();
        comm_.allreduce(&local, &result_.final_mass, 1, mpi::Op::Sum);
        double drift = mass_drift_.load();
        comm_.allreduce(&drift, &result_.mass_drift, 1, mpi::Op::Sum);
        comm_.allreduce(&boundary_outflux_, &result_.boundary_outflux, 1, mpi::Op::Sum);
        const std::int64_t corrections = reflux_corrections_.load();
        comm_.allreduce(&corrections, &result_.counters.reflux_corrections, 1, mpi::Op::Sum);
    }
    total.stop();
    result_.sched = scheduler_counters();
    result_.times.total = total.elapsed_s();
    result_.final_blocks = static_cast<std::int64_t>(mesh_.num_owned());
    return result_;
}

void DriverBase::main_loop() {
    for (int ts = start_ts_; ts <= cfg_.num_tsteps; ++ts) {
        maybe_recompute_dt();
        for (int stage = 0; stage < cfg_.stages_per_ts; ++stage) {
            for (int group = 0; group < cfg_.num_groups(); ++group) {
                communicate_stage(group);
                stencil_stage(group);
                if (generator_ != nullptr) reflux_stage(group);
            }
            ++stage_counter_;
            sim_time_ += dt_;
            if (cfg_.checksum_freq > 0 && stage_counter_ % cfg_.checksum_freq == 0) {
                Stopwatch sw;
                sw.start();
                checksum_stage();
                sw.stop();
                result_.times.checksum += sw.elapsed_s();
            }
        }
        if (cfg_.refine_freq > 0 && cfg_.num_refine > 0 && ts % cfg_.refine_freq == 0) {
            refinement_phase(cfg_.refine_freq);
        }
        if (cfg_.checkpoint_every > 0 && ts % cfg_.checkpoint_every == 0) {
            write_state(ts);
        }
        sample_sched_counters();
        if (control_ != nullptr) {
            const RunAction action = consult_control(ts);
            if (action == RunAction::Suspend) {
                write_state(ts, /*suspending=*/true);
                result_.stop = StopKind::Suspended;
                result_.stop_ts = ts;
                return;
            }
            if (action == RunAction::Cancel) {
                // Quiesce like a checkpoint would, but drop the state.
                sync_before_refine();
                comm_.barrier();
                result_.stop = StopKind::Cancelled;
                result_.stop_ts = ts;
                return;
            }
        }
    }
}

RunAction DriverBase::consult_control(int ts_completed) {
    int decision = static_cast<int>(RunAction::Continue);
    if (rank_ == 0 && control_->on_timestep) {
        decision = static_cast<int>(control_->on_timestep(ts_completed, cfg_.num_tsteps));
    }
    // Collective agreement: every rank must take the same branch, so the
    // rank-0 decision is broadcast before anyone acts on it.
    comm_.bcast(&decision, sizeof decision, 0);
    return static_cast<RunAction>(decision);
}

void DriverBase::write_state(int ts_completed, bool suspending) {
    // Quiesce: drain in-flight tasks and resolve any deferred checksum so
    // the serialized state equals what a fresh run would hold at this point.
    sync_before_refine();
    comm_.barrier();
    const std::int64_t t0 = now_ns();

    resilience::CheckpointState state;
    state.config_fingerprint = resilience::config_fingerprint(cfg_);
    state.nranks = cfg_.num_ranks();
    state.ts_completed = ts_completed;
    state.stage_counter = stage_counter_;
    state.sim_time = sim_time_;
    state.initial_mass = result_.initial_mass;  // allreduced before main_loop
    // Conservation tallies are per-rank accumulators; the image stores the
    // global sums (we are quiesced and collective here) and a restore seeds
    // rank 0 with them, so end-of-run totals match an uninterrupted run.
    // The flux registers themselves are per-stage transient — overwritten by
    // the first advance after the restore — and are not serialized.
    double drift = mass_drift_.load();
    comm_.allreduce(&drift, &state.mass_drift, 1, mpi::Op::Sum);
    comm_.allreduce(&boundary_outflux_, &state.boundary_outflux, 1, mpi::Op::Sum);
    const std::int64_t corrections = reflux_corrections_.load();
    comm_.allreduce(&corrections, &state.reflux_corrections, 1, mpi::Op::Sum);
    state.objects = cfg_.objects;
    state.checksums = result_.checksums;
    state.checksum_reference = checksum_reference_;
    state.validation_ok = result_.validation_ok;
    state.owners = mesh_.structure().leaves();
    state.deref_counts = deref_counts_;

    // Route the assembled image: a suspension always goes to the host's
    // in-memory sink; a periodic checkpoint goes in-memory when the host
    // asked for it (on_checkpoint_image) and to disk otherwise. The image
    // bytes are identical either way.
    const bool to_memory =
        control_ != nullptr &&
        ((suspending && control_->on_suspend_image) || (!suspending && control_->on_checkpoint_image));
    if (to_memory) {
        std::vector<std::byte> image =
            resilience::build_checkpoint(hcomm_, state, resilience::serialize_rank_blocks(mesh_));
        if (rank_ == 0) {
            if (suspending) {
                control_->on_suspend_image(std::move(image));
            } else {
                control_->on_checkpoint_image(ts_completed, std::move(image));
            }
        }
    } else {
        resilience::write_checkpoint(hcomm_, cfg_.checkpoint_path, state,
                                     resilience::serialize_rank_blocks(mesh_));
    }

    trace(0, t0, now_ns(), PhaseKind::Control);
    comm_.barrier();  // nobody resumes until the image is durably in place
}

void DriverBase::restore_state() {
    const std::int64_t t0 = now_ns();
    const bool from_memory = control_ != nullptr && control_->restore_image != nullptr;
    const std::span<const std::byte> image =
        from_memory ? std::span<const std::byte>(*control_->restore_image)
                    : std::span<const std::byte>{};
    const resilience::CheckpointState state =
        from_memory ? resilience::read_checkpoint_state(image)
                    : resilience::read_checkpoint_state(cfg_.restore_path);
    DFAMR_REQUIRE(state.config_fingerprint == resilience::config_fingerprint(cfg_),
                  "checkpoint was written by an incompatible configuration");
    DFAMR_REQUIRE(state.nranks == cfg_.num_ranks(), "checkpoint rank count mismatch");

    cfg_.objects = state.objects;
    result_.checksums = state.checksums;
    result_.validation_ok = state.validation_ok;
    checksum_reference_ = state.checksum_reference;
    start_ts_ = state.ts_completed + 1;
    stage_counter_ = state.stage_counter;
    sim_time_ = state.sim_time;
    // The budget identity must keep referring to the true start of the
    // simulation: every rank adopts the stored global initial mass instead
    // of re-summing the (mid-run) restored field.
    result_.initial_mass = state.initial_mass;
    restored_initial_mass_ = true;
    // The image holds global tallies; seed them on rank 0 only so the
    // end-of-run Sum-allreduce does not multiply-count them.
    if (rank_ == 0) {
        mass_drift_.store(state.mass_drift);
        boundary_outflux_ = state.boundary_outflux;
        reflux_corrections_.store(state.reflux_corrections);
    }
    // Mid-streak coarsen-willing counters resume exactly where the
    // checkpointed run stood; a restored run must coarsen on the same
    // check the uninterrupted run would have.
    deref_counts_ = state.deref_counts;

    mesh_.structure().restore_leaves(state.owners);
    mesh_.clear_blocks();
    for (auto& [key, data] : from_memory
                                 ? resilience::read_rank_blocks(image, rank_)
                                 : resilience::read_rank_blocks(cfg_.restore_path, rank_)) {
        auto block = mesh_.make_block(key);
        DFAMR_REQUIRE(data.size() == block->data_size(), "checkpoint block size mismatch");
        std::copy(data.begin(), data.end(), block->data());
        mesh_.adopt(std::move(block));
    }
    DFAMR_ASSERT(mesh_.num_owned() == mesh_.structure().blocks_of(rank_).size());
    rebuild_comm_plan();
    trace(0, t0, now_ns(), PhaseKind::Control);
    comm_.barrier();  // ranks enter the resumed loop together
}

void DriverBase::refinement_phase(int timesteps_elapsed) {
    sync_before_refine();
    ++result_.counters.refinement_phases;
    // Snapshot after the drain: tasks retired by sync_before_refine belong
    // to the compute stages, everything from here to the end of the phase
    // (split/merge copies, exchange pack/unpack) is refinement work.
    const SchedulerCounters sched_at_entry = scheduler_counters();
    sample_sched_counters();
    Stopwatch sw;
    sw.start();

    for (int i = 0; i < timesteps_elapsed; ++i) {
        for (amr::ObjectSpec& obj : cfg_.objects) obj.step();
    }

    amr::GlobalStructure& structure = mesh_.structure();
    const int rounds = cfg_.max_block_change();
    for (int round_idx = 0; round_idx < rounds; ++round_idx) {
        const RefineRound round = plan_round();
        if (round.empty()) break;

        // Thrash bookkeeping (replicated: marks and check counters are
        // identical on every rank): a merge of a parent split within the
        // last deref_count planning checks is a refine/coarsen thrash.
        for (const BlockKey& key : round.refine) split_check_[key] = planning_checks_;
        for (const BlockKey& parent : round.coarsen_parents) {
            if (auto it = split_check_.find(parent); it != split_check_.end()) {
                if (planning_checks_ - it->second <= cfg_.deref_count) {
                    ++result_.counters.refine_coarsen_thrash;
                }
                split_check_.erase(it);
            }
        }

        // Splits of owned blocks (taskified copies in the data-flow variant).
        std::vector<BlockKey> my_splits;
        for (const BlockKey& key : round.refine) {
            if (structure.owner(key) == rank_) my_splits.push_back(key);
        }
        do_splits(my_splits);
        result_.counters.blocks_split += static_cast<std::int64_t>(my_splits.size());
        if (condition_->needs_field_data()) {
            result_.counters.blocks_refined_by_estimator +=
                static_cast<std::int64_t>(my_splits.size());
        }

        // Coarsening: ship children to the future parent owner, then merge.
        std::vector<BlockMove> moves;
        std::vector<BlockKey> my_merges;
        int next_id = 0;
        for (const BlockKey& parent : round.coarsen_parents) {
            const int new_owner = structure.owner(parent.child(0, structure.max_level()));
            if (new_owner == rank_) my_merges.push_back(parent);
            for (int octant = 1; octant < 8; ++octant) {
                const BlockKey child = parent.child(octant, structure.max_level());
                const int child_owner = structure.owner(child);
                if (child_owner != new_owner) {
                    moves.push_back(BlockMove{child, child_owner, new_owner, next_id});
                }
                ++next_id;  // id advances for every candidate: identical on all ranks
            }
        }
        exchange_blocks(moves, /*with_ack_protocol=*/false);
        do_merges(my_merges);
        result_.counters.blocks_merged += static_cast<std::int64_t>(my_merges.size());
        sync_refine_step();

        structure.apply_refine_round(round);
        prune_refine_state();
        DFAMR_ASSERT(mesh_.num_owned() == structure.blocks_of(rank_).size());
    }

    // Load balancing (inside the refinement phase, like miniAMR).
    if (cfg_.lb_opt && structure.imbalance() > cfg_.inbalance) {
        const auto new_owners = structure.rcb_partition();
        std::vector<BlockMove> moves;
        int next_id = 0;
        for (const auto& [key, owner] : structure.leaves()) {
            const int target = new_owners.at(key);
            if (target != owner) moves.push_back(BlockMove{key, owner, target, next_id});
            ++next_id;
        }
        exchange_blocks(moves, /*with_ack_protocol=*/true);
        sync_refine_step();
        ++result_.counters.load_balances;
        structure.set_owners(new_owners);
        DFAMR_ASSERT(mesh_.num_owned() == structure.blocks_of(rank_).size());
    }

    rebuild_comm_plan();
    reset_checksum_reference();
    sw.stop();
    result_.sched_refine += scheduler_counters() - sched_at_entry;
    sample_sched_counters();
    result_.times.refine += sw.elapsed_s();
}

RefineRound DriverBase::plan_round() {
    const amr::GlobalStructure& structure = mesh_.structure();
    const auto& leaves = structure.leaves();
    const scenario::ScoreContext ctx{&cfg_.objects, cfg_.uniform_refine};

    std::vector<double> scores(leaves.size(), 0.0);
    std::size_t i = 0;
    if (condition_->needs_field_data()) {
        // Field data lives only on the owning rank, but marks must be
        // globally identical: each rank fills its owned entries of the
        // leaves-in-key-order score vector (zero elsewhere) and one
        // Sum-allreduce turns disjoint ownership into a gather.
        for (const auto& [key, owner] : leaves) {
            if (owner == rank_) {
                scores[i] = condition_->score(&mesh_.block(key), structure.box(key), ctx);
            }
            ++i;
        }
        std::vector<double> global(scores.size(), 0.0);
        const std::int64_t t0 = now_ns();
        comm_.allreduce(scores.data(), global.data(), global.size(), mpi::Op::Sum);
        trace(0, t0, now_ns(), PhaseKind::Control);
        scores = std::move(global);
    } else {
        for (const auto& [key, owner] : leaves) {
            scores[i++] = condition_->score(nullptr, structure.box(key), ctx);
        }
    }

    // Threshold + hysteresis, replicated deterministically on every rank:
    // refine strictly above the threshold; below the deref band a block
    // must stay willing for deref_count consecutive checks to coarsen.
    ++planning_checks_;
    std::map<BlockKey, int> marks;
    i = 0;
    for (const auto& [key, owner] : leaves) {
        const double s = scores[i++];
        int mark = 0;
        if (s > cfg_.refine_threshold && key.level < structure.max_level()) {
            mark = +1;
            deref_counts_.erase(key);
        } else if (key.level > 0 && s < cfg_.refine_threshold * scenario::kDerefBand) {
            if (++deref_counts_[key] >= cfg_.deref_count) mark = -1;
        } else {
            deref_counts_.erase(key);
        }
        marks.emplace(key, mark);
    }
    return structure.plan_refine_round_marks(std::move(marks));
}

void DriverBase::prune_refine_state() {
    const amr::GlobalStructure& structure = mesh_.structure();
    for (auto it = deref_counts_.begin(); it != deref_counts_.end();) {
        it = structure.is_leaf(it->first) ? std::next(it) : deref_counts_.erase(it);
    }
}

double DriverBase::checksum_weight(const BlockKey& key) const {
    if (generator_ == nullptr) return 1.0;
    const Box box = mesh_.structure().box(key);
    const amr::BlockShape& s = mesh_.shape();
    const Vec3d ext = box.extent();
    return (ext.x / s.nx) * (ext.y / s.ny) * (ext.z / s.nz);
}

double DriverBase::local_mass() const {
    double total = 0;
    for (const BlockKey& key : mesh_.owned_keys()) {
        total += checksum_weight(key) * mesh_.block(key).checksum(0, cfg_.num_vars);
    }
    return total;
}

void DriverBase::maybe_recompute_dt() {
    if (generator_ == nullptr || !generator_->cfl_from_field()) return;
    quiesce();
    const amr::BlockShape& s = mesh_.shape();
    double local = 0;
    for (const BlockKey& key : mesh_.owned_keys()) {
        const Block& blk = mesh_.block(key);
        for (int var = 0; var < s.num_vars; ++var) {
            for (int x = 1; x <= s.nx; ++x) {
                for (int y = 1; y <= s.ny; ++y) {
                    for (int z = 1; z <= s.nz; ++z) {
                        local = std::max(local, std::abs(blk.at(var, x, y, z)));
                    }
                }
            }
        }
    }
    double global = 0;
    const std::int64_t t0 = now_ns();
    comm_.allreduce(&local, &global, 1, mpi::Op::Max);
    trace(0, t0, now_ns(), PhaseKind::Control);
    // Max is order-insensitive, so every rank lands on the identical dt
    // regardless of decomposition. A zero field would mean no transport at
    // all; keep the a-priori bound in that (degenerate) case.
    if (global > 0.0) dt_ = generator_->dt_for_speed(cfg_, global);
}

void DriverBase::apply_flux_correction(const amr::FaceTransfer& face, int var_begin, int var_end,
                                       std::span<const double> fine_flux) {
    Block& blk = mesh_.block(face.mine);
    FluxRegister& reg = flux_regs_.at(face.mine);
    const FaceGeom& g = face.geom;  // rel == Finer: quad names the fine quarter
    const amr::BlockShape& s = mesh_.shape();
    const Box box = mesh_.structure().box(face.mine);
    const auto [ua, va] = s.plane_axes(g.axis);
    const int U = s.dim(ua), V = s.dim(va);
    const int a = g.sense > 0 ? s.dim(g.axis) : 1;  // interior boundary plane
    const double h = box.extent()[g.axis] / s.dim(g.axis);
    const double scale = -g.sense * (dt_ / h);
    const int qu = (g.quad & 1) * (U / 2);
    const int qv = ((g.quad >> 1) & 1) * (V / 2);
    double drift = 0;
    std::size_t o = 0;
    for (int var = var_begin; var < var_end; ++var) {
        for (int u = 0; u < U / 2; ++u) {
            for (int v = 0; v < V / 2; ++v) {
                const double fine = fine_flux[o++];
                double& coarse = reg.at(g.axis, g.sense, var, qu + u + 1, qv + v + 1);
                const Vec3i c = plane_coords(g.axis, a, qu + u + 1, qv + v + 1);
                // Berger–Colella reflux: replace my flux with the restricted
                // fine flux; the interface then telescopes against the fine
                // side's registers exactly.
                blk.at(var, c.x, c.y, c.z) += scale * (fine - coarse);
                coarse = fine;
                drift += std::abs(coarse - fine);
            }
        }
    }
    // Every term above is exactly 0.0 (the register was just assigned), so
    // the accumulation order across threads cannot matter. Any nonzero total
    // would mean a coarse-fine face escaped the reflux pass.
    mass_drift_.fetch_add(drift, std::memory_order_relaxed);
    reflux_corrections_.fetch_add(static_cast<std::int64_t>(o), std::memory_order_relaxed);
}

void DriverBase::apply_intra_flux(const amr::IntraCopy& copy, int var_begin, int var_end) {
    const FluxRegister& src = flux_regs_.at(copy.src);
    const std::size_t n = static_cast<std::size_t>(
        mesh_.shape().face_values_mixed(copy.geom.axis, var_end - var_begin));
    std::span<double> buf(amr::tls_scratch(n).data(), n);
    // The fine source's matching face is on its opposite sense.
    src.pack_restricted(copy.geom.axis, -copy.geom.sense, var_begin, var_end, buf);
    const amr::FaceTransfer face{copy.dst, copy.src, copy.geom, 0,
                                 static_cast<std::int64_t>(n) / (var_end - var_begin)};
    apply_flux_correction(face, var_begin, var_end, buf);
}

void DriverBase::accumulate_boundary_outflux(int dir, int var_begin, int var_end) {
    const amr::BlockShape& s = mesh_.shape();
    const auto [ua, va] = s.plane_axes(dir);
    for (const auto& [key, sense] : plan_.direction(dir).boundary) {
        const FluxRegister& reg = flux_regs_.at(key);
        const Box box = mesh_.structure().box(key);
        const Vec3d ext = box.extent();
        const double area = (ext[ua] / s.dim(ua)) * (ext[va] / s.dim(va));
        double sum = 0;
        for (int var = var_begin; var < var_end; ++var) {
            for (int u = 1; u <= s.dim(ua); ++u) {
                for (int v = 1; v <= s.dim(va); ++v) {
                    sum += reg.at(dir, sense, var, u, v);
                }
            }
        }
        // Signed: mass leaving through a high face (sense +1) counts
        // positive. One term per block keeps the accumulation order fixed.
        boundary_outflux_ += sense * sum * area * dt_;
    }
}

void DriverBase::compute_error_norm() {
    if (generator_ == nullptr || !generator_->has_reference()) return;
    const double t = sim_time_;
    double local = 0;
    for (const BlockKey& key : mesh_.owned_keys()) {
        const Block& blk = mesh_.block(key);
        const Box box = mesh_.structure().box(key);
        const amr::BlockShape& s = blk.shape();
        const Vec3d ext = box.extent();
        const double hx = ext.x / s.nx, hy = ext.y / s.ny, hz = ext.z / s.nz;
        const double vol = hx * hy * hz;
        for (int x = 1; x <= s.nx; ++x) {
            for (int y = 1; y <= s.ny; ++y) {
                for (int z = 1; z <= s.nz; ++z) {
                    const Vec3d pos{box.lo.x + (x - 0.5) * hx, box.lo.y + (y - 0.5) * hy,
                                    box.lo.z + (z - 0.5) * hz};
                    local += std::abs(blk.at(0, x, y, z) - generator_->reference(pos, t)) * vol;
                }
            }
        }
    }
    double global = 0;
    comm_.allreduce(&local, &global, 1, mpi::Op::Sum);
    result_.error_norm = global;
    result_.has_error_norm = true;
}

void DriverBase::exchange_blocks(const std::vector<BlockMove>& moves, bool with_ack_protocol) {
    std::vector<BlockMove> sends, recvs;
    for (const BlockMove& mv : moves) {
        if (mv.from == rank_) sends.push_back(mv);
        if (mv.to == rank_) recvs.push_back(mv);
    }
    result_.counters.blocks_moved += static_cast<std::int64_t>(sends.size());
    if (with_ack_protocol) {
        // §IV-B: the receiver acknowledges it has space; the sender then
        // transmits the block identifier as an extra control message so both
        // sides can tag the data transfer. Control messages stay sequential
        // on the main thread (blocking MPI), exactly like the paper.
        const std::int64_t t0 = now_ns();
        int ack = 1;
        for (const BlockMove& mv : recvs) {
            hcomm_.send(&ack, sizeof ack, mv.from, kAckTag);
        }
        for (const BlockMove& mv : sends) {
            int got = 0;
            hcomm_.recv(&got, sizeof got, mv.to, kAckTag);
            DFAMR_REQUIRE(got == 1, "negative exchange ACK (receiver out of space)");
            hcomm_.send(&mv.id, sizeof mv.id, mv.to, kBlockIdTag);
        }
        for (const BlockMove& mv : recvs) {
            int id = -1;
            hcomm_.recv(&id, sizeof id, mv.from, kBlockIdTag);
            DFAMR_REQUIRE(id == mv.id, "exchange protocol id mismatch");
        }
        trace(0, t0, now_ns(), PhaseKind::Control);
    }
    transfer_block_data(sends, recvs);
}

void DriverBase::reduce_and_validate(const std::vector<double>& local_group_sums) {
    DFAMR_REQUIRE(static_cast<int>(local_group_sums.size()) == cfg_.num_groups(),
                  "one local sum per variable group expected");
    std::vector<double> global(local_group_sums.size(), 0.0);
    const std::int64_t t0 = now_ns();
    comm_.allreduce(local_group_sums.data(), global.data(), global.size(), mpi::Op::Sum);
    trace(0, t0, now_ns(), PhaseKind::ChecksumReduce);

    bool ok = true;
    if (!checksum_reference_.empty()) {
        for (std::size_t g = 0; g < global.size(); ++g) {
            const double ref = checksum_reference_[g];
            const double drift = std::abs(global[g] - ref);
            if (drift > cfg_.tol * std::max(1.0, std::abs(ref))) ok = false;
        }
    }
    checksum_reference_ = global;
    ++result_.counters.checksum_stages;
    double total = 0;
    for (double v : global) total += v;
    result_.checksums.push_back(total);
    result_.validation_ok = result_.validation_ok && ok;
}

}  // namespace dfamr::core
