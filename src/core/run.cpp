// Top-level variant runner: spins up the in-process MPI world, runs one
// driver per rank, and reduces the per-rank results.
#include "core/variants.hpp"

#include <mutex>

#include "common/error.hpp"
#include "core/fork_join.hpp"
#include "core/mpi_only.hpp"
#include "core/tampi_oss.hpp"

namespace dfamr::core {

RunResult run_variant(const amr::Config& cfg, amr::Variant variant, amr::Tracer* tracer,
                      mpi::FaultInjector* faults) {
    cfg.validate();
    mpi::World world(cfg.num_ranks(), faults);

    std::mutex results_mutex;
    std::vector<RankResult> results(static_cast<std::size_t>(cfg.num_ranks()));

    world.run([&](mpi::Communicator& comm) {
        std::unique_ptr<DriverBase> driver;
        switch (variant) {
            case amr::Variant::MpiOnly: {
                amr::Config rank_cfg = cfg;
                rank_cfg.workers = 1;  // one rank per core, sequential inside
                driver = std::make_unique<MpiOnlyDriver>(rank_cfg, comm, tracer);
                break;
            }
            case amr::Variant::ForkJoin:
                driver = std::make_unique<ForkJoinDriver>(cfg, comm, tracer);
                break;
            case amr::Variant::TampiOss:
                driver = std::make_unique<TampiOssDriver>(cfg, comm, tracer);
                break;
        }
        RankResult r = driver->run();
        std::lock_guard lock(results_mutex);
        results[static_cast<std::size_t>(comm.rank())] = std::move(r);
    });

    RunResult total;
    total.checksums = results[0].checksums;
    for (const RankResult& r : results) {
        total.times.total = std::max(total.times.total, r.times.total);
        total.times.refine = std::max(total.times.refine, r.times.refine);
        total.times.comm = std::max(total.times.comm, r.times.comm);
        total.times.stencil = std::max(total.times.stencil, r.times.stencil);
        total.times.checksum = std::max(total.times.checksum, r.times.checksum);
        total.total_flops += r.stencil_flops;
        total.final_blocks += r.final_blocks;
        total.validation_ok = total.validation_ok && r.validation_ok;
        total.counters += r.counters;
        total.sched += r.sched;
        total.sched_refine += r.sched_refine;
        DFAMR_REQUIRE(r.checksums.size() == total.checksums.size(),
                      "ranks disagree on the number of checksum stages");
    }
    total.messages = world.messages_delivered();
    total.bytes = world.bytes_delivered();
    return total;
}

}  // namespace dfamr::core
