// Top-level variant runner: spins up the MPI world (in-process or TCP),
// runs one driver per local rank, and reduces the per-rank results. In a
// distributed world the reduction itself runs over MPI collectives, so
// every rank process returns the identical global RunResult.
#include <cstdlib>
#include <mutex>

#include "common/error.hpp"
#include "core/fork_join.hpp"
#include "core/mpi_only.hpp"
#include "core/tampi_oss.hpp"
#include "core/variants.hpp"

namespace dfamr::core {

namespace {

/// Cross-process reduction of one rank's result, mirroring the local
/// reduction in run_variant exactly (same operators per field). Every rank
/// computes the same global totals; checksums are already globally agreed.
RunResult reduce_distributed(mpi::Communicator& comm, const RankResult& r,
                             std::uint64_t local_messages, std::uint64_t local_bytes,
                             const net::NetCounters& local_net,
                             const std::vector<net::PeerStats>& local_peers) {
    RunResult g;
    g.checksums = r.checksums;

    // error_norm and the conservation ledger are already globally summed
    // inside the driver; Max just picks the agreed value without double
    // counting.
    double tmax_in[10] = {r.times.total,   r.times.refine,      r.times.comm,
                          r.times.stencil, r.times.checksum,    r.error_norm,
                          r.mass_drift,    r.boundary_outflux,  r.initial_mass,
                          r.final_mass};
    double tmax[10];
    comm.allreduce(tmax_in, tmax, 10, mpi::Op::Max);
    g.times.total = tmax[0];
    g.times.refine = tmax[1];
    g.times.comm = tmax[2];
    g.times.stencil = tmax[3];
    g.times.checksum = tmax[4];
    g.error_norm = tmax[5];
    g.mass_drift = tmax[6];
    g.boundary_outflux = tmax[7];
    g.initial_mass = tmax[8];
    g.final_mass = tmax[9];

    std::int64_t sums_in[6] = {r.stencil_flops,          r.final_blocks,
                               r.counters.blocks_split,  r.counters.blocks_merged,
                               r.counters.blocks_moved,  r.counters.blocks_refined_by_estimator};
    std::int64_t sums[6];
    comm.allreduce(sums_in, sums, 6, mpi::Op::Sum);
    g.total_flops = sums[0];
    g.final_blocks = sums[1];
    g.counters.blocks_split = sums[2];
    g.counters.blocks_merged = sums[3];
    g.counters.blocks_moved = sums[4];
    g.counters.blocks_refined_by_estimator = sums[5];

    std::int64_t maxes_in[6] = {r.counters.refinement_phases, r.counters.load_balances,
                                r.counters.checksum_stages, r.counters.refine_coarsen_thrash,
                                r.has_error_norm ? std::int64_t{1} : std::int64_t{0},
                                r.counters.reflux_corrections};
    std::int64_t maxes[6];
    comm.allreduce(maxes_in, maxes, 6, mpi::Op::Max);
    g.counters.refinement_phases = maxes[0];
    g.counters.load_balances = maxes[1];
    g.counters.checksum_stages = maxes[2];
    g.counters.refine_coarsen_thrash = maxes[3];
    g.has_error_norm = maxes[4] != 0;
    g.counters.reflux_corrections = maxes[5];

    std::uint64_t usums_in[23] = {
        r.sched.tasks_executed, r.sched.steals, r.sched.steal_fails, r.sched.parks,
        r.sched.wakeups, r.sched.immediate_successor_hits,
        r.sched_refine.tasks_executed, r.sched_refine.steals, r.sched_refine.steal_fails,
        r.sched_refine.parks, r.sched_refine.wakeups, r.sched_refine.immediate_successor_hits,
        local_messages, local_bytes,
        local_net.bytes_sent, local_net.bytes_received, local_net.frames_sent,
        local_net.frames_received, local_net.rendezvous, local_net.reconnects,
        local_net.coalesced_frames_sent, local_net.coalesced_messages,
        local_net.copies_elided};
    std::uint64_t usums[23];
    comm.allreduce(usums_in, usums, 23, mpi::Op::Sum);
    g.sched = {usums[0], usums[1], usums[2], usums[3], usums[4], usums[5]};
    g.sched_refine = {usums[6], usums[7], usums[8], usums[9], usums[10], usums[11]};
    g.messages = usums[12];
    g.bytes = usums[13];
    g.net = {usums[14], usums[15], usums[16], usums[17], usums[18], usums[19],
             usums[20], usums[21], usums[22]};

    // Per-peer wire traffic, flattened to nranks x 4 for one summed
    // allreduce (entry p = what every rank exchanged with rank p).
    const std::size_t nranks = static_cast<std::size_t>(comm.size());
    std::vector<std::uint64_t> peers_in(nranks * 4, 0);
    for (std::size_t p = 0; p < nranks && p < local_peers.size(); ++p) {
        peers_in[p * 4 + 0] = local_peers[p].bytes_sent;
        peers_in[p * 4 + 1] = local_peers[p].frames_sent;
        peers_in[p * 4 + 2] = local_peers[p].bytes_received;
        peers_in[p * 4 + 3] = local_peers[p].frames_received;
    }
    std::vector<std::uint64_t> peers_out(nranks * 4, 0);
    comm.allreduce(peers_in.data(), peers_out.data(), nranks * 4, mpi::Op::Sum);
    g.net_peers.resize(nranks);
    for (std::size_t p = 0; p < nranks; ++p) {
        g.net_peers[p] = {peers_out[p * 4 + 0], peers_out[p * 4 + 1], peers_out[p * 4 + 2],
                          peers_out[p * 4 + 3]};
    }

    int ok_in = r.validation_ok ? 1 : 0;
    int ok = 0;
    comm.allreduce(&ok_in, &ok, 1, mpi::Op::Min);
    g.validation_ok = ok == 1;
    return g;
}

}  // namespace

void RunOptions::register_cli(CliParser& cli) {
    cli.add_option("--transport", "message transport: inproc | tcp | shm | auto", "");
    cli.add_option("--rendezvous_threshold",
                   "wire payload size (bytes) at which sends switch from eager to the "
                   "Rts/Cts rendezvous handshake",
                   "65536");
    cli.add_option("--rndv_threshold", "alias for --rendezvous_threshold", "");
    cli.add_flag("--coalesce",
                 "batch consecutive same-destination eager frames into one coalesced "
                 "wire frame (generalizes --send_faces to the transport layer)");
}

RunOptions RunOptions::from_cli(const CliParser& cli) {
    RunOptions opts;
    std::string transport;
    if (cli.has("--transport")) transport = cli.get_string("--transport");
    if (transport.empty()) {
        // dfamr_mpirun sets DFAMR_TRANSPORT for its rank processes.
        const char* env = std::getenv("DFAMR_TRANSPORT");
        if (env != nullptr) transport = env;
    }
    if (transport == "tcp") {
        opts.transport = mpi::TransportKind::Tcp;
    } else if (transport == "shm" || transport == "auto") {
        // Every in-process world is co-located by definition, and the
        // launcher resolves auto before spawning ranks, so auto means shm
        // wherever this code sees it.
        opts.transport = mpi::TransportKind::Shm;
    } else if (!transport.empty() && transport != "inproc") {
        throw ConfigError("unknown transport '" + transport +
                          "' (expected inproc, tcp, shm or auto)");
    }
    if (cli.has("--rendezvous_threshold")) {
        opts.rendezvous_threshold =
            static_cast<std::size_t>(cli.get_int("--rendezvous_threshold"));
    } else if (cli.has("--rndv_threshold")) {
        opts.rendezvous_threshold = static_cast<std::size_t>(cli.get_int("--rndv_threshold"));
    } else if (const char* env = std::getenv("DFAMR_RNDZ_THRESHOLD")) {
        opts.rendezvous_threshold = static_cast<std::size_t>(std::atol(env));
    } else if (const char* env2 = std::getenv("DFAMR_RNDV_THRESHOLD")) {
        opts.rendezvous_threshold = static_cast<std::size_t>(std::atol(env2));
    }
    if (cli.has("--coalesce")) {
        opts.coalesce = true;
    } else if (const char* env = std::getenv("DFAMR_COALESCE")) {
        opts.coalesce = *env != '\0' && *env != '0';
    }
    return opts;
}

RunResult run_variant(const amr::Config& cfg, amr::Variant variant, amr::Tracer* tracer,
                      mpi::FaultInjector* faults, const RunOptions& opts) {
    cfg.validate();
    mpi::WorldOptions wopts;
    wopts.transport = opts.transport;
    wopts.rendezvous_threshold = opts.rendezvous_threshold;
    wopts.coalesce = opts.coalesce;
    wopts.ignore_launch_env = opts.ignore_launch_env;
    if (tracer != nullptr) {
        // The progress thread records under the dedicated progress lane: it
        // shows in per-core timelines but is excluded from the utilization
        // denominator (it is not a compute core, and cfg.workers would
        // collide with a real worker lane after the lane-0 = main-thread
        // shift).
        wopts.progress_trace = [tracer](int rank, std::int64_t t0, std::int64_t t1) {
            tracer->record(rank, amr::kProgressWorker, t0, t1, amr::PhaseKind::NetProgress);
        };
    }
    mpi::World world(cfg.num_ranks(), wopts, faults);
    DFAMR_REQUIRE(opts.control == nullptr || !world.distributed(),
                  "run control (suspend/resume) requires an in-process world");

    std::mutex results_mutex;
    std::vector<RankResult> results(static_cast<std::size_t>(cfg.num_ranks()));
    RunResult distributed_total;

    world.run([&](mpi::Communicator& comm) {
        std::unique_ptr<DriverBase> driver;
        switch (variant) {
            case amr::Variant::MpiOnly: {
                amr::Config rank_cfg = cfg;
                rank_cfg.workers = 1;  // one rank per core, sequential inside
                driver = std::make_unique<MpiOnlyDriver>(rank_cfg, comm, tracer);
                break;
            }
            case amr::Variant::ForkJoin:
                driver = std::make_unique<ForkJoinDriver>(cfg, comm, tracer);
                break;
            case amr::Variant::TampiOss:
                driver = std::make_unique<TampiOssDriver>(cfg, comm, tracer);
                break;
        }
        driver->set_control(opts.control);
        RankResult r;
        try {
            r = driver->run();
        } catch (...) {
            // This rank is unwinding (its own fault or a sibling's abort
            // observed mid-wait) and the driver is about to free the buffers
            // its posted receives point into. Unpost them first: a sibling
            // that has not yet noticed the abort may still be sending, and a
            // matched delivery would memcpy into freed memory.
            comm.abandon_posted_recvs();
            throw;
        }
        if (world.distributed()) {
            // Reduce across processes while every rank is still inside
            // rank_main (the reduction is collective). Wire counters are
            // snapshotted first: the reduction itself adds traffic.
            RunResult g = reduce_distributed(comm, r, world.messages_delivered(),
                                             world.bytes_delivered(), world.net_counters(),
                                             world.peer_net_counters());
            g.rndv_threshold = opts.rendezvous_threshold;
            std::lock_guard lock(results_mutex);
            distributed_total = std::move(g);
            return;
        }
        std::lock_guard lock(results_mutex);
        results[static_cast<std::size_t>(comm.rank())] = std::move(r);
    });

    if (world.distributed()) return distributed_total;

    RunResult total;
    total.checksums = results[0].checksums;
    total.stop = results[0].stop;
    total.stop_ts = results[0].stop_ts;
    for (const RankResult& r : results) {
        DFAMR_REQUIRE(r.stop == total.stop && r.stop_ts == total.stop_ts,
                      "ranks disagree on the run-control stop decision");
        total.times.total = std::max(total.times.total, r.times.total);
        total.times.refine = std::max(total.times.refine, r.times.refine);
        total.times.comm = std::max(total.times.comm, r.times.comm);
        total.times.stencil = std::max(total.times.stencil, r.times.stencil);
        total.times.checksum = std::max(total.times.checksum, r.times.checksum);
        total.total_flops += r.stencil_flops;
        total.final_blocks += r.final_blocks;
        total.validation_ok = total.validation_ok && r.validation_ok;
        total.counters += r.counters;
        total.sched += r.sched;
        total.sched_refine += r.sched_refine;
        total.error_norm = std::max(total.error_norm, r.error_norm);
        total.has_error_norm = total.has_error_norm || r.has_error_norm;
        // Driver-allreduced globals: every rank already holds the agreed
        // value, so plain assignment selects it without double counting
        // (and unlike Max stays correct when outflux is negative).
        total.mass_drift = r.mass_drift;
        total.boundary_outflux = r.boundary_outflux;
        total.initial_mass = r.initial_mass;
        total.final_mass = r.final_mass;
        DFAMR_REQUIRE(r.checksums.size() == total.checksums.size(),
                      "ranks disagree on the number of checksum stages");
    }
    total.messages = world.messages_delivered();
    total.bytes = world.bytes_delivered();
    total.net = world.net_counters();
    if (opts.transport != mpi::TransportKind::Inproc) {
        total.net_peers = world.peer_net_counters();
    }
    total.rndv_threshold = opts.rendezvous_threshold;
    return total;
}

}  // namespace dfamr::core
