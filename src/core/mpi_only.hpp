// MPI-only reference variant driver (§II-A, §V "MPI-only").
#pragma once

#include "core/driver_base.hpp"

namespace dfamr::core {

class MpiOnlyDriver final : public DriverBase {
public:
    using DriverBase::DriverBase;

protected:
    void communicate_stage(int group) override;
    void stencil_stage(int group) override;
    void reflux_stage(int group) override;
    void checksum_stage() override;
    void do_splits(const std::vector<BlockKey>& parents) override;
    void do_merges(const std::vector<BlockKey>& parents) override;
    void transfer_block_data(const std::vector<BlockMove>& sends,
                             const std::vector<BlockMove>& recvs) override;

private:
    void exchange_direction(int dir, int gb, int ge);
    /// --zero_copy fast path: packs each chunk straight into a transport
    /// frame (TxBuffer) and unpacks straight out of the received frame
    /// (RxView), skipping both staging buffers.
    void exchange_direction_zero_copy(int dir, int gb, int ge);
};

}  // namespace dfamr::core
