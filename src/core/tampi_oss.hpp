// The paper's contribution (§IV): the complete data-flow taskification of
// miniAMR on OmpSs-2-style tasks + TAMPI.
//
//  * communicate (Algorithm 3): receive tasks (TAMPI_Irecv, out-dependency
//    on the receive-buffer section), pack tasks (in: block face / out:
//    send-buffer section), send tasks (TAMPI_Isend, in-dependency — with
//    aggregated messages a single region dependency over the chunk's
//    contiguous sections plays the role of the paper's multidependency),
//    intra-process copy tasks, unpack tasks. No MPI_Waitany anywhere.
//  * stencil: one task per block and variable group (inout on the block's
//    group range — the paper's §IV-D dependency granularity).
//  * checksum (§IV-C): local-reduction tasks per (block, group), a reduce
//    task per group, one taskwait per checksum stage — or, with
//    --delayed_checksum, a taskwait-with-dependencies that validates the
//    *previous* checksum stage so the pipeline keeps flowing.
//  * refinement (§IV-B): split/merge copy tasks; the block exchange keeps
//    its control messages sequential on the main thread while pack/send/
//    recv/unpack of block payloads are tasks bound through TAMPI.
#pragma once

#include <atomic>

#include "core/driver_base.hpp"
#include "tampi/tampi.hpp"
#include "tasking/runtime.hpp"

namespace dfamr::verify {
class Verifier;
}

namespace dfamr::core {

class TampiOssDriver final : public DriverBase {
public:
    TampiOssDriver(const Config& cfg, mpi::Communicator& comm, Tracer* tracer);
    ~TampiOssDriver() override;

protected:
    void communicate_stage(int group) override;
    void stencil_stage(int group) override;
    void reflux_stage(int group) override;
    void checksum_stage() override;
    SchedulerCounters scheduler_counters() const override;
    void quiesce() override;
    void final_sync() override;
    void sync_before_refine() override;
    void sync_refine_step() override;
    void do_splits(const std::vector<BlockKey>& parents) override;
    void do_merges(const std::vector<BlockKey>& parents) override;
    void transfer_block_data(const std::vector<BlockMove>& sends,
                             const std::vector<BlockMove>& recvs) override;
    int worker_index() override;

private:
    void submit_direction(int dir, int group);
    /// Task graph of one direction's flux-register exchange + reflux: pack
    /// (in: fine register / out: stream section), TAMPI send/recv tasks,
    /// apply tasks (in: stream section, inout: coarse block + register) and
    /// one boundary-outflux task per direction whose inout on the scalar
    /// accumulator serializes the tally in submission order (bitwise
    /// deterministic, like the synchronous variants' sequential loop).
    void submit_reflux_direction(int dir, int group);
    tasking::Dep block_dep_in(const BlockKey& key, int gb, int ge);
    tasking::Dep block_dep_inout(const BlockKey& key, int gb, int ge);
    tasking::Dep reg_dep_in(const BlockKey& key, int gb, int ge);
    tasking::Dep reg_dep_inout(const BlockKey& key, int gb, int ge);

    /// DepLint + access checker, populated in DFAMR_VERIFY builds or when
    /// DFAMR_DEPLINT=1 opts a default build in (multi-process race proofs).
    /// Declared before rt_: the runtime's shutdown fires into the hook.
    std::unique_ptr<verify::Verifier> verifier_;
    tasking::Runtime rt_;
    tampi::Tampi tampi_;
    std::atomic<std::int64_t> flops_{0};

    /// Double-buffered checksum state for the §IV-C delayed validation.
    struct ChecksumSlot {
        std::vector<double> partials;    // [group][block]
        std::vector<double> group_sums;  // one per group
        bool pending = false;
    };
    ChecksumSlot slots_[2];
    int slot_index_ = 0;
};

}  // namespace dfamr::core
