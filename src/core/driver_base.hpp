// Shared per-rank orchestration of the miniAMR main loop (Algorithm 1) and
// the refinement / load-balancing mechanics. The three variants subclass
// this and provide their parallelization of each phase:
//   * MpiOnlyDriver  — everything sequential (reference implementation)
//   * ForkJoinDriver — worksharing loops + master-only MPI
//   * TampiOssDriver — the paper's data-flow taskification
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "amr/comm_plan.hpp"
#include "amr/config.hpp"
#include "amr/flux_register.hpp"
#include "amr/mesh.hpp"
#include "amr/trace.hpp"
#include "core/result.hpp"
#include "mpisim/mpi.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/hardened_comm.hpp"
#include "scenario/problem_generator.hpp"
#include "scenario/refinement_condition.hpp"

namespace dfamr::core {

using amr::Block;
using amr::BlockKey;
using amr::CommBuffers;
using amr::CommPlan;
using amr::Config;
using amr::FaceGeom;
using amr::FluxPlan;
using amr::FluxRegister;
using amr::Mesh;
using amr::PhaseKind;
using amr::RefineRound;
using amr::Tracer;

/// One whole-block transfer between ranks during refinement/load balancing.
struct BlockMove {
    BlockKey key;
    int from = -1;
    int to = -1;
    int id = 0;  // global index; tags the data message (paper §IV-B)
};

/// Control-message tags used by the exchange protocol (distinct sub-space).
inline constexpr int kAckTag = amr::kExchangeTagBase;
inline constexpr int kBlockIdTag = amr::kExchangeTagBase + 1;
inline constexpr int kBlockDataTagBase = amr::kExchangeTagBase + 16;

class DriverBase {
public:
    DriverBase(const Config& cfg, mpi::Communicator& comm, Tracer* tracer);
    virtual ~DriverBase() = default;

    /// Attaches cooperative run control (suspend/cancel hooks, in-memory
    /// checkpoint routing). Must be set before run(); the same pointer must
    /// be passed on every rank of the world (the hooks themselves fire on
    /// rank 0 only, decisions are broadcast).
    void set_control(const RunControl* control) { control_ = control; }

    /// Executes the full mini-app on this rank and returns its result.
    RankResult run();

protected:
    // ---- variant hooks ----------------------------------------------------
    /// Ghost exchange + stencil for one variable group in one stage. The
    /// data-flow variant only *submits* tasks here; the others execute.
    virtual void communicate_stage(int group) = 0;
    virtual void stencil_stage(int group) = 0;
    /// Coarse-fine flux correction for one variable group (scenario runs
    /// only; called right after stencil_stage): exchanges restricted fine
    /// flux registers per the flux plan and refluxes coarse boundary cells
    /// so every interface telescopes to zero. The data-flow variant only
    /// submits tasks here.
    virtual void reflux_stage(int group) { (void)group; }
    /// Checksum across all groups; calls reduce_and_validate() (possibly for
    /// the previous stage when the delayed optimization is active).
    virtual void checksum_stage() = 0;
    /// Drains in-flight compute so the main thread may read/scale field
    /// state mid-run (live CFL recomputation). Taskwait for the data-flow
    /// variant; the synchronous variants are already quiescent between
    /// stages.
    virtual void quiesce() {}
    /// Drains outstanding work at the end of the run (final validation of a
    /// deferred checksum included).
    virtual void final_sync() {}
    /// Cumulative scheduler telemetry of the variant's tasking runtime.
    /// Sampled by the base class at phase boundaries to attribute counters
    /// per phase; the default (no runtime) reports zeros.
    virtual SchedulerCounters scheduler_counters() const { return {}; }
    /// Synchronization point before the refinement phase (taskwait/no-op).
    virtual void sync_before_refine() {}
    /// Data operations of one refinement round.
    virtual void do_splits(const std::vector<BlockKey>& parents) = 0;
    virtual void do_merges(const std::vector<BlockKey>& parents) = 0;
    /// Whole-block data transfers. `sends`/`recvs` are this rank's sides of
    /// the global move list, in deterministic order. Data messages use tag
    /// kBlockDataTagBase + move.id. Must leave transferred blocks adopted.
    virtual void transfer_block_data(const std::vector<BlockMove>& sends,
                                     const std::vector<BlockMove>& recvs) = 0;
    /// Barrier-equivalent inside refinement after transfers (taskwait).
    virtual void sync_refine_step() {}

    // ---- shared mechanics (implemented here) -------------------------------
    /// Runs refinement rounds + load balancing, updates structure and plans.
    void refinement_phase(int timesteps_elapsed);
    /// Performs the §IV-B ACK/id/data exchange protocol for the given global
    /// move list: control messages sequential on this (main) thread, data
    /// via transfer_block_data().
    void exchange_blocks(const std::vector<BlockMove>& moves, bool with_ack_protocol);
    void rebuild_comm_plan();
    /// Allreduces per-group local sums, validates drift, records the result.
    void reduce_and_validate(const std::vector<double>& local_group_sums);
    /// Resets the drift reference (after refinement changes the cell count).
    void reset_checksum_reference() { checksum_reference_.clear(); }

    /// One compute update of a block's variable group: the synthetic
    /// stencil sweep, or the scenario generator's advection step (which also
    /// records the block's boundary fluxes into its register). Returns
    /// FLOPs done. Thread-safe — the hybrid variants call it from worker
    /// threads (the structure and register map are read-only during compute
    /// stages).
    std::int64_t update_block(Block& blk, int var_begin, int var_end) {
        if (generator_ == nullptr) return blk.apply_stencil(cfg_.stencil, var_begin, var_end);
        return generator_->advance(blk, mesh_.structure().box(blk.key()), var_begin, var_end,
                                   dt_, &flux_regs_.at(blk.key()));
    }

    /// The block's flux register (scenario runs; rebuilt with the plan).
    FluxRegister& flux_register(const BlockKey& key) { return flux_regs_.at(key); }
    /// Per-block weight applied to scenario checksums: the cell volume, so
    /// the drift gate checks genuine mass conservation across refinement
    /// levels. Synthetic runs keep the historic unweighted sum (weight 1).
    double checksum_weight(const BlockKey& key) const;
    /// Applies one received restricted fine-flux stream section to the
    /// coarse block `face.mine` (face.geom.rel == Finer): for every covered
    /// coarse face cell, replaces the coarse flux with the restricted fine
    /// flux and corrects the adjacent interior cell by -sense * dt/h times
    /// the difference. Accumulates mass_drift_ (the telescoping residual
    /// left after the replacement — exactly zero) and reflux_corrections_.
    /// Thread-safe across disjoint faces (corrections touch only the
    /// target block's own boundary plane).
    void apply_flux_correction(const amr::FaceTransfer& face, int var_begin, int var_end,
                               std::span<const double> fine_flux);
    /// Intra-rank equivalent: restricts the fine source's register on the
    /// fly and refluxes the coarse destination.
    void apply_intra_flux(const amr::IntraCopy& copy, int var_begin, int var_end);
    /// Tallies signed mass flow through this direction's physical-boundary
    /// faces into boundary_outflux_ (deterministic order: callers invoke it
    /// sequentially per direction).
    void accumulate_boundary_outflux(int dir, int var_begin, int var_end);
    /// Volume-weighted total mass over owned blocks, all variables.
    double local_mass() const;
    /// Recomputes dt from the live field max when the generator asks for it
    /// (collective: allreduced max, so every rank picks the same dt).
    void maybe_recompute_dt();

    int group_begin(int group) const { return group * cfg_.vars_per_group(); }
    int group_end(int group) const {
        return std::min(cfg_.num_vars, (group + 1) * cfg_.vars_per_group());
    }

    void trace(int worker, std::int64_t t0, std::int64_t t1, PhaseKind kind) {
        if (tracer_ != nullptr) tracer_->record(rank_, worker, t0, t1, kind);
    }
    /// Lane of the calling thread in per-core timelines: 0 for the rank's
    /// main thread; variants with a tasking runtime override this so tasks
    /// record under the worker that EXECUTED them, not the spawner.
    virtual int worker_index() { return 0; }
    /// Records scheduler-telemetry counter samples on the tracer's counter
    /// track (no-op when tracing is off or the variant has no runtime).
    void sample_sched_counters();

    Config cfg_;
    mpi::Communicator& comm_;
    int rank_;
    Tracer* tracer_ = nullptr;
    /// Hardened point-to-point wrapper around comm_: bounded retry on
    /// transient send failures, deadlines on receive completion. Used for
    /// every blocking/driver-level p2p operation; the data-flow variant
    /// additionally hardens its TAMPI instance with the same policy.
    resilience::HardenedComm hcomm_;

    Mesh mesh_;
    CommPlan plan_;
    std::unique_ptr<CommBuffers> buffers_;
    /// Coarse-fine subset of plan_ driving the flux-register exchange, plus
    /// its staging streams ([direction][neighbor], sized for one variable
    /// group). Scenario runs only; rebuilt with the plan. std::map keeps
    /// register addresses stable for task dependency declarations.
    FluxPlan flux_plan_;
    std::map<BlockKey, FluxRegister> flux_regs_;
    std::array<std::vector<std::vector<double>>, 3> flux_send_, flux_recv_;

    RankResult result_;
    std::vector<double> checksum_reference_;  // per group; empty = no reference

    /// First timestep of main_loop (shifted by a checkpoint restore).
    int start_ts_ = 1;
    /// Stages executed so far (persisted in checkpoints so the checksum
    /// cadence continues seamlessly across a restore).
    int stage_counter_ = 0;

    // ---- scenario subsystem ----------------------------------------------
    /// Active refinement condition (never null; "objects" by default).
    const scenario::RefinementCondition* condition_ = nullptr;
    /// Active problem generator; null = the synthetic stencil workload.
    const scenario::ProblemGenerator* generator_ = nullptr;
    /// Per-stage advection step. CFL-stable and deterministic from cfg
    /// alone, except for cfl_from_field() generators, where it is
    /// recomputed from the allreduced live field max each timestep.
    double dt_ = 0;
    /// Simulated time advanced so far (sum of per-stage dt; persisted in
    /// checkpoints — with live CFL the step is no longer constant, so
    /// stage_counter_ * dt_ stopped being the right clock).
    double sim_time_ = 0;

    // ---- conservation accounting (scenario runs) --------------------------
    /// Telescoping reflux residual: |restricted fine flux - accounted coarse
    /// flux| after each correction — exactly zero by construction; any
    /// nonzero value means a coarse-fine face escaped the reflux pass.
    /// Atomic because hybrid variants reflux from worker threads (every
    /// contribution is 0.0, so accumulation order cannot matter).
    std::atomic<double> mass_drift_{0.0};
    std::atomic<std::int64_t> reflux_corrections_{0};
    /// Signed mass that left through the reflective physical boundary
    /// (accumulated in one deterministic order on the main thread / via a
    /// serialized task, so it is bitwise identical across variants).
    double boundary_outflux_ = 0;
    /// Set by restore_state: the image carries the original run's global
    /// initial mass, so a restored run keeps the budget identity against
    /// the true start of the simulation, not the restart point.
    bool restored_initial_mass_ = false;

private:
    void main_loop();
    /// Plans one refinement round: scores every leaf with condition_
    /// (field-based scores gathered with one Sum-allreduce over leaves in
    /// key order), applies threshold + deref hysteresis, and delegates the
    /// 2:1 propagation to the structure. Updates deref_counts_.
    RefineRound plan_round();
    /// Drops hysteresis/thrash bookkeeping for keys that stopped being
    /// leaves after a round was applied.
    void prune_refine_state();
    /// Allreduce-summed L1 error of variable 0 against the scenario's
    /// analytic reference at the final simulated time (no-op without one).
    void compute_error_norm();

    /// Replicated per-block coarsen-willing streak counters (every rank
    /// derives them from the identical global marks). Persisted in
    /// checkpoints — restored runs must coarsen on the same check.
    std::map<BlockKey, int> deref_counts_;
    /// Planning checks performed (one per plan_round call) and the check at
    /// which each current non-leaf was split — replicated diagnostics
    /// feeding the refine_coarsen_thrash counter.
    std::int64_t planning_checks_ = 0;
    std::map<BlockKey, std::int64_t> split_check_;

    const RunControl* control_ = nullptr;
    /// Collective checkpoint after timestep `ts_completed`: builds the
    /// image and routes it to disk or, under run control, to the host's
    /// callback. `suspending` selects the RunControl sink to deliver to.
    void write_state(int ts_completed, bool suspending = false);
    /// Replaces the freshly initialized state with the checkpointed one
    /// (from control_->restore_image when set, else cfg.restore_path).
    void restore_state();
    /// Rank 0 consults the control hook, the decision is broadcast. Returns
    /// the collective action for this timestep boundary.
    RunAction consult_control(int ts_completed);
};

}  // namespace dfamr::core
