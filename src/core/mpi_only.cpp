// The MPI-only reference variant: one rank per core, everything sequential
// within a rank. Mirrors Algorithms 1 and 2 of the paper (the reference
// miniAMR with Rico et al.'s data-layout changes).
#include "core/mpi_only.hpp"

#include <deque>

#include "common/timing.hpp"
#include "verify/access_check.hpp"

namespace dfamr::core {

void MpiOnlyDriver::communicate_stage(int group) {
    Stopwatch sw;
    sw.start();
    const int gb = group_begin(group), ge = group_end(group);
    // Directions are processed strictly one after another: they share the
    // same communication buffers (Algorithm 2).
    for (int dir = 0; dir < 3; ++dir) {
        exchange_direction(dir, gb, ge);
    }
    sw.stop();
    result_.times.comm += sw.elapsed_s();
}

void MpiOnlyDriver::exchange_direction(int dir, int gb, int ge) {
    if (cfg_.zero_copy) {
        exchange_direction_zero_copy(dir, gb, ge);
        return;
    }
    const amr::DirectionPlan& dp = plan_.direction(dir);
    const int gvars = ge - gb;

    // 1) Post all receives for this direction (Algorithm 2, line 2).
    struct RecvSlot {
        int neighbor_index;
        const amr::MessageChunk* chunk;
    };
    std::vector<mpi::Request> recv_reqs;
    std::vector<RecvSlot> recv_slots;
    for (std::size_t ni = 0; ni < dp.neighbors.size(); ++ni) {
        const amr::NeighborExchange& ex = dp.neighbors[ni];
        auto stream = buffers_->recv_stream(dir, static_cast<int>(ni));
        for (const amr::MessageChunk& chunk : ex.recv_chunks) {
            auto span = stream.subspan(static_cast<std::size_t>(chunk.value_offset * gvars),
                                       static_cast<std::size_t>(chunk.value_count * gvars));
            recv_reqs.push_back(
                hcomm_.irecv(span.data(), span.size_bytes(), ex.peer, chunk.tag));
            recv_slots.push_back(RecvSlot{static_cast<int>(ni), &chunk});
        }
    }

    // 2) Pack faces and send (lines 7-10).
    std::vector<mpi::Request> send_reqs;
    for (std::size_t ni = 0; ni < dp.neighbors.size(); ++ni) {
        const amr::NeighborExchange& ex = dp.neighbors[ni];
        auto stream = buffers_->send_stream(dir, static_cast<int>(ni));
        for (const amr::MessageChunk& chunk : ex.send_chunks) {
            const std::int64_t t0 = now_ns();
            for (int f = chunk.first_face; f < chunk.first_face + chunk.face_count; ++f) {
                const amr::FaceTransfer& face = ex.sends[static_cast<std::size_t>(f)];
                auto section = stream.subspan(static_cast<std::size_t>(face.value_offset * gvars),
                                              static_cast<std::size_t>(face.value_count * gvars));
                DFAMR_CHECK_WRITE(section.data(), section.size_bytes());
                mesh_.block(face.mine).pack_face(face.geom, gb, ge, section);
            }
            trace(0, t0, now_ns(), PhaseKind::Pack);
            auto span = stream.subspan(static_cast<std::size_t>(chunk.value_offset * gvars),
                                       static_cast<std::size_t>(chunk.value_count * gvars));
            const std::int64_t t1 = now_ns();
            send_reqs.push_back(hcomm_.isend(span.data(), span.size_bytes(), ex.peer, chunk.tag));
            trace(0, t1, now_ns(), PhaseKind::Send);
        }
    }

    // 3) Intra-process exchange while messages are in flight (line 13).
    for (const amr::IntraCopy& copy : dp.copies) {
        const std::int64_t t0 = now_ns();
        mesh_.block(copy.dst).copy_face_from(mesh_.block(copy.src), copy.geom, gb, ge);
        trace(0, t0, now_ns(), PhaseKind::IntraCopy);
    }
    for (const auto& [key, sense] : dp.boundary) {
        mesh_.block(key).reflect_face(dir, sense, gb, ge);
    }

    // 4) Waitany/unpack loop (lines 14-18).
    while (true) {
        const std::int64_t t0 = now_ns();
        const int idx = hcomm_.wait_any(std::span<mpi::Request>(recv_reqs));
        trace(0, t0, now_ns(), PhaseKind::CommWait);
        if (idx == mpi::kUndefined) break;
        const RecvSlot& slot = recv_slots[static_cast<std::size_t>(idx)];
        const amr::NeighborExchange& ex = dp.neighbors[static_cast<std::size_t>(slot.neighbor_index)];
        auto stream = buffers_->recv_stream(dir, slot.neighbor_index);
        const std::int64_t t1 = now_ns();
        for (int f = slot.chunk->first_face; f < slot.chunk->first_face + slot.chunk->face_count;
             ++f) {
            const amr::FaceTransfer& face = ex.recvs[static_cast<std::size_t>(f)];
            auto section = stream.subspan(static_cast<std::size_t>(face.value_offset * gvars),
                                          static_cast<std::size_t>(face.value_count * gvars));
            DFAMR_CHECK_READ(section.data(), section.size_bytes());
            mesh_.block(face.mine).unpack_face(face.geom, gb, ge, section);
        }
        trace(0, t1, now_ns(), PhaseKind::Unpack);
    }

    // 5) Wait for sends before reusing the buffers (line 19).
    const std::int64_t t0 = now_ns();
    hcomm_.wait_all(std::span<mpi::Request>(send_reqs));
    trace(0, t0, now_ns(), PhaseKind::CommWait);
}

void MpiOnlyDriver::exchange_direction_zero_copy(int dir, int gb, int ge) {
    // Same structure as exchange_direction, but each chunk owns a transport
    // frame: pack writes into the frame payload that goes on the wire, and
    // unpack reads the received frame in place — no staging copies on either
    // side (the staging streams of buffers_ are never touched).
    const amr::DirectionPlan& dp = plan_.direction(dir);
    const int gvars = ge - gb;

    struct RecvSlot {
        int neighbor_index;
        const amr::MessageChunk* chunk;
    };
    std::vector<mpi::Request> recv_reqs;
    std::vector<RecvSlot> recv_slots;
    // Views are addressed by the delivery path until matched: the deque
    // grows only before the requests are waited on, and deques never move
    // their elements.
    std::deque<mpi::RxView> views;
    for (std::size_t ni = 0; ni < dp.neighbors.size(); ++ni) {
        const amr::NeighborExchange& ex = dp.neighbors[ni];
        for (const amr::MessageChunk& chunk : ex.recv_chunks) {
            const std::size_t bytes =
                static_cast<std::size_t>(chunk.value_count * gvars) * sizeof(double);
            views.emplace_back();
            recv_reqs.push_back(hcomm_.irecv_view(&views.back(), bytes, ex.peer, chunk.tag));
            recv_slots.push_back(RecvSlot{static_cast<int>(ni), &chunk});
        }
    }

    std::vector<mpi::Request> send_reqs;
    for (std::size_t ni = 0; ni < dp.neighbors.size(); ++ni) {
        const amr::NeighborExchange& ex = dp.neighbors[ni];
        for (const amr::MessageChunk& chunk : ex.send_chunks) {
            const std::size_t bytes =
                static_cast<std::size_t>(chunk.value_count * gvars) * sizeof(double);
            mpi::TxBuffer tx = mpi::make_tx_buffer(bytes);
            const std::int64_t t0 = now_ns();
            for (int f = chunk.first_face; f < chunk.first_face + chunk.face_count; ++f) {
                const amr::FaceTransfer& face = ex.sends[static_cast<std::size_t>(f)];
                auto section = tx.payload.subspan(
                    static_cast<std::size_t>((face.value_offset - chunk.value_offset) * gvars) *
                        sizeof(double),
                    static_cast<std::size_t>(face.value_count * gvars) * sizeof(double));
                mesh_.block(face.mine).pack_face(face.geom, gb, ge, section);
            }
            trace(0, t0, now_ns(), PhaseKind::Pack);
            const std::int64_t t1 = now_ns();
            send_reqs.push_back(hcomm_.isend_tx(tx, ex.peer, chunk.tag));
            trace(0, t1, now_ns(), PhaseKind::Send);
        }
    }

    for (const amr::IntraCopy& copy : dp.copies) {
        const std::int64_t t0 = now_ns();
        mesh_.block(copy.dst).copy_face_from(mesh_.block(copy.src), copy.geom, gb, ge);
        trace(0, t0, now_ns(), PhaseKind::IntraCopy);
    }
    for (const auto& [key, sense] : dp.boundary) {
        mesh_.block(key).reflect_face(dir, sense, gb, ge);
    }

    while (true) {
        const std::int64_t t0 = now_ns();
        const int idx = hcomm_.wait_any(std::span<mpi::Request>(recv_reqs));
        trace(0, t0, now_ns(), PhaseKind::CommWait);
        if (idx == mpi::kUndefined) break;
        const RecvSlot& slot = recv_slots[static_cast<std::size_t>(idx)];
        const amr::NeighborExchange& ex = dp.neighbors[static_cast<std::size_t>(slot.neighbor_index)];
        const mpi::RxView& view = views[static_cast<std::size_t>(idx)];
        const std::int64_t t1 = now_ns();
        for (int f = slot.chunk->first_face; f < slot.chunk->first_face + slot.chunk->face_count;
             ++f) {
            const amr::FaceTransfer& face = ex.recvs[static_cast<std::size_t>(f)];
            auto section = view.payload.subspan(
                static_cast<std::size_t>((face.value_offset - slot.chunk->value_offset) * gvars) *
                    sizeof(double),
                static_cast<std::size_t>(face.value_count * gvars) * sizeof(double));
            mesh_.block(face.mine).unpack_face(face.geom, gb, ge, section);
        }
        trace(0, t1, now_ns(), PhaseKind::Unpack);
    }

    const std::int64_t t0 = now_ns();
    hcomm_.wait_all(std::span<mpi::Request>(send_reqs));
    trace(0, t0, now_ns(), PhaseKind::CommWait);
}

void MpiOnlyDriver::reflux_stage(int group) {
    // Coarse-fine flux correction (DESIGN.md §18), same sequential
    // per-direction shape as exchange_direction but over the flux plan:
    // fine blocks ship restricted registers, coarse blocks reflux on
    // receipt, and the physical-boundary tally closes each direction.
    Stopwatch sw;
    sw.start();
    const int gb = group_begin(group), ge = group_end(group);
    const int gvars = ge - gb;
    for (int dir = 0; dir < 3; ++dir) {
        const amr::FluxPlan::Direction& fd = flux_plan_.direction(dir);
        auto& send_bufs = flux_send_[static_cast<std::size_t>(dir)];
        auto& recv_bufs = flux_recv_[static_cast<std::size_t>(dir)];

        // 1) Post receives for the restricted fine-flux streams.
        struct RecvSlot {
            int neighbor_index;
            const amr::MessageChunk* chunk;
        };
        std::vector<mpi::Request> recv_reqs;
        std::vector<RecvSlot> recv_slots;
        for (std::size_t ni = 0; ni < fd.neighbors.size(); ++ni) {
            const amr::NeighborExchange& ex = fd.neighbors[ni];
            std::span<double> stream(recv_bufs[ni]);
            for (const amr::MessageChunk& chunk : ex.recv_chunks) {
                auto span = stream.subspan(static_cast<std::size_t>(chunk.value_offset * gvars),
                                           static_cast<std::size_t>(chunk.value_count * gvars));
                recv_reqs.push_back(
                    hcomm_.irecv(span.data(), span.size_bytes(), ex.peer, chunk.tag));
                recv_slots.push_back(RecvSlot{static_cast<int>(ni), &chunk});
            }
        }

        // 2) Restrict own fine registers into the send streams and send.
        std::vector<mpi::Request> send_reqs;
        for (std::size_t ni = 0; ni < fd.neighbors.size(); ++ni) {
            const amr::NeighborExchange& ex = fd.neighbors[ni];
            std::span<double> stream(send_bufs[ni]);
            const std::int64_t t0 = now_ns();
            for (const amr::FaceTransfer& face : ex.sends) {
                auto section = stream.subspan(static_cast<std::size_t>(face.value_offset * gvars),
                                              static_cast<std::size_t>(face.value_count * gvars));
                DFAMR_CHECK_WRITE(section.data(), section.size_bytes());
                flux_register(face.mine)
                    .pack_restricted(face.geom.axis, face.geom.sense, gb, ge, section);
            }
            trace(0, t0, now_ns(), PhaseKind::Pack);
            for (const amr::MessageChunk& chunk : ex.send_chunks) {
                auto span = stream.subspan(static_cast<std::size_t>(chunk.value_offset * gvars),
                                           static_cast<std::size_t>(chunk.value_count * gvars));
                const std::int64_t t1 = now_ns();
                send_reqs.push_back(
                    hcomm_.isend(span.data(), span.size_bytes(), ex.peer, chunk.tag));
                trace(0, t1, now_ns(), PhaseKind::Send);
            }
        }

        // 3) Intra-rank refluxes while messages are in flight.
        for (const amr::IntraCopy& copy : fd.copies) {
            const std::int64_t t0 = now_ns();
            apply_intra_flux(copy, gb, ge);
            trace(0, t0, now_ns(), PhaseKind::IntraCopy);
        }

        // 4) Waitany/reflux loop over received streams.
        while (true) {
            const std::int64_t t0 = now_ns();
            const int idx = hcomm_.wait_any(std::span<mpi::Request>(recv_reqs));
            trace(0, t0, now_ns(), PhaseKind::CommWait);
            if (idx == mpi::kUndefined) break;
            const RecvSlot& slot = recv_slots[static_cast<std::size_t>(idx)];
            const amr::NeighborExchange& ex =
                fd.neighbors[static_cast<std::size_t>(slot.neighbor_index)];
            std::span<const double> stream(recv_bufs[static_cast<std::size_t>(slot.neighbor_index)]);
            const std::int64_t t1 = now_ns();
            for (int f = slot.chunk->first_face;
                 f < slot.chunk->first_face + slot.chunk->face_count; ++f) {
                const amr::FaceTransfer& face = ex.recvs[static_cast<std::size_t>(f)];
                auto section = stream.subspan(static_cast<std::size_t>(face.value_offset * gvars),
                                              static_cast<std::size_t>(face.value_count * gvars));
                DFAMR_CHECK_READ(section.data(), section.size_bytes());
                apply_flux_correction(face, gb, ge, section);
            }
            trace(0, t1, now_ns(), PhaseKind::Unpack);
        }

        // 5) Wait for sends before the streams can be reused.
        const std::int64_t t0 = now_ns();
        hcomm_.wait_all(std::span<mpi::Request>(send_reqs));
        trace(0, t0, now_ns(), PhaseKind::CommWait);

        // 6) Close the direction's mass budget at the physical boundary —
        // sequential, fixed order, identical across variants.
        accumulate_boundary_outflux(dir, gb, ge);
    }
    sw.stop();
    result_.times.comm += sw.elapsed_s();
}

void MpiOnlyDriver::stencil_stage(int group) {
    Stopwatch sw;
    sw.start();
    const int gb = group_begin(group), ge = group_end(group);
    for (const BlockKey& key : mesh_.owned_keys()) {
        const std::int64_t t0 = now_ns();
        Block& blk = mesh_.block(key);
        DFAMR_CHECK_WRITE(blk.group_span(gb, ge).data(), blk.group_span(gb, ge).size_bytes());
        result_.stencil_flops += update_block(blk, gb, ge);
        trace(0, t0, now_ns(), PhaseKind::Stencil);
    }
    sw.stop();
    result_.times.stencil += sw.elapsed_s();
}

void MpiOnlyDriver::checksum_stage() {
    std::vector<double> sums(static_cast<std::size_t>(cfg_.num_groups()), 0.0);
    for (int g = 0; g < cfg_.num_groups(); ++g) {
        const std::int64_t t0 = now_ns();
        // Volume-weighted per-block sums in owned-key (sorted) order: for
        // synthetic runs the weight is 1.0 (a bitwise-identity multiply,
        // preserving the historic checksum values); scenario runs weight by
        // cell volume so drift validation gates genuine mass conservation.
        double sum = 0;
        for (const BlockKey& key : mesh_.owned_keys()) {
            sum += checksum_weight(key) * mesh_.block(key).checksum(group_begin(g), group_end(g));
        }
        sums[static_cast<std::size_t>(g)] = sum;
        trace(0, t0, now_ns(), PhaseKind::ChecksumLocal);
    }
    reduce_and_validate(sums);
}

void MpiOnlyDriver::do_splits(const std::vector<BlockKey>& parents) {
    for (const BlockKey& key : parents) {
        const std::int64_t t0 = now_ns();
        mesh_.split_block(key);
        trace(0, t0, now_ns(), PhaseKind::RefineSplit);
    }
}

void MpiOnlyDriver::do_merges(const std::vector<BlockKey>& parents) {
    for (const BlockKey& key : parents) {
        const std::int64_t t0 = now_ns();
        mesh_.merge_children(key);
        trace(0, t0, now_ns(), PhaseKind::RefineMerge);
    }
}

void MpiOnlyDriver::transfer_block_data(const std::vector<BlockMove>& sends,
                                        const std::vector<BlockMove>& recvs) {
    const std::int64_t t0 = now_ns();
    // Sends complete eagerly; then receive in deterministic order.
    for (const BlockMove& mv : sends) {
        Block& b = mesh_.block(mv.key);
        hcomm_.send(b.data(), b.data_size() * sizeof(double), mv.to, kBlockDataTagBase + mv.id);
        mesh_.release(mv.key);
    }
    for (const BlockMove& mv : recvs) {
        auto b = mesh_.make_block(mv.key);
        hcomm_.recv(b->data(), b->data_size() * sizeof(double), mv.from,
                   kBlockDataTagBase + mv.id);
        mesh_.adopt(std::move(b));
    }
    if (!sends.empty() || !recvs.empty()) {
        trace(0, t0, now_ns(), PhaseKind::RefineExchange);
    }
}

}  // namespace dfamr::core
