// Entry points for running the three miniAMR variants (§V).
#pragma once

#include "amr/config.hpp"
#include "amr/trace.hpp"
#include "common/cli.hpp"
#include "core/result.hpp"
#include "mpisim/mpi.hpp"

namespace dfamr::core {

/// Transport selection for a run. Defaults reproduce the historical
/// behavior (in-process ranks). from_cli also honors the DFAMR_TRANSPORT
/// environment variable (set by dfamr_mpirun), with the CLI flag winning.
struct RunOptions {
    mpi::TransportKind transport = mpi::TransportKind::Inproc;
    std::size_t rendezvous_threshold = 64 * 1024;
    /// Batch consecutive same-destination eager frames into one coalesced
    /// wire frame (TCP writer / shm flusher). Off by default.
    bool coalesce = false;
    /// Build a fully local world even when DFAMR_RANK is set (used for the
    /// in-process reference run of a chaos comparison under dfamr_mpirun).
    bool ignore_launch_env = false;
    /// Cooperative run control (suspend/resume/cancel + in-memory
    /// checkpoints; see core/run_control.hpp). Not a CLI option. Requires
    /// an in-process world — incompatible with a distributed launch.
    const RunControl* control = nullptr;

    static void register_cli(CliParser& cli);
    static RunOptions from_cli(const CliParser& cli);
};

/// Runs the mini-app with `cfg.num_ranks()` ranks using the given variant,
/// and returns the reduced result (times: max over ranks, flops: summed,
/// checksums: the global values every rank agrees on). With the TCP
/// transport the ranks may be threads of this process (loopback) or sibling
/// processes started by dfamr_mpirun; either way every process returns the
/// same globally reduced result.
///
/// For Variant::MpiOnly, cfg.workers is ignored (one core per rank, like the
/// reference's 48 ranks/node). For the hybrid variants, each rank drives
/// cfg.workers cores.
///
/// `faults` optionally injects deterministic communication faults into the
/// MPI layer (see resilience/fault_plan.hpp); nullptr = fault-free.
RunResult run_variant(const amr::Config& cfg, amr::Variant variant,
                      amr::Tracer* tracer = nullptr, mpi::FaultInjector* faults = nullptr,
                      const RunOptions& opts = {});

}  // namespace dfamr::core
