// Entry points for running the three miniAMR variants (§V).
#pragma once

#include "amr/config.hpp"
#include "amr/trace.hpp"
#include "core/result.hpp"
#include "mpisim/mpi.hpp"

namespace dfamr::core {

/// Runs the mini-app with `cfg.num_ranks()` in-process ranks using the given
/// variant, and returns the reduced result (times: max over ranks, flops:
/// summed, checksums: the global values every rank agrees on).
///
/// For Variant::MpiOnly, cfg.workers is ignored (one core per rank, like the
/// reference's 48 ranks/node). For the hybrid variants, each rank drives
/// cfg.workers cores.
///
/// `faults` optionally injects deterministic communication faults into the
/// MPI layer (see resilience/fault_plan.hpp); nullptr = fault-free.
RunResult run_variant(const amr::Config& cfg, amr::Variant variant,
                      amr::Tracer* tracer = nullptr, mpi::FaultInjector* faults = nullptr);

}  // namespace dfamr::core
