// Unified observability snapshot: the trace analysis, scheduler telemetry
// and wire counters of one run joined into a single JSON blob. This is the
// machine-readable artifact the CI trace-smoke job and trace_diff consume
// (schema "dfamr_metrics_v1"); bench_json embeds the same structure under
// its "trace" key.
#pragma once

#include <cstdint>
#include <string>

#include "amr/trace.hpp"
#include "core/result.hpp"

namespace dfamr::core {

struct MetricsSnapshot {
    amr::TraceAnalysis trace;
    SchedulerCounters sched;         // whole run, summed over ranks
    SchedulerCounters sched_refine;  // slice attributed to refinement phases
    net::NetCounters net;            // wire counters (zero for inproc)
    /// Per-peer wire traffic (entry p = all ranks' traffic with rank p);
    /// empty for inproc.
    std::vector<net::PeerStats> net_peers;
    std::uint64_t rndv_threshold = 0;  // effective eager/rendezvous switchover
    std::uint64_t messages = 0;      // delivered by the MPI layer
    std::uint64_t bytes = 0;
    double total_s = 0;
    double refine_s = 0;
    std::int64_t final_blocks = 0;
    bool validation_ok = true;
    /// Scenario subsystem: estimator-driven splits, refine->coarsen flaps
    /// within the hysteresis window, and the analytic error norm (valid only
    /// when has_error_norm).
    std::int64_t blocks_refined_by_estimator = 0;
    std::int64_t refine_coarsen_thrash = 0;
    double error_norm = 0;
    bool has_error_norm = false;
    /// Conservation ledger (scenario runs only; all zero for synthetic):
    /// mass_drift is the post-reflux coarse-fine residual — exactly 0.0
    /// when every interface was corrected; the mass budget closes as
    /// final_mass = initial_mass - boundary_outflux up to rounding.
    double mass_drift = 0;
    double boundary_outflux = 0;
    double initial_mass = 0;
    double final_mass = 0;
    std::int64_t reflux_corrections = 0;
};

/// Joins the tracer's analysis with the run's reduced result.
MetricsSnapshot make_metrics_snapshot(const amr::Tracer& tracer, const RunResult& result);

/// The snapshot as a self-describing JSON object (schema dfamr_metrics_v1).
std::string metrics_to_json(const MetricsSnapshot& m);

}  // namespace dfamr::core
