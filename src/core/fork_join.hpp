// MPI+OpenMP fork-join variant driver (§V "MPI+OMP fork-join"): the official
// hybrid miniAMR approach. Worksharing loops with static scheduling
// parallelize stencil, pack/unpack, intra-process copies and local
// checksums; every MPI call stays on the master thread; each parallel
// region ends with an implicit barrier. As in the paper, we additionally
// parallelize the split/coarsen copies of the refinement phase to make the
// comparison fair.
#pragma once

#include "core/driver_base.hpp"
#include "tasking/runtime.hpp"

namespace dfamr::verify {
class Verifier;
}

namespace dfamr::core {

class ForkJoinDriver final : public DriverBase {
public:
    ForkJoinDriver(const Config& cfg, mpi::Communicator& comm, Tracer* tracer);
    ~ForkJoinDriver() override;  // out-of-line: verifier_ is incomplete here

protected:
    void communicate_stage(int group) override;
    void stencil_stage(int group) override;
    void reflux_stage(int group) override;
    void checksum_stage() override;
    SchedulerCounters scheduler_counters() const override;
    void do_splits(const std::vector<BlockKey>& parents) override;
    void do_merges(const std::vector<BlockKey>& parents) override;
    void transfer_block_data(const std::vector<BlockMove>& sends,
                             const std::vector<BlockMove>& recvs) override;
    int worker_index() override;

private:
    void exchange_direction(int dir, int gb, int ge);
    /// --zero_copy fast path: workshared pack straight into transport
    /// frames, workshared unpack straight out of received frames.
    void exchange_direction_zero_copy(int dir, int gb, int ge);
    /// parallel-for with the implicit barrier of an OpenMP region.
    void pfor(std::int64_t n, const std::function<void(std::int64_t)>& fn);

    /// Populated in DFAMR_VERIFY builds or under DFAMR_DEPLINT=1; declared
    /// before rt_ (shutdown hook).
    std::unique_ptr<verify::Verifier> verifier_;
    tasking::Runtime rt_;  // master (this thread) helps at the barrier
};

}  // namespace dfamr::core
