#include "core/tampi_oss.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "common/timing.hpp"
#include "core/sched_telemetry.hpp"
#include "verify/verifier.hpp"

namespace dfamr::core {

using tasking::Dep;
using tasking::in;
using tasking::inout;
using tasking::out;

TampiOssDriver::TampiOssDriver(const Config& cfg, mpi::Communicator& comm, Tracer* tracer)
    : DriverBase(cfg, comm, tracer), rt_(cfg.workers - 1), tampi_(rt_) {
    // Task-bound communication uses the same retry/timeout budget as the
    // driver-level hardened operations; a timed-out request surfaces as a
    // CommTimeout at the next taskwait instead of hanging the worker pool.
    tampi_.configure_resilience(hcomm_.policy(), tracer);
    // Fast-fail on sibling-rank crashes: once the world aborts, the
    // progress engine flushes every bound request and blocking waits bail
    // out, so the rank unwinds in milliseconds instead of riding out a
    // full comm_timeout per in-flight transfer.
    tampi_.set_abort_probe([&comm] { return comm.aborted(); });
#if defined(DFAMR_VERIFY)
    verifier_ = std::make_unique<verify::Verifier>();
    verifier_->attach(rt_);
#else
    // Opt-in race prover for default builds: DFAMR_DEPLINT=1 attaches the
    // verifier so multi-process golden runs (dfamr_mpirun rank processes)
    // prove their task graphs free of unordered conflicts — a dirty proof
    // aborts the rank and the launcher propagates the failure. Costs
    // nothing unless the variable is set.
    if (const char* e = std::getenv("DFAMR_DEPLINT"); e != nullptr && e[0] == '1') {
        verifier_ = std::make_unique<verify::Verifier>();
        verifier_->deplint().set_check_on_shutdown(true);
        verifier_->attach(rt_);
    }
#endif
}

TampiOssDriver::~TampiOssDriver() {
    // Drain everything before members (tampi_, rt_) unwind.
    try {
        rt_.taskwait();
    } catch (...) {
    }
}

Dep TampiOssDriver::block_dep_in(const BlockKey& key, int gb, int ge) {
    auto span = mesh_.block(key).group_span(gb, ge);
    return in(span.data(), span.size_bytes());
}

Dep TampiOssDriver::block_dep_inout(const BlockKey& key, int gb, int ge) {
    auto span = mesh_.block(key).group_span(gb, ge);
    return inout(span.data(), span.size_bytes());
}

Dep TampiOssDriver::reg_dep_in(const BlockKey& key, int gb, int ge) {
    auto span = flux_register(key).slice(gb, ge);
    return in(span.data(), span.size_bytes());
}

Dep TampiOssDriver::reg_dep_inout(const BlockKey& key, int gb, int ge) {
    auto span = flux_register(key).slice(gb, ge);
    return inout(span.data(), span.size_bytes());
}

void TampiOssDriver::communicate_stage(int group) {
    // Algorithm 3: tasks are instantiated for each direction; whether the
    // directions can actually run concurrently depends on the buffers
    // (--separate_buffers) — the dependency system works it out.
    for (int dir = 0; dir < 3; ++dir) {
        submit_direction(dir, group);
    }
}

void TampiOssDriver::submit_direction(int dir, int group) {
    const int gb = group_begin(group), ge = group_end(group);
    const int gvars = ge - gb;
    const amr::DirectionPlan& dp = plan_.direction(dir);

    for (std::size_t ni = 0; ni < dp.neighbors.size(); ++ni) {
        const amr::NeighborExchange& ex = dp.neighbors[ni];
        auto recv_stream = buffers_->recv_stream(dir, static_cast<int>(ni));
        auto send_stream = buffers_->send_stream(dir, static_cast<int>(ni));

        // Receive tasks: one per message chunk, out-dependency on the
        // chunk's buffer section; TAMPI_Irecv binds the task's completion
        // to the arrival (the task body itself returns immediately).
        for (const amr::MessageChunk& chunk : ex.recv_chunks) {
            auto span = recv_stream.subspan(static_cast<std::size_t>(chunk.value_offset * gvars),
                                            static_cast<std::size_t>(chunk.value_count * gvars));
            const int peer = ex.peer;
            const int tag = chunk.tag;
            rt_.submit(
                [this, span, peer, tag] {
                    const std::int64_t t0 = now_ns();
                    tampi_.irecv(comm_, span.data(), span.size_bytes(), peer, tag);
                    trace(worker_index(), t0, now_ns(), PhaseKind::Recv);
                },
                {out(span.data(), span.size_bytes())}, "recv");
        }

        // Pack tasks (one per face) + send task per chunk. The send task's
        // single region dependency covers every packed section of its chunk
        // (contiguous by construction) — the multidependency of §IV-A.
        for (const amr::MessageChunk& chunk : ex.send_chunks) {
            for (int f = chunk.first_face; f < chunk.first_face + chunk.face_count; ++f) {
                const amr::FaceTransfer* face = &ex.sends[static_cast<std::size_t>(f)];
                auto section =
                    send_stream.subspan(static_cast<std::size_t>(face->value_offset * gvars),
                                        static_cast<std::size_t>(face->value_count * gvars));
                rt_.submit(
                    [this, face, section, gb, ge] {
                        const std::int64_t t0 = now_ns();
                        auto blk = mesh_.block(face->mine).group_span(gb, ge);
                        DFAMR_CHECK_READ(blk.data(), blk.size_bytes());
                        DFAMR_CHECK_WRITE(section.data(), section.size_bytes());
                        mesh_.block(face->mine).pack_face(face->geom, gb, ge, section);
                        trace(worker_index(), t0, now_ns(), PhaseKind::Pack);
                    },
                    {block_dep_in(face->mine, gb, ge), out(section.data(), section.size_bytes())},
                    "pack");
            }
            auto span = send_stream.subspan(static_cast<std::size_t>(chunk.value_offset * gvars),
                                            static_cast<std::size_t>(chunk.value_count * gvars));
            const int peer = ex.peer;
            const int tag = chunk.tag;
            rt_.submit(
                [this, span, peer, tag] {
                    const std::int64_t t0 = now_ns();
                    tampi_.isend(comm_, span.data(), span.size_bytes(), peer, tag);
                    trace(worker_index(), t0, now_ns(), PhaseKind::Send);
                },
                {in(span.data(), span.size_bytes())}, "send");
        }

        // Unpack tasks: one per face, gated by the receive task through the
        // buffer section, writing into the block's group range.
        for (const amr::MessageChunk& chunk : ex.recv_chunks) {
            for (int f = chunk.first_face; f < chunk.first_face + chunk.face_count; ++f) {
                const amr::FaceTransfer* face = &ex.recvs[static_cast<std::size_t>(f)];
                auto section =
                    recv_stream.subspan(static_cast<std::size_t>(face->value_offset * gvars),
                                        static_cast<std::size_t>(face->value_count * gvars));
                rt_.submit(
                    [this, face, section, gb, ge] {
                        const std::int64_t t0 = now_ns();
                        auto blk = mesh_.block(face->mine).group_span(gb, ge);
                        DFAMR_CHECK_READ(section.data(), section.size_bytes());
                        DFAMR_CHECK_WRITE(blk.data(), blk.size_bytes());
                        mesh_.block(face->mine).unpack_face(face->geom, gb, ge, section);
                        trace(worker_index(), t0, now_ns(), PhaseKind::Unpack);
                    },
                    {in(section.data(), section.size_bytes()),
                     block_dep_inout(face->mine, gb, ge)},
                    "unpack");
            }
        }
    }

    // Intra-process copies (the taskification inherited from Rico et al.).
    for (const amr::IntraCopy& copy_ref : dp.copies) {
        const amr::IntraCopy* copy = &copy_ref;
        rt_.submit(
            [this, copy, gb, ge] {
                const std::int64_t t0 = now_ns();
                mesh_.block(copy->dst).copy_face_from(mesh_.block(copy->src), copy->geom, gb, ge);
                trace(worker_index(), t0, now_ns(), PhaseKind::IntraCopy);
            },
            {block_dep_in(copy->src, gb, ge), block_dep_inout(copy->dst, gb, ge)}, "intra_copy");
    }
    for (const auto& [key, sense] : dp.boundary) {
        const int sense_copy = sense;
        rt_.submit(
            [this, key, dir, sense_copy, gb, ge] {
                mesh_.block(key).reflect_face(dir, sense_copy, gb, ge);
            },
            {block_dep_inout(key, gb, ge)}, "reflect");
    }
}

void TampiOssDriver::stencil_stage(int group) {
    const int gb = group_begin(group), ge = group_end(group);
    for (const BlockKey& key : mesh_.owned_keys()) {
        // Scenario runs also write the block's flux register inside
        // update_block; declaring it inout orders the reflux pass's
        // pack/apply tasks after the kernel.
        std::vector<Dep> deps{block_dep_inout(key, gb, ge)};
        if (generator_ != nullptr) deps.push_back(reg_dep_inout(key, gb, ge));
        rt_.submit(
            [this, key, gb, ge] {
                const std::int64_t t0 = now_ns();
                auto blk = mesh_.block(key).group_span(gb, ge);
                DFAMR_CHECK_READ(blk.data(), blk.size_bytes());
                DFAMR_CHECK_WRITE(blk.data(), blk.size_bytes());
                if (generator_ != nullptr) {
                    auto reg = flux_register(key).slice(gb, ge);
                    DFAMR_CHECK_WRITE(reg.data(), reg.size_bytes());
                }
                flops_ += update_block(mesh_.block(key), gb, ge);
                trace(worker_index(), t0, now_ns(), PhaseKind::Stencil);
            },
            std::move(deps), "stencil");
    }
}

void TampiOssDriver::reflux_stage(int group) {
    // Like communicate_stage, this only instantiates tasks; the dependency
    // system orders each direction's corrections after the kernels that
    // recorded the registers and before anything that re-reads the blocks.
    for (int dir = 0; dir < 3; ++dir) {
        submit_reflux_direction(dir, group);
    }
}

void TampiOssDriver::submit_reflux_direction(int dir, int group) {
    const int gb = group_begin(group), ge = group_end(group);
    const int gvars = ge - gb;
    const amr::FluxPlan::Direction& fd = flux_plan_.direction(dir);
    auto& send_bufs = flux_send_[static_cast<std::size_t>(dir)];
    auto& recv_bufs = flux_recv_[static_cast<std::size_t>(dir)];

    for (std::size_t ni = 0; ni < fd.neighbors.size(); ++ni) {
        const amr::NeighborExchange& ex = fd.neighbors[ni];
        std::span<double> recv_stream(recv_bufs[ni]);
        std::span<double> send_stream(send_bufs[ni]);

        // Receive tasks: TAMPI-bound, out-dependency on the stream section.
        for (const amr::MessageChunk& chunk : ex.recv_chunks) {
            auto span = recv_stream.subspan(static_cast<std::size_t>(chunk.value_offset * gvars),
                                            static_cast<std::size_t>(chunk.value_count * gvars));
            const int peer = ex.peer;
            const int tag = chunk.tag;
            rt_.submit(
                [this, span, peer, tag] {
                    const std::int64_t t0 = now_ns();
                    tampi_.irecv(comm_, span.data(), span.size_bytes(), peer, tag);
                    trace(worker_index(), t0, now_ns(), PhaseKind::Recv);
                },
                {out(span.data(), span.size_bytes())}, "flux_recv");
        }

        // Restriction (pack) tasks per fine face + one send task per chunk.
        for (const amr::MessageChunk& chunk : ex.send_chunks) {
            for (int f = chunk.first_face; f < chunk.first_face + chunk.face_count; ++f) {
                const amr::FaceTransfer* face = &ex.sends[static_cast<std::size_t>(f)];
                auto section =
                    send_stream.subspan(static_cast<std::size_t>(face->value_offset * gvars),
                                        static_cast<std::size_t>(face->value_count * gvars));
                rt_.submit(
                    [this, face, section, gb, ge] {
                        const std::int64_t t0 = now_ns();
                        auto reg = flux_register(face->mine).slice(gb, ge);
                        DFAMR_CHECK_READ(reg.data(), reg.size_bytes());
                        DFAMR_CHECK_WRITE(section.data(), section.size_bytes());
                        flux_register(face->mine)
                            .pack_restricted(face->geom.axis, face->geom.sense, gb, ge, section);
                        trace(worker_index(), t0, now_ns(), PhaseKind::Pack);
                    },
                    {reg_dep_in(face->mine, gb, ge), out(section.data(), section.size_bytes())},
                    "flux_pack");
            }
            auto span = send_stream.subspan(static_cast<std::size_t>(chunk.value_offset * gvars),
                                            static_cast<std::size_t>(chunk.value_count * gvars));
            const int peer = ex.peer;
            const int tag = chunk.tag;
            rt_.submit(
                [this, span, peer, tag] {
                    const std::int64_t t0 = now_ns();
                    tampi_.isend(comm_, span.data(), span.size_bytes(), peer, tag);
                    trace(worker_index(), t0, now_ns(), PhaseKind::Send);
                },
                {in(span.data(), span.size_bytes())}, "flux_send");
        }

        // Apply tasks: one per received coarse-side face. The inout on the
        // block's group span serializes corrections of different directions
        // on the same block in submission order (dir 0 -> 1 -> 2, matching
        // the synchronous variants' sequential loop).
        for (const amr::MessageChunk& chunk : ex.recv_chunks) {
            for (int f = chunk.first_face; f < chunk.first_face + chunk.face_count; ++f) {
                const amr::FaceTransfer* face = &ex.recvs[static_cast<std::size_t>(f)];
                auto section =
                    recv_stream.subspan(static_cast<std::size_t>(face->value_offset * gvars),
                                        static_cast<std::size_t>(face->value_count * gvars));
                rt_.submit(
                    [this, face, section, gb, ge] {
                        const std::int64_t t0 = now_ns();
                        DFAMR_CHECK_READ(section.data(), section.size_bytes());
                        auto blk = mesh_.block(face->mine).group_span(gb, ge);
                        DFAMR_CHECK_WRITE(blk.data(), blk.size_bytes());
                        auto reg = flux_register(face->mine).slice(gb, ge);
                        DFAMR_CHECK_WRITE(reg.data(), reg.size_bytes());
                        apply_flux_correction(*face, gb, ge,
                                              std::span<const double>(section));
                        trace(worker_index(), t0, now_ns(), PhaseKind::Unpack);
                    },
                    {in(section.data(), section.size_bytes()), block_dep_inout(face->mine, gb, ge),
                     reg_dep_inout(face->mine, gb, ge)},
                    "reflux");
            }
        }
    }

    // Intra-rank refluxes: restrict the fine source register on the fly.
    for (const amr::IntraCopy& copy_ref : fd.copies) {
        const amr::IntraCopy* copy = &copy_ref;
        rt_.submit(
            [this, copy, gb, ge] {
                const std::int64_t t0 = now_ns();
                apply_intra_flux(*copy, gb, ge);
                trace(worker_index(), t0, now_ns(), PhaseKind::IntraCopy);
            },
            {reg_dep_in(copy->src, gb, ge), block_dep_inout(copy->dst, gb, ge),
             reg_dep_inout(copy->dst, gb, ge)},
            "reflux_intra");
    }

    // One boundary-outflux task per direction: in on every boundary block's
    // register, inout on the scalar accumulator — the latter serializes the
    // three directions in submission order so the tally is bitwise identical
    // to the synchronous variants'.
    const amr::DirectionPlan& dp = plan_.direction(dir);
    if (!dp.boundary.empty()) {
        std::vector<Dep> deps;
        for (const auto& [key, sense] : dp.boundary) {
            (void)sense;
            deps.push_back(reg_dep_in(key, gb, ge));
        }
        deps.push_back(inout(&boundary_outflux_, sizeof boundary_outflux_));
        rt_.submit(
            [this, dir, gb, ge] {
                const std::int64_t t0 = now_ns();
                DFAMR_CHECK_WRITE(&boundary_outflux_, sizeof boundary_outflux_);
                accumulate_boundary_outflux(dir, gb, ge);
                trace(worker_index(), t0, now_ns(), PhaseKind::ChecksumLocal);
            },
            std::move(deps), "boundary_outflux");
    }
}

void TampiOssDriver::checksum_stage() {
    ChecksumSlot& slot = slots_[slot_index_];
    DFAMR_REQUIRE(!slot.pending, "checksum slot reused before validation");
    const std::vector<BlockKey> keys = mesh_.owned_keys();
    const int groups = cfg_.num_groups();
    slot.partials.assign(keys.size() * static_cast<std::size_t>(groups), 0.0);
    slot.group_sums.assign(static_cast<std::size_t>(groups), 0.0);

    for (int g = 0; g < groups; ++g) {
        const int gb = group_begin(g), ge = group_end(g);
        double* row = slot.partials.data() + static_cast<std::size_t>(g) * keys.size();
        for (std::size_t i = 0; i < keys.size(); ++i) {
            const BlockKey key = keys[i];
            double* cell = row + i;
            rt_.submit(
                [this, key, gb, ge, cell] {
                    const std::int64_t t0 = now_ns();
                    auto blk = mesh_.block(key).group_span(gb, ge);
                    DFAMR_CHECK_READ(blk.data(), blk.size_bytes());
                    DFAMR_CHECK_WRITE(cell, sizeof(double));
                    // Cell-volume weight for scenario runs (mass gate);
                    // 1.0 — a bitwise identity — for the synthetic workload.
                    *cell = checksum_weight(key) * mesh_.block(key).checksum(gb, ge);
                    trace(worker_index(), t0, now_ns(), PhaseKind::ChecksumLocal);
                },
                {block_dep_in(key, gb, ge), out(cell, sizeof(double))}, "checksum_local");
        }
        double* sum_cell = &slot.group_sums[static_cast<std::size_t>(g)];
        const std::size_t nkeys = keys.size();
        rt_.submit(
            [row, nkeys, sum_cell] {
                // Element-wise checked access on the partials row: every
                // load is validated against the declared in-region.
                auto crow = DFAMR_CHECKED_SPAN((std::span<const double>{row, nkeys}));
                double s = 0;
                for (std::size_t i = 0; i < nkeys; ++i) s += crow[i];
                DFAMR_CHECK_WRITE(sum_cell, sizeof(double));
                *sum_cell = s;
            },
            {in(row, nkeys * sizeof(double)), out(sum_cell, sizeof(double))}, "checksum_reduce");
    }
    slot.pending = true;

    if (cfg_.delayed_checksum) {
        // §IV-C: wait only until the PREVIOUS stage's sums are consumable
        // (taskwait with dependencies); the current stage keeps flowing.
        ChecksumSlot& prev = slots_[1 - slot_index_];
        if (prev.pending) {
            rt_.taskwait_on(
                {in(prev.group_sums.data(), prev.group_sums.size() * sizeof(double))});
            reduce_and_validate(prev.group_sums);
            prev.pending = false;
        }
    } else {
        // Base strategy: one taskwait per checksum stage (after the whole
        // stage, not per group), then the global reduction.
        rt_.taskwait();
        reduce_and_validate(slot.group_sums);
        slot.pending = false;
    }
    slot_index_ = 1 - slot_index_;
}

SchedulerCounters TampiOssDriver::scheduler_counters() const {
    return to_scheduler_counters(rt_.stats());
}

void TampiOssDriver::quiesce() {
    // Drain in-flight tasks so the main thread may read field state (live
    // CFL recomputation) without racing the stencil/reflux pipeline.
    rt_.taskwait();
}

int TampiOssDriver::worker_index() {
    // Lane 0 is the main thread; runtime worker w maps to lane w + 1, so
    // tasks record under the worker that executed them, not the spawner.
    const int w = rt_.worker_index_of_calling_thread();
    return w >= 0 ? w + 1 : 0;
}

void TampiOssDriver::final_sync() {
    rt_.taskwait();
    result_.stencil_flops = flops_.load();
    // Validate a deferred checksum stage, if one is still pending.
    for (int i = 0; i < 2; ++i) {
        ChecksumSlot& slot = slots_[1 - slot_index_];  // older first
        if (slot.pending) {
            reduce_and_validate(slot.group_sums);
            slot.pending = false;
        }
        slot_index_ = 1 - slot_index_;
    }
}

void TampiOssDriver::sync_before_refine() {
    rt_.taskwait();
    // A deferred checksum crossing a refinement boundary must be resolved
    // now: the collective is ordered with other ranks' refinement phases.
    for (int i = 0; i < 2; ++i) {
        ChecksumSlot& slot = slots_[1 - slot_index_];
        if (slot.pending) {
            reduce_and_validate(slot.group_sums);
            slot.pending = false;
        }
        slot_index_ = 1 - slot_index_;
    }
}

void TampiOssDriver::sync_refine_step() { rt_.taskwait(); }

void TampiOssDriver::do_splits(const std::vector<BlockKey>& parents) {
    if (!cfg_.taskify_refinement) {
        // Ablation (--serial_refinement): pre-paper sequential refinement.
        for (const BlockKey& key : parents) {
            const std::int64_t t0 = now_ns();
            mesh_.split_block(key);
            trace(0, t0, now_ns(), PhaseKind::RefineSplit);
        }
        return;
    }
    const int all = cfg_.num_vars;
    for (const BlockKey& key : parents) {
        std::shared_ptr<Block> parent(mesh_.release(key));
        for (int octant = 0; octant < 8; ++octant) {
            auto child = mesh_.make_block(key.child(octant, mesh_.structure().max_level()));
            Block* raw = child.get();
            mesh_.adopt(std::move(child));
            rt_.submit(
                [this, parent, raw, octant] {
                    const std::int64_t t0 = now_ns();
                    raw->fill_from_parent(*parent, octant);
                    trace(worker_index(), t0, now_ns(), PhaseKind::RefineSplit);
                },
                {out(raw->group_span(0, all).data(), raw->group_span(0, all).size_bytes())},
                "refine_split");
        }
    }
}

void TampiOssDriver::do_merges(const std::vector<BlockKey>& parents) {
    if (!cfg_.taskify_refinement) {
        for (const BlockKey& key : parents) {
            const std::int64_t t0 = now_ns();
            mesh_.merge_children(key);
            trace(0, t0, now_ns(), PhaseKind::RefineMerge);
        }
        return;
    }
    const int all = cfg_.num_vars;
    for (const BlockKey& key : parents) {
        auto children = std::make_shared<std::array<std::unique_ptr<Block>, 8>>();
        std::vector<Dep> deps;
        for (int octant = 0; octant < 8; ++octant) {
            (*children)[static_cast<std::size_t>(octant)] =
                mesh_.release(key.child(octant, mesh_.structure().max_level()));
            Block& c = *(*children)[static_cast<std::size_t>(octant)];
            deps.push_back(in(c.group_span(0, all).data(), c.group_span(0, all).size_bytes()));
        }
        auto parent = mesh_.make_block(key);
        Block* raw = parent.get();
        mesh_.adopt(std::move(parent));
        deps.push_back(out(raw->group_span(0, all).data(), raw->group_span(0, all).size_bytes()));
        rt_.submit(
            [this, children, raw] {
                const std::int64_t t0 = now_ns();
                for (int octant = 0; octant < 8; ++octant) {
                    raw->absorb_child(*(*children)[static_cast<std::size_t>(octant)], octant);
                }
                trace(worker_index(), t0, now_ns(), PhaseKind::RefineMerge);
            },
            std::move(deps), "refine_merge");
    }
}

void TampiOssDriver::transfer_block_data(const std::vector<BlockMove>& sends,
                                         const std::vector<BlockMove>& recvs) {
    if (!cfg_.taskify_refinement) {
        const std::int64_t t0 = now_ns();
        for (const BlockMove& mv : sends) {
            Block& b = mesh_.block(mv.key);
            hcomm_.send(b.data(), b.data_size() * sizeof(double), mv.to,
                        kBlockDataTagBase + mv.id);
            mesh_.release(mv.key);
        }
        for (const BlockMove& mv : recvs) {
            auto b = mesh_.make_block(mv.key);
            hcomm_.recv(b->data(), b->data_size() * sizeof(double), mv.from,
                        kBlockDataTagBase + mv.id);
            mesh_.adopt(std::move(b));
        }
        if (!sends.empty() || !recvs.empty()) {
            trace(0, t0, now_ns(), PhaseKind::RefineExchange);
        }
        return;
    }
    const int all = cfg_.num_vars;
    // Taskified payload transfers bound through TAMPI (§IV-B); the data
    // message is tagged with the block id both sides agreed on via the
    // control messages.
    for (const BlockMove& mv : sends) {
        std::shared_ptr<Block> b(mesh_.release(mv.key));
        auto span = b->group_span(0, all);
        const int to = mv.to;
        const int tag = kBlockDataTagBase + mv.id;
        rt_.submit(
            [this, b, span, to, tag] {
                const std::int64_t t0 = now_ns();
                tampi_.isend(comm_, span.data(), span.size_bytes(), to, tag);
                trace(worker_index(), t0, now_ns(), PhaseKind::RefineExchange);
            },
            {in(span.data(), span.size_bytes())}, "block_send");
    }
    for (const BlockMove& mv : recvs) {
        auto b = mesh_.make_block(mv.key);
        auto span = b->group_span(0, all);
        mesh_.adopt(std::move(b));
        const int from = mv.from;
        const int tag = kBlockDataTagBase + mv.id;
        rt_.submit(
            [this, span, from, tag] {
                const std::int64_t t0 = now_ns();
                tampi_.irecv(comm_, span.data(), span.size_bytes(), from, tag);
                trace(worker_index(), t0, now_ns(), PhaseKind::RefineExchange);
            },
            {out(span.data(), span.size_bytes())}, "block_recv");
    }
}

}  // namespace dfamr::core
