// Bridges the tasking runtime's cumulative RuntimeStats into the
// variant-neutral SchedulerCounters carried by RankResult. Kept out of
// result.hpp so the result types stay free of a tasking dependency (the
// MPI-only driver never links a runtime).
#pragma once

#include "core/result.hpp"
#include "tasking/runtime.hpp"

namespace dfamr::core {

inline SchedulerCounters to_scheduler_counters(const tasking::RuntimeStats& s) {
    SchedulerCounters c;
    c.tasks_executed = s.tasks_executed;
    c.steals = s.steals;
    c.steal_fails = s.steal_fails;
    c.parks = s.parks;
    c.wakeups = s.wakeups;
    c.immediate_successor_hits = s.immediate_successor_hits;
    return c;
}

}  // namespace dfamr::core
