#include "core/metrics.hpp"

#include <cinttypes>
#include <cstdio>

namespace dfamr::core {

namespace {

void append_sched(std::string& out, const char* indent, const SchedulerCounters& s) {
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "%s\"tasks_executed\": %" PRIu64 ",\n"
                  "%s\"steals\": %" PRIu64 ",\n"
                  "%s\"steal_fails\": %" PRIu64 ",\n"
                  "%s\"parks\": %" PRIu64 ",\n"
                  "%s\"wakeups\": %" PRIu64 ",\n"
                  "%s\"immediate_successor_hits\": %" PRIu64 "\n",
                  indent, s.tasks_executed, indent, s.steals, indent, s.steal_fails, indent,
                  s.parks, indent, s.wakeups, indent, s.immediate_successor_hits);
    out += buf;
}

}  // namespace

MetricsSnapshot make_metrics_snapshot(const amr::Tracer& tracer, const RunResult& result) {
    MetricsSnapshot m;
    m.trace = tracer.analyze();
    m.sched = result.sched;
    m.sched_refine = result.sched_refine;
    m.net = result.net;
    m.net_peers = result.net_peers;
    m.rndv_threshold = result.rndv_threshold;
    m.messages = result.messages;
    m.bytes = result.bytes;
    m.total_s = result.times.total;
    m.refine_s = result.times.refine;
    m.final_blocks = result.final_blocks;
    m.validation_ok = result.validation_ok;
    m.blocks_refined_by_estimator = result.counters.blocks_refined_by_estimator;
    m.refine_coarsen_thrash = result.counters.refine_coarsen_thrash;
    m.error_norm = result.error_norm;
    m.has_error_norm = result.has_error_norm;
    m.mass_drift = result.mass_drift;
    m.boundary_outflux = result.boundary_outflux;
    m.initial_mass = result.initial_mass;
    m.final_mass = result.final_mass;
    m.reflux_corrections = result.counters.reflux_corrections;
    return m;
}

std::string metrics_to_json(const MetricsSnapshot& m) {
    std::string out;
    out.reserve(4096);
    char buf[1024];
    const double span = static_cast<double>(m.trace.span_ns);

    out += "{\n  \"schema\": \"dfamr_metrics_v1\",\n";

    out += "  \"trace\": {\n";
    std::snprintf(buf, sizeof buf,
                  "    \"span_ns\": %" PRId64 ",\n"
                  "    \"busy_ns\": %" PRId64 ",\n"
                  "    \"progress_ns\": %" PRId64 ",\n"
                  "    \"utilization\": %.6f,\n"
                  "    \"overlap_ns\": %" PRId64 ",\n"
                  "    \"overlap_frac\": %.6f,\n"
                  "    \"largest_idle_gap_ns\": %" PRId64 ",\n"
                  "    \"largest_idle_gap_frac\": %.6f,\n"
                  "    \"refine_span_ns\": %" PRId64 ",\n"
                  "    \"cores\": %d,\n"
                  "    \"progress_lanes\": %d,\n"
                  "    \"events\": %" PRIu64 ",\n",
                  m.trace.span_ns, m.trace.busy_ns, m.trace.progress_ns, m.trace.utilization,
                  m.trace.overlap_ns, span > 0 ? static_cast<double>(m.trace.overlap_ns) / span : 0,
                  m.trace.largest_idle_gap_ns,
                  span > 0 ? static_cast<double>(m.trace.largest_idle_gap_ns) / span : 0,
                  m.trace.refine_span_ns, m.trace.cores, m.trace.progress_lanes, m.trace.events);
    out += buf;
    out += "    \"busy_ns_by_kind\": {";
    bool first = true;
    for (const auto& [kind, ns] : m.trace.busy_ns_by_kind) {
        std::snprintf(buf, sizeof buf, "%s\n      \"%s\": %" PRId64, first ? "" : ",",
                      to_string(kind).c_str(), ns);
        out += buf;
        first = false;
    }
    out += first ? "}\n" : "\n    }\n";
    out += "  },\n";

    out += "  \"scheduler\": {\n";
    append_sched(out, "    ", m.sched);
    // append_sched closes with a bare newline; splice the refine slice in.
    out.erase(out.size() - 1);
    out += ",\n    \"refine\": {\n";
    append_sched(out, "      ", m.sched_refine);
    out += "    }\n  },\n";

    const auto u64 = [](std::uint64_t v) { return static_cast<std::uint64_t>(v); };
    out += "  \"net\": {\n";
    std::snprintf(buf, sizeof buf,
                  "    \"bytes_sent\": %" PRIu64 ",\n"
                  "    \"bytes_received\": %" PRIu64 ",\n"
                  "    \"frames_sent\": %" PRIu64 ",\n"
                  "    \"frames_received\": %" PRIu64 ",\n"
                  "    \"rendezvous\": %" PRIu64 ",\n"
                  "    \"reconnects\": %" PRIu64 ",\n"
                  "    \"coalesced_frames_sent\": %" PRIu64 ",\n"
                  "    \"coalesced_messages\": %" PRIu64 ",\n"
                  "    \"copies_elided\": %" PRIu64 ",\n"
                  "    \"rndv_threshold\": %" PRIu64 ",\n",
                  u64(m.net.bytes_sent), u64(m.net.bytes_received), u64(m.net.frames_sent),
                  u64(m.net.frames_received), u64(m.net.rendezvous), u64(m.net.reconnects),
                  u64(m.net.coalesced_frames_sent), u64(m.net.coalesced_messages),
                  u64(m.net.copies_elided), u64(m.rndv_threshold));
    out += buf;
    out += "    \"peers\": [";
    for (std::size_t p = 0; p < m.net_peers.size(); ++p) {
        const net::PeerStats& ps = m.net_peers[p];
        std::snprintf(buf, sizeof buf,
                      "%s\n      {\"rank\": %zu, \"bytes_sent\": %" PRIu64
                      ", \"frames_sent\": %" PRIu64 ", \"bytes_received\": %" PRIu64
                      ", \"frames_received\": %" PRIu64 "}",
                      p == 0 ? "" : ",", p, u64(ps.bytes_sent), u64(ps.frames_sent),
                      u64(ps.bytes_received), u64(ps.frames_received));
        out += buf;
    }
    out += m.net_peers.empty() ? "]\n" : "\n    ]\n";
    out += "  },\n";

    out += "  \"run\": {\n";
    std::snprintf(buf, sizeof buf,
                  "    \"total_s\": %.6f,\n"
                  "    \"refine_s\": %.6f,\n"
                  "    \"messages\": %" PRIu64 ",\n"
                  "    \"bytes\": %" PRIu64 ",\n"
                  "    \"final_blocks\": %" PRId64 ",\n"
                  "    \"validation_ok\": %s,\n"
                  "    \"blocks_refined_by_estimator\": %" PRId64 ",\n"
                  "    \"refine_coarsen_thrash\": %" PRId64 ",\n"
                  "    \"error_norm\": %.17g,\n"
                  "    \"has_error_norm\": %s,\n"
                  "    \"mass_drift\": %.17g,\n"
                  "    \"boundary_outflux\": %.17g,\n"
                  "    \"initial_mass\": %.17g,\n"
                  "    \"final_mass\": %.17g,\n"
                  "    \"reflux_corrections\": %" PRId64 "\n",
                  m.total_s, m.refine_s, m.messages, m.bytes, m.final_blocks,
                  m.validation_ok ? "true" : "false", m.blocks_refined_by_estimator,
                  m.refine_coarsen_thrash, m.error_norm, m.has_error_norm ? "true" : "false",
                  m.mass_drift, m.boundary_outflux, m.initial_mass, m.final_mass,
                  m.reflux_corrections);
    out += buf;
    out += "  }\n}\n";
    return out;
}

}  // namespace dfamr::core
