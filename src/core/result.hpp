// Run results reported by the variant drivers — the quantities the paper's
// tables and figures are built from.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/run_control.hpp"
#include "net/wire.hpp"

namespace dfamr::core {

/// Wall-clock phase breakdown (seconds). For the data-flow variant the
/// comm/stencil split is not meaningful (phases overlap); total and refine
/// are the paper's reporting units (Table I's Total / Refine / No Refine).
struct PhaseTimes {
    double total = 0;
    double refine = 0;   // refinement + load balancing phases
    double comm = 0;     // communicate() (MPI-only / fork-join only)
    double stencil = 0;  // stencil sweeps (MPI-only / fork-join only)
    double checksum = 0;

    double non_refine() const { return total - refine; }
};

/// Event counters accumulated during a run (the mini-app's end-of-run
/// report).
struct RunCounters {
    std::int64_t blocks_split = 0;     // refinements applied (per block)
    std::int64_t blocks_merged = 0;    // coarsenings applied (per parent)
    std::int64_t blocks_moved = 0;     // whole-block transfers (coarsen + LB)
    /// Splits this rank performed under a field-based estimator condition
    /// (zero when the run marks from object intersection).
    std::int64_t blocks_refined_by_estimator = 0;
    std::int64_t refinement_phases = 0;
    std::int64_t load_balances = 0;
    std::int64_t checksum_stages = 0;
    /// Refine -> coarsen of the same block within deref_count planning
    /// checks (replicated bookkeeping: identical on every rank). Zero in
    /// healthy runs — the hysteresis exists to keep it there.
    std::int64_t refine_coarsen_thrash = 0;
    /// Coarse-fine flux corrections applied by the reflux pass (one per
    /// corrected face value). Allreduce-summed by the driver at the end of
    /// the run, so every rank already holds the global count. Zero for
    /// synthetic runs and for scenario runs with no level jumps.
    std::int64_t reflux_corrections = 0;

    RunCounters& operator+=(const RunCounters& o) {
        blocks_split += o.blocks_split;
        blocks_merged += o.blocks_merged;
        blocks_moved += o.blocks_moved;
        blocks_refined_by_estimator += o.blocks_refined_by_estimator;
        refinement_phases = std::max(refinement_phases, o.refinement_phases);
        load_balances = std::max(load_balances, o.load_balances);
        checksum_stages = std::max(checksum_stages, o.checksum_stages);
        refine_coarsen_thrash = std::max(refine_coarsen_thrash, o.refine_coarsen_thrash);
        reflux_corrections = std::max(reflux_corrections, o.reflux_corrections);
        return *this;
    }
};

/// Scheduler telemetry sampled from the tasking runtime (zero for the
/// MPI-only variant, which runs sequentially inside each rank). Summed
/// across ranks in the reduction; the refine/total split gives the
/// per-phase view the traces cannot (steals during refinement indicate the
/// split/merge copies actually spread across workers).
struct SchedulerCounters {
    std::uint64_t tasks_executed = 0;
    std::uint64_t steals = 0;
    std::uint64_t steal_fails = 0;
    std::uint64_t parks = 0;
    std::uint64_t wakeups = 0;
    std::uint64_t immediate_successor_hits = 0;

    SchedulerCounters& operator+=(const SchedulerCounters& o) {
        tasks_executed += o.tasks_executed;
        steals += o.steals;
        steal_fails += o.steal_fails;
        parks += o.parks;
        wakeups += o.wakeups;
        immediate_successor_hits += o.immediate_successor_hits;
        return *this;
    }
    SchedulerCounters operator-(const SchedulerCounters& o) const {
        SchedulerCounters d;
        d.tasks_executed = tasks_executed - o.tasks_executed;
        d.steals = steals - o.steals;
        d.steal_fails = steal_fails - o.steal_fails;
        d.parks = parks - o.parks;
        d.wakeups = wakeups - o.wakeups;
        d.immediate_successor_hits = immediate_successor_hits - o.immediate_successor_hits;
        return d;
    }
};

/// Per-rank result, before the cross-rank reduction.
struct RankResult {
    PhaseTimes times;
    std::vector<double> checksums;  // global checksum after each validation stage
    bool validation_ok = true;
    std::int64_t stencil_flops = 0;  // this rank's stencil FLOPs
    std::int64_t final_blocks = 0;   // blocks owned at the end
    RunCounters counters;
    SchedulerCounters sched;         // whole run (cumulative runtime stats)
    SchedulerCounters sched_refine;  // slice attributed to refinement phases
    /// Volume-weighted L1 error of variable 0 against the scenario's
    /// analytic reference at the final simulated time; already
    /// allreduce-summed, so every rank holds the global value. Valid only
    /// when has_error_norm (analytic scenarios).
    double error_norm = 0;
    bool has_error_norm = false;
    /// Why the run left the timestep loop early (RunControl decision); None
    /// for a run that completed all cfg.num_tsteps timesteps.
    StopKind stop = StopKind::None;
    /// Last completed timestep when stop != None (every rank agrees: the
    /// decision is broadcast).
    int stop_ts = -1;
    /// Scenario conservation ledger (DESIGN.md §18), all driver-allreduced
    /// globals — identical on every rank, like error_norm. mass_drift is the
    /// residual coarse-fine flux mismatch AFTER refluxing (exactly 0.0 by
    /// construction when the reflux pass ran); the mass budget
    /// final - initial + boundary_outflux closes to rounding. All zero for
    /// synthetic runs.
    double mass_drift = 0;
    double boundary_outflux = 0;
    double initial_mass = 0;
    double final_mass = 0;
};

/// Global result (reduced across ranks; the numbers a bench prints).
struct RunResult {
    PhaseTimes times;  // max over ranks
    std::vector<double> checksums;
    bool validation_ok = true;
    std::int64_t total_flops = 0;  // sum over ranks
    std::int64_t final_blocks = 0;
    std::uint64_t messages = 0;  // delivered by the MPI layer
    std::uint64_t bytes = 0;
    /// Wire-level transport counters, summed over all rank processes (all
    /// zero for the in-process transport).
    net::NetCounters net;
    /// Per-peer wire traffic, indexed by peer rank and summed over all rank
    /// processes (entry p = traffic every rank exchanged with rank p).
    /// Empty for the in-process transport.
    std::vector<net::PeerStats> net_peers;
    /// Effective eager/rendezvous switchover (bytes) the run used.
    std::uint64_t rndv_threshold = 0;
    RunCounters counters;
    SchedulerCounters sched;         // summed over ranks
    SchedulerCounters sched_refine;  // summed over ranks
    /// Global scenario error norm (identical on every rank; max-reduced).
    double error_norm = 0;
    bool has_error_norm = false;
    /// RunControl outcome (all ranks agree; None when no control attached
    /// or the run completed). checksums hold the history up to stop_ts.
    StopKind stop = StopKind::None;
    int stop_ts = -1;
    /// Scenario conservation ledger (max-reduced: already global on every
    /// rank). See RankResult for semantics.
    double mass_drift = 0;
    double boundary_outflux = 0;
    double initial_mass = 0;
    double final_mass = 0;

    bool completed() const { return stop == StopKind::None; }

    double gflops() const {
        return times.total > 0 ? static_cast<double>(total_flops) / times.total * 1e-9 : 0.0;
    }
};

}  // namespace dfamr::core
