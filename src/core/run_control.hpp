// Cooperative run control: the hook set a long-running host (the serve
// layer's JobManager) uses to observe and steer a simulation while it runs.
//
// The contract is collective and deterministic: the hook is consulted on
// rank 0 only, once per completed timestep, and its decision is broadcast
// to every rank of the world before anyone acts on it — all ranks suspend
// (or cancel) together at the same timestep boundary, after any periodic
// checkpoint for that timestep was written. Suspension serializes the full
// simulation state through the resilience checkpoint layer into an
// in-memory image (bit-identical to what a checkpoint file would hold);
// resuming a run from that image continues the timestep loop, checksum
// history included, exactly like a file restore.
//
// Run control requires an in-process world (every rank in this process):
// the image lives in this process's memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace dfamr::core {

/// Decision returned by the per-timestep hook.
enum class RunAction : int {
    Continue = 0,  // keep stepping
    Suspend = 1,   // quiesce, serialize to an in-memory image, leave the loop
    Cancel = 2,    // quiesce and leave the loop without building an image
};

/// Why a run returned before completing cfg.num_tsteps.
enum class StopKind : int { None = 0, Suspended = 1, Cancelled = 2 };

struct RunControl {
    /// Consulted on rank 0 after each completed timestep (refinement and
    /// periodic checkpointing for that timestep included). May be called
    /// from a rank thread of the running world — keep it cheap and never
    /// block on the world's own progress.
    std::function<RunAction(int ts_completed, int num_tsteps)> on_timestep;

    /// Receives the in-memory checkpoint image on suspension (rank 0's
    /// thread). The image is the complete, self-contained state — feeding
    /// it back through `restore_image` resumes the run.
    std::function<void(std::vector<std::byte> image)> on_suspend_image;

    /// When non-null, initial state is restored from this image instead of
    /// a fresh initialization (takes precedence over cfg.restore_path).
    const std::vector<std::byte>* restore_image = nullptr;

    /// When set, periodic checkpoints (cfg.checkpoint_every) are delivered
    /// here (rank 0's thread) instead of being written to
    /// cfg.checkpoint_path — crash recovery without disk.
    std::function<void(int ts_completed, std::vector<std::byte> image)> on_checkpoint_image;
};

}  // namespace dfamr::core
