#include "core/fork_join.hpp"

#include <atomic>
#include <cstdlib>
#include <deque>

#include "common/timing.hpp"
#include "core/sched_telemetry.hpp"
#include "tasking/parallel_for.hpp"
#include "verify/verifier.hpp"

namespace dfamr::core {

ForkJoinDriver::ForkJoinDriver(const Config& cfg, mpi::Communicator& comm, Tracer* tracer)
    : DriverBase(cfg, comm, tracer), rt_(cfg.workers - 1) {
#if defined(DFAMR_VERIFY)
    verifier_ = std::make_unique<verify::Verifier>();
    verifier_->attach(rt_);
#else
    // Opt-in race prover: see TampiOssDriver — DFAMR_DEPLINT=1 attaches
    // DepLint in default builds for the multi-process golden tests.
    if (const char* e = std::getenv("DFAMR_DEPLINT"); e != nullptr && e[0] == '1') {
        verifier_ = std::make_unique<verify::Verifier>();
        verifier_->deplint().set_check_on_shutdown(true);
        verifier_->attach(rt_);
    }
#endif
}

ForkJoinDriver::~ForkJoinDriver() = default;

void ForkJoinDriver::pfor(std::int64_t n, const std::function<void(std::int64_t)>& fn) {
    tasking::parallel_for(rt_, 0, n, fn);
}

void ForkJoinDriver::communicate_stage(int group) {
    Stopwatch sw;
    sw.start();
    const int gb = group_begin(group), ge = group_end(group);
    for (int dir = 0; dir < 3; ++dir) {
        exchange_direction(dir, gb, ge);
    }
    sw.stop();
    result_.times.comm += sw.elapsed_s();
}

void ForkJoinDriver::exchange_direction(int dir, int gb, int ge) {
    if (cfg_.zero_copy) {
        exchange_direction_zero_copy(dir, gb, ge);
        return;
    }
    const amr::DirectionPlan& dp = plan_.direction(dir);
    const int gvars = ge - gb;

    // Master posts all receives.
    std::vector<mpi::Request> recv_reqs;
    for (std::size_t ni = 0; ni < dp.neighbors.size(); ++ni) {
        const amr::NeighborExchange& ex = dp.neighbors[ni];
        auto stream = buffers_->recv_stream(dir, static_cast<int>(ni));
        for (const amr::MessageChunk& chunk : ex.recv_chunks) {
            auto span = stream.subspan(static_cast<std::size_t>(chunk.value_offset * gvars),
                                       static_cast<std::size_t>(chunk.value_count * gvars));
            recv_reqs.push_back(hcomm_.irecv(span.data(), span.size_bytes(), ex.peer, chunk.tag));
        }
    }

    // Worksharing loop over all faces to pack (implicit barrier at the end).
    struct PackJob {
        const amr::NeighborExchange* ex;
        const amr::FaceTransfer* face;
        int neighbor_index;
    };
    std::vector<PackJob> pack_jobs;
    for (std::size_t ni = 0; ni < dp.neighbors.size(); ++ni) {
        for (const amr::FaceTransfer& face : dp.neighbors[ni].sends) {
            pack_jobs.push_back(PackJob{&dp.neighbors[ni], &face, static_cast<int>(ni)});
        }
    }
    pfor(static_cast<std::int64_t>(pack_jobs.size()), [&](std::int64_t i) {
        const PackJob& job = pack_jobs[static_cast<std::size_t>(i)];
        auto stream = buffers_->send_stream(dir, job.neighbor_index);
        auto section =
            stream.subspan(static_cast<std::size_t>(job.face->value_offset * gvars),
                           static_cast<std::size_t>(job.face->value_count * gvars));
        const std::int64_t t0 = now_ns();
        DFAMR_CHECK_READ(mesh_.block(job.face->mine).group_span(gb, ge).data(),
                         mesh_.block(job.face->mine).group_span(gb, ge).size_bytes());
        DFAMR_CHECK_WRITE(section.data(), section.size_bytes());
        mesh_.block(job.face->mine).pack_face(job.face->geom, gb, ge, section);
        trace(worker_index(), t0, now_ns(), PhaseKind::Pack);
    });

    // Master sends every chunk (all MPI stays on the master thread).
    std::vector<mpi::Request> send_reqs;
    for (std::size_t ni = 0; ni < dp.neighbors.size(); ++ni) {
        const amr::NeighborExchange& ex = dp.neighbors[ni];
        auto stream = buffers_->send_stream(dir, static_cast<int>(ni));
        for (const amr::MessageChunk& chunk : ex.send_chunks) {
            auto span = stream.subspan(static_cast<std::size_t>(chunk.value_offset * gvars),
                                       static_cast<std::size_t>(chunk.value_count * gvars));
            const std::int64_t t0 = now_ns();
            send_reqs.push_back(hcomm_.isend(span.data(), span.size_bytes(), ex.peer, chunk.tag));
            trace(0, t0, now_ns(), PhaseKind::Send);
        }
    }

    // Intra-process copies + boundary reflection, workshared.
    pfor(static_cast<std::int64_t>(dp.copies.size()), [&](std::int64_t i) {
        const amr::IntraCopy& copy = dp.copies[static_cast<std::size_t>(i)];
        const std::int64_t t0 = now_ns();
        mesh_.block(copy.dst).copy_face_from(mesh_.block(copy.src), copy.geom, gb, ge);
        trace(worker_index(), t0, now_ns(), PhaseKind::IntraCopy);
    });
    pfor(static_cast<std::int64_t>(dp.boundary.size()), [&](std::int64_t i) {
        const auto& [key, sense] = dp.boundary[static_cast<std::size_t>(i)];
        mesh_.block(key).reflect_face(dir, sense, gb, ge);
    });

    // Master waits for ALL receives (fork-join cannot overlap per-message),
    // then a workshared loop unpacks everything.
    const std::int64_t t0 = now_ns();
    hcomm_.wait_all(std::span<mpi::Request>(recv_reqs));
    trace(0, t0, now_ns(), PhaseKind::CommWait);

    struct UnpackJob {
        const amr::FaceTransfer* face;
        int neighbor_index;
    };
    std::vector<UnpackJob> unpack_jobs;
    for (std::size_t ni = 0; ni < dp.neighbors.size(); ++ni) {
        for (const amr::FaceTransfer& face : dp.neighbors[ni].recvs) {
            unpack_jobs.push_back(UnpackJob{&face, static_cast<int>(ni)});
        }
    }
    pfor(static_cast<std::int64_t>(unpack_jobs.size()), [&](std::int64_t i) {
        const UnpackJob& job = unpack_jobs[static_cast<std::size_t>(i)];
        auto stream = buffers_->recv_stream(dir, job.neighbor_index);
        auto section =
            stream.subspan(static_cast<std::size_t>(job.face->value_offset * gvars),
                           static_cast<std::size_t>(job.face->value_count * gvars));
        const std::int64_t t1 = now_ns();
        DFAMR_CHECK_READ(section.data(), section.size_bytes());
        DFAMR_CHECK_WRITE(mesh_.block(job.face->mine).group_span(gb, ge).data(),
                          mesh_.block(job.face->mine).group_span(gb, ge).size_bytes());
        mesh_.block(job.face->mine).unpack_face(job.face->geom, gb, ge, section);
        trace(worker_index(), t1, now_ns(), PhaseKind::Unpack);
    });

    const std::int64_t t2 = now_ns();
    hcomm_.wait_all(std::span<mpi::Request>(send_reqs));
    trace(0, t2, now_ns(), PhaseKind::CommWait);
}

void ForkJoinDriver::exchange_direction_zero_copy(int dir, int gb, int ge) {
    // Mirrors exchange_direction with each chunk owning a transport frame:
    // pack worksharing targets the frame payloads directly, and unpack
    // worksharing reads the received frames in place (no staging streams).
    const amr::DirectionPlan& dp = plan_.direction(dir);
    const int gvars = ge - gb;

    struct RecvSlot {
        int neighbor_index;
        const amr::MessageChunk* chunk;
    };
    std::vector<mpi::Request> recv_reqs;
    std::vector<RecvSlot> recv_slots;
    std::deque<mpi::RxView> views;  // stable addresses while in flight
    for (std::size_t ni = 0; ni < dp.neighbors.size(); ++ni) {
        const amr::NeighborExchange& ex = dp.neighbors[ni];
        for (const amr::MessageChunk& chunk : ex.recv_chunks) {
            const std::size_t bytes =
                static_cast<std::size_t>(chunk.value_count * gvars) * sizeof(double);
            views.emplace_back();
            recv_reqs.push_back(hcomm_.irecv_view(&views.back(), bytes, ex.peer, chunk.tag));
            recv_slots.push_back(RecvSlot{static_cast<int>(ni), &chunk});
        }
    }

    // One frame per send chunk, created by the master; the workshared pack
    // loop fills disjoint face sections of them.
    struct SendChunk {
        const amr::NeighborExchange* ex;
        const amr::MessageChunk* chunk;
        mpi::TxBuffer tx;
    };
    std::vector<SendChunk> send_chunks;
    struct PackJob {
        const amr::FaceTransfer* face;
        std::size_t chunk_index;
    };
    std::vector<PackJob> pack_jobs;
    for (std::size_t ni = 0; ni < dp.neighbors.size(); ++ni) {
        const amr::NeighborExchange& ex = dp.neighbors[ni];
        for (const amr::MessageChunk& chunk : ex.send_chunks) {
            const std::size_t bytes =
                static_cast<std::size_t>(chunk.value_count * gvars) * sizeof(double);
            send_chunks.push_back(SendChunk{&ex, &chunk, mpi::make_tx_buffer(bytes)});
            for (int f = chunk.first_face; f < chunk.first_face + chunk.face_count; ++f) {
                pack_jobs.push_back(
                    PackJob{&ex.sends[static_cast<std::size_t>(f)], send_chunks.size() - 1});
            }
        }
    }
    pfor(static_cast<std::int64_t>(pack_jobs.size()), [&](std::int64_t i) {
        const PackJob& job = pack_jobs[static_cast<std::size_t>(i)];
        SendChunk& sc = send_chunks[job.chunk_index];
        auto section = sc.tx.payload.subspan(
            static_cast<std::size_t>((job.face->value_offset - sc.chunk->value_offset) * gvars) *
                sizeof(double),
            static_cast<std::size_t>(job.face->value_count * gvars) * sizeof(double));
        const std::int64_t t0 = now_ns();
        mesh_.block(job.face->mine).pack_face(job.face->geom, gb, ge, section);
        trace(worker_index(), t0, now_ns(), PhaseKind::Pack);
    });

    std::vector<mpi::Request> send_reqs;
    for (const SendChunk& sc : send_chunks) {
        const std::int64_t t0 = now_ns();
        send_reqs.push_back(hcomm_.isend_tx(sc.tx, sc.ex->peer, sc.chunk->tag));
        trace(0, t0, now_ns(), PhaseKind::Send);
    }

    pfor(static_cast<std::int64_t>(dp.copies.size()), [&](std::int64_t i) {
        const amr::IntraCopy& copy = dp.copies[static_cast<std::size_t>(i)];
        const std::int64_t t0 = now_ns();
        mesh_.block(copy.dst).copy_face_from(mesh_.block(copy.src), copy.geom, gb, ge);
        trace(worker_index(), t0, now_ns(), PhaseKind::IntraCopy);
    });
    pfor(static_cast<std::int64_t>(dp.boundary.size()), [&](std::int64_t i) {
        const auto& [key, sense] = dp.boundary[static_cast<std::size_t>(i)];
        mesh_.block(key).reflect_face(dir, sense, gb, ge);
    });

    const std::int64_t t0 = now_ns();
    hcomm_.wait_all(std::span<mpi::Request>(recv_reqs));
    trace(0, t0, now_ns(), PhaseKind::CommWait);

    struct UnpackJob {
        const amr::FaceTransfer* face;
        const amr::MessageChunk* chunk;
        const mpi::RxView* view;
    };
    std::vector<UnpackJob> unpack_jobs;
    for (std::size_t s = 0; s < recv_slots.size(); ++s) {
        const RecvSlot& slot = recv_slots[s];
        const amr::NeighborExchange& ex =
            dp.neighbors[static_cast<std::size_t>(slot.neighbor_index)];
        for (int f = slot.chunk->first_face; f < slot.chunk->first_face + slot.chunk->face_count;
             ++f) {
            unpack_jobs.push_back(
                UnpackJob{&ex.recvs[static_cast<std::size_t>(f)], slot.chunk, &views[s]});
        }
    }
    pfor(static_cast<std::int64_t>(unpack_jobs.size()), [&](std::int64_t i) {
        const UnpackJob& job = unpack_jobs[static_cast<std::size_t>(i)];
        auto section = job.view->payload.subspan(
            static_cast<std::size_t>((job.face->value_offset - job.chunk->value_offset) * gvars) *
                sizeof(double),
            static_cast<std::size_t>(job.face->value_count * gvars) * sizeof(double));
        const std::int64_t t1 = now_ns();
        mesh_.block(job.face->mine).unpack_face(job.face->geom, gb, ge, section);
        trace(worker_index(), t1, now_ns(), PhaseKind::Unpack);
    });

    const std::int64_t t2 = now_ns();
    hcomm_.wait_all(std::span<mpi::Request>(send_reqs));
    trace(0, t2, now_ns(), PhaseKind::CommWait);
}

void ForkJoinDriver::stencil_stage(int group) {
    Stopwatch sw;
    sw.start();
    const int gb = group_begin(group), ge = group_end(group);
    const std::vector<BlockKey> keys = mesh_.owned_keys();
    std::atomic<std::int64_t> flops{0};
    pfor(static_cast<std::int64_t>(keys.size()), [&](std::int64_t i) {
        const std::int64_t t0 = now_ns();
        Block& blk = mesh_.block(keys[static_cast<std::size_t>(i)]);
        DFAMR_CHECK_READ(blk.group_span(gb, ge).data(), blk.group_span(gb, ge).size_bytes());
        DFAMR_CHECK_WRITE(blk.group_span(gb, ge).data(), blk.group_span(gb, ge).size_bytes());
        flops += update_block(blk, gb, ge);
        trace(worker_index(), t0, now_ns(), PhaseKind::Stencil);
    });
    result_.stencil_flops += flops.load();
    sw.stop();
    result_.times.stencil += sw.elapsed_s();
}

void ForkJoinDriver::reflux_stage(int group) {
    // Same master-MPI / workshared-compute split as exchange_direction, over
    // the flux plan: workers restrict and apply register corrections (faces
    // touch disjoint cells, so static worksharing is race-free), the master
    // does every MPI call and the deterministic boundary tally.
    Stopwatch sw;
    sw.start();
    const int gb = group_begin(group), ge = group_end(group);
    const int gvars = ge - gb;
    for (int dir = 0; dir < 3; ++dir) {
        const amr::FluxPlan::Direction& fd = flux_plan_.direction(dir);
        auto& send_bufs = flux_send_[static_cast<std::size_t>(dir)];
        auto& recv_bufs = flux_recv_[static_cast<std::size_t>(dir)];

        // Master posts all receives.
        std::vector<mpi::Request> recv_reqs;
        for (std::size_t ni = 0; ni < fd.neighbors.size(); ++ni) {
            const amr::NeighborExchange& ex = fd.neighbors[ni];
            std::span<double> stream(recv_bufs[ni]);
            for (const amr::MessageChunk& chunk : ex.recv_chunks) {
                auto span = stream.subspan(static_cast<std::size_t>(chunk.value_offset * gvars),
                                           static_cast<std::size_t>(chunk.value_count * gvars));
                recv_reqs.push_back(
                    hcomm_.irecv(span.data(), span.size_bytes(), ex.peer, chunk.tag));
            }
        }

        // Workshared restriction of fine registers into the send streams.
        struct PackJob {
            const amr::FaceTransfer* face;
            int neighbor_index;
        };
        std::vector<PackJob> pack_jobs;
        for (std::size_t ni = 0; ni < fd.neighbors.size(); ++ni) {
            for (const amr::FaceTransfer& face : fd.neighbors[ni].sends) {
                pack_jobs.push_back(PackJob{&face, static_cast<int>(ni)});
            }
        }
        pfor(static_cast<std::int64_t>(pack_jobs.size()), [&](std::int64_t i) {
            const PackJob& job = pack_jobs[static_cast<std::size_t>(i)];
            std::span<double> stream(send_bufs[static_cast<std::size_t>(job.neighbor_index)]);
            auto section =
                stream.subspan(static_cast<std::size_t>(job.face->value_offset * gvars),
                               static_cast<std::size_t>(job.face->value_count * gvars));
            const std::int64_t t0 = now_ns();
            DFAMR_CHECK_WRITE(section.data(), section.size_bytes());
            flux_register(job.face->mine)
                .pack_restricted(job.face->geom.axis, job.face->geom.sense, gb, ge, section);
            trace(worker_index(), t0, now_ns(), PhaseKind::Pack);
        });

        // Master sends every chunk.
        std::vector<mpi::Request> send_reqs;
        for (std::size_t ni = 0; ni < fd.neighbors.size(); ++ni) {
            const amr::NeighborExchange& ex = fd.neighbors[ni];
            std::span<double> stream(send_bufs[ni]);
            for (const amr::MessageChunk& chunk : ex.send_chunks) {
                auto span = stream.subspan(static_cast<std::size_t>(chunk.value_offset * gvars),
                                           static_cast<std::size_t>(chunk.value_count * gvars));
                const std::int64_t t0 = now_ns();
                send_reqs.push_back(
                    hcomm_.isend(span.data(), span.size_bytes(), ex.peer, chunk.tag));
                trace(0, t0, now_ns(), PhaseKind::Send);
            }
        }

        // Workshared intra-rank refluxes while messages are in flight.
        pfor(static_cast<std::int64_t>(fd.copies.size()), [&](std::int64_t i) {
            const amr::IntraCopy& copy = fd.copies[static_cast<std::size_t>(i)];
            const std::int64_t t0 = now_ns();
            apply_intra_flux(copy, gb, ge);
            trace(worker_index(), t0, now_ns(), PhaseKind::IntraCopy);
        });

        // Master waits for all receives, then a workshared apply loop.
        const std::int64_t t0 = now_ns();
        hcomm_.wait_all(std::span<mpi::Request>(recv_reqs));
        trace(0, t0, now_ns(), PhaseKind::CommWait);

        struct ApplyJob {
            const amr::FaceTransfer* face;
            int neighbor_index;
        };
        std::vector<ApplyJob> apply_jobs;
        for (std::size_t ni = 0; ni < fd.neighbors.size(); ++ni) {
            for (const amr::FaceTransfer& face : fd.neighbors[ni].recvs) {
                apply_jobs.push_back(ApplyJob{&face, static_cast<int>(ni)});
            }
        }
        pfor(static_cast<std::int64_t>(apply_jobs.size()), [&](std::int64_t i) {
            const ApplyJob& job = apply_jobs[static_cast<std::size_t>(i)];
            std::span<const double> stream(recv_bufs[static_cast<std::size_t>(job.neighbor_index)]);
            auto section =
                stream.subspan(static_cast<std::size_t>(job.face->value_offset * gvars),
                               static_cast<std::size_t>(job.face->value_count * gvars));
            const std::int64_t t1 = now_ns();
            DFAMR_CHECK_READ(section.data(), section.size_bytes());
            apply_flux_correction(*job.face, gb, ge, section);
            trace(worker_index(), t1, now_ns(), PhaseKind::Unpack);
        });

        const std::int64_t t2 = now_ns();
        hcomm_.wait_all(std::span<mpi::Request>(send_reqs));
        trace(0, t2, now_ns(), PhaseKind::CommWait);

        // Deterministic mass-budget tally on the master.
        accumulate_boundary_outflux(dir, gb, ge);
    }
    sw.stop();
    result_.times.comm += sw.elapsed_s();
}

void ForkJoinDriver::checksum_stage() {
    const std::vector<BlockKey> keys = mesh_.owned_keys();
    std::vector<double> sums(static_cast<std::size_t>(cfg_.num_groups()), 0.0);
    for (int g = 0; g < cfg_.num_groups(); ++g) {
        const int gb = group_begin(g), ge = group_end(g);
        std::vector<double> partials(keys.size(), 0.0);
        pfor(static_cast<std::int64_t>(keys.size()), [&](std::int64_t i) {
            const std::int64_t t0 = now_ns();
            const BlockKey& key = keys[static_cast<std::size_t>(i)];
            const Block& blk = mesh_.block(key);
            DFAMR_CHECK_READ(blk.group_span(gb, ge).data(), blk.group_span(gb, ge).size_bytes());
            // Cell-volume weight for scenario runs (mass conservation gate);
            // 1.0 — a bitwise identity — for the synthetic workload.
            partials[static_cast<std::size_t>(i)] = checksum_weight(key) * blk.checksum(gb, ge);
            trace(worker_index(), t0, now_ns(), PhaseKind::ChecksumLocal);
        });
        double sum = 0;
        for (double p : partials) sum += p;
        sums[static_cast<std::size_t>(g)] = sum;
    }
    reduce_and_validate(sums);
}

SchedulerCounters ForkJoinDriver::scheduler_counters() const {
    return to_scheduler_counters(rt_.stats());
}

int ForkJoinDriver::worker_index() {
    // Lane 0 is the master thread; runtime worker w maps to lane w + 1.
    const int w = rt_.worker_index_of_calling_thread();
    return w >= 0 ? w + 1 : 0;
}

void ForkJoinDriver::do_splits(const std::vector<BlockKey>& parents) {
    // The map surgery stays on the master; the 8 data copies per split are
    // workshared (this is the refinement parallelization the paper added to
    // the fork-join variant for fairness).
    struct Job {
        std::shared_ptr<Block> parent;
        Block* child;
        int octant;
    };
    std::vector<Job> jobs;
    for (const BlockKey& key : parents) {
        std::shared_ptr<Block> parent(mesh_.release(key).release());
        for (int octant = 0; octant < 8; ++octant) {
            auto child = mesh_.make_block(key.child(octant, mesh_.structure().max_level()));
            Block* raw = child.get();
            mesh_.adopt(std::move(child));
            jobs.push_back(Job{parent, raw, octant});
        }
    }
    pfor(static_cast<std::int64_t>(jobs.size()), [&](std::int64_t i) {
        const Job& job = jobs[static_cast<std::size_t>(i)];
        const std::int64_t t0 = now_ns();
        job.child->fill_from_parent(*job.parent, job.octant);
        trace(worker_index(), t0, now_ns(), PhaseKind::RefineSplit);
    });
}

void ForkJoinDriver::do_merges(const std::vector<BlockKey>& parents) {
    struct Job {
        std::array<std::unique_ptr<Block>, 8> children;
        Block* parent;
    };
    std::vector<Job> jobs;
    for (const BlockKey& key : parents) {
        Job job;
        for (int octant = 0; octant < 8; ++octant) {
            job.children[static_cast<std::size_t>(octant)] =
                mesh_.release(key.child(octant, mesh_.structure().max_level()));
        }
        auto parent = mesh_.make_block(key);
        job.parent = parent.get();
        mesh_.adopt(std::move(parent));
        jobs.push_back(std::move(job));
    }
    pfor(static_cast<std::int64_t>(jobs.size()), [&](std::int64_t i) {
        Job& job = jobs[static_cast<std::size_t>(i)];
        const std::int64_t t0 = now_ns();
        for (int octant = 0; octant < 8; ++octant) {
            job.parent->absorb_child(*job.children[static_cast<std::size_t>(octant)], octant);
        }
        trace(worker_index(), t0, now_ns(), PhaseKind::RefineMerge);
    });
}

void ForkJoinDriver::transfer_block_data(const std::vector<BlockMove>& sends,
                                         const std::vector<BlockMove>& recvs) {
    // Master-only MPI, like every other communication in this variant.
    const std::int64_t t0 = now_ns();
    for (const BlockMove& mv : sends) {
        Block& b = mesh_.block(mv.key);
        hcomm_.send(b.data(), b.data_size() * sizeof(double), mv.to, kBlockDataTagBase + mv.id);
        mesh_.release(mv.key);
    }
    for (const BlockMove& mv : recvs) {
        auto b = mesh_.make_block(mv.key);
        hcomm_.recv(b->data(), b->data_size() * sizeof(double), mv.from,
                   kBlockDataTagBase + mv.id);
        mesh_.adopt(std::move(b));
    }
    if (!sends.empty() || !recvs.empty()) {
        trace(0, t0, now_ns(), PhaseKind::RefineExchange);
    }
}

}  // namespace dfamr::core
