// Schedule-space explorer: stateless-in-spirit DFS over the
// ControlledRuntime's decision tree, reduced with sleep sets.
//
// Soundness of the reduction: sleep sets only prune transitions that are
// guaranteed (by the independence relation) to lead to states reachable via
// an already-explored equivalent interleaving, so every reachable TERMINAL
// state of the schedule space is still visited — which is exactly what the
// two properties under test quantify over (final checksum, DepLint verdict
// of the completed history). The independence relation is the conservative
// one of ControlledRuntime::dependent (disjoint queues, conflict-free
// bodies); over-approximating dependence only costs schedules, never
// soundness.
//
// Violations: a terminal state whose checksum differs from the first
// terminal's, or whose DepLint feed is dirty. On the first violation the
// explorer stops and greedily minimizes the offending digit string — for
// each prefix position it tries smaller digits (completing the suffix with
// zeros) and keeps any variant that still violates, yielding a
// lexicographically minimal-ish counterexample that is short to read.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "verify/mc/controlled_runtime.hpp"

namespace dfamr::verify::mc {

struct Counterexample {
    std::vector<std::size_t> choices;  // minimized digit string
    std::uint64_t checksum = 0;        // what this schedule produced
    std::uint64_t expected = 0;        // the reference checksum
    bool deplint_clean = true;
    std::string deplint_report;
    std::string rendered;  // human-readable step-by-step schedule
};

struct ExploreStats {
    std::uint64_t schedules = 0;    // terminal states visited
    std::uint64_t transitions = 0;  // actions applied
    std::uint64_t sleep_pruned = 0; // branches skipped by sleep sets
    std::uint64_t distinct_checksums = 0;
    bool hit_cap = false;           // stopped at max_schedules
};

struct ExploreResult {
    ExploreStats stats;
    std::uint64_t reference_checksum = 0;
    bool deterministic = true;   // single checksum across all schedules
    bool deplint_clean = true;   // canonical schedule's DepLint verdict
    std::optional<Counterexample> counterexample;

    bool clean() const { return deterministic && deplint_clean && !counterexample; }
};

struct ExploreOptions {
    /// Stop after this many terminal schedules (0 = unlimited). The cap
    /// guards mutated graphs whose schedule space explodes; hitting it is
    /// reported, never silent.
    std::uint64_t max_schedules = 250000;
    /// Stop at the first violation and minimize it (default). When false,
    /// keeps exploring and reports the first violation found anyway.
    bool stop_on_violation = true;
};

/// Exhaustively explores the sleep-set-reduced schedule space of `rt`.
ExploreResult explore(const ControlledRuntime& rt, const ExploreOptions& opts = {});

}  // namespace dfamr::verify::mc
