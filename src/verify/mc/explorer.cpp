#include "verify/mc/explorer.hpp"

#include <algorithm>
#include <set>

namespace dfamr::verify::mc {

namespace {

struct Ctx {
    const ControlledRuntime& rt;
    const ExploreOptions& opts;
    ExploreResult res;
    std::set<std::uint64_t> checksums;
    std::vector<std::size_t> path;  // digit string of the current DFS branch
    bool have_reference = false;
    bool stop = false;
    std::vector<std::size_t> violating_path;
    std::uint64_t violating_checksum = 0;
    bool violation_is_mismatch = false;
};

bool contains(const std::vector<Action>& set, const Action& a) {
    return std::find(set.begin(), set.end(), a) != set.end();
}

void terminal(Ctx& c, const ControlledRuntime::State& s) {
    ++c.res.stats.schedules;
    const std::uint64_t sum = c.rt.checksum(s);
    c.checksums.insert(sum);
    if (!c.have_reference) {
        c.have_reference = true;
        c.res.reference_checksum = sum;
        // The DepLint verdict is schedule-invariant in this model (every
        // registration is stamped before any release, so ordering can only
        // come from explicit edges — which don't depend on the schedule):
        // one replay of the canonical schedule settles it for the whole
        // space.
        const ControlledRuntime::RunResult canonical = c.rt.run(c.path);
        c.res.deplint_clean = canonical.deplint_clean;
        if (!canonical.deplint_clean) {
            // Record the static witness but keep exploring: a schedule whose
            // checksum actually diverges is the stronger, dynamic witness,
            // and minimizing it gives the counterexample worth reading.
            c.violating_path = c.path;
            c.violating_checksum = sum;
            c.violation_is_mismatch = false;
        }
    } else if (sum != c.res.reference_checksum) {
        c.res.deterministic = false;
        if (c.violating_path.empty() || !c.violation_is_mismatch) {
            c.violating_path = c.path;
            c.violating_checksum = sum;
            c.violation_is_mismatch = true;
        }
        if (c.opts.stop_on_violation) c.stop = true;
    }
    if (c.opts.max_schedules != 0 && c.res.stats.schedules >= c.opts.max_schedules) {
        c.res.stats.hit_cap = true;
        c.stop = true;
    }
}

void dfs(Ctx& c, const ControlledRuntime::State& s, std::vector<Action> sleep) {
    if (c.stop) return;
    const std::vector<Action> acts = c.rt.enabled(s);
    if (acts.empty()) {
        terminal(c, s);
        return;
    }
    for (std::size_t i = 0; i < acts.size() && !c.stop; ++i) {
        const Action& a = acts[i];
        if (contains(sleep, a)) {
            ++c.res.stats.sleep_pruned;
            continue;
        }
        ControlledRuntime::State child = s;
        c.rt.apply(child, a);
        ++c.res.stats.transitions;
        // A sibling already explored from this state stays asleep in the
        // child iff it is independent of `a` (its effect there is covered
        // by the sibling's own subtree).
        std::vector<Action> child_sleep;
        child_sleep.reserve(sleep.size());
        for (const Action& b : sleep) {
            if (!c.rt.dependent(s, a, b)) child_sleep.push_back(b);
        }
        c.path.push_back(i);
        dfs(c, child, std::move(child_sleep));
        c.path.pop_back();
        sleep.push_back(a);
    }
}

/// True when replaying `digits` still exhibits the violation being
/// minimized (checksum mismatch against the reference, or a dirty DepLint
/// feed, matching the kind of the original violation).
bool still_violates(const ControlledRuntime& rt, const std::vector<std::size_t>& digits,
                    std::uint64_t reference, bool want_mismatch) {
    const ControlledRuntime::RunResult r = rt.run(digits);
    return want_mismatch ? r.checksum != reference : !r.deplint_clean;
}

/// Greedy schedule minimization: shortest violating prefix first (run()
/// completes missing digits with choice 0), then lower every digit as far
/// as it goes, iterated to a fixpoint.
std::vector<std::size_t> minimize(const ControlledRuntime& rt, std::vector<std::size_t> digits,
                                  std::uint64_t reference, bool want_mismatch) {
    // Strip trailing zeros — they are the default completion already.
    while (!digits.empty() && digits.back() == 0) digits.pop_back();
    bool improved = true;
    while (improved) {
        improved = false;
        for (std::size_t len = 0; len < digits.size(); ++len) {
            std::vector<std::size_t> prefix(digits.begin(),
                                            digits.begin() + static_cast<std::ptrdiff_t>(len));
            if (still_violates(rt, prefix, reference, want_mismatch)) {
                digits = std::move(prefix);
                improved = true;
                break;
            }
        }
        for (std::size_t pos = 0; pos < digits.size(); ++pos) {
            while (digits[pos] > 0) {
                std::vector<std::size_t> lowered = digits;
                --lowered[pos];
                if (!still_violates(rt, lowered, reference, want_mismatch)) break;
                digits = std::move(lowered);
                improved = true;
            }
        }
        while (!digits.empty() && digits.back() == 0) digits.pop_back();
    }
    return digits;
}

}  // namespace

ExploreResult explore(const ControlledRuntime& rt, const ExploreOptions& opts) {
    Ctx c{rt, opts, {}, {}, {}, false, false, {}, 0, false};
    dfs(c, rt.initial(), {});
    c.res.stats.distinct_checksums = c.checksums.size();
    if (!c.violating_path.empty() ||
        (!c.res.deplint_clean && c.res.stats.schedules > 0)) {
        const std::vector<std::size_t> minimal = minimize(
            rt, c.violating_path, c.res.reference_checksum, c.violation_is_mismatch);
        const ControlledRuntime::RunResult replay = rt.run(minimal);
        Counterexample ce;
        ce.choices = minimal;
        ce.checksum = replay.checksum;
        ce.expected = c.res.reference_checksum;
        ce.deplint_clean = replay.deplint_clean;
        ce.deplint_report = replay.deplint_report;
        ce.rendered = rt.render_schedule(minimal);
        c.res.counterexample = std::move(ce);
    }
    return c.res;
}

}  // namespace dfamr::verify::mc
