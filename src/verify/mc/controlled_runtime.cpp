#include "verify/mc/controlled_runtime.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "tasking/verify_hook.hpp"
#include "verify/deplint.hpp"

namespace dfamr::verify::mc {

namespace {

/// DepNode subclass carrying the task index, so edge capture can map the
/// registry's node ids back to graph positions.
struct GraphNode final : tasking::DepNode {
    int task = -1;
};

/// Captures every edge the registry wires, as task-index pairs.
struct EdgeCapture final : tasking::VerifyHook {
    std::vector<std::pair<int, int>>* out = nullptr;
    void on_edge_added(const tasking::DepNode& pred, const tasking::DepNode& succ) override {
        out->emplace_back(static_cast<const GraphNode&>(pred).task,
                          static_cast<const GraphNode&>(succ).task);
    }
};

bool regions_conflict(const McTask& a, const McTask& b) {
    for (const tasking::Dep& da : a.deps) {
        for (const tasking::Dep& db : b.deps) {
            if (da.kind == tasking::DepKind::In && db.kind == tasking::DepKind::In) continue;
            if (da.region.overlaps(db.region)) return true;
        }
    }
    return false;
}

constexpr int kInjectQueue = -1;  // pseudo queue id for the shared inject FIFO

/// The queues an action reads or writes: the executing worker's deque (it
/// receives the released successors), plus the queue the task is drawn from.
void touched_queues(const ControlledRuntime::State& s, const Action& a, int out[2]) {
    switch (a.kind) {
        case Action::Kind::PopLocal:
            out[0] = a.worker;
            out[1] = a.worker;
            return;
        case Action::Kind::Inject:
            out[0] = a.worker;
            out[1] = kInjectQueue;
            return;
        case Action::Kind::Steal:
            out[0] = a.worker;
            out[1] = a.victim;
            return;
        case Action::Kind::Event:
            // Release pushes successors into the deque of the worker that
            // ran the task's body.
            out[0] = s.ran_on[static_cast<std::size_t>(a.task)];
            out[1] = out[0];
            return;
    }
    out[0] = out[1] = kInjectQueue;
}

}  // namespace

ControlledRuntime::ControlledRuntime(const TaskGraph& graph, int dropped_edge)
    : graph_(graph), dropped_edge_(dropped_edge) {
    const std::size_t n = graph_.tasks.size();
    DFAMR_REQUIRE(graph_.workers >= 1, "mc: need at least one worker");
    DFAMR_REQUIRE(n > 0, "mc: empty task graph");

    // Wire the graph through the production registry, capturing every edge.
    EdgeCapture capture;
    capture.out = &edges_;
    tasking::DependencyRegistry registry;
    registry.set_verify_hook(&capture);
    std::vector<std::shared_ptr<GraphNode>> nodes(n);
    for (std::size_t t = 0; t < n; ++t) {
        nodes[t] = std::make_shared<GraphNode>();
        nodes[t]->node_id = t;
        nodes[t]->task = static_cast<int>(t);
        registry.register_accesses(nodes[t], graph_.tasks[t].deps);
    }
    registry.set_verify_hook(nullptr);
    DFAMR_REQUIRE(dropped_edge_ < static_cast<int>(edges_.size()),
                  "mc: dropped_edge out of range");

    succs_.assign(n, {});
    initial_pred_count_.assign(n, 0);
    for (std::size_t e = 0; e < edges_.size(); ++e) {
        if (static_cast<int>(e) == dropped_edge_) continue;
        const auto [pred, succ] = edges_[e];
        succs_[static_cast<std::size_t>(pred)].push_back(succ);
        ++initial_pred_count_[static_cast<std::size_t>(succ)];
    }

    conflict_.assign(n, std::vector<signed char>(n, 0));
    for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
            const bool c = regions_conflict(graph_.tasks[a], graph_.tasks[b]);
            conflict_[a][b] = conflict_[b][a] = c ? 1 : 0;
        }
    }
}

ControlledRuntime::State ControlledRuntime::initial() const {
    State s;
    const std::size_t n = graph_.tasks.size();
    s.deques.assign(static_cast<std::size_t>(graph_.workers), {});
    s.pred_count = initial_pred_count_;
    s.awaiting_event.assign(n, 0);
    s.ran_on.assign(n, -1);
    s.cells.assign(graph_.cells, 0);
    // Submission order: the main thread pushes each initially-ready task
    // onto the shared inject queue, exactly like Runtime::submit from a
    // non-worker thread.
    for (std::size_t t = 0; t < n; ++t) {
        if (s.pred_count[t] == 0) s.inject.push_back(static_cast<int>(t));
    }
    return s;
}

std::vector<Action> ControlledRuntime::enabled(const State& s) const {
    std::vector<Action> out;
    const int w_count = graph_.workers;
    for (int w = 0; w < w_count; ++w) {
        if (!s.deques[static_cast<std::size_t>(w)].empty()) {
            out.push_back(Action{Action::Kind::PopLocal, w, -1, -1});
        }
    }
    if (!s.inject.empty()) {
        for (int w = 0; w < w_count; ++w) {
            out.push_back(Action{Action::Kind::Inject, w, -1, -1});
        }
    }
    for (int w = 0; w < w_count; ++w) {
        if (!s.deques[static_cast<std::size_t>(w)].empty()) continue;  // own work first
        for (int v = 0; v < w_count; ++v) {
            if (v != w && !s.deques[static_cast<std::size_t>(v)].empty()) {
                out.push_back(Action{Action::Kind::Steal, w, v, -1});
            }
        }
    }
    for (std::size_t t = 0; t < s.awaiting_event.size(); ++t) {
        if (s.awaiting_event[t] != 0) {
            out.push_back(Action{Action::Kind::Event, -1, -1, static_cast<int>(t)});
        }
    }
    return out;
}

int ControlledRuntime::resolve_task(const State& s, const Action& a) const {
    switch (a.kind) {
        case Action::Kind::PopLocal:
            return s.deques[static_cast<std::size_t>(a.worker)].back();
        case Action::Kind::Inject:
            return s.inject.front();
        case Action::Kind::Steal:
            return s.deques[static_cast<std::size_t>(a.victim)].front();
        case Action::Kind::Event:
            return a.task;
    }
    return -1;
}

void ControlledRuntime::release(State& s, int task, int worker) const {
    for (int succ : succs_[static_cast<std::size_t>(task)]) {
        if (--s.pred_count[static_cast<std::size_t>(succ)] == 0) {
            // Released successors go to the releasing worker's deque (LIFO
            // end) — the locality policy of the real scheduler.
            s.deques[static_cast<std::size_t>(worker)].push_back(succ);
        }
    }
    ++s.released;
}

void ControlledRuntime::run_task(State& s, int task, int worker) const {
    const McTask& t = graph_.tasks[static_cast<std::size_t>(task)];
    if (t.body) t.body(s.cells);
    s.order.push_back(task);
    s.ran_on[static_cast<std::size_t>(task)] = worker;
    if (t.external_event) {
        s.awaiting_event[static_cast<std::size_t>(task)] = 1;  // release deferred
    } else {
        release(s, task, worker);
    }
}

void ControlledRuntime::apply(State& s, const Action& a) const {
    switch (a.kind) {
        case Action::Kind::PopLocal: {
            auto& dq = s.deques[static_cast<std::size_t>(a.worker)];
            const int task = dq.back();
            dq.pop_back();
            run_task(s, task, a.worker);
            return;
        }
        case Action::Kind::Inject: {
            const int task = s.inject.front();
            s.inject.erase(s.inject.begin());
            run_task(s, task, a.worker);
            return;
        }
        case Action::Kind::Steal: {
            auto& dq = s.deques[static_cast<std::size_t>(a.victim)];
            const int task = dq.front();
            dq.erase(dq.begin());
            run_task(s, task, a.worker);
            return;
        }
        case Action::Kind::Event: {
            s.awaiting_event[static_cast<std::size_t>(a.task)] = 0;
            release(s, a.task, s.ran_on[static_cast<std::size_t>(a.task)]);
            return;
        }
    }
}

std::uint64_t ControlledRuntime::checksum(const State& s) const {
    std::uint64_t h = 14695981039346656037ull;
    for (std::int64_t v : s.cells) {
        for (int byte = 0; byte < 8; ++byte) {
            h ^= static_cast<std::uint64_t>(v >> (byte * 8)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    return h;
}

bool ControlledRuntime::dependent(const State& s, const Action& a, const Action& b) const {
    int qa[2];
    int qb[2];
    touched_queues(s, a, qa);
    touched_queues(s, b, qb);
    for (int x : qa) {
        for (int y : qb) {
            if (x == y) return true;
        }
    }
    // Event actions run no body; only body-running pairs can conflict on
    // cells.
    if (a.kind == Action::Kind::Event || b.kind == Action::Kind::Event) return false;
    const int ta = resolve_task(s, a);
    const int tb = resolve_task(s, b);
    if (ta == tb) return true;
    return conflict_[static_cast<std::size_t>(ta)][static_cast<std::size_t>(tb)] != 0;
}

ControlledRuntime::RunResult ControlledRuntime::run(std::span<const std::size_t> choices) const {
    RunResult out;

    // DepLint feed: every task registered up front (submission order), with
    // fresh nodes so the lint sees the same graph the scheduler model uses;
    // edges minus any dropped one; releases in execution order.
    DepLint lint;
    lint.set_check_on_shutdown(false);
    const std::size_t n = graph_.tasks.size();
    std::vector<std::shared_ptr<GraphNode>> nodes(n);
    for (std::size_t t = 0; t < n; ++t) {
        nodes[t] = std::make_shared<GraphNode>();
        nodes[t]->node_id = t;
        nodes[t]->task = static_cast<int>(t);
        lint.on_node_registered(*nodes[t], graph_.tasks[t].label.c_str(), graph_.tasks[t].deps);
    }
    for (std::size_t e = 0; e < edges_.size(); ++e) {
        if (static_cast<int>(e) == dropped_edge_) continue;
        lint.on_edge_added(*nodes[static_cast<std::size_t>(edges_[e].first)],
                           *nodes[static_cast<std::size_t>(edges_[e].second)]);
    }

    State s = initial();
    std::size_t step = 0;
    while (!done(s)) {
        const std::vector<Action> acts = enabled(s);
        DFAMR_REQUIRE(!acts.empty(), "mc: schedule stuck before completion (graph cycle?)");
        std::size_t pick = step < choices.size() ? choices[step] : 0;
        if (pick >= acts.size()) pick = acts.size() - 1;
        const Action a = acts[pick];
        const std::size_t before = s.order.size();
        apply(s, a);
        // Feed releases to DepLint in completion order.
        if (a.kind == Action::Kind::Event) {
            lint.on_node_released(*nodes[static_cast<std::size_t>(a.task)]);
        } else if (s.order.size() > before) {
            const int task = s.order.back();
            if (!graph_.tasks[static_cast<std::size_t>(task)].external_event) {
                lint.on_node_released(*nodes[static_cast<std::size_t>(task)]);
            }
        }
        out.actions.push_back(a);
        out.choices.push_back(pick);
        ++step;
    }
    out.checksum = checksum(s);
    out.order = s.order;
    const Report lint_report = lint.check();
    out.deplint_clean = lint_report.clean();
    out.deplint_report = lint_report.to_string();
    return out;
}

std::string ControlledRuntime::describe(const State& s, const Action& a) const {
    const int task = resolve_task(s, a);
    const std::string& label = graph_.tasks[static_cast<std::size_t>(task)].label;
    std::ostringstream os;
    switch (a.kind) {
        case Action::Kind::PopLocal:
            os << "w" << a.worker << " pop " << label << "#" << task;
            break;
        case Action::Kind::Inject:
            os << "w" << a.worker << " inject " << label << "#" << task;
            break;
        case Action::Kind::Steal:
            os << "w" << a.worker << " steal<-w" << a.victim << " " << label << "#" << task;
            break;
        case Action::Kind::Event:
            os << "event " << label << "#" << task;
            break;
    }
    return os.str();
}

std::string ControlledRuntime::render_schedule(std::span<const std::size_t> choices) const {
    std::ostringstream os;
    State s = initial();
    std::size_t step = 0;
    while (!done(s)) {
        const std::vector<Action> acts = enabled(s);
        if (acts.empty()) break;
        std::size_t pick = step < choices.size() ? choices[step] : 0;
        if (pick >= acts.size()) pick = acts.size() - 1;
        os << "  step " << step << ": choice " << pick << "/" << acts.size() << "  "
           << describe(s, acts[pick]) << "\n";
        apply(s, acts[pick]);
        ++step;
    }
    return os.str();
}

}  // namespace dfamr::verify::mc
