// Wire-protocol state-machine verification for the eager/rendezvous
// transport of src/net (wire.hpp + endpoint.cpp).
//
// The protocol is encoded ONCE as explicit transition tables
// (sender_table / receiver_table / channel phase rules) and consumed by two
// clients:
//
//  * check_protocol(): an explicit-state model checker. Two peers run a
//    fixed workload of eager and rendezvous transfers over per-direction
//    FIFO channels; BFS enumerates every reachable interleaving of send,
//    deliver and fault actions under one FaultKind perturbation
//    (drop / delay / reorder / stall, mirroring resilience::FaultPlan), and
//    proves three properties over the full state space:
//      - safety: every frame event is legal per the transition tables,
//      - deadlock-freedom: every non-final state has an enabled action,
//      - leak-freedom + credit conservation: in every final state all
//        messages arrived exactly once and every rendezvous machine is
//        Done (each Rts got exactly one Cts, each Cts exactly one Data).
//    Stall is modelled with an explicit per-direction gate; with fully
//    asynchronous delivery a stalled phase is also subsumed by plain
//    interleaving, so this mostly documents that fact in the state space.
//
//  * WireChecker: a net::WireObserver that validates LIVE traffic frame by
//    frame against the same tables. mpisim attaches one per endpoint under
//    DFAMR_VERIFY; a safety violation aborts the world at shutdown, a
//    rendezvous leak is reported only when the world shut down cleanly
//    (a killed peer legitimately strands its in-flight transfers).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/lockdep.hpp"
#include "net/endpoint.hpp"
#include "net/wire.hpp"

namespace dfamr::verify::mc {

// ----- the protocol, as data ------------------------------------------------

/// Per-rendezvous sender progress: Rts out, Cts back, Data out.
enum class SenderState : std::uint8_t { Idle, RtsSent, DataOwed, Done };
/// Per-rendezvous receiver progress: Rts in, Cts out, Data in.
enum class ReceiverState : std::uint8_t { Idle, CtsOwed, DataExpected, Done };

enum class SenderEvent : std::uint8_t { SendRts, RecvCts, SendData };
enum class ReceiverEvent : std::uint8_t { RecvRts, SendCts, RecvData };

inline constexpr std::uint8_t kInvalidState = 0xff;

/// sender_table[state][event] -> next state, kInvalidState = protocol error.
/// Row order matches SenderState, column order SenderEvent.
constexpr std::uint8_t kSenderTable[4][3] = {
    //                SendRts  RecvCts  SendData
    /* Idle     */ {1, kInvalidState, kInvalidState},
    /* RtsSent  */ {kInvalidState, 2, kInvalidState},
    /* DataOwed */ {kInvalidState, kInvalidState, 3},
    /* Done     */ {kInvalidState, kInvalidState, kInvalidState},
};

constexpr std::uint8_t kReceiverTable[4][3] = {
    //                 RecvRts  SendCts  RecvData
    /* Idle         */ {1, kInvalidState, kInvalidState},
    /* CtsOwed      */ {kInvalidState, 2, kInvalidState},
    /* DataExpected */ {kInvalidState, kInvalidState, 3},
    /* Done         */ {kInvalidState, kInvalidState, kInvalidState},
};

const char* to_string(SenderState s);
const char* to_string(ReceiverState s);

// ----- model checker --------------------------------------------------------

/// The perturbation under which the protocol is model-checked; mirrors the
/// fault classes of resilience::FaultPlan (crash is covered by the live
/// checker's lost-peer path, not the model).
enum class FaultKind : std::uint8_t { None, Drop, Delay, Reorder, Stall };

const char* to_string(FaultKind k);
std::vector<FaultKind> all_fault_kinds();

struct ModelOptions {
    FaultKind fault = FaultKind::None;
    int eager_per_direction = 1;
    int rndz_per_direction = 2;  // two seqs exercise credit bookkeeping
    int max_extra_drops = 1;     // Drop: bounded pre-wire drops, like FaultPlan
    int max_delay_slots = 1;     // Delay: frames parked in flight at once
};

struct ModelResult {
    std::uint64_t states_explored = 0;
    std::uint64_t transitions = 0;
    std::uint64_t final_states = 0;
    bool deadlock_free = true;
    bool safe = true;        // no transition-table violation reachable
    bool leak_free = true;   // every final state delivered everything once
    bool credits_ok = true;  // every final state has all machines Done
    std::vector<std::string> violations;  // rendered witnesses

    bool clean() const { return deadlock_free && safe && leak_free && credits_ok; }
    std::string to_string() const;
};

/// Exhaustively explores the 2-peer protocol model under `opts`.
ModelResult check_protocol(const ModelOptions& opts);

// ----- live-traffic checker -------------------------------------------------

/// Validates every frame one endpoint sends or receives against the
/// transition tables. Thread-safe (writer thread, reader thread and
/// connect_mesh all report frames).
class WireChecker final : public net::WireObserver {
public:
    explicit WireChecker(int rank) : rank_(rank) {}

    void on_frame_sent(int dest, const net::FrameHeader& h) override;
    void on_frame_received(int src, const net::FrameHeader& h) override;

    /// Safety violations observed so far (frame events the tables reject).
    std::vector<std::string> violations() const;
    /// Rendezvous transfers stuck mid-protocol. Only meaningful after the
    /// endpoint shut down; expected to be empty iff no peer died.
    std::vector<std::string> pending() const;
    std::uint64_t frames_checked() const;

private:
    struct Direction {
        bool saw_frame = false;
        bool saw_hello = false;
        bool saw_bye = false;
    };

    void violation(std::string msg);

    const int rank_;
    mutable lockdep::Mutex mutex_{"verify.wire"};
    std::uint64_t frames_ = 0;
    std::map<int, Direction> out_dir_;  // by peer
    std::map<int, Direction> in_dir_;
    std::map<std::pair<int, std::uint32_t>, SenderState> sending_;    // (peer, seq)
    std::map<std::pair<int, std::uint32_t>, ReceiverState> receiving_;
    std::vector<std::string> violations_;
};

}  // namespace dfamr::verify::mc
