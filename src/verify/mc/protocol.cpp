#include "verify/mc/protocol.hpp"

#include <deque>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace dfamr::verify::mc {

const char* to_string(SenderState s) {
    switch (s) {
        case SenderState::Idle: return "Idle";
        case SenderState::RtsSent: return "RtsSent";
        case SenderState::DataOwed: return "DataOwed";
        case SenderState::Done: return "Done";
    }
    return "?";
}

const char* to_string(ReceiverState s) {
    switch (s) {
        case ReceiverState::Idle: return "Idle";
        case ReceiverState::CtsOwed: return "CtsOwed";
        case ReceiverState::DataExpected: return "DataExpected";
        case ReceiverState::Done: return "Done";
    }
    return "?";
}

const char* to_string(FaultKind k) {
    switch (k) {
        case FaultKind::None: return "none";
        case FaultKind::Drop: return "drop";
        case FaultKind::Delay: return "delay";
        case FaultKind::Reorder: return "reorder";
        case FaultKind::Stall: return "stall";
    }
    return "?";
}

std::vector<FaultKind> all_fault_kinds() {
    return {FaultKind::None, FaultKind::Drop, FaultKind::Delay, FaultKind::Reorder,
            FaultKind::Stall};
}

namespace {

/// A frame in flight. Only the protocol-relevant fields: kind and seq.
struct MFrame {
    std::uint8_t kind = 0;  // net::FrameKind value
    std::uint8_t seq = 0;   // rendezvous seq (1-based), 0 for eager
};

/// One direction of travel d: peer d is the sender, peer 1-d the receiver.
/// Cts frames for direction d's transfers travel on channel 1-d but are
/// bookkept here, with the transfer they grant.
struct MDir {
    std::uint8_t eager_left = 0;
    std::uint8_t rndz_left = 0;
    std::uint8_t drops_left = 0;
    std::uint8_t next_seq = 1;
    std::uint8_t delivered = 0;
    std::uint8_t stalled = 0;
    std::vector<MFrame> channel;  // FIFO; [0] is oldest
    std::vector<MFrame> delayed;  // parked by the Delay fault
    std::vector<std::uint8_t> sender;    // per seq, SenderState
    std::vector<std::uint8_t> receiver;  // per seq, ReceiverState
};

struct MState {
    MDir dir[2];

    std::string key() const {
        std::string k;
        for (const MDir& d : dir) {
            k += static_cast<char>(d.eager_left);
            k += static_cast<char>(d.rndz_left);
            k += static_cast<char>(d.drops_left);
            k += static_cast<char>(d.next_seq);
            k += static_cast<char>(d.delivered);
            k += static_cast<char>(d.stalled);
            k += static_cast<char>(d.channel.size());
            for (const MFrame& f : d.channel) {
                k += static_cast<char>(f.kind);
                k += static_cast<char>(f.seq);
            }
            k += static_cast<char>(d.delayed.size());
            for (const MFrame& f : d.delayed) {
                k += static_cast<char>(f.kind);
                k += static_cast<char>(f.seq);
            }
            for (std::uint8_t s : d.sender) k += static_cast<char>(s);
            for (std::uint8_t s : d.receiver) k += static_cast<char>(s);
            k += '|';
        }
        return k;
    }
};

struct Checker {
    const ModelOptions& opts;
    ModelResult& res;

    void fail(bool& flag, const std::string& msg) {
        if (res.violations.size() < 16) res.violations.push_back(msg);
        flag = false;
    }

    bool step_sender(MState& s, int d, std::uint8_t seq, SenderEvent ev) {
        std::uint8_t& st = s.dir[d].sender[seq - 1];
        const std::uint8_t next = kSenderTable[st][static_cast<int>(ev)];
        if (next == kInvalidState) {
            std::ostringstream os;
            os << "protocol safety: sender machine dir" << d << " seq " << int(seq)
               << " in state " << to_string(static_cast<SenderState>(st))
               << " rejects event " << static_cast<int>(ev);
            fail(res.safe, os.str());
            return false;
        }
        st = next;
        return true;
    }

    bool step_receiver(MState& s, int d, std::uint8_t seq, ReceiverEvent ev) {
        std::uint8_t& st = s.dir[d].receiver[seq - 1];
        const std::uint8_t next = kReceiverTable[st][static_cast<int>(ev)];
        if (next == kInvalidState) {
            std::ostringstream os;
            os << "protocol safety: receiver machine dir" << d << " seq " << int(seq)
               << " in state " << to_string(static_cast<ReceiverState>(st))
               << " rejects event " << static_cast<int>(ev);
            fail(res.safe, os.str());
            return false;
        }
        st = next;
        return true;
    }

    /// Processes one frame arriving at the receiving end of channel `c` —
    /// the model twin of Endpoint::handle_frame, including the synchronous
    /// Cts / Data enqueues. Returns false on a safety violation (the state
    /// is then not expanded further).
    bool process(MState& s, int c, const MFrame& f) {
        switch (static_cast<net::FrameKind>(f.kind)) {
            case net::FrameKind::Eager:
                ++s.dir[c].delivered;
                return true;
            case net::FrameKind::Rts: {
                // handle_frame reserves the slot and enqueues the Cts grant
                // synchronously, so both receiver-machine steps happen here.
                if (!step_receiver(s, c, f.seq, ReceiverEvent::RecvRts)) return false;
                if (!step_receiver(s, c, f.seq, ReceiverEvent::SendCts)) return false;
                s.dir[1 - c].channel.push_back(
                    MFrame{static_cast<std::uint8_t>(net::FrameKind::Cts), f.seq});
                return true;
            }
            case net::FrameKind::Cts: {
                // A Cts on channel c grants a transfer of direction 1-c; the
                // endpoint enqueues the Data frame synchronously.
                const int t = 1 - c;
                if (!step_sender(s, t, f.seq, SenderEvent::RecvCts)) return false;
                if (!step_sender(s, t, f.seq, SenderEvent::SendData)) return false;
                s.dir[t].channel.push_back(
                    MFrame{static_cast<std::uint8_t>(net::FrameKind::Data), f.seq});
                return true;
            }
            case net::FrameKind::Data: {
                if (!step_receiver(s, c, f.seq, ReceiverEvent::RecvData)) return false;
                ++s.dir[c].delivered;
                return true;
            }
            default: {
                std::ostringstream os;
                os << "protocol safety: unexpected frame kind " << int(f.kind)
                   << " on channel " << c;
                fail(res.safe, os.str());
                return false;
            }
        }
    }

    bool is_final(const MState& s) const {
        for (const MDir& d : s.dir) {
            if (d.eager_left != 0 || d.rndz_left != 0) return false;
            if (!d.channel.empty() || !d.delayed.empty()) return false;
        }
        return true;
    }

    void check_final(const MState& s) {
        ++res.final_states;
        const int expected = opts.eager_per_direction + opts.rndz_per_direction;
        for (int d = 0; d < 2; ++d) {
            if (s.dir[d].delivered != expected) {
                std::ostringstream os;
                os << "message leak: direction " << d << " delivered "
                   << int(s.dir[d].delivered) << " of " << expected;
                fail(res.leak_free, os.str());
            }
            for (std::size_t i = 0; i < s.dir[d].sender.size(); ++i) {
                if (s.dir[d].sender[i] != static_cast<std::uint8_t>(SenderState::Done) ||
                    s.dir[d].receiver[i] != static_cast<std::uint8_t>(ReceiverState::Done)) {
                    std::ostringstream os;
                    os << "credit violation: dir " << d << " seq " << (i + 1)
                       << " ended sender=" << to_string(static_cast<SenderState>(s.dir[d].sender[i]))
                       << " receiver="
                       << to_string(static_cast<ReceiverState>(s.dir[d].receiver[i]));
                    fail(res.credits_ok, os.str());
                }
            }
        }
    }

    /// All successor states of `s`. An empty result for a non-final state
    /// is a deadlock.
    std::vector<MState> successors(const MState& s) {
        std::vector<MState> out;
        for (int d = 0; d < 2; ++d) {
            const MDir& dir = s.dir[d];
            // App-layer sends.
            if (dir.eager_left > 0) {
                MState n = s;
                --n.dir[d].eager_left;
                n.dir[d].channel.push_back(
                    MFrame{static_cast<std::uint8_t>(net::FrameKind::Eager), 0});
                out.push_back(std::move(n));
                if (opts.fault == FaultKind::Drop && dir.drops_left > 0) {
                    // FaultPlan drops the message before it reaches the
                    // wire; the sender retries, so eager_left stays.
                    MState dn = s;
                    --dn.dir[d].drops_left;
                    out.push_back(std::move(dn));
                }
            }
            if (dir.rndz_left > 0) {
                MState n = s;
                MDir& nd = n.dir[d];
                --nd.rndz_left;
                const std::uint8_t seq = nd.next_seq++;
                if (step_sender(n, d, seq, SenderEvent::SendRts)) {
                    nd.channel.push_back(
                        MFrame{static_cast<std::uint8_t>(net::FrameKind::Rts), seq});
                    out.push_back(std::move(n));
                }
                if (opts.fault == FaultKind::Drop && dir.drops_left > 0) {
                    MState dn = s;
                    --dn.dir[d].drops_left;
                    out.push_back(std::move(dn));
                }
            }
            // Deliveries. TCP is FIFO per connection: only the channel head
            // is deliverable — except under Reorder, which models the
            // cross-stream reordering FaultPlan's delay scheduler allows.
            if (!dir.channel.empty() && dir.stalled == 0) {
                const std::size_t limit =
                    opts.fault == FaultKind::Reorder ? dir.channel.size() : 1;
                for (std::size_t i = 0; i < limit; ++i) {
                    MState n = s;
                    const MFrame f = n.dir[d].channel[i];
                    n.dir[d].channel.erase(n.dir[d].channel.begin() +
                                           static_cast<std::ptrdiff_t>(i));
                    if (process(n, d, f)) out.push_back(std::move(n));
                }
            }
            // Delay: park the head, let later frames overtake it.
            if (opts.fault == FaultKind::Delay && !dir.channel.empty() &&
                static_cast<int>(dir.delayed.size()) < opts.max_delay_slots) {
                MState n = s;
                n.dir[d].delayed.push_back(n.dir[d].channel.front());
                n.dir[d].channel.erase(n.dir[d].channel.begin());
                out.push_back(std::move(n));
            }
            if (!dir.delayed.empty() && dir.stalled == 0) {
                for (std::size_t i = 0; i < dir.delayed.size(); ++i) {
                    MState n = s;
                    const MFrame f = n.dir[d].delayed[i];
                    n.dir[d].delayed.erase(n.dir[d].delayed.begin() +
                                           static_cast<std::ptrdiff_t>(i));
                    if (process(n, d, f)) out.push_back(std::move(n));
                }
            }
            // Stall: an explicit delivery gate per direction. (With fully
            // asynchronous delivery a stalled phase is also subsumed by
            // interleaving; the gate makes those phases explicit states.)
            if (opts.fault == FaultKind::Stall) {
                MState n = s;
                n.dir[d].stalled = dir.stalled == 0 ? 1 : 0;
                out.push_back(std::move(n));
            }
        }
        return out;
    }
};

}  // namespace

ModelResult check_protocol(const ModelOptions& opts) {
    DFAMR_REQUIRE(opts.rndz_per_direction <= 200, "mc: rndz workload too large for seq encoding");
    ModelResult res;
    Checker chk{opts, res};

    MState init;
    for (int d = 0; d < 2; ++d) {
        init.dir[d].eager_left = static_cast<std::uint8_t>(opts.eager_per_direction);
        init.dir[d].rndz_left = static_cast<std::uint8_t>(opts.rndz_per_direction);
        init.dir[d].drops_left =
            opts.fault == FaultKind::Drop ? static_cast<std::uint8_t>(opts.max_extra_drops) : 0;
        init.dir[d].sender.assign(static_cast<std::size_t>(opts.rndz_per_direction),
                                  static_cast<std::uint8_t>(SenderState::Idle));
        init.dir[d].receiver.assign(static_cast<std::size_t>(opts.rndz_per_direction),
                                    static_cast<std::uint8_t>(ReceiverState::Idle));
    }

    std::set<std::string> visited;
    std::deque<MState> frontier;
    visited.insert(init.key());
    frontier.push_back(std::move(init));
    while (!frontier.empty()) {
        MState s = std::move(frontier.front());
        frontier.pop_front();
        ++res.states_explored;
        if (chk.is_final(s)) {
            chk.check_final(s);
            // Stall-gate toggles can still move; no need to expand further
            // from a final state.
            continue;
        }
        std::vector<MState> next = chk.successors(s);
        if (next.empty()) {
            std::ostringstream os;
            os << "deadlock: no enabled action (ch0=" << s.dir[0].channel.size()
               << " ch1=" << s.dir[1].channel.size() << " eager=" << int(s.dir[0].eager_left)
               << "/" << int(s.dir[1].eager_left) << ")";
            chk.fail(res.deadlock_free, os.str());
            continue;
        }
        for (MState& n : next) {
            ++res.transitions;
            std::string key = n.key();
            if (visited.insert(std::move(key)).second) frontier.push_back(std::move(n));
        }
    }
    return res;
}

std::string ModelResult::to_string() const {
    std::ostringstream os;
    os << states_explored << " states, " << transitions << " transitions, " << final_states
       << " final; safety=" << (safe ? "ok" : "VIOLATED")
       << " deadlock-free=" << (deadlock_free ? "ok" : "VIOLATED")
       << " leak-free=" << (leak_free ? "ok" : "VIOLATED")
       << " credits=" << (credits_ok ? "ok" : "VIOLATED");
    for (const std::string& v : violations) os << "\n  [witness] " << v;
    return os.str();
}

// ----- WireChecker ----------------------------------------------------------

void WireChecker::violation(std::string msg) {
    if (violations_.size() < 64) violations_.push_back(std::move(msg));
}

void WireChecker::on_frame_sent(int dest, const net::FrameHeader& h) {
    std::lock_guard lock(mutex_);
    ++frames_;
    Direction& dir = out_dir_[dest];
    std::ostringstream pre;
    pre << "rank " << rank_ << " -> " << dest << ": ";
    if (dir.saw_bye) violation(pre.str() + "frame after Bye");
    switch (h.kind) {
        case net::FrameKind::Hello:
            if (dir.saw_frame) violation(pre.str() + "Hello not first in direction");
            dir.saw_hello = true;
            break;
        case net::FrameKind::Bye:
            dir.saw_bye = true;
            break;
        case net::FrameKind::Eager:
            break;
        case net::FrameKind::Coalesced:
            // A batch of eager sub-messages: protocol-neutral like Eager (the
            // sub-message table is validated structurally by the transport).
            break;
        case net::FrameKind::Rts: {
            SenderState& st = sending_.try_emplace({dest, h.seq}, SenderState::Idle)
                                  .first->second;
            const std::uint8_t next =
                kSenderTable[static_cast<int>(st)][static_cast<int>(SenderEvent::SendRts)];
            if (next == kInvalidState) {
                violation(pre.str() + "Rts seq " + std::to_string(h.seq) + " in state " +
                          to_string(st));
            } else {
                st = static_cast<SenderState>(next);
            }
            break;
        }
        case net::FrameKind::Data: {
            auto it = sending_.find({dest, h.seq});
            if (it == sending_.end()) {
                violation(pre.str() + "Data seq " + std::to_string(h.seq) + " without Rts");
                break;
            }
            const std::uint8_t next = kSenderTable[static_cast<int>(it->second)]
                                                  [static_cast<int>(SenderEvent::SendData)];
            if (next == kInvalidState) {
                violation(pre.str() + "Data seq " + std::to_string(h.seq) + " in state " +
                          to_string(it->second));
            } else {
                it->second = static_cast<SenderState>(next);
            }
            break;
        }
        case net::FrameKind::Cts: {
            auto it = receiving_.find({dest, h.seq});
            if (it == receiving_.end()) {
                violation(pre.str() + "Cts seq " + std::to_string(h.seq) + " without Rts");
                break;
            }
            const std::uint8_t next = kReceiverTable[static_cast<int>(it->second)]
                                                    [static_cast<int>(ReceiverEvent::SendCts)];
            if (next == kInvalidState) {
                violation(pre.str() + "Cts seq " + std::to_string(h.seq) + " in state " +
                          to_string(it->second));
            } else {
                it->second = static_cast<ReceiverState>(next);
            }
            break;
        }
    }
    dir.saw_frame = true;
}

void WireChecker::on_frame_received(int src, const net::FrameHeader& h) {
    std::lock_guard lock(mutex_);
    ++frames_;
    Direction& dir = in_dir_[src];
    std::ostringstream pre;
    pre << "rank " << rank_ << " <- " << src << ": ";
    if (dir.saw_bye) violation(pre.str() + "frame after Bye");
    switch (h.kind) {
        case net::FrameKind::Hello:
            if (dir.saw_frame) violation(pre.str() + "Hello not first in direction");
            dir.saw_hello = true;
            break;
        case net::FrameKind::Bye:
            dir.saw_bye = true;
            break;
        case net::FrameKind::Eager:
            break;
        case net::FrameKind::Coalesced:
            break;
        case net::FrameKind::Rts: {
            ReceiverState& st = receiving_.try_emplace({src, h.seq}, ReceiverState::Idle)
                                    .first->second;
            const std::uint8_t next =
                kReceiverTable[static_cast<int>(st)][static_cast<int>(ReceiverEvent::RecvRts)];
            if (next == kInvalidState) {
                violation(pre.str() + "Rts seq " + std::to_string(h.seq) + " in state " +
                          to_string(st));
            } else {
                st = static_cast<ReceiverState>(next);
            }
            break;
        }
        case net::FrameKind::Cts: {
            auto it = sending_.find({src, h.seq});
            if (it == sending_.end()) {
                violation(pre.str() + "Cts seq " + std::to_string(h.seq) + " for unknown Rts");
                break;
            }
            const std::uint8_t next = kSenderTable[static_cast<int>(it->second)]
                                                  [static_cast<int>(SenderEvent::RecvCts)];
            if (next == kInvalidState) {
                violation(pre.str() + "Cts seq " + std::to_string(h.seq) + " in state " +
                          to_string(it->second));
            } else {
                it->second = static_cast<SenderState>(next);
            }
            break;
        }
        case net::FrameKind::Data: {
            auto it = receiving_.find({src, h.seq});
            if (it == receiving_.end()) {
                violation(pre.str() + "Data seq " + std::to_string(h.seq) + " without Rts");
                break;
            }
            const std::uint8_t next = kReceiverTable[static_cast<int>(it->second)]
                                                    [static_cast<int>(ReceiverEvent::RecvData)];
            if (next == kInvalidState) {
                violation(pre.str() + "Data seq " + std::to_string(h.seq) + " in state " +
                          to_string(it->second));
            } else {
                it->second = static_cast<ReceiverState>(next);
            }
            break;
        }
    }
    dir.saw_frame = true;
}

std::vector<std::string> WireChecker::violations() const {
    std::lock_guard lock(mutex_);
    return violations_;
}

std::vector<std::string> WireChecker::pending() const {
    std::lock_guard lock(mutex_);
    std::vector<std::string> out;
    for (const auto& [key, st] : sending_) {
        if (st != SenderState::Done) {
            out.push_back("rank " + std::to_string(rank_) + " -> " + std::to_string(key.first) +
                          " seq " + std::to_string(key.second) + " stuck at " + to_string(st));
        }
    }
    for (const auto& [key, st] : receiving_) {
        if (st != ReceiverState::Done) {
            out.push_back("rank " + std::to_string(rank_) + " <- " + std::to_string(key.first) +
                          " seq " + std::to_string(key.second) + " stuck at " + to_string(st));
        }
    }
    return out;
}

std::uint64_t WireChecker::frames_checked() const {
    std::lock_guard lock(mutex_);
    return frames_;
}

}  // namespace dfamr::verify::mc
