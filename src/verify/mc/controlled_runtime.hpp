// ControlledRuntime — the schedule-space model of the work-stealing tasking
// layer that the DPOR explorer (explorer.hpp) drives.
//
// The real tasking::Runtime makes its nondeterministic decisions in four
// places: a worker pops its own deque, takes from the shared inject queue,
// steals the oldest entry of a victim's deque, or an external completion
// event (the TAMPI polling service) releases a task's dependencies. The
// ControlledRuntime reifies exactly those decision points as explicit
// Actions and serializes them behind a replayable choice oracle: a schedule
// is a digit string, digit k selecting one action from the deterministic
// enabled-action list of step k. Same digits, same execution — bitwise.
//
// The dependency structure is NOT re-modelled: the constructor runs every
// declared access list through a real (single-threaded) DependencyRegistry
// and captures the wired edges through the production VerifyHook interface.
// What the explorer checks is therefore the actual edge-wiring logic of
// dependency.cpp, composed with a faithful abstraction of the scheduler.
//
// Seeded mutation: drop_edge(k) deletes the k-th captured happens-before
// edge from the scheduling adjacency AND from the DepLint feed — modelling
// a registry bug that loses one edge. The explorer must then find both the
// dynamic symptom (a schedule whose checksum diverges) and the static one
// (DepLint reports an unordered conflict).
//
// Task bodies are plain functions over a shared cell vector and must touch
// only the cells their declared regions cover (graphs.cpp honors this);
// bodies are deliberately non-commutative (affine updates), so any illegal
// reorder the scheduler model can express changes the final checksum.
//
// Granularity: dequeue + body run as ONE atomic action. For clean graphs
// this loses nothing — the dependency invariant guarantees conflicting
// tasks are never simultaneously ready, so their order is fixed by edges,
// not by how body execution interleaves. For mutated graphs it means a
// dropped edge whose two tasks end up adjacent in the same FIFO is
// serialized by the queue and caught only statically (by the DepLint
// feed); mutations expressible as scheduler choices are caught dynamically
// with a minimal counterexample schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "tasking/dependency.hpp"

namespace dfamr::verify::mc {

/// Shared mutable state the task bodies operate on.
using Cells = std::vector<std::int64_t>;

struct McTask {
    std::string label;
    /// Declared accesses, over Region::synthetic(cell_index, 1) regions. The
    /// body must touch only cells covered by these regions.
    std::vector<tasking::Dep> deps;
    std::function<void(Cells&)> body;
    /// True for tasks that model TAMPI-style communication: the body runs
    /// when scheduled (posting the operation), but dependency release waits
    /// for a separate Event action (the poll service observing completion).
    bool external_event = false;
};

struct TaskGraph {
    std::string name;
    int workers = 2;
    std::size_t cells = 8;
    std::vector<McTask> tasks;
};

/// One scheduler decision. PopLocal/Inject/Steal run the task they resolve
/// to in the current state; Event releases the dependencies of a task that
/// already ran its body and was waiting for external completion.
struct Action {
    enum class Kind : std::uint8_t { PopLocal, Inject, Steal, Event };

    Kind kind = Kind::PopLocal;
    int worker = -1;  ///< executing worker (PopLocal / Inject / Steal)
    int victim = -1;  ///< Steal: whose deque loses its oldest entry
    int task = -1;    ///< Event: which task's completion fires

    bool operator==(const Action&) const = default;
};

class ControlledRuntime {
public:
    /// Builds the dependency graph of `graph` through a real
    /// DependencyRegistry. `dropped_edge` >= 0 deletes that edge (by index
    /// into edges()) from the adjacency — the seeded-mutation mode.
    explicit ControlledRuntime(const TaskGraph& graph, int dropped_edge = -1);

    const TaskGraph& graph() const { return graph_; }
    /// The happens-before edges the registry wired, as (pred, succ) task
    /// indices, in wiring order. Mutation indexes into this list (the
    /// pre-drop list: edges() always reports what the registry produced).
    const std::vector<std::pair<int, int>>& edges() const { return edges_; }
    int dropped_edge() const { return dropped_edge_; }

    // ----- explicit state-space interface (used by the DPOR explorer) -----

    struct State {
        std::vector<std::vector<int>> deques;  // per worker; back = LIFO end
        std::vector<int> inject;               // shared FIFO; front = oldest
        std::vector<int> pred_count;           // per task
        std::vector<signed char> awaiting_event;  // body ran, release pending
        std::vector<int> ran_on;               // worker that ran each task, -1
        Cells cells;
        std::vector<int> order;                // task execution order
        int released = 0;                      // fully completed tasks
    };

    State initial() const;
    /// Deterministic enabled-action list: PopLocal by worker, Inject by
    /// worker, Steal by (thief, victim) — thieves only steal when their own
    /// deque is empty, like the real scheduler — then Event by task index.
    std::vector<Action> enabled(const State& s) const;
    void apply(State& s, const Action& a) const;
    bool done(const State& s) const { return s.released == static_cast<int>(graph_.tasks.size()); }
    /// FNV-1a over the cell vector.
    std::uint64_t checksum(const State& s) const;

    /// Conservative dependence relation for sleep-set pruning: two enabled
    /// actions are dependent when they touch a common queue (same executing
    /// worker, same steal victim, or both draw from the inject queue) or
    /// when the tasks they would run declare conflicting regions. Anything
    /// else commutes: disjoint queues and conflict-free bodies.
    bool dependent(const State& s, const Action& a, const Action& b) const;

    // ----- replay interface (used by the CLI and the minimizer) -----

    struct RunResult {
        std::uint64_t checksum = 0;
        std::vector<int> order;         // task execution order
        std::vector<Action> actions;    // the resolved schedule
        std::vector<std::size_t> choices;  // effective digits (defaults applied)
        bool deplint_clean = true;
        std::string deplint_report;
    };

    /// Replays a digit string: digit k picks enabled()[digit] at step k
    /// (clamped to the list; missing digits default to 0). Also feeds the
    /// schedule through DepLint — registrations up front in submission
    /// order, releases in execution order, minus any dropped edge — and
    /// records its verdict.
    RunResult run(std::span<const std::size_t> choices) const;

    /// Human-readable rendering of an action ("steal w1<-w0: stencil#3").
    std::string describe(const State& s, const Action& a) const;
    /// Renders a full schedule by replaying `choices`.
    std::string render_schedule(std::span<const std::size_t> choices) const;

private:
    void release(State& s, int task, int worker) const;
    void run_task(State& s, int task, int worker) const;
    int resolve_task(const State& s, const Action& a) const;

    TaskGraph graph_;
    std::vector<std::pair<int, int>> edges_;  // as wired by the registry
    int dropped_edge_ = -1;
    std::vector<std::vector<int>> succs_;     // adjacency minus dropped edge
    std::vector<int> initial_pred_count_;
    /// conflict_[a][b]: declared regions of tasks a and b overlap with at
    /// least one writer (the DepLint conflict predicate).
    std::vector<std::vector<signed char>> conflict_;
};

}  // namespace dfamr::verify::mc
