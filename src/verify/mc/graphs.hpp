// Fixed task graphs for the schedule-space explorer: the classical shapes
// (diamond, chain, fan-out/fan-in, reader pool) plus a miniature AMR
// timestep with TAMPI-style external-event communication tasks — the same
// stencil/pack/send/recv/unpack/checksum structure core/tampi_oss.cpp
// builds per block, shrunk to a size whose schedule space is exhaustively
// explorable.
//
// Every body is a non-commutative affine update (x = a*x + b with distinct
// constants per task) touching only the cells its declared regions cover,
// so any dependency-violating reorder the scheduler model can express
// changes the final checksum — schedule bugs cannot hide.
#pragma once

#include <vector>

#include "verify/mc/controlled_runtime.hpp"

namespace dfamr::verify::mc {

/// A out(0); B,C read 0, write 1/2; D joins 1,2 into 3. Two workers.
TaskGraph diamond();

/// `length` tasks chained by inout on one cell. Two workers.
TaskGraph chain(int length = 5);

/// A out(0); `width` independent readers write their own cell; join reads
/// them all. Two workers (three when width >= 4).
TaskGraph fan(int width = 3);

/// writer -> three parallel readers -> writer (WAR edges) -> final reader.
TaskGraph reader_pool();

/// One AMR timestep over two blocks: stencil_b -> pack_b -> send_b (event),
/// recv_b (event) -> unpack_b -> checksum. Send/recv model TAMPI tasks:
/// bodies run when scheduled, dependencies release on their poll event.
TaskGraph amr_timestep();

/// The full catalog, in a stable order (used by dfamr_mc and the CI smoke).
std::vector<TaskGraph> all_graphs();

}  // namespace dfamr::verify::mc
