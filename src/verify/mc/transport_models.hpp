// Model checkers for the two transport fast paths (src/net):
//
//  * check_coalesced_protocol(): the per-neighbor coalescing layer. Two
//    peers exchange eager messages (each carrying a send-order id) plus a
//    rendezvous workload over per-direction FIFO channels. On top of the
//    send / deliver / fault actions of check_protocol, a COALESCE action
//    merges two adjacent eager-like frames of a channel into one Coalesced
//    frame, exactly like the writer thread batching consecutive same-dest
//    Eager frames (a non-eager frame in between blocks the merge because
//    the pair must be adjacent). Proved over the full state space, under
//    every FaultKind:
//      - non-overtaking within a coalesced frame: sub-message ids inside
//        any delivered frame are strictly increasing (send order);
//      - FIFO preservation: under faults that keep the channel in order
//        (None / Drop / Stall) the whole per-direction eager id sequence
//        arrives strictly increasing — coalescing never reorders;
//      - leak-freedom: every final state delivered every eager id exactly
//        once and every rendezvous payload exactly once;
//      - credit conservation: rendezvous machines all reach Done, i.e.
//        coalescing never swallows or duplicates an Rts/Cts/Data;
//      - deadlock-freedom.
//
//  * check_shm_ring(): the shared-memory SPSC byte ring. One producer
//    streams a fixed frame workload (including a frame LARGER than the
//    ring) through a byte ring of small capacity; the consumer drains it
//    frame by frame. Write and read actions move either 1 byte or the
//    maximal legal amount, so every partial-progress interleaving is
//    reachable. Proved under every FaultKind:
//      - bounded fill: 0 <= fill <= capacity in every reachable state
//        (the producer never overwrites unread bytes);
//      - complete in-order delivery: every final state delivered all
//        frames, byte-exact and in send order (a byte stream cannot
//        reorder — Reorder adds no actions and the run documents that);
//      - deadlock-freedom: in particular the larger-than-ring frame
//        streams through instead of wedging producer and consumer.
//    Drop models FaultPlan's pre-wire message drop with sender retry;
//    Delay (a paused thread) is subsumed by plain interleaving; Stall
//    gates the consumer like the TCP model's delivery gate.
#pragma once

#include <vector>

#include "verify/mc/protocol.hpp"

namespace dfamr::verify::mc {

struct CoalescedModelOptions {
    FaultKind fault = FaultKind::None;
    int eager_per_direction = 3;  // >= 2 so real merges happen
    int rndz_per_direction = 1;   // proves merges skip control frames
    int batch_cap = 4;            // max sub-messages per coalesced frame
    int max_extra_drops = 1;
    int max_delay_slots = 1;
};

/// Exhaustively explores the 2-peer coalescing model under `opts`.
ModelResult check_coalesced_protocol(const CoalescedModelOptions& opts);

struct ShmRingOptions {
    FaultKind fault = FaultKind::None;
    int capacity = 3;
    /// Frame payload sizes in ring bytes, in send order. The default
    /// includes a frame larger than the ring: it must stream through.
    std::vector<int> frame_sizes{2, 4, 1};
    int max_extra_drops = 1;
};

/// Exhaustively explores the producer/consumer ring model under `opts`.
ModelResult check_shm_ring(const ShmRingOptions& opts);

}  // namespace dfamr::verify::mc
