#include "verify/mc/graphs.hpp"

#include "common/error.hpp"

namespace dfamr::verify::mc {

namespace {

using tasking::in_id;
using tasking::inout_id;
using tasking::out_id;

/// c[cell] = 3*c[cell] + add — the basic non-commutative update.
std::function<void(Cells&)> bump(std::size_t cell, std::int64_t add) {
    return [cell, add](Cells& c) { c[cell] = 3 * c[cell] + add; };
}

/// c[dst] = 3*c[dst] + mul*c[src] + add.
std::function<void(Cells&)> mix(std::size_t dst, std::size_t src, std::int64_t mul,
                                std::int64_t add) {
    return [dst, src, mul, add](Cells& c) { c[dst] = 3 * c[dst] + mul * c[src] + add; };
}

}  // namespace

TaskGraph diamond() {
    TaskGraph g;
    g.name = "diamond";
    g.workers = 2;
    g.cells = 4;
    g.tasks.push_back({"A", {out_id(0)}, bump(0, 1), false});
    g.tasks.push_back({"B", {in_id(0), out_id(1)}, mix(1, 0, 7, 2), false});
    g.tasks.push_back({"C", {in_id(0), out_id(2)}, mix(2, 0, 11, 3), false});
    g.tasks.push_back({"D",
                       {in_id(1), in_id(2), out_id(3)},
                       [](Cells& c) { c[3] = 3 * c[3] + 13 * c[1] + 17 * c[2] + 4; },
                       false});
    return g;
}

TaskGraph chain(int length) {
    DFAMR_REQUIRE(length >= 2, "mc: chain needs >= 2 tasks");
    TaskGraph g;
    g.name = "chain";
    g.workers = 2;
    g.cells = 1;
    for (int i = 0; i < length; ++i) {
        g.tasks.push_back({"link" + std::to_string(i), {inout_id(0)}, bump(0, i + 1), false});
    }
    return g;
}

TaskGraph fan(int width) {
    DFAMR_REQUIRE(width >= 2, "mc: fan needs >= 2 readers");
    TaskGraph g;
    g.name = "fan";
    g.workers = width >= 4 ? 3 : 2;
    g.cells = static_cast<std::size_t>(width) + 2;
    g.tasks.push_back({"src", {out_id(0)}, bump(0, 1), false});
    for (int i = 0; i < width; ++i) {
        const std::size_t dst = static_cast<std::size_t>(i) + 1;
        g.tasks.push_back({"reader" + std::to_string(i),
                           {in_id(0), out_id(dst)},
                           mix(dst, 0, i + 2, i),
                           false});
    }
    const std::size_t join_cell = static_cast<std::size_t>(width) + 1;
    McTask join;
    join.label = "join";
    for (int i = 0; i < width; ++i) join.deps.push_back(in_id(static_cast<std::uint64_t>(i) + 1));
    join.deps.push_back(out_id(join_cell));
    join.body = [join_cell, width](Cells& c) {
        std::int64_t acc = 0;
        for (int i = 0; i < width; ++i) acc = 3 * acc + c[static_cast<std::size_t>(i) + 1];
        c[join_cell] = 3 * c[join_cell] + acc + 5;
    };
    g.tasks.push_back(std::move(join));
    return g;
}

TaskGraph reader_pool() {
    TaskGraph g;
    g.name = "reader_pool";
    g.workers = 2;
    g.cells = 5;
    g.tasks.push_back({"w1", {out_id(0)}, bump(0, 1), false});
    for (int i = 0; i < 3; ++i) {
        const std::size_t dst = static_cast<std::size_t>(i) + 1;
        g.tasks.push_back(
            {"r" + std::to_string(i), {in_id(0), out_id(dst)}, mix(dst, 0, i + 3, i), false});
    }
    // WAR edges: w2 must wait for every reader of the first write.
    g.tasks.push_back({"w2", {inout_id(0)}, bump(0, 9), false});
    g.tasks.push_back({"final", {in_id(0), out_id(4)}, mix(4, 0, 7, 5), false});
    return g;
}

TaskGraph amr_timestep() {
    // Cell layout: block interiors 0..1, ghost cells 2..3, send buffers
    // 4..5, checksum accumulator 6.
    TaskGraph g;
    g.name = "amr_timestep";
    g.workers = 2;
    g.cells = 7;
    for (std::uint64_t b = 0; b < 2; ++b) {
        const auto interior = b;
        const auto ghost = 2 + b;
        const auto buf = 4 + b;
        const std::string sfx = std::to_string(b);
        g.tasks.push_back({"stencil" + sfx,
                           {inout_id(interior)},
                           bump(interior, static_cast<std::int64_t>(b) + 1),
                           false});
        g.tasks.push_back({"pack" + sfx,
                           {in_id(interior), out_id(buf)},
                           mix(buf, interior, 5, static_cast<std::int64_t>(b)),
                           false});
        // TAMPI-style tasks: the body posts the operation; the dependency
        // release waits for the poll service's completion Event.
        g.tasks.push_back({"send" + sfx, {in_id(buf)}, nullptr, true});
        g.tasks.push_back({"recv" + sfx,
                           {out_id(ghost)},
                           bump(ghost, 11 + static_cast<std::int64_t>(b)),
                           true});
        g.tasks.push_back({"unpack" + sfx,
                           {in_id(ghost), inout_id(interior)},
                           mix(interior, ghost, 13, static_cast<std::int64_t>(b)),
                           false});
    }
    g.tasks.push_back({"checksum",
                       {in_id(0), in_id(1), inout_id(6)},
                       [](Cells& c) { c[6] = 3 * c[6] + 17 * c[0] + 19 * c[1]; },
                       false});
    return g;
}

std::vector<TaskGraph> all_graphs() {
    return {diamond(), chain(), fan(), reader_pool(), amr_timestep()};
}

}  // namespace dfamr::verify::mc
