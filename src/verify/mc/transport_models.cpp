#include "verify/mc/transport_models.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace dfamr::verify::mc {

// ----- coalesced-frame model ------------------------------------------------

namespace {

/// A frame in flight. Eager-like frames carry the send-order ids of their
/// sub-messages (one id for a plain Eager, several for a Coalesced frame);
/// rendezvous control frames carry their seq like in check_protocol.
struct CFrame {
    std::uint8_t kind = 0;  // net::FrameKind value
    std::uint8_t seq = 0;   // rendezvous seq (1-based), 0 for eager-like
    std::vector<std::uint8_t> ids;

    bool eager_like() const {
        return kind == static_cast<std::uint8_t>(net::FrameKind::Eager) ||
               kind == static_cast<std::uint8_t>(net::FrameKind::Coalesced);
    }
};

struct CDir {
    std::uint8_t eager_left = 0;
    std::uint8_t next_id = 1;
    std::uint8_t rndz_left = 0;
    std::uint8_t next_seq = 1;
    std::uint8_t drops_left = 0;
    std::uint8_t rndz_delivered = 0;
    std::uint8_t stalled = 0;
    std::vector<std::uint8_t> delivered_ids;  // eager ids, arrival order
    std::vector<CFrame> channel;              // FIFO; [0] is oldest
    std::vector<CFrame> delayed;              // parked by the Delay fault
    std::vector<std::uint8_t> sender;         // per seq, SenderState
    std::vector<std::uint8_t> receiver;       // per seq, ReceiverState
};

struct CState {
    CDir dir[2];

    std::string key() const {
        std::string k;
        const auto frame = [&k](const CFrame& f) {
            k += static_cast<char>(f.kind);
            k += static_cast<char>(f.seq);
            k += static_cast<char>(f.ids.size());
            for (std::uint8_t id : f.ids) k += static_cast<char>(id);
        };
        for (const CDir& d : dir) {
            k += static_cast<char>(d.eager_left);
            k += static_cast<char>(d.next_id);
            k += static_cast<char>(d.rndz_left);
            k += static_cast<char>(d.next_seq);
            k += static_cast<char>(d.drops_left);
            k += static_cast<char>(d.rndz_delivered);
            k += static_cast<char>(d.stalled);
            k += static_cast<char>(d.delivered_ids.size());
            for (std::uint8_t id : d.delivered_ids) k += static_cast<char>(id);
            k += static_cast<char>(d.channel.size());
            for (const CFrame& f : d.channel) frame(f);
            k += static_cast<char>(d.delayed.size());
            for (const CFrame& f : d.delayed) frame(f);
            for (std::uint8_t s : d.sender) k += static_cast<char>(s);
            for (std::uint8_t s : d.receiver) k += static_cast<char>(s);
            k += '|';
        }
        return k;
    }
};

struct CoalescedChecker {
    const CoalescedModelOptions& opts;
    ModelResult& res;

    /// Faults that leave the channel FIFO: delivery order of eager ids must
    /// then be globally increasing, coalesced or not. (Drop is pre-wire
    /// with retry, so nothing that reached the channel moved.)
    bool fifo_faults() const {
        return opts.fault == FaultKind::None || opts.fault == FaultKind::Drop ||
               opts.fault == FaultKind::Stall;
    }

    void fail(bool& flag, const std::string& msg) {
        if (res.violations.size() < 16) res.violations.push_back(msg);
        flag = false;
    }

    bool step_sender(CState& s, int d, std::uint8_t seq, SenderEvent ev) {
        std::uint8_t& st = s.dir[d].sender[seq - 1];
        const std::uint8_t next = kSenderTable[st][static_cast<int>(ev)];
        if (next == kInvalidState) {
            std::ostringstream os;
            os << "coalesced safety: sender machine dir" << d << " seq " << int(seq)
               << " in state " << to_string(static_cast<SenderState>(st)) << " rejects event "
               << static_cast<int>(ev);
            fail(res.safe, os.str());
            return false;
        }
        st = next;
        return true;
    }

    bool step_receiver(CState& s, int d, std::uint8_t seq, ReceiverEvent ev) {
        std::uint8_t& st = s.dir[d].receiver[seq - 1];
        const std::uint8_t next = kReceiverTable[st][static_cast<int>(ev)];
        if (next == kInvalidState) {
            std::ostringstream os;
            os << "coalesced safety: receiver machine dir" << d << " seq " << int(seq)
               << " in state " << to_string(static_cast<ReceiverState>(st)) << " rejects event "
               << static_cast<int>(ev);
            fail(res.safe, os.str());
            return false;
        }
        st = next;
        return true;
    }

    /// Model twin of handle_frame: unpacks eager-like frames (checking the
    /// two ordering properties) and runs the rendezvous machines.
    bool process(CState& s, int c, const CFrame& f) {
        if (f.eager_like()) {
            CDir& d = s.dir[c];
            std::uint8_t prev_in_frame = 0;
            for (std::uint8_t id : f.ids) {
                if (id <= prev_in_frame) {
                    std::ostringstream os;
                    os << "overtaking inside a coalesced frame: dir " << c << " id " << int(id)
                       << " after id " << int(prev_in_frame);
                    fail(res.safe, os.str());
                    return false;
                }
                prev_in_frame = id;
                if (fifo_faults() && !d.delivered_ids.empty() && id <= d.delivered_ids.back()) {
                    std::ostringstream os;
                    os << "coalescing broke FIFO under fault " << to_string(opts.fault)
                       << ": dir " << c << " id " << int(id) << " after id "
                       << int(d.delivered_ids.back());
                    fail(res.safe, os.str());
                    return false;
                }
                d.delivered_ids.push_back(id);
            }
            return true;
        }
        switch (static_cast<net::FrameKind>(f.kind)) {
            case net::FrameKind::Rts: {
                if (!step_receiver(s, c, f.seq, ReceiverEvent::RecvRts)) return false;
                if (!step_receiver(s, c, f.seq, ReceiverEvent::SendCts)) return false;
                s.dir[1 - c].channel.push_back(
                    CFrame{static_cast<std::uint8_t>(net::FrameKind::Cts), f.seq, {}});
                return true;
            }
            case net::FrameKind::Cts: {
                const int t = 1 - c;
                if (!step_sender(s, t, f.seq, SenderEvent::RecvCts)) return false;
                if (!step_sender(s, t, f.seq, SenderEvent::SendData)) return false;
                s.dir[t].channel.push_back(
                    CFrame{static_cast<std::uint8_t>(net::FrameKind::Data), f.seq, {}});
                return true;
            }
            case net::FrameKind::Data: {
                if (!step_receiver(s, c, f.seq, ReceiverEvent::RecvData)) return false;
                ++s.dir[c].rndz_delivered;
                return true;
            }
            default: {
                std::ostringstream os;
                os << "coalesced safety: unexpected frame kind " << int(f.kind) << " on channel "
                   << c;
                fail(res.safe, os.str());
                return false;
            }
        }
    }

    bool is_final(const CState& s) const {
        for (const CDir& d : s.dir) {
            if (d.eager_left != 0 || d.rndz_left != 0) return false;
            if (!d.channel.empty() || !d.delayed.empty()) return false;
        }
        return true;
    }

    void check_final(const CState& s) {
        ++res.final_states;
        for (int d = 0; d < 2; ++d) {
            // Every eager id exactly once (order already checked en route).
            std::vector<std::uint8_t> got = s.dir[d].delivered_ids;
            std::sort(got.begin(), got.end());
            bool exact = got.size() == static_cast<std::size_t>(opts.eager_per_direction);
            for (std::size_t i = 0; exact && i < got.size(); ++i) {
                exact = got[i] == static_cast<std::uint8_t>(i + 1);
            }
            if (!exact) {
                std::ostringstream os;
                os << "eager leak: direction " << d << " delivered " << got.size() << " of "
                   << opts.eager_per_direction << " ids (or a duplicate)";
                fail(res.leak_free, os.str());
            }
            if (s.dir[d].rndz_delivered != opts.rndz_per_direction) {
                std::ostringstream os;
                os << "rendezvous leak: direction " << d << " delivered "
                   << int(s.dir[d].rndz_delivered) << " of " << opts.rndz_per_direction;
                fail(res.leak_free, os.str());
            }
            for (std::size_t i = 0; i < s.dir[d].sender.size(); ++i) {
                if (s.dir[d].sender[i] != static_cast<std::uint8_t>(SenderState::Done) ||
                    s.dir[d].receiver[i] != static_cast<std::uint8_t>(ReceiverState::Done)) {
                    std::ostringstream os;
                    os << "credit violation: dir " << d << " seq " << (i + 1) << " ended sender="
                       << to_string(static_cast<SenderState>(s.dir[d].sender[i])) << " receiver="
                       << to_string(static_cast<ReceiverState>(s.dir[d].receiver[i]));
                    fail(res.credits_ok, os.str());
                }
            }
        }
    }

    std::vector<CState> successors(const CState& s) {
        std::vector<CState> out;
        for (int d = 0; d < 2; ++d) {
            const CDir& dir = s.dir[d];
            // App-layer sends (ids are assigned when the send succeeds; a
            // dropped attempt is retried, so no id is consumed).
            if (dir.eager_left > 0) {
                CState n = s;
                CDir& nd = n.dir[d];
                --nd.eager_left;
                nd.channel.push_back(CFrame{static_cast<std::uint8_t>(net::FrameKind::Eager), 0,
                                            {nd.next_id}});
                ++nd.next_id;
                out.push_back(std::move(n));
                if (opts.fault == FaultKind::Drop && dir.drops_left > 0) {
                    CState dn = s;
                    --dn.dir[d].drops_left;
                    out.push_back(std::move(dn));
                }
            }
            if (dir.rndz_left > 0) {
                CState n = s;
                CDir& nd = n.dir[d];
                --nd.rndz_left;
                const std::uint8_t seq = nd.next_seq++;
                if (step_sender(n, d, seq, SenderEvent::SendRts)) {
                    nd.channel.push_back(
                        CFrame{static_cast<std::uint8_t>(net::FrameKind::Rts), seq, {}});
                    out.push_back(std::move(n));
                }
                if (opts.fault == FaultKind::Drop && dir.drops_left > 0) {
                    CState dn = s;
                    --dn.dir[d].drops_left;
                    out.push_back(std::move(dn));
                }
            }
            // The writer: merge two ADJACENT eager-like frames into one
            // Coalesced frame. A control frame in between blocks the merge,
            // mirroring pop_write_batch stopping at the first non-Eager
            // frame for the destination. (The real writer merges only at
            // the queue head; allowing any adjacent pair over-approximates,
            // checking strictly more interleavings.)
            for (std::size_t i = 0; i + 1 < dir.channel.size(); ++i) {
                const CFrame& a = dir.channel[i];
                const CFrame& b = dir.channel[i + 1];
                if (!a.eager_like() || !b.eager_like()) continue;
                if (a.ids.size() + b.ids.size() > static_cast<std::size_t>(opts.batch_cap)) {
                    continue;
                }
                CState n = s;
                CFrame merged{static_cast<std::uint8_t>(net::FrameKind::Coalesced), 0, a.ids};
                merged.ids.insert(merged.ids.end(), b.ids.begin(), b.ids.end());
                auto& ch = n.dir[d].channel;
                ch[i] = std::move(merged);
                ch.erase(ch.begin() + static_cast<std::ptrdiff_t>(i + 1));
                out.push_back(std::move(n));
            }
            // Deliveries: FIFO head only, except under Reorder.
            if (!dir.channel.empty() && dir.stalled == 0) {
                const std::size_t limit =
                    opts.fault == FaultKind::Reorder ? dir.channel.size() : 1;
                for (std::size_t i = 0; i < limit; ++i) {
                    CState n = s;
                    const CFrame f = n.dir[d].channel[i];
                    n.dir[d].channel.erase(n.dir[d].channel.begin() +
                                           static_cast<std::ptrdiff_t>(i));
                    if (process(n, d, f)) out.push_back(std::move(n));
                }
            }
            // Delay: park the head, let later frames overtake it.
            if (opts.fault == FaultKind::Delay && !dir.channel.empty() &&
                static_cast<int>(dir.delayed.size()) < opts.max_delay_slots) {
                CState n = s;
                n.dir[d].delayed.push_back(n.dir[d].channel.front());
                n.dir[d].channel.erase(n.dir[d].channel.begin());
                out.push_back(std::move(n));
            }
            if (!dir.delayed.empty() && dir.stalled == 0) {
                for (std::size_t i = 0; i < dir.delayed.size(); ++i) {
                    CState n = s;
                    const CFrame f = n.dir[d].delayed[i];
                    n.dir[d].delayed.erase(n.dir[d].delayed.begin() +
                                           static_cast<std::ptrdiff_t>(i));
                    if (process(n, d, f)) out.push_back(std::move(n));
                }
            }
            if (opts.fault == FaultKind::Stall) {
                CState n = s;
                n.dir[d].stalled = dir.stalled == 0 ? 1 : 0;
                out.push_back(std::move(n));
            }
        }
        return out;
    }
};

}  // namespace

ModelResult check_coalesced_protocol(const CoalescedModelOptions& opts) {
    DFAMR_REQUIRE(opts.eager_per_direction <= 200 && opts.rndz_per_direction <= 200,
                  "mc: coalesced workload too large for id encoding");
    DFAMR_REQUIRE(opts.batch_cap >= 2, "mc: batch_cap below 2 disables coalescing");
    ModelResult res;
    CoalescedChecker chk{opts, res};

    CState init;
    for (int d = 0; d < 2; ++d) {
        init.dir[d].eager_left = static_cast<std::uint8_t>(opts.eager_per_direction);
        init.dir[d].rndz_left = static_cast<std::uint8_t>(opts.rndz_per_direction);
        init.dir[d].drops_left =
            opts.fault == FaultKind::Drop ? static_cast<std::uint8_t>(opts.max_extra_drops) : 0;
        init.dir[d].sender.assign(static_cast<std::size_t>(opts.rndz_per_direction),
                                  static_cast<std::uint8_t>(SenderState::Idle));
        init.dir[d].receiver.assign(static_cast<std::size_t>(opts.rndz_per_direction),
                                    static_cast<std::uint8_t>(ReceiverState::Idle));
    }

    std::set<std::string> visited;
    std::deque<CState> frontier;
    visited.insert(init.key());
    frontier.push_back(std::move(init));
    while (!frontier.empty()) {
        CState s = std::move(frontier.front());
        frontier.pop_front();
        ++res.states_explored;
        if (chk.is_final(s)) {
            chk.check_final(s);
            continue;
        }
        std::vector<CState> next = chk.successors(s);
        if (next.empty()) {
            std::ostringstream os;
            os << "deadlock: no enabled action (ch0=" << s.dir[0].channel.size()
               << " ch1=" << s.dir[1].channel.size() << " eager=" << int(s.dir[0].eager_left)
               << "/" << int(s.dir[1].eager_left) << ")";
            chk.fail(res.deadlock_free, os.str());
            continue;
        }
        for (CState& n : next) {
            ++res.transitions;
            std::string key = n.key();
            if (visited.insert(std::move(key)).second) frontier.push_back(std::move(n));
        }
    }
    return res;
}

// ----- shm ring model -------------------------------------------------------

namespace {

/// Producer and consumer progress over the byte stream. The ring fill is
/// derived (bytes produced minus bytes consumed), so the state is just the
/// two cursors plus the fault bookkeeping.
struct RState {
    std::uint8_t prod_frame = 0;  // frames fully written
    std::uint8_t prod_bytes = 0;  // partial bytes of frame prod_frame
    std::uint8_t cons_frame = 0;  // frames fully delivered
    std::uint8_t cons_bytes = 0;  // partial bytes of frame cons_frame
    std::uint8_t drops_left = 0;
    std::uint8_t stalled = 0;

    std::string key() const {
        std::string k;
        k += static_cast<char>(prod_frame);
        k += static_cast<char>(prod_bytes);
        k += static_cast<char>(cons_frame);
        k += static_cast<char>(cons_bytes);
        k += static_cast<char>(drops_left);
        k += static_cast<char>(stalled);
        return k;
    }
};

struct RingChecker {
    const ShmRingOptions& opts;
    ModelResult& res;

    void fail(bool& flag, const std::string& msg) {
        if (res.violations.size() < 16) res.violations.push_back(msg);
        flag = false;
    }

    int prefix(int frames) const {
        int sum = 0;
        for (int i = 0; i < frames; ++i) sum += opts.frame_sizes[static_cast<std::size_t>(i)];
        return sum;
    }

    int fill(const RState& s) const {
        return prefix(s.prod_frame) + s.prod_bytes - prefix(s.cons_frame) - s.cons_bytes;
    }

    /// The bounded-fill safety invariant, checked on every reachable state.
    bool check_fill(const RState& s) {
        const int f = fill(s);
        if (f < 0 || f > opts.capacity) {
            std::ostringstream os;
            os << "ring safety: fill " << f << " outside [0, " << opts.capacity << "] at prod="
               << int(s.prod_frame) << "+" << int(s.prod_bytes) << " cons=" << int(s.cons_frame)
               << "+" << int(s.cons_bytes);
            fail(res.safe, os.str());
            return false;
        }
        return true;
    }

    bool is_final(const RState& s) const {
        const int n = static_cast<int>(opts.frame_sizes.size());
        return s.prod_frame == n && s.cons_frame == n;
    }

    void check_final(const RState& s) {
        ++res.final_states;
        // cons_frame advances only through complete, in-order frames, so
        // reaching n IS the delivery property; the leak check restates it.
        if (s.cons_frame != static_cast<int>(opts.frame_sizes.size()) || s.cons_bytes != 0) {
            std::ostringstream os;
            os << "frame leak: consumer finished at frame " << int(s.cons_frame) << " byte "
               << int(s.cons_bytes) << " of " << opts.frame_sizes.size() << " frames";
            fail(res.leak_free, os.str());
        }
    }

    std::vector<RState> successors(const RState& s) {
        std::vector<RState> out;
        const int n = static_cast<int>(opts.frame_sizes.size());
        // Producer: drop the next frame pre-write (retried, so the frame
        // still goes out later — mirrors FaultPlan's send-side drop).
        if (opts.fault == FaultKind::Drop && s.drops_left > 0 && s.prod_frame < n &&
            s.prod_bytes == 0) {
            RState d = s;
            --d.drops_left;
            out.push_back(d);
        }
        // Producer: write 1 byte or everything that fits right now. The
        // two amounts bound every real partial-write schedule.
        if (s.prod_frame < n) {
            const int free = opts.capacity - fill(s);
            const int remaining =
                opts.frame_sizes[static_cast<std::size_t>(s.prod_frame)] - s.prod_bytes;
            const int max_write = std::min(free, remaining);
            for (int amount : {1, max_write}) {
                if (amount < 1 || amount > max_write) continue;
                RState w = s;
                w.prod_bytes = static_cast<std::uint8_t>(w.prod_bytes + amount);
                if (w.prod_bytes ==
                    opts.frame_sizes[static_cast<std::size_t>(w.prod_frame)]) {
                    ++w.prod_frame;
                    w.prod_bytes = 0;
                }
                if (check_fill(w)) out.push_back(w);
                if (amount == max_write) break;  // 1 == max_write: one action
            }
        }
        // Consumer: read 1 byte or everything available for the current
        // frame. Bytes leave the ring FIFO, so they always belong to
        // cons_frame — a byte stream cannot reorder (Reorder adds nothing).
        if (s.cons_frame < n && s.stalled == 0) {
            const int wanted =
                opts.frame_sizes[static_cast<std::size_t>(s.cons_frame)] - s.cons_bytes;
            const int avail = std::min(fill(s), wanted);
            for (int amount : {1, avail}) {
                if (amount < 1 || amount > avail) continue;
                RState r = s;
                r.cons_bytes = static_cast<std::uint8_t>(r.cons_bytes + amount);
                if (r.cons_bytes ==
                    opts.frame_sizes[static_cast<std::size_t>(r.cons_frame)]) {
                    ++r.cons_frame;
                    r.cons_bytes = 0;
                }
                if (check_fill(r)) out.push_back(r);
                if (amount == avail) break;
            }
        }
        // Stall: gate the consumer (the progress thread pinned elsewhere).
        // Delay is a paused thread — already subsumed by interleaving.
        if (opts.fault == FaultKind::Stall) {
            RState t = s;
            t.stalled = s.stalled == 0 ? 1 : 0;
            out.push_back(t);
        }
        return out;
    }
};

}  // namespace

ModelResult check_shm_ring(const ShmRingOptions& opts) {
    DFAMR_REQUIRE(!opts.frame_sizes.empty(), "mc: ring workload is empty");
    DFAMR_REQUIRE(opts.capacity >= 1, "mc: ring capacity must be positive");
    int total = 0;
    for (int sz : opts.frame_sizes) {
        DFAMR_REQUIRE(sz >= 1 && sz <= 200, "mc: ring frame size out of range");
        total += sz;
    }
    DFAMR_REQUIRE(total <= 200 && opts.frame_sizes.size() <= 200,
                  "mc: ring workload too large for byte encoding");
    ModelResult res;
    RingChecker chk{opts, res};

    RState init;
    init.drops_left =
        opts.fault == FaultKind::Drop ? static_cast<std::uint8_t>(opts.max_extra_drops) : 0;
    chk.check_fill(init);

    std::set<std::string> visited;
    std::deque<RState> frontier;
    visited.insert(init.key());
    frontier.push_back(init);
    while (!frontier.empty()) {
        const RState s = frontier.front();
        frontier.pop_front();
        ++res.states_explored;
        if (chk.is_final(s)) {
            chk.check_final(s);
            continue;
        }
        std::vector<RState> next = chk.successors(s);
        if (next.empty()) {
            std::ostringstream os;
            os << "deadlock: no enabled action at prod=" << int(s.prod_frame) << "+"
               << int(s.prod_bytes) << " cons=" << int(s.cons_frame) << "+" << int(s.cons_bytes)
               << " fill=" << chk.fill(s) << "/" << opts.capacity;
            chk.fail(res.deadlock_free, os.str());
            continue;
        }
        for (const RState& n : next) {
            ++res.transitions;
            std::string key = n.key();
            if (visited.insert(std::move(key)).second) frontier.push_back(n);
        }
    }
    return res;
}

}  // namespace dfamr::verify::mc
