#include "verify/access_check.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "common/lockdep.hpp"

namespace dfamr::verify {

namespace {

struct Frame {
    const char* label = "";
    std::uint64_t task_id = 0;
    bool constrained = false;  // false: body declared nothing, checks pass
    std::vector<tasking::Dep> deps;
};

// Stack, not a single slot: inline execution and taskwait-from-a-body run
// nested task bodies on the same thread.
thread_local std::vector<Frame> tls_frames;

void push_frame(const char* label, std::uint64_t task_id, std::span<const tasking::Dep> deps) {
    Frame f;
    f.label = (label != nullptr) ? label : "";
    f.task_id = task_id;
    for (const tasking::Dep& d : deps) {
        if (d.region.empty()) continue;
        f.constrained = true;
        f.deps.push_back(d);
    }
    tls_frames.push_back(std::move(f));
}

/// Merged coverage test: is [lo, hi) covered by the union of the regions in
/// `deps` whose kind satisfies the access?
bool covered(const std::vector<tasking::Dep>& deps, std::uintptr_t lo, std::uintptr_t hi,
             bool is_write) {
    std::vector<std::pair<std::uintptr_t, std::uintptr_t>> granted;
    for (const tasking::Dep& d : deps) {
        const bool ok = is_write ? (d.kind != tasking::DepKind::In)
                                 : (d.kind != tasking::DepKind::Out);
        if (ok) granted.emplace_back(d.region.base, d.region.end());
    }
    std::sort(granted.begin(), granted.end());
    std::uintptr_t cursor = lo;
    for (const auto& [b, e] : granted) {
        if (b > cursor) break;
        cursor = std::max(cursor, e);
        if (cursor >= hi) return true;
    }
    return cursor >= hi;
}

[[noreturn]] void report_violation(const Frame& f, const void* p, std::size_t n, bool is_write) {
    std::ostringstream os;
    os << "verify: undeclared " << (is_write ? "write" : "read") << " of " << n << " byte(s) at 0x"
       << std::hex << reinterpret_cast<std::uintptr_t>(p) << std::dec << " in task '"
       << (f.label[0] != '\0' ? f.label : "<unlabeled>") << "' (#" << f.task_id
       << "); declared regions:";
    for (const tasking::Dep& d : f.deps) {
        const char* kind = d.kind == tasking::DepKind::In
                               ? "in"
                               : (d.kind == tasking::DepKind::Out ? "out" : "inout");
        os << ' ' << kind << " [0x" << std::hex << d.region.base << std::dec << ", +"
           << d.region.size << ')';
    }
    throw AccessViolation(os.str());
}

}  // namespace

void check_access(const void* p, std::size_t n, bool is_write) {
    if (n == 0) return;
    if (tls_frames.empty()) return;  // not inside a task body
    const Frame& f = tls_frames.back();
    if (!f.constrained) return;  // body declared nothing: unconstrained
    const auto lo = reinterpret_cast<std::uintptr_t>(p);
    if (!covered(f.deps, lo, lo + n, is_write)) report_violation(f, p, n, is_write);
}

bool access_checking_active() {
    return !tls_frames.empty() && tls_frames.back().constrained;
}

// ---- wire-region registry -------------------------------------------------

namespace {

struct WireRegion {
    std::uintptr_t end = 0;
    const char* tag = "";
};

struct WireRegistry {
    // Leaf lock: nothing is acquired while held, so it can be taken from
    // any delivery thread regardless of what that thread already holds.
    lockdep::Mutex m{"verify.wirereg"};
    std::map<std::uintptr_t, WireRegion> regions;  // keyed by base address
};

WireRegistry& wire_registry() {
    static WireRegistry* r = new WireRegistry;  // immortal, like lockdep's
    return *r;
}

}  // namespace

void register_wire_region(const void* base, std::size_t size, const char* tag) {
    if (size == 0) return;  // zero-byte receives have no landing zone
    const auto lo = reinterpret_cast<std::uintptr_t>(base);
    WireRegistry& reg = wire_registry();
    std::lock_guard lock(reg.m);
    // Overlap check against the neighbors in address order is sufficient
    // because the invariant holds before the insert.
    auto next = reg.regions.lower_bound(lo);
    if (next != reg.regions.end()) {
        DFAMR_REQUIRE(lo + size <= next->first,
                      std::string("wire-region overlap: '") + tag + "' collides with '" +
                          next->second.tag + "'");
    }
    if (next != reg.regions.begin()) {
        auto prev = std::prev(next);
        DFAMR_REQUIRE(prev->second.end <= lo,
                      std::string("wire-region overlap: '") + tag + "' collides with '" +
                          prev->second.tag + "'");
    }
    reg.regions.emplace(lo, WireRegion{lo + size, (tag != nullptr) ? tag : ""});
}

void unregister_wire_region(const void* base) {
    if (base == nullptr) return;
    WireRegistry& reg = wire_registry();
    std::lock_guard lock(reg.m);
    const auto it = reg.regions.find(reinterpret_cast<std::uintptr_t>(base));
    DFAMR_REQUIRE(it != reg.regions.end(), "unregister of unknown wire region");
    reg.regions.erase(it);
}

void check_wire_write(const void* p, std::size_t n) {
    if (n == 0) return;
    const auto lo = reinterpret_cast<std::uintptr_t>(p);
    const std::uintptr_t hi = lo + n;
    WireRegistry& reg = wire_registry();
    std::lock_guard lock(reg.m);
    // The covering region, if any, is the one with the greatest base <= lo.
    auto it = reg.regions.upper_bound(lo);
    if (it != reg.regions.begin()) {
        it = std::prev(it);
        if (it->first <= lo && hi <= it->second.end) return;
        if (lo < it->second.end) {
            std::ostringstream os;
            os << "verify: wire-path write of " << n << " byte(s) at 0x" << std::hex << lo
               << std::dec << " overruns registered buffer '" << it->second.tag << "' [0x"
               << std::hex << it->first << ", 0x" << it->second.end << std::dec << ")";
            throw AccessViolation(os.str());
        }
    }
    std::ostringstream os;
    os << "verify: wire-path write of " << n << " byte(s) at 0x" << std::hex << lo << std::dec
       << " targets no registered in-flight receive buffer (" << reg.regions.size()
       << " registered)";
    throw AccessViolation(os.str());
}

std::size_t wire_regions_registered() {
    WireRegistry& reg = wire_registry();
    std::lock_guard lock(reg.m);
    return reg.regions.size();
}

ScopedDeclaredRegions::ScopedDeclaredRegions(const char* label, std::uint64_t task_id,
                                             std::span<const tasking::Dep> deps) {
    push_frame(label, task_id, deps);
}

ScopedDeclaredRegions::~ScopedDeclaredRegions() { tls_frames.pop_back(); }

void AccessChecker::on_body_start(const tasking::DepNode& node, const char* label,
                                  std::span<const tasking::Dep> deps) {
    push_frame(label, node.node_id, deps);
}

void AccessChecker::on_body_end(const tasking::DepNode& node) {
    (void)node;
    DFAMR_ASSERT(!tls_frames.empty() && tls_frames.back().task_id == node.node_id);
    tls_frames.pop_back();
}

}  // namespace dfamr::verify
