#include "verify/access_check.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace dfamr::verify {

namespace {

struct Frame {
    const char* label = "";
    std::uint64_t task_id = 0;
    bool constrained = false;  // false: body declared nothing, checks pass
    std::vector<tasking::Dep> deps;
};

// Stack, not a single slot: inline execution and taskwait-from-a-body run
// nested task bodies on the same thread.
thread_local std::vector<Frame> tls_frames;

void push_frame(const char* label, std::uint64_t task_id, std::span<const tasking::Dep> deps) {
    Frame f;
    f.label = (label != nullptr) ? label : "";
    f.task_id = task_id;
    for (const tasking::Dep& d : deps) {
        if (d.region.empty()) continue;
        f.constrained = true;
        f.deps.push_back(d);
    }
    tls_frames.push_back(std::move(f));
}

/// Merged coverage test: is [lo, hi) covered by the union of the regions in
/// `deps` whose kind satisfies the access?
bool covered(const std::vector<tasking::Dep>& deps, std::uintptr_t lo, std::uintptr_t hi,
             bool is_write) {
    std::vector<std::pair<std::uintptr_t, std::uintptr_t>> granted;
    for (const tasking::Dep& d : deps) {
        const bool ok = is_write ? (d.kind != tasking::DepKind::In)
                                 : (d.kind != tasking::DepKind::Out);
        if (ok) granted.emplace_back(d.region.base, d.region.end());
    }
    std::sort(granted.begin(), granted.end());
    std::uintptr_t cursor = lo;
    for (const auto& [b, e] : granted) {
        if (b > cursor) break;
        cursor = std::max(cursor, e);
        if (cursor >= hi) return true;
    }
    return cursor >= hi;
}

[[noreturn]] void report_violation(const Frame& f, const void* p, std::size_t n, bool is_write) {
    std::ostringstream os;
    os << "verify: undeclared " << (is_write ? "write" : "read") << " of " << n << " byte(s) at 0x"
       << std::hex << reinterpret_cast<std::uintptr_t>(p) << std::dec << " in task '"
       << (f.label[0] != '\0' ? f.label : "<unlabeled>") << "' (#" << f.task_id
       << "); declared regions:";
    for (const tasking::Dep& d : f.deps) {
        const char* kind = d.kind == tasking::DepKind::In
                               ? "in"
                               : (d.kind == tasking::DepKind::Out ? "out" : "inout");
        os << ' ' << kind << " [0x" << std::hex << d.region.base << std::dec << ", +"
           << d.region.size << ')';
    }
    throw AccessViolation(os.str());
}

}  // namespace

void check_access(const void* p, std::size_t n, bool is_write) {
    if (n == 0) return;
    if (tls_frames.empty()) return;  // not inside a task body
    const Frame& f = tls_frames.back();
    if (!f.constrained) return;  // body declared nothing: unconstrained
    const auto lo = reinterpret_cast<std::uintptr_t>(p);
    if (!covered(f.deps, lo, lo + n, is_write)) report_violation(f, p, n, is_write);
}

bool access_checking_active() {
    return !tls_frames.empty() && tls_frames.back().constrained;
}

ScopedDeclaredRegions::ScopedDeclaredRegions(const char* label, std::uint64_t task_id,
                                             std::span<const tasking::Dep> deps) {
    push_frame(label, task_id, deps);
}

ScopedDeclaredRegions::~ScopedDeclaredRegions() { tls_frames.pop_back(); }

void AccessChecker::on_body_start(const tasking::DepNode& node, const char* label,
                                  std::span<const tasking::Dep> deps) {
    push_frame(label, node.node_id, deps);
}

void AccessChecker::on_body_end(const tasking::DepNode& node) {
    (void)node;
    DFAMR_ASSERT(!tls_frames.empty() && tls_frames.back().task_id == node.node_id);
    tls_frames.pop_back();
}

}  // namespace dfamr::verify
