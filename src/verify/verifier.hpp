// Verifier — the one-stop hook drivers attach in DFAMR_VERIFY builds:
// fans every runtime event out to a DepLint (graph-level happens-before
// proof) and an AccessChecker (access-level declared-region enforcement).
#pragma once

#include "tasking/runtime.hpp"
#include "verify/access_check.hpp"
#include "verify/deplint.hpp"

namespace dfamr::verify {

class Verifier final : public tasking::VerifyHook {
public:
    Verifier() = default;

    /// Convenience: rt.set_verify_hook(this). The verifier must outlive the
    /// runtime (or be detached first).
    void attach(tasking::Runtime& rt) { rt.set_verify_hook(this); }

    DepLint& deplint() { return deplint_; }

    void on_node_registered(const tasking::DepNode& node, const char* label,
                            std::span<const tasking::Dep> deps) override {
        deplint_.on_node_registered(node, label, deps);
    }
    void on_edge_added(const tasking::DepNode& pred, const tasking::DepNode& succ) override {
        deplint_.on_edge_added(pred, succ);
    }
    void on_node_released(const tasking::DepNode& node) override {
        deplint_.on_node_released(node);
    }
    void on_body_start(const tasking::DepNode& node, const char* label,
                       std::span<const tasking::Dep> deps) override {
        access_.on_body_start(node, label, deps);
    }
    void on_body_end(const tasking::DepNode& node) override { access_.on_body_end(node); }
    void on_shutdown() override { deplint_.on_shutdown(); }

private:
    DepLint deplint_;
    AccessChecker access_;
};

}  // namespace dfamr::verify
