// DepLint — graph-level dependency-correctness checker for the tasking layer.
//
// The paper's entire correctness argument rests on tasks declaring accurate
// in/out/inout region dependencies: one missed edge in the registry (a bad
// interval split, a premature garbage collection, a WAR/WAW case lost in a
// refactor) silently turns into a data race no functional test can catch.
// DepLint records the full dependency history through tasking::VerifyHook
// and, on demand, PROVES the fundamental invariant:
//
//     for any two recorded tasks whose declared regions overlap with at
//     least one writer, a happens-before path must order them.
//
// Happens-before is the transitive closure of two relations:
//   E: the explicit edges the registry wired (pred -> succ), and
//   T: "released before submitted" — task a released its dependencies
//      before task b was registered (the registry legitimately elides the
//      edge then; completion order provides the ordering).
// A single logical clock stamps registrations and releases. While a hook
// is attached the runtime serializes whole registrations and whole releases
// on a dedicated verify mutex (the registry itself is sharded, see
// dependency.hpp), so the stamps form a total order consistent with
// execution. Since sub(x) <= rel(x) for every task, T is
// transitively closed and any mixed E/T path collapses to E* or E*·T·E* —
// so the reachability query "a happens-before b" reduces to: b is E-reachable
// from a, OR some x in E-closure(a) released before some y in
// E-co-closure(b) was submitted. check() implements exactly that.
//
// DepLint also detects cycles in the recorded edge set (a cyclic "DAG"
// means the runtime deadlocks) and reports every violation with task
// labels, node ids, and region provenance (which declared dep conflicts).
//
// Zero cost when off: nothing records unless a DepLint is attached via
// Runtime::set_verify_hook (a null-pointer check per runtime event).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tasking/dependency.hpp"
#include "tasking/verify_hook.hpp"

namespace dfamr::verify {

/// One declared access of a recorded task (provenance for diagnostics).
struct RecordedAccess {
    tasking::DepKind kind = tasking::DepKind::In;
    tasking::Region region;
    int dep_index = 0;  // position in the task's declared deps list
};

struct TaskRecord {
    static constexpr std::uint64_t kNotReleased = UINT64_MAX;

    std::uint64_t id = 0;  // DepNode::node_id
    std::string label;
    std::vector<RecordedAccess> accesses;
    std::uint64_t submit_stamp = 0;
    std::uint64_t release_stamp = kNotReleased;
};

struct Violation {
    enum class Kind { UnorderedConflict, Cycle };

    Kind kind = Kind::UnorderedConflict;
    std::uint64_t task_a = 0;  // node ids; for Cycle: two nodes on the cycle
    std::uint64_t task_b = 0;
    std::string message;  // human-readable diagnostic (labels + regions)
};

struct Report {
    std::size_t tasks_checked = 0;
    std::size_t conflicts_checked = 0;
    std::vector<Violation> violations;

    bool clean() const { return violations.empty(); }
    std::string to_string() const;
};

class DepLint final : public tasking::VerifyHook {
public:
    DepLint() = default;

    /// When enabled, Runtime destruction (after its final taskwait) runs
    /// check() and a dirty report is printed to stderr followed by abort().
    /// Defaults to on in debug (!NDEBUG) and DFAMR_VERIFY builds — seeded-
    /// race tests must disable it explicitly.
    void set_check_on_shutdown(bool on) { check_on_shutdown_ = on; }

    /// Verifies the recorded history; safe to call at any quiescent point
    /// (e.g. after a taskwait). Records are kept, so repeated checks see
    /// the cumulative history of the runtime.
    Report check() const;

    /// Drops all recorded history (e.g. between independent test phases).
    void reset();

    std::size_t recorded_tasks() const;
    std::size_t recorded_edges() const;

    // --- tasking::VerifyHook (also callable directly by tests simulating
    // a registry front-end) ------------------------------------------------
    void on_node_registered(const tasking::DepNode& node, const char* label,
                            std::span<const tasking::Dep> deps) override;
    void on_edge_added(const tasking::DepNode& pred, const tasking::DepNode& succ) override;
    void on_node_released(const tasking::DepNode& node) override;
    void on_shutdown() override;

private:
    static constexpr bool kDefaultShutdownCheck =
#if defined(DFAMR_VERIFY) || !defined(NDEBUG)
        true;
#else
        false;
#endif

    mutable std::mutex mutex_;
    bool check_on_shutdown_ = kDefaultShutdownCheck;
    std::uint64_t clock_ = 1;
    std::vector<TaskRecord> tasks_;  // in registration order
    std::unordered_map<std::uint64_t, std::size_t> index_;  // node id -> tasks_ index
    std::vector<std::pair<std::uint64_t, std::uint64_t>> edges_;  // (pred id, succ id)
};

}  // namespace dfamr::verify
