#include "verify/deplint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <sstream>

namespace dfamr::verify {

namespace {

const char* kind_name(tasking::DepKind k) {
    switch (k) {
        case tasking::DepKind::In:
            return "in";
        case tasking::DepKind::Out:
            return "out";
        case tasking::DepKind::InOut:
            return "inout";
    }
    return "?";
}

void describe_task(std::ostringstream& os, const TaskRecord& t, const RecordedAccess& a) {
    os << '\'' << (t.label.empty() ? "<unlabeled>" : t.label) << "' (#" << t.id << ", "
       << kind_name(a.kind) << " [0x" << std::hex << a.region.base << std::dec << ", +"
       << a.region.size << ") dep " << a.dep_index << ')';
}

/// Forward/backward E-closure from one node (indices into tasks_).
std::vector<std::size_t> closure(std::size_t start,
                                 const std::vector<std::vector<std::size_t>>& adj) {
    std::vector<std::size_t> out;
    std::vector<char> seen(adj.size(), 0);
    std::deque<std::size_t> work{start};
    seen[start] = 1;
    while (!work.empty()) {
        const std::size_t cur = work.front();
        work.pop_front();
        out.push_back(cur);
        for (std::size_t next : adj[cur]) {
            if (!seen[next]) {
                seen[next] = 1;
                work.push_back(next);
            }
        }
    }
    return out;
}

}  // namespace

std::string Report::to_string() const {
    std::ostringstream os;
    os << "DepLint: " << tasks_checked << " tasks, " << conflicts_checked
       << " conflicting pairs checked, " << violations.size() << " violation(s)\n";
    for (const Violation& v : violations) {
        os << "  [" << (v.kind == Violation::Kind::Cycle ? "cycle" : "race") << "] " << v.message
           << '\n';
    }
    return os.str();
}

void DepLint::on_node_registered(const tasking::DepNode& node, const char* label,
                                 std::span<const tasking::Dep> deps) {
    std::lock_guard lock(mutex_);
    TaskRecord rec;
    rec.id = node.node_id;
    rec.label = (label != nullptr) ? label : "";
    rec.submit_stamp = clock_++;
    rec.accesses.reserve(deps.size());
    for (std::size_t i = 0; i < deps.size(); ++i) {
        // Empty regions impose no ordering (see tasking::Region) — skip so
        // the checked model matches the registry's.
        if (deps[i].region.empty()) continue;
        rec.accesses.push_back(
            RecordedAccess{deps[i].kind, deps[i].region, static_cast<int>(i)});
    }
    index_[rec.id] = tasks_.size();
    tasks_.push_back(std::move(rec));
}

void DepLint::on_edge_added(const tasking::DepNode& pred, const tasking::DepNode& succ) {
    std::lock_guard lock(mutex_);
    edges_.emplace_back(pred.node_id, succ.node_id);
}

void DepLint::on_node_released(const tasking::DepNode& node) {
    std::lock_guard lock(mutex_);
    auto it = index_.find(node.node_id);
    if (it == index_.end()) return;  // released node predates attachment
    tasks_[it->second].release_stamp = clock_++;
}

void DepLint::on_shutdown() {
    if (!check_on_shutdown_) return;
    const Report report = check();
    if (!report.clean()) {
        std::fputs(report.to_string().c_str(), stderr);
        std::fputs("DepLint: dependency invariant violated at runtime shutdown\n", stderr);
        std::abort();
    }
}

void DepLint::reset() {
    std::lock_guard lock(mutex_);
    clock_ = 1;
    tasks_.clear();
    index_.clear();
    edges_.clear();
}

std::size_t DepLint::recorded_tasks() const {
    std::lock_guard lock(mutex_);
    return tasks_.size();
}

std::size_t DepLint::recorded_edges() const {
    std::lock_guard lock(mutex_);
    return edges_.size();
}

Report DepLint::check() const {
    std::lock_guard lock(mutex_);
    Report report;
    report.tasks_checked = tasks_.size();
    const std::size_t n = tasks_.size();

    // Adjacency over task indices; edges to/from unrecorded nodes (released
    // before attachment) carry no information and are dropped.
    std::vector<std::vector<std::size_t>> fwd(n), bwd(n);
    for (const auto& [pred_id, succ_id] : edges_) {
        auto p = index_.find(pred_id);
        auto s = index_.find(succ_id);
        if (p == index_.end() || s == index_.end()) continue;
        fwd[p->second].push_back(s->second);
        bwd[s->second].push_back(p->second);
    }

    // --- cycle detection (Kahn's algorithm; leftovers lie on cycles) ------
    {
        std::vector<std::size_t> indegree(n, 0);
        for (std::size_t u = 0; u < n; ++u) {
            for (std::size_t v : fwd[u]) ++indegree[v];
        }
        std::deque<std::size_t> ready;
        for (std::size_t u = 0; u < n; ++u) {
            if (indegree[u] == 0) ready.push_back(u);
        }
        std::size_t ordered = 0;
        while (!ready.empty()) {
            const std::size_t u = ready.front();
            ready.pop_front();
            ++ordered;
            for (std::size_t v : fwd[u]) {
                if (--indegree[v] == 0) ready.push_back(v);
            }
        }
        if (ordered < n) {
            // Name two cyclic nodes for the diagnostic.
            std::vector<std::size_t> cyclic;
            for (std::size_t u = 0; u < n && cyclic.size() < 2; ++u) {
                if (indegree[u] > 0) cyclic.push_back(u);
            }
            std::ostringstream os;
            os << "dependency graph contains a cycle through "
               << (n - ordered) << " task(s), e.g. '" << tasks_[cyclic.front()].label << "' (#"
               << tasks_[cyclic.front()].id << ')';
            Violation v;
            v.kind = Violation::Kind::Cycle;
            v.task_a = tasks_[cyclic.front()].id;
            v.task_b = tasks_[cyclic.back()].id;
            v.message = os.str();
            report.violations.push_back(std::move(v));
        }
    }

    // --- conflicting pairs: overlap + at least one writer -----------------
    struct Access {
        std::uintptr_t base, end;
        std::size_t task;
        std::size_t acc;  // index into tasks_[task].accesses
        bool write;
    };
    std::vector<Access> accs;
    for (std::size_t t = 0; t < n; ++t) {
        for (std::size_t a = 0; a < tasks_[t].accesses.size(); ++a) {
            const RecordedAccess& ra = tasks_[t].accesses[a];
            accs.push_back(Access{ra.region.base, ra.region.end(), t, a,
                                  ra.kind != tasking::DepKind::In});
        }
    }
    std::sort(accs.begin(), accs.end(),
              [](const Access& a, const Access& b) { return a.base < b.base; });

    // For each unique conflicting task pair, remember one witnessing access
    // pair for the diagnostic.
    std::unordered_map<std::uint64_t, std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t i = 0; i < accs.size(); ++i) {
        for (std::size_t j = i + 1; j < accs.size() && accs[j].base < accs[i].end; ++j) {
            if (accs[i].task == accs[j].task) continue;
            if (!accs[i].write && !accs[j].write) continue;
            std::size_t lo = std::min(accs[i].task, accs[j].task);
            std::size_t hi = std::max(accs[i].task, accs[j].task);
            pairs.try_emplace((static_cast<std::uint64_t>(lo) << 32) | hi,
                              lo == accs[i].task ? i : j, lo == accs[i].task ? j : i);
        }
    }
    report.conflicts_checked = pairs.size();

    // --- happens-before proof per pair ------------------------------------
    // Memoized E-closures plus their min-release / max-submit summaries.
    std::unordered_map<std::size_t, std::pair<std::vector<std::size_t>, std::uint64_t>> fwd_memo;
    std::unordered_map<std::size_t, std::uint64_t> bwd_memo;  // max submit over co-closure
    auto fwd_info = [&](std::size_t t) -> const std::pair<std::vector<std::size_t>, std::uint64_t>& {
        auto it = fwd_memo.find(t);
        if (it == fwd_memo.end()) {
            auto cl = closure(t, fwd);
            std::uint64_t min_rel = TaskRecord::kNotReleased;
            for (std::size_t x : cl) min_rel = std::min(min_rel, tasks_[x].release_stamp);
            std::sort(cl.begin(), cl.end());
            it = fwd_memo.emplace(t, std::make_pair(std::move(cl), min_rel)).first;
        }
        return it->second;
    };
    auto bwd_max_submit = [&](std::size_t t) {
        auto it = bwd_memo.find(t);
        if (it == bwd_memo.end()) {
            std::uint64_t max_sub = 0;
            for (std::size_t y : closure(t, bwd)) {
                max_sub = std::max(max_sub, tasks_[y].submit_stamp);
            }
            it = bwd_memo.emplace(t, max_sub).first;
        }
        return it->second;
    };

    for (const auto& [key, witness] : pairs) {
        (void)key;
        // Order the pair by registration: `first` must happen-before `second`.
        std::size_t wa = witness.first, wb = witness.second;
        std::size_t a = accs[wa].task, b = accs[wb].task;
        if (tasks_[a].submit_stamp > tasks_[b].submit_stamp) {
            std::swap(a, b);
            std::swap(wa, wb);
        }
        const auto& [fa, min_rel] = fwd_info(a);
        const bool reaches = std::binary_search(fa.begin(), fa.end(), b);
        const bool released_before = min_rel < bwd_max_submit(b);
        if (reaches || released_before) continue;

        std::ostringstream os;
        os << "tasks ";
        describe_task(os, tasks_[a], tasks_[a].accesses[accs[wa].acc]);
        os << " and ";
        describe_task(os, tasks_[b], tasks_[b].accesses[accs[wb].acc]);
        os << " access overlapping regions with a writer but no happens-before path orders them";
        Violation v;
        v.task_a = tasks_[a].id;
        v.task_b = tasks_[b].id;
        v.message = os.str();
        report.violations.push_back(std::move(v));
    }

    // Deterministic report order (pairs map iteration order is not).
    std::sort(report.violations.begin(), report.violations.end(),
              [](const Violation& x, const Violation& y) {
                  return std::tie(x.task_a, x.task_b) < std::tie(y.task_a, y.task_b);
              });
    return report;
}

}  // namespace dfamr::verify
