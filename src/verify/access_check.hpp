// Access-level checker — catches task bodies touching bytes they never
// declared (the dominant bug class in task-based MPI hybrids: an access
// missing from the in/out/inout list becomes a silent data race).
//
// Model: while a task body runs, a per-thread table holds the task's
// declared regions. A checked access verifies every byte it touches against
// that table:
//   * reads  require coverage by the union of In/InOut regions,
//   * writes require coverage by the union of Out/InOut regions
//     (reading an Out-only region is flagged too: out promises no input).
// Contexts that declare nothing are unconstrained: threads outside any task
// body (mpi_only / fork-join master paths) and tasks whose deps list is
// empty or all-empty-regions (pure compute tasks opt out of the region
// model entirely, matching the registry's "no deps, no ordering" rule).
// Violations throw AccessViolation with a precise report (task label, node
// id, offending byte range, declared regions) which surfaces at the next
// taskwait like any other task error.
//
// Wiring: AccessChecker (a tasking::VerifyHook) installs/removes the table
// around every task body; nested bodies push/pop a stack. Hot paths use the
// DFAMR_CHECK_* macros below, which compile to nothing unless the build
// defines DFAMR_VERIFY — the OFF configuration pays zero overhead. The
// underlying functions and checked_span are always compiled, so tests can
// exercise the checker in any build via ScopedDeclaredRegions.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>

#include "common/error.hpp"
#include "tasking/dependency.hpp"
#include "tasking/verify_hook.hpp"

namespace dfamr::verify {

/// Thrown on an access outside the declared regions of the running task.
class AccessViolation : public Error {
public:
    explicit AccessViolation(const std::string& what) : Error(what) {}
};

/// Checks [p, p+n) against the current thread's declared-region table.
/// No-op in unconstrained contexts; throws AccessViolation on failure.
void check_access(const void* p, std::size_t n, bool is_write);

inline void check_read(const void* p, std::size_t n) { check_access(p, n, false); }
inline void check_write(const void* p, std::size_t n) { check_access(p, n, true); }

template <typename T>
void check_read(std::span<const T> s) {
    check_read(s.data(), s.size_bytes());
}
template <typename T>
void check_write(std::span<T> s) {
    check_write(s.data(), s.size_bytes());
}

/// True while the calling thread runs a body with a non-trivial declared
/// access list (i.e. checks are actually enforced right now).
bool access_checking_active();

// ---- wire-region registry -------------------------------------------------
//
// The per-thread declared-region table above cannot see the transport: a
// net::Endpoint reader thread (or the delivery scheduler) memcpy-ing an
// incoming payload into a posted receive buffer runs outside any task body,
// so those writes — including every ghost-exchange landing zone — passed
// unchecked. The wire-region registry closes that blind spot: posting a
// receive registers its buffer [base, base+size) process-globally, the
// delivery paths validate each payload write against the registry, and
// matching/cancelling the receive unregisters it. A wire-path write that
// is not fully inside one registered in-flight buffer throws
// AccessViolation (on the sender/scheduler thread, where the bug is).
//
// The functions are always compiled so tests can drive them in any build;
// production call sites go through the DFAMR_WIRE_* macros below, which
// compile to nothing unless DFAMR_VERIFY is defined.

/// Registers an in-flight receive buffer. Overlapping or duplicate-base
/// registrations are an error (two posted receives may not share bytes).
void register_wire_region(const void* base, std::size_t size, const char* tag);

/// Drops a registration by its base pointer. Unknown base is an error
/// (catches double-unregister / unregister-before-register bugs).
void unregister_wire_region(const void* base);

/// Validates a wire-path write of [p, p+n): it must fall entirely inside
/// one registered region. Throws AccessViolation otherwise. n == 0 is a
/// no-op (empty payloads write nothing).
void check_wire_write(const void* p, std::size_t n);

/// Number of currently registered wire regions (leak checks in tests).
std::size_t wire_regions_registered();

/// RAII: constrains the calling thread to `deps` for the current scope.
/// Used by AccessChecker around task bodies and by tests directly. Nests.
class ScopedDeclaredRegions {
public:
    ScopedDeclaredRegions(const char* label, std::uint64_t task_id,
                          std::span<const tasking::Dep> deps);
    ~ScopedDeclaredRegions();

    ScopedDeclaredRegions(const ScopedDeclaredRegions&) = delete;
    ScopedDeclaredRegions& operator=(const ScopedDeclaredRegions&) = delete;
};

/// Span whose element accesses are validated against the declared regions.
/// Mutable element access checks write permission, const access read
/// permission; `raw()` is the deliberate unchecked escape hatch.
template <typename T>
class checked_span {
public:
    checked_span() = default;
    explicit checked_span(std::span<T> s) : span_(s) {}

    std::size_t size() const { return span_.size(); }
    bool empty() const { return span_.empty(); }

    T& operator[](std::size_t i) const {
        if constexpr (std::is_const_v<T>) {
            check_read(&span_[i], sizeof(T));
        } else {
            check_write(&span_[i], sizeof(T));
        }
        return span_[i];
    }

    /// Read-checked load (also for mutable T, where operator[] would demand
    /// write permission).
    std::remove_const_t<T> load(std::size_t i) const {
        check_read(&span_[i], sizeof(T));
        return span_[i];
    }
    /// Write-checked store.
    void store(std::size_t i, std::remove_const_t<T> value) const
        requires(!std::is_const_v<T>)
    {
        check_write(&span_[i], sizeof(T));
        span_[i] = value;
    }

    std::span<T> raw() const { return span_; }

private:
    std::span<T> span_;
};

template <typename T>
checked_span<T> checked(std::span<T> s) {
    return checked_span<T>(s);
}

/// VerifyHook that enforces the declared-region table around task bodies.
/// Purely thread-local state: the graph-event callbacks are no-ops.
class AccessChecker final : public tasking::VerifyHook {
public:
    void on_body_start(const tasking::DepNode& node, const char* label,
                       std::span<const tasking::Dep> deps) override;
    void on_body_end(const tasking::DepNode& node) override;
};

}  // namespace dfamr::verify

// Hot-path instrumentation: active only in DFAMR_VERIFY builds so the
// default configuration keeps its exact codegen.
#if defined(DFAMR_VERIFY)
#define DFAMR_CHECK_READ(p, n) ::dfamr::verify::check_read((p), (n))
#define DFAMR_CHECK_WRITE(p, n) ::dfamr::verify::check_write((p), (n))
/// Wraps a std::span in a checked_span (ON) or passes it through (OFF);
/// call sites may use only the interface common to both: operator[], size(),
/// empty().
#define DFAMR_CHECKED_SPAN(s) ::dfamr::verify::checked(s)
#define DFAMR_WIRE_REGISTER(p, n, tag) ::dfamr::verify::register_wire_region((p), (n), (tag))
#define DFAMR_WIRE_UNREGISTER(p) ::dfamr::verify::unregister_wire_region(p)
#define DFAMR_CHECK_WIRE_WRITE(p, n) ::dfamr::verify::check_wire_write((p), (n))
#else
#define DFAMR_CHECK_READ(p, n) ((void)0)
#define DFAMR_CHECK_WRITE(p, n) ((void)0)
#define DFAMR_CHECKED_SPAN(s) (s)
#define DFAMR_WIRE_REGISTER(p, n, tag) ((void)0)
#define DFAMR_WIRE_UNREGISTER(p) ((void)0)
#define DFAMR_CHECK_WIRE_WRITE(p, n) ((void)0)
#endif
