#include "tasking/runtime.hpp"

#include <chrono>
#include <exception>

#include "common/error.hpp"
#include "tasking/verify_hook.hpp"

namespace dfamr::tasking {

namespace {
thread_local Runtime* tls_runtime = nullptr;
thread_local Task* tls_task = nullptr;

constexpr auto kIdleWait = std::chrono::microseconds(200);
// Failed find_task rounds (each a full steal scan + poll) before parking.
constexpr int kSpinRounds = 64;
}  // namespace

thread_local Runtime::Worker* Runtime::tls_worker_ = nullptr;

Runtime* Runtime::current() { return tls_runtime; }
Task* Runtime::current_task() { return tls_task; }

Runtime::Runtime(int workers) {
    DFAMR_REQUIRE(workers >= 0, "worker count must be non-negative");
    root_.label = "<root>";
    worker_state_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
        auto w = std::make_unique<Worker>();
        w->owner = this;
        w->index = i;
        // Stagger initial steal-scan start points so thieves don't all hammer
        // worker 0 first.
        w->next_victim = static_cast<unsigned>(i + 1);
        worker_state_.push_back(std::move(w));
    }
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

Runtime::~Runtime() {
    try {
        taskwait();
    } catch (...) {
        // A task error surfacing during teardown cannot be rethrown further.
    }
    if (verify_ != nullptr) {
        std::lock_guard lock(verify_mutex_);
        verify_->on_shutdown();
    }
    shutting_down_.store(true, std::memory_order_seq_cst);
    work_epoch_.fetch_add(1, std::memory_order_seq_cst);
    {
        // Empty critical section: a parker between its predicate check and
        // its wait would otherwise miss the notify below.
        std::lock_guard lock(park_mutex_);
    }
    ready_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void Runtime::set_verify_hook(VerifyHook* hook) {
    std::lock_guard lock(verify_mutex_);
    verify_ = hook;
    registry_.set_verify_hook(hook);
}

void Runtime::submit(std::function<void()> body, std::vector<Dep> deps, const char* label) {
    auto task = std::make_shared<Task>();
    task->body = std::move(body);
    task->deps = std::move(deps);
    task->label = label;

    const bool nested = (tls_runtime == this && tls_task != nullptr);
    task->parent = nested ? tls_task : &root_;
    if (nested) task->parent_ref = tls_task->shared_from_this();

    register_and_release_guard(task);
}

void Runtime::register_and_release_guard(const TaskPtr& task) {
    task->node_id = next_task_id_.fetch_add(1, std::memory_order_relaxed);
    task->self_ref = task;
    // Submission guard: one artificial predecessor held while accesses are
    // registered, so a predecessor releasing concurrently cannot make the
    // task ready (and runnable) halfway through registration.
    task->pred_count.store(1, std::memory_order_relaxed);
    stats_.tasks_submitted.fetch_add(1, std::memory_order_relaxed);
    for (Task* p = task->parent; p != nullptr; p = p->parent) {
        p->descendants_live.fetch_add(1, std::memory_order_relaxed);
    }
    {
        std::unique_lock vlock(verify_mutex_, std::defer_lock);
        if (verify_ != nullptr) {
            // Serialized mode: the whole registration becomes one atomic
            // step in the total order DepLint's logical clock requires.
            vlock.lock();
            verify_->on_node_registered(*task, task->label, std::span<const Dep>(task->deps));
        }
        const int added = registry_.register_accesses(task, std::span<const Dep>(task->deps));
        stats_.edges_added.fetch_add(static_cast<std::uint64_t>(added),
                                     std::memory_order_relaxed);
    }
    // Drop the guard; whoever brings pred_count to zero schedules the task.
    if (task->pred_count.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        enqueue_ready(task.get());
        wake_workers(1);
    }
}

void Runtime::enqueue_ready(Task* task) {
    if (tls_worker_ != nullptr && tls_worker_->owner == this) {
        tls_worker_->deque.push(task);
        return;
    }
    {
        std::lock_guard lock(inject_mutex_);
        inject_queue_.push_back(task);
    }
    inject_size_.fetch_add(1, std::memory_order_release);
}

void Runtime::wake_workers(int newly_ready) {
    if (newly_ready <= 0 || workers_.empty()) return;
    // Dekker handshake with park(): bump the epoch after publishing work,
    // then look for parked workers. Either we see them (and notify), or
    // they see the new epoch (and skip the wait). parked_workers_ only
    // counts workers committed to sleeping (incremented under park_mutex_),
    // so the parked == 0 fast path — two atomics, no mutex — is the common
    // case while the pool is busy.
    work_epoch_.fetch_add(1, std::memory_order_seq_cst);
    const int parked = parked_workers_.load(std::memory_order_seq_cst);
    if (parked <= 0) return;
    // Suppress redundant futex wakes: a notified worker takes microseconds
    // to come up, during which a fast producer would otherwise pay a
    // syscall per submission. Parkers reset pending_wakes_ before sleeping,
    // so a stale count cannot suppress a needed notify across sleep cycles.
    const int pending = pending_wakes_.load(std::memory_order_seq_cst);
    const int nk = newly_ready < parked ? newly_ready : parked;
    const int k = pending > 0 ? nk - pending : nk;
    if (k <= 0) return;
    pending_wakes_.fetch_add(k, std::memory_order_seq_cst);
    stats_.wakeups.fetch_add(static_cast<std::uint64_t>(k), std::memory_order_relaxed);
    // The empty critical section orders this thread against a parker that
    // advertised but has not yet blocked: either we acquire after it waits
    // (notify lands) or it acquires after us and its predicate re-read sees
    // the bumped epoch. Notifying outside the lock avoids waking a thread
    // straight into a held mutex.
    { std::lock_guard lock(park_mutex_); }
    for (int i = 0; i < k; ++i) ready_cv_.notify_one();
}

bool Runtime::work_available() const {
    if (inject_size_.load(std::memory_order_acquire) != 0) return true;
    for (const auto& w : worker_state_) {
        if (w->deque.size_estimate() > 0) return true;
    }
    return false;
}

void Runtime::park(Worker& me) {
    (void)me;
    // Cheap pre-check outside the lock: the caller already spun through
    // kSpinRounds failed find_task() scans, but the queues can refill at
    // any moment.
    if (work_available() || shutting_down_.load(std::memory_order_acquire)) return;
    std::unique_lock lock(park_mutex_);
    // Dekker handshake with wake_workers(): capture the epoch, advertise as
    // parked, then re-read the epoch (all seq_cst). A producer bumps the
    // epoch after publishing and only skips the notify when it reads
    // parked_workers_ == 0 — the seq_cst total order rules out "producer
    // misses the parker AND the parker misses the bump". Reading the bump
    // also acquire-synchronizes with the publish, so the work_available()
    // recheck below sees the published work.
    const std::uint64_t epoch = work_epoch_.load(std::memory_order_seq_cst);
    parked_workers_.fetch_add(1, std::memory_order_seq_cst);
    const auto woken = [&] {
        return work_epoch_.load(std::memory_order_seq_cst) != epoch ||
               shutting_down_.load(std::memory_order_relaxed);
    };
    if (!woken() && !work_available()) {
        // Entering a real sleep: clear the in-flight notify estimate so no
        // stale count from a notify that landed on nobody can suppress the
        // wake this sleep needs. Clearing while other sleepers still have
        // notifies in flight merely lets producers over-notify.
        pending_wakes_.store(0, std::memory_order_seq_cst);
        stats_.parks.fetch_add(1, std::memory_order_relaxed);
        if (has_polling_.load(std::memory_order_relaxed)) {
            // Bounded sleep so the TAMPI progress engine keeps being polled
            // even when no new work arrives.
            ready_cv_.wait_for(lock, kIdleWait, woken);
        } else {
            ready_cv_.wait(lock, woken);
        }
        // Consume (at most) the notify that woke us; drifting negative just
        // re-enables producer notifies, which is the safe direction.
        pending_wakes_.fetch_sub(1, std::memory_order_seq_cst);
    }
    parked_workers_.fetch_sub(1, std::memory_order_relaxed);
}

void Runtime::signal_idle() {
    idle_epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (idle_waiters_.load(std::memory_order_seq_cst) > 0) {
        std::lock_guard lock(idle_mutex_);
        idle_cv_.notify_all();
    }
}

void Runtime::wait_idle_briefly() {
    idle_waiters_.fetch_add(1, std::memory_order_seq_cst);
    const std::uint64_t epoch = idle_epoch_.load(std::memory_order_seq_cst);
    {
        std::unique_lock lock(idle_mutex_);
        // Bounded: the caller's done() predicate is not observable here, so
        // never sleep longer than kIdleWait without rechecking it.
        idle_cv_.wait_for(lock, kIdleWait, [&] {
            return idle_epoch_.load(std::memory_order_relaxed) != epoch;
        });
    }
    idle_waiters_.fetch_sub(1, std::memory_order_relaxed);
}

void Runtime::run_body(Task* task) {
    Runtime* prev_rt = tls_runtime;
    Task* prev_task = tls_task;
    tls_runtime = this;
    tls_task = task;
    // verify_ is only mutated while no tasks are in flight (attach-before-
    // submit contract), so the unlocked reads here are safe.
    if (verify_ != nullptr) {
        verify_->on_body_start(*task, task->label, std::span<const Dep>(task->deps));
    }
    try {
        if (task->body) task->body();
    } catch (...) {
        std::lock_guard lock(error_mutex_);
        if (!first_error_) first_error_ = std::current_exception();
        error_pending_.store(true, std::memory_order_relaxed);
    }
    if (verify_ != nullptr) verify_->on_body_end(*task);
    tls_runtime = prev_rt;
    tls_task = prev_task;
}

void Runtime::execute(Task* task) {
    Worker* me = (tls_worker_ != nullptr && tls_worker_->owner == this) ? tls_worker_ : nullptr;
    run_body(task);
    Task* next = finish_body(task);
    if (me != nullptr) {
        // Immediate-successor fast path: park the warm successor in the
        // worker's next_task slot; the worker loop runs it before touching
        // any queue. The slot can be occupied when execute() is reentered
        // through a nested taskwait — then the deque takes the spill.
        if (next == nullptr) return;
        if (me->next_task == nullptr) {
            me->next_task = next;
        } else {
            me->deque.push(next);
            wake_workers(1);
        }
    } else {
        // Non-worker threads (inline execution, help_until) chain the
        // immediate successors right here, same warm-cache effect.
        while (next != nullptr) {
            Task* chained = next;
            run_body(chained);
            next = finish_body(chained);
        }
    }
}

Task* Runtime::finish_body(Task* task) {
    stats_.tasks_executed.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard lock(task->node_lock);
        task->body_done = true;
    }
    return complete_if_ready(task, /*allow_immediate=*/true);
}

Task* Runtime::complete_if_ready(Task* task, bool allow_immediate) {
    std::vector<DepNode*> released;
    {
        std::unique_lock vlock(verify_mutex_, std::defer_lock);
        if (verify_ != nullptr) vlock.lock();
        {
            std::lock_guard lock(task->node_lock);
            if (task->completed.load(std::memory_order_relaxed) || !task->body_done ||
                task->external_events > 0) {
                return nullptr;
            }
            task->completed.store(true, std::memory_order_release);
            // Under the same node lock as the successor drain: a concurrent
            // add_edge either got its edge in (and is drained below) or
            // observes dep_released and elides.
            task->dep_released.store(true, std::memory_order_release);
            released = std::move(task->successors);
            task->successors.clear();
        }
        if (verify_ != nullptr) verify_->on_node_released(*task);
    }

    bool quiescent = false;
    for (Task* p = task->parent; p != nullptr; p = p->parent) {
        if (p->descendants_live.fetch_sub(1, std::memory_order_acq_rel) == 1) quiescent = true;
    }

    Task* immediate = nullptr;
    int newly_ready = 0;
    for (DepNode* succ_node : released) {
        auto* succ = static_cast<Task*>(succ_node);
        if (succ->pred_count.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            if (allow_immediate && immediate == nullptr) {
                immediate = succ;
                stats_.immediate_successor_hits.fetch_add(1, std::memory_order_relaxed);
            } else {
                enqueue_ready(succ);
                ++newly_ready;
            }
        }
    }
    // Wakeups proportional to newly ready work — no broadcast.
    if (newly_ready > 0) wake_workers(newly_ready);

    // Signal idle waiters only when some ancestor's subtree just drained —
    // that is the transition taskwait blocks on. Waiters on other
    // predicates (taskwait_on's completed flag, help_until conditions) sit
    // in kIdleWait-bounded sleeps and recheck on their own; skipping the
    // per-completion broadcast keeps completions off idle_mutex_ entirely
    // while a taskwait is pending above a deep graph.
    if (quiescent) signal_idle();

    // Drop self-ownership last; the registry may still hold references
    // until garbage collection, and `immediate` is a different task.
    TaskPtr self = std::move(task->self_ref);
    return immediate;
}

Task* Runtime::find_task(Worker& me) {
    if (Task* t = me.next_task; t != nullptr) {
        me.next_task = nullptr;
        return t;
    }
    if (Task* t = me.deque.pop(); t != nullptr) return t;
    if (Task* t = pop_injected(); t != nullptr) return t;
    return try_steal(me);
}

Task* Runtime::pop_injected() {
    if (inject_size_.load(std::memory_order_acquire) == 0) return nullptr;
    std::lock_guard lock(inject_mutex_);
    if (inject_queue_.empty()) return nullptr;
    Task* t = inject_queue_.front();
    inject_queue_.pop_front();
    inject_size_.fetch_sub(1, std::memory_order_relaxed);
    return t;
}

Task* Runtime::try_steal(Worker& me) {
    const int n = static_cast<int>(worker_state_.size());
    if (n <= 1) return nullptr;
    for (int i = 0; i < n; ++i) {
        const unsigned v = (me.next_victim + static_cast<unsigned>(i)) % static_cast<unsigned>(n);
        if (static_cast<int>(v) == me.index) continue;
        if (Task* t = worker_state_[v]->deque.steal(); t != nullptr) {
            me.next_victim = v;  // keep draining the same loaded victim
            stats_.steals.fetch_add(1, std::memory_order_relaxed);
            return t;
        }
    }
    me.next_victim = (me.next_victim + 1) % static_cast<unsigned>(n);
    stats_.steal_fails.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
}

void Runtime::worker_loop(int worker_index) {
    tls_runtime = this;
    Worker& me = *worker_state_[static_cast<std::size_t>(worker_index)];
    tls_worker_ = &me;
    int idle_rounds = 0;
    for (;;) {
        Task* t = find_task(me);
        if (t != nullptr) {
            idle_rounds = 0;
            execute(t);
            continue;
        }
        if (shutting_down_.load(std::memory_order_acquire)) break;
        if (has_polling_.load(std::memory_order_relaxed)) run_polling_services();
        if (++idle_rounds < kSpinRounds) continue;
        idle_rounds = 0;
        park(me);
    }
    tls_worker_ = nullptr;
    tls_runtime = nullptr;
}

bool Runtime::run_polling_services() {
    std::unique_lock lock(polling_mutex_);
    bool progressed = false;
    for (auto it = polling_services_.begin(); it != polling_services_.end();) {
        if (it->poll()) {
            progressed = true;
            ++it;
        } else {
            it = polling_services_.erase(it);
        }
    }
    has_polling_.store(!polling_services_.empty(), std::memory_order_relaxed);
    return progressed;
}

void Runtime::wait_until(const std::function<bool()>& done) {
    Worker* me = (tls_worker_ != nullptr && tls_worker_->owner == this) ? tls_worker_ : nullptr;
    for (;;) {
        if (done()) return;
        Task* t = nullptr;
        if (me != nullptr) {
            t = find_task(*me);
        } else {
            // Non-worker threads help too: injection queue first (FIFO — the
            // whole scheduler when workers == 0), then relieve the workers.
            t = pop_injected();
            if (t == nullptr) {
                for (const auto& w : worker_state_) {
                    if ((t = w->deque.steal()) != nullptr) {
                        stats_.steals.fetch_add(1, std::memory_order_relaxed);
                        break;
                    }
                }
            }
        }
        if (t != nullptr) {
            execute(t);
            continue;
        }
        if (has_polling_.load(std::memory_order_relaxed)) run_polling_services();
        if (done()) return;
        wait_idle_briefly();
    }
}

void Runtime::report_external_error(std::exception_ptr err) {
    if (!err) return;
    std::lock_guard lock(error_mutex_);
    if (!first_error_) first_error_ = std::move(err);
    error_pending_.store(true, std::memory_order_relaxed);
}

void Runtime::taskwait() {
    Task* ctx = (tls_runtime == this && tls_task != nullptr) ? tls_task : &root_;
    wait_until([ctx] { return ctx->descendants_live.load(std::memory_order_acquire) == 0; });
    std::exception_ptr err;
    {
        std::lock_guard lock(error_mutex_);
        err = first_error_;
        first_error_ = nullptr;
        error_pending_.store(false, std::memory_order_relaxed);
    }
    if (err) std::rethrow_exception(err);
}

void Runtime::taskwait_on(std::vector<Dep> deps) {
    auto sentinel = std::make_shared<Task>();
    sentinel->label = "<taskwait-on>";
    sentinel->deps = std::move(deps);
    sentinel->parent = &root_;  // not a descendant of the caller: a plain taskwait
                                // afterwards must still be able to run it inline.
    register_and_release_guard(sentinel);
    Task* raw = sentinel.get();  // kept alive by the local shared_ptr
    wait_until([raw] { return raw->completed.load(std::memory_order_acquire); });
}

Task* Runtime::increase_current_task_events(int n) {
    DFAMR_REQUIRE(tls_runtime == this && tls_task != nullptr,
                  "external events can only be registered from inside a task");
    DFAMR_REQUIRE(n > 0, "event increase must be positive");
    std::lock_guard lock(tls_task->node_lock);
    tls_task->external_events += n;
    return tls_task;
}

void Runtime::decrease_task_events(Task* task, int n) {
    DFAMR_REQUIRE(task != nullptr && n > 0, "invalid event decrease");
    {
        std::lock_guard lock(task->node_lock);
        DFAMR_REQUIRE(task->external_events >= n, "event counter underflow");
        task->external_events -= n;
    }
    // May complete the task; `task` must not be touched afterwards (the
    // completing thread drops the task's self-ownership).
    [[maybe_unused]] Task* next = complete_if_ready(task, /*allow_immediate=*/false);
    DFAMR_ASSERT(next == nullptr);
}

void Runtime::register_polling_service(std::string name, std::function<bool()> poll) {
    {
        std::lock_guard lock(polling_mutex_);
        polling_services_.push_back(PollingService{std::move(name), std::move(poll)});
        has_polling_.store(true, std::memory_order_relaxed);
    }
    // Re-arm any worker parked in the unbounded (no-polling) wait into the
    // bounded polling sleep.
    work_epoch_.fetch_add(1, std::memory_order_seq_cst);
    std::lock_guard lock(park_mutex_);
    ready_cv_.notify_all();
}

void Runtime::unregister_polling_service(const std::string& name) {
    std::lock_guard lock(polling_mutex_);
    std::erase_if(polling_services_, [&](const PollingService& s) { return s.name == name; });
    has_polling_.store(!polling_services_.empty(), std::memory_order_relaxed);
}

RuntimeStats Runtime::stats() const {
    RuntimeStats s;
    s.tasks_submitted = stats_.tasks_submitted.load(std::memory_order_relaxed);
    s.tasks_executed = stats_.tasks_executed.load(std::memory_order_relaxed);
    s.immediate_successor_hits =
        stats_.immediate_successor_hits.load(std::memory_order_relaxed);
    s.edges_added = stats_.edges_added.load(std::memory_order_relaxed);
    s.edges_elided = registry_.edges_elided();
    s.steals = stats_.steals.load(std::memory_order_relaxed);
    s.steal_fails = stats_.steal_fails.load(std::memory_order_relaxed);
    s.parks = stats_.parks.load(std::memory_order_relaxed);
    s.wakeups = stats_.wakeups.load(std::memory_order_relaxed);
    return s;
}

}  // namespace dfamr::tasking
