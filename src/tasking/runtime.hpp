// Data-flow tasking runtime — the OmpSs-2 substitute.
//
// Features used by the paper's parallelization and provided here:
//  * tasks with in/out/inout region dependencies and multidependencies
//  * nested tasks and taskwait (waits for all descendants of the caller)
//  * taskwait with dependencies (OmpSs-2 `taskwait in(...)`), used by the
//    delayed-checksum optimization of §IV-C
//  * external events (the mechanism TAMPI uses to bind MPI request
//    completion to task dependency release): a task's dependencies are
//    released only when its body has finished AND its event counter is zero
//  * polling services (nanos6-style): callbacks invoked by idle workers,
//    used by the TAMPI progress engine
//  * immediate-successor scheduling: a worker that completes a task runs a
//    just-readied successor next, reusing warm cache state (the paper's
//    stated cause of the IPC improvement)
//
// Scheduler architecture (work stealing; see DESIGN.md §11): each worker
// owns a lock-free Chase–Lev deque (LIFO for the owner, FIFO for thieves)
// plus a `next_task` slot for the immediate successor, non-worker threads
// submit through a mutex-protected injection queue, and idle workers spin
// briefly, steal from victims chosen by rotating scan, then park on a
// condition variable. Wakeups are targeted: a producer wakes at most as
// many parked workers as it made tasks ready. There is no global graph
// mutex — the dependency registry is sharded (see dependency.hpp) and task
// state transitions are guarded by per-task spinlocks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/lockdep.hpp"
#include "tasking/dependency.hpp"
#include "tasking/ws_deque.hpp"

namespace dfamr::tasking {

class Runtime;

/// A task instance. Public only as an opaque handle for the external-events
/// API (TaskEventCounter) — users interact through Runtime.
struct Task final : DepNode, std::enable_shared_from_this<Task> {
    std::function<void()> body;
    std::vector<Dep> deps;
    const char* label = "";

    Task* parent = nullptr;
    /// Keeps the parent alive while children may still walk the ancestor
    /// chain (the root task is owned by the Runtime and has no ref).
    std::shared_ptr<Task> parent_ref;
    /// Live descendants (children + their descendants).
    std::atomic<std::int64_t> descendants_live{0};
    /// Body finished executing. Guarded by node_lock.
    bool body_done = false;
    /// Outstanding external events (TAMPI-bound MPI requests). Guarded by
    /// node_lock.
    int external_events = 0;
    /// Fully complete: body done, events zero, deps released.
    std::atomic<bool> completed{false};
    /// Self-ownership from submission until completion: the scheduler's
    /// deques hold raw pointers, so the task keeps itself alive (the
    /// registry's interval references alone are not reliable — a later
    /// writer on the same region supersedes a pending task's entry).
    std::shared_ptr<Task> self_ref;
};

/// Aggregate runtime counters (observable by tests and benches).
///
/// Consistency: counters are maintained as relaxed atomics; stats() is
/// exact once the runtime is quiescent (after a top-level taskwait).
/// Note that `edges_added` alone is timing-dependent with workers > 0: a
/// conflicting predecessor that completes before the successor is submitted
/// needs no edge. `edges_added + edges_elided` is the timing-independent
/// conflict count (up to garbage collection, see
/// DependencyRegistry::edges_elided).
struct RuntimeStats {
    std::uint64_t tasks_submitted = 0;
    std::uint64_t tasks_executed = 0;
    std::uint64_t immediate_successor_hits = 0;
    std::uint64_t edges_added = 0;
    std::uint64_t edges_elided = 0;
    // Scheduler telemetry (new with the work-stealing scheduler):
    std::uint64_t steals = 0;       // tasks obtained from another worker's deque
    std::uint64_t steal_fails = 0;  // full victim scans that found nothing
    std::uint64_t parks = 0;        // times a worker blocked on the idle CV
    std::uint64_t wakeups = 0;      // targeted notify_one calls issued
};

class Runtime {
public:
    /// Spawns `workers` worker threads. `workers == 0` is valid: tasks then
    /// execute inline on the submitting thread at taskwait points — useful
    /// for deterministic unit tests.
    explicit Runtime(int workers);
    ~Runtime();

    Runtime(const Runtime&) = delete;
    Runtime& operator=(const Runtime&) = delete;

    /// Submits a task with data-flow dependencies. May be called from the
    /// owning thread or from inside a task (nesting).
    void submit(std::function<void()> body, std::vector<Dep> deps, const char* label = "");

    /// Waits until every descendant task of the calling context completed.
    void taskwait();

    /// OmpSs-2 "taskwait with dependencies": waits only until the listed
    /// regions' current producers complete, without draining the whole graph.
    void taskwait_on(std::vector<Dep> deps);

    /// --- External events (TAMPI integration) ---------------------------
    /// Must be called from inside a task body: registers `n` pending events
    /// on the current task and returns its handle for later decrease.
    Task* increase_current_task_events(int n);
    /// May be called from any thread (e.g. the progress engine).
    void decrease_task_events(Task* task, int n);

    /// Cooperative wait: executes ready tasks and runs polling services on
    /// the calling thread until `done()` returns true. This is the
    /// task-scheduling-point mechanism behind blocking-mode TAMPI: the
    /// worker is never blocked, it helps with other tasks instead.
    void help_until(const std::function<bool()>& done) { wait_until(done); }

    /// Registers a polling service run periodically by idle workers and by
    /// waiting threads. Return value `true` keeps the service registered.
    void register_polling_service(std::string name, std::function<bool()> poll);
    void unregister_polling_service(const std::string& name);

    /// Records an error raised outside any task body — e.g. by a progress
    /// engine detecting a communication timeout. Surfaces at the next
    /// taskwait exactly like a task-body exception, instead of hanging the
    /// worker pool on a task that will never complete.
    void report_external_error(std::exception_ptr err);

    /// True while an error (task-body or external) is recorded and not yet
    /// consumed by a taskwait. Progress engines use this to stop waiting on
    /// transfers of a doomed parallel phase: the next taskwait rethrows no
    /// matter what, so requests that cannot complete any more should be
    /// flushed instead of holding the drain until their deadlines expire.
    bool has_pending_error() const {
        return error_pending_.load(std::memory_order_relaxed);
    }

    /// The runtime the calling thread is currently executing a task of
    /// (nullptr outside of tasks).
    static Runtime* current();
    /// The task the calling thread is executing (nullptr outside of tasks).
    static Task* current_task();

    int worker_count() const { return static_cast<int>(workers_.size()); }

    /// Index of the calling thread within THIS runtime's worker pool, or -1
    /// when the caller is not one of its workers (the owning thread, an
    /// external event source, or another runtime's worker). Used to
    /// attribute traced work to the lane that actually executed it.
    int worker_index_of_calling_thread() const {
        return tls_worker_ != nullptr && tls_worker_->owner == this ? tls_worker_->index : -1;
    }

    RuntimeStats stats() const;

    /// Attaches a verification observer (see tasking/verify_hook.hpp) that
    /// sees every node registration, edge, release, body execution window,
    /// and the shutdown. Attach before submitting tasks; detach with
    /// nullptr. Zero-cost when detached (a null-pointer check per event).
    /// While attached, registrations and releases are serialized on a
    /// dedicated mutex so the hook observes one total order (DepLint's
    /// logical-clock contract) even though the registry is sharded.
    void set_verify_hook(VerifyHook* hook);

private:
    using TaskPtr = std::shared_ptr<Task>;

    /// Per-worker scheduler state. Owned by the Runtime; `deque` bottom end
    /// and `next_task`/`next_victim` are touched only by the owning thread.
    struct Worker {
        WsDeque<Task> deque;
        Task* next_task = nullptr;  // immediate successor, bypasses the deque
        Runtime* owner = nullptr;
        int index = 0;
        unsigned next_victim = 0;  // rotating steal scan start
    };

    /// Relaxed atomic counters behind RuntimeStats.
    struct StatsCounters {
        std::atomic<std::uint64_t> tasks_submitted{0};
        std::atomic<std::uint64_t> tasks_executed{0};
        std::atomic<std::uint64_t> immediate_successor_hits{0};
        std::atomic<std::uint64_t> edges_added{0};
        std::atomic<std::uint64_t> steals{0};
        std::atomic<std::uint64_t> steal_fails{0};
        std::atomic<std::uint64_t> parks{0};
        std::atomic<std::uint64_t> wakeups{0};
    };

    void worker_loop(int worker_index);
    /// Runs the task body with the thread-local context + verify hooks set.
    void run_body(Task* task);
    /// Runs one task; the immediate successor goes to the worker's
    /// next_task slot (worker threads) or is chained inline (other threads).
    void execute(Task* task);
    /// Marks the body done and releases deps if fully complete. Returns an
    /// immediate successor made ready by the release (if any).
    Task* finish_body(Task* task);
    Task* complete_if_ready(Task* task, bool allow_immediate);
    /// Next-task slot, own deque, injection queue, then stealing.
    Task* find_task(Worker& me);
    Task* pop_injected();
    Task* try_steal(Worker& me);
    /// Puts a ready task where the calling thread can schedule it cheapest.
    void enqueue_ready(Task* task);
    /// Wakes up to `newly_ready` parked workers (targeted, not broadcast).
    void wake_workers(int newly_ready);
    /// Parks the calling worker until new work may exist (epoch change).
    void park(Worker& me);
    /// Racy hint that some queue is non-empty (pre-park recheck).
    bool work_available() const;
    /// Wakes threads blocked in wait_until (completion events).
    void signal_idle();
    void wait_idle_briefly();
    /// Runs all polling services once. Returns true if any made progress.
    bool run_polling_services();
    /// Help-execute tasks / poll until `done()` is true.
    void wait_until(const std::function<bool()>& done);
    /// Registers the task's accesses and drops the submission guard.
    void register_and_release_guard(const TaskPtr& task);

    /// The Worker owned by the calling thread, if it is a worker thread of
    /// some Runtime (check `owner` before using — threads may help other
    /// runtimes through nested taskwaits).
    static thread_local Worker* tls_worker_;

    DependencyRegistry registry_;
    std::atomic<std::uint64_t> next_task_id_{1};

    Task root_;  // implicit task for the owning (non-worker) thread

    // Worker state lives behind unique_ptr so addresses stay stable for
    // thieves while the vector is built.
    std::vector<std::unique_ptr<Worker>> worker_state_;
    std::vector<std::thread> workers_;

    // Injection queue for ready tasks produced by non-worker threads (the
    // owning thread, external event sources). FIFO: with workers == 0 this
    // is the whole scheduler and preserves deterministic submit order.
    mutable lockdep::Mutex inject_mutex_{"tasking.inject"};
    std::deque<Task*> inject_queue_;
    std::atomic<std::size_t> inject_size_{0};

    // Park/wake protocol: producers bump work_epoch_ after publishing work;
    // a parking worker captures the epoch, registers in parked_workers_,
    // rechecks the queues, then waits for an epoch change. The seq_cst
    // accesses make the publish/park handshake a Dekker pair: either the
    // producer sees the parked worker, or the parker sees the new epoch.
    // pending_wakes_ counts notifies believed to be in flight so producers
    // skip redundant futex wakes while an already-notified worker is still
    // coming up; each parker conservatively resets it before sleeping
    // (stale suppression can only cost an extra notify, never lose one).
    lockdep::Mutex park_mutex_{"tasking.park"};
    std::condition_variable_any ready_cv_;
    std::atomic<std::uint64_t> work_epoch_{0};
    std::atomic<int> parked_workers_{0};
    std::atomic<int> pending_wakes_{0};

    // Completion signal for wait_until (taskwait / help_until waiters).
    lockdep::Mutex idle_mutex_{"tasking.idle"};
    std::condition_variable_any idle_cv_;
    std::atomic<std::uint64_t> idle_epoch_{0};
    std::atomic<int> idle_waiters_{0};

    std::atomic<bool> shutting_down_{false};

    lockdep::Mutex error_mutex_{"tasking.error"};
    std::exception_ptr first_error_;
    /// Lock-free mirror of `first_error_ != nullptr` for hot-path probes.
    std::atomic<bool> error_pending_{false};

    struct PollingService {
        std::string name;
        std::function<bool()> poll;
    };
    lockdep::Mutex polling_mutex_{"tasking.polling"};
    std::vector<PollingService> polling_services_;
    std::atomic<bool> has_polling_{false};

    StatsCounters stats_;

    // Serializes registrations and releases into one total order while a
    // verify hook is attached (never taken otherwise). Lock order:
    // verify_mutex_ -> registry shard mutexes -> task node locks.
    lockdep::Mutex verify_mutex_{"tasking.verify"};
    VerifyHook* verify_ = nullptr;
};

}  // namespace dfamr::tasking
