// Data-flow dependency model (OmpSs-2-style region dependencies).
//
// A dependency is an access kind (in / out / inout) on a byte region.
// Multidependencies are expressed by passing several Dep entries for one
// task — exactly how the paper expresses a send task that reads every
// packed section of its aggregated message buffer.
//
// The DependencyRegistry computes predecessor/successor edges between
// generic DepNodes, so the same semantics drive both the real tasking
// runtime (tasking::Runtime) and the discrete-event simulator's DAG builder
// (sim::DagBuilder). This guarantees the simulated task graphs have the
// dependency structure the real runtime would enforce.
//
// Concurrency model (new with the work-stealing scheduler): the registry is
// sharded by address granule so submissions and releases touching different
// blocks proceed on different locks. Registration locks only the shards a
// task's regions map to (in ascending shard order — deadlock-free);
// dependency release takes no shard lock at all, only the releasing node's
// own spinlock. Single-threaded callers (the DES DAG builder, unit tests)
// pay one uncontended lock per touched shard.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/lockdep.hpp"
#include "common/threading.hpp"

namespace dfamr::tasking {

/// A byte range [base, base+size) used as a dependency region.
///
/// Empty regions (size == 0) are well-defined and inert: they overlap
/// nothing — not even an empty region at the same base — and registering
/// one imposes no ordering and creates no interval bookkeeping. A task
/// whose deps list is empty (or contains only empty regions) is therefore
/// immediately ready and unordered with respect to every other task.
/// DepLint checks against the same model: empty regions never conflict.
struct Region {
    std::uintptr_t base = 0;
    std::size_t size = 0;

    Region() = default;
    Region(const void* p, std::size_t n) : base(reinterpret_cast<std::uintptr_t>(p)), size(n) {}
    /// Synthetic region from an abstract id space (DES mode has no real buffers).
    static Region synthetic(std::uint64_t id, std::size_t size = 1) {
        Region r;
        r.base = id;
        r.size = size;
        return r;
    }

    std::uintptr_t end() const { return base + size; }
    bool empty() const { return size == 0; }
    bool overlaps(const Region& o) const { return base < o.end() && o.base < end(); }
};

enum class DepKind : std::uint8_t { In, Out, InOut };

struct Dep {
    DepKind kind = DepKind::In;
    Region region;
};

inline Dep in(const void* p, std::size_t n) { return {DepKind::In, Region(p, n)}; }
inline Dep out(const void* p, std::size_t n) { return {DepKind::Out, Region(p, n)}; }
inline Dep inout(const void* p, std::size_t n) { return {DepKind::InOut, Region(p, n)}; }

template <typename T>
Dep in(std::span<const T> s) {
    return in(s.data(), s.size_bytes());
}
template <typename T>
Dep out(std::span<T> s) {
    return out(s.data(), s.size_bytes());
}
template <typename T>
Dep inout(std::span<T> s) {
    return inout(s.data(), s.size_bytes());
}

inline Dep in_id(std::uint64_t id) { return {DepKind::In, Region::synthetic(id)}; }
inline Dep out_id(std::uint64_t id) { return {DepKind::Out, Region::synthetic(id)}; }
inline Dep inout_id(std::uint64_t id) { return {DepKind::InOut, Region::synthetic(id)}; }

/// Node in a dependency graph. tasking::Task and sim::DagTask derive from it.
///
/// Thread-safety: `pred_count` and `dep_released` are atomics so releases
/// racing with registrations stay well-defined; `successors` and
/// `last_edge_marker` are guarded by the per-node `node_lock` spinlock.
/// Lock order: shard mutexes (ascending) may be held when taking a node
/// lock; never the reverse, and never two node locks at once.
/// Single-threaded users (the DES simulator, unit tests) can read and write
/// the atomic fields with plain assignment/comparison syntax as before.
struct DepNode {
    std::uint64_t node_id = 0;
    /// Number of unsatisfied predecessor edges. The tasking runtime holds an
    /// extra "submission guard" count of 1 while a node's accesses are being
    /// registered so concurrent predecessor releases cannot make the node
    /// ready halfway through registration.
    std::atomic<int> pred_count{0};
    /// Nodes whose pred_count must drop when this node releases its deps.
    /// Guarded by node_lock.
    std::vector<DepNode*> successors;
    /// True once the node has released its dependencies. The store happens
    /// under node_lock (together with draining `successors`); lock-free
    /// readers only ever see it as a hint.
    std::atomic<bool> dep_released{false};
    /// Edge-dedup marker: the last successor node_id an edge (or elision)
    /// was recorded for. Guarded by node_lock.
    std::uint64_t last_edge_marker = UINT64_MAX;
    /// Guards successors / last_edge_marker / the dep_released transition.
    /// Lockdep class "dep.node", Nesting::Never: the runtime never holds two
    /// node locks at once (release drains successors by atomic decrement).
    lockdep::SpinLock node_lock{"dep.node"};

    virtual ~DepNode() = default;
};

using DepNodePtr = std::shared_ptr<DepNode>;

class VerifyHook;

/// Tracks last-writer / readers-since-write per byte interval and wires
/// reader-after-write, write-after-read and write-after-write edges.
///
/// Sharded: the address space is cut into 1 MiB granules (kGranuleBits) and
/// granule g maps to shard g mod kShardCount. Every tracked interval lies
/// entirely inside one granule (regions are split at granule boundaries on
/// registration), so each interval belongs to exactly one shard and a
/// registration only locks the shards its regions touch. Concurrent
/// registrations of non-overlapping granule sets do not contend.
///
/// When a VerifyHook is attached the caller must serialize registrations
/// and releases in one total order (the Runtime does this with a dedicated
/// verify mutex); the sharding is then irrelevant to the hook's contract.
class DependencyRegistry {
public:
    static constexpr int kShardCount = 64;       // power of two
    static constexpr unsigned kGranuleBits = 20; // 1 MiB address granules

    DependencyRegistry();

    DependencyRegistry(const DependencyRegistry&) = delete;
    DependencyRegistry& operator=(const DependencyRegistry&) = delete;
    DependencyRegistry(DependencyRegistry&&) = default;
    DependencyRegistry& operator=(DependencyRegistry&&) = default;

    /// Registers the accesses of `node`, adding predecessor edges from every
    /// conflicting earlier node that has not yet released its dependencies.
    /// Empty regions are skipped (see Region). Returns the number of
    /// predecessor edges added. Thread-safe against itself and against
    /// concurrent dependency releases.
    int register_accesses(const DepNodePtr& node, std::span<const Dep> deps);

    /// Number of distinct byte intervals currently tracked (for tests/stats).
    std::size_t interval_count() const;

    /// Cumulative count of edges elided because the conflicting predecessor
    /// had already released its dependencies (the ordering then holds by
    /// completion time instead of by an explicit edge). Together with the
    /// added-edge count this makes conflict accounting deterministic:
    /// added + elided is a property of the access sequence, not of worker
    /// timing. Best-effort: conflicts whose predecessor interval was already
    /// garbage-collected leave no trace and are not counted.
    std::uint64_t edges_elided() const { return edges_elided_->load(std::memory_order_relaxed); }

    /// Attaches a verification observer notified of every edge the registry
    /// wires (nullptr detaches; zero-cost when detached). While a hook is
    /// attached the caller must serialize register_accesses calls and node
    /// releases in one total order.
    void set_verify_hook(VerifyHook* hook) { verify_ = hook; }

    /// Drops bookkeeping for regions nobody references anymore. Prunes
    /// intervals whose writer and readers have all released, one shard at a
    /// time. Shards also self-collect every kGcPeriod registrations, so
    /// explicit calls are only needed by tests.
    void garbage_collect();

private:
    struct Interval {
        std::uintptr_t end = 0;
        DepNodePtr writer;                // last writer (may be released)
        std::vector<DepNodePtr> readers;  // readers since last write
    };

    // Keyed by interval start; intervals are disjoint and sorted. Every
    // interval lies inside a single granule of this shard.
    using IntervalMap = std::map<std::uintptr_t, Interval>;

    static constexpr std::uint64_t kGcPeriod = 256;

    struct Shard {
        // One lockdep class for all 64 shards, Nesting::Ordered: nested
        // acquisition is legal only in ascending shard index (the subrank,
        // assigned in the registry constructor) — exactly the deadlock-free
        // order register_accesses uses.
        mutable lockdep::Mutex mutex{"dep.shard", lockdep::Nesting::Ordered};
        IntervalMap intervals;
        std::uint64_t gc_countdown = kGcPeriod;
    };

    static int shard_of(std::uintptr_t addr) {
        return static_cast<int>((addr >> kGranuleBits) & (kShardCount - 1));
    }

    /// Splits intervals in `map` so `point` becomes an interval boundary.
    static void split_at(IntervalMap& map, std::uintptr_t point);

    /// Registers one region piece that lies entirely inside one granule.
    /// Caller holds the owning shard's mutex.
    int register_piece(Shard& shard, const DepNodePtr& node, DepKind kind, std::uintptr_t lo,
                       std::uintptr_t hi);

    void add_edge(const DepNodePtr& pred, const DepNodePtr& succ, int& added);

    /// Prunes released entries of one shard. Caller holds the shard's mutex.
    static void collect_shard(Shard& shard);

    // unique_ptr indirection keeps the registry movable (the DES simulator
    // stores one registry per simulated rank in a std::vector).
    std::unique_ptr<Shard[]> shards_;
    std::unique_ptr<std::atomic<std::uint64_t>> edges_elided_;
    VerifyHook* verify_ = nullptr;
};

}  // namespace dfamr::tasking
