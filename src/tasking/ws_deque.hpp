// Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005; C11 formulation
// after Lê, Pop, Cohen & Zappa Nardelli, PPoPP 2013).
//
// Single-owner bottom end: the owning worker pushes and pops LIFO, which
// keeps the most recently readied task — whose data is still warm in the
// owner's cache — first in line. Thieves steal FIFO from the top end, which
// hands them the oldest task: the one whose working set the owner's cache
// has most likely already evicted, so stealing it costs the least locality.
//
// Deviations from the PPoPP'13 letter-of-the-paper version, both deliberate:
//  * The two places the paper uses `atomic_thread_fence(seq_cst)` (the
//    owner's bottom-store/top-load pair in pop, and the thief's top-load/
//    bottom-load pair in steal) are expressed as seq_cst operations on the
//    indices instead. ThreadSanitizer does not model standalone fences, so
//    the fence-based version reports false races under the TSan CI config;
//    the operation-based version is as strong and TSan-clean.
//  * The circular buffer grows geometrically but retired buffers are kept
//    on a chain until the deque is destroyed: a concurrent thief may still
//    be reading through a stale buffer pointer, and with growth-only
//    retirement the total waste is bounded by 2x the final capacity.
//
// Elements are raw pointers. The deque does not own them: the tasking
// runtime keeps every submitted task alive through Task::self_ref until it
// completes, and a task enters a deque at most once, so a popped or stolen
// pointer is always valid.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/error.hpp"

namespace dfamr::tasking {

template <typename T>
class WsDeque {
public:
    explicit WsDeque(std::int64_t initial_capacity = 64) {
        DFAMR_REQUIRE(initial_capacity > 0 && (initial_capacity & (initial_capacity - 1)) == 0,
                      "deque capacity must be a positive power of two");
        buffer_.store(new Buffer(initial_capacity, nullptr), std::memory_order_relaxed);
    }

    ~WsDeque() {
        Buffer* b = buffer_.load(std::memory_order_relaxed);
        while (b != nullptr) {
            Buffer* prev = b->prev;
            delete b;
            b = prev;
        }
    }

    WsDeque(const WsDeque&) = delete;
    WsDeque& operator=(const WsDeque&) = delete;

    /// Owner only: push one element at the bottom (LIFO end).
    void push(T* item) {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_acquire);
        Buffer* a = buffer_.load(std::memory_order_relaxed);
        if (b - t > a->capacity - 1) {
            a = grow(a, t, b);
        }
        a->slot(b).store(item, std::memory_order_relaxed);
        // The release store publishes the slot write to thieves that
        // acquire-load bottom.
        bottom_.store(b + 1, std::memory_order_release);
    }

    /// Owner only: pop the most recently pushed element (LIFO end).
    /// Returns nullptr when the deque is empty.
    T* pop() {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        Buffer* a = buffer_.load(std::memory_order_relaxed);
        bottom_.store(b, std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        if (t <= b) {
            T* item = a->slot(b).load(std::memory_order_relaxed);
            if (t == b) {
                // Last element: race the thieves for it through top.
                if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                                  std::memory_order_relaxed)) {
                    item = nullptr;  // a thief won
                }
                bottom_.store(b + 1, std::memory_order_relaxed);
            }
            return item;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
        return nullptr;
    }

    /// Any thread: steal the oldest element (FIFO end). Returns nullptr when
    /// the deque looks empty or the steal lost a race (caller just moves on
    /// to the next victim; distinguishing the two is not worth a retry loop
    /// in the scan).
    T* steal() {
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
        if (t < b) {
            Buffer* a = buffer_.load(std::memory_order_acquire);
            T* item = a->slot(t).load(std::memory_order_relaxed);
            if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                              std::memory_order_relaxed)) {
                return nullptr;
            }
            return item;
        }
        return nullptr;
    }

    /// Racy size estimate (monitoring / wake heuristics only).
    std::int64_t size_estimate() const {
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_relaxed);
        return b > t ? b - t : 0;
    }

private:
    struct Buffer {
        const std::int64_t capacity;
        const std::int64_t mask;
        Buffer* const prev;  // retired predecessor, freed in ~WsDeque
        std::unique_ptr<std::atomic<T*>[]> slots;

        Buffer(std::int64_t cap, Buffer* prev_buffer)
            : capacity(cap),
              mask(cap - 1),
              prev(prev_buffer),
              slots(new std::atomic<T*>[static_cast<std::size_t>(cap)]) {}

        std::atomic<T*>& slot(std::int64_t i) { return slots[static_cast<std::size_t>(i & mask)]; }
    };

    /// Owner only: double the capacity, copying the live range [t, b).
    Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
        auto* bigger = new Buffer(old->capacity * 2, old);
        for (std::int64_t i = t; i < b; ++i) {
            bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                                  std::memory_order_relaxed);
        }
        buffer_.store(bigger, std::memory_order_release);
        return bigger;
    }

    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::atomic<Buffer*> buffer_{nullptr};
};

}  // namespace dfamr::tasking
