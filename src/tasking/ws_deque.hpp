// Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005; C11 formulation
// after Lê, Pop, Cohen & Zappa Nardelli, PPoPP 2013).
//
// Single-owner bottom end: the owning worker pushes and pops LIFO, which
// keeps the most recently readied task — whose data is still warm in the
// owner's cache — first in line. Thieves steal FIFO from the top end, which
// hands them the oldest task: the one whose working set the owner's cache
// has most likely already evicted, so stealing it costs the least locality.
//
// Deviations from the PPoPP'13 letter-of-the-paper version, both deliberate:
//  * The two places the paper uses `atomic_thread_fence(seq_cst)` (the
//    owner's bottom-store/top-load pair in pop, and the thief's top-load/
//    bottom-load pair in steal) are expressed as seq_cst operations on the
//    indices instead. ThreadSanitizer does not model standalone fences, so
//    the fence-based version reports false races under the TSan CI config;
//    the operation-based version is as strong and TSan-clean.
//  * The circular buffer grows geometrically but retired buffers are kept
//    on a chain until the deque is destroyed: a concurrent thief may still
//    be reading through a stale buffer pointer, and with growth-only
//    retirement the total waste is bounded by 2x the final capacity.
//
// Elements are raw pointers. The deque does not own them: the tasking
// runtime keeps every submitted task alive through Task::self_ref until it
// completes, and a task enters a deque at most once, so a popped or stolen
// pointer is always valid.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/error.hpp"

namespace dfamr::tasking {

template <typename T>
class WsDeque {
public:
    explicit WsDeque(std::int64_t initial_capacity = 64) {
        DFAMR_REQUIRE(initial_capacity > 0 && (initial_capacity & (initial_capacity - 1)) == 0,
                      "deque capacity must be a positive power of two");
        // relaxed: construction precedes any sharing; whatever mechanism
        // hands the deque to other threads provides the ordering.
        buffer_.store(new Buffer(initial_capacity, nullptr), std::memory_order_relaxed);
    }

    ~WsDeque() {
        // relaxed: destruction requires external quiescence (no concurrent
        // owner or thieves) by contract, so there is nothing to order.
        Buffer* b = buffer_.load(std::memory_order_relaxed);
        while (b != nullptr) {
            Buffer* prev = b->prev;
            delete b;
            b = prev;
        }
    }

    WsDeque(const WsDeque&) = delete;
    WsDeque& operator=(const WsDeque&) = delete;

    /// Owner only: push one element at the bottom (LIFO end).
    void push(T* item) {
        // relaxed: bottom is only ever written by the owner, so the owner's
        // own program order is the only order that matters for reading it.
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        // acquire: pairs with the thieves' seq_cst (⊇ release) CAS on top.
        // Reading an advanced top here must also make the thief's slot read
        // visible-before, so the capacity check (b - t) never under-counts
        // free space while a thief is still inside a slot we would reuse.
        const std::int64_t t = top_.load(std::memory_order_acquire);
        // relaxed: buffer_ is only replaced by the owner (in grow), so the
        // owner always sees its own latest store without synchronization.
        Buffer* a = buffer_.load(std::memory_order_relaxed);
        if (b - t > a->capacity - 1) {
            a = grow(a, t, b);
        }
        // relaxed: the slot write itself needs no ordering — the release
        // store to bottom below is what publishes it. A thief that observes
        // bottom > b acquired that store and therefore sees this write.
        a->slot(b).store(item, std::memory_order_relaxed);
        // release: publishes the slot write (and, after grow, the buffer_
        // store) to any thief whose seq_cst load of bottom reads b + 1.
        bottom_.store(b + 1, std::memory_order_release);
    }

    /// Owner only: pop the most recently pushed element (LIFO end).
    /// Returns nullptr when the deque is empty.
    T* pop() {
        // relaxed: owner-only value, same as in push.
        const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
        // relaxed: owner-only value, same as in push.
        Buffer* a = buffer_.load(std::memory_order_relaxed);
        // seq_cst store + seq_cst load: this pair is the paper's
        // fence(seq_cst) between "reserve the bottom slot" and "observe
        // top". It must be a single total order with the thief's
        // top-load / bottom-load pair in steal(): either the thief sees the
        // decremented bottom (and gives up on the last element) or the
        // owner sees the thief's advanced top (and takes the CAS path).
        // Weaker orders allow both to read stale values and hand the same
        // element out twice.
        bottom_.store(b, std::memory_order_seq_cst);
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        if (t <= b) {
            // relaxed: the owner wrote this slot itself (push), or took the
            // buffer over from its own grow; no inter-thread edge needed.
            T* item = a->slot(b).load(std::memory_order_relaxed);
            if (t == b) {
                // Last element: race the thieves for it through top.
                // seq_cst success: participates in the same total order as
                // the steal CAS — exactly one of the two racers advances
                // top from t. relaxed failure: losing means a thief already
                // took the element; we only return nullptr, no data is read
                // under the failed CAS.
                if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                                  std::memory_order_relaxed)) {
                    item = nullptr;  // a thief won
                }
                // relaxed: restoring bottom to the canonical empty position
                // (b + 1 == t + 1) publishes nothing — thieves decide
                // through top, and the next push's release store covers it.
                bottom_.store(b + 1, std::memory_order_relaxed);
            }
            return item;
        }
        // relaxed: deque was empty; same reasoning as the restore above.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return nullptr;
    }

    /// Any thread: steal the oldest element (FIFO end). Returns nullptr when
    /// the deque looks empty or the steal lost a race (caller just moves on
    /// to the next victim; distinguishing the two is not worth a retry loop
    /// in the scan).
    T* steal() {
        // seq_cst load + seq_cst load: the thief's half of the total order
        // described in pop(). Reading top before bottom (in that order)
        // under seq_cst guarantees that if this thief and a popping owner
        // both think they own the last element, at least one of them
        // observed the other's index update and backs off via the CAS.
        std::int64_t t = top_.load(std::memory_order_seq_cst);
        const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
        if (t < b) {
            // acquire: pairs with the release store in grow(). Having
            // observed (through bottom, seq_cst ⊇ acquire) a push that went
            // into a grown buffer, this load must see the new buffer
            // pointer WITH its copied slots — reading the new pointer but
            // stale slot contents would hand out garbage. A stale (old)
            // buffer pointer is benign: retired buffers stay alive and
            // slot t was copied, not moved.
            Buffer* a = buffer_.load(std::memory_order_acquire);
            // relaxed: the release/acquire edge push→(bottom)→here already
            // ordered the slot write before this read; the CAS below
            // validates that slot t was not recycled in between.
            T* item = a->slot(t).load(std::memory_order_relaxed);
            // seq_cst success: claims element t in the same total order as
            // the owner's last-element CAS and every other thief — one
            // winner per index. It is also the release that lets push's
            // acquire-load of top reuse the slot. relaxed failure: lost the
            // race, `item` is discarded unread.
            if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                              std::memory_order_relaxed)) {
                return nullptr;
            }
            return item;
        }
        return nullptr;
    }

    /// Racy size estimate (monitoring / wake heuristics only).
    std::int64_t size_estimate() const {
        // relaxed ×2: the result is advisory by contract — callers use it
        // to pick a steal victim or decide whether to wake a sleeper, and
        // both tolerate arbitrarily stale answers. No ordering buys
        // anything here.
        const std::int64_t b = bottom_.load(std::memory_order_relaxed);
        const std::int64_t t = top_.load(std::memory_order_relaxed);
        return b > t ? b - t : 0;
    }

private:
    struct Buffer {
        const std::int64_t capacity;
        const std::int64_t mask;
        Buffer* const prev;  // retired predecessor, freed in ~WsDeque
        std::unique_ptr<std::atomic<T*>[]> slots;

        Buffer(std::int64_t cap, Buffer* prev_buffer)
            : capacity(cap),
              mask(cap - 1),
              prev(prev_buffer),
              slots(new std::atomic<T*>[static_cast<std::size_t>(cap)]) {}

        std::atomic<T*>& slot(std::int64_t i) { return slots[static_cast<std::size_t>(i & mask)]; }
    };

    /// Owner only: double the capacity, copying the live range [t, b).
    Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
        auto* bigger = new Buffer(old->capacity * 2, old);
        for (std::int64_t i = t; i < b; ++i) {
            // relaxed ×2: the owner wrote every live slot itself and is the
            // only writer of either buffer during the copy (thieves read
            // slots, never write them), so plain atomic copies suffice; the
            // release below publishes the whole range at once.
            bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                                  std::memory_order_relaxed);
        }
        // release: pairs with the acquire load in steal(). A thief that
        // reads `bigger` from buffer_ is guaranteed to also see the copied
        // slot values above. Thieves that still hold `old` are safe too:
        // retirement is deferred to ~WsDeque via the prev chain, and a
        // successful CAS on top revalidates whichever slot they read.
        buffer_.store(bigger, std::memory_order_release);
        return bigger;
    }

    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::atomic<Buffer*> buffer_{nullptr};
};

}  // namespace dfamr::tasking
