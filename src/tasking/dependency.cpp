#include "tasking/dependency.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "tasking/verify_hook.hpp"

namespace dfamr::tasking {

DependencyRegistry::DependencyRegistry()
    : shards_(new Shard[kShardCount]),
      edges_elided_(std::make_unique<std::atomic<std::uint64_t>>(0)) {
    // Shard index doubles as the lockdep subrank: register_accesses locks
    // shards in ascending index order and lockdep checks exactly that.
    for (int s = 0; s < kShardCount; ++s) {
        shards_[s].mutex.set_subrank(static_cast<std::uint32_t>(s));
    }
}

void DependencyRegistry::split_at(IntervalMap& map, std::uintptr_t point) {
    // Find the interval containing `point` (if any) and split it so `point`
    // becomes an interval boundary.
    auto it = map.upper_bound(point);
    if (it != map.begin()) {
        auto prev = std::prev(it);
        if (prev->first < point && point < prev->second.end) {
            Interval right = prev->second;  // copy writer/readers
            const std::uintptr_t right_end = prev->second.end;
            prev->second.end = point;
            right.end = right_end;
            map.emplace_hint(it, point, std::move(right));
        }
    }
}

void DependencyRegistry::add_edge(const DepNodePtr& pred, const DepNodePtr& succ, int& added) {
    if (!pred || pred.get() == succ.get()) return;
    DepNode& p = *pred;
    // The node lock orders this against the predecessor's release, which
    // drains `successors` under the same lock: either we add the edge before
    // the drain (and the release decrements succ), or we observe
    // dep_released and elide. Lock order: shard mutex(es) -> node lock.
    std::lock_guard guard(p.node_lock);
    if (p.dep_released.load(std::memory_order_relaxed)) {
        // The conflicting predecessor already completed: ordering holds by
        // completion time, no edge needed. Count it so (added + elided)
        // stays deterministic for a given access sequence.
        if (p.last_edge_marker != succ->node_id) {
            p.last_edge_marker = succ->node_id;
            edges_elided_->fetch_add(1, std::memory_order_relaxed);
        }
        return;
    }
    // Dedup consecutive identical edges: a multi-interval region would
    // otherwise add one edge per covered interval.
    if (p.last_edge_marker == succ->node_id) return;
    p.last_edge_marker = succ->node_id;
    p.successors.push_back(succ.get());
    // Relaxed is enough: the successor cannot become ready while its
    // submission guard (or a caller-held count) is outstanding, and the
    // release-side fetch_sub that eventually drops it to zero is acq_rel.
    succ->pred_count.fetch_add(1, std::memory_order_relaxed);
    ++added;
    if (verify_ != nullptr) verify_->on_edge_added(p, *succ);
}

int DependencyRegistry::register_piece(Shard& shard, const DepNodePtr& node, DepKind kind,
                                       std::uintptr_t lo, std::uintptr_t hi) {
    IntervalMap& map = shard.intervals;
    split_at(map, lo);
    split_at(map, hi);
    int added = 0;
    auto it = map.lower_bound(lo);
    std::uintptr_t cursor = lo;
    while (cursor < hi) {
        if (it == map.end() || it->first > cursor) {
            // Gap [cursor, min(hi, next_start)): fresh interval, no edges.
            const std::uintptr_t gap_end =
                (it == map.end()) ? hi : std::min<std::uintptr_t>(hi, it->first);
            Interval fresh;
            fresh.end = gap_end;
            if (kind == DepKind::In) {
                fresh.readers.push_back(node);
            } else {
                fresh.writer = node;
            }
            it = map.emplace_hint(it, cursor, std::move(fresh));
            ++it;
            cursor = gap_end;
            continue;
        }
        // Existing interval starting exactly at cursor (split_at ensured
        // boundaries at lo/hi, and we iterate boundary to boundary).
        DFAMR_ASSERT(it->first == cursor && it->second.end <= hi);
        Interval& iv = it->second;
        if (kind == DepKind::In) {
            add_edge(iv.writer, node, added);
            // Record as reader (avoid duplicate entry for this node).
            if (iv.readers.empty() || iv.readers.back().get() != node.get()) {
                iv.readers.push_back(node);
            }
        } else {  // Out / InOut: order after the last writer and all readers.
            // With readers present the writer edge is subsumed: every
            // reader is already ordered after that writer.
            if (iv.readers.empty()) add_edge(iv.writer, node, added);
            for (const DepNodePtr& reader : iv.readers) add_edge(reader, node, added);
            iv.writer = node;
            iv.readers.clear();
        }
        cursor = iv.end;
        ++it;
    }
    return added;
}

int DependencyRegistry::register_accesses(const DepNodePtr& node, std::span<const Dep> deps) {
    DFAMR_REQUIRE(node != nullptr, "null dependency node");

    // Pass 1: which shards does this access list touch? One bit per shard.
    std::uint64_t shard_mask = 0;
    for (const Dep& dep : deps) {
        if (dep.region.size == 0) continue;
        const std::uintptr_t g_lo = dep.region.base >> kGranuleBits;
        const std::uintptr_t g_hi = (dep.region.end() - 1) >> kGranuleBits;
        if (g_hi - g_lo >= static_cast<std::uintptr_t>(kShardCount) - 1) {
            shard_mask = ~std::uint64_t{0};
            break;
        }
        for (std::uintptr_t g = g_lo; g <= g_hi; ++g) {
            shard_mask |= std::uint64_t{1} << (g & (kShardCount - 1));
        }
    }
    if (shard_mask == 0) return 0;  // only empty regions

    // Lock touched shards in ascending index order: concurrent multi-shard
    // registrations cannot deadlock because everyone acquires in the same
    // global order.
    for (int s = 0; s < kShardCount; ++s) {
        if ((shard_mask >> s) & 1) shards_[s].mutex.lock();
    }

    int added = 0;
    for (const Dep& dep : deps) {
        if (dep.region.size == 0) continue;
        const std::uintptr_t hi = dep.region.end();
        // Walk granule by granule; each piece lies in exactly one shard, so
        // every tracked interval stays within a single granule.
        std::uintptr_t cursor = dep.region.base;
        while (cursor < hi) {
            const std::uintptr_t granule_end =
                ((cursor >> kGranuleBits) + 1) << kGranuleBits;
            const std::uintptr_t piece_end =
                (granule_end == 0 || granule_end > hi) ? hi : granule_end;
            added += register_piece(shards_[shard_of(cursor)], node, dep.kind, cursor, piece_end);
            cursor = piece_end;
        }
    }

    // Amortized per-shard GC, then unlock in descending order.
    for (int s = kShardCount - 1; s >= 0; --s) {
        if (!((shard_mask >> s) & 1)) continue;
        Shard& sh = shards_[s];
        if (--sh.gc_countdown == 0) {
            sh.gc_countdown = kGcPeriod;
            collect_shard(sh);
        }
        sh.mutex.unlock();
    }
    return added;
}

void DependencyRegistry::collect_shard(Shard& shard) {
    // dep_released never goes back to false, so an unlocked read seeing
    // `true` is stable; a stale `false` just keeps the entry one cycle
    // longer.
    for (auto it = shard.intervals.begin(); it != shard.intervals.end();) {
        Interval& iv = it->second;
        std::erase_if(iv.readers, [](const DepNodePtr& r) {
            return r->dep_released.load(std::memory_order_acquire);
        });
        if (iv.writer && iv.writer->dep_released.load(std::memory_order_acquire) &&
            iv.readers.empty()) {
            it = shard.intervals.erase(it);
        } else {
            ++it;
        }
    }
}

void DependencyRegistry::garbage_collect() {
    for (int s = 0; s < kShardCount; ++s) {
        std::lock_guard lock(shards_[s].mutex);
        collect_shard(shards_[s]);
    }
}

std::size_t DependencyRegistry::interval_count() const {
    std::size_t total = 0;
    for (int s = 0; s < kShardCount; ++s) {
        std::lock_guard lock(shards_[s].mutex);
        total += shards_[s].intervals.size();
    }
    return total;
}

}  // namespace dfamr::tasking
