// Fork-join helpers built on top of the tasking runtime.
//
// The MPI+OpenMP fork-join miniAMR variant uses `#pragma omp parallel for
// schedule(static)` regions. We reproduce that shape: the range is split
// into one statically-sized chunk per worker, chunk tasks carry no data
// dependencies, and the caller blocks at the end of the region (the
// implicit barrier of an OpenMP parallel region).
#pragma once

#include <cstdint>
#include <functional>

#include "tasking/runtime.hpp"

namespace dfamr::tasking {

/// Runs fn(i) for i in [begin, end) across the runtime's workers with static
/// scheduling, then waits (implicit barrier). Safe to call with any range.
inline void parallel_for(Runtime& rt, std::int64_t begin, std::int64_t end,
                         const std::function<void(std::int64_t)>& fn) {
    const std::int64_t n = end - begin;
    if (n <= 0) return;
    const std::int64_t chunks = std::max<std::int64_t>(1, rt.worker_count());
    const std::int64_t chunk_size = (n + chunks - 1) / chunks;
    for (std::int64_t c = 0; c < chunks; ++c) {
        const std::int64_t lo = begin + c * chunk_size;
        if (lo >= end) break;
        const std::int64_t hi = std::min(end, lo + chunk_size);
        rt.submit([lo, hi, &fn] {
            for (std::int64_t i = lo; i < hi; ++i) fn(i);
        },
                  {}, "parallel_for");
    }
    rt.taskwait();
}

}  // namespace dfamr::tasking
