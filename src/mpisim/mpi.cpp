#include "mpisim/mpi.hpp"

#include <atomic>
#include <chrono>

#include "common/error.hpp"

namespace dfamr::mpi {

namespace detail {

constexpr auto kAbortPollInterval = std::chrono::milliseconds(5);

struct RequestState {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    Status status;
    WorldState* world = nullptr;
};

struct PendingMsg {
    int source = 0;
    int tag = 0;
    std::vector<std::byte> data;
};

struct PostedRecv {
    int source = kAnySource;
    int tag = kAnyTag;
    void* buf = nullptr;
    std::size_t capacity = 0;
    std::shared_ptr<RequestState> req;
};

struct Mailbox {
    std::mutex m;
    std::deque<PendingMsg> unexpected;
    std::deque<PostedRecv> posted;
};

struct CollectiveCtx {
    std::mutex m;
    std::condition_variable cv;
    int arrived = 0;
    std::uint64_t generation = 0;
    std::vector<const void*> ins;
    std::vector<void*> outs;
};

struct WorldState {
    int nranks = 0;
    std::vector<std::unique_ptr<Mailbox>> mailboxes;
    CollectiveCtx coll;

    // Completion "activity" broadcast used by wait_any and blocking waits.
    std::mutex activity_m;
    std::condition_variable activity_cv;
    std::uint64_t activity_seq = 0;

    std::atomic<bool> aborted{false};
    std::atomic<std::uint64_t> messages_delivered{0};
    std::atomic<std::uint64_t> bytes_delivered{0};

    void bump_activity() {
        {
            std::lock_guard lock(activity_m);
            ++activity_seq;
        }
        activity_cv.notify_all();
    }

    void check_aborted() const {
        if (aborted.load(std::memory_order_relaxed)) {
            throw Error("mpisim: world aborted (another rank failed)");
        }
    }
};

std::span<const void* const> ctx_inputs(const CollectiveCtx& ctx) {
    return {ctx.ins.data(), ctx.ins.size()};
}
std::span<void* const> ctx_outputs(const CollectiveCtx& ctx) {
    return {ctx.outs.data(), ctx.outs.size()};
}

namespace {

void complete_request(const std::shared_ptr<RequestState>& req, const Status& st) {
    {
        std::lock_guard lock(req->m);
        req->done = true;
        req->status = st;
    }
    req->cv.notify_all();
    req->world->bump_activity();
}

bool matches(int want_source, int want_tag, int have_source, int have_tag) {
    return (want_source == kAnySource || want_source == have_source) &&
           (want_tag == kAnyTag || want_tag == have_tag);
}

}  // namespace
}  // namespace detail

// ---- Request -------------------------------------------------------------

bool Request::test(Status* status) const {
    DFAMR_REQUIRE(state_ != nullptr, "test on null request");
    std::lock_guard lock(state_->m);
    if (state_->done && status != nullptr) *status = state_->status;
    return state_->done;
}

void Request::wait(Status* status) const {
    DFAMR_REQUIRE(state_ != nullptr, "wait on null request");
    std::unique_lock lock(state_->m);
    while (!state_->done) {
        state_->cv.wait_for(lock, detail::kAbortPollInterval);
        if (!state_->done) state_->world->check_aborted();
    }
    if (status != nullptr) *status = state_->status;
}

void wait_all(std::span<Request> reqs) {
    for (Request& r : reqs) {
        if (r.valid()) {
            r.wait();
            r.state_.reset();
        }
    }
}

int wait_any(std::span<Request> reqs, Status* status) {
    detail::WorldState* world = nullptr;
    bool any_valid = false;
    for (const Request& r : reqs) {
        if (r.valid()) {
            any_valid = true;
            world = r.state_->world;
            break;
        }
    }
    if (!any_valid) return kUndefined;

    for (;;) {
        std::uint64_t seq;
        {
            std::lock_guard lock(world->activity_m);
            seq = world->activity_seq;
        }
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            if (reqs[i].valid() && reqs[i].test(status)) {
                reqs[i].state_.reset();
                return static_cast<int>(i);
            }
        }
        std::unique_lock lock(world->activity_m);
        world->activity_cv.wait_for(lock, detail::kAbortPollInterval,
                                    [&] { return world->activity_seq != seq; });
        lock.unlock();
        world->check_aborted();
    }
}

// ---- Communicator: point-to-point -----------------------------------------

Request Communicator::isend(const void* buf, std::size_t bytes, int dest, int tag) {
    DFAMR_REQUIRE(0 <= dest && dest < size_, "isend: destination rank out of range");
    DFAMR_REQUIRE(tag >= 0, "isend: tag must be non-negative");
    auto req = std::make_shared<detail::RequestState>();
    req->world = world_;

    detail::Mailbox& mbox = *world_->mailboxes[static_cast<std::size_t>(dest)];
    std::shared_ptr<detail::RequestState> matched_recv;
    Status matched_status;
    {
        std::lock_guard lock(mbox.m);
        auto it = mbox.posted.begin();
        for (; it != mbox.posted.end(); ++it) {
            if (detail::matches(it->source, it->tag, rank_, tag)) break;
        }
        if (it != mbox.posted.end()) {
            DFAMR_REQUIRE(bytes <= it->capacity, "message truncation: recv buffer too small");
            if (bytes > 0) std::memcpy(it->buf, buf, bytes);
            matched_recv = it->req;
            matched_status = Status{rank_, tag, bytes};
            mbox.posted.erase(it);
        } else {
            detail::PendingMsg msg;
            msg.source = rank_;
            msg.tag = tag;
            msg.data.assign(static_cast<const std::byte*>(buf),
                            static_cast<const std::byte*>(buf) + bytes);
            mbox.unexpected.push_back(std::move(msg));
        }
    }
    if (matched_recv) {
        world_->messages_delivered.fetch_add(1, std::memory_order_relaxed);
        world_->bytes_delivered.fetch_add(bytes, std::memory_order_relaxed);
        detail::complete_request(matched_recv, matched_status);
    }
    // Eager transfer: the payload is buffered/delivered, the send is complete.
    detail::complete_request(req, Status{rank_, tag, bytes});
    return Request(std::move(req));
}

Request Communicator::irecv(void* buf, std::size_t bytes, int source, int tag) {
    DFAMR_REQUIRE(source == kAnySource || (0 <= source && source < size_),
                  "irecv: source rank out of range");
    auto req = std::make_shared<detail::RequestState>();
    req->world = world_;

    detail::Mailbox& mbox = *world_->mailboxes[static_cast<std::size_t>(rank_)];
    bool delivered = false;
    Status st;
    {
        std::lock_guard lock(mbox.m);
        auto it = mbox.unexpected.begin();
        for (; it != mbox.unexpected.end(); ++it) {
            if (detail::matches(source, tag, it->source, it->tag)) break;
        }
        if (it != mbox.unexpected.end()) {
            DFAMR_REQUIRE(it->data.size() <= bytes, "message truncation: recv buffer too small");
            if (!it->data.empty()) std::memcpy(buf, it->data.data(), it->data.size());
            st = Status{it->source, it->tag, it->data.size()};
            mbox.unexpected.erase(it);
            delivered = true;
        } else {
            mbox.posted.push_back(detail::PostedRecv{source, tag, buf, bytes, req});
        }
    }
    if (delivered) {
        world_->messages_delivered.fetch_add(1, std::memory_order_relaxed);
        world_->bytes_delivered.fetch_add(st.bytes, std::memory_order_relaxed);
        detail::complete_request(req, st);
    }
    return Request(std::move(req));
}

void Communicator::send(const void* buf, std::size_t bytes, int dest, int tag) {
    isend(buf, bytes, dest, tag).wait();
}

void Communicator::recv(void* buf, std::size_t bytes, int source, int tag, Status* status) {
    irecv(buf, bytes, source, tag).wait(status);
}

bool Communicator::iprobe(int source, int tag, Status* status) {
    detail::Mailbox& mbox = *world_->mailboxes[static_cast<std::size_t>(rank_)];
    std::lock_guard lock(mbox.m);
    for (const detail::PendingMsg& msg : mbox.unexpected) {
        if (detail::matches(source, tag, msg.source, msg.tag)) {
            if (status != nullptr) *status = Status{msg.source, msg.tag, msg.data.size()};
            return true;
        }
    }
    return false;
}

// ---- Communicator: collectives ---------------------------------------------

void Communicator::collective(const void* in, void* out,
                              const std::function<void(detail::CollectiveCtx&)>& combine) {
    detail::CollectiveCtx& ctx = world_->coll;
    std::unique_lock lock(ctx.m);
    ctx.ins[static_cast<std::size_t>(rank_)] = in;
    ctx.outs[static_cast<std::size_t>(rank_)] = out;
    const std::uint64_t gen = ctx.generation;
    if (++ctx.arrived == size_) {
        if (combine) combine(ctx);
        ctx.arrived = 0;
        ++ctx.generation;
        ctx.cv.notify_all();
    } else {
        while (ctx.generation == gen) {
            ctx.cv.wait_for(lock, detail::kAbortPollInterval);
            if (ctx.generation == gen) world_->check_aborted();
        }
    }
}

void Communicator::barrier() { collective(nullptr, nullptr, {}); }

void Communicator::bcast(void* buf, std::size_t bytes, int root) {
    DFAMR_REQUIRE(0 <= root && root < size_, "bcast: root out of range");
    collective(buf, buf, [bytes, root, this](detail::CollectiveCtx& ctx) {
        const void* src = ctx.ins[static_cast<std::size_t>(root)];
        for (int r = 0; r < size_; ++r) {
            if (r != root) std::memcpy(ctx.outs[static_cast<std::size_t>(r)], src, bytes);
        }
    });
}

void Communicator::allgather(const void* in, std::size_t bytes, void* out) {
    collective(in, out, [bytes, this](detail::CollectiveCtx& ctx) {
        for (int r = 0; r < size_; ++r) {
            auto* dst = static_cast<std::byte*>(ctx.outs[static_cast<std::size_t>(r)]);
            for (int s = 0; s < size_; ++s) {
                std::memcpy(dst + static_cast<std::size_t>(s) * bytes,
                            ctx.ins[static_cast<std::size_t>(s)], bytes);
            }
        }
    });
}

void Communicator::alltoall(const void* in, std::size_t bytes, void* out) {
    collective(in, out, [bytes, this](detail::CollectiveCtx& ctx) {
        for (int r = 0; r < size_; ++r) {
            auto* dst = static_cast<std::byte*>(ctx.outs[static_cast<std::size_t>(r)]);
            for (int s = 0; s < size_; ++s) {
                const auto* src = static_cast<const std::byte*>(ctx.ins[static_cast<std::size_t>(s)]);
                std::memcpy(dst + static_cast<std::size_t>(s) * bytes,
                            src + static_cast<std::size_t>(r) * bytes, bytes);
            }
        }
    });
}

// ---- World ----------------------------------------------------------------

World::World(int nranks) : state_(std::make_unique<detail::WorldState>()) {
    DFAMR_REQUIRE(nranks >= 1, "world needs at least one rank");
    state_->nranks = nranks;
    state_->mailboxes.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        state_->mailboxes.push_back(std::make_unique<detail::Mailbox>());
    }
    state_->coll.ins.resize(static_cast<std::size_t>(nranks), nullptr);
    state_->coll.outs.resize(static_cast<std::size_t>(nranks), nullptr);
    comms_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        comms_.push_back(Communicator(state_.get(), r, nranks));
    }
}

World::~World() = default;

int World::size() const { return state_->nranks; }

Communicator& World::comm(int rank) {
    DFAMR_REQUIRE(0 <= rank && rank < state_->nranks, "rank out of range");
    return comms_[static_cast<std::size_t>(rank)];
}

void World::run(const std::function<void(Communicator&)>& rank_main) {
    std::mutex error_mutex;
    std::exception_ptr first_error;

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(state_->nranks));
    for (int r = 0; r < state_->nranks; ++r) {
        threads.emplace_back([this, r, &rank_main, &error_mutex, &first_error] {
            try {
                rank_main(comm(r));
            } catch (...) {
                {
                    std::lock_guard lock(error_mutex);
                    if (!first_error) first_error = std::current_exception();
                }
                state_->aborted.store(true, std::memory_order_relaxed);
                state_->bump_activity();
            }
        });
    }
    for (auto& t : threads) t.join();
    state_->aborted.store(false, std::memory_order_relaxed);
    if (first_error) std::rethrow_exception(first_error);
}

std::uint64_t World::messages_delivered() const {
    return state_->messages_delivered.load(std::memory_order_relaxed);
}

std::uint64_t World::bytes_delivered() const {
    return state_->bytes_delivered.load(std::memory_order_relaxed);
}

}  // namespace dfamr::mpi
