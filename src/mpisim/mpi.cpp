#include "mpisim/mpi.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <tuple>

#include "common/error.hpp"

namespace dfamr::mpi {

namespace detail {

constexpr auto kAbortPollInterval = std::chrono::milliseconds(5);

inline std::int64_t steady_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct RequestState {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    Status status;
    WorldState* world = nullptr;
    /// Receive requests remember their mailbox so cancel() can unpost them.
    Mailbox* mbox = nullptr;
};

struct PendingMsg {
    int source = 0;
    int tag = 0;
    std::vector<std::byte> data;
};

struct PostedRecv {
    int source = kAnySource;
    int tag = kAnyTag;
    void* buf = nullptr;
    std::size_t capacity = 0;
    std::shared_ptr<RequestState> req;
};

struct Mailbox {
    std::mutex m;
    std::deque<PendingMsg> unexpected;
    std::deque<PostedRecv> posted;
};

/// A message parked by the delivery scheduler until its release time.
struct DelayedMsg {
    std::int64_t release_ns = 0;
    std::uint64_t seq = 0;  // tie-breaker: preserves post order at equal release
    int dest = 0;
    PendingMsg msg;
};

/// Per-(src,dst,tag) stream bookkeeping. MPI's non-overtaking rule only
/// constrains messages of the same stream: while any message of a stream is
/// parked, later sends of that stream must queue behind it (release-time
/// clamped); messages of other streams may overtake freely.
struct StreamState {
    std::int64_t last_release_ns = 0;
    int inflight = 0;
};

struct CollectiveCtx {
    std::mutex m;
    std::condition_variable cv;
    int arrived = 0;
    std::uint64_t generation = 0;
    std::vector<const void*> ins;
    std::vector<void*> outs;
};

struct WorldState {
    int nranks = 0;
    std::vector<std::unique_ptr<Mailbox>> mailboxes;
    CollectiveCtx coll;

    // Completion "activity" broadcast used by wait_any and blocking waits.
    std::mutex activity_m;
    std::condition_variable activity_cv;
    std::uint64_t activity_seq = 0;

    std::atomic<bool> aborted{false};
    std::atomic<std::uint64_t> messages_delivered{0};
    std::atomic<std::uint64_t> bytes_delivered{0};

    // Fault injection (null = fault-free fast path, identical to before).
    FaultInjector* faults = nullptr;
    std::mutex sched_m;
    std::condition_variable sched_cv;
    std::vector<DelayedMsg> sched_heap;  // min-heap by (release_ns, seq)
    std::map<std::tuple<int, int, int>, StreamState> streams;
    std::uint64_t sched_seq = 0;
    bool sched_shutdown = false;
    std::thread sched_thread;

    void bump_activity() {
        {
            std::lock_guard lock(activity_m);
            ++activity_seq;
        }
        activity_cv.notify_all();
    }

    void check_aborted() const {
        if (aborted.load(std::memory_order_relaxed)) {
            throw Error("mpisim: world aborted (another rank failed)");
        }
    }
};

std::span<const void* const> ctx_inputs(const CollectiveCtx& ctx) {
    return {ctx.ins.data(), ctx.ins.size()};
}
std::span<void* const> ctx_outputs(const CollectiveCtx& ctx) {
    return {ctx.outs.data(), ctx.outs.size()};
}

namespace {

void complete_request(const std::shared_ptr<RequestState>& req, const Status& st) {
    {
        std::lock_guard lock(req->m);
        req->done = true;
        req->status = st;
    }
    req->cv.notify_all();
    req->world->bump_activity();
}

bool matches(int want_source, int want_tag, int have_source, int have_tag) {
    return (want_source == kAnySource || want_source == have_source) &&
           (want_tag == kAnyTag || want_tag == have_tag);
}

/// Hands a message to the destination mailbox: matches a posted receive or
/// parks it in the unexpected queue. Called from isend (immediate path) and
/// from the delivery-scheduler thread (delayed path).
void deliver_msg(WorldState* world, int dest, PendingMsg&& msg) {
    Mailbox& mbox = *world->mailboxes[static_cast<std::size_t>(dest)];
    std::shared_ptr<RequestState> matched_recv;
    Status matched_status;
    {
        std::lock_guard lock(mbox.m);
        auto it = mbox.posted.begin();
        for (; it != mbox.posted.end(); ++it) {
            if (matches(it->source, it->tag, msg.source, msg.tag)) break;
        }
        if (it != mbox.posted.end()) {
            DFAMR_REQUIRE(msg.data.size() <= it->capacity,
                          "message truncation: recv buffer too small");
            if (!msg.data.empty()) std::memcpy(it->buf, msg.data.data(), msg.data.size());
            matched_recv = it->req;
            matched_status = Status{msg.source, msg.tag, msg.data.size()};
            mbox.posted.erase(it);
        } else {
            mbox.unexpected.push_back(std::move(msg));
        }
    }
    if (matched_recv) {
        world->messages_delivered.fetch_add(1, std::memory_order_relaxed);
        world->bytes_delivered.fetch_add(matched_status.bytes, std::memory_order_relaxed);
        complete_request(matched_recv, matched_status);
    }
}

/// Delivery-scheduler thread body: releases parked messages in (release
/// time, post order). Runs only in worlds with a fault injector.
void scheduler_loop(WorldState* world) {
    const auto heap_after = [](const DelayedMsg& a, const DelayedMsg& b) {
        return std::tie(a.release_ns, a.seq) > std::tie(b.release_ns, b.seq);
    };
    std::unique_lock lock(world->sched_m);
    for (;;) {
        if (world->sched_heap.empty()) {
            if (world->sched_shutdown) return;
            world->sched_cv.wait(lock);
            continue;
        }
        const std::int64_t now = steady_now_ns();
        const std::int64_t next = world->sched_heap.front().release_ns;
        // On shutdown remaining messages are flushed immediately: nothing
        // may be waiting on them anymore, and dropping them silently would
        // skew the delivery counters tests rely on.
        if (next > now && !world->sched_shutdown) {
            world->sched_cv.wait_for(lock, std::chrono::nanoseconds(next - now));
            continue;
        }
        std::pop_heap(world->sched_heap.begin(), world->sched_heap.end(), heap_after);
        DelayedMsg dm = std::move(world->sched_heap.back());
        world->sched_heap.pop_back();
        lock.unlock();
        deliver_msg(world, dm.dest, std::move(dm.msg));
        lock.lock();
        const auto key = std::make_tuple(dm.msg.source, dm.dest, dm.msg.tag);
        auto it = world->streams.find(key);
        if (it != world->streams.end() && --it->second.inflight == 0) {
            world->streams.erase(it);
        }
    }
}

}  // namespace
}  // namespace detail

// ---- Request -------------------------------------------------------------

bool Request::test(Status* status) const {
    DFAMR_REQUIRE(state_ != nullptr, "test on null request");
    std::lock_guard lock(state_->m);
    if (state_->done && status != nullptr) *status = state_->status;
    return state_->done;
}

void Request::wait(Status* status) const {
    DFAMR_REQUIRE(state_ != nullptr, "wait on null request");
    std::unique_lock lock(state_->m);
    while (!state_->done) {
        state_->cv.wait_for(lock, detail::kAbortPollInterval);
        if (!state_->done) state_->world->check_aborted();
    }
    if (status != nullptr) *status = state_->status;
}

bool Request::wait_for(std::int64_t timeout_ns, Status* status) const {
    DFAMR_REQUIRE(state_ != nullptr, "wait_for on null request");
    const std::int64_t deadline = detail::steady_now_ns() + timeout_ns;
    std::unique_lock lock(state_->m);
    while (!state_->done) {
        const std::int64_t now = detail::steady_now_ns();
        if (now >= deadline) return false;
        const auto step = std::min<std::int64_t>(
            deadline - now,
            std::chrono::duration_cast<std::chrono::nanoseconds>(detail::kAbortPollInterval)
                .count());
        state_->cv.wait_for(lock, std::chrono::nanoseconds(step));
        if (!state_->done) state_->world->check_aborted();
    }
    if (status != nullptr) *status = state_->status;
    return true;
}

bool Request::cancel() const {
    DFAMR_REQUIRE(state_ != nullptr, "cancel on null request");
    detail::Mailbox* mbox = state_->mbox;
    if (mbox == nullptr) return false;  // sends complete eagerly: nothing to cancel
    {
        std::lock_guard lock(mbox->m);
        auto it = mbox->posted.begin();
        for (; it != mbox->posted.end(); ++it) {
            if (it->req == state_) break;
        }
        if (it == mbox->posted.end()) return false;  // already matched/completed
        mbox->posted.erase(it);
    }
    detail::complete_request(state_, Status{kUndefined, kUndefined, 0, /*ok=*/false});
    return true;
}

void wait_all(std::span<Request> reqs) {
    for (Request& r : reqs) {
        if (r.valid()) {
            r.wait();
            r.state_.reset();
        }
    }
}

int wait_any_for(std::span<Request> reqs, std::int64_t timeout_ns, Status* status) {
    detail::WorldState* world = nullptr;
    for (const Request& r : reqs) {
        if (r.valid()) {
            world = r.state_->world;
            break;
        }
    }
    if (world == nullptr) return kUndefined;
    const std::int64_t deadline = detail::steady_now_ns() + timeout_ns;

    for (;;) {
        std::uint64_t seq;
        {
            std::lock_guard lock(world->activity_m);
            seq = world->activity_seq;
        }
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            if (reqs[i].valid() && reqs[i].test(status)) {
                reqs[i].state_.reset();
                return static_cast<int>(i);
            }
        }
        const std::int64_t now = detail::steady_now_ns();
        if (now >= deadline) return kTimeout;
        const auto step = std::min<std::int64_t>(
            deadline - now,
            std::chrono::duration_cast<std::chrono::nanoseconds>(detail::kAbortPollInterval)
                .count());
        std::unique_lock lock(world->activity_m);
        world->activity_cv.wait_for(lock, std::chrono::nanoseconds(step),
                                    [&] { return world->activity_seq != seq; });
        lock.unlock();
        world->check_aborted();
    }
}

int wait_any(std::span<Request> reqs, Status* status) {
    detail::WorldState* world = nullptr;
    bool any_valid = false;
    for (const Request& r : reqs) {
        if (r.valid()) {
            any_valid = true;
            world = r.state_->world;
            break;
        }
    }
    if (!any_valid) return kUndefined;

    for (;;) {
        std::uint64_t seq;
        {
            std::lock_guard lock(world->activity_m);
            seq = world->activity_seq;
        }
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            if (reqs[i].valid() && reqs[i].test(status)) {
                reqs[i].state_.reset();
                return static_cast<int>(i);
            }
        }
        std::unique_lock lock(world->activity_m);
        world->activity_cv.wait_for(lock, detail::kAbortPollInterval,
                                    [&] { return world->activity_seq != seq; });
        lock.unlock();
        world->check_aborted();
    }
}

// ---- Communicator: point-to-point -----------------------------------------

Request Communicator::isend(const void* buf, std::size_t bytes, int dest, int tag) {
    DFAMR_REQUIRE(0 <= dest && dest < size_, "isend: destination rank out of range");
    DFAMR_REQUIRE(tag >= 0, "isend: tag must be non-negative");
    auto req = std::make_shared<detail::RequestState>();
    req->world = world_;

    if (world_->faults != nullptr) {
        const FaultAction act = world_->faults->on_send(rank_, dest, tag);
        if (act.stall_ns > 0) {
            std::this_thread::sleep_for(std::chrono::nanoseconds(act.stall_ns));
        }
        if (act.crash) {
            throw Error("mpisim: injected crash at rank " + std::to_string(rank_));
        }
        if (act.drop) {
            // Transient delivery failure: the payload vanishes; the sender
            // learns synchronously via status.ok (the hardened layer retries).
            detail::complete_request(req, Status{rank_, tag, bytes, /*ok=*/false});
            return Request(std::move(req));
        }
        detail::PendingMsg msg;
        msg.source = rank_;
        msg.tag = tag;
        msg.data.assign(static_cast<const std::byte*>(buf),
                        static_cast<const std::byte*>(buf) + bytes);
        bool scheduled = false;
        {
            std::lock_guard slock(world_->sched_m);
            const auto key = std::make_tuple(rank_, dest, tag);
            auto it = world_->streams.find(key);
            // Route through the scheduler when delayed, or when an earlier
            // message of the same stream is still parked (non-overtaking).
            if (act.delay_ns > 0 || it != world_->streams.end()) {
                const std::int64_t now = detail::steady_now_ns();
                detail::StreamState& stream = world_->streams[key];
                const std::int64_t release =
                    std::max(now + act.delay_ns, stream.last_release_ns);
                stream.last_release_ns = release;
                ++stream.inflight;
                world_->sched_heap.push_back(
                    detail::DelayedMsg{release, world_->sched_seq++, dest, std::move(msg)});
                std::push_heap(world_->sched_heap.begin(), world_->sched_heap.end(),
                               [](const detail::DelayedMsg& a, const detail::DelayedMsg& b) {
                                   return std::tie(a.release_ns, a.seq) >
                                          std::tie(b.release_ns, b.seq);
                               });
                scheduled = true;
            }
        }
        if (scheduled) {
            world_->sched_cv.notify_one();
        } else {
            detail::deliver_msg(world_, dest, std::move(msg));
        }
        detail::complete_request(req, Status{rank_, tag, bytes});
        return Request(std::move(req));
    }

    detail::Mailbox& mbox = *world_->mailboxes[static_cast<std::size_t>(dest)];
    std::shared_ptr<detail::RequestState> matched_recv;
    Status matched_status;
    {
        std::lock_guard lock(mbox.m);
        auto it = mbox.posted.begin();
        for (; it != mbox.posted.end(); ++it) {
            if (detail::matches(it->source, it->tag, rank_, tag)) break;
        }
        if (it != mbox.posted.end()) {
            DFAMR_REQUIRE(bytes <= it->capacity, "message truncation: recv buffer too small");
            if (bytes > 0) std::memcpy(it->buf, buf, bytes);
            matched_recv = it->req;
            matched_status = Status{rank_, tag, bytes};
            mbox.posted.erase(it);
        } else {
            detail::PendingMsg msg;
            msg.source = rank_;
            msg.tag = tag;
            msg.data.assign(static_cast<const std::byte*>(buf),
                            static_cast<const std::byte*>(buf) + bytes);
            mbox.unexpected.push_back(std::move(msg));
        }
    }
    if (matched_recv) {
        world_->messages_delivered.fetch_add(1, std::memory_order_relaxed);
        world_->bytes_delivered.fetch_add(bytes, std::memory_order_relaxed);
        detail::complete_request(matched_recv, matched_status);
    }
    // Eager transfer: the payload is buffered/delivered, the send is complete.
    detail::complete_request(req, Status{rank_, tag, bytes});
    return Request(std::move(req));
}

Request Communicator::irecv(void* buf, std::size_t bytes, int source, int tag) {
    DFAMR_REQUIRE(source == kAnySource || (0 <= source && source < size_),
                  "irecv: source rank out of range");
    auto req = std::make_shared<detail::RequestState>();
    req->world = world_;

    detail::Mailbox& mbox = *world_->mailboxes[static_cast<std::size_t>(rank_)];
    req->mbox = &mbox;
    bool delivered = false;
    Status st;
    {
        std::lock_guard lock(mbox.m);
        auto it = mbox.unexpected.begin();
        for (; it != mbox.unexpected.end(); ++it) {
            if (detail::matches(source, tag, it->source, it->tag)) break;
        }
        if (it != mbox.unexpected.end()) {
            DFAMR_REQUIRE(it->data.size() <= bytes, "message truncation: recv buffer too small");
            if (!it->data.empty()) std::memcpy(buf, it->data.data(), it->data.size());
            st = Status{it->source, it->tag, it->data.size()};
            mbox.unexpected.erase(it);
            delivered = true;
        } else {
            mbox.posted.push_back(detail::PostedRecv{source, tag, buf, bytes, req});
        }
    }
    if (delivered) {
        world_->messages_delivered.fetch_add(1, std::memory_order_relaxed);
        world_->bytes_delivered.fetch_add(st.bytes, std::memory_order_relaxed);
        detail::complete_request(req, st);
    }
    return Request(std::move(req));
}

void Communicator::send(const void* buf, std::size_t bytes, int dest, int tag) {
    isend(buf, bytes, dest, tag).wait();
}

void Communicator::recv(void* buf, std::size_t bytes, int source, int tag, Status* status) {
    irecv(buf, bytes, source, tag).wait(status);
}

bool Communicator::iprobe(int source, int tag, Status* status) {
    detail::Mailbox& mbox = *world_->mailboxes[static_cast<std::size_t>(rank_)];
    std::lock_guard lock(mbox.m);
    for (const detail::PendingMsg& msg : mbox.unexpected) {
        if (detail::matches(source, tag, msg.source, msg.tag)) {
            if (status != nullptr) *status = Status{msg.source, msg.tag, msg.data.size()};
            return true;
        }
    }
    return false;
}

// ---- Communicator: collectives ---------------------------------------------

void Communicator::collective(const void* in, void* out,
                              const std::function<void(detail::CollectiveCtx&)>& combine) {
    detail::CollectiveCtx& ctx = world_->coll;
    std::unique_lock lock(ctx.m);
    ctx.ins[static_cast<std::size_t>(rank_)] = in;
    ctx.outs[static_cast<std::size_t>(rank_)] = out;
    const std::uint64_t gen = ctx.generation;
    if (++ctx.arrived == size_) {
        if (combine) combine(ctx);
        ctx.arrived = 0;
        ++ctx.generation;
        ctx.cv.notify_all();
    } else {
        while (ctx.generation == gen) {
            ctx.cv.wait_for(lock, detail::kAbortPollInterval);
            if (ctx.generation == gen) world_->check_aborted();
        }
    }
}

void Communicator::barrier() { collective(nullptr, nullptr, {}); }

void Communicator::bcast(void* buf, std::size_t bytes, int root) {
    DFAMR_REQUIRE(0 <= root && root < size_, "bcast: root out of range");
    collective(buf, buf, [bytes, root, this](detail::CollectiveCtx& ctx) {
        const void* src = ctx.ins[static_cast<std::size_t>(root)];
        for (int r = 0; r < size_; ++r) {
            if (r != root) std::memcpy(ctx.outs[static_cast<std::size_t>(r)], src, bytes);
        }
    });
}

void Communicator::allgather(const void* in, std::size_t bytes, void* out) {
    collective(in, out, [bytes, this](detail::CollectiveCtx& ctx) {
        for (int r = 0; r < size_; ++r) {
            auto* dst = static_cast<std::byte*>(ctx.outs[static_cast<std::size_t>(r)]);
            for (int s = 0; s < size_; ++s) {
                std::memcpy(dst + static_cast<std::size_t>(s) * bytes,
                            ctx.ins[static_cast<std::size_t>(s)], bytes);
            }
        }
    });
}

void Communicator::alltoall(const void* in, std::size_t bytes, void* out) {
    collective(in, out, [bytes, this](detail::CollectiveCtx& ctx) {
        for (int r = 0; r < size_; ++r) {
            auto* dst = static_cast<std::byte*>(ctx.outs[static_cast<std::size_t>(r)]);
            for (int s = 0; s < size_; ++s) {
                const auto* src = static_cast<const std::byte*>(ctx.ins[static_cast<std::size_t>(s)]);
                std::memcpy(dst + static_cast<std::size_t>(s) * bytes,
                            src + static_cast<std::size_t>(r) * bytes, bytes);
            }
        }
    });
}

// ---- World ----------------------------------------------------------------

World::World(int nranks, FaultInjector* faults)
    : state_(std::make_unique<detail::WorldState>()) {
    DFAMR_REQUIRE(nranks >= 1, "world needs at least one rank");
    state_->nranks = nranks;
    state_->faults = faults;
    state_->mailboxes.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        state_->mailboxes.push_back(std::make_unique<detail::Mailbox>());
    }
    state_->coll.ins.resize(static_cast<std::size_t>(nranks), nullptr);
    state_->coll.outs.resize(static_cast<std::size_t>(nranks), nullptr);
    comms_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        comms_.push_back(Communicator(state_.get(), r, nranks));
    }
    if (faults != nullptr) {
        state_->sched_thread = std::thread(detail::scheduler_loop, state_.get());
    }
}

World::~World() {
    if (state_->sched_thread.joinable()) {
        {
            std::lock_guard lock(state_->sched_m);
            state_->sched_shutdown = true;
        }
        state_->sched_cv.notify_all();
        state_->sched_thread.join();
    }
}

int World::size() const { return state_->nranks; }

Communicator& World::comm(int rank) {
    DFAMR_REQUIRE(0 <= rank && rank < state_->nranks, "rank out of range");
    return comms_[static_cast<std::size_t>(rank)];
}

void World::run(const std::function<void(Communicator&)>& rank_main) {
    std::mutex error_mutex;
    std::exception_ptr first_error;

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(state_->nranks));
    for (int r = 0; r < state_->nranks; ++r) {
        threads.emplace_back([this, r, &rank_main, &error_mutex, &first_error] {
            const auto record = [&](std::exception_ptr err) {
                {
                    std::lock_guard lock(error_mutex);
                    if (!first_error) first_error = std::move(err);
                }
                state_->aborted.store(true, std::memory_order_relaxed);
                state_->bump_activity();
            };
            try {
                rank_main(comm(r));
            } catch (const RankError&) {
                record(std::current_exception());  // already annotated
            } catch (const std::exception& e) {
                record(std::make_exception_ptr(RankError(r, e.what())));
            } catch (...) {
                record(std::current_exception());
            }
        });
    }
    for (auto& t : threads) t.join();
    state_->aborted.store(false, std::memory_order_relaxed);
    if (first_error) std::rethrow_exception(first_error);
}

std::uint64_t World::messages_delivered() const {
    return state_->messages_delivered.load(std::memory_order_relaxed);
}

std::uint64_t World::bytes_delivered() const {
    return state_->bytes_delivered.load(std::memory_order_relaxed);
}

}  // namespace dfamr::mpi
