#include "mpisim/mpi.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <tuple>

#include "common/error.hpp"
#include "common/lockdep.hpp"
#include "net/endpoint.hpp"
#include "net/rendezvous.hpp"
#include "net/shm_transport.hpp"

#if defined(DFAMR_VERIFY)
#include <cstdio>

#include "verify/mc/protocol.hpp"
#endif

#include "verify/access_check.hpp"  // DFAMR_WIRE_* compile away without DFAMR_VERIFY

namespace dfamr::mpi {

namespace detail {

constexpr auto kAbortPollInterval = std::chrono::milliseconds(5);

inline std::int64_t steady_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

struct RequestState {
    lockdep::Mutex m{"mpisim.request"};
    std::condition_variable_any cv;
    bool done = false;
    Status status;
    WorldState* world = nullptr;
    /// Receive requests remember their mailbox so cancel() can unpost them.
    Mailbox* mbox = nullptr;
};

/// A buffered message. `payload` is a view into `storage`, which owns the
/// bytes — a net frame (payload at a 40-byte offset) for anything that may
/// hit the wire, or a bare vector for frames received from a peer. The
/// payload is copied exactly once when the message is buffered.
struct PendingMsg {
    int source = 0;
    int tag = 0;
    net::FrameBuf storage;
    std::span<const std::byte> payload;
};

/// Buffers a user payload once, into a frame that can either be parked in a
/// mailbox or handed to a net::Endpoint as-is.
inline PendingMsg make_buffered(int source, int tag, const void* buf, std::size_t bytes) {
    PendingMsg msg;
    msg.source = source;
    msg.tag = tag;
    msg.storage = net::make_frame(buf, bytes);
    msg.payload = {msg.storage->data() + net::kHeaderBytes, bytes};
    return msg;
}

struct PostedRecv {
    int source = kAnySource;
    int tag = kAnyTag;
    void* buf = nullptr;
    std::size_t capacity = 0;
    std::shared_ptr<RequestState> req;
    /// Zero-copy receive (irecv_view): delivery moves the message's storage
    /// here instead of memcpying into `buf` (which is null then).
    RxView* view = nullptr;
};

struct Mailbox {
    lockdep::Mutex m{"mpisim.mailbox"};
    std::deque<PendingMsg> unexpected;
    std::deque<PostedRecv> posted;
};

/// A message parked by the delivery scheduler until its release time.
struct DelayedMsg {
    std::int64_t release_ns = 0;
    std::uint64_t seq = 0;  // tie-breaker: preserves post order at equal release
    int dest = 0;
    PendingMsg msg;
};

/// Per-(src,dst,tag) stream bookkeeping. MPI's non-overtaking rule only
/// constrains messages of the same stream: while any message of a stream is
/// parked, later sends of that stream must queue behind it (release-time
/// clamped); messages of other streams may overtake freely.
struct StreamState {
    std::int64_t last_release_ns = 0;
    int inflight = 0;
};

struct CollectiveCtx {
    lockdep::Mutex m{"mpisim.coll"};
    std::condition_variable_any cv;
    int arrived = 0;
    std::uint64_t generation = 0;
    std::vector<const void*> ins;
    std::vector<void*> outs;
};

class WorldSink;

struct WorldState {
    int nranks = 0;
    std::vector<std::unique_ptr<Mailbox>> mailboxes;
    CollectiveCtx coll;

    WorldOptions opts;
    int local_rank = 0;
    bool is_distributed = false;
    std::atomic<int> lost_peer{-1};  // rank whose connection died uncleanly

    bool wire() const { return !endpoints.empty(); }

    // Completion "activity" broadcast used by wait_any and blocking waits.
    lockdep::Mutex activity_m{"mpisim.activity"};
    std::condition_variable_any activity_cv;
    std::uint64_t activity_seq = 0;

    std::atomic<bool> aborted{false};
    std::atomic<std::uint64_t> messages_delivered{0};
    std::atomic<std::uint64_t> bytes_delivered{0};
    /// Staging copies skipped by the zero-copy pack/unpack paths (isend_tx
    /// skipping the frame copy, view receives skipping the delivery memcpy).
    std::atomic<std::uint64_t> copies_elided{0};

    // Fault injection (null = fault-free fast path, identical to before).
    FaultInjector* faults = nullptr;
    lockdep::Mutex sched_m{"mpisim.sched"};
    std::condition_variable_any sched_cv;
    std::vector<DelayedMsg> sched_heap;  // min-heap by (release_ns, seq)
    std::map<std::tuple<int, int, int>, StreamState> streams;
    std::uint64_t sched_seq = 0;
    bool sched_shutdown = false;
    std::thread sched_thread;

#if defined(DFAMR_VERIFY)
    // Live wire-protocol validation (verify/mc/protocol.hpp): one checker
    // per endpoint, attached as its WireObserver. Declared before the
    // endpoints so the checkers outlive the reader/writer threads that
    // report frames into them; the verdict is read in ~World after the
    // endpoints (and their Bye exchange) are gone.
    std::vector<std::unique_ptr<verify::mc::WireChecker>> wire_checkers;
#endif

    // Transport. `endpoints` is empty for the in-process transport. On a
    // wire transport (Tcp or Shm) it holds one transport per rank (loopback
    // world) or a single transport at index local_rank (distributed world);
    // all other slots are null. Declared LAST: their progress threads call
    // into the sinks and from there into the mailboxes/activity_cv above,
    // so the transports must be destroyed (threads joined) before any other
    // member. `sinks` right before them, so sinks outlive those threads too.
    std::vector<std::unique_ptr<WorldSink>> sinks;
    std::vector<std::unique_ptr<net::Transport>> endpoints;

    void bump_activity() {
        {
            std::lock_guard lock(activity_m);
            ++activity_seq;
        }
        activity_cv.notify_all();
    }

    void check_aborted() const {
        if (aborted.load(std::memory_order_relaxed)) {
            throw Error("mpisim: world aborted (another rank failed)");
        }
    }
};

std::span<const void* const> ctx_inputs(const CollectiveCtx& ctx) {
    return {ctx.ins.data(), ctx.ins.size()};
}
std::span<void* const> ctx_outputs(const CollectiveCtx& ctx) {
    return {ctx.outs.data(), ctx.outs.size()};
}

namespace {

void complete_request(const std::shared_ptr<RequestState>& req, const Status& st) {
    {
        std::lock_guard lock(req->m);
        req->done = true;
        req->status = st;
    }
    req->cv.notify_all();
    req->world->bump_activity();
}

bool matches(int want_source, int want_tag, int have_source, int have_tag) {
    // A wildcard tag never matches reserved (protocol-internal) tags, so
    // wire-collective traffic can't leak into application receives.
    if (want_tag == kAnyTag && have_tag >= kReservedTagBase) return false;
    return (want_source == kAnySource || want_source == have_source) &&
           (want_tag == kAnyTag || want_tag == have_tag);
}

/// Hands a message to the destination mailbox: matches a posted receive or
/// parks it in the unexpected queue. Called from isend (immediate path) and
/// from the delivery-scheduler thread (delayed path).
void deliver_msg(WorldState* world, int dest, PendingMsg&& msg) {
    Mailbox& mbox = *world->mailboxes[static_cast<std::size_t>(dest)];
    std::shared_ptr<RequestState> matched_recv;
    Status matched_status;
    {
        std::lock_guard lock(mbox.m);
        auto it = mbox.posted.begin();
        for (; it != mbox.posted.end(); ++it) {
            if (matches(it->source, it->tag, msg.source, msg.tag)) break;
        }
        if (it != mbox.posted.end()) {
            DFAMR_REQUIRE(msg.payload.size() <= it->capacity,
                          "message truncation: recv buffer too small");
            if (it->view != nullptr) {
                // Zero-copy receive: hand over the message's own storage —
                // no landing-zone write at all, so no wire-region check.
                it->view->storage = std::move(msg.storage);
                it->view->payload = msg.payload;
                world->copies_elided.fetch_add(1, std::memory_order_relaxed);
            } else {
                if (!msg.payload.empty()) {
                    // Wire-path write into a posted buffer: validate against
                    // the in-flight region registry before touching the
                    // bytes. This runs on a transport progress thread or the
                    // delivery scheduler — outside any task body, invisible
                    // to the per-thread declared-region table.
                    DFAMR_CHECK_WIRE_WRITE(it->buf, msg.payload.size());
                    std::memcpy(it->buf, msg.payload.data(), msg.payload.size());
                }
                if (it->capacity > 0) DFAMR_WIRE_UNREGISTER(it->buf);
            }
            matched_recv = it->req;
            matched_status = Status{msg.source, msg.tag, msg.payload.size()};
            mbox.posted.erase(it);
        } else {
            mbox.unexpected.push_back(std::move(msg));
        }
    }
    if (matched_recv) {
        world->messages_delivered.fetch_add(1, std::memory_order_relaxed);
        world->bytes_delivered.fetch_add(matched_status.bytes, std::memory_order_relaxed);
        complete_request(matched_recv, matched_status);
    }
}

/// Sends a buffered message where it belongs: the local mailbox for the
/// in-process transport or a self-send, the wire otherwise. Scheduler-
/// released (fault-delayed) messages always travel eagerly: their payload
/// is already buffered, so the rendezvous handshake would buy nothing.
void route_msg(WorldState* world, int dest, PendingMsg&& msg) {
    if (world->wire() && dest != msg.source) {
        net::Transport* ep = world->endpoints[static_cast<std::size_t>(msg.source)].get();
        ep->send_eager(dest, msg.tag, std::move(msg.storage));
        return;
    }
    deliver_msg(world, dest, std::move(msg));
}

/// Delivery-scheduler thread body: releases parked messages in (release
/// time, post order). Runs only in worlds with a fault injector.
void scheduler_loop(WorldState* world) {
    const auto heap_after = [](const DelayedMsg& a, const DelayedMsg& b) {
        return std::tie(a.release_ns, a.seq) > std::tie(b.release_ns, b.seq);
    };
    std::unique_lock lock(world->sched_m);
    for (;;) {
        if (world->sched_heap.empty()) {
            if (world->sched_shutdown) return;
            world->sched_cv.wait(lock);
            continue;
        }
        const std::int64_t now = steady_now_ns();
        const std::int64_t next = world->sched_heap.front().release_ns;
        // On shutdown remaining messages are flushed immediately: nothing
        // may be waiting on them anymore, and dropping them silently would
        // skew the delivery counters tests rely on.
        if (next > now && !world->sched_shutdown) {
            world->sched_cv.wait_for(lock, std::chrono::nanoseconds(next - now));
            continue;
        }
        std::pop_heap(world->sched_heap.begin(), world->sched_heap.end(), heap_after);
        DelayedMsg dm = std::move(world->sched_heap.back());
        world->sched_heap.pop_back();
        lock.unlock();
        const int stream_src = dm.msg.source;
        const int stream_tag = dm.msg.tag;
        route_msg(world, dm.dest, std::move(dm.msg));
        lock.lock();
        const auto key = std::make_tuple(stream_src, dm.dest, stream_tag);
        auto it = world->streams.find(key);
        if (it != world->streams.end() && --it->second.inflight == 0) {
            world->streams.erase(it);
        }
    }
}

}  // namespace

/// Bridges a rank's net::Endpoint into the matching machinery: a received
/// frame becomes a PendingMsg and takes the exact same deliver path as a
/// local send. An unclean peer loss aborts the world.
class WorldSink : public net::Sink {
public:
    WorldSink(WorldState* world, int owner_rank) : world_(world), owner_(owner_rank) {}

    void deliver(int src, int tag, net::FrameBuf storage,
                 std::span<const std::byte> payload) override {
        PendingMsg msg;
        msg.source = src;
        msg.tag = tag;
        msg.storage = std::move(storage);
        msg.payload = payload;
        deliver_msg(world_, owner_, std::move(msg));
    }

    void peer_gone(int peer, bool clean) override {
        if (clean) return;  // orderly Bye during teardown
        world_->lost_peer.store(peer, std::memory_order_relaxed);
        world_->aborted.store(true, std::memory_order_relaxed);
        world_->bump_activity();
    }

private:
    WorldState* world_;
    int owner_;
};

}  // namespace detail

// ---- Request -------------------------------------------------------------

bool Request::test(Status* status) const {
    DFAMR_REQUIRE(state_ != nullptr, "test on null request");
    std::lock_guard lock(state_->m);
    if (state_->done && status != nullptr) *status = state_->status;
    return state_->done;
}

void Request::wait(Status* status) const {
    DFAMR_REQUIRE(state_ != nullptr, "wait on null request");
    std::unique_lock lock(state_->m);
    while (!state_->done) {
        state_->cv.wait_for(lock, detail::kAbortPollInterval);
        if (!state_->done) state_->world->check_aborted();
    }
    if (status != nullptr) *status = state_->status;
}

bool Request::wait_for(std::int64_t timeout_ns, Status* status) const {
    DFAMR_REQUIRE(state_ != nullptr, "wait_for on null request");
    const std::int64_t deadline = detail::steady_now_ns() + timeout_ns;
    std::unique_lock lock(state_->m);
    while (!state_->done) {
        const std::int64_t now = detail::steady_now_ns();
        if (now >= deadline) return false;
        const auto step = std::min<std::int64_t>(
            deadline - now,
            std::chrono::duration_cast<std::chrono::nanoseconds>(detail::kAbortPollInterval)
                .count());
        state_->cv.wait_for(lock, std::chrono::nanoseconds(step));
        if (!state_->done) state_->world->check_aborted();
    }
    if (status != nullptr) *status = state_->status;
    return true;
}

bool Request::cancel() const {
    DFAMR_REQUIRE(state_ != nullptr, "cancel on null request");
    detail::Mailbox* mbox = state_->mbox;
    if (mbox == nullptr) return false;  // sends complete eagerly: nothing to cancel
    {
        std::lock_guard lock(mbox->m);
        auto it = mbox->posted.begin();
        for (; it != mbox->posted.end(); ++it) {
            if (it->req == state_) break;
        }
        if (it == mbox->posted.end()) return false;  // already matched/completed
        if (it->view == nullptr && it->capacity > 0) DFAMR_WIRE_UNREGISTER(it->buf);
        mbox->posted.erase(it);
    }
    detail::complete_request(state_, Status{kUndefined, kUndefined, 0, /*ok=*/false});
    return true;
}

void wait_all(std::span<Request> reqs) {
    for (Request& r : reqs) {
        if (r.valid()) {
            r.wait();
            r.state_.reset();
        }
    }
}

int wait_any_for(std::span<Request> reqs, std::int64_t timeout_ns, Status* status) {
    detail::WorldState* world = nullptr;
    for (const Request& r : reqs) {
        if (r.valid()) {
            world = r.state_->world;
            break;
        }
    }
    if (world == nullptr) return kUndefined;
    const std::int64_t deadline = detail::steady_now_ns() + timeout_ns;

    for (;;) {
        std::uint64_t seq;
        {
            std::lock_guard lock(world->activity_m);
            seq = world->activity_seq;
        }
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            if (reqs[i].valid() && reqs[i].test(status)) {
                reqs[i].state_.reset();
                return static_cast<int>(i);
            }
        }
        const std::int64_t now = detail::steady_now_ns();
        if (now >= deadline) {
            // An aborted world must surface as RankError, never as a benign
            // timeout — otherwise the caller would retry into a dead world.
            // (The abort may arrive via a transport progress thread, so this
            // path is reachable on both transports.)
            world->check_aborted();
            return kTimeout;
        }
        const auto step = std::min<std::int64_t>(
            deadline - now,
            std::chrono::duration_cast<std::chrono::nanoseconds>(detail::kAbortPollInterval)
                .count());
        std::unique_lock lock(world->activity_m);
        world->activity_cv.wait_for(lock, std::chrono::nanoseconds(step),
                                    [&] { return world->activity_seq != seq; });
        lock.unlock();
        world->check_aborted();
    }
}

int wait_any(std::span<Request> reqs, Status* status) {
    detail::WorldState* world = nullptr;
    bool any_valid = false;
    for (const Request& r : reqs) {
        if (r.valid()) {
            any_valid = true;
            world = r.state_->world;
            break;
        }
    }
    if (!any_valid) return kUndefined;

    for (;;) {
        std::uint64_t seq;
        {
            std::lock_guard lock(world->activity_m);
            seq = world->activity_seq;
        }
        for (std::size_t i = 0; i < reqs.size(); ++i) {
            if (reqs[i].valid() && reqs[i].test(status)) {
                reqs[i].state_.reset();
                return static_cast<int>(i);
            }
        }
        std::unique_lock lock(world->activity_m);
        world->activity_cv.wait_for(lock, detail::kAbortPollInterval,
                                    [&] { return world->activity_seq != seq; });
        lock.unlock();
        world->check_aborted();
    }
}

// ---- Zero-copy buffers -----------------------------------------------------

TxBuffer make_tx_buffer(std::size_t bytes) {
    TxBuffer tx;
    tx.storage = net::make_empty_frame(bytes);
    tx.payload = {tx.storage->data() + net::kHeaderBytes, bytes};
    return tx;
}

// ---- Communicator: point-to-point -----------------------------------------

bool Communicator::aborted() const {
    return world_->aborted.load(std::memory_order_relaxed);
}

Request Communicator::isend(const void* buf, std::size_t bytes, int dest, int tag) {
    DFAMR_REQUIRE(tag >= 0 && tag < kReservedTagBase,
                  "isend: tag must be in [0, kReservedTagBase)");
    return isend_impl(buf, bytes, dest, tag, /*allow_fault=*/true);
}

Request Communicator::isend_impl(const void* buf, std::size_t bytes, int dest, int tag,
                                 bool allow_fault) {
    DFAMR_REQUIRE(0 <= dest && dest < size_, "isend: destination rank out of range");
    DFAMR_REQUIRE(tag >= 0, "isend: tag must be non-negative");
    auto req = std::make_shared<detail::RequestState>();
    req->world = world_;
    const bool wire_dest = world_->wire() && dest != rank_;

    if (allow_fault && world_->faults != nullptr) {
        const FaultAction act = world_->faults->on_send(rank_, dest, tag);
        if (act.stall_ns > 0) {
            std::this_thread::sleep_for(std::chrono::nanoseconds(act.stall_ns));
        }
        if (act.crash) {
            throw Error("mpisim: injected crash at rank " + std::to_string(rank_));
        }
        if (act.drop) {
            // Transient delivery failure: the payload vanishes before it
            // reaches the wire/mailbox; the sender learns synchronously via
            // status.ok (the hardened layer retries). Identical on both
            // transports by construction.
            detail::complete_request(req, Status{rank_, tag, bytes, /*ok=*/false});
            return Request(std::move(req));
        }
        bool scheduled = false;
        {
            std::lock_guard slock(world_->sched_m);
            const auto key = std::make_tuple(rank_, dest, tag);
            auto it = world_->streams.find(key);
            // Route through the scheduler when delayed, or when an earlier
            // message of the same stream is still parked (non-overtaking).
            if (act.delay_ns > 0 || it != world_->streams.end()) {
                const std::int64_t now = detail::steady_now_ns();
                detail::StreamState& stream = world_->streams[key];
                const std::int64_t release =
                    std::max(now + act.delay_ns, stream.last_release_ns);
                stream.last_release_ns = release;
                ++stream.inflight;
                world_->sched_heap.push_back(detail::DelayedMsg{
                    release, world_->sched_seq++, dest, detail::make_buffered(rank_, tag, buf, bytes)});
                std::push_heap(world_->sched_heap.begin(), world_->sched_heap.end(),
                               [](const detail::DelayedMsg& a, const detail::DelayedMsg& b) {
                                   return std::tie(a.release_ns, a.seq) >
                                          std::tie(b.release_ns, b.seq);
                               });
                scheduled = true;
            }
        }
        if (scheduled) {
            world_->sched_cv.notify_one();
            detail::complete_request(req, Status{rank_, tag, bytes});
            return Request(std::move(req));
        }
        // No fault on this attempt: fall through to the direct path, which
        // buffers at most once (or not at all when a receive is waiting).
    }

    if (wire_dest) {
        net::Transport* ep = world_->endpoints[static_cast<std::size_t>(rank_)].get();
        net::FrameBuf frame = net::make_frame(buf, bytes);
        if (bytes >= ep->rendezvous_threshold()) {
            // The request completes when the granted Data frame is handed to
            // the kernel (from the endpoint's writer thread).
            const int src = rank_;
            auto* world = world_;
            ep->send_rendezvous(dest, tag, std::move(frame),
                                [req, world, src, tag, bytes] {
                                    (void)world;
                                    detail::complete_request(req, Status{src, tag, bytes});
                                });
            return Request(std::move(req));
        }
        ep->send_eager(dest, tag, std::move(frame));
        detail::complete_request(req, Status{rank_, tag, bytes});
        return Request(std::move(req));
    }

    detail::Mailbox& mbox = *world_->mailboxes[static_cast<std::size_t>(dest)];
    std::shared_ptr<detail::RequestState> matched_recv;
    Status matched_status;
    {
        std::lock_guard lock(mbox.m);
        auto it = mbox.posted.begin();
        for (; it != mbox.posted.end(); ++it) {
            if (detail::matches(it->source, it->tag, rank_, tag)) break;
        }
        if (it != mbox.posted.end()) {
            DFAMR_REQUIRE(bytes <= it->capacity, "message truncation: recv buffer too small");
            if (it->view != nullptr) {
                // A view receive needs owned storage; buffer once and hand
                // the buffer over (same copy count as the memcpy path).
                detail::PendingMsg m = detail::make_buffered(rank_, tag, buf, bytes);
                it->view->storage = std::move(m.storage);
                it->view->payload = m.payload;
            } else {
                if (bytes > 0) {
                    DFAMR_CHECK_WIRE_WRITE(it->buf, bytes);
                    std::memcpy(it->buf, buf, bytes);
                }
                if (it->capacity > 0) DFAMR_WIRE_UNREGISTER(it->buf);
            }
            matched_recv = it->req;
            matched_status = Status{rank_, tag, bytes};
            mbox.posted.erase(it);
        } else {
            mbox.unexpected.push_back(detail::make_buffered(rank_, tag, buf, bytes));
        }
    }
    if (matched_recv) {
        world_->messages_delivered.fetch_add(1, std::memory_order_relaxed);
        world_->bytes_delivered.fetch_add(bytes, std::memory_order_relaxed);
        detail::complete_request(matched_recv, matched_status);
    }
    // Eager transfer: the payload is buffered/delivered, the send is complete.
    detail::complete_request(req, Status{rank_, tag, bytes});
    return Request(std::move(req));
}

Request Communicator::isend_tx(const TxBuffer& tx, int dest, int tag) {
    DFAMR_REQUIRE(tag >= 0 && tag < kReservedTagBase,
                  "isend_tx: tag must be in [0, kReservedTagBase)");
    DFAMR_REQUIRE(0 <= dest && dest < size_, "isend_tx: destination rank out of range");
    DFAMR_REQUIRE(tx.storage != nullptr && tx.storage->size() >= net::kHeaderBytes &&
                      tx.payload.data() == tx.storage->data() + net::kHeaderBytes &&
                      tx.payload.size() == tx.storage->size() - net::kHeaderBytes,
                  "isend_tx: buffer not from make_tx_buffer");
    auto req = std::make_shared<detail::RequestState>();
    req->world = world_;
    const std::size_t bytes = tx.payload.size();
    const bool wire_dest = world_->wire() && dest != rank_;

    // The message as a PendingMsg sharing the TxBuffer's storage: parking it
    // costs a shared_ptr copy where the plain isend path pays make_buffered.
    const auto as_pending = [&] {
        detail::PendingMsg msg;
        msg.source = rank_;
        msg.tag = tag;
        msg.storage = tx.storage;
        msg.payload = {tx.payload.data(), tx.payload.size()};
        return msg;
    };

    if (world_->faults != nullptr) {
        const FaultAction act = world_->faults->on_send(rank_, dest, tag);
        if (act.stall_ns > 0) {
            std::this_thread::sleep_for(std::chrono::nanoseconds(act.stall_ns));
        }
        if (act.crash) {
            throw Error("mpisim: injected crash at rank " + std::to_string(rank_));
        }
        if (act.drop) {
            // The storage is untouched (header not yet encoded), so the
            // hardened layer can re-post the same TxBuffer.
            detail::complete_request(req, Status{rank_, tag, bytes, /*ok=*/false});
            return Request(std::move(req));
        }
        bool scheduled = false;
        {
            std::lock_guard slock(world_->sched_m);
            const auto key = std::make_tuple(rank_, dest, tag);
            auto it = world_->streams.find(key);
            if (act.delay_ns > 0 || it != world_->streams.end()) {
                const std::int64_t now = detail::steady_now_ns();
                detail::StreamState& stream = world_->streams[key];
                const std::int64_t release =
                    std::max(now + act.delay_ns, stream.last_release_ns);
                stream.last_release_ns = release;
                ++stream.inflight;
                world_->sched_heap.push_back(
                    detail::DelayedMsg{release, world_->sched_seq++, dest, as_pending()});
                std::push_heap(world_->sched_heap.begin(), world_->sched_heap.end(),
                               [](const detail::DelayedMsg& a, const detail::DelayedMsg& b) {
                                   return std::tie(a.release_ns, a.seq) >
                                          std::tie(b.release_ns, b.seq);
                               });
                scheduled = true;
            }
        }
        if (scheduled) {
            world_->copies_elided.fetch_add(1, std::memory_order_relaxed);
            world_->sched_cv.notify_one();
            detail::complete_request(req, Status{rank_, tag, bytes});
            return Request(std::move(req));
        }
    }

    if (wire_dest) {
        net::Transport* ep = world_->endpoints[static_cast<std::size_t>(rank_)].get();
        world_->copies_elided.fetch_add(1, std::memory_order_relaxed);
        if (bytes >= ep->rendezvous_threshold()) {
            const int src = rank_;
            ep->send_rendezvous(dest, tag, tx.storage, [req, src, tag, bytes] {
                detail::complete_request(req, Status{src, tag, bytes});
            });
            return Request(std::move(req));
        }
        ep->send_eager(dest, tag, tx.storage);
        detail::complete_request(req, Status{rank_, tag, bytes});
        return Request(std::move(req));
    }

    detail::Mailbox& mbox = *world_->mailboxes[static_cast<std::size_t>(dest)];
    std::shared_ptr<detail::RequestState> matched_recv;
    Status matched_status;
    {
        std::lock_guard lock(mbox.m);
        auto it = mbox.posted.begin();
        for (; it != mbox.posted.end(); ++it) {
            if (detail::matches(it->source, it->tag, rank_, tag)) break;
        }
        if (it != mbox.posted.end()) {
            DFAMR_REQUIRE(bytes <= it->capacity, "message truncation: recv buffer too small");
            if (it->view != nullptr) {
                // Fully zero-copy rendezvous of the two fast paths: the
                // packed frame becomes the receiver's view directly.
                it->view->storage = tx.storage;
                it->view->payload = {tx.payload.data(), tx.payload.size()};
                world_->copies_elided.fetch_add(1, std::memory_order_relaxed);
            } else {
                if (bytes > 0) {
                    DFAMR_CHECK_WIRE_WRITE(it->buf, bytes);
                    std::memcpy(it->buf, tx.payload.data(), bytes);
                }
                if (it->capacity > 0) DFAMR_WIRE_UNREGISTER(it->buf);
            }
            matched_recv = it->req;
            matched_status = Status{rank_, tag, bytes};
            mbox.posted.erase(it);
        } else {
            mbox.unexpected.push_back(as_pending());
            world_->copies_elided.fetch_add(1, std::memory_order_relaxed);
        }
    }
    if (matched_recv) {
        world_->messages_delivered.fetch_add(1, std::memory_order_relaxed);
        world_->bytes_delivered.fetch_add(bytes, std::memory_order_relaxed);
        detail::complete_request(matched_recv, matched_status);
    }
    detail::complete_request(req, Status{rank_, tag, bytes});
    return Request(std::move(req));
}

Request Communicator::irecv(void* buf, std::size_t bytes, int source, int tag) {
    DFAMR_REQUIRE(tag == kAnyTag || (tag >= 0 && tag < kReservedTagBase),
                  "irecv: tag must be kAnyTag or in [0, kReservedTagBase)");
    return irecv_impl(buf, bytes, source, tag);
}

Request Communicator::irecv_view(RxView* view, std::size_t capacity, int source, int tag) {
    DFAMR_REQUIRE(view != nullptr, "irecv_view: null view");
    DFAMR_REQUIRE(tag == kAnyTag || (tag >= 0 && tag < kReservedTagBase),
                  "irecv_view: tag must be kAnyTag or in [0, kReservedTagBase)");
    DFAMR_REQUIRE(source == kAnySource || (0 <= source && source < size_),
                  "irecv_view: source rank out of range");
    auto req = std::make_shared<detail::RequestState>();
    req->world = world_;

    detail::Mailbox& mbox = *world_->mailboxes[static_cast<std::size_t>(rank_)];
    req->mbox = &mbox;
    bool delivered = false;
    Status st;
    {
        std::lock_guard lock(mbox.m);
        auto it = mbox.unexpected.begin();
        for (; it != mbox.unexpected.end(); ++it) {
            if (detail::matches(source, tag, it->source, it->tag)) break;
        }
        if (it != mbox.unexpected.end()) {
            DFAMR_REQUIRE(it->payload.size() <= capacity,
                          "message truncation: recv buffer too small");
            view->storage = std::move(it->storage);
            view->payload = it->payload;
            world_->copies_elided.fetch_add(1, std::memory_order_relaxed);
            st = Status{it->source, it->tag, it->payload.size()};
            mbox.unexpected.erase(it);
            delivered = true;
        } else {
            // No landing zone to register: delivery hands over the frame.
            mbox.posted.push_back(
                detail::PostedRecv{source, tag, nullptr, capacity, req, view});
        }
    }
    if (delivered) {
        world_->messages_delivered.fetch_add(1, std::memory_order_relaxed);
        world_->bytes_delivered.fetch_add(st.bytes, std::memory_order_relaxed);
        detail::complete_request(req, st);
    }
    return Request(std::move(req));
}

Request Communicator::irecv_impl(void* buf, std::size_t bytes, int source, int tag) {
    DFAMR_REQUIRE(source == kAnySource || (0 <= source && source < size_),
                  "irecv: source rank out of range");
    auto req = std::make_shared<detail::RequestState>();
    req->world = world_;

    detail::Mailbox& mbox = *world_->mailboxes[static_cast<std::size_t>(rank_)];
    req->mbox = &mbox;
    bool delivered = false;
    Status st;
    {
        std::lock_guard lock(mbox.m);
        auto it = mbox.unexpected.begin();
        for (; it != mbox.unexpected.end(); ++it) {
            if (detail::matches(source, tag, it->source, it->tag)) break;
        }
        if (it != mbox.unexpected.end()) {
            DFAMR_REQUIRE(it->payload.size() <= bytes,
                          "message truncation: recv buffer too small");
            if (!it->payload.empty()) std::memcpy(buf, it->payload.data(), it->payload.size());
            st = Status{it->source, it->tag, it->payload.size()};
            mbox.unexpected.erase(it);
            delivered = true;
        } else {
            // The buffer is now an in-flight wire landing zone: register it
            // so delivery-path writes (which run on transport threads, not
            // under this task's declared regions) are bounds-checked.
            DFAMR_WIRE_REGISTER(buf, bytes, "mpisim.irecv");
            mbox.posted.push_back(detail::PostedRecv{source, tag, buf, bytes, req});
        }
    }
    if (delivered) {
        world_->messages_delivered.fetch_add(1, std::memory_order_relaxed);
        world_->bytes_delivered.fetch_add(st.bytes, std::memory_order_relaxed);
        detail::complete_request(req, st);
    }
    return Request(std::move(req));
}

void Communicator::send(const void* buf, std::size_t bytes, int dest, int tag) {
    isend(buf, bytes, dest, tag).wait();
}

void Communicator::recv(void* buf, std::size_t bytes, int source, int tag, Status* status) {
    irecv(buf, bytes, source, tag).wait(status);
}

bool Communicator::iprobe(int source, int tag, Status* status) {
    detail::Mailbox& mbox = *world_->mailboxes[static_cast<std::size_t>(rank_)];
    std::lock_guard lock(mbox.m);
    for (const detail::PendingMsg& msg : mbox.unexpected) {
        if (detail::matches(source, tag, msg.source, msg.tag)) {
            if (status != nullptr) *status = Status{msg.source, msg.tag, msg.payload.size()};
            return true;
        }
    }
    return false;
}

void Communicator::abandon_posted_recvs() {
    detail::Mailbox& mbox = *world_->mailboxes[static_cast<std::size_t>(rank_)];
    std::deque<detail::PostedRecv> orphans;
    {
        std::lock_guard lock(mbox.m);
        orphans.swap(mbox.posted);
        for (const detail::PostedRecv& p : orphans) {
            if (p.view == nullptr && p.capacity > 0) DFAMR_WIRE_UNREGISTER(p.buf);
        }
    }
    // Complete outside the mailbox lock (waiters take the request lock).
    for (const detail::PostedRecv& p : orphans) {
        detail::complete_request(p.req, Status{kUndefined, kUndefined, 0, /*ok=*/false});
    }
}

// ---- Communicator: collectives ---------------------------------------------

void Communicator::collective(const void* in, std::size_t in_bytes, void* out,
                              std::size_t out_bytes,
                              const std::function<void(detail::CollectiveCtx&)>& combine) {
    if (world_->wire()) {
        collective_wire(in, in_bytes, out, out_bytes, combine);
        return;
    }
    detail::CollectiveCtx& ctx = world_->coll;
    std::unique_lock lock(ctx.m);
    ctx.ins[static_cast<std::size_t>(rank_)] = in;
    ctx.outs[static_cast<std::size_t>(rank_)] = out;
    const std::uint64_t gen = ctx.generation;
    if (++ctx.arrived == size_) {
        if (combine) combine(ctx);
        ctx.arrived = 0;
        ++ctx.generation;
        ctx.cv.notify_all();
    } else {
        while (ctx.generation == gen) {
            ctx.cv.wait_for(lock, detail::kAbortPollInterval);
            if (ctx.generation == gen) world_->check_aborted();
        }
    }
}

// Wire collectives: rank 0 coordinates. Every other rank contributes a
// 16-byte size announcement ([in_bytes, out_bytes]) followed, when
// in_bytes > 0, by its input payload on the same reserved-tag stream (FIFO
// order guarantees the pair arrives intact). Rank 0 materializes a local
// CollectiveCtx — gathered inputs, scratch outputs sized as announced — and
// runs the exact same combine closure the in-process path runs, then sends
// every rank its result. A zero-byte result frame still flows, which is
// what makes barrier (and every collective) a synchronization point.
void Communicator::collective_wire(const void* in, std::size_t in_bytes, void* out,
                                   std::size_t out_bytes,
                                   const std::function<void(detail::CollectiveCtx&)>& combine) {
    constexpr int kCollGather = kReservedTagBase + 1;
    constexpr int kCollResult = kReservedTagBase + 2;
    if (rank_ != 0) {
        std::uint64_t sizes[2] = {in_bytes, out_bytes};
        isend_impl(sizes, sizeof sizes, 0, kCollGather, /*allow_fault=*/false).wait();
        if (in_bytes > 0) {
            isend_impl(in, in_bytes, 0, kCollGather, /*allow_fault=*/false).wait();
        }
        irecv_impl(out_bytes > 0 ? out : nullptr, out_bytes, 0, kCollResult).wait();
        return;
    }
    const std::size_t n = static_cast<std::size_t>(size_);
    std::vector<std::uint64_t> peer_in(n, 0), peer_out(n, 0);
    std::vector<std::vector<std::byte>> gathered(n);
    peer_in[0] = in_bytes;
    peer_out[0] = out_bytes;
    for (int r = 1; r < size_; ++r) {
        std::uint64_t sizes[2] = {0, 0};
        irecv_impl(sizes, sizeof sizes, r, kCollGather).wait();
        peer_in[static_cast<std::size_t>(r)] = sizes[0];
        peer_out[static_cast<std::size_t>(r)] = sizes[1];
        if (sizes[0] > 0) {
            gathered[static_cast<std::size_t>(r)].resize(static_cast<std::size_t>(sizes[0]));
            irecv_impl(gathered[static_cast<std::size_t>(r)].data(), sizes[0], r, kCollGather)
                .wait();
        }
    }
    detail::CollectiveCtx ctx;
    ctx.ins.resize(n, nullptr);
    ctx.outs.resize(n, nullptr);
    std::vector<std::vector<std::byte>> scratch(n);
    ctx.ins[0] = in;
    ctx.outs[0] = out_bytes > 0 ? out : nullptr;
    for (int r = 1; r < size_; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        ctx.ins[ri] = peer_in[ri] > 0 ? gathered[ri].data() : nullptr;
        if (peer_out[ri] > 0) {
            scratch[ri].resize(static_cast<std::size_t>(peer_out[ri]));
            ctx.outs[ri] = scratch[ri].data();
        }
    }
    if (combine) combine(ctx);
    for (int r = 1; r < size_; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        isend_impl(scratch[ri].data(), scratch[ri].size(), r, kCollResult,
                   /*allow_fault=*/false)
            .wait();
    }
}

void Communicator::barrier() { collective(nullptr, 0, nullptr, 0, {}); }

void Communicator::bcast(void* buf, std::size_t bytes, int root) {
    DFAMR_REQUIRE(0 <= root && root < size_, "bcast: root out of range");
    collective(buf, rank_ == root ? bytes : 0, buf, rank_ == root ? 0 : bytes,
               [bytes, root, this](detail::CollectiveCtx& ctx) {
        const void* src = ctx.ins[static_cast<std::size_t>(root)];
        for (int r = 0; r < size_; ++r) {
            if (r != root) std::memcpy(ctx.outs[static_cast<std::size_t>(r)], src, bytes);
        }
    });
}

void Communicator::allgather(const void* in, std::size_t bytes, void* out) {
    collective(in, bytes, out, static_cast<std::size_t>(size_) * bytes,
               [bytes, this](detail::CollectiveCtx& ctx) {
        for (int r = 0; r < size_; ++r) {
            auto* dst = static_cast<std::byte*>(ctx.outs[static_cast<std::size_t>(r)]);
            for (int s = 0; s < size_; ++s) {
                std::memcpy(dst + static_cast<std::size_t>(s) * bytes,
                            ctx.ins[static_cast<std::size_t>(s)], bytes);
            }
        }
    });
}

void Communicator::alltoall(const void* in, std::size_t bytes, void* out) {
    const std::size_t total = static_cast<std::size_t>(size_) * bytes;
    collective(in, total, out, total, [bytes, this](detail::CollectiveCtx& ctx) {
        for (int r = 0; r < size_; ++r) {
            auto* dst = static_cast<std::byte*>(ctx.outs[static_cast<std::size_t>(r)]);
            for (int s = 0; s < size_; ++s) {
                const auto* src = static_cast<const std::byte*>(ctx.ins[static_cast<std::size_t>(s)]);
                std::memcpy(dst + static_cast<std::size_t>(s) * bytes,
                            src + static_cast<std::size_t>(r) * bytes, bytes);
            }
        }
    });
}

// ---- World ----------------------------------------------------------------

World::World(int nranks, FaultInjector* faults) : World(nranks, WorldOptions{}, faults) {}

World::World(int nranks, const WorldOptions& options, FaultInjector* faults)
    : state_(std::make_unique<detail::WorldState>()) {
    DFAMR_REQUIRE(nranks >= 1, "world needs at least one rank");
    state_->nranks = nranks;
    state_->opts = options;
    state_->faults = faults;
    state_->mailboxes.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        state_->mailboxes.push_back(std::make_unique<detail::Mailbox>());
    }
    state_->coll.ins.resize(static_cast<std::size_t>(nranks), nullptr);
    state_->coll.outs.resize(static_cast<std::size_t>(nranks), nullptr);
    comms_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
        comms_.push_back(Communicator(state_.get(), r, nranks));
    }

    const auto env = options.ignore_launch_env ? std::optional<net::LaunchEnv>{}
                                               : net::LaunchEnv::detect();
    const auto make_trace = [&](int rank) {
        net::ProgressTrace trace;
        if (options.progress_trace) {
            trace = [cb = options.progress_trace, rank](std::int64_t t0, std::int64_t t1) {
                cb(rank, t0, t1);
            };
        }
        return trace;
    };
    const auto attach_checker = [&](int rank) {
#if defined(DFAMR_VERIFY)
        state_->wire_checkers[static_cast<std::size_t>(rank)] =
            std::make_unique<verify::mc::WireChecker>(rank);
        state_->endpoints[static_cast<std::size_t>(rank)]->set_wire_observer(
            state_->wire_checkers[static_cast<std::size_t>(rank)].get());
#else
        (void)rank;
#endif
    };
    if (options.transport != TransportKind::Inproc) {
        state_->endpoints.resize(static_cast<std::size_t>(nranks));
        state_->sinks.resize(static_cast<std::size_t>(nranks));
#if defined(DFAMR_VERIFY)
        state_->wire_checkers.resize(static_cast<std::size_t>(nranks));
#endif
        if (env.has_value()) {
            DFAMR_REQUIRE(env->nranks == nranks,
                          "mpisim: world size " + std::to_string(nranks) +
                              " does not match DFAMR_NRANKS=" + std::to_string(env->nranks));
            state_->is_distributed = true;
            state_->local_rank = env->rank;
        }
    }
    if (options.transport == TransportKind::Tcp) {
        const auto make_endpoint = [&](int rank) {
            state_->sinks[static_cast<std::size_t>(rank)] =
                std::make_unique<detail::WorldSink>(state_.get(), rank);
            auto ep = std::make_unique<net::Endpoint>(
                rank, nranks, options.rendezvous_threshold,
                state_->sinks[static_cast<std::size_t>(rank)].get(), make_trace(rank),
                options.coalesce);
            net::Endpoint* raw = ep.get();
            state_->endpoints[static_cast<std::size_t>(rank)] = std::move(ep);
            attach_checker(rank);
            return raw;
        };
        if (env.has_value()) {
            // Distributed world: one rank in this process; the launcher's
            // exchange server brokers the address table.
            net::Endpoint* ep = make_endpoint(env->rank);
            const std::vector<net::HostPort> table =
                net::exchange_addresses(*env, ep->listen_port());
            ep->connect_mesh(table);
        } else {
            // Loopback world: every rank is a thread here, each with a real
            // TCP endpoint on localhost. Meshing must run concurrently (rank
            // r blocks accepting from ranks > r while dialing ranks < r).
            std::vector<net::Endpoint*> eps;
            eps.reserve(static_cast<std::size_t>(nranks));
            for (int r = 0; r < nranks; ++r) eps.push_back(make_endpoint(r));
            std::vector<net::HostPort> table(static_cast<std::size_t>(nranks));
            for (int r = 0; r < nranks; ++r) {
                table[static_cast<std::size_t>(r)] =
                    net::HostPort{"127.0.0.1", eps[static_cast<std::size_t>(r)]->listen_port()};
            }
            std::vector<std::thread> meshers;
            meshers.reserve(static_cast<std::size_t>(nranks));
            for (int r = 0; r < nranks; ++r) {
                meshers.emplace_back([r, &table, &eps] {
                    eps[static_cast<std::size_t>(r)]->connect_mesh(table);
                });
            }
            for (auto& t : meshers) t.join();
        }
    } else if (options.transport == TransportKind::Shm) {
        // Namespace: explicit option, launcher-provided env, or a per-world
        // name for loopback (pid + counter keeps concurrent worlds apart).
        std::string ns = options.shm_ns;
        if (ns.empty()) {
            if (const char* e = std::getenv("DFAMR_SHM_NS"); e != nullptr && *e != '\0') {
                ns = e;
            } else {
                static std::atomic<std::uint64_t> next_world{0};
                ns = "loop" + std::to_string(static_cast<long>(::getpid())) + "x" +
                     std::to_string(next_world.fetch_add(1, std::memory_order_relaxed));
            }
        }
        const std::uint32_t ring_bytes = net::shm_ring_bytes_from_env();
        const auto make_shm = [&](int rank) {
            state_->sinks[static_cast<std::size_t>(rank)] =
                std::make_unique<detail::WorldSink>(state_.get(), rank);
            net::ShmOptions sopts;
            sopts.rank = rank;
            sopts.nranks = nranks;
            sopts.rendezvous_threshold = options.rendezvous_threshold;
            sopts.ring_bytes = ring_bytes;
            sopts.ns = ns;
            sopts.coalesce = options.coalesce;
            sopts.trace = make_trace(rank);
            auto tp = std::make_unique<net::ShmTransport>(
                sopts, state_->sinks[static_cast<std::size_t>(rank)].get());
            net::ShmTransport* raw = tp.get();
            state_->endpoints[static_cast<std::size_t>(rank)] = std::move(tp);
            attach_checker(rank);
            return raw;
        };
        if (env.has_value()) {
            // Distributed world: the exchange round trip doubles as the
            // barrier proving every rank created its outbound segments.
            net::ShmTransport* tp = make_shm(env->rank);
            (void)net::exchange_addresses(*env, 0);
            tp->open_peers();
        } else {
            // Loopback world: sequential construction IS the barrier.
            std::vector<net::ShmTransport*> tps;
            tps.reserve(static_cast<std::size_t>(nranks));
            for (int r = 0; r < nranks; ++r) tps.push_back(make_shm(r));
            for (net::ShmTransport* tp : tps) tp->open_peers();
        }
    } else {
        DFAMR_REQUIRE(!env.has_value(),
                      "mpisim: launched by dfamr_mpirun (DFAMR_RANK is set) but the transport "
                      "is inproc; pass --transport tcp/shm or set ignore_launch_env");
    }

    if (faults != nullptr) {
        state_->sched_thread = std::thread(detail::scheduler_loop, state_.get());
    }
}

World::~World() {
    if (state_->sched_thread.joinable()) {
        {
            std::lock_guard lock(state_->sched_m);
            state_->sched_shutdown = true;
        }
        state_->sched_cv.notify_all();
        state_->sched_thread.join();
    }
#if defined(DFAMR_VERIFY)
    // Tear the transport down now (joins the reader/writer threads and
    // completes the Bye exchange), then read the wire-protocol verdict.
    state_->endpoints.clear();
    const bool clean_world = state_->lost_peer.load(std::memory_order_relaxed) < 0 &&
                             !state_->aborted.load(std::memory_order_relaxed);
    bool dirty = false;
    for (const auto& chk : state_->wire_checkers) {
        if (!chk) continue;
        for (const std::string& v : chk->violations()) {
            std::fprintf(stderr, "mpisim wire-protocol violation: %s\n", v.c_str());
            dirty = true;
        }
        if (clean_world) {
            // A killed peer legitimately strands its in-flight rendezvous
            // transfers; a clean world must not.
            for (const std::string& p : chk->pending()) {
                std::fprintf(stderr, "mpisim wire-protocol leak: %s\n", p.c_str());
                dirty = true;
            }
        }
    }
    if (dirty) {
        std::fprintf(stderr, "mpisim: wire-protocol verification failed — aborting\n");
        std::abort();
    }
#endif
}

int World::size() const { return state_->nranks; }

Communicator& World::comm(int rank) {
    DFAMR_REQUIRE(0 <= rank && rank < state_->nranks, "rank out of range");
    DFAMR_REQUIRE(!state_->is_distributed || rank == state_->local_rank,
                  "comm: rank " + std::to_string(rank) + " lives in another process");
    return comms_[static_cast<std::size_t>(rank)];
}

bool World::distributed() const { return state_->is_distributed; }

int World::local_rank() const { return state_->is_distributed ? state_->local_rank : 0; }

net::NetCounters World::net_counters() const {
    net::NetCounters total;
    for (const auto& ep : state_->endpoints) {
        if (ep) total += ep->counters();
    }
    // Elisions happen in mpisim's matching layer (and on in-process fast
    // paths), not inside any one transport.
    total.copies_elided += state_->copies_elided.load(std::memory_order_relaxed);
    return total;
}

std::vector<net::PeerStats> World::peer_net_counters() const {
    std::vector<net::PeerStats> total(static_cast<std::size_t>(state_->nranks));
    for (const auto& ep : state_->endpoints) {
        if (!ep) continue;
        const std::vector<net::PeerStats> peers = ep->peer_counters();
        for (std::size_t p = 0; p < peers.size() && p < total.size(); ++p) {
            total[p] += peers[p];
        }
    }
    return total;
}

void World::run(const std::function<void(Communicator&)>& rank_main) {
    std::mutex error_mutex;
    std::exception_ptr first_error;

    // A distributed world hosts exactly one rank; its siblings run the same
    // rank_main in their own processes.
    const int first_rank = state_->is_distributed ? state_->local_rank : 0;
    const int last_rank = state_->is_distributed ? state_->local_rank + 1 : state_->nranks;

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(last_rank - first_rank));
    for (int r = first_rank; r < last_rank; ++r) {
        threads.emplace_back([this, r, &rank_main, &error_mutex, &first_error] {
            const auto record = [&](std::exception_ptr err) {
                {
                    std::lock_guard lock(error_mutex);
                    if (!first_error) first_error = std::move(err);
                }
                state_->aborted.store(true, std::memory_order_relaxed);
                state_->bump_activity();
            };
            try {
                rank_main(comm(r));
            } catch (const RankError&) {
                record(std::current_exception());  // already annotated
            } catch (const std::exception& e) {
                record(std::make_exception_ptr(RankError(r, e.what())));
            } catch (...) {
                record(std::current_exception());
            }
        });
    }
    for (auto& t : threads) t.join();
    state_->aborted.store(false, std::memory_order_relaxed);
    if (first_error) std::rethrow_exception(first_error);
    const int lost = state_->lost_peer.load(std::memory_order_relaxed);
    if (lost >= 0) {
        throw RankError(state_->local_rank,
                        "connection to rank " + std::to_string(lost) +
                            " lost (peer process died without a Bye)");
    }
}

std::uint64_t World::messages_delivered() const {
    return state_->messages_delivered.load(std::memory_order_relaxed);
}

std::uint64_t World::bytes_delivered() const {
    return state_->bytes_delivered.load(std::memory_order_relaxed);
}

}  // namespace dfamr::mpi
