// In-process MPI subset ("mpisim") — the message-passing substrate.
//
// Ranks are threads of one process (World::run spawns one thread per rank).
// The subset implemented is exactly what miniAMR and the paper's TAMPI port
// need: tagged point-to-point with non-blocking requests and MPI matching
// semantics (per-(source,tag,comm) non-overtaking order, wildcard source and
// tag), plus the collectives the mini-app uses (barrier, bcast, allreduce,
// reduce, allgather, alltoall).
//
// Transfer policy: eager — isend buffers the payload at post time, so a send
// request is complete immediately and a receive completes as soon as it is
// matched. MPI permits this buffering; ordering guarantees are preserved by
// per-mailbox FIFO queues.
//
// Thread-safety: equivalent to MPI_THREAD_MULTIPLE. Any thread of a rank
// (e.g. a tasking worker running a communication task) may post operations
// concurrently.
//
// Transports: the matching/mailbox machinery above is transport-agnostic.
// With TransportKind::Inproc, messages move through shared memory exactly as
// before. With TransportKind::Tcp each rank owns a net::Endpoint and
// non-local messages travel as framed TCP payloads (eager below the
// rendezvous threshold, Rts/Cts/Data handshake at or above it); a received
// frame is fed into the same deliver path as a local send, so ordering,
// wildcards and fault semantics are identical. TransportKind::Shm swaps the
// sockets for per-pair lock-free shared-memory rings (net::ShmTransport)
// carrying the exact same frames — cheaper for co-located ranks, and still
// bit-identical because everything above the Transport interface is shared.
// A wire world started by dfamr_mpirun (DFAMR_RANK et al. in the
// environment) runs ONE local rank per process and meshes with its sibling
// processes; otherwise all ranks live in this process, each with its own
// loopback transport.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"

namespace dfamr::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;
inline constexpr int kUndefined = -2;
/// Returned by wait_any_for when the deadline expires before any completion.
inline constexpr int kTimeout = -3;

/// Tags at or above this value are reserved for mpisim internals (the wire
/// collective protocol). Public isend/irecv reject them, and a kAnyTag
/// wildcard never matches them.
inline constexpr int kReservedTagBase = 1 << 29;

enum class TransportKind { Inproc, Tcp, Shm };

/// Transport configuration for a World. Defaults reproduce the historical
/// in-process behavior exactly.
struct WorldOptions {
    TransportKind transport = TransportKind::Inproc;
    /// Payloads >= this many bytes use the rendezvous handshake on the wire
    /// transports (no effect in-process).
    std::size_t rendezvous_threshold = 64 * 1024;
    /// Wire transports batch queued same-destination eager messages into
    /// Coalesced frames with a sub-message table (no effect in-process).
    bool coalesce = false;
    /// Shared-memory namespace for TransportKind::Shm. Empty = DFAMR_SHM_NS
    /// from the launcher, or an auto-generated per-world name for loopback.
    std::string shm_ns;
    /// When set, DFAMR_RANK & friends in the environment are ignored and the
    /// world always runs every rank in this process (loopback endpoints for
    /// Tcp). Used e.g. by the chaos reference twin under dfamr_mpirun.
    bool ignore_launch_env = false;
    /// Progress-thread time accounting hook: called by a rank's endpoint
    /// reader thread after each batch of protocol work.
    std::function<void(int rank, std::int64_t t0_ns, std::int64_t t1_ns)> progress_trace;
};

enum class Op { Sum, Max, Min };

struct Status {
    int source = kUndefined;
    int tag = kUndefined;
    std::size_t bytes = 0;
    /// False when the operation did not transfer data: a send whose payload
    /// was dropped by fault injection, or a canceled receive.
    bool ok = true;
};

/// Exception escaping a rank thread, annotated with the rank id by
/// World::run (the thread context would otherwise be lost on rethrow).
class RankError : public Error {
public:
    RankError(int rank, const std::string& what)
        : Error("[rank " + std::to_string(rank) + "] " + what), rank_(rank) {}
    int rank() const { return rank_; }

private:
    int rank_;
};

/// What the fault injector decided for one message send attempt. Defaults
/// mean "no fault": deliver immediately, like a fault-free world.
struct FaultAction {
    bool drop = false;          // discard the payload; the send completes with ok=false
    bool crash = false;         // throw from the sending call (simulated rank crash)
    std::int64_t stall_ns = 0;  // sender-side stall before the operation proceeds
    std::int64_t delay_ns = 0;  // in-flight delivery delay (enables legal reordering)
};

/// Chaos hook consulted once per isend attempt. mpisim carries no policy of
/// its own — resilience::FaultPlan implements this deterministically.
/// on_send may be called concurrently from any rank thread.
class FaultInjector {
public:
    virtual ~FaultInjector() = default;
    virtual FaultAction on_send(int src, int dest, int tag) = 0;
};

namespace detail {
struct RequestState;
struct Mailbox;
struct CollectiveCtx;
struct WorldState;
}  // namespace detail

/// Handle to an asynchronous operation. Copyable (shared state), like an
/// MPI_Request value that several call sites may test.
class Request {
public:
    Request() = default;

    bool valid() const { return state_ != nullptr; }
    /// Non-blocking completion check (MPI_Test).
    bool test(Status* status = nullptr) const;
    /// Blocking wait (MPI_Wait).
    void wait(Status* status = nullptr) const;
    /// Timed wait: returns false when `timeout_ns` elapses first (the
    /// request stays pending and valid).
    bool wait_for(std::int64_t timeout_ns, Status* status = nullptr) const;
    /// Cancels a still-posted receive (MPI_Cancel): the request completes
    /// with status.ok == false and its buffer is no longer referenced by the
    /// mailbox. Returns true when this call performed the cancellation;
    /// false when the request already completed (data was delivered) or is
    /// a send. Needed so a timed-out receive can be abandoned safely.
    bool cancel() const;

private:
    friend class Communicator;
    friend void wait_all(std::span<Request> reqs);
    friend int wait_any(std::span<Request> reqs, Status* status);
    friend int wait_any_for(std::span<Request> reqs, std::int64_t timeout_ns, Status* status);

    explicit Request(std::shared_ptr<detail::RequestState> s) : state_(std::move(s)) {}
    std::shared_ptr<detail::RequestState> state_;
};

/// A send buffer pre-allocated inside a wire frame: pack tasks serialize
/// directly into `payload`, and isend_tx puts that same storage on the wire
/// — no staging copy. `storage` is shared, so retrying an isend_tx (the
/// HardenedComm path) re-uses the same bytes safely. Works on every
/// transport: in-process, the frame simply becomes the parked message.
struct TxBuffer {
    net::FrameBuf storage;
    std::span<std::byte> payload;
};

/// Allocates a TxBuffer whose payload holds `bytes`. The payload is 8-byte
/// aligned (wire headers are 40 bytes), so views of doubles are safe.
TxBuffer make_tx_buffer(std::size_t bytes);

/// A received message viewed in place: `payload` aliases the transport's
/// frame (or the sender's parked buffer in-process); `storage` keeps it
/// alive. Valid until the RxView is destroyed or reassigned.
struct RxView {
    net::FrameBuf storage;
    std::span<const std::byte> payload;
};

/// Waits for all requests (MPI_Waitall). Invalid requests are ignored.
void wait_all(std::span<Request> reqs);
/// Waits until one request completes and returns its index (MPI_Waitany);
/// the completed request is invalidated. Returns kUndefined if none valid.
int wait_any(std::span<Request> reqs, Status* status = nullptr);
/// wait_any with a deadline: returns kTimeout when `timeout_ns` elapses
/// before any request completes (all requests stay valid).
int wait_any_for(std::span<Request> reqs, std::int64_t timeout_ns, Status* status = nullptr);

/// A rank's endpoint into a communicator. One Communicator object per rank.
class Communicator {
public:
    int rank() const { return rank_; }
    int size() const { return size_; }
    /// True once any rank of this world has failed (the abort flag every
    /// blocking call polls). Lets layers with their own wait loops — the
    /// TAMPI progress engine — observe the failure promptly instead of
    /// riding out their full completion deadlines.
    bool aborted() const;

    // --- point-to-point ------------------------------------------------
    /// `tag` must be in [0, kReservedTagBase).
    Request isend(const void* buf, std::size_t bytes, int dest, int tag);
    Request irecv(void* buf, std::size_t bytes, int source, int tag);
    /// Zero-copy send: `tx.storage` goes on the wire as-is (the payload was
    /// packed in place — see make_tx_buffer). Takes tx by const reference so
    /// a retry wrapper can re-post the same buffer.
    Request isend_tx(const TxBuffer& tx, int dest, int tag);
    /// Zero-copy receive: on completion `*view` holds the message payload
    /// in place (no copy into a user buffer; counted as copies_elided when
    /// the match avoided a memcpy). `capacity` bounds the accepted message
    /// size like irecv's `bytes`. `view` must stay valid until completion.
    Request irecv_view(RxView* view, std::size_t capacity, int source, int tag);
    void send(const void* buf, std::size_t bytes, int dest, int tag);
    void recv(void* buf, std::size_t bytes, int source, int tag, Status* status = nullptr);
    /// Non-blocking probe for a matching incoming message (MPI_Iprobe).
    bool iprobe(int source, int tag, Status* status = nullptr);
    /// Unposts every receive this rank still has in its mailbox, completing
    /// the requests with status.ok == false. A driver that unwinds on an
    /// error MUST call this before freeing its receive buffers: the mailbox
    /// holds raw pointers into them, and a sibling rank that has not yet
    /// observed the abort would otherwise deliver into freed memory.
    void abandon_posted_recvs();

    // --- collectives (all ranks must call in the same order) ------------
    void barrier();
    void bcast(void* buf, std::size_t bytes, int root);
    template <typename T>
    void allreduce(const T* in, T* out, std::size_t count, Op op);
    template <typename T>
    void reduce(const T* in, T* out, std::size_t count, Op op, int root);
    /// Gathers `bytes` from every rank into out[rank*bytes ...].
    void allgather(const void* in, std::size_t bytes, void* out);
    /// Uniform all-to-all: sends in[r*bytes..] to rank r, receives into out[r*bytes..].
    void alltoall(const void* in, std::size_t bytes, void* out);

private:
    friend class World;
    Communicator(detail::WorldState* world, int rank, int size)
        : world_(world), rank_(rank), size_(size) {}

    // Internal p2p entry points: `allow_fault` is false for protocol
    // traffic (wire collectives), which must never be chaos-injected —
    // matching the in-process collectives, which don't touch the injector.
    Request isend_impl(const void* buf, std::size_t bytes, int dest, int tag, bool allow_fault);
    Request irecv_impl(void* buf, std::size_t bytes, int source, int tag);

    // Type-erased collective entry. In-process, the last arriving rank runs
    // `combine` on a shared context; over the wire, rank 0 gathers every
    // rank's contribution (`in_bytes` of input, `out_bytes` of expected
    // result), runs the SAME combine on a materialized context, and scatters
    // the results — so the arithmetic (and its fold order) is bit-identical
    // across transports.
    void collective(const void* in, std::size_t in_bytes, void* out, std::size_t out_bytes,
                    const std::function<void(detail::CollectiveCtx&)>& combine);
    void collective_wire(const void* in, std::size_t in_bytes, void* out, std::size_t out_bytes,
                         const std::function<void(detail::CollectiveCtx&)>& combine);

    detail::WorldState* world_ = nullptr;
    int rank_ = 0;
    int size_ = 0;
};

/// The in-process "cluster": owns the mailboxes of `nranks` ranks and runs
/// rank main functions on dedicated threads.
class World {
public:
    /// `faults`, when non-null, is consulted on every isend and must outlive
    /// the World. A world with faults runs a delivery-scheduler thread for
    /// delayed messages; without one the data path is byte-identical to the
    /// original eager implementation.
    explicit World(int nranks, FaultInjector* faults = nullptr);
    /// Transport-aware constructor. With TransportKind::Tcp the endpoints
    /// mesh during construction (distributed worlds block here until every
    /// sibling process has checked in with the launcher).
    World(int nranks, const WorldOptions& options, FaultInjector* faults = nullptr);
    ~World();

    World(const World&) = delete;
    World& operator=(const World&) = delete;

    int size() const;
    /// This rank's COMM_WORLD endpoint. Valid for the World's lifetime.
    Communicator& comm(int rank);

    /// Spawns one thread per rank running `rank_main`, and joins them.
    /// The first exception thrown by any rank is rethrown here, wrapped as a
    /// RankError carrying the failing rank's id.
    void run(const std::function<void(Communicator&)>& rank_main);

    /// Total messages delivered so far (for tests and conservation checks).
    /// In a distributed world these count this process's rank only.
    std::uint64_t messages_delivered() const;
    std::uint64_t bytes_delivered() const;

    /// True when this process hosts a single rank of a multi-process world
    /// (started by dfamr_mpirun). run() then executes rank_main once, for
    /// local_rank(), and comm() is only valid for that rank.
    bool distributed() const;
    /// The rank hosted by this process (0 when not distributed).
    int local_rank() const;
    /// Aggregated wire counters of this process's endpoints (all zero for
    /// the in-process transport), plus the world's copies_elided count.
    net::NetCounters net_counters() const;
    /// Per-peer wire traffic of this process's endpoints, indexed by peer
    /// rank (empty for the in-process transport).
    std::vector<net::PeerStats> peer_net_counters() const;

private:
    std::unique_ptr<detail::WorldState> state_;
    std::vector<Communicator> comms_;
};

// ---- typed collective implementations (header: templates) ---------------

namespace detail {
template <typename T>
void fold(Op op, const T* in, T* acc, std::size_t count) {
    switch (op) {
        case Op::Sum:
            for (std::size_t i = 0; i < count; ++i) acc[i] += in[i];
            break;
        case Op::Max:
            for (std::size_t i = 0; i < count; ++i) acc[i] = in[i] > acc[i] ? in[i] : acc[i];
            break;
        case Op::Min:
            for (std::size_t i = 0; i < count; ++i) acc[i] = in[i] < acc[i] ? in[i] : acc[i];
            break;
    }
}

// Accessors used by the templated collectives; defined in mpi.cpp.
std::span<const void* const> ctx_inputs(const CollectiveCtx& ctx);
std::span<void* const> ctx_outputs(const CollectiveCtx& ctx);
}  // namespace detail

template <typename T>
void Communicator::allreduce(const T* in, T* out, std::size_t count, Op op) {
    collective(in, count * sizeof(T), out, count * sizeof(T),
               [count, op, this](detail::CollectiveCtx& ctx) {
        auto inputs = detail::ctx_inputs(ctx);
        auto outputs = detail::ctx_outputs(ctx);
        std::vector<T> acc(static_cast<const T*>(inputs[0]), static_cast<const T*>(inputs[0]) + count);
        for (int r = 1; r < size_; ++r) detail::fold(op, static_cast<const T*>(inputs[r]), acc.data(), count);
        for (int r = 0; r < size_; ++r) std::memcpy(outputs[r], acc.data(), count * sizeof(T));
    });
}

template <typename T>
void Communicator::reduce(const T* in, T* out, std::size_t count, Op op, int root) {
    collective(in, count * sizeof(T), out, rank_ == root ? count * sizeof(T) : 0,
               [count, op, root, this](detail::CollectiveCtx& ctx) {
        auto inputs = detail::ctx_inputs(ctx);
        auto outputs = detail::ctx_outputs(ctx);
        std::vector<T> acc(static_cast<const T*>(inputs[0]), static_cast<const T*>(inputs[0]) + count);
        for (int r = 1; r < size_; ++r) detail::fold(op, static_cast<const T*>(inputs[r]), acc.data(), count);
        if (outputs[root] != nullptr) std::memcpy(outputs[root], acc.data(), count * sizeof(T));
    });
}

}  // namespace dfamr::mpi
