// Hardened point-to-point communication: bounded exponential-backoff retry
// for transient delivery failures and deadlines on receive completion, so a
// faulty interconnect surfaces as a typed CommTimeout error instead of a
// hang. Wraps an mpi::Communicator; with fault injection off the wrappers
// add one status check per operation and nothing else.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "amr/trace.hpp"
#include "common/error.hpp"
#include "mpisim/mpi.hpp"

namespace dfamr::resilience {

/// Retry/timeout budget exhausted for a point-to-point operation. The
/// message names the local rank, the peer and the tag so a chaos failure is
/// attributable from the log alone.
class CommTimeout : public Error {
public:
    CommTimeout(const std::string& op, int rank, int peer, int tag)
        : Error("CommTimeout: " + op + " exhausted its retry/timeout budget on rank " +
                std::to_string(rank) + " (peer " + std::to_string(peer) + ", tag " +
                std::to_string(tag) + ")"),
          rank_(rank),
          peer_(peer),
          tag_(tag) {}

    int rank() const { return rank_; }
    int peer() const { return peer_; }
    int tag() const { return tag_; }

private:
    int rank_;
    int peer_;
    int tag_;
};

/// Retry and deadline budget for hardened operations.
struct RetryPolicy {
    int max_attempts = 5;                      // send attempts before CommTimeout
    std::int64_t backoff_ns = 50'000;          // backoff before the first retry
    double backoff_factor = 2.0;               // exponential growth per retry
    std::int64_t max_backoff_ns = 5'000'000;   // backoff ceiling
    std::int64_t timeout_ns = 10'000'000'000;  // receive/wait completion deadline
};

/// Sends with bounded exponential-backoff retry on transient (dropped)
/// delivery. Retries are traced as PhaseKind::Retry intervals when `tracer`
/// is set. Throws CommTimeout after policy.max_attempts dropped attempts.
/// Shared by HardenedComm and the TAMPI integration.
mpi::Request isend_with_retry(mpi::Communicator& comm, const void* buf, std::size_t bytes,
                              int dest, int tag, const RetryPolicy& policy,
                              amr::Tracer* tracer = nullptr, int worker = 0);

class HardenedComm {
public:
    HardenedComm(mpi::Communicator& comm, const RetryPolicy& policy,
                 amr::Tracer* tracer = nullptr)
        : comm_(comm), policy_(policy), tracer_(tracer) {}

    mpi::Communicator& raw() { return comm_; }
    int rank() const { return comm_.rank(); }
    const RetryPolicy& policy() const { return policy_; }

    /// isend with retry on transient failure (completes before returning on
    /// the eager transport, so the retry loop is synchronous).
    mpi::Request isend(const void* buf, std::size_t bytes, int dest, int tag);
    /// Plain irecv: the deadline applies at the wait, not at the post.
    mpi::Request irecv(void* buf, std::size_t bytes, int source, int tag);

    /// Zero-copy isend with the same retry semantics: a dropped attempt
    /// never reaches the wire and leaves the TxBuffer untouched, so
    /// re-posting the same buffer is safe.
    mpi::Request isend_tx(const mpi::TxBuffer& tx, int dest, int tag);
    /// Zero-copy irecv: delivery hands the frame to `view` instead of
    /// copying into a landing zone.
    mpi::Request irecv_view(mpi::RxView* view, std::size_t capacity, int source, int tag);

    void send(const void* buf, std::size_t bytes, int dest, int tag);
    /// Blocking receive with deadline; a timed-out receive is canceled (its
    /// buffer released from the mailbox) before CommTimeout is thrown.
    void recv(void* buf, std::size_t bytes, int source, int tag, mpi::Status* status = nullptr);

    /// wait_all with deadline: cancels unfinished receives before throwing
    /// CommTimeout. `peer`/`tag` only annotate the error message.
    void wait_all(std::span<mpi::Request> reqs, int peer = mpi::kAnySource,
                  int tag = mpi::kAnyTag);
    /// wait_any with deadline; same contract as mpi::wait_any otherwise.
    int wait_any(std::span<mpi::Request> reqs, mpi::Status* status = nullptr,
                 int peer = mpi::kAnySource, int tag = mpi::kAnyTag);

private:
    mpi::Communicator& comm_;
    RetryPolicy policy_;
    amr::Tracer* tracer_ = nullptr;
};

}  // namespace dfamr::resilience
