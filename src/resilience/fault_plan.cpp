#include "resilience/fault_plan.hpp"

#include <algorithm>

namespace dfamr::resilience {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

std::uint64_t stream_seed(std::uint64_t seed, int src, int dst, int tag) {
    std::uint64_t h = seed;
    h = mix(h, static_cast<std::uint64_t>(src));
    h = mix(h, static_cast<std::uint64_t>(dst));
    h = mix(h, static_cast<std::uint64_t>(tag));
    return h;
}

}  // namespace

mpi::FaultAction FaultPlan::on_send(int src, int dest, int tag) {
    mpi::FaultAction act;
    std::lock_guard lock(mutex_);

    // Rank-scoped faults (stall, crash) count every send attempt of a rank,
    // which is deterministic per rank because each rank's send sequence is.
    const std::uint64_t nth = ++sends_per_rank_[src];
    if (src == cfg_.stall_rank && cfg_.stall_every > 0 &&
        nth % static_cast<std::uint64_t>(cfg_.stall_every) == 0) {
        act.stall_ns = cfg_.stall_ns;
    }
    if (src == cfg_.crash_rank && nth >= static_cast<std::uint64_t>(cfg_.crash_after_sends)) {
        act.crash = true;
        events_.push_back(FaultEvent{src, dest, tag, 0, false, act.stall_ns > 0, true, 0});
        return act;
    }

    // Stream-scoped faults (drop, delay): one RNG per stream, seeded from
    // (seed, src, dst, tag), consulted in stream order.
    const auto key = std::make_tuple(src, dest, tag);
    auto [it, inserted] = streams_.try_emplace(key);
    Stream& s = it->second;
    if (inserted) s.rng = Rng(stream_seed(cfg_.seed, src, dest, tag));
    const std::uint64_t seq = s.seq++;

    if (s.drops_remaining > 0) {
        --s.drops_remaining;
        act.drop = true;
    } else if (!s.grace && cfg_.drop_prob > 0 && s.rng.next_double() < cfg_.drop_prob) {
        act.drop = true;
        s.drops_remaining =
            cfg_.max_extra_drops > 0
                ? static_cast<int>(s.rng.below(static_cast<std::uint64_t>(cfg_.max_extra_drops) + 1))
                : 0;
    } else if (cfg_.delay_prob > 0 && s.rng.next_double() < cfg_.delay_prob) {
        act.delay_ns = 1 + static_cast<std::int64_t>(
                               s.rng.below(static_cast<std::uint64_t>(cfg_.max_delay_ns)));
    }
    // A burst never extends past its forced drops: the delivery that ends it
    // is exempt from the drop roll, so per stream at most 1 + max_extra_drops
    // consecutive sends fail and a bounded retry is guaranteed to succeed.
    s.grace = act.drop;

    if (act.drop) ++drops_;
    if (act.delay_ns > 0) ++delays_;
    events_.push_back(
        FaultEvent{src, dest, tag, seq, act.drop, act.stall_ns > 0, false, act.delay_ns});
    return act;
}

std::vector<FaultEvent> FaultPlan::events() const {
    std::lock_guard lock(mutex_);
    return events_;
}

std::vector<FaultEvent> FaultPlan::stream_events(int src, int dst, int tag) const {
    std::lock_guard lock(mutex_);
    std::vector<FaultEvent> out;
    for (const FaultEvent& e : events_) {
        if (e.src == src && e.dst == dst && e.tag == tag) out.push_back(e);
    }
    std::sort(out.begin(), out.end(), [](const FaultEvent& a, const FaultEvent& b) {
        return a.stream_seq < b.stream_seq;
    });
    return out;
}

std::uint64_t FaultPlan::drops() const {
    std::lock_guard lock(mutex_);
    return drops_;
}

std::uint64_t FaultPlan::delays() const {
    std::lock_guard lock(mutex_);
    return delays_;
}

void FaultConfig::register_cli(CliParser& cli) {
    cli.add_option("--fault_seed", "seed of the deterministic fault plan", "1");
    cli.add_option("--fault_drop_prob", "per-message transient drop probability", "0");
    cli.add_option("--fault_max_extra_drops", "extra consecutive drops per dropped message", "1");
    cli.add_option("--fault_delay_prob", "per-message delivery delay probability", "0");
    cli.add_option("--fault_max_delay_ns", "maximum injected delivery delay (ns)", "200000");
    cli.add_option("--fault_stall_rank", "rank whose sends stall periodically (-1 = off)", "-1");
    cli.add_option("--fault_stall_every", "stall every k-th send of the stalled rank", "0");
    cli.add_option("--fault_stall_ns", "stall duration (ns)", "0");
    cli.add_option("--fault_crash_rank", "rank that crashes (-1 = off)", "-1");
    cli.add_option("--fault_crash_after_sends", "crash on the rank's k-th send (1-based)", "1");
}

FaultConfig FaultConfig::from_cli(const CliParser& cli) {
    FaultConfig cfg;
    if (cli.has("--fault_seed")) cfg.seed = static_cast<std::uint64_t>(cli.get_int("--fault_seed"));
    if (cli.has("--fault_drop_prob")) cfg.drop_prob = cli.get_double("--fault_drop_prob");
    if (cli.has("--fault_max_extra_drops")) {
        cfg.max_extra_drops = static_cast<int>(cli.get_int("--fault_max_extra_drops"));
    }
    if (cli.has("--fault_delay_prob")) cfg.delay_prob = cli.get_double("--fault_delay_prob");
    if (cli.has("--fault_max_delay_ns")) cfg.max_delay_ns = cli.get_int("--fault_max_delay_ns");
    if (cli.has("--fault_stall_rank")) {
        cfg.stall_rank = static_cast<int>(cli.get_int("--fault_stall_rank"));
    }
    if (cli.has("--fault_stall_every")) {
        cfg.stall_every = static_cast<int>(cli.get_int("--fault_stall_every"));
    }
    if (cli.has("--fault_stall_ns")) cfg.stall_ns = cli.get_int("--fault_stall_ns");
    if (cli.has("--fault_crash_rank")) {
        cfg.crash_rank = static_cast<int>(cli.get_int("--fault_crash_rank"));
    }
    if (cli.has("--fault_crash_after_sends")) {
        cfg.crash_after_sends = static_cast<int>(cli.get_int("--fault_crash_after_sends"));
    }
    return cfg;
}

}  // namespace dfamr::resilience
