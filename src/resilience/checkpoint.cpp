#include "resilience/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "amr/comm_plan.hpp"
#include "common/bytecodec.hpp"
#include "common/error.hpp"

namespace dfamr::resilience {

namespace {

using bytes::Reader;
using bytes::Writer;

constexpr char kMagic[8] = {'D', 'F', 'A', 'M', 'R', 'C', 'K', 'P'};

// Gather tags: a dedicated pair inside the exchange-control tag space,
// disjoint from kAckTag (+0), kBlockIdTag (+1) and kBlockDataTagBase (+16).
constexpr int kSizeTag = amr::kExchangeTagBase + 8;
constexpr int kBlobTag = amr::kExchangeTagBase + 9;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    return h;
}

void put_vec3d(Writer& w, const Vec3d& v) {
    w.f64(v.x);
    w.f64(v.y);
    w.f64(v.z);
}

Vec3d get_vec3d(Reader& r) {
    Vec3d v;
    v.x = r.f64();
    v.y = r.f64();
    v.z = r.f64();
    return v;
}

void put_key(Writer& w, const amr::BlockKey& k) {
    w.i32(k.level);
    w.i64(k.anchor.x);
    w.i64(k.anchor.y);
    w.i64(k.anchor.z);
}

amr::BlockKey get_key(Reader& r) {
    amr::BlockKey k;
    k.level = r.i32();
    k.anchor.x = r.i64();
    k.anchor.y = r.i64();
    k.anchor.z = r.i64();
    return k;
}

std::vector<std::byte> read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    DFAMR_REQUIRE(in.good(), "checkpoint: cannot open '" + path + "'");
    const std::streamsize size = in.tellg();
    in.seekg(0);
    std::vector<std::byte> bytes(static_cast<std::size_t>(size));
    if (size > 0) in.read(reinterpret_cast<char*>(bytes.data()), size);
    DFAMR_REQUIRE(in.good(), "checkpoint: cannot read '" + path + "'");
    return bytes;
}

/// Parses the header; returns the state and leaves `r` positioned at the
/// per-rank section table.
CheckpointState parse_header(Reader& r) {
    char magic[8];
    r.raw(magic, sizeof magic);
    DFAMR_REQUIRE(std::memcmp(magic, kMagic, sizeof kMagic) == 0,
                  "checkpoint: bad magic (not a dfamr checkpoint)");
    const std::uint32_t version = r.u32();
    DFAMR_REQUIRE(version != 1,
                  "checkpoint: unsupported version 1 (this build reads version " +
                      std::to_string(kCheckpointVersion) +
                      "; version-1 images predate the scenario hysteresis state and cannot "
                      "be restored — re-run the original configuration to produce a fresh "
                      "checkpoint)");
    DFAMR_REQUIRE(version != 2,
                  "checkpoint: unsupported version 2 (this build reads version " +
                      std::to_string(kCheckpointVersion) +
                      "; version-2 images predate the conservative-transport state — the "
                      "simulated time and the mass-conservation ledger a restored run must "
                      "continue from — re-run the original configuration to produce a fresh "
                      "checkpoint)");
    DFAMR_REQUIRE(version == kCheckpointVersion,
                  "checkpoint: unsupported version " + std::to_string(version) +
                      " (this build reads version " + std::to_string(kCheckpointVersion) + ")");

    CheckpointState st;
    st.nranks = static_cast<int>(r.u32());
    st.config_fingerprint = r.u64();
    st.ts_completed = static_cast<int>(r.i64());
    st.stage_counter = static_cast<int>(r.i64());
    st.sim_time = r.f64();
    st.initial_mass = r.f64();
    st.mass_drift = r.f64();
    st.boundary_outflux = r.f64();
    st.reflux_corrections = r.i64();

    const std::uint32_t nobjects = r.u32();
    st.objects.resize(nobjects);
    for (amr::ObjectSpec& obj : st.objects) {
        obj.type = static_cast<amr::ObjectType>(r.i32());
        obj.bounce = r.u32() != 0;
        obj.center = get_vec3d(r);
        obj.move = get_vec3d(r);
        obj.size = get_vec3d(r);
        obj.inc = get_vec3d(r);
    }

    const std::uint32_t nsums = r.u32();
    st.checksums.resize(nsums);
    for (double& v : st.checksums) v = r.f64();
    const std::uint32_t nref = r.u32();
    st.checksum_reference.resize(nref);
    for (double& v : st.checksum_reference) v = r.f64();
    st.validation_ok = r.u32() != 0;

    const std::uint32_t nleaves = r.u32();
    for (std::uint32_t i = 0; i < nleaves; ++i) {
        const amr::BlockKey key = get_key(r);
        st.owners[key] = r.i32();
    }

    const std::uint32_t nderef = r.u32();
    for (std::uint32_t i = 0; i < nderef; ++i) {
        const amr::BlockKey key = get_key(r);
        st.deref_counts[key] = r.i32();
    }
    return st;
}

}  // namespace

std::uint64_t config_fingerprint(const amr::Config& cfg) {
    std::uint64_t h = 0x64666d61u;  // arbitrary non-zero start
    for (const int v : {cfg.npx, cfg.npy, cfg.npz, cfg.init_x, cfg.init_y, cfg.init_z, cfg.nx,
                        cfg.ny, cfg.nz, cfg.num_vars, cfg.num_refine,
                        static_cast<int>(cfg.objects.size())}) {
        h = mix(h, static_cast<std::uint64_t>(v));
    }
    h = mix(h, cfg.seed);
    // Scenario identity: a checkpoint of an advected-gaussian run must not
    // restore into an objects-driven synthetic run (field data, refinement
    // marks and dt would all silently disagree).
    for (const char c : cfg.scenario) h = mix(h, static_cast<std::uint64_t>(c));
    for (const char c : cfg.estimator) h = mix(h, static_cast<std::uint64_t>(c));
    std::uint64_t threshold_bits = 0;
    static_assert(sizeof threshold_bits == sizeof cfg.refine_threshold);
    std::memcpy(&threshold_bits, &cfg.refine_threshold, sizeof threshold_bits);
    h = mix(h, threshold_bits);
    h = mix(h, static_cast<std::uint64_t>(cfg.deref_count));
    return h;
}

std::vector<std::byte> serialize_rank_blocks(const amr::Mesh& mesh) {
    Writer w;
    const std::vector<amr::BlockKey> keys = mesh.owned_keys();
    w.u32(static_cast<std::uint32_t>(keys.size()));
    for (const amr::BlockKey& key : keys) {
        const amr::Block& blk = mesh.block(key);
        put_key(w, key);
        w.u64(blk.data_size());
        w.raw(blk.data(), blk.data_size() * sizeof(double));
    }
    return std::move(w.bytes);
}

std::vector<std::byte> build_checkpoint(HardenedComm& comm, const CheckpointState& state,
                                        const std::vector<std::byte>& rank_blob) {
    const int rank = comm.rank();
    const int nranks = comm.raw().size();
    if (rank != 0) {
        const std::uint64_t size = rank_blob.size();
        comm.send(&size, sizeof size, 0, kSizeTag);
        if (size > 0) comm.send(rank_blob.data(), rank_blob.size(), 0, kBlobTag);
        return {};
    }

    std::vector<std::vector<std::byte>> sections(static_cast<std::size_t>(nranks));
    sections[0] = rank_blob;
    for (int r = 1; r < nranks; ++r) {
        std::uint64_t size = 0;
        comm.recv(&size, sizeof size, r, kSizeTag);
        sections[static_cast<std::size_t>(r)].resize(size);
        if (size > 0) {
            comm.recv(sections[static_cast<std::size_t>(r)].data(), size, r, kBlobTag);
        }
    }

    Writer w;
    w.raw(kMagic, sizeof kMagic);
    w.u32(kCheckpointVersion);
    w.u32(static_cast<std::uint32_t>(nranks));
    w.u64(state.config_fingerprint);
    w.i64(state.ts_completed);
    w.i64(state.stage_counter);
    w.f64(state.sim_time);
    w.f64(state.initial_mass);
    w.f64(state.mass_drift);
    w.f64(state.boundary_outflux);
    w.i64(state.reflux_corrections);
    w.u32(static_cast<std::uint32_t>(state.objects.size()));
    for (const amr::ObjectSpec& obj : state.objects) {
        w.i32(static_cast<std::int32_t>(obj.type));
        w.u32(obj.bounce ? 1 : 0);
        put_vec3d(w, obj.center);
        put_vec3d(w, obj.move);
        put_vec3d(w, obj.size);
        put_vec3d(w, obj.inc);
    }
    w.u32(static_cast<std::uint32_t>(state.checksums.size()));
    for (const double v : state.checksums) w.f64(v);
    w.u32(static_cast<std::uint32_t>(state.checksum_reference.size()));
    for (const double v : state.checksum_reference) w.f64(v);
    w.u32(state.validation_ok ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(state.owners.size()));
    for (const auto& [key, owner] : state.owners) {
        put_key(w, key);
        w.i32(owner);
    }
    w.u32(static_cast<std::uint32_t>(state.deref_counts.size()));
    for (const auto& [key, count] : state.deref_counts) {
        put_key(w, key);
        w.i32(count);
    }

    // Section table, then the sections themselves.
    const std::size_t table_at = w.bytes.size();
    std::size_t offset = table_at + static_cast<std::size_t>(nranks) * 2 * sizeof(std::uint64_t);
    for (int r = 0; r < nranks; ++r) {
        w.u64(offset);
        w.u64(sections[static_cast<std::size_t>(r)].size());
        offset += sections[static_cast<std::size_t>(r)].size();
    }
    for (const auto& section : sections) {
        w.raw(section.data(), section.size());
    }
    return std::move(w.bytes);
}

void write_checkpoint_file(const std::string& path, std::span<const std::byte> image) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        DFAMR_REQUIRE(out.good(), "checkpoint: cannot write '" + tmp + "'");
        out.write(reinterpret_cast<const char*>(image.data()),
                  static_cast<std::streamsize>(image.size()));
        DFAMR_REQUIRE(out.good(), "checkpoint: write failed for '" + tmp + "'");
    }
    DFAMR_REQUIRE(std::rename(tmp.c_str(), path.c_str()) == 0,
                  "checkpoint: cannot move '" + tmp + "' into place");
}

void write_checkpoint(HardenedComm& comm, const std::string& path, const CheckpointState& state,
                      const std::vector<std::byte>& rank_blob) {
    const std::vector<std::byte> image = build_checkpoint(comm, state, rank_blob);
    if (comm.rank() == 0) write_checkpoint_file(path, image);
}

CheckpointState read_checkpoint_state(std::span<const std::byte> image) {
    Reader r{image.data(), image.size()};
    return parse_header(r);
}

CheckpointState read_checkpoint_state(const std::string& path) {
    const std::vector<std::byte> bytes = read_file(path);
    return read_checkpoint_state(std::span<const std::byte>(bytes));
}

std::vector<std::pair<amr::BlockKey, std::vector<double>>> read_rank_blocks(
    std::span<const std::byte> image, int rank) {
    Reader r{image.data(), image.size()};
    const CheckpointState st = parse_header(r);
    DFAMR_REQUIRE(0 <= rank && rank < st.nranks, "checkpoint: rank out of range");

    // Reader sits at the section table now.
    std::uint64_t offset = 0, size = 0;
    for (int i = 0; i <= rank; ++i) {
        offset = r.u64();
        size = r.u64();
    }
    DFAMR_REQUIRE(offset + size <= image.size(), "checkpoint: section out of bounds");

    Reader section{image.data() + offset, static_cast<std::size_t>(size)};
    const std::uint32_t nblocks = section.u32();
    std::vector<std::pair<amr::BlockKey, std::vector<double>>> out;
    out.reserve(nblocks);
    for (std::uint32_t i = 0; i < nblocks; ++i) {
        const amr::BlockKey key = get_key(section);
        const std::uint64_t count = section.u64();
        std::vector<double> data(static_cast<std::size_t>(count));
        section.raw(data.data(), data.size() * sizeof(double));
        out.emplace_back(key, std::move(data));
    }
    return out;
}

std::vector<std::pair<amr::BlockKey, std::vector<double>>> read_rank_blocks(
    const std::string& path, int rank) {
    const std::vector<std::byte> bytes = read_file(path);
    return read_rank_blocks(std::span<const std::byte>(bytes), rank);
}

}  // namespace dfamr::resilience
