// Versioned binary checkpoint/restart of the full simulation state.
//
// Layout (version 3, little-endian fixed-width fields):
//   magic "DFAMRCKP" | u32 version | u32 nranks | u64 config fingerprint
//   | i64 ts_completed | i64 stage_counter
//   | f64 sim_time | f64 initial_mass | f64 mass_drift
//   | f64 boundary_outflux | i64 reflux_corrections           [v3]
//   | objects (count + raw ObjectSpec fields)
//   | checksum history, drift reference, validation flag
//   | leaf owner map (count + {level, anchor, owner})
//   | deref hysteresis counters (count + {key, i32 streak})   [v2]
//   | per-rank section table (offset, size)
//   | per-rank block sections ({key, cell data} per owned block)
//
// Version 2 added the scenario subsystem's per-block coarsen-willing streak
// counters (and folded the scenario/estimator selection into the config
// fingerprint). Version 3 added the conservative-transport state: the
// simulated time (dt now varies for cfl_from_field scenarios, so
// stage * dt no longer reconstructs it) and the global conservation ledger
// (mass drift, boundary outflux, reflux-correction count — allreduced at
// write, restored on rank 0 only). Flux registers themselves are per-stage
// transients, rebuilt with the comm plan, and are never serialized. Older
// images are rejected with a clear error rather than silently misread.
//
// Writing is collective: every rank serializes its own blocks, ranks != 0
// ship their blob to rank 0 over hardened point-to-point on dedicated tags,
// and rank 0 assembles the complete checkpoint image in memory. The image
// can then be written to a file atomically (tmp + rename) or kept in memory
// — job suspend/resume in the serve layer round-trips state without ever
// touching disk, through byte-identical images. Restoring needs no
// communication: ranks share the process, so each reads its own section.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "amr/config.hpp"
#include "amr/mesh.hpp"
#include "amr/object.hpp"
#include "resilience/hardened_comm.hpp"

namespace dfamr::resilience {

inline constexpr std::uint32_t kCheckpointVersion = 3;

/// Everything global a restored run needs besides the per-rank blocks.
struct CheckpointState {
    std::uint64_t config_fingerprint = 0;
    int nranks = 0;
    int ts_completed = 0;
    int stage_counter = 0;
    /// Simulated time so far (sum of the dt of every completed stage; not
    /// stage_counter * dt once dt varies with the live field).
    double sim_time = 0;
    /// Global initial mass of the original (pre-checkpoint) run: a restored
    /// run keeps the budget identity against the true simulation start.
    double initial_mass = 0;
    /// Global conservation ledger at checkpoint time (allreduced at write;
    /// restore seeds rank 0 only so the end-of-run allreduce is exact).
    double mass_drift = 0;
    double boundary_outflux = 0;
    std::int64_t reflux_corrections = 0;
    std::vector<amr::ObjectSpec> objects;
    std::vector<double> checksums;           // RankResult history so far
    std::vector<double> checksum_reference;  // drift reference per group
    bool validation_ok = true;
    std::map<amr::BlockKey, int> owners;     // global leaf -> rank map
    /// Replicated coarsen-willing streak per block (scenario hysteresis).
    std::map<amr::BlockKey, int> deref_counts;
};

/// Hash of the Config fields a checkpoint must agree on to be restorable.
std::uint64_t config_fingerprint(const amr::Config& cfg);

/// Serializes this rank's owned blocks (keys + raw cell data).
std::vector<std::byte> serialize_rank_blocks(const amr::Mesh& mesh);

/// Collective assembly: every rank passes its blob; rank 0 gathers them and
/// returns the complete checkpoint image (the exact byte sequence a
/// checkpoint file holds). Ranks != 0 return an empty vector. All ranks
/// must pass an identical `state` (it is serialized once, by rank 0).
std::vector<std::byte> build_checkpoint(HardenedComm& comm, const CheckpointState& state,
                                        const std::vector<std::byte>& rank_blob);

/// Atomically writes an assembled image to `path` (tmp + rename). Only the
/// rank holding the image (rank 0 after build_checkpoint) should call this.
void write_checkpoint_file(const std::string& path, std::span<const std::byte> image);

/// Collective write: build_checkpoint + write_checkpoint_file on rank 0.
void write_checkpoint(HardenedComm& comm, const std::string& path, const CheckpointState& state,
                      const std::vector<std::byte>& rank_blob);

/// Validates the header + global state of an in-memory image. Throws
/// dfamr::Error on a bad magic, unsupported version, or truncated input.
CheckpointState read_checkpoint_state(std::span<const std::byte> image);
/// Same, reading the image from a file.
CheckpointState read_checkpoint_state(const std::string& path);

/// Reads one rank's block section of an in-memory image: (key, cell data)
/// pairs.
std::vector<std::pair<amr::BlockKey, std::vector<double>>> read_rank_blocks(
    std::span<const std::byte> image, int rank);
/// Same, reading the image from a file.
std::vector<std::pair<amr::BlockKey, std::vector<double>>> read_rank_blocks(
    const std::string& path, int rank);

}  // namespace dfamr::resilience
