#include "resilience/hardened_comm.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/timing.hpp"

namespace dfamr::resilience {

mpi::Request isend_with_retry(mpi::Communicator& comm, const void* buf, std::size_t bytes,
                              int dest, int tag, const RetryPolicy& policy, amr::Tracer* tracer,
                              int worker) {
    std::int64_t backoff = policy.backoff_ns;
    for (int attempt = 1;; ++attempt) {
        mpi::Request req = comm.isend(buf, bytes, dest, tag);
        mpi::Status st;
        // Eager transport: the send completes before isend returns, so a
        // transient drop is visible synchronously. A request still in
        // flight is treated as accepted.
        if (!req.test(&st) || st.ok) return req;
        if (attempt >= policy.max_attempts) {
            throw CommTimeout("isend", comm.rank(), dest, tag);
        }
        const std::int64_t t0 = now_ns();
        std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
        backoff = std::min(static_cast<std::int64_t>(static_cast<double>(backoff) *
                                                     policy.backoff_factor),
                           policy.max_backoff_ns);
        if (tracer != nullptr) {
            tracer->record(comm.rank(), worker, t0, now_ns(), amr::PhaseKind::Retry);
        }
    }
}

mpi::Request HardenedComm::isend(const void* buf, std::size_t bytes, int dest, int tag) {
    return isend_with_retry(comm_, buf, bytes, dest, tag, policy_, tracer_, 0);
}

mpi::Request HardenedComm::irecv(void* buf, std::size_t bytes, int source, int tag) {
    return comm_.irecv(buf, bytes, source, tag);
}

mpi::Request HardenedComm::isend_tx(const mpi::TxBuffer& tx, int dest, int tag) {
    std::int64_t backoff = policy_.backoff_ns;
    for (int attempt = 1;; ++attempt) {
        mpi::Request req = comm_.isend_tx(tx, dest, tag);
        mpi::Status st;
        if (!req.test(&st) || st.ok) return req;
        if (attempt >= policy_.max_attempts) {
            throw CommTimeout("isend_tx", comm_.rank(), dest, tag);
        }
        const std::int64_t t0 = now_ns();
        std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
        backoff = std::min(static_cast<std::int64_t>(static_cast<double>(backoff) *
                                                     policy_.backoff_factor),
                           policy_.max_backoff_ns);
        if (tracer_ != nullptr) {
            tracer_->record(comm_.rank(), 0, t0, now_ns(), amr::PhaseKind::Retry);
        }
    }
}

mpi::Request HardenedComm::irecv_view(mpi::RxView* view, std::size_t capacity, int source,
                                      int tag) {
    return comm_.irecv_view(view, capacity, source, tag);
}

void HardenedComm::send(const void* buf, std::size_t bytes, int dest, int tag) {
    isend(buf, bytes, dest, tag).wait();
}

void HardenedComm::recv(void* buf, std::size_t bytes, int source, int tag, mpi::Status* status) {
    mpi::Request req = comm_.irecv(buf, bytes, source, tag);
    if (req.wait_for(policy_.timeout_ns, status)) return;
    if (!req.cancel()) {
        // Completed while we were giving up: take the delivery.
        req.wait(status);
        return;
    }
    throw CommTimeout("recv", comm_.rank(), source, tag);
}

void HardenedComm::wait_all(std::span<mpi::Request> reqs, int peer, int tag) {
    const std::int64_t t0 = now_ns();
    for (mpi::Request& r : reqs) {
        if (!r.valid()) continue;
        const std::int64_t remaining = policy_.timeout_ns - (now_ns() - t0);
        if (remaining > 0 && r.wait_for(remaining)) continue;
        if (!r.cancel()) continue;  // completed concurrently (or a send)
        // Leave no dangling buffer references behind before surfacing.
        for (mpi::Request& rest : reqs) {
            if (rest.valid()) rest.cancel();
        }
        throw CommTimeout("wait_all", comm_.rank(), peer, tag);
    }
}

int HardenedComm::wait_any(std::span<mpi::Request> reqs, mpi::Status* status, int peer, int tag) {
    const int idx = mpi::wait_any_for(reqs, policy_.timeout_ns, status);
    if (idx != mpi::kTimeout) return idx;
    for (mpi::Request& r : reqs) {
        if (r.valid()) r.cancel();
    }
    throw CommTimeout("wait_any", comm_.rank(), peer, tag);
}

}  // namespace dfamr::resilience
