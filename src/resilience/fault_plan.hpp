// Deterministic, seed-driven chaos plan for mpisim (the resilience layer's
// fault model). Every decision — drop, delay, stall, crash — is a pure
// function of (seed, src, dst, tag, per-stream sequence number), so a chaos
// run can be replayed exactly: same seed, same faults.
//
// Streams are (src, dst, tag) triples, matching mpisim's non-overtaking
// unit. Decisions within a stream form a deterministic subsequence
// regardless of how rank threads interleave; only the interleaving of the
// global event log across streams follows wall-clock call order.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/cli.hpp"
#include "common/lockdep.hpp"
#include "common/rng.hpp"
#include "mpisim/mpi.hpp"

namespace dfamr::resilience {

/// Knobs of the fault model. Everything defaults to off; enabled() tells
/// whether any fault can ever fire.
struct FaultConfig {
    std::uint64_t seed = 1;

    // Transient delivery failure: a message's first attempt is dropped with
    // drop_prob; up to max_extra_drops immediately following attempts of the
    // same stream (the retries) are dropped too. Bounded, so a retrying
    // sender always gets through within max_extra_drops + 1 extra attempts.
    double drop_prob = 0.0;
    int max_extra_drops = 1;

    // In-flight delay: a delivered message is held back by a uniform random
    // time in (0, max_delay_ns], which legally reorders it against messages
    // of other streams.
    double delay_prob = 0.0;
    std::int64_t max_delay_ns = 200'000;

    // Rank stall: every stall_every-th send of stall_rank sleeps stall_ns
    // before proceeding (a slow rank, not a failed one).
    int stall_rank = -1;
    int stall_every = 0;
    std::int64_t stall_ns = 0;

    // Rank crash: crash_rank throws from its crash_after_sends-th send
    // attempt (1-based). Used to exercise checkpoint/restart.
    int crash_rank = -1;
    int crash_after_sends = 1;

    bool enabled() const {
        return drop_prob > 0 || delay_prob > 0 || (stall_rank >= 0 && stall_every > 0) ||
               crash_rank >= 0;
    }

    static void register_cli(CliParser& cli);
    /// Builds a FaultConfig from parsed CLI values (defaults = all off).
    static FaultConfig from_cli(const CliParser& cli);
};

/// One recorded decision (the reproducibility log).
struct FaultEvent {
    int src = 0;
    int dst = 0;
    int tag = 0;
    std::uint64_t stream_seq = 0;  // position within the (src,dst,tag) stream
    bool dropped = false;
    bool stalled = false;
    bool crashed = false;
    std::int64_t delay_ns = 0;

    friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

class FaultPlan final : public mpi::FaultInjector {
public:
    explicit FaultPlan(const FaultConfig& cfg) : cfg_(cfg) {}

    mpi::FaultAction on_send(int src, int dest, int tag) override;

    const FaultConfig& config() const { return cfg_; }
    /// Full decision log in call order. Per-stream subsequences (filter by
    /// src/dst/tag) are identical across runs with the same seed.
    std::vector<FaultEvent> events() const;
    /// Events of one stream, in stream order (deterministic per seed).
    std::vector<FaultEvent> stream_events(int src, int dst, int tag) const;
    std::uint64_t drops() const;
    std::uint64_t delays() const;

private:
    struct Stream {
        Rng rng{0};
        std::uint64_t seq = 0;
        int drops_remaining = 0;
        bool grace = false;  // the send ending a drop burst is never dropped
    };

    FaultConfig cfg_;
    mutable lockdep::Mutex mutex_{"resilience.faultplan"};
    std::map<std::tuple<int, int, int>, Stream> streams_;
    std::map<int, std::uint64_t> sends_per_rank_;
    std::vector<FaultEvent> events_;
    std::uint64_t drops_ = 0;
    std::uint64_t delays_ = 0;
};

}  // namespace dfamr::resilience
